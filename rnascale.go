// Package rnascale is a scalable, pilot-based pipeline for
// transcriptome profiling (RNA-seq) on on-demand computing clouds — a
// from-scratch Go reproduction of Shams et al., "A Scalable Pipeline
// for Transcriptome Profiling Tasks with On-demand Computing Clouds"
// (IPDPSW 2016).
//
// The package is the public facade over the implementation packages:
//
//	internal/core        the pilot-based Rnnotator-style pipeline
//	internal/pilot       the RADICAL-Pilot-style pilot-job framework
//	internal/cloud       the simulated EC2-style IaaS provider
//	internal/cluster     StarCluster-style cluster building
//	internal/sge         the Sun Grid Engine-style batch queue
//	internal/mpi         the MPI runtime for Ray and ABySS
//	internal/mapreduce   the Hadoop engine for Contrail
//	internal/assembler   the Table I de novo assemblers
//	internal/simdata     synthetic datasets standing in for the
//	                     paper's B. Glumae and P. Crispa sets
//
// # Quick start
//
//	ds, err := rnascale.GenerateDataset(rnascale.ProfileTiny)
//	if err != nil { ... }
//	cfg := rnascale.DefaultConfig()
//	cfg.Assemblers = []string{"ray", "abyss", "contrail"} // MAMP
//	report, err := rnascale.Run(ds, cfg)
//	if err != nil { ... }
//	fmt.Print(report.Summary())
//
// All reported times are deterministic virtual seconds at the paper's
// full dataset scale; the assembly computation itself is real and
// runs on the scaled synthetic reads (see DESIGN.md).
package rnascale

import (
	"fmt"

	_ "rnascale/internal/assembler/all" // register the Table I assemblers
	"rnascale/internal/cloud"
	"rnascale/internal/core"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/simdata"
)

// Re-exported pipeline types. See internal/core for full
// documentation of each.
type (
	// Config parameterizes a pipeline run.
	Config = core.Config
	// Report is the outcome of a pipeline run.
	Report = core.Report
	// StageReport is per-stage accounting.
	StageReport = core.StageReport
	// MatchingScheme selects the pilot↔VM matching scheme (Fig. 5).
	MatchingScheme = core.MatchingScheme
	// WorkflowPattern selects the pilot workflow pattern (Fig. 2).
	WorkflowPattern = core.WorkflowPattern
	// Dataset is a synthetic dataset with ground truth.
	Dataset = simdata.Dataset
	// Profile describes a synthetic dataset generator.
	Profile = simdata.Profile
)

// Matching schemes (paper Fig. 5).
const (
	// S1 couples each pilot to the lifetime of its VMs.
	S1 = core.S1
	// S2 reuses running VMs across pilots.
	S2 = core.S2
)

// Workflow patterns (paper Fig. 2).
const (
	// Conventional runs every stage on one pilot.
	Conventional = core.Conventional
	// DistributedStatic fixes per-stage resources a priori.
	DistributedStatic = core.DistributedStatic
	// DistributedDynamic sizes each stage just before it starts.
	DistributedDynamic = core.DistributedDynamic
)

// ProfileName selects a built-in dataset profile.
type ProfileName string

// Built-in dataset profiles.
const (
	// ProfileBGlumae mirrors the paper's bacterial dataset (Table II).
	ProfileBGlumae ProfileName = "bglumae"
	// ProfilePCrispa mirrors the paper's fungal dataset (Table II).
	ProfilePCrispa ProfileName = "pcrispa"
	// ProfileBGlumaePaired mirrors the paper's sample-run dataset.
	ProfileBGlumaePaired ProfileName = "bglumae-paired"
	// ProfileTiny is a fast test-size dataset.
	ProfileTiny ProfileName = "tiny"
)

// LookupProfile resolves a profile by name.
func LookupProfile(name ProfileName) (Profile, error) {
	if name == ProfileTiny {
		return simdata.Tiny(), nil
	}
	p, ok := simdata.Profiles()[string(name)]
	if !ok {
		return Profile{}, fmt.Errorf("rnascale: unknown profile %q", name)
	}
	return p, nil
}

// GenerateDataset materializes a built-in profile.
func GenerateDataset(name ProfileName) (*Dataset, error) {
	p, err := LookupProfile(name)
	if err != nil {
		return nil, err
	}
	return simdata.Generate(p)
}

// DefaultConfig reproduces the paper's sample-run setup (scheme S2,
// dynamic workflow, the three distributed assemblers, c3.2xlarge).
func DefaultConfig() Config { return core.DefaultConfig() }

// Run executes the pipeline over a dataset.
func Run(ds *Dataset, cfg Config) (*Report, error) { return core.Run(ds, cfg) }

// Plan is a predicted execution (stage TTCs and cost) of a
// configuration — computed a priori from the cost models, without
// running any assembly.
type Plan = core.Plan

// Objective selects what Optimize minimizes.
type Objective = core.Objective

// Optimization objectives.
const (
	// MinimizeTTC picks the fastest predicted configuration.
	MinimizeTTC = core.MinimizeTTC
	// MinimizeCost picks the cheapest predicted configuration.
	MinimizeCost = core.MinimizeCost
)

// Predict estimates a configuration's per-stage TTCs and cost.
func Predict(ds *Dataset, cfg Config) (Plan, error) { return core.Predict(ds, cfg) }

// Optimize returns the feasible candidate configuration with the best
// predicted objective.
func Optimize(ds *Dataset, candidates []Config, obj Objective) (Plan, error) {
	return core.Optimize(ds, candidates, obj)
}

// Backend selects how a stage buys its compute: fixed-price on-demand
// VMs, reclaimable spot-market VMs, or serverless function
// invocations.
type Backend = cloud.Backend

// Execution backends.
const (
	// OnDemand is the paper's fixed-price EC2 model (the default).
	OnDemand = cloud.OnDemand
	// Spot buys reclaimable capacity at a seed-deterministic market
	// price; reclamation probability rises with the price level.
	Spot = cloud.Spot
	// Serverless runs work as function invocations with cold/warm
	// starts, memory-tier pricing and a per-invocation duration cap.
	Serverless = cloud.Serverless
)

// StageBackends assigns an execution backend to each pipeline stage
// (Config.Backends). The zero value is all-on-demand.
type StageBackends = core.StageBackends

// ParseStageBackends parses a "PA=spot,PB=serverless,PC=od" list;
// omitted stages stay on-demand, and a bare backend name applies to
// every stage.
func ParseStageBackends(s string) (StageBackends, error) { return core.ParseStageBackends(s) }

// ExpandBackends crosses a base configuration with every per-stage
// backend assignment drawn from the given set (all three backends when
// nil), skipping combinations the runtime rejects.
func ExpandBackends(base Config, backends []Backend) []Config {
	return core.ExpandBackends(base, backends)
}

// Frontier predicts every candidate configuration and returns the
// Pareto-optimal plans under (TTC, cost), sorted fastest-first.
func Frontier(ds *Dataset, candidates []Config) ([]Plan, error) {
	return core.Frontier(ds, candidates)
}

// Outcome classifies how a run ended (Report.Outcome): complete,
// deadline_exceeded, shed or cancelled.
type Outcome = core.Outcome

// Run outcome classes.
const (
	// OutcomeComplete: the run finished all stages.
	OutcomeComplete = core.OutcomeComplete
	// OutcomeDeadlineExceeded: the run crossed its virtual-time
	// deadline and remaining work was cancelled.
	OutcomeDeadlineExceeded = core.OutcomeDeadlineExceeded
	// OutcomeShed: the run was refused before execution (admission
	// control or a cost-budget preflight); the pipeline itself never
	// produces it.
	OutcomeShed = core.OutcomeShed
	// OutcomeCancelled: the run was cancelled at Config.CancelAt.
	OutcomeCancelled = core.OutcomeCancelled
)

// CutoffError is returned by Run when a virtual-time deadline
// (Config.Deadline) or cancellation point (Config.CancelAt) cut the
// run off; the partial Report carries the matching Outcome.
type CutoffError = core.CutoffError

// BreakerOptions tunes the per-backend circuit breaker
// (Config.Breaker): how many consecutive backend failures trip it
// open, and how long it stays open before a half-open probe. Nil
// disables the breaker.
type BreakerOptions = cloud.BreakerOptions

// FaultPlan is a parsed deterministic fault-injection plan; assign it
// to Config.FaultPlan (with Config.FaultSeed) to run under injected
// faults.
type FaultPlan = faults.Plan

// RecoveryReport summarizes injected faults and the recovery work a
// run performed (Report.Recovery).
type RecoveryReport = core.RecoveryReport

// ParseFaultSpec parses a fault-injection spec like
// "crash:p=0.1,after=600;slowxfer:x=0.5". See internal/faults for the
// grammar.
func ParseFaultSpec(spec string) (*FaultPlan, error) { return faults.ParseSpec(spec) }

// Journal is a write-ahead run journal; assign one (via CreateJournal)
// to Config.Journal to make a run resumable across driver loss.
type Journal = journal.Writer

// JournalStats summarizes a run's journal activity
// (Report.Journal): how many records and units were replayed from a
// surviving journal versus executed live.
type JournalStats = core.JournalStats

// DriverCrashError is returned by Run when an injected
// "drivercrash:at=<vtime>" fault kills the driver at a journal
// checkpoint. The journal written so far survives; pass it to Resume.
type DriverCrashError = core.DriverCrashError

// JournalOptions tunes the journal's group-commit batching: how many
// concurrent appends coalesce into one write+fsync, and how long the
// flusher lingers for stragglers. Batching changes when fsyncs
// happen, never what is written — the journal bytes are identical at
// any batch size.
type JournalOptions = journal.Options

// JournalVerifyResult is the forensic report of a journal
// chain-verification pass: the verified record count, the first bad
// sequence number when the hash chain breaks, the chain head and the
// Merkle root.
type JournalVerifyResult = journal.VerifyResult

// CreateJournal opens a write-ahead run journal at path for
// Config.Journal. Close it after the run returns.
func CreateJournal(path string) (*Journal, error) { return journal.Create(path) }

// CreateJournalOptions is CreateJournal with explicit group-commit
// options.
func CreateJournalOptions(path string, opts JournalOptions) (*Journal, error) {
	return journal.CreateOptions(path, opts)
}

// VerifyJournal checks the journal at path against its tamper-evident
// hash chain without modifying it. Corruption is reported in the
// result, not the error (which covers I/O only).
func VerifyJournal(path string) (JournalVerifyResult, error) { return journal.Verify(path) }

// Resume continues an interrupted run from its write-ahead journal.
// ds and cfg must match the original run (verified via a config
// digest in the journal header). Completed stages and units are
// replayed from the journal — not re-executed — and the run continues
// from the crash point; the final report, metrics and Chrome trace
// are byte-identical to an uninterrupted run's, except for the
// snapshot's Resumed marker.
func Resume(ds *Dataset, cfg Config, path string) (*Report, error) {
	return core.Resume(ds, cfg, path)
}

// Assemblers lists the names of the integrated de novo assemblers:
// the paper's three distributed tools (Table I), Rnnotator's stock
// single-node k-mer assemblers, and the Trinity comparator.
func Assemblers() []string {
	return []string{"ray", "abyss", "contrail", "velvet", "oases", "idba", "minia", "trinity"}
}
