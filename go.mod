module rnascale

go 1.22
