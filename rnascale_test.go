// Integration tests against the public facade — what a downstream
// user of the library actually calls.
package rnascale_test

import (
	"strings"
	"testing"

	"rnascale"
)

func TestPublicQuickstartFlow(t *testing.T) {
	ds, err := rnascale.GenerateDataset(rnascale.ProfileTiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rnascale.DefaultConfig()
	cfg.ContrailNodes = 2
	cfg.EvaluateAgainstTruth = true
	rep, err := rnascale.Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transcripts) == 0 || rep.TTC <= 0 || rep.CostUSD <= 0 {
		t.Fatalf("degenerate report: %d transcripts, TTC %v, $%.2f",
			len(rep.Transcripts), rep.TTC, rep.CostUSD)
	}
	if rep.Metrics == nil || rep.Metrics.F1 <= 0 {
		t.Fatal("metrics missing")
	}
	if !strings.Contains(rep.Summary(), "S2") {
		t.Errorf("summary %q", rep.Summary())
	}
}

func TestPublicProfiles(t *testing.T) {
	for _, name := range []rnascale.ProfileName{
		rnascale.ProfileTiny, rnascale.ProfileBGlumae,
		rnascale.ProfilePCrispa, rnascale.ProfileBGlumaePaired,
	} {
		p, err := rnascale.LookupProfile(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.GenomeSize <= 0 {
			t.Errorf("%s: empty profile", name)
		}
	}
	if _, err := rnascale.LookupProfile("bogus"); err == nil {
		t.Error("bogus profile resolved")
	}
}

func TestPublicAssemblerList(t *testing.T) {
	names := rnascale.Assemblers()
	if len(names) != 8 {
		t.Fatalf("assemblers %v", names)
	}
	want := map[string]bool{
		"ray": true, "abyss": true, "contrail": true, "velvet": true,
		"oases": true, "idba": true, "minia": true, "trinity": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected assembler %q", n)
		}
	}
	// Every listed assembler must actually run end-to-end through the
	// pipeline as a single-assembler option.
	ds, err := rnascale.GenerateDataset(rnascale.ProfileTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		cfg := rnascale.DefaultConfig()
		cfg.Assemblers = []string{n}
		cfg.ContrailNodes = 2
		rep, err := rnascale.Run(ds, cfg)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if len(rep.Transcripts) == 0 {
			t.Errorf("%s: empty assembly", n)
		}
	}
}

func TestPublicSchemeAndPatternConstants(t *testing.T) {
	// The constants must round-trip through their string forms used in
	// reports and CLIs.
	if rnascale.S1.String() != "S1" || rnascale.S2.String() != "S2" {
		t.Error("scheme strings")
	}
	if rnascale.DistributedDynamic.String() != "distributed-dynamic" ||
		rnascale.Conventional.String() != "conventional" ||
		rnascale.DistributedStatic.String() != "distributed-static" {
		t.Error("pattern strings")
	}
}

func TestPublicDatasetGroundTruth(t *testing.T) {
	ds, err := rnascale.GenerateDataset(rnascale.ProfileTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Transcripts) == 0 || len(ds.Annotations) != len(ds.Transcripts) {
		t.Fatal("ground truth incomplete")
	}
	if len(ds.Expression) != len(ds.Transcripts) {
		t.Fatal("expression vector mismatched")
	}
}
