# rnascale build and verification targets.

GO ?= go

# Per-package coverage floors for the fault/recovery-critical
# packages (current actuals are ~85-92%; floors leave headroom).
# cloud's floor rose with the spot/serverless backends: the market
# walk, reclaim coupling and function billing must stay covered.
COVER_SPECS = internal/cloud:85 internal/pilot:80 internal/core:80

# Parser fuzz targets exercised by fuzz-smoke.
FUZZ_TARGETS = FuzzParseFasta FuzzParseFastq FuzzParseSFA
FUZZ_TIME ?= 10s

.PHONY: all build test vet lint lint-fixtures race cover fuzz-smoke sweep-determinism journal-determinism overload-determinism check bench bench-gate bench-baseline clean

# Coverage profiles land here instead of littering the repo root.
BUILD_DIR = build

all: build

# build compiles everything, then asserts two dependency contracts:
# the rnavet analyzer stays stdlib-only with no network imports (the
# determinism gate must keep running on the offline single-CPU machine
# with just the toolchain), and the perf probe package stays
# stdlib-only (it is imported by every hot kernel, so a dependency
# added there is a dependency added everywhere).
build:
	$(GO) build ./...
	@nonstd=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./cmd/rnavet | grep -v '^rnascale' || true); \
	netdeps=$$($(GO) list -deps ./cmd/rnavet | grep -E '^net(/|$$)' || true); \
	if [ -n "$$nonstd$$netdeps" ]; then \
		echo "FAIL: cmd/rnavet must stay stdlib-only with no network imports:"; \
		echo "$$nonstd $$netdeps"; exit 1; \
	fi
	@perfdeps=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./internal/obs/perf | grep -v '^rnascale/internal/obs/perf$$' || true); \
	if [ -n "$$perfdeps" ]; then \
		echo "FAIL: internal/obs/perf must stay stdlib-only (it is linked into every kernel):"; \
		echo "$$perfdeps"; exit 1; \
	fi

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs rnavet, the project's determinism, concurrency and
# durability analyzer (see internal/analysis): wall-clock reads in
# simulation packages, global math/rand usage, order-dependent
# emission from map iteration, wall-clock types on simulation APIs,
# unjoined goroutines, mutexes held across blocking operations,
# dropped durability errors, and unbounded metric label values. rnavet
# prints a one-line summary (checks run, files scanned, findings) and
# exits non-zero on any finding — including stale //rnavet:allow
# directives. The go-list snapshot is cached under $(BUILD_DIR) so
# repeated lints skip the go-tool walk when nothing changed.
lint:
	$(GO) run ./cmd/rnavet -cache $(BUILD_DIR)/rnavet-cache ./...

# lint-fixtures exercises the analyzer itself: the golden-fixture
# corpus for every check, the JSON schema golden, the go-list cache
# round-trip, and the awkward-package-shape loader tests. Run it after
# touching internal/analysis; regenerate goldens with `go test -update`.
lint-fixtures:
	$(GO) test ./internal/analysis

race:
	$(GO) test -race ./...

# cover enforces the per-package coverage floors on the packages the
# fault-injection and recovery paths live in.
cover:
	@mkdir -p $(BUILD_DIR)
	@for spec in $(COVER_SPECS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; out=$(BUILD_DIR)/cover.$$(basename $$pkg).out; \
		$(GO) test -coverprofile=$$out ./$$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage $$pct% (floor $$floor%)"; \
		awk -v p=$$pct -v f=$$floor 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' || \
			{ echo "FAIL: $$pkg coverage $$pct% below floor $$floor%"; exit 1; }; \
	done

# fuzz-smoke runs each parser fuzz target briefly; failures minimize
# into internal/seq/testdata/fuzz as regression inputs.
fuzz-smoke:
	@for tgt in $(FUZZ_TARGETS); do \
		$(GO) test ./internal/seq -run '^$$' -fuzz "^$$tgt$$" -fuzztime=$(FUZZ_TIME) || exit 1; \
	done

# sweep-determinism pins the parallel-executor contract under the
# race detector: byte-identical results for any worker count, and one
# dataset generation per profile however many cells ask for it.
sweep-determinism:
	$(GO) test -race -run 'TestMapDeterminismAcrossWorkerCounts|TestDatasetCacheSingleGeneration' ./internal/sweep

# journal-determinism pins the checkpoint/resume contract: a run is
# killed at three injected virtual-time points (mid-PA, mid-PB,
# mid-PC), resumed from its write-ahead journal, and the resumed
# report, metrics and Chrome trace must be byte-identical to an
# uninterrupted run's — with zero journaled units re-executed. The
# driver-crash chaos soak races resume against worker faults, and the
# torn-tail test resumes through crash-shaped journal damage. The
# whole contract is pinned at group-commit batch sizes 1 (fsync per
# append), 8 and 64: batching changes when fsyncs happen, never what
# resumes read.
journal-determinism:
	@for b in 1 8 64; do \
		echo "journal-determinism: JOURNAL_BATCH=$$b"; \
		JOURNAL_BATCH=$$b $(GO) test -race -run 'TestKillAndResumeByteIdentical|TestResumeOfCompleteJournal|TestResumeAfterTornTail|TestChaosDriverCrashResumeSoak' ./internal/core || exit 1; \
	done

# overload-determinism pins the overload-protection contract: the
# chaos soak (deadlines, cancellation, retry budgets, breakers, and
# their interactions with reclaim/flake storms) must produce
# byte-identical artifacts for the same seed at every sweep worker
# count, and a cancelled or deadline-exceeded run must resume from its
# journal as a pure replay reproducing the same truncated report.
# Pinned across 2 worker counts × 2 group-commit batch sizes: neither
# scheduling nor fsync batching may leak into overload decisions.
overload-determinism:
	@for w in 1 4; do for b in 1 64; do \
		echo "overload-determinism: OVERLOAD_WORKERS=$$w JOURNAL_BATCH=$$b"; \
		OVERLOAD_WORKERS=$$w JOURNAL_BATCH=$$b $(GO) test -race -run 'TestChaosOverloadSoak|TestDeadlineCancelResumeByteIdentical|TestBreakerConvertsReclaimStorm' ./internal/core || exit 1; \
	done; done

# check is the gate a change must pass before review: static analysis
# (go vet plus the rnavet determinism analyzer), the full test suite
# under the race detector, the coverage floors, the sweep determinism
# contract, the journal resume contract, a fuzz smoke pass and the
# kernel benchmark regression gate.
check: vet lint race cover sweep-determinism journal-determinism overload-determinism fuzz-smoke bench-gate

# bench regenerates the paper tables at quick scale and refreshes
# BENCH_results.json (per-stage TTC/cost snapshots, plus the pass's
# wall-clock seconds and worker count for throughput tracking).
bench:
	$(GO) run ./cmd/benchtab -experiment all

# bench-gate measures the hot kernels (fixed-seed microbenchmarks in
# internal/kernelbench) and fails if any regressed beyond tolerance
# against the committed BENCH_baseline.json. Tolerances are loose on
# wall time (machines are noisy) and tight on allocation counts
# (deterministic for a fixed toolchain); override per-column with e.g.
# BENCH_GATE_FLAGS='-tol-time 1.0'. Improvements never fail — lock
# them in with bench-baseline.
bench-gate:
	@mkdir -p $(BUILD_DIR)
	$(GO) run ./cmd/benchtab -kernels -json $(BUILD_DIR)/BENCH_results.json
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -current $(BUILD_DIR)/BENCH_results.json $(BENCH_GATE_FLAGS)

# bench-baseline re-measures the kernels and rewrites the committed
# baseline. Run on a quiet machine after a deliberate performance
# change, and commit the result.
bench-baseline:
	$(GO) run ./cmd/benchtab -kernels -json BENCH_baseline.json
	@echo "BENCH_baseline.json rewritten; review and commit it."

clean:
	rm -rf $(BUILD_DIR)
	rm -f BENCH_results.json cover.*.out
	$(GO) clean ./...
