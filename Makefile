# rnascale build and verification targets.

GO ?= go

.PHONY: all build test vet race check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the gate a change must pass before review: static analysis
# plus the full test suite under the race detector.
check: vet race

# bench regenerates the paper tables at quick scale and refreshes
# BENCH_results.json (per-stage TTC/cost snapshots).
bench:
	$(GO) run ./cmd/benchtab -experiment all

clean:
	rm -f BENCH_results.json
	$(GO) clean ./...
