# rnascale build and verification targets.

GO ?= go

# Per-package coverage floors for the fault/recovery-critical
# packages (current actuals are ~86-88%; floors leave headroom).
COVER_SPECS = internal/cloud:80 internal/pilot:80 internal/core:75

# Parser fuzz targets exercised by fuzz-smoke.
FUZZ_TARGETS = FuzzParseFasta FuzzParseFastq FuzzParseSFA
FUZZ_TIME ?= 10s

.PHONY: all build test vet race cover fuzz-smoke sweep-determinism journal-determinism check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# cover enforces the per-package coverage floors on the packages the
# fault-injection and recovery paths live in.
cover:
	@for spec in $(COVER_SPECS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; out=cover.$$(basename $$pkg).out; \
		$(GO) test -coverprofile=$$out ./$$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage $$pct% (floor $$floor%)"; \
		awk -v p=$$pct -v f=$$floor 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' || \
			{ echo "FAIL: $$pkg coverage $$pct% below floor $$floor%"; exit 1; }; \
	done

# fuzz-smoke runs each parser fuzz target briefly; failures minimize
# into internal/seq/testdata/fuzz as regression inputs.
fuzz-smoke:
	@for tgt in $(FUZZ_TARGETS); do \
		$(GO) test ./internal/seq -run '^$$' -fuzz "^$$tgt$$" -fuzztime=$(FUZZ_TIME) || exit 1; \
	done

# sweep-determinism pins the parallel-executor contract under the
# race detector: byte-identical results for any worker count, and one
# dataset generation per profile however many cells ask for it.
sweep-determinism:
	$(GO) test -race -run 'TestMapDeterminismAcrossWorkerCounts|TestDatasetCacheSingleGeneration' ./internal/sweep

# journal-determinism pins the checkpoint/resume contract: a run is
# killed at three injected virtual-time points (mid-PA, mid-PB,
# mid-PC), resumed from its write-ahead journal, and the resumed
# report, metrics and Chrome trace must be byte-identical to an
# uninterrupted run's — with zero journaled units re-executed. The
# driver-crash chaos soak races resume against worker faults.
journal-determinism:
	$(GO) test -race -run 'TestKillAndResumeByteIdentical|TestResumeOfCompleteJournal|TestChaosDriverCrashResumeSoak' ./internal/core

# check is the gate a change must pass before review: static analysis,
# the full test suite under the race detector, the coverage floors,
# the sweep determinism contract, the journal resume contract and a
# fuzz smoke pass.
check: vet race cover sweep-determinism journal-determinism fuzz-smoke

# bench regenerates the paper tables at quick scale and refreshes
# BENCH_results.json (per-stage TTC/cost snapshots, plus the pass's
# wall-clock seconds and worker count for throughput tracking).
bench:
	$(GO) run ./cmd/benchtab -experiment all

clean:
	rm -f BENCH_results.json cover.*.out
	$(GO) clean ./...
