package simdata

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// datasetCache memoizes Generate results so a sweep whose cells share
// a profile pays the generation cost once instead of once per cell.
// Entries are keyed by the full profile value (two profiles differing
// in any field — seed, scale overrides, k plan — are distinct), and
// a per-entry once gives singleflight semantics: concurrent callers
// for the same profile block on a single generation.
//
// Cached datasets are shared, so callers must treat them as
// immutable. Every consumer in this repository already does: the
// pipeline copies reads during pre-processing, Subset returns a new
// Dataset over shared backing arrays, and the experiment tables only
// read. Callers that need to mutate a dataset must use Generate.
var datasetCache struct {
	mu          sync.Mutex
	entries     map[string]*cacheEntry
	generations atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	ds   *Dataset
	err  error
}

// cacheKey fingerprints a profile. Profile is a plain value type
// whose only reference field is the AssemblyKmers slice; %#v renders
// both the scalars and the slice contents, so equal-by-value profiles
// collide (as intended) and any differing field separates them.
func cacheKey(p Profile) string { return fmt.Sprintf("%#v", p) }

// GenerateCached returns the memoized dataset for p, generating it at
// most once per distinct profile even under concurrent callers. The
// returned dataset is shared and must be treated as read-only.
func GenerateCached(p Profile) (*Dataset, error) {
	key := cacheKey(p)
	datasetCache.mu.Lock()
	if datasetCache.entries == nil {
		datasetCache.entries = map[string]*cacheEntry{}
	}
	e, ok := datasetCache.entries[key]
	if !ok {
		e = &cacheEntry{}
		datasetCache.entries[key] = e
	}
	datasetCache.mu.Unlock()
	e.once.Do(func() {
		datasetCache.generations.Add(1)
		e.ds, e.err = Generate(p)
	})
	return e.ds, e.err
}

// CacheGenerations reports how many underlying Generate calls the
// cache has performed since process start (tests assert one per
// distinct profile; operators read it as a cache-miss counter).
func CacheGenerations() int64 { return datasetCache.generations.Load() }
