package simdata

import (
	"fmt"
	"testing"

	"rnascale/internal/seq"
)

func TestProfilesMatchTableII(t *testing.T) {
	bg := BGlumae()
	if bg.FullScale.GenomeSizeBp != 6_700_000 || bg.FullScale.ProteinGenes != 5223 {
		t.Errorf("B. Glumae full-scale stats: %+v", bg.FullScale)
	}
	if bg.FullScale.ReadLen != 50 || bg.FullScale.Paired {
		t.Error("B. Glumae read shape wrong")
	}
	if len(bg.FullScale.AssemblyKmers) != 7 || bg.FullScale.AssemblyKmers[0] != 35 || bg.FullScale.AssemblyKmers[6] != 47 {
		t.Errorf("B. Glumae k-mers %v", bg.FullScale.AssemblyKmers)
	}
	pc := PCrispa()
	if pc.FullScale.GenomeSizeBp != 34_500_000 || pc.FullScale.ProteinGenes != 13617 {
		t.Errorf("P. Crispa full-scale stats: %+v", pc.FullScale)
	}
	if !pc.FullScale.Paired || pc.FullScale.ReadLen != 100 {
		t.Error("P. Crispa read shape wrong")
	}
	if len(pc.FullScale.AssemblyKmers) != 4 || pc.FullScale.AssemblyKmers[3] != 63 {
		t.Errorf("P. Crispa k-mers %v", pc.FullScale.AssemblyKmers)
	}
	// Memory ordering that drives Table IV: P. Crispa preprocessing
	// cannot fit a 16 GB instance, B. Glumae can.
	if pc.FullScale.PreprocessMemGB <= 16 {
		t.Error("P. Crispa preprocessing must exceed 16 GB")
	}
	if bg.FullScale.PreprocessMemGB > 16 {
		t.Error("B. Glumae preprocessing must fit 16 GB")
	}
	if len(Profiles()) < 3 {
		t.Error("missing built-in profiles")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Genome) != string(b.Genome) {
		t.Error("genomes differ across runs")
	}
	if len(a.Reads.Reads) != len(b.Reads.Reads) {
		t.Fatal("read counts differ")
	}
	for i := range a.Reads.Reads {
		if string(a.Reads.Reads[i].Seq) != string(b.Reads.Reads[i].Seq) {
			t.Fatalf("read %d differs", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	p := Tiny()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Genome) != p.GenomeSize {
		t.Errorf("genome %d bp", len(ds.Genome))
	}
	if len(ds.Transcripts) != p.NumGenes || len(ds.Expression) != p.NumGenes {
		t.Errorf("%d transcripts, %d expressions", len(ds.Transcripts), len(ds.Expression))
	}
	expressed := 0
	for i, tx := range ds.Transcripts {
		if len(tx.Seq) < p.ReadLen {
			t.Errorf("transcript %d shorter than a read", i)
		}
		if ds.Expression[i] < 0 {
			t.Errorf("negative expression %d = %v", i, ds.Expression[i])
		}
		if ds.Expression[i] > 0 {
			expressed++
		}
	}
	if expressed == 0 {
		t.Fatal("no expressed genes")
	}
	if len(ds.Annotations) != len(ds.Transcripts) {
		t.Fatalf("%d annotations for %d transcripts", len(ds.Annotations), len(ds.Transcripts))
	}
	for i, a := range ds.Annotations {
		if len(a.Seq) > len(ds.Transcripts[i].Seq) {
			t.Errorf("annotation %d longer than its transcript", i)
		}
	}
	if err := ds.Reads.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Reads.Reads {
		if len(r.Seq) != p.ReadLen {
			t.Fatalf("read %s length %d", r.ID, len(r.Seq))
		}
	}
	// Coverage sanity: within 30% of target.
	var txBases int
	for _, tx := range ds.Transcripts {
		txBases += len(tx.Seq)
	}
	got := float64(ds.Reads.TotalBases()) / float64(txBases)
	if got < p.Coverage*0.7 || got > p.Coverage*1.3 {
		t.Errorf("coverage %.1f, want ≈%.1f", got, p.Coverage)
	}
}

func TestGeneratePairedReads(t *testing.T) {
	p := PCrispa()
	p.GenomeSize = 30_000
	p.NumGenes = 20
	p.Coverage = 10
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Reads.Paired || len(ds.Reads.Reads)%2 != 0 {
		t.Fatal("paired structure broken")
	}
	// Mates carry /1 and /2 suffixes of the same fragment ID.
	for i := 0; i < len(ds.Reads.Reads); i += 2 {
		id1, id2 := ds.Reads.Reads[i].ID, ds.Reads.Reads[i+1].ID
		if id1[:len(id1)-2] != id2[:len(id2)-2] {
			t.Fatalf("mate IDs %s / %s", id1, id2)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := Tiny()
	bad.GenomeSize = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero genome accepted")
	}
	bad = Tiny()
	bad.MeanTranscriptLen = bad.ReadLen - 1
	if _, err := Generate(bad); err == nil {
		t.Error("transcripts shorter than reads accepted")
	}
	bad = Tiny()
	bad.NumGenes = 10000
	if _, err := Generate(bad); err == nil {
		t.Error("too many genes accepted")
	}
	bad = PCrispa()
	bad.InsertSize = 10
	if _, err := Generate(bad); err == nil {
		t.Error("insert < read length accepted")
	}
}

func TestReadsResembleTranscripts(t *testing.T) {
	// Error rate is low, so most reads should align exactly to some
	// transcript (forward or reverse complement).
	p := Tiny()
	p.ErrorRate = 0
	p.NRate = 0
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	index := map[string]bool{}
	k := p.ReadLen
	for _, tx := range ds.Transcripts {
		for i := 0; i+k <= len(tx.Seq); i++ {
			index[string(tx.Seq[i:i+k])] = true
		}
		rc := seq.ReverseComplement(tx.Seq)
		for i := 0; i+k <= len(rc); i++ {
			index[string(rc[i:i+k])] = true
		}
	}
	miss := 0
	for _, r := range ds.Reads.Reads {
		if !index[string(r.Seq)] {
			miss++
		}
	}
	if miss != 0 {
		t.Errorf("%d of %d error-free reads not found in transcriptome", miss, len(ds.Reads.Reads))
	}
}

func TestErrorModelInjects(t *testing.T) {
	p := Tiny()
	p.ErrorRate = 0.05
	p.NRate = 0.01
	ds, _ := Generate(p)
	n := 0
	for _, r := range ds.Reads.Reads {
		n += seq.CountN(r.Seq)
	}
	if n == 0 {
		t.Error("no N bases injected at 1% N rate")
	}
}

func TestScaleRatio(t *testing.T) {
	ds, _ := Generate(Tiny())
	r := ds.ScaleRatio()
	if r <= 100 {
		t.Errorf("scale ratio %v suspiciously small", r)
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Generate(Tiny())
	half := ds.Subset(0.5)
	full := ds.Reads.Fragments()
	got := half.Reads.Fragments()
	if got < full/2-2 || got > full/2+2 {
		t.Errorf("half subset has %d of %d fragments", got, full)
	}
	if half.Profile.FullScale.SeqDataBytes >= ds.Profile.FullScale.SeqDataBytes {
		t.Error("full-scale stats not scaled")
	}
	if same := ds.Subset(1.0); same.Reads.Fragments() != full {
		t.Error("fraction 1 must be identity")
	}
	if tiny := ds.Subset(-1); tiny.Reads.Fragments() < 1 {
		t.Error("degenerate fraction must keep at least one fragment")
	}
	// Paired subsets stay paired.
	p := PCrispa()
	p.GenomeSize = 30_000
	p.NumGenes = 20
	p.Coverage = 8
	pds, _ := Generate(p)
	sub := pds.Subset(0.25)
	if !sub.Reads.Paired || len(sub.Reads.Reads)%2 != 0 {
		t.Error("paired subset broken")
	}
	if err := sub.Reads.Validate(); err != nil {
		t.Error(err)
	}
}

func TestQualityProfileDecays(t *testing.T) {
	ds, _ := Generate(Tiny())
	var headSum, tailSum float64
	n := 0
	for _, r := range ds.Reads.Reads {
		headSum += float64(seq.ByteToPhred(r.Qual[0]))
		tailSum += float64(seq.ByteToPhred(r.Qual[len(r.Qual)-1]))
		n++
	}
	if headSum/float64(n) <= tailSum/float64(n) {
		t.Error("quality does not decay toward 3' end")
	}
}

func ExampleGenerate() {
	ds, _ := Generate(Tiny())
	fmt.Println(ds.Profile.Organism, len(ds.Transcripts) > 0, ds.Reads.Fragments() > 0)
	// Output: B. Glumae true true
}
