// Package simdata generates the synthetic genomes, transcriptomes and
// RNA-seq read sets that substitute for the paper's real datasets
// (B. Glumae, SRA SRX129586, and the P. Crispa set of ref. [2]), which
// are not available offline.
//
// Each built-in profile carries two things:
//
//   - a *scaled* synthetic instance — a real transcriptome and real
//     simulated reads, small enough to assemble on a laptop, that flow
//     through every real code path (preprocessing, assembly, merging,
//     evaluation);
//   - the *full-scale statistics* from the paper's Table II (genome
//     size, gene count, data volume, memory footprints), which drive
//     the virtual-time and memory cost models so that reported TTCs
//     and feasibility match paper scale.
//
// Generation is fully deterministic given the profile's seed.
package simdata

import (
	"fmt"
	"math"
	"math/rand"

	"rnascale/internal/seq"
)

// FullScaleStats records the paper-scale dataset characteristics
// (Table II) used by cost models.
type FullScaleStats struct {
	// GenomeSizeBp is the organism's genome size in base pairs.
	GenomeSizeBp int64
	// ProteinGenes is the annotated protein-coding gene count.
	ProteinGenes int
	// SeqDataBytes is the raw FASTQ volume.
	SeqDataBytes int64
	// Reads is the total read count.
	Reads int64
	// ReadLen is the read length in bp.
	ReadLen int
	// Paired reports paired-end sequencing.
	Paired bool
	// PreprocessMemGB is the pre-processing resident footprint.
	PreprocessMemGB float64
	// PostPreprocessBytes is the data volume after pre-processing.
	PostPreprocessBytes int64
	// AssemblyKmers lists the k values the multiple-k-mer strategy
	// requires for this dataset (known only after pre-processing).
	AssemblyKmers []int
}

// Profile describes a synthetic dataset generator.
type Profile struct {
	Name string
	// Organism is the display name ("B. Glumae").
	Organism string
	// Description matches Table II's organism class.
	Description string
	// Seed makes generation deterministic.
	Seed int64

	// GenomeSize and NumGenes size the scaled synthetic instance.
	GenomeSize int
	NumGenes   int
	// MeanTranscriptLen controls gene lengths (bp).
	MeanTranscriptLen int
	// ReadLen, Paired and Coverage size the scaled read set; coverage
	// is over the expressed transcriptome.
	ReadLen  int
	Paired   bool
	Coverage float64
	// ErrorRate is the per-base substitution probability.
	ErrorRate float64
	// NRate is the per-base probability of an ambiguous N call.
	NRate float64
	// InsertSize is the paired-end fragment length.
	InsertSize int
	// ParalogFraction is the fraction of genes carrying a shared
	// family "domain" sequence. Shared domains create the branch
	// points at which De Bruijn assemblers split contigs but greedy
	// assemblers walk through — the mechanism behind Trinity's low
	// nucleotide precision in the paper's Table V.
	ParalogFraction float64
	// ExpressedFraction is the fraction of genes actually expressed
	// in the sample (the rest have zero expression and yield no
	// reads). The paper's Table V reference is the *complete* gene
	// annotation, so unexpressed genes depress plain recall while
	// leaving abundance-weighted recall intact — exactly the gap
	// between its recall (0.26–0.44) and weighted-recall (0.77–0.86)
	// columns. 0 means every gene is expressed.
	ExpressedFraction float64
	// AnnotationCDSFraction is the fraction of each transcript covered
	// by its gene annotation (the paper's ground truth is "protein
	// gene sequences predicted by the annotation programs", not full
	// mRNAs, which caps nucleotide precision for *every* assembler at
	// roughly this value). 0 means annotations equal full transcripts.
	AnnotationCDSFraction float64

	// FullScale carries the paper-scale statistics for cost models.
	FullScale FullScaleStats
}

// BGlumae returns the profile standing in for the paper's bacterial
// dataset (Burkholderia glumae, Table II column 1), scaled for laptop
// assembly.
func BGlumae() Profile {
	return Profile{
		Name:              "bglumae",
		Organism:          "B. Glumae",
		Description:       "Bacteria",
		Seed:              20160523,
		GenomeSize:        60_000,
		NumGenes:          48,
		MeanTranscriptLen: 900,
		ReadLen:           50,
		Paired:            false,
		// High coverage so that k=47 windows (only 4 per 50 bp read)
		// still reach assembly-grade k-mer coverage, as the paper's
		// 121× real dataset does.
		Coverage:              90,
		ErrorRate:             0.004,
		NRate:                 0.0008,
		ParalogFraction:       0.3,
		ExpressedFraction:     0.5,
		AnnotationCDSFraction: 0.8,
		FullScale: FullScaleStats{
			GenomeSizeBp:        6_700_000,
			ProteinGenes:        5223,
			SeqDataBytes:        3_800_000_000,
			Reads:               16_263_310,
			ReadLen:             50,
			Paired:              false,
			PreprocessMemGB:     15,
			PostPreprocessBytes: 175_000_000,
			AssemblyKmers:       []int{35, 37, 39, 41, 43, 45, 47},
		},
	}
}

// PCrispa returns the profile standing in for the paper's fungal
// dataset (Plicaturopsis crispa, Table II column 2).
func PCrispa() Profile {
	return Profile{
		Name:                  "pcrispa",
		Organism:              "P. Crispa",
		Description:           "Fungus",
		Seed:                  20160524,
		GenomeSize:            200_000,
		NumGenes:              120,
		MeanTranscriptLen:     1100,
		ReadLen:               100,
		Paired:                true,
		Coverage:              30,
		ErrorRate:             0.004,
		NRate:                 0.0008,
		InsertSize:            300,
		ParalogFraction:       0.3,
		ExpressedFraction:     0.5,
		AnnotationCDSFraction: 0.8,
		FullScale: FullScaleStats{
			GenomeSizeBp:        34_500_000,
			ProteinGenes:        13617,
			SeqDataBytes:        26_200_000_000,
			Reads:               2 * 54_168_576,
			ReadLen:             100,
			Paired:              true,
			PreprocessMemGB:     40,
			PostPreprocessBytes: 9_400_000_000,
			AssemblyKmers:       []int{51, 55, 59, 63},
		},
	}
}

// BGlumaePaired returns the unpublished paired-end B. Glumae set used
// in the paper's sample run (4.4 GB, paired, needing 2 k-mers).
func BGlumaePaired() Profile {
	p := BGlumae()
	p.Name = "bglumae-paired"
	p.Seed = 20160525
	p.Paired = true
	p.ReadLen = 100
	p.InsertSize = 280
	p.Coverage = 30 // 100 bp reads keep k≤47 well covered at 30×
	p.FullScale.Paired = true
	p.FullScale.ReadLen = 100
	p.FullScale.SeqDataBytes = 4_400_000_000
	p.FullScale.Reads = 2 * 11_000_000
	p.FullScale.AssemblyKmers = []int{41, 47}
	return p
}

// Profiles lists every built-in profile by name.
func Profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{BGlumae(), PCrispa(), BGlumaePaired()} {
		out[p.Name] = p
	}
	return out
}

// Tiny returns a minimal profile for fast unit and integration tests.
func Tiny() Profile {
	p := BGlumae()
	p.Name = "tiny"
	p.GenomeSize = 8_000
	p.NumGenes = 8
	p.MeanTranscriptLen = 500
	p.Coverage = 25
	p.ExpressedFraction = 0.75
	p.AnnotationCDSFraction = 0.85
	p.FullScale.AssemblyKmers = []int{21, 25}
	return p
}

// Dataset is a generated dataset: ground truth plus reads.
type Dataset struct {
	Profile Profile
	// Genome is the synthetic genome.
	Genome []byte
	// Transcripts is the full transcriptome (expressed or not).
	Transcripts []seq.FastaRecord
	// Annotations is the gene-annotation track: the CDS-like core of
	// every transcript, expressed or not. This is the Table V ground
	// truth, mirroring the paper's use of predicted protein gene
	// sequences rather than full mRNAs.
	Annotations []seq.FastaRecord
	// Expression holds each transcript's relative abundance (0 for
	// unexpressed genes).
	Expression []float64
	// Reads is the simulated read set.
	Reads seq.ReadSet
}

// Generate builds the dataset for a profile.
func Generate(p Profile) (*Dataset, error) {
	if p.GenomeSize <= 0 || p.NumGenes <= 0 || p.ReadLen <= 0 {
		return nil, fmt.Errorf("simdata: degenerate profile %+v", p)
	}
	if p.MeanTranscriptLen <= p.ReadLen {
		return nil, fmt.Errorf("simdata: transcripts (%d bp) must exceed read length (%d bp)",
			p.MeanTranscriptLen, p.ReadLen)
	}
	if p.Paired && p.InsertSize <= p.ReadLen {
		return nil, fmt.Errorf("simdata: insert size %d must exceed read length %d", p.InsertSize, p.ReadLen)
	}
	rng := rand.New(rand.NewSource(p.Seed)) //rnavet:allow globalrand — profile-seeded source; generation is deterministic per Profile.Seed
	ds := &Dataset{Profile: p}
	ds.Genome = randomGenome(rng, p.GenomeSize)
	var err error
	ds.Transcripts, ds.Expression, err = buildTranscriptome(rng, ds.Genome, p)
	if err != nil {
		return nil, err
	}
	// Silence unexpressed genes.
	if p.ExpressedFraction > 0 && p.ExpressedFraction < 1 {
		for i := range ds.Expression {
			if rng.Float64() > p.ExpressedFraction {
				ds.Expression[i] = 0
			}
		}
		// Guarantee at least one expressed gene.
		any := false
		for _, e := range ds.Expression {
			if e > 0 {
				any = true
				break
			}
		}
		if !any {
			ds.Expression[0] = 1
		}
	}
	// Annotation track: the CDS-like central window of each gene.
	frac := p.AnnotationCDSFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	ds.Annotations = make([]seq.FastaRecord, len(ds.Transcripts))
	for i, tx := range ds.Transcripts {
		cdsLen := int(float64(len(tx.Seq)) * frac)
		if cdsLen < 1 {
			cdsLen = len(tx.Seq)
		}
		start := (len(tx.Seq) - cdsLen) / 2
		ds.Annotations[i] = seq.FastaRecord{
			ID:  tx.ID + "_cds",
			Seq: tx.Seq[start : start+cdsLen],
		}
	}
	ds.Reads = simulateReads(rng, ds.Transcripts, ds.Expression, p)
	return ds, nil
}

// randomGenome draws a uniform random genome. Uniform random sequence
// is nearly repeat-free, which mirrors the low-repeat prokaryote /
// fungal genomes the paper evaluates on.
func randomGenome(rng *rand.Rand, n int) []byte {
	bases := []byte{'A', 'C', 'G', 'T'}
	g := make([]byte, n)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	return g
}

// buildTranscriptome places non-overlapping genes on the genome and
// assigns each a spliced transcript (1–3 exons) and an expression
// level drawn from a heavy-tailed distribution.
func buildTranscriptome(rng *rand.Rand, genome []byte, p Profile) ([]seq.FastaRecord, []float64, error) {
	slotLen := len(genome) / p.NumGenes
	minLen := p.ReadLen + 20
	if slotLen < minLen+20 {
		return nil, nil, fmt.Errorf("simdata: genome %d bp too small for %d genes", len(genome), p.NumGenes)
	}
	// Family domains shared between paralogous genes.
	var motifs [][]byte
	if p.ParalogFraction > 0 {
		motifLen := 2*p.ReadLen + 20
		if motifLen > p.MeanTranscriptLen/2 {
			motifLen = p.MeanTranscriptLen / 2
		}
		nMotifs := p.NumGenes/12 + 1
		for m := 0; m < nMotifs; m++ {
			motifs = append(motifs, randomGenome(rng, motifLen))
		}
	}
	recs := make([]seq.FastaRecord, 0, p.NumGenes)
	expr := make([]float64, 0, p.NumGenes)
	for g := 0; g < p.NumGenes; g++ {
		slotStart := g * slotLen
		// Gene length: clamped geometric-ish variation around the mean.
		length := p.MeanTranscriptLen/2 + rng.Intn(p.MeanTranscriptLen)
		if length > slotLen-20 {
			length = slotLen - 20
		}
		if length < minLen {
			length = minLen
		}
		start := slotStart + rng.Intn(slotLen-length)
		pre := genome[start : start+length]
		// Splice: occasionally remove an internal "intron".
		var tx []byte
		if length > 3*minLen && rng.Float64() < 0.5 {
			intronStart := length/3 + rng.Intn(length/3)
			intronLen := 20 + rng.Intn(length/6)
			if intronStart+intronLen >= length-minLen {
				intronLen = length - minLen - intronStart
			}
			if intronLen > 0 {
				tx = append(append([]byte{}, pre[:intronStart]...), pre[intronStart+intronLen:]...)
			}
		}
		if tx == nil {
			tx = append([]byte{}, pre...)
		}
		// Paralogs: splice a shared family domain into the interior.
		if len(motifs) > 0 && rng.Float64() < p.ParalogFraction {
			motif := motifs[rng.Intn(len(motifs))]
			if len(tx) > len(motif)+2*minLen {
				at := minLen + rng.Intn(len(tx)-len(motif)-2*minLen)
				copy(tx[at:], motif)
			}
		}
		// Half the genes lie on the reverse strand.
		if rng.Float64() < 0.5 {
			tx = seq.ReverseComplement(tx)
		}
		recs = append(recs, seq.FastaRecord{ID: fmt.Sprintf("%s_gene%04d", p.Name, g), Seq: tx})
		// Log-normal-ish expression: most genes moderate, a few dominant.
		expr = append(expr, math.Exp(rng.NormFloat64()*1.1))
	}
	return recs, expr, nil
}

// simulateReads draws reads (or pairs) from transcripts proportionally
// to expression × length, with substitution errors, N calls and
// position-dependent quality.
func simulateReads(rng *rand.Rand, txs []seq.FastaRecord, expr []float64, p Profile) seq.ReadSet {
	// Sampling weights and total target base count.
	weights := make([]float64, len(txs))
	var wsum, txBases float64
	for i, t := range txs {
		weights[i] = expr[i] * float64(len(t.Seq))
		wsum += weights[i]
		txBases += float64(len(t.Seq))
	}
	targetBases := p.Coverage * txBases
	basesPerFragment := float64(p.ReadLen)
	if p.Paired {
		basesPerFragment *= 2
	}
	fragments := int(targetBases / basesPerFragment)
	rs := seq.ReadSet{Paired: p.Paired}
	for f := 0; f < fragments; f++ {
		// Weighted transcript choice.
		r := rng.Float64() * wsum
		ti := 0
		for ti < len(weights)-1 && r > weights[ti] {
			r -= weights[ti]
			ti++
		}
		tx := txs[ti].Seq
		if p.Paired {
			ins := p.InsertSize
			if ins > len(tx) {
				ins = len(tx)
			}
			if ins < p.ReadLen {
				continue
			}
			start := 0
			if len(tx) > ins {
				start = rng.Intn(len(tx) - ins + 1)
			}
			frag := tx[start : start+ins]
			r1 := mutate(rng, frag[:p.ReadLen], p)
			r2 := mutate(rng, seq.ReverseComplement(frag)[:p.ReadLen], p)
			id := fmt.Sprintf("%s_r%07d", p.Name, f)
			rs.Reads = append(rs.Reads,
				seq.Read{ID: id + "/1", Seq: r1, Qual: qualities(rng, p.ReadLen)},
				seq.Read{ID: id + "/2", Seq: r2, Qual: qualities(rng, p.ReadLen)},
			)
			continue
		}
		if len(tx) < p.ReadLen {
			continue
		}
		start := rng.Intn(len(tx) - p.ReadLen + 1)
		sr := tx[start : start+p.ReadLen]
		if rng.Float64() < 0.5 {
			sr = seq.ReverseComplement(sr)
		}
		rs.Reads = append(rs.Reads, seq.Read{
			ID:   fmt.Sprintf("%s_r%07d", p.Name, f),
			Seq:  mutate(rng, sr, p),
			Qual: qualities(rng, p.ReadLen),
		})
	}
	return rs
}

// mutate applies the error model to a copy of s.
func mutate(rng *rand.Rand, s []byte, p Profile) []byte {
	bases := []byte{'A', 'C', 'G', 'T'}
	out := append([]byte{}, s...)
	for i := range out {
		switch {
		case rng.Float64() < p.NRate:
			out[i] = 'N'
		case rng.Float64() < p.ErrorRate:
			out[i] = bases[rng.Intn(4)]
		}
	}
	return out
}

// qualities draws Phred scores that decay toward the 3' end, the
// classic Illumina profile.
func qualities(rng *rand.Rand, n int) []byte {
	q := make([]byte, n)
	for i := range q {
		base := 38 - 12*float64(i)/float64(n)
		jitter := rng.NormFloat64() * 3
		q[i] = seq.PhredToByte(int(base + jitter))
	}
	return q
}

// Resample draws a fresh read set from the dataset's transcriptome
// under a different expression vector — the way a second biological
// condition is simulated for differential-expression studies.
func (d *Dataset) Resample(expr []float64, seed int64) (seq.ReadSet, error) {
	if len(expr) != len(d.Transcripts) {
		return seq.ReadSet{}, fmt.Errorf("simdata: %d expressions for %d transcripts", len(expr), len(d.Transcripts))
	}
	rng := rand.New(rand.NewSource(seed)) //rnavet:allow globalrand — caller-supplied seed; resampling is deterministic per seed
	return simulateReads(rng, d.Transcripts, expr, d.Profile), nil
}

// ScaleRatio reports how much smaller the synthetic instance is than
// the paper's dataset, by raw data volume. Cost models use it to
// translate measured scaled work into full-scale virtual time.
func (d *Dataset) ScaleRatio() float64 {
	scaled := float64(d.Reads.ByteSize())
	if scaled == 0 {
		return 1
	}
	return float64(d.Profile.FullScale.SeqDataBytes) / scaled
}

// Subset returns a dataset with approximately the given fraction of
// fragments (used by Fig. 4's input-size sweep). Pairing is preserved.
func (d *Dataset) Subset(fraction float64) *Dataset {
	if fraction >= 1 {
		return d
	}
	if fraction <= 0 {
		fraction = 0.01
	}
	out := *d
	out.Reads = seq.ReadSet{Paired: d.Reads.Paired}
	step := d.Reads.Fragments()
	keep := int(float64(step) * fraction)
	if keep < 1 {
		keep = 1
	}
	stride := 1
	if d.Reads.Paired {
		stride = 2
	}
	for f := 0; f < keep; f++ {
		// Spread the kept fragments across the set deterministically.
		src := (f * step / keep) * stride
		for j := 0; j < stride; j++ {
			out.Reads.Reads = append(out.Reads.Reads, d.Reads.Reads[src+j])
		}
	}
	fs := out.Profile.FullScale
	fs.SeqDataBytes = int64(float64(fs.SeqDataBytes) * fraction)
	fs.Reads = int64(float64(fs.Reads) * fraction)
	fs.PostPreprocessBytes = int64(float64(fs.PostPreprocessBytes) * fraction)
	out.Profile.FullScale = fs
	return &out
}
