package mapreduce

import (
	"strings"
	"testing"
)

func BenchmarkWordCount(b *testing.B) {
	input := lines(strings.Repeat("alpha beta gamma delta ", 500))
	cfg := DefaultConfig(4)
	cfg.SplitBytes = 1 << 10
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(wordCount(), input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChain4Jobs(b *testing.B) {
	identity := Job{
		Name: "id",
		Map:  func(kv KV, emit func(KV)) { emit(kv) },
		Reduce: func(key string, values []string, emit func(KV)) {
			for _, v := range values {
				emit(KV{key, v})
			}
		},
	}
	input := lines(strings.Repeat("x ", 200))
	e, _ := NewEngine(DefaultConfig(4))
	jobs := []Job{identity, identity, identity, identity}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunChain(jobs, input); err != nil {
			b.Fatal(err)
		}
	}
}
