package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// Property: job output is independent of cluster shape — workers,
// slots, split size and reducer count affect time, never results.
func TestOutputInvariantUnderClusterShape(t *testing.T) {
	base := lines("the quick brown fox", "jumps over the lazy dog", "the the the")
	ref := func() string {
		e, _ := NewEngine(DefaultConfig(1))
		res, err := e.Run(wordCount(), base)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res.Output)
	}()
	f := func(workersRaw, slotsRaw, splitRaw, redRaw uint8) bool {
		cfg := DefaultConfig(int(workersRaw)%16 + 1)
		cfg.SlotsPerWorker = int(slotsRaw)%4 + 1
		cfg.SplitBytes = int64(splitRaw)%200 + 16
		e, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		job := wordCount()
		job.NumReducers = int(redRaw)%8 + 1
		res, err := e.Run(job, base)
		if err != nil {
			return false
		}
		return fmt.Sprint(res.Output) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: elapsed time is monotone non-increasing in worker count
// for a fixed job (more machines never hurt in this model).
func TestElapsedMonotoneInWorkers(t *testing.T) {
	input := lines(strings.Repeat("alpha beta gamma ", 200))
	f := func(wRaw uint8) bool {
		w := int(wRaw)%8 + 1
		cfg := DefaultConfig(w)
		cfg.SplitBytes = 256
		e, _ := NewEngine(cfg)
		small, err := e.Run(wordCount(), input)
		if err != nil {
			return false
		}
		cfg2 := cfg
		cfg2.Workers = w * 2
		e2, _ := NewEngine(cfg2)
		big, err := e2.Run(wordCount(), input)
		if err != nil {
			return false
		}
		return big.Elapsed <= small.Elapsed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a counting job conserves mass — the sum of word counts in
// the output equals the number of words in the input, regardless of
// combiner use.
func TestCountConservationProperty(t *testing.T) {
	f := func(wordsRaw []uint8) bool {
		if len(wordsRaw) == 0 {
			return true
		}
		var sb strings.Builder
		for _, w := range wordsRaw {
			fmt.Fprintf(&sb, "w%d ", w%7)
		}
		input := lines(sb.String())
		for _, withCombiner := range []bool{false, true} {
			job := wordCount()
			if withCombiner {
				job.Combine = func(key string, values []string) []string {
					sum := 0
					for _, v := range values {
						n, _ := strconv.Atoi(v)
						sum += n
					}
					return []string{strconv.Itoa(sum)}
				}
			}
			e, _ := NewEngine(DefaultConfig(3))
			res, err := e.Run(job, input)
			if err != nil {
				return false
			}
			total := 0
			for _, kv := range res.Output {
				n, _ := strconv.Atoi(kv.Value)
				total += n
			}
			if total != len(wordsRaw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
