// Package mapreduce simulates a Hadoop-era MapReduce engine, the
// substrate of the Contrail assembler in the paper.
//
// Jobs execute for real — mappers and reducers are Go functions over
// real key/value data — while elapsed time is accounted in virtual
// seconds: a fixed per-job setup cost (the "Hadoop tax" of job
// submission, JVM spawning and HDFS staging), per-task overheads, and
// input/shuffle volume divided by per-slot processing rates, list-
// scheduled over the cluster's task slots.
//
// The model reproduces the paper's Contrail observations: with few
// workers an iterative assembler is very slow because every round's
// tasks serialize over scarce slots, while with many workers round
// time approaches the fixed per-round overhead, letting Contrail
// converge toward (but not beat) the MPI assemblers' TTC.
package mapreduce

import (
	"fmt"
	"os"
	"sort"

	"rnascale/internal/vclock"
)

// KV is one key/value record.
type KV struct {
	Key   string
	Value string
}

// wireBytes estimates a record's serialized size, including framing.
func wireBytes(kv KV) int64 { return int64(len(kv.Key) + len(kv.Value) + 16) }

// TotalBytes sums the serialized size of a record set.
func TotalBytes(kvs []KV) int64 {
	var n int64
	for _, kv := range kvs {
		n += wireBytes(kv)
	}
	return n
}

// Job is one MapReduce job.
type Job struct {
	Name string
	// Map transforms one input record into zero or more intermediate
	// records.
	Map func(kv KV, emit func(KV))
	// Reduce folds all values of one key into zero or more output
	// records. Values arrive sorted for determinism.
	Reduce func(key string, values []string, emit func(KV))
	// Combine optionally pre-folds values map-side, cutting shuffle
	// volume. Same contract as Reduce's folding (must be associative).
	Combine func(key string, values []string) []string
	// NumReducers overrides the reducer task count (default: one per
	// worker).
	NumReducers int
}

// Config sizes the simulated Hadoop cluster.
type Config struct {
	// Workers is the number of worker nodes.
	Workers int
	// SlotsPerWorker is the concurrent task capacity per node
	// (Hadoop-1 era default: 2).
	SlotsPerWorker int
	// JobSetup is the fixed per-job overhead.
	JobSetup vclock.Duration
	// TaskOverhead is the per-task start cost (JVM spawn).
	TaskOverhead vclock.Duration
	// MapRate and ReduceRate are bytes processed per second per slot.
	MapRate, ReduceRate float64
	// SplitBytes is the map input split size (HDFS block).
	SplitBytes int64
	// VolumeScale multiplies byte volumes in *cost* computations
	// (default 1). Jobs that process scaled-down stand-in data but
	// must be billed at full dataset scale set this to the scale
	// ratio; together with a proportionally reduced SplitBytes, both
	// per-task cost and task fan-out land at full scale.
	VolumeScale float64
}

// DefaultConfig returns a cluster of n workers with Hadoop-1-era
// overheads, calibrated so that Contrail's Table III baseline (6,720 s
// at 2 nodes) and Fig. 3 convergence emerge.
func DefaultConfig(n int) Config {
	return Config{
		Workers:        n,
		SlotsPerWorker: 2,
		JobSetup:       25 * vclock.Second,
		TaskOverhead:   4 * vclock.Second,
		MapRate:        2e6,
		ReduceRate:     1.5e6,
		SplitBytes:     64 << 20,
	}
}

// Engine runs jobs on one simulated cluster.
type Engine struct {
	cfg Config
}

// NewEngine validates the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("mapreduce: %d workers", cfg.Workers)
	}
	if cfg.SlotsPerWorker <= 0 {
		return nil, fmt.Errorf("mapreduce: %d slots per worker", cfg.SlotsPerWorker)
	}
	if cfg.MapRate <= 0 || cfg.ReduceRate <= 0 {
		return nil, fmt.Errorf("mapreduce: non-positive processing rate")
	}
	if cfg.SplitBytes <= 0 {
		return nil, fmt.Errorf("mapreduce: split size %d", cfg.SplitBytes)
	}
	return &Engine{cfg: cfg}, nil
}

// Workers reports the configured worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// volumeScale normalizes the cost multiplier.
func (e *Engine) volumeScale() float64 {
	if e.cfg.VolumeScale <= 0 {
		return 1
	}
	return e.cfg.VolumeScale
}

// Result carries a finished job's output and accounting.
type Result struct {
	Output []KV
	// Elapsed is the job's virtual duration including setup.
	Elapsed vclock.Duration
	// MapTasks and ReduceTasks report the task fan-out.
	MapTasks, ReduceTasks int
	// ShuffleBytes is the intermediate volume after combining.
	ShuffleBytes int64
}

// Run executes one job over the input and returns its sorted output.
func (e *Engine) Run(job Job, input []KV) (Result, error) {
	if job.Map == nil || job.Reduce == nil {
		return Result{}, fmt.Errorf("mapreduce: job %q missing map or reduce", job.Name)
	}
	reducers := job.NumReducers
	if reducers <= 0 {
		reducers = e.cfg.Workers
	}

	// --- Split input ---
	splits := splitInput(input, e.cfg.SplitBytes)
	slots := vclock.NewSlotPool(e.cfg.Workers * e.cfg.SlotsPerWorker)

	// When billing a scaled stand-in dataset at full scale
	// (VolumeScale > 1), per-task costs are smoothed to the phase
	// mean: the full-scale job has VolumeScale× more records of
	// ordinary size, so the skew of individual oversized stand-in
	// records is an artifact that must not masquerade as straggler
	// tasks.
	smooth := e.volumeScale() > 1
	totalInput := float64(TotalBytes(input))

	// --- Map phase (real execution + virtual scheduling) ---
	interm := make([]map[string][]string, len(splits))
	for i, sp := range splits {
		m := make(map[string][]string)
		for _, kv := range sp {
			job.Map(kv, func(out KV) {
				m[out.Key] = append(m[out.Key], out.Value)
			})
		}
		if job.Combine != nil {
			for k, vs := range m {
				sort.Strings(vs)
				m[k] = job.Combine(k, vs)
			}
		}
		interm[i] = m
		taskBytes := float64(TotalBytes(sp))
		if smooth {
			taskBytes = totalInput / float64(len(splits))
		}
		cost := e.cfg.TaskOverhead + vclock.Duration(e.volumeScale()*taskBytes/e.cfg.MapRate)
		slots.Acquire(1, 0, cost)
	}
	mapDone := slots.Horizon()

	// --- Shuffle: partition by key hash ---
	partitions := make([]map[string][]string, reducers)
	for i := range partitions {
		partitions[i] = make(map[string][]string)
	}
	var shuffleBytes int64
	for _, m := range interm {
		for k, vs := range m {
			p := partitions[keyHash(k)%uint64(reducers)]
			p[k] = append(p[k], vs...)
			for _, v := range vs {
				shuffleBytes += int64(len(k) + len(v) + 16)
			}
		}
	}

	// --- Reduce phase ---
	rslots := vclock.NewSlotPool(e.cfg.Workers * e.cfg.SlotsPerWorker)
	var output []KV
	for _, p := range partitions {
		keys := make([]string, 0, len(p))
		var pbytes float64
		for k, vs := range p {
			keys = append(keys, k)
			for _, v := range vs {
				pbytes += float64(len(k) + len(v) + 16)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			vs := p[k]
			sort.Strings(vs)
			job.Reduce(k, vs, func(out KV) { output = append(output, out) })
		}
		if smooth {
			pbytes = float64(shuffleBytes) / float64(reducers)
		}
		cost := e.cfg.TaskOverhead + vclock.Duration(e.volumeScale()*pbytes/e.cfg.ReduceRate)
		rslots.Acquire(1, 0, cost)
	}
	reduceDone := rslots.Horizon()

	sort.Slice(output, func(a, b int) bool {
		if output[a].Key != output[b].Key {
			return output[a].Key < output[b].Key
		}
		return output[a].Value < output[b].Value
	})
	return Result{
		Output:       output,
		Elapsed:      e.cfg.JobSetup + vclock.Duration(mapDone) + vclock.Duration(reduceDone),
		MapTasks:     len(splits),
		ReduceTasks:  reducers,
		ShuffleBytes: shuffleBytes,
	}, nil
}

// RunChain executes jobs sequentially, feeding each job's output to
// the next, and returns the final output plus the summed duration —
// the execution pattern of iterative graph algorithms like Contrail.
func (e *Engine) RunChain(jobs []Job, input []KV) ([]KV, vclock.Duration, error) {
	cur := input
	var total vclock.Duration
	for i := range jobs {
		res, err := e.Run(jobs[i], cur)
		if err != nil {
			return nil, total, fmt.Errorf("mapreduce: chain step %d (%s): %w", i, jobs[i].Name, err)
		}
		cur = res.Output
		total += res.Elapsed
		if os.Getenv("MR_DEBUG") != "" {
			fmt.Fprintf(os.Stderr, "MRDBG job=%s elapsed=%v in=%d out=%d maps=%d reds=%d shuffle=%d\n",
				jobs[i].Name, res.Elapsed, len(cur), len(res.Output), res.MapTasks, res.ReduceTasks, res.ShuffleBytes)
		}
	}
	return cur, total, nil
}

// splitInput partitions records into contiguous splits of roughly
// maxBytes each (at least one split for non-empty input).
func splitInput(input []KV, maxBytes int64) [][]KV {
	if len(input) == 0 {
		return [][]KV{{}}
	}
	var splits [][]KV
	start := 0
	var acc int64
	for i, kv := range input {
		acc += wireBytes(kv)
		if acc >= maxBytes {
			splits = append(splits, input[start:i+1])
			start = i + 1
			acc = 0
		}
	}
	if start < len(input) {
		splits = append(splits, input[start:])
	}
	return splits
}

// keyHash is FNV-1a over the key.
func keyHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
