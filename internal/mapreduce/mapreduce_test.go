package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"rnascale/internal/vclock"
)

// wordCount is the canonical test job.
func wordCount() Job {
	return Job{
		Name: "wordcount",
		Map: func(kv KV, emit func(KV)) {
			for _, w := range strings.Fields(kv.Value) {
				emit(KV{Key: w, Value: "1"})
			}
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			sum := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			emit(KV{Key: key, Value: strconv.Itoa(sum)})
		},
	}
}

func lines(texts ...string) []KV {
	kvs := make([]KV, len(texts))
	for i, t := range texts {
		kvs[i] = KV{Key: strconv.Itoa(i), Value: t}
	}
	return kvs
}

func TestNewEngineValidation(t *testing.T) {
	bad := []Config{
		{},
		{Workers: 1},
		{Workers: 1, SlotsPerWorker: 1},
		{Workers: 1, SlotsPerWorker: 1, MapRate: 1, ReduceRate: 1},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEngine(DefaultConfig(2)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestWordCountCorrectness(t *testing.T) {
	e, _ := NewEngine(DefaultConfig(2))
	res, err := e.Run(wordCount(), lines("a b a", "b c", "a"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v", res.Output)
	}
	for _, kv := range res.Output {
		if want[kv.Key] != kv.Value {
			t.Errorf("%s = %s, want %s", kv.Key, kv.Value, want[kv.Key])
		}
	}
	if res.Elapsed <= DefaultConfig(2).JobSetup {
		t.Errorf("elapsed %v must exceed setup", res.Elapsed)
	}
}

func TestOutputSortedAndDeterministicAcrossWorkerCounts(t *testing.T) {
	input := lines("z y x", "x y", "w w w", "a z")
	var first []KV
	for _, workers := range []int{1, 2, 4, 16} {
		e, _ := NewEngine(DefaultConfig(workers))
		res, err := e.Run(wordCount(), input)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Output); i++ {
			if res.Output[i-1].Key > res.Output[i].Key {
				t.Fatalf("unsorted output at %d workers", workers)
			}
		}
		if first == nil {
			first = res.Output
			continue
		}
		if fmt.Sprint(res.Output) != fmt.Sprint(first) {
			t.Errorf("output differs at %d workers", workers)
		}
	}
}

func TestMissingFunctions(t *testing.T) {
	e, _ := NewEngine(DefaultConfig(1))
	if _, err := e.Run(Job{Name: "nil"}, nil); err == nil {
		t.Error("nil map/reduce accepted")
	}
}

func TestCombinerCutsShuffle(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.SplitBytes = 64 // force many splits
	e, _ := NewEngine(cfg)
	input := lines("a a a a a a", "a a a a", "a a a a a")
	plain, err := e.Run(wordCount(), input)
	if err != nil {
		t.Fatal(err)
	}
	combined := wordCount()
	combined.Combine = func(key string, values []string) []string {
		sum := 0
		for _, v := range values {
			n, _ := strconv.Atoi(v)
			sum += n
		}
		return []string{strconv.Itoa(sum)}
	}
	comb, err := e.Run(combined, input)
	if err != nil {
		t.Fatal(err)
	}
	if comb.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not cut shuffle: %d vs %d", comb.ShuffleBytes, plain.ShuffleBytes)
	}
	if fmt.Sprint(comb.Output) != fmt.Sprint(plain.Output) {
		t.Error("combiner changed the result")
	}
}

func TestSplitInput(t *testing.T) {
	input := lines("aaaa", "bbbb", "cccc", "dddd")
	per := wireBytes(input[0])
	splits := splitInput(input, per) // each record fills a split
	if len(splits) != 4 {
		t.Errorf("%d splits", len(splits))
	}
	splits = splitInput(input, 1<<40)
	if len(splits) != 1 {
		t.Errorf("giant split size: %d splits", len(splits))
	}
	splits = splitInput(nil, 100)
	if len(splits) != 1 || len(splits[0]) != 0 {
		t.Errorf("empty input splits: %v", splits)
	}
}

func TestFewWorkersSerialize(t *testing.T) {
	// 8 map tasks on 1 worker × 1 slot must take ~8× the per-task time.
	cfg := Config{Workers: 1, SlotsPerWorker: 1, JobSetup: 0,
		TaskOverhead: 10, MapRate: 1e9, ReduceRate: 1e9, SplitBytes: 18}
	e, _ := NewEngine(cfg)
	input := lines("a", "b", "c", "d", "e", "f", "g", "h")
	res, err := e.Run(wordCount(), input)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks < 4 {
		t.Fatalf("expected several map tasks, got %d", res.MapTasks)
	}
	serial := res.Elapsed

	cfg.Workers = 16
	e16, _ := NewEngine(cfg)
	res16, err := e16.Run(wordCount(), input)
	if err != nil {
		t.Fatal(err)
	}
	if float64(serial) < 3*float64(res16.Elapsed) {
		t.Errorf("1 worker %v vs 16 workers %v: expected strong serialization", serial, res16.Elapsed)
	}
}

func TestManyWorkersHitOverheadFloor(t *testing.T) {
	// With abundant workers, elapsed approaches setup + 2 task overheads.
	cfg := Config{Workers: 64, SlotsPerWorker: 2, JobSetup: 100,
		TaskOverhead: 5, MapRate: 1e9, ReduceRate: 1e9, SplitBytes: 1 << 20}
	e, _ := NewEngine(cfg)
	res, err := e.Run(wordCount(), lines("a b c", "d e f"))
	if err != nil {
		t.Fatal(err)
	}
	floor := cfg.JobSetup + 2*cfg.TaskOverhead
	if res.Elapsed < floor || res.Elapsed > floor+1 {
		t.Errorf("elapsed %v, want ≈ %v", res.Elapsed, floor)
	}
}

func TestRunChainIterates(t *testing.T) {
	// Each round appends one 'x' to every value; durations add up.
	round := Job{
		Name: "append",
		Map:  func(kv KV, emit func(KV)) { emit(KV{kv.Key, kv.Value + "x"}) },
		Reduce: func(key string, values []string, emit func(KV)) {
			for _, v := range values {
				emit(KV{key, v})
			}
		},
	}
	e, _ := NewEngine(DefaultConfig(2))
	out, total, err := e.RunChain([]Job{round, round, round}, lines("seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value != "seedxxx" {
		t.Errorf("chain output %v", out)
	}
	single, err := e.Run(round, lines("seed"))
	if err != nil {
		t.Fatal(err)
	}
	if total < 3*single.Elapsed-1 {
		t.Errorf("chain %v vs 3×%v: per-round cost lost", total, single.Elapsed)
	}
	// Chain with a broken job surfaces the error.
	if _, _, err := e.RunChain([]Job{{Name: "bad"}}, nil); err == nil {
		t.Error("bad chain step accepted")
	}
}

func TestReducerCountControlsPartitions(t *testing.T) {
	job := wordCount()
	job.NumReducers = 3
	e, _ := NewEngine(DefaultConfig(8))
	res, err := e.Run(job, lines("a b c d e f g h"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 3 {
		t.Errorf("reduce tasks %d", res.ReduceTasks)
	}
}

func TestElapsedScalesWithVolume(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.SplitBytes = 1 << 10
	e, _ := NewEngine(cfg)
	small, _ := e.Run(wordCount(), lines(strings.Repeat("word ", 100)))
	big, _ := e.Run(wordCount(), lines(strings.Repeat("word ", 20000)))
	if big.Elapsed <= small.Elapsed {
		t.Errorf("big input %v not slower than small %v", big.Elapsed, small.Elapsed)
	}
	_ = vclock.Duration(0)
}
