package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestReportSchemaGolden pins the JSON report shape byte for byte.
// Downstream tooling keys on the schema field and the finding layout;
// any change here must come with a SchemaVersion bump and a conscious
// regeneration via `go test -update`.
func TestReportSchemaGolden(t *testing.T) {
	res := &Result{
		Schema:       SchemaVersion,
		Checks:       []string{"goleak", "errdrop"},
		Packages:     2,
		FilesScanned: 5,
		Findings: []Diagnostic{{
			File:    "internal/example/example.go",
			Line:    12,
			Col:     3,
			Check:   "errdrop",
			Message: "error from (*journal.Writer).Append discarded",
		}},
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "golden", "schema.golden")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report shape changed — bump SchemaVersion and regenerate with -update.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSchemaVersionPinned keeps the constant itself from drifting
// silently: the golden above would catch a field change, this catches
// an accidental edit to the version string alone.
func TestSchemaVersionPinned(t *testing.T) {
	if SchemaVersion != "rnavet/v2" {
		t.Errorf("SchemaVersion = %q; a version change must be deliberate and documented in DESIGN.md", SchemaVersion)
	}
}
