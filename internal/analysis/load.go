package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// vclockSuffix identifies the virtual-time substrate; any package
// that depends on it is classified as a simulation package.
const vclockSuffix = "internal/vclock"

// simDirective marks a package as a simulation package explicitly
// (test fixtures cannot import internal/vclock).
const simDirective = "//rnavet:simulation"

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Deps       []string
	Module     *struct{ Path string }
}

// A Loader parses and type-checks packages against pre-built export
// data. Imports — standard library and module-local alike — are
// resolved through the gc importer from the export files the go tool
// reports, so whole-module analysis needs no source type-checking of
// dependencies and works fully offline.
type Loader struct {
	Fset *token.FileSet

	exports  map[string]string // import path -> export data file
	imp      types.Importer
	ioWriter *types.Interface
}

// NewLoader returns a loader resolving imports from the given export
// map (import path to export-data file, as produced by GoList).
func NewLoader(exports map[string]string) *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: exports}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}

// IOWriter returns the io.Writer interface type, or nil if the "io"
// package's export data is unavailable.
func (l *Loader) IOWriter() *types.Interface {
	if l.ioWriter != nil {
		return l.ioWriter
	}
	pkg, err := l.imp.Import("io")
	if err != nil {
		return nil
	}
	obj := pkg.Scope().Lookup("Writer")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	l.ioWriter = iface
	return iface
}

// GoList shells out to `go list -deps -export -json` for the given
// patterns, run in dir, and returns the listed packages. The -export
// flag makes the go tool build export data for every listed package,
// which is what lets the loader type-check any package in the module
// from source while importing all of its dependencies pre-compiled.
func GoList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,Standard,GoFiles,Deps,Module", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// ExportMap extracts the import-path-to-export-file map from a go
// list result.
func ExportMap(pkgs []*listedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// LoadOptions configures LoadModuleOptions.
type LoadOptions struct {
	// Patterns are the go list patterns; empty means ./... .
	Patterns []string
	// CacheDir, when non-empty, caches the `go list -deps -export`
	// result on disk keyed on the module's go.mod and source hashes
	// (see GoListCached), so repeated lints skip the go-tool walk.
	CacheDir string
	// Focus, when non-empty, restricts parsing and type-checking to
	// the local packages matching these patterns plus every local
	// package that (transitively) depends on one of them — the
	// reverse-dependency cone a change to those packages can affect.
	// Patterns accept an import path, a module-relative path
	// ("./internal/journal" or "internal/journal"), and a trailing
	// "/..." wildcard.
	Focus []string
}

// LoadModule loads, parses and type-checks every package matched by
// patterns (typically "./...") in the module containing dir. Test
// files are excluded: the checks guard production simulation code,
// and tests legitimately touch wall clocks.
func LoadModule(dir string, patterns ...string) ([]*Package, *Loader, error) {
	return LoadModuleOptions(dir, LoadOptions{Patterns: patterns})
}

// LoadModuleOptions is LoadModule with list caching and package
// focusing.
func LoadModuleOptions(dir string, opts LoadOptions) ([]*Package, *Loader, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// "io" rides along so maporder can resolve io.Writer even if no
	// analyzed package depends on it.
	args := append([]string{"io"}, patterns...)
	var listed []*listedPackage
	var err error
	if opts.CacheDir != "" {
		listed, _, err = GoListCached(dir, opts.CacheDir, args...)
	} else {
		listed, err = GoList(dir, args...)
	}
	if err != nil {
		return nil, nil, err
	}
	loader := NewLoader(ExportMap(listed))

	var modulePath string
	for _, lp := range listed {
		if !lp.Standard && lp.Module != nil {
			modulePath = lp.Module.Path
			break
		}
	}

	var locals []*listedPackage
	for _, lp := range listed {
		if !lp.Standard {
			locals = append(locals, lp)
		}
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].ImportPath < locals[j].ImportPath })
	if len(opts.Focus) > 0 {
		locals, err = focusPackages(locals, modulePath, opts.Focus)
		if err != nil {
			return nil, nil, err
		}
	}

	var pkgs []*Package
	for _, lp := range locals {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.loadSources(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkg.Simulation = isSimulation(lp, modulePath, pkg.Files)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, loader, nil
}

// focusPackages returns the local packages matching the focus
// patterns plus every local package whose (transitive) dependencies
// include a matched one. go list's Deps field is already transitive,
// so one membership scan closes the reverse-dependency cone.
func focusPackages(locals []*listedPackage, modulePath string, focus []string) ([]*listedPackage, error) {
	selected := map[string]bool{}
	for _, lp := range locals {
		for _, pat := range focus {
			if matchFocusPattern(lp.ImportPath, modulePath, pat) {
				selected[lp.ImportPath] = true
				break
			}
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("analysis: -pkg %s matches no package in module %s", strings.Join(focus, ","), modulePath)
	}
	var out []*listedPackage
	for _, lp := range locals {
		if selected[lp.ImportPath] {
			out = append(out, lp)
			continue
		}
		for _, d := range lp.Deps {
			if selected[d] {
				out = append(out, lp)
				break
			}
		}
	}
	return out, nil
}

// matchFocusPattern matches one focus pattern against a local import
// path. "rnascale/internal/journal", "internal/journal" and
// "./internal/journal" all name the same package; a trailing "/..."
// also selects everything below it.
func matchFocusPattern(importPath, modulePath, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	wild := pat == "..." || strings.HasSuffix(pat, "/...")
	pat = strings.TrimSuffix(pat, "...")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "" || pat == "." {
		return wild // "./..." selects every local package
	}
	for _, full := range []string{pat, modulePath + "/" + pat} {
		if importPath == full {
			return true
		}
		if wild && strings.HasPrefix(importPath, full+"/") {
			return true
		}
	}
	return false
}

// LoadDir loads a single directory as one package — the entry point
// golden-fixture tests use. Simulation classification comes from the
// //rnavet:simulation directive alone.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, err := l.loadSources(dir, importPath, names)
	if err != nil {
		return nil, err
	}
	pkg.Simulation = hasSimDirective(pkg.Files)
	return pkg, nil
}

// loadSources parses the named files in dir and type-checks them as
// one package, resolving every import through export data.
func (l *Loader) loadSources(dir, importPath string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Files: files,
		Fset:  l.Fset,
		Types: tpkg,
		Info:  info,
	}, nil
}

// isSimulation reports whether a listed package is subject to the
// simulation-only checks: it is the vclock package, depends on it,
// or carries the explicit directive.
func isSimulation(lp *listedPackage, modulePath string, files []*ast.File) bool {
	vclockPath := modulePath + "/" + vclockSuffix
	if lp.ImportPath == vclockPath {
		return true
	}
	for _, d := range lp.Deps {
		if d == vclockPath {
			return true
		}
	}
	return hasSimDirective(files)
}

// hasSimDirective reports whether any file carries //rnavet:simulation.
func hasSimDirective(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == simDirective {
					return true
				}
			}
		}
	}
	return false
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
