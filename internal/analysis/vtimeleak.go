package analysis

import (
	"go/ast"
	"go/types"
)

// VTimeLeakCheck reports exported functions and methods in simulation
// packages whose signatures traffic in time.Time or time.Duration.
// Simulated quantities must use vclock.Time/vclock.Duration: a
// wall-clock type on an exported boundary invites callers to plug
// real clock readings into the virtual-time model, which silently
// decouples reported TTC/cost from the controlled clock the paper's
// evaluation methodology depends on.
type VTimeLeakCheck struct{}

// Name implements Check.
func (*VTimeLeakCheck) Name() string { return "vtimeleak" }

// Doc implements Check.
func (*VTimeLeakCheck) Doc() string {
	return "exported simulation APIs must use vclock types, not time.Time/time.Duration"
}

// Run implements Check.
func (*VTimeLeakCheck) Run(p *Pass) {
	if !p.Pkg.Simulation {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			if leak := wallclockTypeIn(sig); leak != "" {
				kind := "function"
				if sig.Recv() != nil {
					kind = "method"
				}
				p.Reportf(fd.Name.Pos(),
					"exported %s %s leaks wall-clock type %s across a simulation API; use vclock.Time/vclock.Duration",
					kind, fd.Name.Name, leak)
			}
		}
	}
}

// wallclockTypeIn returns the qualified name of the first
// time.Time/time.Duration found in the signature's parameters or
// results, or "".
func wallclockTypeIn(sig *types.Signature) string {
	seen := make(map[types.Type]bool)
	for _, tuple := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tuple.Len(); i++ {
			if leak := findWallclockType(tuple.At(i).Type(), seen); leak != "" {
				return leak
			}
		}
	}
	return ""
}

// findWallclockType walks a type's structure looking for the time
// package's Time or Duration.
func findWallclockType(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" && (obj.Name() == "Time" || obj.Name() == "Duration") {
			return "time." + obj.Name()
		}
		// Do not descend into foreign named types' underlying
		// structure: a struct parameter that itself embeds a
		// time.Time is that type's own vtimeleak, reported where the
		// type is declared.
		return ""
	case *types.Pointer:
		return findWallclockType(t.Elem(), seen)
	case *types.Slice:
		return findWallclockType(t.Elem(), seen)
	case *types.Array:
		return findWallclockType(t.Elem(), seen)
	case *types.Map:
		if leak := findWallclockType(t.Key(), seen); leak != "" {
			return leak
		}
		return findWallclockType(t.Elem(), seen)
	case *types.Chan:
		return findWallclockType(t.Elem(), seen)
	case *types.Signature:
		for _, tuple := range []*types.Tuple{t.Params(), t.Results()} {
			for i := 0; i < tuple.Len(); i++ {
				if leak := findWallclockType(tuple.At(i).Type(), seen); leak != "" {
					return leak
				}
			}
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if leak := findWallclockType(t.Field(i).Type(), seen); leak != "" {
				return leak
			}
		}
	}
	return ""
}
