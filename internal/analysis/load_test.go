package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a temp dir and returns its
// root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// awkwardModule is a small module exercising the package shapes the
// loader must not trip over: a test-only package (no non-test Go
// files), a package with a build-tagged-out file, and a normal
// package depending on it.
func awkwardModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module awkward\n\ngo 1.22\n",
		"root.go": `package awkward

import "awkward/tagged"

// Use keeps the dependency on tagged live.
func Use() int { return tagged.Value() }
`,
		"tagged/tagged.go": `package tagged

// Value is the only symbol the active build sees.
func Value() int { return 1 }
`,
		"tagged/excluded.go": `//go:build never

package tagged

func hidden() int { return 2 }
`,
		"testonly/only_test.go": `package testonly

import "testing"

func TestNothing(t *testing.T) {}
`,
	})
}

// TestLoadModuleAwkwardShapes pins the loader's behavior on the
// shapes real modules grow: test-only packages are skipped (tests are
// out of scope), build-tagged-out files never reach the parser, and
// everything else loads.
func TestLoadModuleAwkwardShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := awkwardModule(t)
	pkgs, _, err := LoadModule(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	if _, ok := byPath["awkward"]; !ok {
		t.Errorf("package awkward not loaded; have %v", paths(pkgs))
	}
	tagged, ok := byPath["awkward/tagged"]
	if !ok {
		t.Fatalf("package awkward/tagged not loaded; have %v", paths(pkgs))
	}
	if len(tagged.Files) != 1 {
		t.Errorf("awkward/tagged loaded %d files; the //go:build never file must be excluded", len(tagged.Files))
	}
	if _, ok := byPath["awkward/testonly"]; ok {
		t.Error("test-only package awkward/testonly must be skipped, not loaded")
	}
}

// TestLoadModuleFocus pins -pkg semantics end to end on the awkward
// module: focusing on tagged selects tagged plus its reverse
// dependency (the root package), while testonly stays out.
func TestLoadModuleFocus(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := awkwardModule(t)
	pkgs, _, err := LoadModuleOptions(root, LoadOptions{Focus: []string{"tagged"}})
	if err != nil {
		t.Fatal(err)
	}
	got := paths(pkgs)
	want := []string{"awkward", "awkward/tagged"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("focus on tagged loaded %v, want %v", got, want)
	}

	if _, _, err := LoadModuleOptions(root, LoadOptions{Focus: []string{"nosuch"}}); err == nil {
		t.Error("focusing on a nonexistent package must fail loudly, not analyze nothing")
	}
}

// TestMissingExportDataDegrades type-checks a package whose imports
// cannot be resolved: the loader must return a clear error naming the
// missing export data, not panic.
func TestMissingExportDataDegrades(t *testing.T) {
	loader := NewLoader(map[string]string{})
	_, err := loader.LoadDir(filepath.Join("testdata", "src", "wallclock"), "fixture/broken")
	if err == nil {
		t.Fatal("want a load error when export data is missing")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Errorf("error should name the missing export data, got: %v", err)
	}
}

// TestMatchFocusPattern covers the accepted pattern spellings.
func TestMatchFocusPattern(t *testing.T) {
	const mod = "rnascale"
	cases := []struct {
		importPath, pat string
		want            bool
	}{
		{"rnascale/internal/journal", "internal/journal", true},
		{"rnascale/internal/journal", "./internal/journal", true},
		{"rnascale/internal/journal", "rnascale/internal/journal", true},
		{"rnascale/internal/journal", "internal/...", true},
		{"rnascale/internal/journal", "internal/journal/...", true}, // like go list, "/..." includes the root
		{"rnascale/internal/journal/sub", "internal/journal/...", true},
		{"rnascale/internal/journal", "internal/jour", false},
		{"rnascale/internal/journal", "./...", true},
		{"rnascale/cmd/rnavet", "internal/...", false},
	}
	for _, tc := range cases {
		if got := matchFocusPattern(tc.importPath, mod, tc.pat); got != tc.want {
			t.Errorf("matchFocusPattern(%q, %q) = %v, want %v", tc.importPath, tc.pat, got, tc.want)
		}
	}
}

func paths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}
