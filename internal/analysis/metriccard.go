package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MetricCardCheck enforces constant metric cardinality statically:
// every label value in an obs.Labels literal must be provably drawn
// from a bounded set at compile time. The per-surface tests pin
// cardinality dynamically for the series they exercise; this check
// makes the property module-wide, so a new call site cannot leak an
// unbounded string (run ID, tenant name, error text) into a label and
// blow up the registry.
//
// A label value passes when it is:
//
//   - a compile-time constant (literal, named constant, or any
//     expression go/types folds to a constant);
//   - a conversion from a closed enum — string(status) where the
//     operand's type is a defined type with at least one package-level
//     constant of that exact type;
//   - a String() call on a closed enum value (cloud.Backend);
//   - a local variable whose every assignment in the enclosing
//     function is one of the above (the start := "warm"; if cold
//     { start = "cold" } idiom).
//
// The check keys on the type's name and shape (a named map[string]string
// called Labels), not on the import path, so fixtures can declare
// their own obs-shaped registry.
type MetricCardCheck struct{}

// Name implements Check.
func (*MetricCardCheck) Name() string { return "metriccard" }

// Doc implements Check.
func (*MetricCardCheck) Doc() string {
	return "metric label values must be compile-time constants or closed-enum values"
}

// Run implements Check.
func (c *MetricCardCheck) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok && isLabelsLiteral(p, lit) {
				c.checkLiteral(p, lit, enclosingFuncDecl(f, lit.Pos()))
			}
			return true
		})
	}
}

// enclosingFuncDecl returns the top-level function declaration whose
// body contains pos, or nil (package-level literal).
func enclosingFuncDecl(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil &&
			fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}

// isLabelsLiteral reports whether lit is a non-empty composite
// literal of a named map[string]string type called Labels.
func isLabelsLiteral(p *Pass, lit *ast.CompositeLit) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	t := p.Pkg.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Labels" {
		return false
	}
	m, ok := named.Underlying().(*types.Map)
	if !ok {
		return false
	}
	k, kok := m.Key().(*types.Basic)
	v, vok := m.Elem().(*types.Basic)
	return kok && vok && k.Kind() == types.String && v.Kind() == types.String
}

func (c *MetricCardCheck) checkLiteral(p *Pass, lit *ast.CompositeLit, enclosing *ast.FuncDecl) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if c.boundedValue(p, kv.Value, enclosing) {
			continue
		}
		key := "label"
		if tv, ok := p.Pkg.Info.Types[kv.Key]; ok && tv.Value != nil {
			key = "label " + tv.Value.String()
		}
		p.Reportf(kv.Value.Pos(), "%s value is not a compile-time constant or closed-enum value; unbounded label values blow up metric cardinality — use a closed enum or bucket the value", key)
	}
}

// boundedValue reports whether e is provably drawn from a bounded set.
func (c *MetricCardCheck) boundedValue(p *Pass, e ast.Expr, enclosing *ast.FuncDecl) bool {
	e = ast.Unparen(e)
	if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		// string(enumValue) — a conversion from a closed enum.
		if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if t := p.Pkg.Info.TypeOf(call.Args[0]); t != nil && isClosedEnum(t) {
				return true
			}
		}
		// enumValue.String().
		if fn, sel := methodCall(p, call); fn != nil && fn.Name() == "String" {
			if t := p.Pkg.Info.TypeOf(sel.X); t != nil && isClosedEnum(derefType(t)) {
				return true
			}
		}
		return false
	}
	if id, ok := e.(*ast.Ident); ok && enclosing != nil {
		if obj, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && !obj.IsField() {
			return c.constOnlyLocal(p, obj, enclosing)
		}
	}
	return false
}

// isClosedEnum reports whether t is a defined type with a basic
// underlying type and at least one package-level constant of exactly
// that type — the closed-enum convention (gateway.RunStatus,
// faults.Class, cloud.Backend).
func isClosedEnum(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return false
	}
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		if cst, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(cst.Type(), t) {
			return true
		}
	}
	return false
}

// constOnlyLocal reports whether every write to obj in the enclosing
// function assigns a compile-time constant. Zero observed writes (a
// parameter, or a var fed from elsewhere) is not bounded.
func (c *MetricCardCheck) constOnlyLocal(p *Pass, obj *types.Var, fd *ast.FuncDecl) bool {
	writes, allConst := 0, true
	record := func(rhs ast.Expr) {
		writes++
		if tv, ok := p.Pkg.Info.Types[ast.Unparen(rhs)]; !ok || tv.Value == nil {
			allConst = false
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if p.Pkg.Info.Defs[id] == obj || p.Pkg.Info.Uses[id] == obj {
						record(n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if p.Pkg.Info.Defs[name] == obj && i < len(n.Values) {
					record(n.Values[i])
				}
			}
		}
		return true
	})
	return writes > 0 && allConst
}
