// Package analysis is rnascale's determinism and simulation-integrity
// analyzer ("rnavet"). It loads every package in the module with the
// standard library's go/parser and go/types, runs a set of
// project-specific checks, and reports diagnostics that would — if
// left in the tree — break the contracts the rest of the test suite
// pins: byte-identical chaos replays, worker-count-invariant sweeps,
// and resume-equals-uninterrupted journal replay.
//
// The analyzer is deliberately stdlib-only (go/ast, go/parser,
// go/token, go/types, go/importer plus os/exec to ask the go tool for
// export data), so it runs on the offline single-CPU build machine
// with nothing but the toolchain.
//
// # Checks
//
//   - wallclock:  simulation packages must not read the wall clock
//     (time.Now, time.Sleep, time.Since, ...); virtual time comes
//     from internal/vclock.
//   - globalrand: no math/rand package-level functions (hidden global
//     source), and no ad-hoc rand.New/rand.NewSource construction —
//     randomness flows from the seed-split PRNG in internal/faults,
//     or an explicitly seeded source annotated with an allow.
//   - maporder:   no range over a map whose body appends to a slice,
//     writes to an encoder/builder/io.Writer, or emits metrics —
//     unless the iteration is provably order-independent (key-indexed
//     writes) or the collected keys are sorted immediately after.
//   - vtimeleak:  exported functions in simulation packages must not
//     accept or return time.Time/time.Duration; virtual quantities
//     use vclock.Time/vclock.Duration.
//   - goleak:     every go statement needs a provable join path —
//     WaitGroup Add/Wait pairing in the spawning function, a stored
//     WaitGroup with Done in the body and Wait elsewhere in the
//     package, or a completion channel the body closes/sends on and
//     somebody receives from.
//   - lockheld:   no sync.Mutex/RWMutex held across a blocking
//     operation (file Sync/Write, channel send/receive, select
//     without default, net/http, journal Append/Sync/Close), no lock
//     copied by value, no lock-order inversion between functions.
//   - errdrop:    errors from durability-critical calls (journal
//     Append/Sync/Close/Repair, os.File.Sync) must be handled — not
//     discarded, blanked, deferred away, or assigned and never read.
//   - metriccard: metric label values in obs.Labels literals must be
//     compile-time constants or closed-enum values, so label
//     cardinality is bounded at compile time module-wide.
//
// # Simulation packages
//
// A package is a simulation package if it depends (directly or
// transitively) on rnascale/internal/vclock, or if any of its files
// carries a "//rnavet:simulation" comment (used by test fixtures).
//
// # Suppression
//
// A legitimate exception is annotated at the offending line (trailing
// comment) or on the line directly above it:
//
//	start := time.Now() //rnavet:allow wallclock — bench measures real elapsed time
//
// Every allow directive must name a known check, carry a reason, and
// actually suppress at least one diagnostic; violations of any of
// those rules are themselves diagnostics (check name "allow"), so
// stale suppressions cannot linger.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Check is one analysis pass. Checks are pure: they inspect a
// type-checked package and report diagnostics through the Pass.
type Check interface {
	// Name is the short identifier used in diagnostics, the -checks
	// flag and allow directives.
	Name() string
	// Doc is a one-line description for usage output.
	Doc() string
	// Run inspects one package.
	Run(p *Pass)
}

// AllowCheckName is the pseudo-check under which the driver reports
// problems with the suppression directives themselves (stale allows,
// unknown check names, missing reasons). It cannot be suppressed and
// cannot be disabled.
const AllowCheckName = "allow"

// Checks returns the full catalogue in reporting order.
func Checks() []Check {
	return []Check{
		&WallclockCheck{},
		&GlobalRandCheck{},
		&MapOrderCheck{},
		&VTimeLeakCheck{},
		&GoleakCheck{},
		&LockheldCheck{},
		&ErrDropCheck{},
		&MetricCardCheck{},
	}
}

// CheckNames returns the names of the full catalogue.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name())
	}
	return names
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the canonical "file:line:col [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("rnascale/internal/core").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files holds the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
	// Simulation marks packages subject to the wallclock and
	// vtimeleak checks (see the package documentation).
	Simulation bool
}

// A Pass hands one package to one check and collects its reports.
type Pass struct {
	Pkg *Package
	// IOWriter is the io.Writer interface type, used by maporder to
	// recognize emission targets; nil when "io" could not be loaded
	// (the structural tests still apply).
	IOWriter *types.Interface

	check string
	diags *[]Diagnostic
}

// Reportf records a diagnostic for the running check at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// sortDiagnostics orders diagnostics by file, line, column, then
// check name, so output is deterministic however checks ran.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
