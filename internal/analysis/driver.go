package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"io"
	"path/filepath"
	"strings"
)

// Options configures one driver run.
type Options struct {
	// Checks selects a subset of the catalogue by name; empty runs
	// every check.
	Checks []string
	// IOWriter lets maporder recognize io.Writer emission targets;
	// usually Loader.IOWriter().
	IOWriter *types.Interface
}

// SchemaVersion identifies the JSON report layout emitted by
// WriteJSON. Downstream tooling pins on it; bump it whenever the
// Result or Diagnostic field set changes shape, and update the
// schema golden test.
const SchemaVersion = "rnavet/v2"

// A Result is the outcome of analyzing a set of packages.
type Result struct {
	// Schema is SchemaVersion, stamped on every run so a consumer can
	// reject reports it does not understand.
	Schema string `json:"schema"`
	// Checks lists the checks that ran, in catalogue order.
	Checks []string `json:"checks"`
	// Packages and FilesScanned size the run.
	Packages     int `json:"packages"`
	FilesScanned int `json:"filesScanned"`
	// Findings holds the surviving diagnostics, position-sorted.
	Findings []Diagnostic `json:"findings"`
}

// Run executes the selected checks over the packages, applies the
// allow directives, and returns the surviving diagnostics.
func Run(pkgs []*Package, opts Options) (*Result, error) {
	catalogue := Checks()
	known := make(map[string]bool, len(catalogue))
	for _, c := range catalogue {
		known[c.Name()] = true
	}

	enabled := catalogue
	if len(opts.Checks) > 0 {
		byName := make(map[string]Check, len(catalogue))
		for _, c := range catalogue {
			byName[c.Name()] = c
		}
		enabled = enabled[:0:0]
		for _, name := range opts.Checks {
			c, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown check %q (have %s)", name, strings.Join(CheckNames(), ", "))
			}
			enabled = append(enabled, c)
		}
	}
	ran := make(map[string]bool, len(enabled))
	res := &Result{Schema: SchemaVersion, Packages: len(pkgs)}
	for _, c := range enabled {
		ran[c.Name()] = true
		res.Checks = append(res.Checks, c.Name())
	}

	var diags []Diagnostic
	var dirs []*allowDirective
	for _, pkg := range pkgs {
		res.FilesScanned += len(pkg.Files)
		for _, c := range enabled {
			pass := &Pass{Pkg: pkg, IOWriter: opts.IOWriter, check: c.Name(), diags: &diags}
			c.Run(pass)
		}
		dirs = append(dirs, parseAllowDirectives(pkg)...)
	}

	res.Findings = applyAllows(diags, dirs, known, ran)
	if res.Findings == nil {
		res.Findings = []Diagnostic{} // JSON reports render an empty list, not null
	}
	sortDiagnostics(res.Findings)
	return res, nil
}

// Rel rewrites finding paths relative to base, leaving paths outside
// base untouched. It keeps reports readable and goldens stable.
func (r *Result) Rel(base string) {
	for i := range r.Findings {
		if rel, err := filepath.Rel(base, r.Findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			r.Findings[i].File = rel
		}
	}
}

// WriteText renders findings one per line in the canonical
// "file:line:col [check] message" form.
func (r *Result) WriteText(w io.Writer) error {
	for _, d := range r.Findings {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full result as an indented JSON report.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary is the one-line description printed by make lint: what ran,
// over how much code, with how many findings.
func (r *Result) Summary() string {
	return fmt.Sprintf("rnavet: %d checks (%s) over %d packages / %d files: %d findings",
		len(r.Checks), strings.Join(r.Checks, ","), r.Packages, r.FilesScanned, len(r.Findings))
}
