package analysis

import (
	"go/ast"
	"go/types"
)

// globalRandAllowed lists the math/rand package-level identifiers
// that do not draw from the hidden global source. Source and
// generator construction (New, NewSource, NewZipf) is reported
// separately: the analyzer cannot prove a seed deterministic, so
// every construction site is either rewritten to use the seed-split
// PRNG in internal/faults or carries an auditable allow directive.
var globalRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalRandCheck reports math/rand usage that can smuggle
// nondeterminism into a run: package-level functions backed by the
// process-global source, and ad-hoc source construction.
type GlobalRandCheck struct{}

// Name implements Check.
func (*GlobalRandCheck) Name() string { return "globalrand" }

// Doc implements Check.
func (*GlobalRandCheck) Doc() string {
	return "no math/rand global-source functions or ad-hoc sources; thread seeded PRNGs"
}

// Run implements Check.
func (*GlobalRandCheck) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// rand.New(rand.NewSource(seed)) is one construction
			// site, not two: report the inner NewSource and skip the
			// wrapping New.
			if call, ok := n.(*ast.CallExpr); ok && len(call.Args) == 1 {
				if outer := mathRandObj(p, call.Fun); outer != nil && outer.Name() == "New" {
					if inner, ok := call.Args[0].(*ast.CallExpr); ok {
						if io := mathRandObj(p, inner.Fun); io != nil && io.Name() == "NewSource" {
							p.Reportf(inner.Pos(), "ad-hoc math/rand source; thread a seed-split stream from internal/faults, or annotate an explicitly seeded source")
							return false
						}
					}
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := mathRandObj(p, sel)
			if obj == nil {
				return true
			}
			switch {
			case globalRandConstructors[obj.Name()]:
				p.Reportf(sel.Pos(), "ad-hoc math/rand source; thread a seed-split stream from internal/faults, or annotate an explicitly seeded source")
			case isFunc(obj):
				p.Reportf(sel.Pos(), "math/rand.%s draws from the hidden global source; use an explicitly seeded stream", obj.Name())
			}
			return true
		})
	}
}

// mathRandObj resolves an expression to a package-level math/rand
// object, or nil.
func mathRandObj(p *Pass, e ast.Expr) types.Object {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Only package-qualified references: rand.Intn, not r.Intn.
	if id, ok := sel.X.(*ast.Ident); !ok {
		return nil
	} else if _, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName); !isPkg {
		return nil
	}
	obj := p.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if path := obj.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
		return nil
	}
	return obj
}

func isFunc(obj types.Object) bool {
	_, ok := obj.(*types.Func)
	return ok
}
