package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoleakCheck reports `go` statements with no provable join path. A
// goroutine that nobody waits for outlives its run: in the gateway it
// leaks across restarts, in the journal writer it races Close, and in
// a chaos soak it turns a byte-identical replay into a data race.
//
// A spawn is considered joined when any of the following holds:
//
//   - WaitGroup pairing in the spawning function: some WaitGroup X has
//     both X.Add and X.Wait in the function containing the go
//     statement (the classic fan-out/fan-in shape used by sweep's
//     pool and the MPI collective simulator);
//   - stored WaitGroup: the spawned body (a function literal or a
//     same-package method, resolved through its declaration) calls
//     X.Done() on a struct field X that some function in the package
//     calls X.Wait() on (the gateway worker pool: Add in NewServer,
//     Done in worker, Wait in Close);
//   - completion channel: the spawned body closes or sends on a
//     channel that the spawning function receives from, or — for a
//     struct-field channel — that any function in the package
//     receives from (the journal flusher: close(w.flusherDone) in the
//     flusher, <-w.flusherDone in Close).
//
// Deliberate process-lifetime daemons carry an //rnavet:allow goleak
// directive naming why the leak is bounded.
type GoleakCheck struct{}

// Name implements Check.
func (*GoleakCheck) Name() string { return "goleak" }

// Doc implements Check.
func (*GoleakCheck) Doc() string {
	return "every go statement needs a provable join: WaitGroup pairing, stored-pool Done/Wait, or a completion-channel receive"
}

// Run implements Check.
func (c *GoleakCheck) Run(p *Pass) {
	decls := declIndex(p)

	// Package-wide join evidence, keyed by object identity. For struct
	// fields the object is shared across instances, so Done in one
	// method pairs with Wait in another.
	waited := map[types.Object]bool{}   // WaitGroups with a Wait call anywhere
	received := map[types.Object]bool{} // channels received from anywhere
	for _, f := range p.Pkg.Files {
		collectJoinSinks(p, f, waited, received)
	}

	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					c.checkGo(p, decls, fd, gs, waited, received)
				}
				return true
			})
		}
	}
}

// collectJoinSinks records every X.Wait() on a WaitGroup and every
// receive (<-ch, range ch) under node n.
func collectJoinSinks(p *Pass, n ast.Node, waited, received map[types.Object]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, sel := methodCall(p, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				if named := recvNamed(fn); named != nil && named.Obj().Name() == "WaitGroup" {
					if obj := finalObj(p, sel.X); obj != nil {
						waited[obj] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := finalObj(p, n.X); obj != nil {
					received[obj] = true
				}
			}
		case *ast.RangeStmt:
			if t := p.Pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if obj := finalObj(p, n.X); obj != nil {
						received[obj] = true
					}
				}
			}
		}
		return true
	})
}

// checkGo decides whether one go statement has a join path and
// reports it when it does not. fd is the top-level function the spawn
// appears in; evidence from anywhere in fd counts as "same function"
// even when the spawn sits inside a nested literal (the benchmark
// kernels wrap Add/go/Wait in setup closures).
func (c *GoleakCheck) checkGo(p *Pass, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl, gs *ast.GoStmt, waited, received map[types.Object]bool) {
	// Local evidence: Adds, Waits and receives in the spawning function.
	added := map[types.Object]bool{}
	localWaited := map[types.Object]bool{}
	localReceived := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, sel := methodCall(p, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Add" {
				if named := recvNamed(fn); named != nil && named.Obj().Name() == "WaitGroup" {
					if obj := finalObj(p, sel.X); obj != nil {
						added[obj] = true
					}
				}
			}
		}
		return true
	})
	collectJoinSinks(p, fd.Body, localWaited, localReceived)

	// Rule 1: X.Add and X.Wait pair in the spawning function.
	for obj := range added {
		if localWaited[obj] {
			return
		}
	}

	// Resolve the spawned body: a literal, or a same-package function
	// or method declaration.
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if obj := finalObj(p, gs.Call.Fun); obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				if d := decls[fn]; d != nil {
					body = d.Body
				}
			}
		}
	}

	if body != nil && c.bodyJoins(p, body, localWaited, localReceived, waited, received) {
		return
	}

	p.Reportf(gs.Pos(), "goroutine has no provable join path (no WaitGroup Add/Wait pairing, no stored-pool Done/Wait, no completion-channel receive); a leaked goroutine outlives its run")
}

// bodyJoins reports whether the spawned body signals completion
// through a WaitGroup Done or a channel close/send that somebody
// observably waits on. Local variables must be joined in the spawning
// function; struct fields may be joined anywhere in the package.
func (c *GoleakCheck) bodyJoins(p *Pass, body *ast.BlockStmt, localWaited, localReceived, waited, received map[types.Object]bool) bool {
	joined := false
	observable := func(obj types.Object, local, pkgWide map[types.Object]bool) bool {
		if obj == nil {
			return false
		}
		if local[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		return ok && v.IsField() && pkgWide[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, sel := methodCall(p, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
				if named := recvNamed(fn); named != nil && named.Obj().Name() == "WaitGroup" {
					if observable(finalObj(p, sel.X), localWaited, waited) {
						joined = true
					}
				}
			}
			if isBuiltin(p, n, "close") && len(n.Args) == 1 {
				if observable(finalObj(p, n.Args[0]), localReceived, received) {
					joined = true
				}
			}
		case *ast.SendStmt:
			if observable(finalObj(p, n.Chan), localReceived, received) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}
