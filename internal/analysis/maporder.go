package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrderCheck reports ranges over maps whose bodies emit in
// iteration order: appending to a slice, writing to a builder,
// encoder or io.Writer, recording metrics or span events, or sending
// on a channel. Go randomizes map iteration, so any of these turns a
// byte-identical golden into a coin flip.
//
// Two shapes are recognized as order-independent and exempted:
//
//   - key-indexed writes, m2[k] = append(m2[k], ...), where k is the
//     range key: every iteration order produces the same map;
//   - collect-then-sort, keys = append(keys, k) followed — after the
//     loop, in the same block — by a sort or slices call over the
//     collected slice.
//
// Anything else either iterates sorted keys instead or carries an
// //rnavet:allow maporder directive.
type MapOrderCheck struct{}

// Name implements Check.
func (*MapOrderCheck) Name() string { return "maporder" }

// Doc implements Check.
func (*MapOrderCheck) Doc() string {
	return "no order-dependent emission from inside a range over a map"
}

// emitterTypes are accumulating output types recognized by receiver
// identity: writes to these inside a map range serialize map order.
var emitterTypes = map[string]bool{
	"bytes.Buffer":          true,
	"strings.Builder":       true,
	"bufio.Writer":          true,
	"encoding/json.Encoder": true,
	"encoding/xml.Encoder":  true,
}

// obsEmitMethods are the internal/obs methods that record a value or
// event; calling them per map-iteration orders metrics and traces
// nondeterministically.
var obsEmitMethods = map[string]bool{
	"Add":       true,
	"Inc":       true,
	"Set":       true,
	"SetAttr":   true,
	"SetAttrf":  true,
	"Observe":   true,
	"Event":     true,
	"StartSpan": true,
}

// Run implements Check.
func (c *MapOrderCheck) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				c.scanStmts(p, b.List)
			case *ast.CaseClause:
				c.scanStmts(p, b.Body)
			case *ast.CommClause:
				c.scanStmts(p, b.Body)
			}
			return true
		})
	}
}

// scanStmts examines the direct statements of one block, so each map
// range is analyzed exactly once, with access to the statements that
// follow it (for the collect-then-sort exemption).
func (c *MapOrderCheck) scanStmts(p *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rs, ok := s.(*ast.RangeStmt)
		if !ok || !isMapRange(p, rs) {
			continue
		}
		c.checkMapRange(p, rs, stmts[i+1:])
	}
}

func isMapRange(p *Pass, rs *ast.RangeStmt) bool {
	t := p.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body. rest holds the
// statements following the loop in its enclosing block.
func (c *MapOrderCheck) checkMapRange(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	keyObj := identObj(p, rs.Key)

	handled := make(map[*ast.CallExpr]bool)
	type candidate struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var candidates []candidate

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Nested map ranges are statements of some inner block and
		// get their own analysis; do not double-report their bodies.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapRange(p, inner) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isAppendCall(p, call) {
				return true
			}
			handled[call] = true
			// m2[k] = append(m2[k], ...): order-independent.
			if idx, ok := n.Lhs[0].(*ast.IndexExpr); ok && keyObj != nil && identObj(p, idx.Index) == keyObj {
				return true
			}
			if obj := identObj(p, n.Lhs[0]); obj != nil {
				candidates = append(candidates, candidate{obj, call})
				return true
			}
			p.Reportf(call.Pos(), "append inside range over map; iteration order leaks into the slice — iterate sorted keys")
		case *ast.CallExpr:
			if isAppendCall(p, n) {
				if !handled[n] {
					p.Reportf(n.Pos(), "append inside range over map; iteration order leaks into the slice — iterate sorted keys")
					handled[n] = true
				}
				return true
			}
			if desc := c.classifyEmission(p, n); desc != "" {
				p.Reportf(n.Pos(), "%s inside range over map; emission order follows randomized map iteration — iterate sorted keys", desc)
			}
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside range over map; receive order follows randomized map iteration — iterate sorted keys")
		}
		return true
	})

	reported := make(map[types.Object]bool)
	for _, cand := range candidates {
		if reported[cand.obj] || sortedAfter(p, rest, cand.obj) {
			continue
		}
		reported[cand.obj] = true
		p.Reportf(cand.call.Pos(), "append to %q inside range over map without sorting it afterwards; sort the collected slice or iterate sorted keys", cand.obj.Name())
	}
}

// classifyEmission describes an order-dependent output call, or
// returns "".
func (c *MapOrderCheck) classifyEmission(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := p.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	// Package-level fmt printers.
	if obj.Pkg().Path() == "fmt" && (strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
		return "fmt." + obj.Name() + " call"
	}
	selection := p.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := derefType(selection.Recv())
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	name := obj.Name()
	writeish := strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode")
	switch {
	case emitterTypes[qual] && writeish:
		return qual + "." + name + " write"
	case strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") && obsEmitMethods[name]:
		return "metrics/trace emission " + qual + "." + name
	case writeish && implementsWriter(p, selection.Recv()):
		return "io.Writer " + name + " on " + qual
	}
	return ""
}

// sortedAfter reports whether any statement in rest calls into
// package sort or slices mentioning obj — the collect-then-sort
// idiom.
func sortedAfter(p *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, s := range rest {
		var call *ast.CallExpr
		switch s := s.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				call, _ = s.Rhs[0].(*ast.CallExpr)
			}
		}
		if call == nil {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fn := p.Pkg.Info.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			continue
		}
		mentions := false
		ast.Inspect(call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			return true
		}
	}
	return false
}

// identObj resolves a plain identifier expression to its object
// (definition or use), or nil.
func identObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

func isAppendCall(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(p *Pass, t types.Type) bool {
	if p.IOWriter == nil {
		return false
	}
	if types.Implements(t, p.IOWriter) {
		return true
	}
	return types.Implements(types.NewPointer(t), p.IOWriter)
}
