package analysis

import (
	"go/token"
	"testing"
)

// TestTrimReason pins the separator grammar: em dash (the documented
// form), en dash, double and single hyphen, and bare reasons.
func TestTrimReason(t *testing.T) {
	cases := []struct{ in, want string }{
		{"— bench measures real time", "bench measures real time"},
		{"– spaced en dash", "spaced en dash"},
		{"-- double hyphen", "double hyphen"},
		{"- single hyphen", "single hyphen"},
		{"no separator at all", "no separator at all"},
		{"", ""},
		{"—", ""},
	}
	for _, c := range cases {
		if got := trimReason(c.in); got != c.want {
			t.Errorf("trimReason(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestAllowCovers pins the two-line coverage window: same line as the
// directive, or the line directly below — nothing else.
func TestAllowCovers(t *testing.T) {
	d := &allowDirective{
		pos:    token.Position{Filename: "f.go", Line: 10},
		check:  "wallclock",
		reason: "r",
	}
	diag := func(file string, line int, check string) Diagnostic {
		return Diagnostic{File: file, Line: line, Check: check}
	}
	cases := []struct {
		diag Diagnostic
		want bool
	}{
		{diag("f.go", 10, "wallclock"), true},
		{diag("f.go", 11, "wallclock"), true},
		{diag("f.go", 9, "wallclock"), false},
		{diag("f.go", 12, "wallclock"), false},
		{diag("g.go", 10, "wallclock"), false},
		{diag("f.go", 10, "maporder"), false},
	}
	for i, c := range cases {
		if got := d.covers(c.diag); got != c.want {
			t.Errorf("case %d: covers(%+v) = %v, want %v", i, c.diag, got, c.want)
		}
	}
}

// TestApplyAllowsStaleRespectsRanSet: a directive for a check that
// did not run this invocation must not be reported stale — otherwise
// `rnavet -checks wallclock` would flag every maporder allow in the
// tree.
func TestApplyAllowsStaleRespectsRanSet(t *testing.T) {
	known := map[string]bool{"wallclock": true, "maporder": true}
	dirs := []*allowDirective{
		{pos: token.Position{Filename: "f.go", Line: 3}, check: "maporder", reason: "r"},
	}
	out := applyAllows(nil, dirs, known, map[string]bool{"wallclock": true})
	if len(out) != 0 {
		t.Errorf("directive for non-run check reported: %v", out)
	}
	out = applyAllows(nil, dirs, known, map[string]bool{"maporder": true})
	if len(out) != 1 || out[0].Check != AllowCheckName {
		t.Errorf("want one stale-allow diagnostic, got %v", out)
	}
}

// TestApplyAllowsSuppressionCounts: one directive may cover several
// diagnostics on its line pair, and suppressed diagnostics vanish.
func TestApplyAllowsSuppressionCounts(t *testing.T) {
	known := map[string]bool{"globalrand": true}
	ran := map[string]bool{"globalrand": true}
	d := &allowDirective{pos: token.Position{Filename: "f.go", Line: 5}, check: "globalrand", reason: "r"}
	diags := []Diagnostic{
		{File: "f.go", Line: 5, Check: "globalrand", Message: "a"},
		{File: "f.go", Line: 6, Check: "globalrand", Message: "b"},
		{File: "f.go", Line: 9, Check: "globalrand", Message: "c"},
	}
	out := applyAllows(diags, []*allowDirective{d}, known, ran)
	if len(out) != 1 || out[0].Message != "c" {
		t.Errorf("want only the uncovered diagnostic to survive, got %v", out)
	}
	if d.used != 2 {
		t.Errorf("directive used count = %d, want 2", d.used)
	}
}
