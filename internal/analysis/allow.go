package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// allowPrefix starts a suppression directive. Grammar:
//
//	//rnavet:allow <check> — <reason>
//
// The separator may be an em dash, en dash, "--" or "-". The reason
// is mandatory: suppressions are audit records, not switches.
const allowPrefix = "//rnavet:allow"

// An allowDirective is one parsed suppression comment. A directive
// covers diagnostics of its check on the same line (trailing comment)
// or on the line directly below (standalone comment above the code).
type allowDirective struct {
	pos    token.Position
	check  string
	reason string
	used   int // diagnostics suppressed by this directive
}

// parseAllowDirectives scans a package's comments for allow
// directives.
func parseAllowDirectives(pkg *Package) []*allowDirective {
	var dirs []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				d := &allowDirective{pos: pkg.Fset.Position(c.Pos())}
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					d.check = rest[:i]
					d.reason = trimReason(rest[i:])
				} else {
					d.check = rest
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// trimReason strips the leading separator from the directive's tail.
func trimReason(s string) string {
	s = strings.TrimSpace(s)
	for _, sep := range []string{"—", "–", "--", "-"} {
		if strings.HasPrefix(s, sep) {
			return strings.TrimSpace(strings.TrimPrefix(s, sep))
		}
	}
	return s
}

// covers reports whether the directive suppresses a diagnostic: same
// file, same check, and the diagnostic sits on the directive's line
// or the line directly below it.
func (d *allowDirective) covers(diag Diagnostic) bool {
	return d.check == diag.Check &&
		d.pos.Filename == diag.File &&
		(diag.Line == d.pos.Line || diag.Line == d.pos.Line+1)
}

// applyAllows filters diags through the directives and appends the
// suppression system's own diagnostics: unknown check names, missing
// reasons, and stale directives that suppressed nothing. known lists
// every catalogue check; ran lists the checks that executed this run
// (a directive for a check that did not run cannot be judged stale).
func applyAllows(diags []Diagnostic, dirs []*allowDirective, known, ran map[string]bool) []Diagnostic {
	valid := make([]*allowDirective, 0, len(dirs))
	var out []Diagnostic
	for _, d := range dirs {
		switch {
		case d.check == "":
			out = append(out, allowDiag(d, "directive missing a check name; want //rnavet:allow <check> — <reason>"))
		case !known[d.check]:
			out = append(out, allowDiag(d, "unknown check %q in allow directive", d.check))
		case d.reason == "":
			out = append(out, allowDiag(d, "allow directive for %q missing a reason; suppressions must be auditable", d.check))
		default:
			valid = append(valid, d)
		}
	}
	for _, diag := range diags {
		suppressed := false
		for _, d := range valid {
			if d.covers(diag) {
				d.used++
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	for _, d := range valid {
		if d.used == 0 && ran[d.check] {
			out = append(out, allowDiag(d, "stale allow for %q: no diagnostic suppressed — remove the directive", d.check))
		}
	}
	return out
}

func allowDiag(d *allowDirective, format string, args ...any) Diagnostic {
	diag := Diagnostic{
		Pos:   d.pos,
		File:  d.pos.Filename,
		Line:  d.pos.Line,
		Col:   d.pos.Column,
		Check: AllowCheckName,
	}
	diag.Message = fmt.Sprintf(format, args...)
	return diag
}
