package analysis

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureExports builds one loader whose importer can resolve every
// stdlib package the fixtures use.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	listed, err := GoList(root, "time", "math/rand", "sort", "bytes", "fmt", "strings", "io", "encoding/json", "sync", "os")
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(ExportMap(listed))
}

// fixtures pairs each golden fixture package with the single check
// its golden pins. Running one check per fixture keeps each golden
// focused: it demonstrates both the caught violations and the
// respected allow directives of exactly that check. importPath
// overrides the default fixture/<name> when a check keys on the
// package path (errdrop recognizes journal types by path suffix).
var fixtures = []struct {
	name       string
	check      string
	importPath string
}{
	{name: "wallclock", check: "wallclock"},
	{name: "globalrand", check: "globalrand"},
	{name: "maporder", check: "maporder"},
	{name: "vtimeleak", check: "vtimeleak"},
	{name: "allowbad", check: "globalrand"},
	{name: "goleak", check: "goleak"},
	{name: "lockheld", check: "lockheld"},
	{name: "errdrop", check: "errdrop", importPath: "fixture/errdrop/internal/journal"},
	{name: "metriccard", check: "metriccard"},
}

func TestGoldenFixtures(t *testing.T) {
	loader := fixtureLoader(t)
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fx.name)
			importPath := fx.importPath
			if importPath == "" {
				importPath = "fixture/" + fx.name
			}
			pkg, err := loader.LoadDir(dir, importPath)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run([]*Package{pkg}, Options{Checks: []string{fx.check}, IOWriter: loader.IOWriter()})
			if err != nil {
				t.Fatal(err)
			}
			abs, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			res.Rel(abs)
			var buf bytes.Buffer
			if err := res.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", "golden", fx.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test -update): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("golden mismatch for %s\n--- got ---\n%s--- want ---\n%s", fx.name, got, want)
			}
		})
	}
}

// TestSimulationClassification pins the two classification paths: the
// explicit fixture directive, and absence of it.
func TestSimulationClassification(t *testing.T) {
	loader := fixtureLoader(t)
	sim, err := loader.LoadDir(filepath.Join("testdata", "src", "wallclock"), "fixture/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Simulation {
		t.Error("wallclock fixture should be classified as a simulation package (//rnavet:simulation)")
	}
	plain, err := loader.LoadDir(filepath.Join("testdata", "src", "globalrand"), "fixture/globalrand")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Simulation {
		t.Error("globalrand fixture should not be a simulation package")
	}
}

// TestSimOnlyChecksSkipNonSimPackages runs the simulation-only checks
// over a fixture full of wall-clock reads but without the simulation
// directive: nothing may be reported.
func TestSimOnlyChecksSkipNonSimPackages(t *testing.T) {
	loader := fixtureLoader(t)
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "src", "wallclock", "wallclock.go"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.ReplaceAll(string(src), "//rnavet:simulation", "")
	if err := os.WriteFile(filepath.Join(dir, "wallclock.go"), []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/notsim")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]*Package{pkg}, Options{Checks: []string{"wallclock", "vtimeleak"}})
	if err != nil {
		t.Fatal(err)
	}
	// The package is no longer simulated, so the wallclock allows in
	// the fixture cannot be judged stale either: with the check
	// finding nothing, its directives must stay quiet too? No — a
	// directive that suppresses nothing while its check ran IS stale.
	// Filter those out; assert no wallclock/vtimeleak findings.
	for _, d := range res.Findings {
		if d.Check != AllowCheckName {
			t.Errorf("unexpected finding in non-simulation package: %s", d)
		}
	}
}

// TestAllowRemovalResurfacesDiagnostic strips every allow directive
// from the wallclock fixture and asserts the suppressed diagnostics
// come back — the property that makes shipped allows load-bearing.
func TestAllowRemovalResurfacesDiagnostic(t *testing.T) {
	loader := fixtureLoader(t)
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "src", "wallclock", "wallclock.go"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(src), "\n") {
		// Drop standalone directive lines; truncate trailing ones.
		if i := strings.Index(line, "//rnavet:allow"); i >= 0 {
			if strings.HasPrefix(strings.TrimSpace(line), "//rnavet:allow") {
				continue
			}
			line = strings.TrimRight(line[:i], " \t")
		}
		kept = append(kept, line)
	}
	if err := os.WriteFile(filepath.Join(dir, "wallclock.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/wallclock-stripped")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]*Package{pkg}, Options{Checks: []string{"wallclock"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Findings); got != 5 {
		var buf bytes.Buffer
		res.WriteText(&buf)
		t.Errorf("want 5 wallclock findings after stripping allows, got %d:\n%s", got, buf.String())
	}
}

// TestUnknownCheckRejected pins the -checks validation path.
func TestUnknownCheckRejected(t *testing.T) {
	if _, err := Run(nil, Options{Checks: []string{"nosuch"}}); err == nil {
		t.Error("want error for unknown check name")
	}
}

// TestModuleShipsClean runs the full analyzer over the entire module
// — the same invocation `make lint` uses — and requires zero
// findings. This is the acceptance gate: every true positive in the
// tree is fixed, every legitimate exception carries a live allow
// directive, and no shipped directive is stale.
func TestModuleShipsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, loader, err := LoadModule(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pkgs, Options{IOWriter: loader.IOWriter()})
	if err != nil {
		t.Fatal(err)
	}
	res.Rel(root)
	if len(res.Findings) != 0 {
		var buf bytes.Buffer
		res.WriteText(&buf)
		t.Errorf("module is not rnavet-clean:\n%s", buf.String())
	}
	if res.Packages == 0 || res.FilesScanned == 0 {
		t.Errorf("suspiciously empty run: %s", res.Summary())
	}
	// The simulation classifier must have found the core simulation
	// packages; if it ever regresses to zero, the wallclock and
	// vtimeleak checks silently stop guarding anything.
	sims := 0
	for _, p := range pkgs {
		if p.Simulation {
			sims++
		}
	}
	if sims < 5 {
		t.Errorf("only %d simulation packages classified; expected the vclock-dependent core", sims)
	}
}
