package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the light intra-procedural machinery shared by the
// concurrency and durability checks (goleak, lockheld, errdrop,
// metriccard): object resolution for identifier/selector chains,
// receiver classification, and the catalogue of calls treated as
// blocking or durability-critical. The walks stay deliberately
// shallow — one function body at a time, one call level for
// lock-ordering — because the analyzer's job is to keep the obvious
// invariants obvious, not to prove the absence of every deadlock.

// journalPathSuffix identifies the write-ahead journal package; its
// Append/Sync/Close/Repair methods are both blocking (they wait on
// group-commit durability) and durability-critical (their errors void
// the torn-tail and hash-chain guarantees when dropped). Fixture
// packages opt in by carrying the suffix in their import path.
const journalPathSuffix = "internal/journal"

// durabilityMethods are the journal methods whose returned error must
// never be discarded: a swallowed fsync outcome silently voids the
// resume and tamper-evidence contracts.
var durabilityMethods = map[string]bool{
	"Append": true,
	"Sync":   true,
	"Close":  true,
	"Repair": true,
}

// declIndex maps each function object to its declaration, so checks
// can inspect the body of a same-package callee (`go w.flusher()`).
func declIndex(p *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// finalObj resolves the rightmost identifier of a plain identifier or
// selector chain (x, s.mu, s.w.file) to its object. For a field
// selector this is the field's declaration object, which is shared by
// every instance of the struct — exactly the identity the lock and
// join analyses want.
func finalObj(p *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := p.Pkg.Info.Uses[e]; o != nil {
			return o
		}
		return p.Pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return p.Pkg.Info.Uses[e.Sel]
	case *ast.ParenExpr:
		return finalObj(p, e.X)
	}
	return nil
}

// methodCall unpacks a selector call, returning the resolved callee
// and the selector (nil, nil when the call is not selector-shaped).
func methodCall(p *Pass, call *ast.CallExpr) (*types.Func, *ast.SelectorExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, _ := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil, nil
	}
	return fn, sel
}

// recvNamed returns the named type of a method's receiver (through
// one pointer), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, _ := derefType(sig.Recv().Type()).(*types.Named)
	return named
}

// isMutexType reports whether t (through one pointer) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// typeCarriesMutex reports whether t is a mutex or a struct with a
// directly embedded or named mutex field — the types whose by-value
// copies split a critical section in two.
func typeCarriesMutex(t types.Type) bool {
	if isMutexType(t) {
		return true
	}
	st, ok := derefType(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// lockOp classifies a call as a mutex acquisition (+1) or release
// (-1), returning the mutex's identity object. sync.Cond.Wait is not
// an acquisition or a blocking operation here: it releases the mutex
// while parked, which is the sanctioned way to wait under a lock.
func lockOp(p *Pass, call *ast.CallExpr) (types.Object, int) {
	fn, sel := methodCall(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, 0
	}
	var dir int
	switch fn.Name() {
	case "Lock", "RLock":
		dir = 1
	case "Unlock", "RUnlock":
		dir = -1
	default:
		return nil, 0
	}
	obj := finalObj(p, sel.X)
	if obj == nil {
		return nil, 0
	}
	// s.mu.Lock() resolves to the mu field; t.Lock() on an embedded
	// mutex resolves to t, whose type carries the mutex.
	if !isMutexType(obj.Type()) && !typeCarriesMutex(obj.Type()) {
		return nil, 0
	}
	return obj, dir
}

// blockingDesc describes a call that can block for an unbounded time
// — the operations lockheld refuses to see under a held mutex — or
// returns "". The set is deliberately narrow (file syncs and writes,
// HTTP, journal durability calls, WaitGroup waits, sleeps): writes to
// in-memory builders and unknown interface calls stay silent so the
// check points at real contention, not plumbing.
func blockingDesc(p *Pass, call *ast.CallExpr) string {
	fn, _ := methodCall(p, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if path == "time" && name == "Sleep" {
		return "time.Sleep"
	}
	if path == "net/http" {
		return "net/http " + name
	}
	named := recvNamed(fn)
	if named == nil {
		return ""
	}
	if path == "sync" && name == "Wait" && named.Obj().Name() == "WaitGroup" {
		return "sync.WaitGroup.Wait"
	}
	rp, rn := "", named.Obj().Name()
	if named.Obj().Pkg() != nil {
		rp = named.Obj().Pkg().Path()
	}
	switch {
	case rp == "os" && rn == "File" &&
		(name == "Sync" || name == "Write" || name == "WriteString" || name == "ReadFrom"):
		return "os.File." + name
	case strings.HasSuffix(rp, journalPathSuffix) && durabilityMethods[name]:
		return "journal " + rn + "." + name
	}
	return ""
}

// durabilityCallDesc describes a durability-critical call whose error
// result errdrop requires handled, or returns "": the journal
// package's Append/Sync/Close/Repair and os.File.Sync (the fsync that
// makes everything else durable).
func durabilityCallDesc(p *Pass, call *ast.CallExpr) string {
	fn, _ := methodCall(p, call)
	if fn == nil {
		return ""
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	rp, rn, name := named.Obj().Pkg().Path(), named.Obj().Name(), fn.Name()
	if rp == "os" && rn == "File" && name == "Sync" {
		return "os.File.Sync"
	}
	if strings.HasSuffix(rp, journalPathSuffix) && durabilityMethods[name] && signatureReturnsError(fn) {
		return rn + "." + name
	}
	return ""
}

// signatureReturnsError reports whether any result of fn is error.
func signatureReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isTerminalCall reports syntactically whether call never returns:
// panic, os.Exit, or a log.Fatal variant. The held-lock merge uses
// this so branches that die do not poison the fall-through state.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Exit"
	}
	return false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
