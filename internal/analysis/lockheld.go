package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockheldCheck enforces three mutex disciplines, all intra-procedural:
//
//   - no blocking operation while a sync.Mutex/RWMutex is held: file
//     Sync/Write, channel send/receive, select without default,
//     net/http calls, journal Append/Sync/Close, sleeps and WaitGroup
//     waits. The group-commit batcher and the gateway event log are
//     one refactor away from a lock-ordering deadlock here, so the
//     deliberate cases (the segmented event log serializes appends
//     under its mutex by design) carry allows instead of relying on
//     review memory.
//   - no lock copied by value: a function whose receiver or parameter
//     carries a mutex by value splits the critical section between
//     the copy and the original.
//   - no lock-order inversion: if one function acquires B while
//     holding A and another acquires A while holding B (directly or
//     via a same-package callee's first-level acquisitions), both
//     sites are reported.
//
// The held-set walk is a simple abstract interpretation over
// statements: branches fork a copy, fall-through merges by
// intersection, branches that end in return/panic do not contribute,
// and `defer mu.Unlock()` keeps the lock held to the end of the
// function. Function literals get their own walk with an empty held
// set — a goroutine does not inherit its parent's locks.
// sync.Cond.Wait is deliberately not a blocking operation: it
// releases the mutex while parked.
type LockheldCheck struct{}

// Name implements Check.
func (*LockheldCheck) Name() string { return "lockheld" }

// Doc implements Check.
func (*LockheldCheck) Doc() string {
	return "no blocking operation, lock copy, or lock-order inversion while a mutex is held"
}

// heldLock is one held mutex, remembered with where it was acquired
// so diagnostics can point at both ends.
type heldLock struct {
	obj types.Object
	pos token.Pos
}

// lockPairSite records "inner acquired while outer held" with the
// position of the inner acquisition (or the call that performs it).
type lockPairSite struct {
	outer, inner types.Object
	pos          token.Pos
}

type lockheldWalker struct {
	p        *Pass
	acquires map[*types.Func][]types.Object // direct acquisitions per declared function
	pairs    []lockPairSite                 // in deterministic walk order
}

// Run implements Check.
func (c *LockheldCheck) Run(p *Pass) {
	w := &lockheldWalker{p: p, acquires: map[*types.Func][]types.Object{}}

	// Pass 1: each declared function's directly acquired mutexes, for
	// the one-level callee expansion of the ordering analysis.
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var objs []types.Object
			seen := map[types.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if obj, dir := lockOp(p, call); dir == 1 && !seen[obj] {
						seen[obj] = true
						objs = append(objs, obj)
					}
				}
				return true
			})
			if len(objs) > 0 {
				w.acquires[fn] = objs
			}
		}
	}

	// Pass 2: walk every function body with a held set; function
	// literals are walked independently (empty held set).
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			c.checkCopies(p, fd)
			if fd.Body == nil {
				continue
			}
			w.walkBody(fd.Body)
		}
	}

	c.reportInversions(p, w.pairs)
}

// checkCopies reports mutex-bearing receivers and parameters passed
// by value.
func (c *LockheldCheck) checkCopies(p *Pass, fd *ast.FuncDecl) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Pkg.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if typeCarriesMutex(t) {
				p.Reportf(field.Pos(), "%s copies a mutex by value; the copy and the original no longer exclude each other — use a pointer", what)
			}
		}
	}
	flag(fd.Recv, "receiver")
	if fd.Type != nil {
		flag(fd.Type.Params, "parameter")
	}
}

// walkBody walks one function body (declared function or literal)
// with a fresh held set, and recursively dispatches every function
// literal it encounters.
func (w *lockheldWalker) walkBody(body *ast.BlockStmt) {
	var held []heldLock
	w.walkStmts(body.List, &held)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkBody(fl.Body)
			return false
		}
		return true
	})
}

// walkStmts interprets a statement list against the held set,
// returning whether the list ends by leaving the function (return,
// branch, panic, fatal exit).
func (w *lockheldWalker) walkStmts(stmts []ast.Stmt, held *[]heldLock) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockheldWalker) walkStmt(s ast.Stmt, held *[]heldLock) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			return true
		}
	case *ast.SendStmt:
		w.reportIfHeld(*held, s.Pos(), "channel send")
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; any
		// other deferred call runs after the body, so its blocking
		// behavior is not "under the lock" in a way this walk can
		// order — skip it. The deferred expression's own arguments
		// are evaluated now, though.
		if obj, dir := lockOp(w.p, s.Call); obj != nil && dir == -1 {
			return false
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
	case *ast.GoStmt:
		// The spawned call runs elsewhere with no inherited locks;
		// only its argument expressions evaluate here.
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		thenHeld := copyHeld(*held)
		thenTerm := w.walkStmts(s.Body.List, &thenHeld)
		elseHeld := copyHeld(*held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, &elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*held = elseHeld
		case elseTerm:
			*held = thenHeld
		default:
			*held = intersectHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		bodyHeld := copyHeld(*held)
		w.walkStmts(s.Body.List, &bodyHeld)
		if s.Post != nil {
			w.walkStmt(s.Post, &bodyHeld)
		}
		// Assume the loop body is lock-balanced; keep the pre-loop set.
	case *ast.RangeStmt:
		if t := w.p.Pkg.Info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.reportIfHeld(*held, s.Pos(), "channel receive (range)")
			}
		}
		w.scanExpr(s.X, held)
		bodyHeld := copyHeld(*held)
		w.walkStmts(s.Body.List, &bodyHeld)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				clauseHeld := copyHeld(*held)
				w.walkStmts(cc.Body, &clauseHeld)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				clauseHeld := copyHeld(*held)
				w.walkStmts(cc.Body, &clauseHeld)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.reportIfHeld(*held, s.Pos(), "select without default")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				clauseHeld := copyHeld(*held)
				w.walkStmts(cc.Body, &clauseHeld)
			}
		}
	}
	return false
}

// scanExpr walks an expression in evaluation order-ish preorder,
// applying lock operations, reporting blocking calls and receives
// while a lock is held, and recording ordering pairs. Function
// literal bodies are skipped (walkBody handles them with a fresh
// held set).
func (w *lockheldWalker) scanExpr(e ast.Expr, held *[]heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportIfHeld(*held, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.applyCall(n, held)
		}
		return true
	})
}

// applyCall handles one call against the held set.
func (w *lockheldWalker) applyCall(call *ast.CallExpr, held *[]heldLock) {
	if obj, dir := lockOp(w.p, call); obj != nil {
		if dir == 1 {
			for _, h := range *held {
				if h.obj != obj {
					w.pairs = append(w.pairs, lockPairSite{outer: h.obj, inner: obj, pos: call.Pos()})
				}
			}
			*held = append(*held, heldLock{obj: obj, pos: call.Pos()})
		} else {
			*held = removeHeld(*held, obj)
		}
		return
	}
	if desc := blockingDesc(w.p, call); desc != "" {
		w.reportIfHeld(*held, call.Pos(), desc)
		return
	}
	// Same-package callee: its direct acquisitions order after every
	// currently held lock.
	if obj := finalObj(w.p, call.Fun); obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			for _, inner := range w.acquires[fn] {
				for _, h := range *held {
					if h.obj != inner {
						w.pairs = append(w.pairs, lockPairSite{outer: h.obj, inner: inner, pos: call.Pos()})
					}
				}
			}
		}
	}
}

func (w *lockheldWalker) reportIfHeld(held []heldLock, pos token.Pos, what string) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	w.p.Reportf(pos, "%s while %q is held (acquired at %s); a blocked holder stalls every other critical section", what, h.obj.Name(), w.p.Pkg.Fset.Position(h.pos))
}

// reportInversions finds pairs acquired in both orders and reports
// each site, naming the opposite-order location.
func (c *LockheldCheck) reportInversions(p *Pass, pairs []lockPairSite) {
	type key struct{ outer, inner types.Object }
	first := map[key]token.Pos{}
	for _, pr := range pairs {
		k := key{pr.outer, pr.inner}
		if _, ok := first[k]; !ok {
			first[k] = pr.pos
		}
	}
	reported := map[token.Pos]bool{}
	for _, pr := range pairs {
		opp, ok := first[key{pr.inner, pr.outer}]
		if !ok || reported[pr.pos] {
			continue
		}
		reported[pr.pos] = true
		p.Reportf(pr.pos, "lock order inversion: %q acquired while %q is held, but the opposite order occurs at %s — pick one order", pr.inner.Name(), pr.outer.Name(), p.Pkg.Fset.Position(opp))
	}
}

func copyHeld(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

func removeHeld(held []heldLock, obj types.Object) []heldLock {
	var out []heldLock
	for _, h := range held {
		if h.obj != obj {
			out = append(out, h)
		}
	}
	return out
}

func intersectHeld(a, b []heldLock) []heldLock {
	var out []heldLock
	for _, h := range a {
		for _, g := range b {
			if h.obj == g.obj {
				out = append(out, h)
				break
			}
		}
	}
	return out
}
