package analysis

import (
	"go/ast"
)

// wallclockBanned lists the package time functions that read or wait
// on the wall clock. Simulation packages must derive every timestamp
// and delay from internal/vclock; a single stray time.Now silently
// breaks byte-identical replay, because two runs of the same seed
// would diverge in their reported timings.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// WallclockCheck reports wall-clock reads in simulation packages.
type WallclockCheck struct{}

// Name implements Check.
func (*WallclockCheck) Name() string { return "wallclock" }

// Doc implements Check.
func (*WallclockCheck) Doc() string {
	return "simulation packages must not read the wall clock; use internal/vclock"
}

// Run implements Check. It walks the syntax for selector references
// (rather than ranging the type-checker's Uses map, whose iteration
// order is itself nondeterministic) and resolves each through the
// type info.
func (*WallclockCheck) Run(p *Pass) {
	if !p.Pkg.Simulation {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if wallclockBanned[obj.Name()] {
				p.Reportf(sel.Pos(), "call to time.%s in simulation package; virtual time must come from internal/vclock", obj.Name())
			}
			return true
		})
	}
}
