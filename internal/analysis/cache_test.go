package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoListCachedRoundTrip pins the cache lifecycle on a throwaway
// module: a cold call misses and writes an entry, an identical call
// hits, and editing any source file invalidates the key.
func TestGoListCachedRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := writeTree(t, map[string]string{
		"go.mod":  "module cached\n\ngo 1.22\n",
		"main.go": "package cached\n\nfunc V() int { return 1 }\n",
	})
	cacheDir := filepath.Join(root, "build", "rnavet-cache")

	pkgs, hit, err := GoListCached(root, cacheDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first call must miss the empty cache")
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "cached" {
		t.Fatalf("unexpected list result: %+v", pkgs)
	}

	pkgs2, hit, err := GoListCached(root, cacheDir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second identical call must hit the cache")
	}
	if len(pkgs2) != 1 || pkgs2[0].ImportPath != "cached" {
		t.Fatalf("cached result diverged: %+v", pkgs2)
	}

	// Different patterns key differently even with identical sources.
	if _, hit, err = GoListCached(root, cacheDir, "."); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("a different pattern set must not reuse the ./... entry")
	}

	// Content edits invalidate: the cached Export paths are
	// content-addressed, so a stale hit would type-check old code.
	src := filepath.Join(root, "main.go")
	if err := os.WriteFile(src, []byte("package cached\n\nfunc V() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit, err = GoListCached(root, cacheDir, "./..."); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("editing a source file must invalidate the cache entry")
	}
	if _, hit, err = GoListCached(root, cacheDir, "./..."); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error("the post-edit entry must itself be hittable")
	}
}

// TestGoListCachedDropsDeadExports simulates a trimmed go build
// cache: an entry whose Export files vanished must fall back to a
// fresh go list instead of type-checking against nothing.
func TestGoListCachedDropsDeadExports(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := writeTree(t, map[string]string{
		"go.mod":  "module cached\n\ngo 1.22\n",
		"main.go": "package cached\n\nfunc V() int { return 1 }\n",
	})
	cacheDir := filepath.Join(root, "build", "rnavet-cache")
	if _, _, err := GoListCached(root, cacheDir, "./..."); err != nil {
		t.Fatal(err)
	}

	// Corrupt the entry in place: point its Export somewhere dead
	// without touching sources, so the key still matches.
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (%v)", entries, err)
	}
	entry := filepath.Join(cacheDir, entries[0].Name())
	if err := os.WriteFile(entry, []byte(`[{"ImportPath":"cached","Export":"/nonexistent/export.a"}]`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, hit, err := GoListCached(root, cacheDir, "./..."); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("an entry referencing dead export data must be treated as a miss")
	}
}
