package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDropCheck reports discarded or shadowed errors on
// durability-critical calls: the journal's Append/Sync/Close/Repair
// and os.File.Sync. A swallowed fsync error silently voids the
// torn-tail and hash-chain guarantees — the run looks durable, the
// disk disagrees, and the divergence only surfaces on the next crash
// resume, far from the cause.
//
// Four shapes are flagged:
//
//   - the bare call statement (result discarded entirely);
//   - assignment of the error result to the blank identifier;
//   - `defer w.Close()` (the deferred error has nowhere to go —
//     capture it in a defer closure against a named return);
//   - assignment to an error variable that is never read afterwards
//     in the enclosing function (shadowed or dead).
//
// Deliberate drops on error-path cleanup (close-on-failed-open, where
// the original error wins) carry //rnavet:allow errdrop directives.
type ErrDropCheck struct{}

// Name implements Check.
func (*ErrDropCheck) Name() string { return "errdrop" }

// Doc implements Check.
func (*ErrDropCheck) Doc() string {
	return "errors from durability-critical calls (journal Append/Sync/Close/Repair, os.File.Sync) must be handled"
}

// Run implements Check.
func (c *ErrDropCheck) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(p, fd)
		}
	}
}

func (c *ErrDropCheck) checkFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if desc := durabilityCallDesc(p, call); desc != "" {
					p.Reportf(call.Pos(), "error from %s discarded; a dropped durability error voids the journal's crash guarantees — handle it", desc)
				}
			}
		case *ast.DeferStmt:
			if desc := durabilityCallDesc(p, n.Call); desc != "" {
				p.Reportf(n.Pos(), "deferred %s discards its error; capture it in a defer closure against a named return", desc)
			}
		case *ast.GoStmt:
			if desc := durabilityCallDesc(p, n.Call); desc != "" {
				p.Reportf(n.Pos(), "error from %s discarded by go statement; handle it inside the goroutine", desc)
			}
		case *ast.AssignStmt:
			c.checkAssign(p, fd, n)
		}
		return true
	})
}

// checkAssign flags blank or never-read error results of a
// durability call on the right-hand side.
func (c *ErrDropCheck) checkAssign(p *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	desc := durabilityCallDesc(p, call)
	if desc == "" {
		return
	}
	fn, _ := methodCall(p, call)
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(as.Lhs) {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			p.Reportf(id.Pos(), "error from %s assigned to the blank identifier; a dropped durability error voids the journal's crash guarantees — handle it", desc)
			continue
		}
		var obj types.Object = p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if !readAfter(p, fd, obj, as) {
			p.Reportf(id.Pos(), "error from %s assigned to %q but never read afterwards (shadowed or dead); handle it", desc, id.Name)
		}
	}
}

// readAfter reports whether obj is read after the assignment in the
// enclosing function. Position-based, with one refinement: inside a
// loop, a use anywhere in the loop body counts (it executes after the
// assignment on the next iteration).
func readAfter(p *Pass, fd *ast.FuncDecl, obj types.Object, as *ast.AssignStmt) bool {
	searchFrom := as.End()
	if loop := enclosingLoop(fd, as); loop != nil {
		searchFrom = loop.Pos()
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() < searchFrom || p.Pkg.Info.Uses[id] != obj {
			return true
		}
		// The identifiers of the assignment itself are writes, not reads.
		for _, lhs := range as.Lhs {
			if lhs == n {
				return true
			}
		}
		// A use on another assignment's LHS is a write, not a read —
		// unless it is a compound position (index expression etc.),
		// which we conservatively count as a read.
		if w, ok := identIsWrite(fd, id); ok && w {
			return true
		}
		found = true
		return false
	})
	return found
}

// enclosingLoop returns the innermost for/range statement containing
// stmt, or nil.
func enclosingLoop(fd *ast.FuncDecl, stmt ast.Stmt) ast.Stmt {
	var loop ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body.Pos() <= stmt.Pos() && stmt.End() <= n.Body.End() {
				loop = n
			}
		case *ast.RangeStmt:
			if n.Body.Pos() <= stmt.Pos() && stmt.End() <= n.Body.End() {
				loop = n
			}
		}
		return true
	})
	return loop
}

// identIsWrite reports (isWrite, known): whether id appears as a bare
// left-hand side of some assignment in fd.
func identIsWrite(fd *ast.FuncDecl, id *ast.Ident) (bool, bool) {
	write, known := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhs == id {
				write, known = true, true
			}
		}
		return !known
	})
	return write, known
}
