// Package maporder is a golden fixture for the maporder check.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

// Leak collects map values in iteration order with no sort after the
// loop: the slice's order is a coin flip.
func Leak(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // caught: no sort after the loop
	}
	return out
}

// Render writes per-key lines straight to a buffer and a writer.
func Render(m map[string]int) string {
	var b bytes.Buffer
	for k, v := range m {
		b.WriteString(k)            // caught: buffer write
		fmt.Fprintf(&b, "=%d\n", v) // caught: fmt.Fprintf
	}
	return b.String()
}

// Stream sends map entries down a channel in iteration order.
func Stream(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // caught: channel send
	}
}

// SortedKeys is the sanctioned collect-then-sort idiom: the append is
// exempt because the collected slice is sorted before use.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Regroup is the key-indexed shape: every iteration order produces
// the same output map, so the append is exempt.
func Regroup(m map[string][]int, mod int) map[string][]int {
	out := make(map[string][]int)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// Checksum folds values commutatively; arithmetic accumulation is
// order-independent and not caught.
func Checksum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Sample intentionally emits in map order (a debugging dump whose
// order is documented as unstable); the allow directive records that.
func Sample(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //rnavet:allow maporder — fixture: debug dump, order documented unstable
	}
	return out
}
