// Package metriccard is a golden fixture for the metriccard check.
// It declares its own obs-shaped Labels map and registry: the check
// keys on the named Labels map type, not the import path, so label
// values here are judged exactly like real obs call sites.
package metriccard

import "fmt"

// Labels mirrors obs.Labels.
type Labels map[string]string

// Counter mirrors the obs counter handle.
type Counter struct{}

// Inc bumps the counter.
func (c *Counter) Inc() {}

// Registry mirrors the obs registry surface.
type Registry struct{}

// Counter returns the counter for the given label set.
func (r *Registry) Counter(name, help string, labels Labels) *Counter { return &Counter{} }

// Status is a closed enum: a defined string type with package-level
// constants.
type Status string

// The closed set of Status values.
const (
	StatusOK   Status = "ok"
	StatusFail Status = "fail"
)

// Backend is a closed int enum with a String method.
type Backend int

// The closed set of Backend values.
const (
	OnDemand Backend = iota
	Spot
)

// String names the backend.
func (b Backend) String() string {
	if b == Spot {
		return "spot"
	}
	return "ondemand"
}

const constReason = "timeout"

// Bounded passes: literals, named constants, enum conversions, enum
// String calls, and a local assigned only constants.
func Bounded(r *Registry, s Status, b Backend, cold bool) {
	start := "warm"
	if cold {
		start = "cold"
	}
	r.Counter("runs_total", "Runs.", Labels{"reason": constReason, "status": string(s)}).Inc()
	r.Counter("backend_total", "Backends.", Labels{"backend": b.String(), "start": start, "kind": "fixed"}).Inc()
}

// Unbounded leaks arbitrary strings into label values.
func Unbounded(r *Registry, user string, n int) {
	r.Counter("requests_total", "Requests.", Labels{"user": user}).Inc()
	r.Counter("shards_total", "Shards.", Labels{"shard": fmt.Sprintf("s-%d", n)}).Inc()
}

// Request carries an unbounded tenant name.
type Request struct{ Tenant string }

// PerTenant leaks a struct field into a label.
func PerTenant(r *Registry, q Request) {
	r.Counter("tenant_total", "Tenants.", Labels{"tenant": q.Tenant}).Inc()
}

// Rebound flags a local that is reassigned from a parameter — not
// every write is constant.
func Rebound(r *Registry, kind string) {
	k := "fixed"
	k = kind
	r.Counter("kinds_total", "Kinds.", Labels{"kind": k}).Inc()
}

// Allowed records a deliberately data-driven label.
func Allowed(r *Registry, vmType string) {
	r.Counter("vm_total", "VMs.", Labels{"type": vmType}).Inc() //rnavet:allow metriccard — fixture: vmType is drawn from the fixed VM catalogue
}
