// Package vtimeleak is a golden fixture for the vtimeleak check.
//
//rnavet:simulation
package vtimeleak

import "time"

// Clock is an exported simulation type used by the fixture's methods.
type Clock struct{ now float64 }

// Elapsed returns a wall-clock duration from a simulation API.
func Elapsed(a, b float64) time.Duration { // caught: result leaks time.Duration
	return time.Duration(b-a) * time.Second
}

// SetDeadline accepts a wall-clock timestamp on a simulation API.
func (c *Clock) SetDeadline(t time.Time) {} // caught: param leaks time.Time

// Timeouts hides the leak one level down, inside a slice.
func Timeouts(ds []time.Duration) {} // caught: element type leaks time.Duration

// Bridge converts to wall-clock types at an explicitly sanctioned
// boundary (e.g. feeding a real HTTP server timeout).
//
//rnavet:allow vtimeleak — fixture: sanctioned bridge to real-time APIs
func Bridge(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// Advance uses plain numbers; nothing leaks.
func (c *Clock) Advance(d float64) { c.now += d }

// helper is unexported, so wall-clock types are its own business.
func helper(d time.Duration) float64 { return d.Seconds() }
