// Package wallclock is a golden fixture for the wallclock check.
//
//rnavet:simulation
package wallclock

import "time"

// Tick reads the wall clock three ways; every read is a violation in
// a simulation package.
func Tick() float64 {
	start := time.Now()           // caught
	time.Sleep(time.Millisecond)  // caught
	return time.Since(start).Seconds() // caught
}

// Calibrate measures real elapsed time on purpose; the directive on
// the line above the call suppresses the diagnostic.
func Calibrate() time.Time {
	//rnavet:allow wallclock — calibration measures real elapsed time by design
	return time.Now()
}

// Deadline uses a trailing directive on the offending line itself.
func Deadline() <-chan time.Time {
	return time.After(time.Second) //rnavet:allow wallclock — fixture exercises trailing-comment suppression
}

// virtualNow is fine: no wall-clock reference.
func virtualNow(now float64) float64 { return now + 1 }
