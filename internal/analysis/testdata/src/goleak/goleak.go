// Package goleak is a golden fixture for the goleak check: spawns
// with no join path are caught; WaitGroup pairing, stored-pool
// Done/Wait, completion channels and annotated daemons pass.
package goleak

import "sync"

// Leak spawns a goroutine nobody joins.
func Leak() {
	go func() {
		println("orphan")
	}()
}

// LeakNamed spawns a named function with no join evidence anywhere.
func LeakNamed() {
	go helper()
}

func helper() { println("work") }

// Joined pairs Add and Wait in the spawning function — the classic
// fan-out/fan-in.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Pool joins its worker through a stored WaitGroup: Done in the
// spawned method, Wait in Stop.
type Pool struct {
	wg sync.WaitGroup
}

// Start launches the pool's worker.
func (p *Pool) Start() {
	p.wg.Add(1)
	go p.run()
}

func (p *Pool) run() {
	defer p.wg.Done()
}

// Stop joins the worker.
func (p *Pool) Stop() {
	p.wg.Wait()
}

// Flusher joins through a completion channel: the body closes done,
// Close receives it.
type Flusher struct {
	done chan struct{}
}

// Start launches the flusher goroutine.
func (f *Flusher) Start() {
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
	}()
}

// Close waits for the flusher to exit.
func (f *Flusher) Close() {
	<-f.done
}

// LocalSignal joins a local spawn through a local channel received in
// the same function.
func LocalSignal() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// Daemon is a deliberate process-lifetime goroutine; the allow
// records why the leak is bounded.
func Daemon(tick chan struct{}) {
	go func() { //rnavet:allow goleak — fixture: process-lifetime daemon, dies with the process
		for range tick {
			println("tick")
		}
	}()
}
