// Package globalrand is a golden fixture for the globalrand check.
package globalrand

import "math/rand"

// Roll draws from the hidden global source; both calls are caught.
func Roll() int {
	rand.Shuffle(3, func(i, j int) {}) // caught: global source
	return rand.Intn(6)                // caught: global source
}

// Fresh constructs an ad-hoc generator. The composite
// rand.New(rand.NewSource(...)) is reported once, at the NewSource.
func Fresh(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // caught: ad-hoc source
}

// Seeded is an explicitly seeded, deterministic source; the allow
// directive records why it is legitimate.
func Seeded(seed int64) *rand.Rand {
	//rnavet:allow globalrand — fixture: deterministic profile-seeded source
	return rand.New(rand.NewSource(seed))
}

// Derived uses an already-threaded generator; method calls on a
// *rand.Rand value are not construction sites and are not caught.
func Derived(rng *rand.Rand) int { return rng.Intn(6) }
