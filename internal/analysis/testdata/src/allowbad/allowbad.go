// Package allowbad is a golden fixture for the suppression system's
// own diagnostics: stale directives, unknown check names, and
// missing reasons.
package allowbad

import "math/rand"

// Quiet has nothing to suppress: the directive below is stale.
func Quiet() int {
	//rnavet:allow globalrand — nothing here actually uses math/rand
	return 42
}

// Typo names a check that does not exist.
func Typo() int {
	//rnavet:allow mapodrer — misspelled check name
	return 7
}

// Bare gives no reason, so the directive is inert and the underlying
// diagnostic is still reported.
func Bare() int {
	//rnavet:allow globalrand
	return rand.Intn(6) // caught: the reasonless directive does not suppress
}

// NoName is an allow directive with no check at all.
func NoName() int {
	//rnavet:allow
	return 1
}
