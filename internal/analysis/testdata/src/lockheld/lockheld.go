// Package lockheld is a golden fixture for the lockheld check:
// blocking operations under a held mutex, locks copied by value, and
// lock-order inversions are caught; unlock-before-block, the
// early-return idiom and annotated deliberate holds pass.
package lockheld

import (
	"os"
	"sync"
)

// Store guards a channel and a file with a mutex.
type Store struct {
	mu sync.Mutex
	ch chan int
	f  *os.File
}

// SendUnderLock sends on a channel while holding mu.
func (s *Store) SendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v
	s.mu.Unlock()
}

// RecvUnderLock receives with the lock held through a deferred
// unlock.
func (s *Store) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch
}

// SyncUnderLock fsyncs while holding the lock.
func (s *Store) SyncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// SelectUnderLock parks in a select with no default while holding
// the lock.
func (s *Store) SelectUnderLock(stop chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-stop:
	case v := <-s.ch:
		println(v)
	}
}

// UnlockFirst releases the lock before blocking.
func (s *Store) UnlockFirst(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// EarlyReturn's taken branch unlocks and returns; the fall-through
// path never blocks while held.
func (s *Store) EarlyReturn(ok bool) int {
	s.mu.Lock()
	if ok {
		s.mu.Unlock()
		return <-s.ch
	}
	s.mu.Unlock()
	return 0
}

// Counter carries a mutex; copying it by value splits the critical
// section.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Read copies the receiver's mutex.
func (c Counter) Read() int {
	return c.n
}

// Snapshot copies a mutex-bearing struct through a parameter.
func Snapshot(c Counter) int {
	return c.n
}

// Pair acquires its two locks in both orders across two methods —
// the inversion shape.
type Pair struct {
	a, b sync.Mutex
	n    int
}

// AB locks a then b.
func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// BA locks b then a — the opposite order.
func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// DeliberateHold keeps the lock across a send by design; the allow
// records the contract that makes it safe.
func (s *Store) DeliberateHold(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v //rnavet:allow lockheld — fixture: the channel is buffered and drained by the owner, so the send cannot block
}
