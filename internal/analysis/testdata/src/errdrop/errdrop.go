// Package errdrop is a golden fixture for the errdrop check. It is
// loaded under the import path fixture/errdrop/internal/journal, so
// its own Writer stands in for the real journal types the check
// recognizes by package-path suffix.
package errdrop

import "os"

// Record is one journal record.
type Record struct{ Seq int }

// Writer is the fixture's durability-critical writer.
type Writer struct{ f *os.File }

// Append appends one record.
func (w *Writer) Append(rec Record) (Record, error) { return rec, nil }

// Sync forces the journal to disk.
func (w *Writer) Sync() error { return nil }

// Close flushes and closes the journal.
func (w *Writer) Close() error { return nil }

// Repair truncates a torn tail.
func (w *Writer) Repair() error { return nil }

// DiscardAll drops every durability error on the floor.
func DiscardAll(w *Writer, f *os.File) {
	w.Append(Record{})
	w.Sync()
	f.Sync()
}

// BlankAll discards through the blank identifier.
func BlankAll(w *Writer) {
	_, _ = w.Append(Record{})
	_ = w.Close()
}

// DeferredClose has nowhere to put the deferred error.
func DeferredClose(w *Writer) {
	defer w.Close()
}

// DeadAssign reassigns err after its last read; the second append's
// error is never checked.
func DeadAssign(w *Writer) error {
	_, err := w.Append(Record{Seq: 1})
	if err != nil {
		return err
	}
	_, err = w.Append(Record{Seq: 2})
	return nil
}

// Checked handles every error — nothing to report.
func Checked(w *Writer, f *os.File) error {
	if _, err := w.Append(Record{}); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := w.Repair(); err != nil {
		return err
	}
	return w.Close()
}

// LoopChecked assigns in a loop and reads the error on the next
// statement — position-based analysis must not flag it.
func LoopChecked(w *Writer, recs []Record) error {
	var err error
	for _, rec := range recs {
		if _, err = w.Append(rec); err != nil {
			return err
		}
	}
	return err
}

// DeliberateDrop records why the error may be ignored.
func DeliberateDrop(w *Writer) {
	_, _ = w.Append(Record{}) //rnavet:allow errdrop — fixture: fail-stop writer; replay falls back to the last durable record
}
