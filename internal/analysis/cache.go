package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheSchema versions the on-disk cache entry layout; bump it to
// orphan every existing entry when listedPackage's shape changes.
const cacheSchema = "rnavet-golist/v1"

// GoListCached is GoList with an on-disk cache under cacheDir. The
// cache key hashes the toolchain version, the list arguments, go.mod,
// and the path and content of every .go file in the module — content,
// not just mtimes, because the Export paths in the cached result
// point into the go build cache, which is content-addressed: an
// edited file would otherwise silently type-check against the old
// export data. A hit also stats every cached Export file and falls
// back to a fresh go list when the build cache was trimmed. The
// second return value reports whether the result came from the cache.
func GoListCached(dir, cacheDir string, patterns ...string) ([]*listedPackage, bool, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, false, err
	}
	key, err := cacheKey(root, patterns)
	if err != nil {
		return nil, false, err
	}
	entry := filepath.Join(cacheDir, "golist-"+key+".json")
	if b, err := os.ReadFile(entry); err == nil {
		var pkgs []*listedPackage
		if json.Unmarshal(b, &pkgs) == nil && exportsAlive(pkgs) {
			return pkgs, true, nil
		}
	}

	pkgs, err := GoList(dir, patterns...)
	if err != nil {
		return nil, false, err
	}
	// Best effort: a read-only build dir must not fail the lint.
	if err := os.MkdirAll(cacheDir, 0o755); err == nil {
		dropStaleEntries(cacheDir, filepath.Base(entry))
		if b, err := json.Marshal(pkgs); err == nil {
			tmp := entry + ".tmp"
			if os.WriteFile(tmp, b, 0o644) == nil {
				_ = os.Rename(tmp, entry)
			}
		}
	}
	return pkgs, false, nil
}

// cacheKey hashes everything the go list output can depend on.
func cacheKey(root string, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema)
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, strings.Join(patterns, "\x00"))

	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	h.Write(gomod)

	files, err := moduleGoFiles(root)
	if err != nil {
		return "", err
	}
	for _, path := range files {
		fmt.Fprintln(h, path)
		f, err := os.Open(filepath.Join(root, path))
		if err != nil {
			return "", err
		}
		_, cerr := io.Copy(h, f)
		f.Close()
		if cerr != nil {
			return "", cerr
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:24], nil
}

// moduleGoFiles returns every .go file under root, sorted, as
// slash-separated relative paths — skipping build output, VCS
// metadata, and analyzer fixtures (testdata does not influence go
// list).
func moduleGoFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "build", ".git", "testdata":
				if path != root {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files = append(files, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// exportsAlive reports whether every export file the cached result
// references still exists (the go build cache may have been trimmed
// since the entry was written).
func exportsAlive(pkgs []*listedPackage) bool {
	for _, p := range pkgs {
		if p.Export == "" {
			continue
		}
		if _, err := os.Stat(p.Export); err != nil {
			return false
		}
	}
	return true
}

// dropStaleEntries removes every golist-*.json entry except keep: a
// new key means the old snapshots can never hit again.
func dropStaleEntries(cacheDir, keep string) {
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == keep || !strings.HasPrefix(name, "golist-") {
			continue
		}
		_ = os.Remove(filepath.Join(cacheDir, name))
	}
}
