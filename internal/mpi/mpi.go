// Package mpi provides a Message Passing Interface runtime for the
// distributed assemblers (Ray and ABySS in the paper, reimplemented in
// internal/assembler). Ranks are goroutines exchanging real payloads
// over channels; each rank additionally carries a *virtual clock* that
// accrues compute cost (explicitly, via Compute) and communication
// cost (from a latency+bandwidth network model, distinguishing
// intra-node from inter-node links).
//
// The job's virtual time-to-completion is the maximum rank clock at
// finalization. Because per-rank compute shrinks with rank count while
// all-to-all message count grows, programs written against this
// runtime naturally reproduce the scale-out shapes the paper measured
// on EC2: marginal gains for Ray, near-flat TTC for ABySS.
package mpi

import (
	"fmt"
	"sync"

	"rnascale/internal/obs/perf"
	"rnascale/internal/vclock"
)

// Config describes the machine an MPI job runs on.
type Config struct {
	// Ranks is the world size (SGE slots granted to the job).
	Ranks int
	// RanksPerNode maps ranks to nodes: rank r lives on node
	// r/RanksPerNode. Zero means all ranks share one node.
	RanksPerNode int
	// Intra and Inter are the communication cost models within a node
	// and across nodes.
	Intra, Inter vclock.CommCost
	// MailboxDepth is the per-pair channel buffer; sends beyond it
	// block until the receiver drains (default 4096).
	MailboxDepth int
}

// DefaultConfig returns a single-node world of n ranks with link
// parameters calibrated to the paper's EC2 placement groups.
func DefaultConfig(n int) Config {
	return Config{
		Ranks:        n,
		RanksPerNode: n,
		Intra:        vclock.CommCost{Latency: 2e-6, Bandwidth: 3e9},
		Inter:        vclock.CommCost{Latency: 5e-4, Bandwidth: 120e6},
	}
}

// message is one point-to-point payload with its timing envelope.
type message struct {
	payload  any
	bytes    int64
	arriveAt vclock.Time
}

// Stats aggregates traffic over a finished job.
type Stats struct {
	Messages  int64
	BytesSent int64
}

// Result summarizes a finished MPI job.
type Result struct {
	// Elapsed is the job's virtual duration: the maximum rank clock.
	Elapsed vclock.Duration
	// PerRank lists each rank's final virtual clock.
	PerRank []vclock.Duration
	// Stats is the summed traffic of all ranks.
	Stats Stats
}

// World is the shared state of a running job.
type World struct {
	cfg Config
	// boxes holds the point-to-point mailboxes, created lazily on
	// first use: a world of n ranks would otherwise allocate n²
	// buffered channels up front, which at large n costs gigabytes
	// for programs (like the DBG assemblers) that only use
	// collectives.
	boxMu sync.Mutex
	boxes map[[2]int]chan message

	collMu   sync.Mutex
	collCond *sync.Cond
	collGen  int
	collIn   int
	collVT   vclock.Time
	collBuf  []any
	collMat  [][]any
	collOut  []any
	collOutM [][]any
	collTime vclock.Time
}

// Comm is one rank's handle to the world. Each Comm is owned by
// exactly one goroutine.
type Comm struct {
	world *World
	rank  int
	vt    vclock.Time
	stats Stats
	err   error
}

// Run executes fn on every rank of a fresh world and blocks until all
// ranks return. The first rank error (lowest rank number) is
// returned; the Result is valid either way.
func Run(cfg Config, fn func(*Comm) error) (Result, error) {
	defer perf.Region("mpi.run").End()
	if cfg.Ranks <= 0 {
		return Result{}, fmt.Errorf("mpi: world size %d", cfg.Ranks)
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = cfg.Ranks
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = 4096
	}
	w := &World{cfg: cfg, boxes: make(map[[2]int]chan message)}
	w.collCond = sync.NewCond(&w.collMu)
	comms := make([]*Comm, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		comms[r] = &Comm{world: w, rank: r}
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			c.err = fn(c)
		}(comms[r])
	}
	wg.Wait()
	res := Result{PerRank: make([]vclock.Duration, cfg.Ranks)}
	var firstErr error
	for r, c := range comms {
		res.PerRank[r] = vclock.Duration(c.vt)
		if vclock.Duration(c.vt) > res.Elapsed {
			res.Elapsed = vclock.Duration(c.vt)
		}
		res.Stats.Messages += c.stats.Messages
		res.Stats.BytesSent += c.stats.BytesSent
		if c.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: rank %d: %w", r, c.err)
		}
	}
	return res, firstErr
}

// Rank reports this rank's number in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size reports the world size.
func (c *Comm) Size() int { return c.world.cfg.Ranks }

// Node reports the node index hosting this rank.
func (c *Comm) Node() int { return c.rank / c.world.cfg.RanksPerNode }

// Clock reports this rank's virtual time.
func (c *Comm) Clock() vclock.Time { return c.vt }

// Compute advances this rank's clock by d of local computation.
func (c *Comm) Compute(d vclock.Duration) {
	if d < 0 {
		panic("mpi: negative compute")
	}
	c.vt = c.vt.Add(d)
}

// ComputeUnits advances the clock by units of work at the given
// per-second rate.
func (c *Comm) ComputeUnits(units, unitsPerSecond float64) {
	c.Compute(vclock.ComputeCost{UnitsPerSecond: unitsPerSecond}.Time(units, 1))
}

// linkTo picks the cost model for traffic to rank dst.
func (c *Comm) linkTo(dst int) vclock.CommCost {
	if c.Node() == dst/c.world.cfg.RanksPerNode {
		return c.world.cfg.Intra
	}
	return c.world.cfg.Inter
}

// Send delivers payload (declared as `bytes` wire bytes) to rank dst.
// The sender's clock advances by the transfer time (blocking send).
func (c *Comm) Send(dst int, payload any, bytes int64) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, c.Size()))
	}
	cost := c.linkTo(dst).Transfer(bytes)
	c.vt = c.vt.Add(cost)
	c.stats.Messages++
	c.stats.BytesSent += bytes
	c.world.box(c.rank, dst) <- message{payload: payload, bytes: bytes, arriveAt: c.vt}
}

// box returns (creating on demand) the mailbox for the src→dst pair.
func (w *World) box(src, dst int) chan message {
	w.boxMu.Lock()
	defer w.boxMu.Unlock()
	key := [2]int{src, dst}
	ch, ok := w.boxes[key]
	if !ok {
		ch = make(chan message, w.cfg.MailboxDepth)
		w.boxes[key] = ch
	}
	return ch
}

// Recv blocks for the next message from rank src and advances the
// receiver's clock to the message arrival if that is later.
func (c *Comm) Recv(src int) (any, int64) {
	if src < 0 || src >= c.Size() {
		panic(fmt.Sprintf("mpi: recv from rank %d of %d", src, c.Size()))
	}
	m := <-c.world.box(src, c.rank)
	if m.arriveAt > c.vt {
		c.vt = m.arriveAt
	}
	return m.payload, m.bytes
}

// collective is the bulk-synchronous rendezvous underlying every
// collective operation. Each rank contributes `in` (and optionally a
// row `row` for all-to-all); the last arriver runs finish, which must
// fill w.collOut / w.collOutM and set w.collTime (the synchronized
// post-collective clock). All ranks leave with vt = collTime.
func (c *Comm) collective(in any, row []any, finish func(w *World)) (any, []any) {
	defer perf.Region("mpi.collective").End()
	w := c.world
	w.collMu.Lock()
	gen := w.collGen
	if w.collIn == 0 {
		w.collBuf = make([]any, c.Size())
		w.collMat = make([][]any, c.Size())
		w.collVT = 0
	}
	w.collBuf[c.rank] = in
	w.collMat[c.rank] = row
	if c.vt > w.collVT {
		w.collVT = c.vt
	}
	w.collIn++
	if w.collIn == c.Size() {
		finish(w)
		w.collIn = 0
		w.collGen++
		w.collCond.Broadcast()
	} else {
		for w.collGen == gen {
			w.collCond.Wait()
		}
	}
	out := w.collOut
	outM := w.collOutM
	t := w.collTime
	w.collMu.Unlock()
	c.vt = t
	if out != nil {
		return out[c.rank], nil
	}
	if outM != nil {
		return nil, outM[c.rank]
	}
	return nil, nil
}

// barrierCost models a log-depth dissemination barrier over the
// slowest link in the world.
func (w *World) barrierCost() vclock.Duration {
	n := w.cfg.Ranks
	if n <= 1 {
		return 0
	}
	depth := 0
	for 1<<depth < n {
		depth++
	}
	link := w.cfg.Intra
	if n > w.cfg.RanksPerNode {
		link = w.cfg.Inter
	}
	return vclock.Duration(float64(depth)) * link.Latency
}

// Barrier synchronizes all ranks; every clock advances to the world
// maximum plus the barrier cost.
func (c *Comm) Barrier() {
	c.collective(nil, nil, func(w *World) {
		w.collOut = make([]any, w.cfg.Ranks)
		w.collOutM = nil
		w.collTime = w.collVT.Add(w.barrierCost())
	})
}

// Bcast distributes root's payload to every rank and returns it.
func (c *Comm) Bcast(root int, payload any, bytes int64) any {
	in := any(nil)
	if c.rank == root {
		in = payload
	}
	out, _ := c.collective(in, nil, func(w *World) {
		w.collOutM = nil
		w.collOut = make([]any, w.cfg.Ranks)
		for i := range w.collOut {
			w.collOut[i] = w.collBuf[root]
		}
		// Binomial-tree broadcast: log2(n) transfer steps.
		n := w.cfg.Ranks
		depth := 0
		for 1<<depth < n {
			depth++
		}
		link := w.cfg.Intra
		if n > w.cfg.RanksPerNode {
			link = w.cfg.Inter
		}
		w.collTime = w.collVT.Add(vclock.Duration(float64(depth)) * link.Transfer(bytes))
	})
	return out
}

// AllGather collects every rank's payload; each rank receives the full
// slice indexed by rank. bytes is this rank's contribution size.
func (c *Comm) AllGather(payload any, bytes int64) []any {
	type contrib struct {
		p any
		b int64
	}
	_, out := c.collective(contrib{payload, bytes}, nil, func(w *World) {
		gathered := make([]any, w.cfg.Ranks)
		var total int64
		for i, v := range w.collBuf {
			cv := v.(contrib)
			gathered[i] = cv.p
			total += cv.b
		}
		w.collOut = nil
		w.collOutM = make([][]any, w.cfg.Ranks)
		for i := range w.collOutM {
			w.collOutM[i] = gathered
		}
		link := w.cfg.Intra
		if w.cfg.Ranks > w.cfg.RanksPerNode {
			link = w.cfg.Inter
		}
		// Ring allgather: n-1 latency steps plus the full volume once
		// around the ring.
		w.collTime = w.collVT.Add(vclock.Duration(w.cfg.Ranks-1)*link.Latency + link.Transfer(total) - link.Latency)
	})
	return out
}

// AllReduceFloat combines one float64 per rank with op and returns the
// result on every rank.
func (c *Comm) AllReduceFloat(x float64, op func(a, b float64) float64) float64 {
	out, _ := c.collective(x, nil, func(w *World) {
		acc := w.collBuf[0].(float64)
		for _, v := range w.collBuf[1:] {
			acc = op(acc, v.(float64))
		}
		w.collOutM = nil
		w.collOut = make([]any, w.cfg.Ranks)
		for i := range w.collOut {
			w.collOut[i] = acc
		}
		w.collTime = w.collVT.Add(w.barrierCost())
	})
	return out.(float64)
}

// AllReduceInt combines one int64 per rank.
func (c *Comm) AllReduceInt(x int64, op func(a, b int64) int64) int64 {
	f := c.AllReduceFloat(float64(x), func(a, b float64) float64 {
		return float64(op(int64(a), int64(b)))
	})
	return int64(f)
}

// AlltoAll sends payloads[d] (of bytes[d] wire bytes) to each rank d
// and returns the column addressed to this rank, indexed by source.
// The synchronized cost is the maximum per-rank serialized send time,
// the congestion pattern that limits DBG assemblers' scale-out.
func (c *Comm) AlltoAll(payloads []any, bytes []int64) []any {
	if len(payloads) != c.Size() || len(bytes) != c.Size() {
		panic(fmt.Sprintf("mpi: alltoall with %d payloads, %d sizes in world %d",
			len(payloads), len(bytes), c.Size()))
	}
	for d := range bytes {
		if d != c.rank {
			c.stats.Messages++
			c.stats.BytesSent += bytes[d]
		}
	}
	return c.alltoallImpl(payloads, bytes)
}

// alltoallImpl performs the rendezvous and data redistribution.
func (c *Comm) alltoallImpl(payloads []any, bytes []int64) []any {
	type row struct {
		p []any
		b []int64
	}
	_, col := c.collective(nil, []any{row{payloads, bytes}}, func(w *World) {
		n := w.cfg.Ranks
		// Reassemble: out[r][s] = payload sent from s to r.
		w.collOut = nil
		w.collOutM = make([][]any, n)
		var maxSendCost vclock.Duration
		for r := range w.collOutM {
			w.collOutM[r] = make([]any, n)
		}
		for s := 0; s < n; s++ {
			rw := w.collMat[s][0].(row)
			var sendCost vclock.Duration
			for d := 0; d < n; d++ {
				w.collOutM[d][s] = rw.p[d]
				if d == s {
					continue
				}
				link := w.cfg.Intra
				if s/w.cfg.RanksPerNode != d/w.cfg.RanksPerNode {
					link = w.cfg.Inter
				}
				sendCost += link.Transfer(rw.b[d])
			}
			if sendCost > maxSendCost {
				maxSendCost = sendCost
			}
		}
		w.collTime = w.collVT.Add(maxSendCost)
	})
	return col
}
