package mpi

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"rnascale/internal/vclock"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Ranks: 0}, func(c *Comm) error { return nil }); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestRankAndSize(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	res, err := Run(DefaultConfig(4), func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("size %d", c.Size())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("ranks seen: %v", seen)
	}
	if res.Elapsed != 0 {
		t.Errorf("no-op job elapsed %v", res.Elapsed)
	}
}

func TestErrorPropagation(t *testing.T) {
	_, err := Run(DefaultConfig(3), func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error swallowed")
	}
}

func TestComputeAdvancesOnlyOwnClock(t *testing.T) {
	res, err := Run(DefaultConfig(3), func(c *Comm) error {
		c.Compute(vclock.Duration(c.Rank()) * 10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != 20 {
		t.Errorf("elapsed %v, want 20", res.Elapsed)
	}
	want := []vclock.Duration{0, 10, 20}
	for r, d := range res.PerRank {
		if d != want[r] {
			t.Errorf("rank %d clock %v, want %v", r, d, want[r])
		}
	}
}

func TestComputeUnits(t *testing.T) {
	res, _ := Run(DefaultConfig(1), func(c *Comm) error {
		c.ComputeUnits(500, 100) // 5 seconds
		return nil
	})
	if res.Elapsed != 5 {
		t.Errorf("elapsed %v", res.Elapsed)
	}
}

func TestSendRecvPayloadAndTiming(t *testing.T) {
	cfg := Config{
		Ranks: 2, RanksPerNode: 1,
		Inter: vclock.CommCost{Latency: 1, Bandwidth: 100},
		Intra: vclock.CommCost{},
	}
	res, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(10)
			c.Send(1, "hello", 200) // transfer = 1 + 200/100 = 3s
			return nil
		}
		p, n := c.Recv(0)
		if p.(string) != "hello" || n != 200 {
			return fmt.Errorf("got %v %d", p, n)
		}
		// Receiver idles until arrival at t=13.
		if c.Clock() != 13 {
			return fmt.Errorf("receiver clock %v, want 13", c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != 13 {
		t.Errorf("elapsed %v, want 13", res.Elapsed)
	}
	if res.Stats.Messages != 1 || res.Stats.BytesSent != 200 {
		t.Errorf("stats %+v", res.Stats)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	cfg := DefaultConfig(2)
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, 8)
			return nil
		}
		c.Compute(1000) // receiver is far ahead of the message
		before := c.Clock()
		c.Recv(0)
		if c.Clock() != before {
			return fmt.Errorf("clock moved from %v to %v", before, c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	res, err := Run(DefaultConfig(4), func(c *Comm) error {
		c.Compute(vclock.Duration(c.Rank()) * 5)
		c.Barrier()
		if c.Clock() < 15 {
			return fmt.Errorf("rank %d clock %v below max", c.Rank(), c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks equal after barrier.
	for _, d := range res.PerRank {
		if d != res.PerRank[0] {
			t.Errorf("clocks diverged: %v", res.PerRank)
		}
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(DefaultConfig(5), func(c *Comm) error {
		var payload any
		if c.Rank() == 2 {
			payload = []int{1, 2, 3}
		}
		got := c.Bcast(2, payload, 24)
		v, ok := got.([]int)
		if !ok || len(v) != 3 || v[2] != 3 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	_, err := Run(DefaultConfig(4), func(c *Comm) error {
		all := c.AllGather(c.Rank()*10, 8)
		if len(all) != 4 {
			return fmt.Errorf("len %d", len(all))
		}
		for i, v := range all {
			if v.(int) != i*10 {
				return fmt.Errorf("slot %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	_, err := Run(DefaultConfig(4), func(c *Comm) error {
		sum := c.AllReduceInt(int64(c.Rank()+1), func(a, b int64) int64 { return a + b })
		if sum != 10 {
			return fmt.Errorf("sum %d", sum)
		}
		max := c.AllReduceFloat(float64(c.Rank()), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if max != 3 {
			return fmt.Errorf("max %v", max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllRedistributes(t *testing.T) {
	_, err := Run(DefaultConfig(3), func(c *Comm) error {
		out := make([]any, 3)
		sizes := make([]int64, 3)
		for d := range out {
			out[d] = fmt.Sprintf("%d->%d", c.Rank(), d)
			sizes[d] = 10
		}
		in := c.AlltoAll(out, sizes)
		for s, v := range in {
			want := fmt.Sprintf("%d->%d", s, c.Rank())
			if v.(string) != want {
				return fmt.Errorf("rank %d from %d: %v want %s", c.Rank(), s, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllPanicsOnBadShape(t *testing.T) {
	_, err := Run(DefaultConfig(2), func(c *Comm) error {
		defer func() { recover() }()
		if c.Rank() == 0 {
			c.AlltoAll(make([]any, 1), make([]int64, 1)) // panics, recovered
		}
		// Rank 1 must not block forever: use no collective after.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The key scale-out property: with fixed total work, adding inter-node
// ranks reduces compute time but adds all-to-all latency, so speedup
// is sublinear and eventually reverses — the paper's Fig. 3 finding.
func TestScaleOutDiminishingReturns(t *testing.T) {
	const totalWork = 1e6 // work units
	const totalBytes = 64e6
	ttc := func(nodes int) vclock.Duration {
		cfg := Config{
			Ranks:        nodes,
			RanksPerNode: 1,
			// High per-peer latency models the aggregated cost of the
			// many small messages DBG halo exchange produces.
			Inter: vclock.CommCost{Latency: 3, Bandwidth: 10e6},
		}
		res, err := Run(cfg, func(c *Comm) error {
			n := c.Size()
			for step := 0; step < 8; step++ {
				c.ComputeUnits(totalWork/float64(n), 1000)
				payloads := make([]any, n)
				sizes := make([]int64, n)
				for d := range sizes {
					sizes[d] = int64(totalBytes / float64(n) / float64(n) / 8)
				}
				c.AlltoAll(payloads, sizes)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	t2, t4, t16, t32 := ttc(2), ttc(4), ttc(16), ttc(32)
	if !(t4 < t2) {
		t.Errorf("4 nodes (%v) not faster than 2 (%v)", t4, t2)
	}
	// Parallel efficiency at 16 nodes is well below ideal.
	eff := float64(t2) / float64(t16) / 8
	if eff > 0.8 {
		t.Errorf("efficiency at 16 nodes = %.2f, expected sublinear scaling", eff)
	}
	// Past the sweet spot, adding nodes makes TTC worse.
	if t32 <= t16 {
		t.Errorf("32 nodes (%v) not slower than 16 (%v); latency should dominate", t32, t16)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (vclock.Duration, string) {
		var mu sync.Mutex
		var events []string
		res, err := Run(DefaultConfig(4), func(c *Comm) error {
			v := c.AllReduceInt(int64(c.Rank()), func(a, b int64) int64 { return a + b })
			c.ComputeUnits(float64(v), 10)
			all := c.AllGather(c.Rank(), 8)
			mu.Lock()
			events = append(events, fmt.Sprintf("r%d:%v:%v", c.Rank(), v, len(all)))
			mu.Unlock()
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(events)
		return res.Elapsed, fmt.Sprint(events)
	}
	e1, log1 := run()
	for i := 0; i < 10; i++ {
		e2, log2 := run()
		if e1 != e2 || log1 != log2 {
			t.Fatalf("nondeterministic: (%v,%s) vs (%v,%s)", e1, log1, e2, log2)
		}
	}
}

func TestNodeMapping(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.RanksPerNode = 4
	_, err := Run(cfg, func(c *Comm) error {
		want := c.Rank() / 4
		if c.Node() != want {
			return fmt.Errorf("rank %d on node %d, want %d", c.Rank(), c.Node(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeCheaperThanInter(t *testing.T) {
	base := vclock.CommCost{Latency: 0.1, Bandwidth: 1e6}
	run := func(ranksPerNode int) vclock.Duration {
		cfg := Config{Ranks: 2, RanksPerNode: ranksPerNode, Inter: base,
			Intra: vclock.CommCost{Latency: 0.0001, Bandwidth: 1e9}}
		res, err := Run(cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, nil, 1e6)
			} else {
				c.Recv(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	sameNode := run(2)
	crossNode := run(1)
	if sameNode >= crossNode {
		t.Errorf("intra %v not cheaper than inter %v", sameNode, crossNode)
	}
}
