package mpi

import "testing"

func BenchmarkAlltoAll8Ranks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(DefaultConfig(8), func(c *Comm) error {
			payloads := make([]any, 8)
			sizes := make([]int64, 8)
			for d := range payloads {
				payloads[d] = d
				sizes[d] = 1024
			}
			for step := 0; step < 4; step++ {
				c.AlltoAll(payloads, sizes)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllReduce32Ranks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(DefaultConfig(32), func(c *Comm) error {
			for step := 0; step < 8; step++ {
				c.AllReduceInt(int64(c.Rank()), func(a, b int64) int64 { return a + b })
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
