package mpi

import (
	"testing"
	"testing/quick"

	"rnascale/internal/vclock"
)

// Property: AllReduce with sum is invariant under world size for a
// fixed multiset of contributions (distribute values over ranks).
func TestAllReduceSumInvariantProperty(t *testing.T) {
	f := func(vals []int8, sizeRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		size := int(sizeRaw)%8 + 1
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		var got int64
		_, err := Run(DefaultConfig(size), func(c *Comm) error {
			var local int64
			for i := c.Rank(); i < len(vals); i += c.Size() {
				local += int64(vals[i])
			}
			sum := c.AllReduceInt(local, func(a, b int64) int64 { return a + b })
			if c.Rank() == 0 {
				got = sum
			}
			return nil
		})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: AlltoAll is a permutation — the multiset of payloads is
// preserved and addressed correctly for any world size.
func TestAlltoAllPermutationProperty(t *testing.T) {
	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw)%10 + 1
		ok := true
		_, err := Run(DefaultConfig(size), func(c *Comm) error {
			out := make([]any, size)
			bytes := make([]int64, size)
			for d := range out {
				out[d] = [2]int{c.Rank(), d}
				bytes[d] = 8
			}
			in := c.AlltoAll(out, bytes)
			for s, v := range in {
				pair := v.([2]int)
				if pair[0] != s || pair[1] != c.Rank() {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: after a barrier, all rank clocks agree; elapsed time is
// the max of pre-barrier clocks plus the (non-negative) barrier cost.
func TestBarrierClockAgreementProperty(t *testing.T) {
	f := func(delays []uint8, sizeRaw uint8) bool {
		size := int(sizeRaw)%6 + 2
		res, err := Run(DefaultConfig(size), func(c *Comm) error {
			d := 0
			if c.Rank() < len(delays) {
				d = int(delays[c.Rank()])
			}
			c.Compute(vclock.Duration(d))
			c.Barrier()
			return nil
		})
		if err != nil {
			return false
		}
		for _, d := range res.PerRank {
			if d != res.PerRank[0] {
				return false
			}
		}
		var maxDelay uint8
		for i, d := range delays {
			if i >= size {
				break
			}
			if d > maxDelay {
				maxDelay = d
			}
		}
		return res.Elapsed >= vclock.Duration(maxDelay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
