package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"rnascale/internal/core"
	"rnascale/internal/journal"
	"rnascale/internal/obs"
	"rnascale/internal/simdata"
)

// gatewayEvent is one line of <dir>/gateway.jsonl: a run's state after
// a transition. Replay is last-wins per id, so the file is a write-
// ahead log of the run table and the bounded queue (queued/running
// views are in-flight work; terminal views are history).
type gatewayEvent struct {
	ID   string  `json:"id"`
	View RunView `json:"view"`
}

// eventsFileName is the gateway's own event log inside the journal
// directory; per-run pipeline journals live next to it as <id>.journal.
const eventsFileName = "gateway.jsonl"

// EnableJournal makes the gateway durable across its own loss: every
// run-state transition is appended to <dir>/gateway.jsonl and every
// run executes under a per-run pipeline journal <dir>/<id>.journal.
// If dir already holds a previous gateway's journal, its run table is
// rebuilt first and in-flight work is re-adopted: queued runs are
// re-enqueued, and runs that were mid-flight resume from their
// pipeline journals (counted by MetricRunsResumed) instead of
// starting over. Call once, before accepting submissions.
func (s *Server) EnableJournal(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, eventsFileName)
	prior, err := readEvents(path)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.events != nil {
		s.mu.Unlock()
		f.Close()
		return fmt.Errorf("gateway: journal already enabled")
	}
	if len(s.runs) > 0 {
		s.mu.Unlock()
		f.Close()
		return fmt.Errorf("gateway: enable the journal before accepting submissions")
	}
	s.journalDir = dir
	s.events = f

	var adopted, resumed int
	for _, ev := range prior {
		id := ev.ID
		if _, ok := s.runs[id]; !ok {
			s.runs[id] = &run{}
			s.order = append(s.order, id)
			var n int
			if _, err := fmt.Sscanf(id, "run-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
			}
		}
		s.runs[id].view = ev.View
	}
	for _, id := range s.order {
		rn := s.runs[id]
		switch rn.view.Status {
		case StatusQueued, StatusRunning:
		default:
			continue // terminal: history only
		}
		cfg, ds, err := buildConfig(rn.view.Request)
		if err != nil {
			// The request can no longer be rebuilt (e.g. a profile was
			// removed); settle it rather than wedging the queue.
			rn.view.Status = StatusFailed
			rn.view.Error = fmt.Sprintf("re-adoption: %v", err)
			s.logEventLocked(id)
			continue
		}
		cfg.Obs = obs.New()
		rn.obs, rn.cfg, rn.ds = cfg.Obs, cfg, ds
		rn.journalPath = filepath.Join(dir, id+".journal")
		if rn.view.Status == StatusRunning {
			// The previous gateway died with this run in flight; if its
			// pipeline journal survived, continue from it instead of
			// re-executing the completed work.
			if _, err := journal.Open(rn.journalPath); err == nil {
				rn.resumeFrom = rn.journalPath
				resumed++
			}
		}
		rn.view.Status = StatusQueued
		rn.view.Error = ""
		rn.enqueuedAt = queueClock()
		s.queue = append(s.queue, id)
		s.runsWG.Add(1)
		adopted++
		s.logEventLocked(id)
	}
	s.mu.Unlock()

	if adopted > 0 {
		s.runsInflight(adopted)
	}
	if resumed > 0 {
		s.metrics.Counter(obs.MetricRunsResumed,
			"Runs re-adopted from a surviving pipeline journal after gateway loss.", nil).Add(float64(resumed))
	}
	s.cond.Broadcast()
	return nil
}

// readEvents replays a gateway event log. A torn trailing line (the
// previous gateway died mid-append) is tolerated; anything else
// malformed is an error.
func readEvents(path string) ([]gatewayEvent, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []gatewayEvent
	lines := splitLines(b)
	for i, line := range lines {
		var ev gatewayEvent
		if err := json.Unmarshal(line, &ev); err != nil || ev.ID == "" {
			if i == len(lines)-1 {
				break
			}
			return nil, fmt.Errorf("gateway: %s line %d: %v", eventsFileName, i+1, err)
		}
		out = append(out, ev)
	}
	return out, nil
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			if i > start {
				out = append(out, b[start:i])
			}
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}

// logEventLocked appends the run's current view to the event log and
// syncs it. Callers hold s.mu.
func (s *Server) logEventLocked(id string) {
	if s.events == nil {
		return
	}
	b, err := json.Marshal(gatewayEvent{ID: id, View: s.runs[id].view})
	if err != nil {
		return
	}
	if _, err := s.events.Write(append(b, '\n')); err == nil {
		_ = s.events.Sync()
	}
}

// executeRun runs one pipeline run, honoring the run's journal and
// resume settings: resumeFrom continues an interrupted run's journal
// in place; otherwise journalPath (when set) makes the run resumable.
func executeRun(cfg core.Config, ds *simdata.Dataset, journalPath, resumeFrom string) (*core.Report, error) {
	if resumeFrom != "" {
		return core.Resume(ds, cfg, resumeFrom)
	}
	if journalPath != "" {
		w, err := journal.Create(journalPath)
		if err != nil {
			return nil, err
		}
		defer w.Close()
		cfg.Journal = w
	}
	return core.Run(ds, cfg)
}

// handleResume re-enqueues a failed run to continue from its
// surviving pipeline journal. Only a failed run with an incomplete
// journal is resumable; everything else — still queued or running
// (including a resume already accepted), finished, journal complete,
// or no journal at all — answers 409 Conflict, so a double resume
// cannot duplicate work.
func (s *Server) handleResume(w http.ResponseWriter, id string) {
	s.mu.Lock()
	rn, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "no run %q", id)
		return
	}
	if rn.view.Status != StatusFailed {
		status := rn.view.Status
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "run %s is %s, not resumable", id, status)
		return
	}
	lg, err := journal.Open(rn.journalPath)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "run %s has no surviving journal", id)
		return
	}
	if lg.Complete() {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "run %s's journal is complete; nothing to resume", id)
		return
	}
	cfg, ds, err := buildConfig(rn.view.Request)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "rebuild request: %v", err)
		return
	}
	cfg.Obs = obs.New()
	rn.obs, rn.cfg, rn.ds = cfg.Obs, cfg, ds
	rn.resumeFrom = rn.journalPath
	rn.view.Status = StatusQueued
	rn.view.Error = ""
	rn.enqueuedAt = queueClock()
	s.queue = append(s.queue, id)
	s.runsWG.Add(1)
	s.logEventLocked(id)
	view := rn.view
	s.mu.Unlock()

	s.runsInflight(1)
	s.metrics.Counter(obs.MetricRunsResumed,
		"Runs re-adopted from a surviving pipeline journal after gateway loss.", nil).Inc()
	s.cond.Signal()
	writeJSON(w, http.StatusAccepted, view)
}
