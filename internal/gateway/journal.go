package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"

	"rnascale/internal/core"
	"rnascale/internal/journal"
	"rnascale/internal/obs"
	"rnascale/internal/simdata"
)

// eventsPrefix names the gateway's event-log segments inside the
// journal directory (<dir>/gateway-NNNNNN.journal); per-run pipeline
// journals live next to them as <id>.journal. Each event record's
// Note is the run id and its payload the run's RunView after a
// transition; replay is last-wins per id, so the log is a write-ahead
// image of the run table and the bounded queue.
const eventsPrefix = "gateway"

// EnableJournal makes the gateway durable across its own loss: every
// run-state transition is appended to the segmented, hash-chained
// event log under dir, and every run executes under a per-run
// pipeline journal <dir>/<id>.journal. If dir already holds a
// previous gateway's journal, its run table is rebuilt first and
// in-flight work is re-adopted: queued runs are re-enqueued, and runs
// that were mid-flight resume from their pipeline journals (counted
// by MetricRunsResumed) instead of starting over — a torn tail on a
// crashed run's journal is repaired, not fatal. The rebuilt table is
// then compacted into a fresh snapshot segment, so the event log's
// disk footprint resets on every restart instead of growing with the
// gateway's whole history. Call once, before accepting submissions.
func (s *Server) EnableJournal(dir string) error {
	s.mu.Lock()
	rotate := s.rotateEvery
	s.mu.Unlock()
	seg, prior, err := journal.OpenSegmented(dir, eventsPrefix,
		journal.SegmentedOptions{RotateEvery: rotate})
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.events != nil {
		s.mu.Unlock()
		seg.Close() //rnavet:allow errdrop — error-path cleanup of a log we never wrote to; the enable error wins
		return fmt.Errorf("gateway: journal already enabled")
	}
	if len(s.runs) > 0 {
		s.mu.Unlock()
		seg.Close() //rnavet:allow errdrop — error-path cleanup of a log we never wrote to; the enable error wins
		return fmt.Errorf("gateway: enable the journal before accepting submissions")
	}
	s.journalDir = dir
	s.events = seg

	for _, rec := range prior {
		if rec.Kind != journal.KindEvent || rec.Note == "" {
			continue
		}
		var view RunView
		if err := json.Unmarshal(rec.Payload, &view); err != nil {
			s.events = nil
			s.mu.Unlock()
			seg.Close() //rnavet:allow errdrop — error-path cleanup; the unmarshal error wins and nothing was appended yet
			return fmt.Errorf("gateway: event record for %s: %w", rec.Note, err)
		}
		id := rec.Note
		if _, ok := s.runs[id]; !ok {
			s.runs[id] = &run{}
			s.order = append(s.order, id)
			var n int
			if _, err := fmt.Sscanf(id, "run-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
			}
		}
		s.runs[id].view = view
	}
	var adopted, resumed int
	for _, id := range s.order {
		rn := s.runs[id]
		switch rn.view.Status {
		case StatusQueued, StatusRunning:
		default:
			continue // terminal: history only
		}
		cfg, ds, err := buildConfig(rn.view.Request)
		if err != nil {
			// The request can no longer be rebuilt (e.g. a profile was
			// removed); settle it rather than wedging the queue.
			rn.view.Status = StatusFailed
			rn.view.Error = fmt.Sprintf("re-adoption: %v", err)
			s.logEventLocked(id)
			continue
		}
		cfg.Obs = obs.New()
		rn.obs, rn.cfg, rn.ds = cfg.Obs, cfg, ds
		rn.journalPath = filepath.Join(dir, id+".journal")
		if rn.view.Status == StatusRunning {
			// The previous gateway died with this run in flight; if its
			// pipeline journal survived — even with a crash-torn tail,
			// which the tolerant read accepts and resume repairs —
			// continue from it instead of re-executing completed work.
			if _, err := journal.Inspect(rn.journalPath); err == nil {
				rn.resumeFrom = rn.journalPath
				resumed++
			}
		}
		rn.view.Status = StatusQueued
		rn.view.Error = ""
		rn.enqueuedAt = queueClock()
		s.queue = append(s.queue, id)
		s.runsWG.Add(1)
		adopted++
		s.logEventLocked(id)
	}
	if len(prior) > 0 {
		// Fold the whole inherited history into one snapshot segment:
		// the current view of every run, in table order.
		snapshot := make([]journal.Record, 0, len(s.order))
		for _, id := range s.order {
			b, err := json.Marshal(s.runs[id].view)
			if err != nil {
				continue
			}
			snapshot = append(snapshot, journal.Record{Kind: journal.KindEvent, Note: id, Payload: b})
		}
		if err := seg.Compact(snapshot); err != nil {
			s.events = nil
			s.mu.Unlock()
			seg.Close() //rnavet:allow errdrop — error-path cleanup; the compact error wins and already names the failed log
			return fmt.Errorf("gateway: compact event log: %w", err)
		}
	}
	s.mu.Unlock()

	if adopted > 0 {
		s.runsInflight(adopted)
	}
	if resumed > 0 {
		s.metrics.Counter(obs.MetricRunsResumed,
			"Runs re-adopted from a surviving pipeline journal after gateway loss.", nil).Add(float64(resumed))
	}
	s.cond.Broadcast()
	return nil
}

// logEventLocked appends the run's current view to the event log;
// the record is durable (group-committed) when Append returns.
// Callers hold s.mu, which also orders same-run events for last-wins
// replay. The event writer is fail-stop: after an append error the
// log stops growing and replay falls back to the last durable state,
// which re-adoption re-executes — so errors are not fatal here.
func (s *Server) logEventLocked(id string) {
	if s.events == nil {
		return
	}
	b, err := json.Marshal(s.runs[id].view)
	if err != nil {
		return
	}
	_, _ = s.events.Append(journal.Record{Kind: journal.KindEvent, Note: id, Payload: b}) //rnavet:allow errdrop — fail-stop by design: after an append error the log stops growing and replay falls back to the last durable state (see doc comment)
}

// executeRun runs one pipeline run, honoring the run's journal and
// resume settings: resumeFrom continues an interrupted run's journal
// in place; otherwise journalPath (when set) makes the run resumable.
// A close error on the run's journal fails the run: Close flushes the
// final group commit, so an error there means the journal's tail may
// not be durable and a later resume could replay stale state.
func executeRun(cfg core.Config, ds *simdata.Dataset, journalPath, resumeFrom string) (rep *core.Report, err error) {
	if resumeFrom != "" {
		return core.Resume(ds, cfg, resumeFrom)
	}
	if journalPath != "" {
		w, cerr := journal.Create(journalPath)
		if cerr != nil {
			return nil, cerr
		}
		defer func() {
			if cerr := w.Close(); cerr != nil && err == nil {
				rep, err = nil, fmt.Errorf("close run journal: %w", cerr)
			}
		}()
		cfg.Journal = w
	}
	return core.Run(ds, cfg)
}

// handleResume re-enqueues a failed run to continue from its
// surviving pipeline journal. Only a failed run with an incomplete
// journal is resumable; everything else — still queued or running
// (including a resume already accepted), finished, journal complete,
// or no journal at all — answers 409 Conflict, so a double resume
// cannot duplicate work. The journal is read tolerantly: a crash-torn
// tail does not disqualify a run from resuming (the resume repairs
// it), only a journal with no verifiable prefix at all does.
func (s *Server) handleResume(w http.ResponseWriter, id string) {
	s.mu.Lock()
	rn, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "no run %q", id)
		return
	}
	if rn.view.Status != StatusFailed {
		status := rn.view.Status
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "run %s is %s, not resumable", id, status)
		return
	}
	lg, err := journal.Inspect(rn.journalPath)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "run %s has no surviving journal", id)
		return
	}
	if lg.Complete() {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "run %s's journal is complete; nothing to resume", id)
		return
	}
	cfg, ds, err := buildConfig(rn.view.Request)
	if err != nil {
		s.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "rebuild request: %v", err)
		return
	}
	cfg.Obs = obs.New()
	rn.obs, rn.cfg, rn.ds = cfg.Obs, cfg, ds
	rn.resumeFrom = rn.journalPath
	rn.view.Status = StatusQueued
	rn.view.Error = ""
	rn.enqueuedAt = queueClock()
	s.queue = append(s.queue, id)
	s.runsWG.Add(1)
	s.logEventLocked(id)
	view := rn.view
	s.mu.Unlock()

	s.runsInflight(1)
	s.metrics.Counter(obs.MetricRunsResumed,
		"Runs re-adopted from a surviving pipeline journal after gateway loss.", nil).Inc()
	s.cond.Signal()
	writeJSON(w, http.StatusAccepted, view)
}

// handleProof serves a run's provenance: the journal's chain
// verification report (records, chain head, Merkle root, first bad
// seq if damaged) plus a Merkle inclusion proof for one record —
// ?seq=N, defaulting to the last record. A client that pins the
// chain head or root when a run finishes can later audit that no
// record was rewritten, without downloading the journal.
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request, id string) {
	s.mu.Lock()
	rn, ok := s.runs[id]
	var path string
	if ok {
		path = rn.journalPath
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", id)
		return
	}
	if path == "" {
		writeErr(w, http.StatusConflict, "run %s has no journal (gateway journaling is disabled)", id)
		return
	}
	vr, err := journal.Verify(path)
	if err != nil {
		writeErr(w, http.StatusConflict, "run %s has no surviving journal: %v", id, err)
		return
	}
	lg, err := journal.Inspect(path)
	if err != nil {
		writeErr(w, http.StatusConflict, "run %s: %v", id, err)
		return
	}
	seq := len(lg.Records) - 1
	if qs := r.URL.Query().Get("seq"); qs != "" {
		n, err := strconv.Atoi(qs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad seq %q", qs)
			return
		}
		seq = n
	}
	proof, err := lg.Proof(seq)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"verify": vr, "proof": proof})
}
