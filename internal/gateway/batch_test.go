package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestQueueBoundRejects pins the backpressure contract: a queue bound
// of zero turns every submission away with 429 before any work or
// run record is created (the old design spawned one goroutine per
// POST and held every request in memory, unbounded).
func TestQueueBoundRejects(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxQueued(0)
	body, _ := json.Marshal(RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// The rejection tells clients when to come back (RFC 9110 §10.2.3)
	// and still carries the JSON error body.
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Errorf("429 body: %v %v", e, err)
	}
	// Nothing was recorded.
	var all []RunView
	getJSON(t, ts.URL+"/api/runs", &all)
	if len(all) != 0 {
		t.Errorf("rejected submission left %d run records", len(all))
	}
}

// TestSubmitFloodBounded floods the gateway far faster than its one
// worker can drain a two-deep queue: the flood must split into
// accepted (202) and rejected (429) with no other outcome, at least
// the first three accepted, and backpressure visible.
func TestSubmitFloodBounded(t *testing.T) {
	s := NewServer(1)
	s.SetMaxQueued(2)
	t.Cleanup(func() { _ = s.Close() })
	mux := s.Handler()

	body, _ := json.Marshal(RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	var accepted, rejected int
	for i := 0; i < 64; i++ {
		req, _ := http.NewRequest(http.MethodPost, "/api/runs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("submission %d: status %d", i, rec.Code)
		}
	}
	// A full queue's worth is always admitted (the worker may not
	// have dequeued anything yet); every accepted run finishes.
	if accepted < 2 {
		t.Errorf("accepted %d, want >= 2", accepted)
	}
	if rejected == 0 {
		t.Error("64 instant submissions against a 2-deep queue saw no 429")
	}
	s.Wait()
	if got := int(s.Metrics().Counter(MetricRuns, "", nil).Value()); got != 0 {
		// MetricRuns is labelled by status; the unlabelled series must
		// stay untouched.
		t.Errorf("unlabelled runs counter = %d", got)
	}
	done := int(s.Metrics().Counter(MetricRuns, "", map[string]string{"status": "done"}).Value())
	if done != accepted {
		t.Errorf("%d runs done, %d accepted", done, accepted)
	}
}

// TestBatchEndpoint submits a mixed batch and expects ordered,
// finished views: the gateway shares the experiments' sweep engine,
// so a batch is one deterministic fan-out rather than N polls.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	payload := map[string]any{"runs": []RunRequest{
		{Profile: "tiny", Assemblers: []string{"velvet"}, Scheme: "S2", Pattern: "dynamic"},
		{Profile: "tiny", Assemblers: []string{"velvet"}, Scheme: "S1", Pattern: "static"},
		{Profile: "tiny", Assemblers: []string{"velvet"}, Pattern: "conventional"},
	}}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(ts.URL+"/api/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var views []RunView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("%d views", len(views))
	}
	for i, v := range views {
		if v.Status != StatusDone {
			t.Errorf("batch run %d: %s (%s)", i, v.Status, v.Error)
		}
		if v.TTCSeconds <= 0 || v.Transcripts == 0 {
			t.Errorf("batch run %d summary %+v", i, v)
		}
	}
	// Views come back in submission order (the sweep engine collects
	// by index), and the requests round-trip.
	if views[0].Request.Scheme != "S2" || views[1].Request.Scheme != "S1" {
		t.Errorf("batch order lost: %+v", views)
	}
	// The runs are queryable individually afterwards.
	var one RunView
	if code := getJSON(t, ts.URL+"/api/runs/"+views[1].ID, &one); code != 200 {
		t.Fatalf("run lookup %d", code)
	}
	if one.Status != StatusDone {
		t.Errorf("recorded batch run %s is %s", one.ID, one.Status)
	}
}

// TestBatchValidation: an invalid entry rejects the whole batch with
// 400 before any run starts; an oversized batch is 429; an empty or
// malformed payload is 400.
func TestBatchValidation(t *testing.T) {
	s, ts := newTestServer(t)
	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/api/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed", `{"runs":`, http.StatusBadRequest},
		{"empty", `{"runs":[]}`, http.StatusBadRequest},
		{"bad entry", `{"runs":[{"profile":"tiny"},{"profile":"nope"}]}`, http.StatusBadRequest},
		{"empty body", ``, http.StatusBadRequest},
	}
	for _, tc := range cases {
		r := post(tc.body)
		r.Body.Close()
		if r.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, r.StatusCode, tc.code)
		}
	}
	// No run records were created by the rejected batches.
	var all []RunView
	getJSON(t, ts.URL+"/api/runs", &all)
	if len(all) != 0 {
		t.Errorf("rejected batches left %d run records", len(all))
	}
	// A batch beyond the queue bound is backpressure, not a bad
	// request.
	s.SetMaxQueued(1)
	r := post(`{"runs":[{"profile":"tiny"},{"profile":"tiny"}]}`)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Errorf("oversized batch: status %d, want 429", r.StatusCode)
	}
	// The batch 429 carries the same backoff hint and JSON body as
	// single-run backpressure.
	if got := r.Header.Get("Retry-After"); got != "1" {
		t.Errorf("batch Retry-After = %q, want %q", got, "1")
	}
	var e map[string]string
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Errorf("batch 429 body: %v %v", e, err)
	}
	r.Body.Close()
}
