package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	view := submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	s.Wait()

	resp, err := http.Get(ts.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`rnascale_gateway_runs_total{status="done"} 1`,
		`rnascale_gateway_runs_inflight 0`,
		`rnascale_gateway_run_ttc_seconds_count 1`,
		`rnascale_gateway_run_ttc_seconds_sum `,
		`rnascale_gateway_run_cost_usd_count 1`,
		`rnascale_gateway_runs_queue_wait_seconds_count 1`,
		"# TYPE rnascale_gateway_runs_total counter",
		"# TYPE rnascale_gateway_run_ttc_seconds histogram",
		"# TYPE rnascale_gateway_run_cost_usd histogram",
		"# TYPE rnascale_gateway_runs_queue_wait_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// The run id must not appear as a label: per-run series grew the
	// exposition without bound under sustained submission.
	if strings.Contains(text, `run="`) {
		t.Errorf("exposition still carries per-run labels:\n%s", text)
	}
	if view.ID == "" {
		t.Fatal("no run id")
	}
}

// TestMetricCardinalityConstant pins the fix for the unbounded metric
// growth: the exposition is the same size after 1 run and after many,
// because finished runs feed aggregate histograms instead of minting
// one labelled series each.
func TestMetricCardinalityConstant(t *testing.T) {
	s, ts := newTestServer(t)
	scrapeLines := func() int {
		resp, err := http.Get(ts.URL + "/api/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return len(strings.Split(strings.TrimSpace(string(body)), "\n"))
	}
	submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	s.Wait()
	base := scrapeLines()
	for i := 0; i < 6; i++ {
		submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	}
	s.Wait()
	if after := scrapeLines(); after != base {
		t.Errorf("exposition grew from %d to %d lines over repeated runs", base, after)
	}
}

// TestQueueWaitObservedPerRun: every run contributes exactly one
// queue-wait observation, whether it entered through the async queue
// or the synchronous batch path — and the waits are non-negative real
// seconds, not virtual time.
func TestQueueWaitObservedPerRun(t *testing.T) {
	s, ts := newTestServer(t)
	submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	resp, err := http.Post(ts.URL+"/api/batch", "application/json",
		strings.NewReader(`{"runs":[{"profile":"tiny","assemblers":["velvet"]},{"profile":"tiny","assemblers":["velvet"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	s.Wait()

	var count, sum float64
	var found bool
	for _, p := range s.Metrics().Points() {
		switch p.Name {
		case MetricRunsQueueWait + "_count":
			count, found = p.Value, true
		case MetricRunsQueueWait + "_sum":
			sum = p.Value
		}
	}
	if !found {
		t.Fatal("no queue-wait histogram in the registry")
	}
	if count != 4 {
		t.Errorf("queue-wait count = %v, want 4", count)
	}
	if sum < 0 {
		t.Errorf("queue-wait sum = %v, want >= 0", sum)
	}
}

func TestTraceEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	view := submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	s.Wait()

	resp, err := http.Get(ts.URL + "/api/runs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Name  string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawRun bool
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && e.Name == "run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Errorf("trace has no run span among %d events", len(doc.TraceEvents))
	}

	// Trace of a nonexistent run is a 404 with a JSON error body.
	resp2, err := http.Get(ts.URL + "/api/runs/run-99999/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run trace: %d", resp2.StatusCode)
	}
}

// TestErrorBodiesAreJSON pins the error contract: every 4xx carries a
// JSON object with a non-empty "error" field.
func TestErrorBodiesAreJSON(t *testing.T) {
	_, ts := newTestServer(t)

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/api/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name string
		resp func() *http.Response
		code int
	}{
		{"unknown profile", func() *http.Response {
			return post(`{"profile":"nope"}`)
		}, http.StatusBadRequest},
		{"unknown assembler", func() *http.Response {
			return post(`{"profile":"tiny","assemblers":["nope"]}`)
		}, http.StatusBadRequest},
		{"malformed JSON", func() *http.Response {
			return post(`{"profile":`)
		}, http.StatusBadRequest},
		{"nonexistent run", func() *http.Response {
			resp, err := http.Get(ts.URL + "/api/runs/run-99999")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
		{"unknown subresource", func() *http.Response {
			view := submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
			resp, err := http.Get(ts.URL + "/api/runs/" + view.ID + "/nope")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := tc.resp()
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", tc.name, ct)
		}
		var e map[string]string
		if err := json.Unmarshal(bytes.TrimSpace(body), &e); err != nil {
			t.Errorf("%s: body is not JSON: %v (%q)", tc.name, err, body)
			continue
		}
		if e["error"] == "" {
			t.Errorf("%s: empty error field in %q", tc.name, body)
		}
	}
}
