package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"rnascale/internal/core"
	"rnascale/internal/obs"
)

// newIdleServer builds a Server with no worker pool: submissions stay
// queued forever, so tests can inspect and manipulate queue state
// without racing a pickup.
func newIdleServer(maxConcurrent int) *Server {
	s := &Server{
		runs:          map[string]*run{},
		maxQueued:     DefaultMaxQueued,
		maxConcurrent: maxConcurrent,
		metrics:       obs.NewRegistry(),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func tinyReq() RunRequest {
	return RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}}
}

// TestAdmissionFeasibilityProperty pins the admission contract against
// an independent prediction: the gateway never rejects a run the
// planner says can meet its deadline and budget, and never admits one
// it says cannot.
func TestAdmissionFeasibilityProperty(t *testing.T) {
	for _, profile := range []string{"tiny", "bglumae"} {
		base := RunRequest{Profile: profile, Assemblers: []string{"velvet"}}
		cfg, ds, err := buildConfig(base)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := core.Predict(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		predTTC, predCost := plan.TTC.Seconds(), plan.CostUSD

		factors := []float64{0, 0.5, 0.999, 1.0, 2.0} // 0 = constraint unset
		for _, df := range factors {
			for _, cf := range factors {
				req := base
				req.DeadlineSeconds = predTTC * df
				req.MaxCostUSD = predCost * cf
				rcfg, rds, err := buildConfig(req)
				if err != nil {
					t.Fatal(err)
				}
				got := admit(req, rcfg, rds)

				deadlineInfeasible := req.DeadlineSeconds > 0 && predTTC > req.DeadlineSeconds
				costInfeasible := req.MaxCostUSD > 0 && predCost > req.MaxCostUSD
				switch {
				case deadlineInfeasible || costInfeasible:
					var ae *AdmissionError
					if !errors.As(got, &ae) {
						t.Fatalf("%s df=%v cf=%v: admitted an infeasible run (predTTC=%v predCost=%v): err=%v",
							profile, df, cf, predTTC, predCost, got)
					}
					// Deadline is checked first; cost only rejects when the
					// deadline was feasible (or unset).
					wantReason := RejectCost
					if deadlineInfeasible {
						wantReason = RejectDeadline
					}
					if ae.Reason != wantReason {
						t.Fatalf("%s df=%v cf=%v: reason %q, want %q", profile, df, cf, ae.Reason, wantReason)
					}
				case got != nil:
					t.Fatalf("%s df=%v cf=%v: rejected a feasible run: %v", profile, df, cf, got)
				}
			}
		}
	}
}

// TestRetryAfterPricing exercises the Retry-After arithmetic: queue
// depth × mean recent service time ÷ workers, clamped to [1, 300].
func TestRetryAfterPricing(t *testing.T) {
	s := newIdleServer(2)
	s.mu.Lock()
	defer s.mu.Unlock()

	// No samples, empty queue: the default 1s floor.
	if got := s.retryAfterLocked(); got != 1 {
		t.Fatalf("empty gateway: %d, want 1", got)
	}
	// Mean service 10s, 5 queued ahead across 2 workers: (5+1)/2×10 = 30.
	for i := 0; i < 4; i++ {
		s.recordServiceLocked(10)
	}
	s.queue = make([]string, 5)
	if got := s.retryAfterLocked(); got != 30 {
		t.Fatalf("5 queued at mean 10s over 2 workers: %d, want 30", got)
	}
	// A deep queue clamps at the 300s ceiling, not hours.
	s.queue = make([]string, 10000)
	if got := s.retryAfterLocked(); got != 300 {
		t.Fatalf("deep queue: %d, want clamp 300", got)
	}
	// Sub-second service times clamp up to the 1s floor.
	s.queue = nil
	for i := 0; i < serviceRing; i++ {
		s.recordServiceLocked(0.01)
	}
	if got := s.retryAfterLocked(); got != 1 {
		t.Fatalf("fast service: %d, want floor 1", got)
	}
}

// TestQueueFullRetryAfterHeader pins the satellite fix: a queue-full
// 429 carries a live Retry-After header instead of a bare rejection.
func TestQueueFullRetryAfterHeader(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxQueued(0)

	body, _ := json.Marshal(tinyReq())
	resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", ra)
	}
	if secs < minRetryAfter || secs > maxRetryAfter {
		t.Fatalf("Retry-After %d outside [%d, %d]", secs, minRetryAfter, maxRetryAfter)
	}
	if v := s.Metrics().Counter(MetricRunsRejected, "", obs.Labels{"reason": RejectQueue}).Value(); v != 1 {
		t.Fatalf("queue rejection counter %v, want 1", v)
	}
}

// TestBrownoutSheds drives the brownout path on a workerless gateway:
// an over-aged queue sheds its lowest-priority run for a higher-
// priority arrival, and turns away an arrival nothing ranks below.
func TestBrownoutSheds(t *testing.T) {
	s := newIdleServer(1)
	s.SetBrownout(time.Nanosecond)

	low := tinyReq() // priority 0
	lowView, err := s.submit(low)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // age the queue head past the watermark

	high := tinyReq()
	high.Priority = 1
	highView, err := s.submit(high)
	if err != nil {
		t.Fatalf("high-priority arrival not admitted over a sheddable run: %v", err)
	}

	s.mu.Lock()
	shedStatus := s.runs[lowView.ID].view.Status
	shedOutcome := s.runs[lowView.ID].view.Outcome
	queued := append([]string(nil), s.queue...)
	s.mu.Unlock()
	if shedStatus != StatusShed || shedOutcome != string(StatusShed) {
		t.Fatalf("victim status=%s outcome=%q, want shed/shed", shedStatus, shedOutcome)
	}
	if len(queued) != 1 || queued[0] != highView.ID {
		t.Fatalf("queue %v, want just %s", queued, highView.ID)
	}

	// The high-priority run now heads the over-aged queue; an arrival
	// that ranks no higher is itself the shed victim.
	time.Sleep(2 * time.Millisecond)
	_, err = s.submit(tinyReq())
	var sh *ShedError
	if !errors.As(err, &sh) || !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority arrival under brownout: %v, want ShedError", err)
	}
	if sh.RetryAfterSecs < minRetryAfter || sh.RetryAfterSecs > maxRetryAfter {
		t.Fatalf("shed Retry-After %d outside clamps", sh.RetryAfterSecs)
	}
	if v := s.Metrics().Counter(MetricRunsShed, "", nil).Value(); v != 2 {
		t.Fatalf("shed counter %v, want 2 (one eviction, one turn-away)", v)
	}
}

// TestShedRunOverHTTP drives brownout end-to-end through the handler:
// the turned-away arrival gets 503 + Retry-After, and the evicted
// run's view reports shed.
func TestShedRunOverHTTP(t *testing.T) {
	s := newIdleServer(1)
	s.SetBrownout(time.Nanosecond)
	mux := s.Handler()

	post := func(req RunRequest) (*http.Response, RunView) {
		body, _ := json.Marshal(req)
		r, _ := http.NewRequest(http.MethodPost, "/api/runs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, r)
		var view RunView
		_ = json.NewDecoder(rec.Result().Body).Decode(&view)
		return rec.Result(), view
	}

	_, lowView := post(tinyReq())
	time.Sleep(2 * time.Millisecond)
	resp, _ := post(tinyReq()) // same priority: the arrival is turned away
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed arrival status %d, want 503", resp.StatusCode)
	}
	if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
		t.Fatalf("shed 503 Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}

	// The queued run survived (the arrival was the victim); a higher
	// priority arrival evicts it and its view then reports shed.
	time.Sleep(2 * time.Millisecond)
	high := tinyReq()
	high.Priority = 1
	if resp, _ := post(high); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("high-priority arrival status %d, want 202", resp.StatusCode)
	}
	r, _ := http.NewRequest(http.MethodGet, "/api/runs/"+lowView.ID, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, r)
	var got RunView
	_ = json.NewDecoder(rec.Result().Body).Decode(&got)
	if got.Status != StatusShed || got.Outcome != "shed" {
		t.Fatalf("evicted run view status=%s outcome=%q, want shed/shed", got.Status, got.Outcome)
	}
}

// TestInfeasibleSubmissionOverHTTP: admission rejections are 422
// without Retry-After (retrying cannot help) and count by reason.
func TestInfeasibleSubmissionOverHTTP(t *testing.T) {
	s, ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		mutate func(*RunRequest)
		reason string
	}{
		{"deadline", func(r *RunRequest) { r.DeadlineSeconds = 0.001 }, RejectDeadline},
		{"cost", func(r *RunRequest) { r.MaxCostUSD = 1e-9 }, RejectCost},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := tinyReq()
			tc.mutate(&req)
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, want 422", resp.StatusCode)
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				t.Fatalf("infeasible rejection carries Retry-After %q", ra)
			}
			if v := s.Metrics().Counter(MetricRunsRejected, "", obs.Labels{"reason": tc.reason}).Value(); v != 1 {
				t.Fatalf("rejected{%s} = %v, want 1", tc.reason, v)
			}
		})
	}
}

// TestOverloadMetricCardinalityPinned: every rejection series is
// registered at construction and traffic never mints new ones.
func TestOverloadMetricCardinalityPinned(t *testing.T) {
	s, ts := newTestServer(t)
	count := func() (rejected, shed int) {
		for _, p := range s.Metrics().Points() {
			switch p.Name {
			case MetricRunsRejected:
				rejected++
			case MetricRunsShed:
				shed++
			}
		}
		return
	}
	rej, shed := count()
	if rej != 3 || shed != 1 {
		t.Fatalf("pre-traffic series: rejected=%d shed=%d, want 3 and 1", rej, shed)
	}

	// Drive every rejection class through the API.
	post := func(req RunRequest) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	infeasible := tinyReq()
	infeasible.DeadlineSeconds = 0.001
	post(infeasible)
	costly := tinyReq()
	costly.MaxCostUSD = 1e-9
	post(costly)
	s.SetMaxQueued(0)
	post(tinyReq())
	s.SetMaxQueued(DefaultMaxQueued)

	if rej, shed = count(); rej != 3 || shed != 1 {
		t.Fatalf("post-traffic series: rejected=%d shed=%d, want 3 and 1", rej, shed)
	}
}

// TestCloseSubmitResumeRace hammers Close, submissions and resume
// requests concurrently (run under -race): no panic, no deadlock, and
// submissions after Close are refused cleanly.
func TestCloseSubmitResumeRace(t *testing.T) {
	s, ts := newJournaledServer(t, t.TempDir())

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				body, _ := json.Marshal(tinyReq())
				resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 1; j <= 10; j++ {
			url := fmt.Sprintf("%s/api/runs/run-%05d/resume", ts.URL, j)
			resp, err := http.Post(url, "application/json", nil)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Close()
	}()
	wg.Wait()
	s.Close() // idempotent

	if _, err := s.submit(tinyReq()); !errors.Is(err, errClosed) {
		t.Fatalf("submit after Close: %v, want errClosed", err)
	}
}
