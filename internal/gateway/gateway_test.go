package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestProfilesAndAssemblers(t *testing.T) {
	_, ts := newTestServer(t)
	var profiles []map[string]any
	if code := getJSON(t, ts.URL+"/api/profiles", &profiles); code != 200 {
		t.Fatalf("profiles status %d", code)
	}
	names := map[string]bool{}
	for _, p := range profiles {
		names[p["name"].(string)] = true
	}
	for _, want := range []string{"tiny", "bglumae", "pcrispa", "bglumae-paired"} {
		if !names[want] {
			t.Errorf("profile %q missing", want)
		}
	}
	var tools []map[string]any
	getJSON(t, ts.URL+"/api/assemblers", &tools)
	if len(tools) < 8 {
		t.Errorf("%d assemblers", len(tools))
	}
}

func submitRun(t *testing.T, ts *httptest.Server, req RunRequest) RunView {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit status %d: %v", resp.StatusCode, e)
	}
	var view RunView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func TestSubmitAndComplete(t *testing.T) {
	s, ts := newTestServer(t)
	view := submitRun(t, ts, RunRequest{
		Profile:       "tiny",
		Assemblers:    []string{"velvet"},
		Scheme:        "S2",
		Pattern:       "dynamic",
		ContrailNodes: 2,
		Evaluate:      true,
	})
	if view.ID == "" || view.Status != StatusQueued {
		t.Fatalf("submission view %+v", view)
	}
	s.Wait()
	var done RunView
	if code := getJSON(t, ts.URL+"/api/runs/"+view.ID, &done); code != 200 {
		t.Fatalf("status %d", code)
	}
	if done.Status != StatusDone {
		t.Fatalf("run %s: %s (%s)", done.ID, done.Status, done.Error)
	}
	if done.TTCSeconds <= 0 || done.CostUSD <= 0 || done.Transcripts == 0 {
		t.Errorf("summary %+v", done)
	}
	if done.Metrics["f1"] <= 0 {
		t.Errorf("metrics %+v", done.Metrics)
	}
	if done.Stages["PB"] == "" {
		t.Errorf("stages %+v", done.Stages)
	}
	// Transcript download.
	resp, err := http.Get(ts.URL + "/api/runs/" + view.ID + "/transcripts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != 200 || !strings.HasPrefix(buf.String(), ">") {
		t.Errorf("transcripts: %d %q...", resp.StatusCode, buf.String()[:min(40, buf.Len())])
	}
	// Run list includes it.
	var all []RunView
	getJSON(t, ts.URL+"/api/runs", &all)
	if len(all) != 1 || all[0].ID != view.ID {
		t.Errorf("list %+v", all)
	}
}

func TestSubmitWithFaultPlan(t *testing.T) {
	s, ts := newTestServer(t)
	view := submitRun(t, ts, RunRequest{
		Profile:    "tiny",
		Assemblers: []string{"velvet"},
		Scheme:     "S1",
		Pattern:    "static",
		Faults:     "unitflake:p=0.9,n=1",
		FaultSeed:  3,
	})
	s.Wait()
	var done RunView
	if code := getJSON(t, ts.URL+"/api/runs/"+view.ID, &done); code != 200 {
		t.Fatalf("status %d", code)
	}
	if done.Status != StatusDone {
		t.Fatalf("run %s: %s (%s)", done.ID, done.Status, done.Error)
	}
	if done.Recovery == "" || !strings.Contains(done.Recovery, "faults injected") {
		t.Errorf("recovery summary missing: %+v", done)
	}
	// A run without a plan reports no recovery field.
	plain := submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"velvet"}})
	s.Wait()
	var plainDone RunView
	getJSON(t, ts.URL+"/api/runs/"+plain.ID, &plainDone)
	if plainDone.Recovery != "" {
		t.Errorf("plain run has recovery %q", plainDone.Recovery)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for name, req := range map[string]RunRequest{
		"bad-profile":   {Profile: "nope"},
		"bad-assembler": {Profile: "tiny", Assemblers: []string{"nope"}},
		"bad-scheme":    {Profile: "tiny", Scheme: "S9"},
		"bad-pattern":   {Profile: "tiny", Pattern: "quantum"},
		"bad-faults":    {Profile: "tiny", Faults: "meteor:p=1"},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/api/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", name, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, _ := http.Post(ts.URL+"/api/runs", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", resp.StatusCode)
	}
}

func TestFailedRunSurfacesError(t *testing.T) {
	s, ts := newTestServer(t)
	// A tiny dataset with P. Crispa's memory demands on a static
	// c3.2xlarge fails in PA; the gateway must report it.
	view := submitRun(t, ts, RunRequest{
		Profile:      "pcrispa",
		Assemblers:   []string{"velvet"},
		Pattern:      "static",
		InstanceType: "c3.2xlarge",
	})
	s.Wait()
	var done RunView
	getJSON(t, ts.URL+"/api/runs/"+view.ID, &done)
	if done.Status != StatusFailed {
		t.Fatalf("status %s", done.Status)
	}
	if !strings.Contains(done.Error, "out of memory") {
		t.Errorf("error %q", done.Error)
	}
	// Transcripts unavailable for failed runs.
	resp, _ := http.Get(ts.URL + "/api/runs/" + view.ID + "/transcripts")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("transcripts of failed run: %d", resp.StatusCode)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(RunRequest{
		Profile: "tiny", Assemblers: []string{"ray", "contrail"}, ContrailNodes: 2,
	})
	resp, err := http.Post(ts.URL+"/api/plans", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var plan map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if plan["ttcSeconds"].(float64) <= 0 || plan["costUSD"].(float64) <= 0 ||
		plan["assemblyNodes"].(float64) <= 0 || plan["instanceType"].(string) == "" {
		t.Errorf("plan %+v", plan)
	}
	// Infeasible plans are rejected with 422, not executed.
	body, _ = json.Marshal(RunRequest{Profile: "pcrispa", Pattern: "static", InstanceType: "c3.2xlarge"})
	resp2, err := http.Post(ts.URL+"/api/plans", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible plan status %d", resp2.StatusCode)
	}
}

func TestUnknownRun(t *testing.T) {
	_, ts := newTestServer(t)
	var e map[string]string
	if code := getJSON(t, ts.URL+"/api/runs/run-99999", &e); code != http.StatusNotFound {
		t.Errorf("status %d", code)
	}
}

func TestConcurrentRuns(t *testing.T) {
	s, ts := newTestServer(t)
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = submitRun(t, ts, RunRequest{
			Profile: "tiny", Assemblers: []string{"velvet"},
		}).ID
	}
	// All complete despite the 2-worker limit.
	deadline := time.After(2 * time.Minute)
	donech := make(chan struct{})
	go func() { s.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-deadline:
		t.Fatal("runs did not finish")
	}
	for _, id := range ids {
		var v RunView
		getJSON(t, ts.URL+"/api/runs/"+id, &v)
		if v.Status != StatusDone {
			t.Errorf("%s: %s (%s)", id, v.Status, v.Error)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
