package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rnascale/internal/journal"
	"rnascale/internal/obs"
)

// lastSegmentPath returns the highest-indexed event-log segment — the
// one a dying gateway was appending to.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, eventsPrefix+"-*.journal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no event-log segments in %s: %v", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// newJournaledServer builds a gateway persisting to dir.
func newJournaledServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(2)
	if err := s.EnableJournal(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	return s, ts
}

// crashingRun is a submission whose driver dies mid-run, leaving a
// resumable pipeline journal behind.
func crashingRun() RunRequest {
	return RunRequest{Profile: "tiny", Assemblers: []string{"ray"},
		Scheme: "S1", Pattern: "static", Faults: "drivercrash:at=500", FaultSeed: 1}
}

func postResume(t *testing.T, ts *httptest.Server, id string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/runs/"+id+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

// TestGatewayRestartReAdoptsInFlightRun simulates gateway loss with a
// run mid-flight: the replacement gateway rebuilds the run table from
// the event log, resumes the interrupted run from its pipeline
// journal, and finishes it under the same id — no dropped or
// duplicated runs.
func TestGatewayRestartReAdoptsInFlightRun(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newJournaledServer(t, dir)
	view := submitRun(t, ts1, crashingRun())
	s1.Wait()
	s1.Close()
	ts1.Close()

	// The run's driver crashed, so its journal survives incomplete.
	lg, err := journal.Open(filepath.Join(dir, view.ID+".journal"))
	if err != nil {
		t.Fatalf("open pipeline journal: %v", err)
	}
	if lg.Complete() {
		t.Fatal("crashed run's journal claims completion")
	}

	// Simulate the gateway dying before it could log the failure: drop
	// the trailing "failed" event so the log ends with the run running
	// — exactly what a SIGKILL mid-run leaves behind. Chopping the log
	// at a record boundary leaves a chain-valid prefix, so the
	// replacement gateway adopts it without repair.
	evPath := lastSegmentPath(t, dir)
	b, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n"))
	last := lines[len(lines)-1]
	if !bytes.Contains(last, []byte(`"failed"`)) {
		t.Fatalf("expected trailing failed event, got %s", last)
	}
	if err := os.WriteFile(evPath, append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newJournaledServer(t, dir)
	s2.Wait()

	var views []RunView
	if code := getJSON(t, ts2.URL+"/api/runs", &views); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if len(views) != 1 {
		t.Fatalf("restart produced %d runs, want exactly the adopted one", len(views))
	}
	got := views[0]
	if got.ID != view.ID {
		t.Fatalf("adopted run id %s, submitted %s", got.ID, view.ID)
	}
	if got.Status != StatusDone {
		t.Fatalf("adopted run finished %s (%s), want done", got.Status, got.Error)
	}
	if got.Transcripts == 0 {
		t.Error("adopted run produced no transcripts")
	}

	// The resume was counted, and the continued journal is complete.
	if v := metricValue(t, s2, obs.MetricRunsResumed); v != 1 {
		t.Errorf("%s = %v, want 1", obs.MetricRunsResumed, v)
	}
	lg, err = journal.Open(filepath.Join(dir, view.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Complete() {
		t.Error("resumed run's journal lacks the complete record")
	}

	// New submissions continue the id sequence rather than colliding.
	next := submitRun(t, ts2, RunRequest{Profile: "tiny", Assemblers: []string{"ray"}})
	if next.ID == view.ID {
		t.Fatalf("new submission reused id %s", next.ID)
	}
	s2.Wait()
}

// TestGatewayRestartKeepsHistoryAndQueue: terminal runs survive a
// restart as history, and a run still queued when the gateway died is
// re-enqueued and executed.
func TestGatewayRestartKeepsHistoryAndQueue(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newJournaledServer(t, dir)
	done := submitRun(t, ts1, RunRequest{Profile: "tiny", Assemblers: []string{"ray"}})
	s1.Wait()
	s1.Close()
	ts1.Close()

	// Append a run the dead gateway accepted but never started, by
	// continuing its event-log segment — a handcrafted line would not
	// carry a valid chain digest.
	b, err := json.Marshal(RunView{
		ID: "run-00009", Status: StatusQueued,
		Request: RunRequest{Profile: "tiny", Assemblers: []string{"ray"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ew, err := journal.Continue(lastSegmentPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ew.Append(journal.Record{Kind: journal.KindEvent, Note: "run-00009", Payload: b}); err != nil {
		t.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}
	preCompact := lastSegmentPath(t, dir)

	s2, ts2 := newJournaledServer(t, dir)
	s2.Wait()
	var views []RunView
	getJSON(t, ts2.URL+"/api/runs", &views)
	byID := map[string]RunView{}
	for _, v := range views {
		byID[v.ID] = v
	}
	if len(views) != 2 {
		t.Fatalf("restart holds %d runs, want 2", len(views))
	}
	if v := byID[done.ID]; v.Status != StatusDone || v.Transcripts == 0 {
		t.Errorf("finished run did not survive restart: %+v", v)
	}
	if v := byID["run-00009"]; v.Status != StatusDone {
		t.Errorf("queued run was not re-adopted to completion: %+v", v)
	}
	// The id counter moved past the adopted ids.
	next := submitRun(t, ts2, RunRequest{Profile: "tiny", Assemblers: []string{"ray"}})
	if next.ID != "run-00010" {
		t.Errorf("next id %s, want run-00010", next.ID)
	}
	s2.Wait()

	// Restart compacted the inherited history into a fresh snapshot
	// segment: the segment the dead gateway wrote is gone, and the
	// live one chain-verifies clean.
	if _, err := os.Stat(preCompact); !os.IsNotExist(err) {
		t.Errorf("pre-restart segment %s survived compaction (err=%v)", filepath.Base(preCompact), err)
	}
	if vr, err := journal.Verify(lastSegmentPath(t, dir)); err != nil || !vr.Clean() {
		t.Errorf("compacted event log does not verify: %v %s", err, vr)
	}
}

// TestProofEndpoint: a finished run's proof endpoint serves a clean
// chain-verification report plus a Merkle inclusion proof that checks
// out against the reported root — and rejects out-of-range seqs.
func TestProofEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newJournaledServer(t, dir)
	view := submitRun(t, ts, RunRequest{Profile: "tiny", Assemblers: []string{"ray"}})
	s.Wait()

	var body struct {
		Verify journal.VerifyResult `json:"verify"`
		Proof  journal.Proof        `json:"proof"`
	}
	if code := getJSON(t, ts.URL+"/api/runs/"+view.ID+"/proof", &body); code != 200 {
		t.Fatalf("proof status %d", code)
	}
	if !body.Verify.Clean() {
		t.Fatalf("finished run's journal not clean: %s", body.Verify)
	}
	if body.Verify.Root != body.Proof.Root {
		t.Fatalf("proof root %s != verify root %s", body.Proof.Root, body.Verify.Root)
	}
	if err := journal.VerifyInclusion(body.Proof); err != nil {
		t.Errorf("served proof does not verify: %v", err)
	}
	lg, err := journal.Open(filepath.Join(dir, view.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := journal.RecordLeaf(lg.Records[body.Proof.Seq])
	if err != nil {
		t.Fatal(err)
	}
	if leaf != body.Proof.Leaf {
		t.Errorf("proof leaf %.12s… does not match the journal record's leaf %.12s…", body.Proof.Leaf, leaf)
	}

	// A specific record by seq.
	if code := getJSON(t, ts.URL+"/api/runs/"+view.ID+"/proof?seq=0", &body); code != 200 {
		t.Fatalf("proof?seq=0 status %d", code)
	}
	if body.Proof.Seq != 0 {
		t.Errorf("proof seq %d, want 0", body.Proof.Seq)
	}
	var errBody map[string]any
	if code := getJSON(t, ts.URL+"/api/runs/"+view.ID+"/proof?seq=9999", &errBody); code != http.StatusBadRequest {
		t.Errorf("out-of-range seq status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/api/runs/run-99999/proof", &errBody); code != http.StatusNotFound {
		t.Errorf("unknown run proof status %d, want 404", code)
	}
}

// TestResumeEndpoint pins the resume endpoint's contract: one resume
// of a failed run with a surviving journal is accepted; everything
// else — a double resume, a finished run, a run without a journal —
// conflicts with 409.
func TestResumeEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newJournaledServer(t, dir)
	view := submitRun(t, ts, crashingRun())
	s.Wait()

	var failed RunView
	getJSON(t, ts.URL+"/api/runs/"+view.ID, &failed)
	if failed.Status != StatusFailed {
		t.Fatalf("crashing run ended %s, want failed", failed.Status)
	}

	code, body := postResume(t, ts, view.ID)
	if code != http.StatusAccepted {
		t.Fatalf("resume status %d (%v), want 202", code, body)
	}
	// Double resume: the run is already queued, running or done again.
	code, body = postResume(t, ts, view.ID)
	if code != http.StatusConflict {
		t.Fatalf("double resume status %d (%v), want 409", code, body)
	}
	if _, ok := body["error"]; !ok {
		t.Error("409 body lacks error field")
	}
	s.Wait()

	var resumed RunView
	getJSON(t, ts.URL+"/api/runs/"+view.ID, &resumed)
	if resumed.Status != StatusDone || resumed.Transcripts == 0 {
		t.Fatalf("resumed run ended %+v, want done with transcripts", resumed)
	}
	// Resuming a finished run conflicts too.
	if code, _ := postResume(t, ts, view.ID); code != http.StatusConflict {
		t.Fatalf("resume of done run status %d, want 409", code)
	}
	if v := metricValue(t, s, obs.MetricRunsResumed); v != 1 {
		t.Errorf("%s = %v, want 1", obs.MetricRunsResumed, v)
	}
	if code, _ := postResume(t, ts, "run-99999"); code != http.StatusNotFound {
		t.Errorf("resume of unknown run: want 404")
	}
}

// TestResumeWithoutJournal: when the gateway does not journal, a
// failed run has nothing to resume from and the endpoint conflicts.
func TestResumeWithoutJournal(t *testing.T) {
	s, ts := newTestServer(t)
	view := submitRun(t, ts, crashingRun())
	s.Wait()
	code, body := postResume(t, ts, view.ID)
	if code != http.StatusConflict {
		t.Fatalf("resume status %d (%v), want 409", code, body)
	}
	if !strings.Contains(fmt.Sprint(body["error"]), "journal") {
		t.Errorf("409 body should mention the missing journal: %v", body)
	}
}

// metricValue reads one unlabeled sample from the server registry.
func metricValue(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	for _, p := range s.Metrics().Points() {
		if p.Name == name && len(p.Labels) == 0 {
			return p.Value
		}
	}
	return 0
}
