// Package gateway implements the web service front-end the paper
// plans for the pipeline: "the pipeline will be soon available to the
// research community via the science gateway project". It exposes a
// small JSON HTTP API in the style of the DARE science-gateway
// middleware the authors cite:
//
//	GET  /api/profiles          list dataset profiles
//	GET  /api/assemblers        list integrated assemblers
//	POST /api/runs              submit a pipeline run
//	POST /api/batch             submit a batch, wait for ordered results
//	GET  /api/runs              list runs and statuses
//	GET  /api/runs/{id}         one run's report
//	POST /api/runs/{id}/resume  resume a failed run from its journal
//	GET  /api/runs/{id}/transcripts   assembled transcripts (FASTA)
//	GET  /api/runs/{id}/trace   Chrome trace_event JSON for the run
//	GET  /api/runs/{id}/proof   journal chain verification + Merkle proof
//	GET  /api/metrics           Prometheus text exposition
//
// Submitted runs execute asynchronously on a fixed pool of worker
// goroutines fed by a bounded queue: when the queue is full, POST
// /api/runs answers 429 Too Many Requests instead of accepting
// unbounded backlog. Each run gets its own simulated cloud (and its
// own span tree and metric registry), so concurrent users cannot
// interfere. The /api/metrics endpoint serves the server-level
// registry: gateway counters plus aggregate TTC/cost histograms over
// finished runs (per-run values stay in the run views, keeping metric
// cardinality constant under sustained load).
//
// With EnableJournal the gateway itself survives loss: the run table
// and bounded queue persist through an event log, every run executes
// under a per-run pipeline journal, and a restarted gateway re-adopts
// in-flight runs — resuming interrupted ones from their journals
// instead of re-executing completed work (see journal.go).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rnascale/internal/assembler"
	_ "rnascale/internal/assembler/all" // make every assembler submittable
	"rnascale/internal/core"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/obs"
	"rnascale/internal/seq"
	"rnascale/internal/simdata"
	"rnascale/internal/sweep"
	"rnascale/internal/vclock"
)

// Gateway-level metric names (the per-run rnascale_* metrics live in
// each run's own registry, reachable via its trace/snapshot).
const (
	// MetricRuns counts submitted runs by terminal status.
	MetricRuns = "rnascale_gateway_runs_total"
	// MetricRunsInflight gauges queued-or-running runs.
	MetricRunsInflight = "rnascale_gateway_runs_inflight"
	// MetricRunTTC is a histogram of finished-run TTCs. Earlier
	// versions kept one gauge per run id, which grew the exposition
	// without bound; the histogram's _sum/_count keep the aggregate
	// while per-run values remain in each RunView.
	MetricRunTTC = "rnascale_gateway_run_ttc_seconds"
	// MetricRunCost is a histogram of finished-run cloud bills.
	MetricRunCost = "rnascale_gateway_run_cost_usd"
	// MetricRunsQueueWait is a histogram of real seconds a run spent
	// between enqueue and a worker picking it up. Unlike TTC and cost
	// (virtual quantities of the simulated run), queue wait is wall
	// time the submitting user actually experiences, and is the signal
	// that says "add workers" when the bounded queue backs up.
	MetricRunsQueueWait = "rnascale_gateway_runs_queue_wait_seconds"
	// MetricRunsRejected counts admission rejections by reason. The
	// label is bounded by rejectReasons — all series are registered at
	// startup so the exposition's cardinality is constant.
	MetricRunsRejected = "rnascale_gateway_runs_rejected_total"
	// MetricRunsShed counts work dropped by brownout shedding: queued
	// runs evicted for higher-priority arrivals, and low-priority
	// arrivals turned away while the queue is over its wait watermark.
	MetricRunsShed = "rnascale_gateway_runs_shed_total"
)

// Admission rejection reasons (the only values MetricRunsRejected's
// reason label ever takes).
const (
	// RejectDeadline: the planner prices the run's TTC past its
	// deadline; admitting it would burn budget on a doomed run.
	RejectDeadline = "deadline"
	// RejectCost: predicted cost exceeds the request's budget.
	RejectCost = "cost"
	// RejectQueue: the bounded queue is full.
	RejectQueue = "queue"
)

// rejectReasons pins the reason label's cardinality.
func rejectReasons() []string { return []string{RejectDeadline, RejectCost, RejectQueue} }

// costBuckets spans the USD range of the paper's experiments, from
// sub-dollar tiny runs to full-scale multi-hundred-dollar bills.
func costBuckets() []float64 {
	return []float64{0.1, 0.5, 1, 5, 20, 100, 500}
}

// queueWaitBuckets spans instant pickup (idle worker) through a queue
// backed up behind minutes of simulated pipelines.
func queueWaitBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60}
}

// DefaultMaxQueued is the submission queue bound when the operator
// does not choose one.
const DefaultMaxQueued = 64

// ErrQueueFull is returned by run submission when the queue is at its
// bound; the HTTP layer maps it to 429 Too Many Requests. Submissions
// actually surface a *QueueFullError (which Is ErrQueueFull) carrying
// the live Retry-After hint.
var ErrQueueFull = errors.New("gateway: run queue full")

// ErrShed is the identity of *ShedError for errors.Is.
var ErrShed = errors.New("gateway: submission shed")

// errClosed rejects submissions after Close.
var errClosed = errors.New("gateway: server closed")

// QueueFullError rejects a submission that found the bounded queue at
// capacity, carrying the honest backoff hint the 429 advertises.
type QueueFullError struct {
	RetryAfterSecs int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("gateway: run queue full; retry in %ds", e.RetryAfterSecs)
}

// Is makes errors.Is(err, ErrQueueFull) keep working for callers that
// match the sentinel.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// ShedError rejects a submission turned away by brownout shedding:
// the queue is past its wait watermark and nothing queued ranks below
// the arrival. Maps to 503 with a Retry-After hint.
type ShedError struct {
	RetryAfterSecs int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("gateway: shed under brownout (queue wait over watermark); retry in %ds", e.RetryAfterSecs)
}

// Is makes errors.Is(err, ErrShed) work.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// AdmissionError rejects a submission the planner priced as
// infeasible: predicted TTC past the deadline, or predicted cost over
// budget. Retrying the same request cannot help, so the HTTP layer
// maps it to 422 Unprocessable Entity with no Retry-After.
type AdmissionError struct {
	Reason    string // RejectDeadline or RejectCost
	Predicted float64
	Limit     float64
}

func (e *AdmissionError) Error() string {
	switch e.Reason {
	case RejectDeadline:
		return fmt.Sprintf("gateway: predicted TTC %.0fs cannot meet deadline %.0fs", e.Predicted, e.Limit)
	case RejectCost:
		return fmt.Sprintf("gateway: predicted cost $%.2f exceeds budget $%.2f", e.Predicted, e.Limit)
	}
	return fmt.Sprintf("gateway: admission rejected (%s)", e.Reason)
}

// RunRequest is the submission payload.
type RunRequest struct {
	// Profile is a built-in dataset profile name.
	Profile string `json:"profile"`
	// Assemblers lists the tools (default ["ray"]); >1 enables MAMP.
	Assemblers []string `json:"assemblers"`
	// Scheme is "S1" or "S2" (default S2).
	Scheme string `json:"scheme"`
	// Pattern is "conventional", "static" or "dynamic" (default
	// dynamic).
	Pattern string `json:"pattern"`
	// InstanceType fixes the flavour for static patterns.
	InstanceType string `json:"instanceType"`
	// ContrailNodes overrides the per-Contrail-job node count.
	ContrailNodes int `json:"contrailNodes"`
	// Evaluate scores the result against the synthetic ground truth.
	Evaluate bool `json:"evaluate"`
	// Faults is a deterministic fault-injection spec (see
	// internal/faults), e.g. "crash:p=0.1,after=600;slowxfer:x=0.5".
	// Empty disables injection.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault-injection PRNG; the same seed replays
	// the same faults.
	FaultSeed uint64 `json:"faultSeed,omitempty"`
	// DeadlineSeconds is a virtual-time deadline for the run. Admission
	// prices the run with the planner and rejects it up front when the
	// predicted TTC cannot meet the deadline; an admitted run carries
	// the deadline into the pipeline, which cancels remaining work at
	// the cutoff. Zero means no deadline.
	DeadlineSeconds float64 `json:"deadlineSeconds,omitempty"`
	// MaxCostUSD rejects the run at admission when the predicted cloud
	// bill exceeds it. Zero means no budget cap.
	MaxCostUSD float64 `json:"maxCostUSD,omitempty"`
	// RetryBudget caps run-wide unit retries (see core.Config). Zero
	// means unlimited.
	RetryBudget int `json:"retryBudget,omitempty"`
	// Priority orders runs under brownout shedding: when the queue's
	// head has waited past the shed watermark, the lowest-priority
	// queued run is evicted to make room for a higher-priority
	// arrival, and arrivals that are themselves lowest-priority are
	// turned away. Higher is more important; default 0.
	Priority int `json:"priority,omitempty"`
}

// RunStatus is the externally visible run state.
type RunStatus string

// Run states.
const (
	StatusQueued  RunStatus = "queued"
	StatusRunning RunStatus = "running"
	StatusDone    RunStatus = "done"
	StatusFailed  RunStatus = "failed"
	// StatusShed marks a queued run evicted by brownout shedding
	// before any worker picked it up. Terminal; the event-log replay
	// treats it as history, like done and failed.
	StatusShed RunStatus = "shed"
)

// RunView is the JSON representation of a run.
type RunView struct {
	ID      string     `json:"id"`
	Status  RunStatus  `json:"status"`
	Request RunRequest `json:"request"`
	Error   string     `json:"error,omitempty"`
	// Outcome is the pipeline's outcome class (complete,
	// deadline_exceeded, cancelled) once the run is terminal; shed runs
	// carry "shed". Empty for plain failures and non-terminal runs.
	Outcome string `json:"outcome,omitempty"`
	// Summary fields, present once done.
	TTCSeconds  float64            `json:"ttcSeconds,omitempty"`
	CostUSD     float64            `json:"costUSD,omitempty"`
	Stages      map[string]string  `json:"stages,omitempty"`
	Transcripts int                `json:"transcripts,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Recovery summarizes fault injection and recovery ("N faults
	// injected, ..."), present when the run had a fault plan.
	Recovery string `json:"recovery,omitempty"`
}

// run is the internal record. cfg and ds hold the prepared work for a
// queued run; the worker that picks it up clears ds so the dataset is
// not pinned past the run (profiles are memoized in simdata anyway).
// Under EnableJournal, journalPath is the run's pipeline journal and
// resumeFrom (when set) tells the worker to continue that journal
// instead of starting over.
type run struct {
	view        RunView
	report      *core.Report
	obs         *obs.Obs
	cfg         core.Config
	ds          *simdata.Dataset
	journalPath string
	resumeFrom  string
	// enqueuedAt is the wall-clock instant the run (re-)entered the
	// queue; the queue-wait histogram observes the gap to worker
	// pickup. Wall clock, not vclock: queue wait happens outside any
	// simulated run and is real time the submitter experiences.
	enqueuedAt time.Time
	// startedAt is the wall-clock instant a worker picked the run up;
	// terminal transitions feed startedAt→now into the service-time
	// ring that prices Retry-After hints.
	startedAt time.Time
}

// Server is the gateway. Create with NewServer and mount via Handler.
type Server struct {
	mu            sync.Mutex
	cond          *sync.Cond // signalled when queue grows or server closes
	runs          map[string]*run
	order         []string
	queue         []string // run ids waiting for a worker, FIFO
	nextID        int
	maxQueued     int
	maxConcurrent int
	closed        bool
	workerWG      sync.WaitGroup // the fixed worker pool
	runsWG        sync.WaitGroup // submitted-but-not-terminal runs
	metrics       *obs.Registry
	journalDir    string             // set by EnableJournal
	events        *journal.Segmented // segmented event log, nil when not journaling
	rotateEvery   int                // event-log segment size, 0 = journal default
	brownout      time.Duration      // queue-wait shed watermark, 0 = no shedding
	// serviceSecs is a fixed ring of recent run wall durations (pickup
	// to terminal); its mean prices the Retry-After hint on 429s.
	serviceSecs [serviceRing]float64
	serviceN    int // samples written, caps at serviceRing
	serviceIdx  int // next ring slot
}

// NewServer returns a gateway executing at most maxConcurrent runs at
// once (minimum 1) on a fixed pool of worker goroutines, holding at
// most DefaultMaxQueued submissions waiting for a worker (tune with
// SetMaxQueued). Call Close to drain the queue and stop the workers.
func NewServer(maxConcurrent int) *Server {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	s := &Server{
		runs:          map[string]*run{},
		maxQueued:     DefaultMaxQueued,
		maxConcurrent: maxConcurrent,
		metrics:       obs.NewRegistry(),
	}
	s.cond = sync.NewCond(&s.mu)
	// Register every rejection series (and the shed counter) up front:
	// the exposition shows zeroes from the first scrape and its
	// cardinality never moves, no matter which rejections occur.
	for _, reason := range rejectReasons() {
		s.metrics.Counter(MetricRunsRejected, "Gateway submissions rejected at admission, by reason.",
			obs.Labels{"reason": reason}) //rnavet:allow metriccard — reason ranges over rejectReasons(), the fixed list this loop eagerly registers for constant cardinality
	}
	s.metrics.Counter(MetricRunsShed, "Gateway runs dropped by brownout shedding.", nil)
	s.workerWG.Add(maxConcurrent)
	for i := 0; i < maxConcurrent; i++ {
		go s.worker()
	}
	return s
}

// SetBrownout arms brownout shedding: when a submission arrives while
// the oldest queued run has already waited longer than watermark, the
// gateway sheds the lowest-priority queued run to keep the queue's
// wait bounded — or turns the arrival itself away when nothing queued
// ranks below it. Zero (the default) disables shedding.
func (s *Server) SetBrownout(watermark time.Duration) { //rnavet:allow vtimeleak — the watermark bounds real queue wait (wall time the submitter experiences, outside any simulated run), like queueClock
	s.mu.Lock()
	s.brownout = watermark
	s.mu.Unlock()
}

// SetMaxQueued bounds the submission queue: POSTs arriving while
// maxQueued runs already wait for a worker are rejected with
// ErrQueueFull (HTTP 429). Zero rejects every submission outright;
// there is no unbounded setting.
func (s *Server) SetMaxQueued(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.maxQueued = n
	s.mu.Unlock()
}

// SetJournalRotate sets how many records each event-log segment holds
// before rotation (0 keeps the journal package default). Call before
// EnableJournal; it has no effect on an already-open event log.
func (s *Server) SetJournalRotate(n int) {
	s.mu.Lock()
	s.rotateEvery = n
	s.mu.Unlock()
}

// worker executes queued runs until Close. Each iteration pops the
// oldest queued run; the queue is drained before the worker exits, so
// Close never abandons an accepted submission.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		rn := s.runs[id]
		cfg, ds := rn.cfg, rn.ds
		journalPath, resumeFrom := rn.journalPath, rn.resumeFrom
		rn.ds = nil
		rn.resumeFrom = ""
		s.mu.Unlock()

		s.setStatus(id, StatusRunning, nil, "")
		rep, err := executeRun(cfg, ds, journalPath, resumeFrom)
		if err != nil {
			s.setStatus(id, StatusFailed, rep, err.Error())
			continue
		}
		s.setStatus(id, StatusDone, rep, "")
	}
}

// Metrics exposes the server-level registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// runsInflight moves the queued-or-running gauge by delta. Every
// transition site (submit, batch, re-adoption, resume, settle) goes
// through here so the metric's name and help stay single-sourced and
// the balance is auditable in one place.
func (s *Server) runsInflight(delta int) {
	s.metrics.Gauge(MetricRunsInflight, "Gateway runs queued or running.", nil).Add(float64(delta))
}

// queueClock reads the wall clock for queue-wait accounting. This is
// the only wall-clock read in the package: everything inside a run is
// virtual time, but time spent waiting for a worker is real time.
func queueClock() time.Time {
	return time.Now() //rnavet:allow wallclock — queue wait is real time the submitter experiences, outside any simulated run
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/profiles", s.handleProfiles)
	mux.HandleFunc("/api/assemblers", s.handleAssemblers)
	mux.HandleFunc("/api/plans", s.handlePlan)
	mux.HandleFunc("/api/runs", s.handleRuns)
	mux.HandleFunc("/api/runs/", s.handleRun)
	mux.HandleFunc("/api/batch", s.handleBatch)
	mux.HandleFunc("/api/metrics", s.handleMetrics)
	return mux
}

// Wait blocks until every submitted run has finished (used by tests
// and graceful shutdown).
func (s *Server) Wait() { s.runsWG.Wait() }

// Close stops accepting submissions, drains the queue, waits for the
// worker pool to exit, and closes the event log, returning its close
// error (the final group commit's durability outcome). Safe to call
// more than once. The event log is detached under the lock but closed
// outside it: Close flushes and fsyncs, and no blocking work happens
// while s.mu is held.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workerWG.Wait()
	s.mu.Lock()
	events := s.events
	s.events = nil
	s.mu.Unlock()
	if events != nil {
		return events.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Retry-After bounds. The hint is priced from live queue state (depth
// × mean recent service time ÷ workers), then clamped: at least 1s so
// clients always back off a little, at most 300s so a transient spike
// never tells a client to go away for an hour.
const (
	serviceRing    = 16 // service-time samples kept for the mean
	minRetryAfter  = 1
	maxRetryAfter  = 300
	defaultService = 1.0 // seconds assumed per run before any sample exists
)

// retryAfterLocked prices the honest Retry-After hint: the arriving
// client is behind len(queue) runs draining across maxConcurrent
// workers at the mean recent service time. Caller holds s.mu.
func (s *Server) retryAfterLocked() int {
	mean := defaultService
	if s.serviceN > 0 {
		var sum float64
		for _, v := range s.serviceSecs[:s.serviceN] {
			sum += v
		}
		mean = sum / float64(s.serviceN)
	}
	secs := int(math.Ceil(float64(len(s.queue)+1) / float64(s.maxConcurrent) * mean))
	if secs < minRetryAfter {
		secs = minRetryAfter
	}
	if secs > maxRetryAfter {
		secs = maxRetryAfter
	}
	return secs
}

// recordServiceLocked feeds one finished run's wall duration into the
// service-time ring. Caller holds s.mu.
func (s *Server) recordServiceLocked(secs float64) {
	s.serviceSecs[s.serviceIdx] = secs
	s.serviceIdx = (s.serviceIdx + 1) % serviceRing
	if s.serviceN < serviceRing {
		s.serviceN++
	}
}

// writeTooManyRequests answers 429 with a live Retry-After header and
// the usual JSON error body, so both header-driven and body-driven
// clients can back off.
func writeTooManyRequests(w http.ResponseWriter, retryAfterSecs int, format string, args ...any) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSecs))
	writeErr(w, http.StatusTooManyRequests, format, args...)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type profileView struct {
		Name     string `json:"name"`
		Organism string `json:"organism"`
		Reads    int64  `json:"fullScaleReads"`
		Paired   bool   `json:"paired"`
	}
	var out []profileView
	for _, p := range simdata.Profiles() {
		out = append(out, profileView{Name: p.Name, Organism: p.Organism,
			Reads: p.FullScale.Reads, Paired: p.FullScale.Paired})
	}
	tiny := simdata.Tiny()
	out = append(out, profileView{Name: tiny.Name, Organism: tiny.Organism,
		Reads: tiny.FullScale.Reads, Paired: tiny.FullScale.Paired})
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAssemblers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type toolView struct {
		Name        string `json:"name"`
		GraphType   string `json:"graphType"`
		Distributed string `json:"distributed,omitempty"`
		Version     string `json:"version"`
	}
	var out []toolView
	for _, a := range assembler.List() {
		info := a.Info()
		out = append(out, toolView{Name: info.Name, GraphType: info.GraphType,
			Distributed: info.Distributed, Version: info.Version})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := make([]RunView, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, s.runs[id].view)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		view, err := s.submit(req)
		var qf *QueueFullError
		var sh *ShedError
		var ae *AdmissionError
		switch {
		case errors.As(err, &qf):
			writeTooManyRequests(w, qf.RetryAfterSecs, "%v", err)
			return
		case errors.As(err, &sh):
			// Brownout is load, not a malformed request: 503 with the
			// same honest backoff hint a 429 carries.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", sh.RetryAfterSecs))
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		case errors.As(err, &ae):
			// Infeasible by prediction: retrying cannot help, so no
			// Retry-After — the client must change the request.
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		case errors.Is(err, errClosed):
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		case err != nil:
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/runs/")
	parts := strings.Split(rest, "/")
	if len(parts) == 2 && parts[1] == "resume" {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		s.handleResume(w, parts[0])
		return
	}
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	rn, ok := s.runs[parts[0]]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", parts[0])
		return
	}
	if len(parts) == 1 {
		s.mu.Lock()
		view := rn.view
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	}
	if len(parts) == 2 && parts[1] == "transcripts" {
		s.mu.Lock()
		rep := rn.report
		status := rn.view.Status
		s.mu.Unlock()
		if status != StatusDone || rep == nil {
			writeErr(w, http.StatusConflict, "run %s is %s", parts[0], status)
			return
		}
		w.Header().Set("Content-Type", "text/x-fasta")
		_ = seq.WriteFasta(w, rep.Transcripts, 80)
		return
	}
	if len(parts) == 2 && parts[1] == "trace" {
		s.mu.Lock()
		o := rn.obs
		s.mu.Unlock()
		// The tracer is safe to export mid-run: unfinished spans are
		// marked open, so a user can watch a run take shape.
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer.WriteChromeTrace(w)
		return
	}
	if len(parts) == 2 && parts[1] == "proof" {
		s.handleProof(w, r, parts[0])
		return
	}
	writeErr(w, http.StatusNotFound, "unknown resource")
}

// handleMetrics serves the server-level registry in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// handlePlan predicts a run's stage TTCs and cost without executing
// it — what a gateway UI shows the user before they commit budget.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	cfg, ds, err := buildConfig(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := core.Predict(ds, cfg)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ttcSeconds":      plan.TTC.Seconds(),
		"costUSD":         plan.CostUSD,
		"assemblyNodes":   plan.AssemblyNodes,
		"instanceType":    plan.InstanceType,
		"transferSeconds": plan.Transfer.Seconds(),
		"paSeconds":       plan.PA.Seconds(),
		"pbSeconds":       plan.PB.Seconds(),
		"pcSeconds":       plan.PC.Seconds(),
	})
}

// rejected counts one admission rejection on a pre-registered series.
func (s *Server) rejected(reason string) {
	s.metrics.Counter(MetricRunsRejected, "Gateway submissions rejected at admission, by reason.",
		obs.Labels{"reason": reason}).Inc() //rnavet:allow metriccard — every caller passes a rejectReasons() constant; the series set is pre-registered in NewServer
}

// shedCount counts one brownout shed.
func (s *Server) shedCount() {
	s.metrics.Counter(MetricRunsShed, "Gateway runs dropped by brownout shedding.", nil).Inc()
}

// admit prices the request with the planner when it carries a
// deadline or cost budget, rejecting infeasible work before it takes
// a queue slot. The same comparison the pipeline would lose against
// at its cutoff happens here against the prediction: a run the
// planner says cannot meet its deadline is never admitted, and a run
// it says can is never rejected for it.
func admit(req RunRequest, cfg core.Config, ds *simdata.Dataset) error {
	if req.DeadlineSeconds <= 0 && req.MaxCostUSD <= 0 {
		return nil
	}
	plan, err := core.Predict(ds, cfg)
	if err != nil {
		return fmt.Errorf("gateway: cannot price submission for admission: %w", err)
	}
	if req.DeadlineSeconds > 0 && plan.TTC.Seconds() > req.DeadlineSeconds {
		return &AdmissionError{Reason: RejectDeadline, Predicted: plan.TTC.Seconds(), Limit: req.DeadlineSeconds}
	}
	if req.MaxCostUSD > 0 && plan.CostUSD > req.MaxCostUSD {
		return &AdmissionError{Reason: RejectCost, Predicted: plan.CostUSD, Limit: req.MaxCostUSD}
	}
	return nil
}

// shedVictimLocked picks the queued run brownout should evict: the
// lowest priority, ties broken toward the most recent arrival (it has
// sunk the least waiting). Returns -1 when the queue is empty. Caller
// holds s.mu.
func (s *Server) shedVictimLocked() int {
	victim := -1
	for i, id := range s.queue {
		if victim == -1 || s.runs[id].view.Request.Priority <= s.runs[s.queue[victim]].view.Request.Priority {
			victim = i
		}
	}
	return victim
}

// submit validates and enqueues a run. A full queue rejects the
// submission with ErrQueueFull rather than accepting unbounded
// backlog (the old per-run-goroutine design held every submission
// alive, so a flood of POSTs grew memory without limit). Requests
// carrying a deadline or budget are priced by the planner first and
// rejected when infeasible; with a brownout watermark armed, an
// over-aged queue sheds its lowest-priority run to admit
// higher-priority work.
func (s *Server) submit(req RunRequest) (RunView, error) {
	cfg, ds, err := buildConfig(req)
	if err != nil {
		return RunView{}, err
	}
	if err := admit(req, cfg, ds); err != nil {
		var ae *AdmissionError
		if errors.As(err, &ae) {
			s.rejected(ae.Reason)
		}
		return RunView{}, err
	}
	cfg.Obs = obs.New()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return RunView{}, errClosed
	}
	var shedID string
	if s.brownout > 0 && len(s.queue) > 0 &&
		queueClock().Sub(s.runs[s.queue[0]].enqueuedAt) > s.brownout {
		idx := s.shedVictimLocked()
		victim := s.runs[s.queue[idx]]
		if victim.view.Request.Priority >= req.Priority {
			// Nothing queued ranks below the arrival: it is itself the
			// lowest-priority work, so brownout turns it away.
			retry := s.retryAfterLocked()
			s.mu.Unlock()
			s.shedCount()
			return RunView{}, &ShedError{RetryAfterSecs: retry}
		}
		shedID = s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		victim.view.Status = StatusShed
		victim.view.Outcome = string(StatusShed)
		victim.view.Error = "shed under brownout: queue wait exceeded watermark"
		victim.ds = nil
		s.logEventLocked(shedID)
	}
	if len(s.queue) >= s.maxQueued {
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejected(RejectQueue)
		// shedID can't be set here: shedding freed a slot.
		return RunView{}, &QueueFullError{RetryAfterSecs: retry}
	}
	s.nextID++
	id := fmt.Sprintf("run-%05d", s.nextID)
	view := RunView{ID: id, Status: StatusQueued, Request: req}
	rn := &run{view: view, obs: cfg.Obs, cfg: cfg, ds: ds, enqueuedAt: queueClock()}
	if s.journalDir != "" {
		rn.journalPath = filepath.Join(s.journalDir, id+".journal")
	}
	s.runs[id] = rn
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.runsWG.Add(1)
	s.logEventLocked(id)
	s.mu.Unlock()
	if shedID != "" {
		// Settle the evicted run's accounting now that the lock is
		// released: it was inflight from its own submit. Shed runs are
		// counted by the dedicated shed counter, not the per-status runs
		// counter, so that counter's label set stays fixed.
		s.shedCount()
		s.runsInflight(-1)
		s.runsWG.Done()
	}
	s.runsInflight(1)
	s.cond.Signal()
	// Return the pre-enqueue snapshot: a worker may already be
	// mutating rn.view under the lock.
	return view, nil
}

// handleBatch accepts {"runs": [...]} and executes the whole batch
// synchronously on the sweep engine, answering with the finished run
// views in submission order. Every request is validated before any
// work starts (one bad entry rejects the batch), and the batch size
// is capped by the queue bound.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Runs []RunRequest `json:"runs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Runs) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	s.mu.Lock()
	maxQueued, closed := s.maxQueued, s.closed
	s.mu.Unlock()
	if closed {
		writeErr(w, http.StatusServiceUnavailable, "%v", errClosed)
		return
	}
	if len(req.Runs) > maxQueued {
		s.mu.Lock()
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejected(RejectQueue)
		writeTooManyRequests(w, retry, "batch of %d exceeds queue bound %d", len(req.Runs), maxQueued)
		return
	}
	cfgs := make([]core.Config, len(req.Runs))
	dss := make([]*simdata.Dataset, len(req.Runs))
	for i, rr := range req.Runs {
		cfg, ds, err := buildConfig(rr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "run %d: %v", i, err)
			return
		}
		cfg.Obs = obs.New()
		cfgs[i] = cfg
		dss[i] = ds
	}
	ids := make([]string, len(req.Runs))
	paths := make([]string, len(req.Runs))
	s.mu.Lock()
	for i := range req.Runs {
		s.nextID++
		ids[i] = fmt.Sprintf("run-%05d", s.nextID)
		rn := &run{
			view:       RunView{ID: ids[i], Status: StatusQueued, Request: req.Runs[i]},
			obs:        cfgs[i].Obs,
			enqueuedAt: queueClock(),
		}
		if s.journalDir != "" {
			rn.journalPath = filepath.Join(s.journalDir, ids[i]+".journal")
			paths[i] = rn.journalPath
		}
		s.runs[ids[i]] = rn
		s.order = append(s.order, ids[i])
		s.runsWG.Add(1)
		s.logEventLocked(ids[i])
	}
	s.mu.Unlock()
	s.runsInflight(len(ids))
	views, err := sweep.Map(len(ids), func(i int) (RunView, error) {
		s.setStatus(ids[i], StatusRunning, nil, "")
		rep, runErr := executeRun(cfgs[i], dss[i], paths[i], "")
		if runErr != nil {
			s.setStatus(ids[i], StatusFailed, rep, runErr.Error())
		} else {
			s.setStatus(ids[i], StatusDone, rep, "")
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.runs[ids[i]].view, nil
	}, sweep.Options{Workers: s.maxConcurrent})
	if err != nil {
		// Only a panicking pipeline lands here; the cells themselves
		// fold run failures into their views. Settle any run the
		// panic left non-terminal so Wait and the inflight gauge
		// stay balanced.
		for _, id := range ids {
			s.mu.Lock()
			st := s.runs[id].view.Status
			s.mu.Unlock()
			if st != StatusDone && st != StatusFailed {
				s.setStatus(id, StatusFailed, nil, err.Error())
			}
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, views)
}

// setStatus updates a run's view under the lock. The queued→running
// transition observes the run's queue wait; terminal statuses settle
// the run's accounting: the status counter, the inflight gauge, the
// aggregate TTC/cost histograms and the Wait group.
func (s *Server) setStatus(id string, status RunStatus, rep *core.Report, errMsg string) {
	if status == StatusRunning {
		now := queueClock()
		s.mu.Lock()
		enqueuedAt := s.runs[id].enqueuedAt
		s.runs[id].startedAt = now
		s.mu.Unlock()
		if !enqueuedAt.IsZero() {
			s.metrics.Histogram(MetricRunsQueueWait,
				"Real seconds from enqueue to worker pickup.", queueWaitBuckets(), nil).
				Observe(now.Sub(enqueuedAt).Seconds())
		}
	}
	if status == StatusDone || status == StatusFailed {
		s.metrics.Counter(MetricRuns, "Gateway runs by terminal status.",
			obs.Labels{"status": string(status)}).Inc()
		s.runsInflight(-1)
		defer s.runsWG.Done()
		now := queueClock()
		s.mu.Lock()
		if startedAt := s.runs[id].startedAt; !startedAt.IsZero() {
			s.recordServiceLocked(now.Sub(startedAt).Seconds())
		}
		s.mu.Unlock()
	}
	if rep != nil && status == StatusDone {
		s.metrics.Histogram(MetricRunTTC, "Finished run TTC, virtual seconds.", nil, nil).
			Observe(rep.TTC.Seconds())
		s.metrics.Histogram(MetricRunCost, "Finished run cloud bill, USD.", costBuckets(), nil).
			Observe(rep.CostUSD)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rn := s.runs[id]
	rn.view.Status = status
	rn.view.Error = errMsg
	rn.report = rep
	if rep != nil && rep.Outcome != "" {
		rn.view.Outcome = string(rep.Outcome)
	}
	if rep != nil {
		rn.view.TTCSeconds = rep.TTC.Seconds()
		rn.view.CostUSD = rep.CostUSD
		rn.view.Transcripts = len(rep.Transcripts)
		rn.view.Stages = map[string]string{}
		for _, st := range rep.Stages {
			rn.view.Stages[st.Name] = st.Duration().String()
		}
		if rep.Config.FaultPlan != nil {
			rn.view.Recovery = rep.Recovery.String()
		}
		if rep.Metrics != nil {
			rn.view.Metrics = map[string]float64{
				"precision":          rep.Metrics.Precision,
				"recall":             rep.Metrics.Recall,
				"f1":                 rep.Metrics.F1,
				"weightedKmerRecall": rep.Metrics.WeightedKmerRecall,
				"kcScore":            rep.Metrics.KCScore,
			}
		}
	}
	s.logEventLocked(id)
}

// buildConfig translates a request into a pipeline configuration and
// dataset.
func buildConfig(req RunRequest) (core.Config, *simdata.Dataset, error) {
	name := req.Profile
	if name == "" {
		name = "tiny"
	}
	var prof simdata.Profile
	if name == "tiny" {
		prof = simdata.Tiny()
	} else {
		p, ok := simdata.Profiles()[name]
		if !ok {
			return core.Config{}, nil, fmt.Errorf("gateway: unknown profile %q", name)
		}
		prof = p
	}
	// Datasets are immutable through the pipeline, so every submission
	// of the same profile shares one memoized generation.
	ds, err := simdata.GenerateCached(prof)
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg := core.DefaultConfig()
	if len(req.Assemblers) > 0 {
		cfg.Assemblers = req.Assemblers
	}
	for _, a := range cfg.Assemblers {
		if _, err := assembler.Get(a); err != nil {
			return core.Config{}, nil, err
		}
	}
	switch strings.ToUpper(req.Scheme) {
	case "", "S2":
		cfg.Scheme = core.S2
	case "S1":
		cfg.Scheme = core.S1
	default:
		return core.Config{}, nil, fmt.Errorf("gateway: unknown scheme %q", req.Scheme)
	}
	switch strings.ToLower(req.Pattern) {
	case "", "dynamic":
		cfg.Pattern = core.DistributedDynamic
	case "static":
		cfg.Pattern = core.DistributedStatic
	case "conventional":
		cfg.Pattern = core.Conventional
	default:
		return core.Config{}, nil, fmt.Errorf("gateway: unknown pattern %q", req.Pattern)
	}
	if req.InstanceType != "" {
		cfg.InstanceType = req.InstanceType
	}
	if req.ContrailNodes > 0 {
		cfg.ContrailNodes = req.ContrailNodes
	}
	cfg.EvaluateAgainstTruth = req.Evaluate
	if req.DeadlineSeconds < 0 {
		return core.Config{}, nil, fmt.Errorf("gateway: negative deadline %v", req.DeadlineSeconds)
	}
	if req.MaxCostUSD < 0 {
		return core.Config{}, nil, fmt.Errorf("gateway: negative cost budget %v", req.MaxCostUSD)
	}
	if req.RetryBudget < 0 {
		return core.Config{}, nil, fmt.Errorf("gateway: negative retry budget %d", req.RetryBudget)
	}
	// An admitted deadline still rides into the pipeline: prediction
	// error or injected faults can push a feasible run past its
	// deadline mid-flight, and the run-level cutoff catches that.
	cfg.Deadline = vclock.Duration(req.DeadlineSeconds)
	cfg.RetryBudget = req.RetryBudget
	if req.Faults != "" {
		plan, err := faults.ParseSpec(req.Faults)
		if err != nil {
			return core.Config{}, nil, fmt.Errorf("gateway: %w", err)
		}
		cfg.FaultPlan = plan
		cfg.FaultSeed = req.FaultSeed
	}
	return cfg, ds, nil
}
