// Package gateway implements the web service front-end the paper
// plans for the pipeline: "the pipeline will be soon available to the
// research community via the science gateway project". It exposes a
// small JSON HTTP API in the style of the DARE science-gateway
// middleware the authors cite:
//
//	GET  /api/profiles          list dataset profiles
//	GET  /api/assemblers        list integrated assemblers
//	POST /api/runs              submit a pipeline run
//	GET  /api/runs              list runs and statuses
//	GET  /api/runs/{id}         one run's report
//	GET  /api/runs/{id}/transcripts   assembled transcripts (FASTA)
//	GET  /api/runs/{id}/trace   Chrome trace_event JSON for the run
//	GET  /api/metrics           Prometheus text exposition
//
// Submitted runs execute asynchronously with a bounded worker pool;
// each run gets its own simulated cloud (and its own span tree and
// metric registry), so concurrent users cannot interfere. The
// /api/metrics endpoint serves the server-level registry: gateway
// counters plus each finished run's snapshot gauges.
package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"rnascale/internal/assembler"
	_ "rnascale/internal/assembler/all" // make every assembler submittable
	"rnascale/internal/core"
	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/seq"
	"rnascale/internal/simdata"
)

// Gateway-level metric names (the per-run rnascale_* metrics live in
// each run's own registry, reachable via its trace/snapshot).
const (
	// MetricRuns counts submitted runs by terminal status.
	MetricRuns = "rnascale_gateway_runs_total"
	// MetricRunsInflight gauges queued-or-running runs.
	MetricRunsInflight = "rnascale_gateway_runs_inflight"
	// MetricRunTTC gauges each finished run's TTC, labelled by run id.
	MetricRunTTC = "rnascale_gateway_run_ttc_seconds"
	// MetricRunCost gauges each finished run's bill, labelled by run id.
	MetricRunCost = "rnascale_gateway_run_cost_usd"
)

// RunRequest is the submission payload.
type RunRequest struct {
	// Profile is a built-in dataset profile name.
	Profile string `json:"profile"`
	// Assemblers lists the tools (default ["ray"]); >1 enables MAMP.
	Assemblers []string `json:"assemblers"`
	// Scheme is "S1" or "S2" (default S2).
	Scheme string `json:"scheme"`
	// Pattern is "conventional", "static" or "dynamic" (default
	// dynamic).
	Pattern string `json:"pattern"`
	// InstanceType fixes the flavour for static patterns.
	InstanceType string `json:"instanceType"`
	// ContrailNodes overrides the per-Contrail-job node count.
	ContrailNodes int `json:"contrailNodes"`
	// Evaluate scores the result against the synthetic ground truth.
	Evaluate bool `json:"evaluate"`
	// Faults is a deterministic fault-injection spec (see
	// internal/faults), e.g. "crash:p=0.1,after=600;slowxfer:x=0.5".
	// Empty disables injection.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault-injection PRNG; the same seed replays
	// the same faults.
	FaultSeed uint64 `json:"faultSeed,omitempty"`
}

// RunStatus is the externally visible run state.
type RunStatus string

// Run states.
const (
	StatusQueued  RunStatus = "queued"
	StatusRunning RunStatus = "running"
	StatusDone    RunStatus = "done"
	StatusFailed  RunStatus = "failed"
)

// RunView is the JSON representation of a run.
type RunView struct {
	ID      string     `json:"id"`
	Status  RunStatus  `json:"status"`
	Request RunRequest `json:"request"`
	Error   string     `json:"error,omitempty"`
	// Summary fields, present once done.
	TTCSeconds  float64            `json:"ttcSeconds,omitempty"`
	CostUSD     float64            `json:"costUSD,omitempty"`
	Stages      map[string]string  `json:"stages,omitempty"`
	Transcripts int                `json:"transcripts,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Recovery summarizes fault injection and recovery ("N faults
	// injected, ..."), present when the run had a fault plan.
	Recovery string `json:"recovery,omitempty"`
}

// run is the internal record.
type run struct {
	view   RunView
	report *core.Report
	obs    *obs.Obs
}

// Server is the gateway. Create with NewServer and mount via Handler.
type Server struct {
	mu      sync.Mutex
	runs    map[string]*run
	order   []string
	nextID  int
	workers chan struct{}
	wg      sync.WaitGroup
	metrics *obs.Registry
}

// NewServer returns a gateway executing at most maxConcurrent runs at
// once (minimum 1).
func NewServer(maxConcurrent int) *Server {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &Server{
		runs:    map[string]*run{},
		workers: make(chan struct{}, maxConcurrent),
		metrics: obs.NewRegistry(),
	}
}

// Metrics exposes the server-level registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/profiles", s.handleProfiles)
	mux.HandleFunc("/api/assemblers", s.handleAssemblers)
	mux.HandleFunc("/api/plans", s.handlePlan)
	mux.HandleFunc("/api/runs", s.handleRuns)
	mux.HandleFunc("/api/runs/", s.handleRun)
	mux.HandleFunc("/api/metrics", s.handleMetrics)
	return mux
}

// Wait blocks until every submitted run has finished (used by tests
// and graceful shutdown).
func (s *Server) Wait() { s.wg.Wait() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type profileView struct {
		Name     string `json:"name"`
		Organism string `json:"organism"`
		Reads    int64  `json:"fullScaleReads"`
		Paired   bool   `json:"paired"`
	}
	var out []profileView
	for _, p := range simdata.Profiles() {
		out = append(out, profileView{Name: p.Name, Organism: p.Organism,
			Reads: p.FullScale.Reads, Paired: p.FullScale.Paired})
	}
	tiny := simdata.Tiny()
	out = append(out, profileView{Name: tiny.Name, Organism: tiny.Organism,
		Reads: tiny.FullScale.Reads, Paired: tiny.FullScale.Paired})
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAssemblers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type toolView struct {
		Name        string `json:"name"`
		GraphType   string `json:"graphType"`
		Distributed string `json:"distributed,omitempty"`
		Version     string `json:"version"`
	}
	var out []toolView
	for _, a := range assembler.List() {
		info := a.Info()
		out = append(out, toolView{Name: info.Name, GraphType: info.GraphType,
			Distributed: info.Distributed, Version: info.Version})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := make([]RunView, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, s.runs[id].view)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		view, err := s.submit(req)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/runs/")
	parts := strings.Split(rest, "/")
	s.mu.Lock()
	rn, ok := s.runs[parts[0]]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no run %q", parts[0])
		return
	}
	if len(parts) == 1 {
		s.mu.Lock()
		view := rn.view
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	}
	if len(parts) == 2 && parts[1] == "transcripts" {
		s.mu.Lock()
		rep := rn.report
		status := rn.view.Status
		s.mu.Unlock()
		if status != StatusDone || rep == nil {
			writeErr(w, http.StatusConflict, "run %s is %s", parts[0], status)
			return
		}
		w.Header().Set("Content-Type", "text/x-fasta")
		_ = seq.WriteFasta(w, rep.Transcripts, 80)
		return
	}
	if len(parts) == 2 && parts[1] == "trace" {
		s.mu.Lock()
		o := rn.obs
		s.mu.Unlock()
		// The tracer is safe to export mid-run: unfinished spans are
		// marked open, so a user can watch a run take shape.
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer.WriteChromeTrace(w)
		return
	}
	writeErr(w, http.StatusNotFound, "unknown resource")
}

// handleMetrics serves the server-level registry in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// handlePlan predicts a run's stage TTCs and cost without executing
// it — what a gateway UI shows the user before they commit budget.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	cfg, ds, err := buildConfig(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	plan, err := core.Predict(ds, cfg)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ttcSeconds":      plan.TTC.Seconds(),
		"costUSD":         plan.CostUSD,
		"assemblyNodes":   plan.AssemblyNodes,
		"instanceType":    plan.InstanceType,
		"transferSeconds": plan.Transfer.Seconds(),
		"paSeconds":       plan.PA.Seconds(),
		"pbSeconds":       plan.PB.Seconds(),
		"pcSeconds":       plan.PC.Seconds(),
	})
}

// submit validates and enqueues a run.
func (s *Server) submit(req RunRequest) (RunView, error) {
	cfg, ds, err := buildConfig(req)
	if err != nil {
		return RunView{}, err
	}
	cfg.Obs = obs.New()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("run-%05d", s.nextID)
	view := RunView{ID: id, Status: StatusQueued, Request: req}
	rn := &run{view: view, obs: cfg.Obs}
	s.runs[id] = rn
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.metrics.Gauge(MetricRunsInflight, "Gateway runs queued or running.", nil).Add(1)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.workers <- struct{}{}
		defer func() { <-s.workers }()
		s.setStatus(id, StatusRunning, nil, "")
		rep, err := core.Run(ds, cfg)
		if err != nil {
			s.setStatus(id, StatusFailed, rep, err.Error())
			return
		}
		s.setStatus(id, StatusDone, rep, "")
	}()
	// Return the pre-spawn snapshot: the worker may already be
	// mutating rn.view under the lock.
	return view, nil
}

// setStatus updates a run's view under the lock.
func (s *Server) setStatus(id string, status RunStatus, rep *core.Report, errMsg string) {
	if status == StatusDone || status == StatusFailed {
		s.metrics.Counter(MetricRuns, "Gateway runs by terminal status.",
			obs.Labels{"status": string(status)}).Inc()
		s.metrics.Gauge(MetricRunsInflight, "Gateway runs queued or running.", nil).Add(-1)
	}
	if rep != nil && status == StatusDone {
		labels := obs.Labels{"run": id}
		s.metrics.Gauge(MetricRunTTC, "Finished run TTC, virtual seconds.", labels).Set(rep.TTC.Seconds())
		s.metrics.Gauge(MetricRunCost, "Finished run cloud bill, USD.", labels).Set(rep.CostUSD)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rn := s.runs[id]
	rn.view.Status = status
	rn.view.Error = errMsg
	rn.report = rep
	if rep != nil {
		rn.view.TTCSeconds = rep.TTC.Seconds()
		rn.view.CostUSD = rep.CostUSD
		rn.view.Transcripts = len(rep.Transcripts)
		rn.view.Stages = map[string]string{}
		for _, st := range rep.Stages {
			rn.view.Stages[st.Name] = st.Duration().String()
		}
		if rep.Config.FaultPlan != nil {
			rn.view.Recovery = rep.Recovery.String()
		}
		if rep.Metrics != nil {
			rn.view.Metrics = map[string]float64{
				"precision":          rep.Metrics.Precision,
				"recall":             rep.Metrics.Recall,
				"f1":                 rep.Metrics.F1,
				"weightedKmerRecall": rep.Metrics.WeightedKmerRecall,
				"kcScore":            rep.Metrics.KCScore,
			}
		}
	}
}

// buildConfig translates a request into a pipeline configuration and
// dataset.
func buildConfig(req RunRequest) (core.Config, *simdata.Dataset, error) {
	name := req.Profile
	if name == "" {
		name = "tiny"
	}
	var prof simdata.Profile
	if name == "tiny" {
		prof = simdata.Tiny()
	} else {
		p, ok := simdata.Profiles()[name]
		if !ok {
			return core.Config{}, nil, fmt.Errorf("gateway: unknown profile %q", name)
		}
		prof = p
	}
	ds, err := simdata.Generate(prof)
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg := core.DefaultConfig()
	if len(req.Assemblers) > 0 {
		cfg.Assemblers = req.Assemblers
	}
	for _, a := range cfg.Assemblers {
		if _, err := assembler.Get(a); err != nil {
			return core.Config{}, nil, err
		}
	}
	switch strings.ToUpper(req.Scheme) {
	case "", "S2":
		cfg.Scheme = core.S2
	case "S1":
		cfg.Scheme = core.S1
	default:
		return core.Config{}, nil, fmt.Errorf("gateway: unknown scheme %q", req.Scheme)
	}
	switch strings.ToLower(req.Pattern) {
	case "", "dynamic":
		cfg.Pattern = core.DistributedDynamic
	case "static":
		cfg.Pattern = core.DistributedStatic
	case "conventional":
		cfg.Pattern = core.Conventional
	default:
		return core.Config{}, nil, fmt.Errorf("gateway: unknown pattern %q", req.Pattern)
	}
	if req.InstanceType != "" {
		cfg.InstanceType = req.InstanceType
	}
	if req.ContrailNodes > 0 {
		cfg.ContrailNodes = req.ContrailNodes
	}
	cfg.EvaluateAgainstTruth = req.Evaluate
	if req.Faults != "" {
		plan, err := faults.ParseSpec(req.Faults)
		if err != nil {
			return core.Config{}, nil, fmt.Errorf("gateway: %w", err)
		}
		cfg.FaultPlan = plan
		cfg.FaultSeed = req.FaultSeed
	}
	return cfg, ds, nil
}
