package sge

import (
	"testing"
	"testing/quick"

	"rnascale/internal/vclock"
)

func twoNodeCluster(t *testing.T) *Scheduler {
	t.Helper()
	s, err := New([]NodeSpec{
		{Name: "node001", Slots: 8, MemoryGB: 16},
		{Name: "node002", Slots: 8, MemoryGB: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleNodeJobsPackSeparateNodes(t *testing.T) {
	s := twoNodeCluster(t)
	// Two 8-slot MPI jobs: each takes a full node, so both start at 0.
	j1, err := s.Submit(JobSpec{Name: "ray-k35", Slots: 8, Rule: SingleNode, Duration: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(JobSpec{Name: "ray-k37", Slots: 8, Rule: SingleNode, Duration: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Start != 0 || j2.Start != 0 {
		t.Fatalf("starts %v %v, want both 0", j1.Start, j2.Start)
	}
	if j1.Nodes()[0] == j2.Nodes()[0] {
		t.Error("both jobs on the same node")
	}
	// A third full-node job must queue.
	j3, err := s.Submit(JobSpec{Name: "ray-k39", Slots: 8, Rule: SingleNode, Duration: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Start != 100 {
		t.Errorf("third job start %v, want 100", j3.Start)
	}
	if got := s.Makespan(); got != 150 {
		t.Errorf("makespan %v, want 150", got)
	}
}

func TestSingleNodeRejectsOversize(t *testing.T) {
	s := twoNodeCluster(t)
	if _, err := s.Submit(JobSpec{Name: "big", Slots: 9, Rule: SingleNode, Duration: 1}, 0); err == nil {
		t.Error("9-slot single-node job accepted on 8-slot nodes")
	}
}

func TestFillUpSpansNodes(t *testing.T) {
	s := twoNodeCluster(t)
	j, err := s.Submit(JobSpec{Name: "contrail", Slots: 12, Rule: FillUp, Duration: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Start != 0 {
		t.Errorf("start %v", j.Start)
	}
	if len(j.SlotsByNode) != 2 {
		t.Errorf("placement %v, want 2 nodes", j.SlotsByNode)
	}
	total := 0
	for _, n := range j.SlotsByNode {
		total += n
	}
	if total != 12 {
		t.Errorf("allocated %d slots", total)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	s := twoNodeCluster(t)
	j, err := s.Submit(JobSpec{Name: "rr", Slots: 4, Rule: RoundRobin, Duration: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.SlotsByNode["node001"] != 2 || j.SlotsByNode["node002"] != 2 {
		t.Errorf("round-robin placement %v, want 2+2", j.SlotsByNode)
	}
}

func TestQueueingBehindPartialLoad(t *testing.T) {
	s := twoNodeCluster(t)
	if _, err := s.Submit(JobSpec{Name: "half", Slots: 12, Rule: FillUp, Duration: 60}, 0); err != nil {
		t.Fatal(err)
	}
	// 4 slots remain free; an 8-slot spanning job waits for the first.
	j, err := s.Submit(JobSpec{Name: "late", Slots: 8, Rule: FillUp, Duration: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Start != 60 {
		t.Errorf("start %v, want 60", j.Start)
	}
	// But a 4-slot job backfills immediately (FIFO list scheduling
	// still gives it the free slots because it is submitted after).
	j2, err := s.Submit(JobSpec{Name: "small", Slots: 4, Rule: FillUp, Duration: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Start != 0 {
		t.Errorf("small job start %v, want 0", j2.Start)
	}
}

func TestMemoryFeasibility(t *testing.T) {
	s := twoNodeCluster(t) // 16 GB nodes
	// 8 slots × 3 GB = 24 GB on one node: infeasible anywhere.
	if _, err := s.Submit(JobSpec{Name: "oom", Slots: 8, Rule: SingleNode, Duration: 1, MemoryGBPerSlot: 3}, 0); err == nil {
		t.Error("memory-infeasible job accepted")
	}
	// 8 slots × 1.5 GB = 12 GB: fits.
	if _, err := s.Submit(JobSpec{Name: "fits", Slots: 8, Rule: SingleNode, Duration: 1, MemoryGBPerSlot: 1.5}, 0); err != nil {
		t.Errorf("feasible job rejected: %v", err)
	}
}

func TestJobStates(t *testing.T) {
	s := twoNodeCluster(t)
	j, _ := s.Submit(JobSpec{Name: "a", Slots: 8, Rule: SingleNode, Duration: 100}, 10)
	if j.State(5) != Queued || j.State(10) != Running || j.State(109) != Running || j.State(110) != Done {
		t.Errorf("state progression wrong: %v %v %v %v", j.State(5), j.State(10), j.State(109), j.State(110))
	}
	if Queued.String() != "qw" || Running.String() != "r" || Done.String() != "done" {
		t.Error("state strings")
	}
}

func TestAddRemoveNode(t *testing.T) {
	s := twoNodeCluster(t)
	if err := s.AddNode(NodeSpec{Name: "node003", Slots: 8, MemoryGB: 16}, 50); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalSlots(); got != 24 {
		t.Errorf("slots %d", got)
	}
	// The late node's slots only open at t=50.
	s.Submit(JobSpec{Name: "j1", Slots: 8, Rule: SingleNode, Duration: 100}, 0)
	s.Submit(JobSpec{Name: "j2", Slots: 8, Rule: SingleNode, Duration: 100}, 0)
	j3, _ := s.Submit(JobSpec{Name: "j3", Slots: 8, Rule: SingleNode, Duration: 10}, 0)
	if j3.Start != 50 {
		t.Errorf("job on late node starts %v, want 50", j3.Start)
	}
	if err := s.RemoveNode("node003"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveNode("node003"); err == nil {
		t.Error("double remove accepted")
	}
	if got := len(s.ActiveNodes()); got != 2 {
		t.Errorf("active nodes %d", got)
	}
	if err := s.AddNode(NodeSpec{Name: "node001", Slots: 1, MemoryGB: 1}, 0); err == nil {
		t.Error("duplicate node name accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := twoNodeCluster(t)
	if _, err := s.Submit(JobSpec{Name: "zero", Slots: 0, Duration: 1}, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := s.Submit(JobSpec{Name: "neg", Slots: 1, Duration: -1}, 0); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := s.Submit(JobSpec{Name: "huge", Slots: 64, Rule: FillUp, Duration: 1}, 0); err == nil {
		t.Error("64 slots on a 16-slot cluster accepted")
	}
	if _, err := New([]NodeSpec{{Name: "", Slots: 1, MemoryGB: 1}}); err == nil {
		t.Error("invalid node spec accepted")
	}
}

func TestUtilization(t *testing.T) {
	s := twoNodeCluster(t)
	if s.Utilization() != 0 {
		t.Error("idle utilization nonzero")
	}
	// Fill both nodes completely for 100s: utilization 1.
	s.Submit(JobSpec{Name: "full", Slots: 16, Rule: FillUp, Duration: 100}, 0)
	if u := s.Utilization(); u < 0.999 || u > 1.001 {
		t.Errorf("utilization %v, want 1", u)
	}
}

// Property: slot conservation — at no point do concurrently running
// jobs use more slots than the cluster has.
func TestSlotConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s, _ := New([]NodeSpec{
			{Name: "a", Slots: 8, MemoryGB: 64},
			{Name: "b", Slots: 8, MemoryGB: 64},
		})
		var jobs []*Job
		for i, raw := range sizes {
			if i >= 12 {
				break
			}
			slots := int(raw)%16 + 1
			rule := FillUp
			if slots <= 8 && raw%2 == 0 {
				rule = SingleNode
			}
			j, err := s.Submit(JobSpec{Name: "j", Slots: slots, Rule: rule, Duration: vclock.Duration(raw%50 + 1)}, 0)
			if err != nil {
				return false
			}
			jobs = append(jobs, j)
		}
		// Sample the timeline at every job boundary.
		for _, probe := range jobs {
			for _, t0 := range []vclock.Time{probe.Start, probe.End - 0.5} {
				inUse := 0
				for _, j := range jobs {
					if j.State(t0) == Running {
						inUse += j.Spec.Slots
					}
				}
				if inUse > 16 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: per-node allocations never exceed node capacity.
func TestNodeCapacityProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s, _ := New([]NodeSpec{
			{Name: "a", Slots: 8, MemoryGB: 64},
			{Name: "b", Slots: 4, MemoryGB: 64},
		})
		cap := map[string]int{"a": 8, "b": 4}
		for i, raw := range sizes {
			if i >= 10 {
				break
			}
			slots := int(raw)%12 + 1
			j, err := s.Submit(JobSpec{Name: "j", Slots: slots, Rule: RoundRobin, Duration: 10}, 0)
			if err != nil {
				return false
			}
			for node, n := range j.SlotsByNode {
				if n > cap[node] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
