// Package sge simulates a Sun Grid Engine-style batch scheduler, the
// local scheduler that StarCluster installs on the paper's EC2
// clusters and to which the pipeline submits its MPI and Hadoop
// assembly jobs.
//
// The simulation is a deterministic FIFO list scheduler over per-node
// slots in virtual time. Job durations are known at submission time
// (they come from the assembler cost models), so scheduling reduces to
// computing, for each job in submit order, the earliest time at which
// its slot request can be satisfied, then reserving those slots.
//
// Three parallel-environment allocation rules are supported, mirroring
// SGE's `$pe_slots`, `$fill_up` and `$round_robin`.
package sge

import (
	"fmt"
	"sort"

	"rnascale/internal/vclock"
)

// AllocationRule selects how a job's slots are placed on nodes.
type AllocationRule int

const (
	// SingleNode requires all slots on one node (SGE "$pe_slots"),
	// the rule the paper uses for its 8-slot MPI jobs.
	SingleNode AllocationRule = iota
	// FillUp packs slots onto as few nodes as possible (SGE "$fill_up").
	FillUp
	// RoundRobin spreads slots one per node in rotation
	// (SGE "$round_robin"), maximizing per-rank memory.
	RoundRobin
)

// String implements fmt.Stringer.
func (r AllocationRule) String() string {
	switch r {
	case SingleNode:
		return "$pe_slots"
	case FillUp:
		return "$fill_up"
	case RoundRobin:
		return "$round_robin"
	default:
		return fmt.Sprintf("AllocationRule(%d)", int(r))
	}
}

// NodeSpec describes one execution host.
type NodeSpec struct {
	Name     string
	Slots    int
	MemoryGB float64
}

// node is the scheduler's mutable view of a host.
type node struct {
	spec    NodeSpec
	avail   []vclock.Time // per-slot next-free time
	removed bool
}

// JobSpec is a batch job submission.
type JobSpec struct {
	Name string
	// Slots is the total slot count requested (SGE -pe <env> <n>).
	Slots int
	Rule  AllocationRule
	// Duration is the job's runtime, computed a priori by the caller's
	// cost model.
	Duration vclock.Duration
	// MemoryGBPerSlot is the resident memory each slot needs; a node
	// whose memory divided by its allocated slots is below this cannot
	// host the job (SGE -l mem_free semantics, simplified).
	MemoryGBPerSlot float64
}

// JobState is the lifecycle of a scheduled job at a point in time.
type JobState int

const (
	// Queued means the job has not started yet at the queried time.
	Queued JobState = iota
	// Running means the queried time falls within [Start, End).
	Running
	// Done means the job has finished.
	Done
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "qw"
	case Running:
		return "r"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Job is a scheduled job with its placement decision.
type Job struct {
	ID     int
	Spec   JobSpec
	Submit vclock.Time
	Start  vclock.Time
	End    vclock.Time
	// SlotsByNode maps node name → slots allocated there.
	SlotsByNode map[string]int
}

// State reports the job's state at time t.
func (j *Job) State(t vclock.Time) JobState {
	switch {
	case t < j.Start:
		return Queued
	case t < j.End:
		return Running
	default:
		return Done
	}
}

// Nodes reports the names of allocated nodes in lexicographic order.
func (j *Job) Nodes() []string {
	out := make([]string, 0, len(j.SlotsByNode))
	for n := range j.SlotsByNode {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scheduler is the batch queue. It is not safe for concurrent use.
type Scheduler struct {
	nodes    []*node
	jobs     []*Job
	nextID   int
	observer func(*Job)
}

// SetObserver registers a callback invoked synchronously with every
// job the moment it is scheduled (placement decided). Observability
// layers use it to record queue-wait and placement metrics without a
// parallel accounting path. A nil fn detaches the observer.
func (s *Scheduler) SetObserver(fn func(*Job)) { s.observer = fn }

// QueueWait reports how long the job sat queued before starting.
func (j *Job) QueueWait() vclock.Duration { return j.Start.Sub(j.Submit) }

// New creates a scheduler over the given hosts, all available from
// time 0.
func New(specs []NodeSpec) (*Scheduler, error) {
	s := &Scheduler{}
	for _, sp := range specs {
		if err := s.AddNode(sp, 0); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AddNode registers a host whose slots become available at time `at`
// (a node added mid-simulation models the S2 scheme's cluster growth).
func (s *Scheduler) AddNode(sp NodeSpec, at vclock.Time) error {
	if sp.Name == "" || sp.Slots <= 0 || sp.MemoryGB <= 0 {
		return fmt.Errorf("sge: invalid node spec %+v", sp)
	}
	for _, n := range s.nodes {
		if n.spec.Name == sp.Name && !n.removed {
			return fmt.Errorf("sge: duplicate node %q", sp.Name)
		}
	}
	avail := make([]vclock.Time, sp.Slots)
	for i := range avail {
		avail[i] = at
	}
	s.nodes = append(s.nodes, &node{spec: sp, avail: avail})
	return nil
}

// RemoveNode withdraws a host from future allocations. Work already
// placed on it completes (the simulation has already accounted it).
func (s *Scheduler) RemoveNode(name string) error {
	for _, n := range s.nodes {
		if n.spec.Name == name && !n.removed {
			n.removed = true
			return nil
		}
	}
	return fmt.Errorf("sge: no active node %q", name)
}

// ActiveNodes reports the names of schedulable hosts.
func (s *Scheduler) ActiveNodes() []string {
	var out []string
	for _, n := range s.nodes {
		if !n.removed {
			out = append(out, n.spec.Name)
		}
	}
	return out
}

// TotalSlots reports the slot capacity of active hosts.
func (s *Scheduler) TotalSlots() int {
	total := 0
	for _, n := range s.nodes {
		if !n.removed {
			total += n.spec.Slots
		}
	}
	return total
}

// slotRef identifies one slot of one node during allocation.
type slotRef struct {
	node *node
	slot int
}

// Submit schedules the job FIFO at submission time `at` and returns
// the placement. Submission fails when the request can never be
// satisfied (more slots than exist, or no memory-feasible placement).
func (s *Scheduler) Submit(spec JobSpec, at vclock.Time) (*Job, error) {
	if spec.Slots <= 0 {
		return nil, fmt.Errorf("sge: job %q requests %d slots", spec.Name, spec.Slots)
	}
	if spec.Duration < 0 {
		return nil, fmt.Errorf("sge: job %q has negative duration", spec.Name)
	}
	candidates := s.feasibleSlots(spec)
	if len(candidates) < spec.Slots {
		return nil, fmt.Errorf("sge: job %q needs %d slots, only %d feasible in queue %v",
			spec.Name, spec.Slots, len(candidates), s.ActiveNodes())
	}
	var start vclock.Time
	var chosen []slotRef
	if spec.Rule == SingleNode {
		start, chosen = s.placeSingleNode(spec, at, candidates)
		if chosen == nil {
			return nil, fmt.Errorf("sge: job %q: no single node offers %d slots", spec.Name, spec.Slots)
		}
	} else {
		start, chosen = s.placeSpanning(spec, at, candidates)
	}
	end := start.Add(spec.Duration)
	byNode := map[string]int{}
	for _, ref := range chosen {
		ref.node.avail[ref.slot] = end
		byNode[ref.node.spec.Name]++
	}
	s.nextID++
	job := &Job{ID: s.nextID, Spec: spec, Submit: at, Start: start, End: end, SlotsByNode: byNode}
	s.jobs = append(s.jobs, job)
	if s.observer != nil {
		s.observer(job)
	}
	return job, nil
}

// feasibleSlots lists every slot on active, memory-feasible nodes.
// Memory feasibility is conservative: a node qualifies if it could
// hold the job's per-slot demand for every slot it might contribute.
func (s *Scheduler) feasibleSlots(spec JobSpec) []slotRef {
	var out []slotRef
	for _, n := range s.nodes {
		if n.removed {
			continue
		}
		if spec.MemoryGBPerSlot > 0 {
			// The worst case is this node hosting min(spec.Slots, node
			// slots) slots of the job.
			hosted := spec.Slots
			if hosted > n.spec.Slots {
				hosted = n.spec.Slots
			}
			if float64(hosted)*spec.MemoryGBPerSlot > n.spec.MemoryGB {
				continue
			}
		}
		for i := range n.avail {
			out = append(out, slotRef{node: n, slot: i})
		}
	}
	return out
}

// placeSingleNode finds the node that can run the whole job earliest.
func (s *Scheduler) placeSingleNode(spec JobSpec, at vclock.Time, candidates []slotRef) (vclock.Time, []slotRef) {
	perNode := map[*node][]slotRef{}
	var order []*node
	for _, ref := range candidates {
		if _, seen := perNode[ref.node]; !seen {
			order = append(order, ref.node)
		}
		perNode[ref.node] = append(perNode[ref.node], ref)
	}
	var best []slotRef
	var bestStart vclock.Time
	found := false
	for _, n := range order {
		refs := perNode[n]
		if len(refs) < spec.Slots {
			continue
		}
		sort.Slice(refs, func(a, b int) bool {
			return n.avail[refs[a].slot] < n.avail[refs[b].slot]
		})
		pick := refs[:spec.Slots]
		start := at
		for _, ref := range pick {
			if t := n.avail[ref.slot]; t > start {
				start = t
			}
		}
		if !found || start < bestStart {
			found = true
			bestStart = start
			best = append([]slotRef(nil), pick...)
		}
	}
	if !found {
		return 0, nil
	}
	return bestStart, best
}

// placeSpanning finds the earliest time at which spec.Slots slots are
// simultaneously free across nodes, then picks slots according to the
// allocation rule.
func (s *Scheduler) placeSpanning(spec JobSpec, at vclock.Time, candidates []slotRef) (vclock.Time, []slotRef) {
	// Candidate start times: submission time plus every slot-free time.
	times := []vclock.Time{at}
	for _, ref := range candidates {
		if t := ref.node.avail[ref.slot]; t > at {
			times = append(times, t)
		}
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	var start vclock.Time
	for _, t := range times {
		free := 0
		for _, ref := range candidates {
			if ref.node.avail[ref.slot] <= t {
				free++
			}
		}
		if free >= spec.Slots {
			start = t
			break
		}
	}
	free := make([]slotRef, 0, len(candidates))
	for _, ref := range candidates {
		if ref.node.avail[ref.slot] <= start {
			free = append(free, ref)
		}
	}
	if spec.Rule == RoundRobin {
		// Interleave: sort by (slot index, node order) so consecutive
		// picks land on different nodes.
		sort.SliceStable(free, func(a, b int) bool { return free[a].slot < free[b].slot })
	}
	return start, free[:spec.Slots]
}

// Jobs returns every scheduled job in submit order.
func (s *Scheduler) Jobs() []*Job { return append([]*Job(nil), s.jobs...) }

// Makespan reports when the last scheduled job finishes, or 0 with no
// jobs.
func (s *Scheduler) Makespan() vclock.Time {
	var m vclock.Time
	for _, j := range s.jobs {
		if j.End > m {
			m = j.End
		}
	}
	return m
}

// Utilization reports busy-slot-seconds divided by capacity-seconds
// over [0, Makespan] for active nodes; 0 when nothing ran.
func (s *Scheduler) Utilization() float64 {
	span := s.Makespan()
	if span == 0 {
		return 0
	}
	var busy vclock.Duration
	for _, j := range s.jobs {
		busy += vclock.Duration(float64(j.Spec.Duration) * float64(j.Spec.Slots))
	}
	capacity := float64(s.TotalSlots()) * float64(span)
	if capacity == 0 {
		return 0
	}
	return float64(busy) / capacity
}
