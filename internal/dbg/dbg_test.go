package dbg

import (
	"math/rand"
	"strings"
	"testing"

	"rnascale/internal/seq"
	"rnascale/internal/simdata"
)

// shredder cuts a sequence into overlapping error-free reads.
func shred(s string, readLen, step int) []seq.Read {
	var reads []seq.Read
	for i := 0; i+readLen <= len(s); i += step {
		reads = append(reads, seq.Read{ID: "r", Seq: []byte(s[i : i+readLen])})
	}
	return reads
}

func randomSeqStr(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	bases := "ACGT"
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(64); err == nil {
		t.Error("k>MaxK accepted")
	}
	g, err := New(21)
	if err != nil || g.K() != 21 {
		t.Fatalf("New(21): %v", err)
	}
}

func TestLinearSequenceYieldsOneUnitig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	genome := randomSeqStr(rng, 400)
	g, err := Build(shred(genome, 40, 1), 21, 1)
	if err != nil {
		t.Fatal(err)
	}
	unitigs := g.Unitigs(50)
	if len(unitigs) != 1 {
		t.Fatalf("%d unitigs from a linear sequence", len(unitigs))
	}
	got := string(unitigs[0].Seq)
	rc := string(seq.ReverseComplement([]byte(got)))
	if got != genome && rc != genome {
		t.Errorf("unitig does not reconstruct genome: %d vs %d bp", len(got), len(genome))
	}
	if unitigs[0].MeanCoverage < 10 {
		t.Errorf("coverage %v too low for step-1 shredding", unitigs[0].MeanCoverage)
	}
}

func TestReverseComplementReadsCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	genome := randomSeqStr(rng, 300)
	reads := shred(genome, 40, 2)
	for _, r := range shred(genome, 40, 2) {
		reads = append(reads, seq.Read{ID: "rc", Seq: seq.ReverseComplement(r.Seq)})
	}
	g, _ := Build(reads, 21, 1)
	unitigs := g.Unitigs(50)
	if len(unitigs) != 1 {
		t.Fatalf("%d unitigs; strands did not collapse", len(unitigs))
	}
}

func TestMinCountDropsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	genome := randomSeqStr(rng, 300)
	reads := shred(genome, 40, 1)
	// One read with an error in the middle.
	bad := append([]byte{}, reads[5].Seq...)
	if bad[20] == 'A' {
		bad[20] = 'C'
	} else {
		bad[20] = 'A'
	}
	reads = append(reads, seq.Read{ID: "bad", Seq: bad})
	g, _ := Build(reads, 21, 2) // error k-mers have count 1
	unitigs := g.Unitigs(50)
	if len(unitigs) != 1 {
		t.Fatalf("%d unitigs; error k-mers survived min-count filter", len(unitigs))
	}
}

func TestBranchSplitsUnitigs(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// Two sequences sharing a middle segment: X-M-Y and Z-M-W forces
	// branches at both ends of M.
	m := randomSeqStr(rng, 120)
	x, y := randomSeqStr(rng, 120), randomSeqStr(rng, 120)
	z, w := randomSeqStr(rng, 120), randomSeqStr(rng, 120)
	reads := shred(x+m+y, 40, 1)
	reads = append(reads, shred(z+m+w, 40, 1)...)
	g, _ := Build(reads, 21, 1)
	unitigs := g.Unitigs(30)
	if len(unitigs) < 4 {
		t.Errorf("%d unitigs; expected the shared segment to split paths", len(unitigs))
	}
}

func TestClipTipsRemovesShortDeadEnds(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	genome := randomSeqStr(rng, 300)
	reads := shred(genome, 40, 1)
	// A tip: the first 30 bases of a read diverge after position 10.
	tip := append([]byte{}, []byte(genome[100:140])...)
	copy(tip[25:], []byte("ACGTACGTACGTACG")) // corrupt the tail
	reads = append(reads, seq.Read{ID: "tip", Seq: tip}, seq.Read{ID: "tip2", Seq: tip})
	g, _ := Build(reads, 21, 1)
	before := g.Len()
	removed := g.ClipTips(21, 3)
	if removed == 0 {
		t.Fatal("no tips clipped")
	}
	if g.Len() >= before {
		t.Error("graph did not shrink")
	}
	unitigs := g.Unitigs(50)
	if len(unitigs) != 1 {
		t.Errorf("%d unitigs after tip clipping", len(unitigs))
	}
}

func TestPopBubbles(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	genome := randomSeqStr(rng, 300)
	// A bubble: a SNP variant of the middle region with lower coverage.
	variant := []byte(genome)
	if variant[150] == 'A' {
		variant[150] = 'G'
	} else {
		variant[150] = 'A'
	}
	reads := shred(genome, 40, 1)
	reads = append(reads, shred(genome, 40, 1)...) // main path ×2 coverage
	reads = append(reads, shred(string(variant[120:180]), 40, 3)...)
	g, _ := Build(reads, 21, 1)
	removed := g.PopBubbles(60)
	if removed == 0 {
		t.Fatal("no bubble popped")
	}
	unitigs := g.Unitigs(50)
	if len(unitigs) != 1 {
		t.Errorf("%d unitigs after bubble popping", len(unitigs))
	}
	// The surviving path must be the high-coverage reference.
	if !strings.Contains(string(unitigs[0].Seq), genome[140:160]) &&
		!strings.Contains(string(seq.ReverseComplement(unitigs[0].Seq)), genome[140:160]) {
		t.Error("bubble popping removed the major allele")
	}
}

func TestContigsPipeline(t *testing.T) {
	ds, err := simdata.Generate(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(ds.Reads.Reads, 21, 2)
	if err != nil {
		t.Fatal(err)
	}
	contigs := g.Contigs("velvet_k21", 100)
	if len(contigs) == 0 {
		t.Fatal("no contigs")
	}
	// Longest-first ordering.
	for i := 1; i < len(contigs); i++ {
		if len(contigs[i].Seq) > len(contigs[i-1].Seq) {
			t.Fatal("contigs not sorted by length")
		}
	}
	// Contigs must align to the ground truth transcriptome: check that
	// a large fraction of contig 21-mers occur in some transcript.
	coder := seq.MustKmerCoder(21)
	truth := map[seq.Kmer]bool{}
	for _, tx := range ds.Transcripts {
		coder.ForEach(tx.Seq, func(_ int, km seq.Kmer) bool {
			c, _ := coder.Canonical(km)
			truth[c] = true
			return true
		})
	}
	var hit, total int
	for _, c := range contigs {
		coder.ForEach(c.Seq, func(_ int, km seq.Kmer) bool {
			canon, _ := coder.Canonical(km)
			total++
			if truth[canon] {
				hit++
			}
			return true
		})
	}
	if total == 0 || float64(hit)/float64(total) < 0.95 {
		t.Errorf("contig precision %.2f (%d/%d k-mers in truth)", float64(hit)/float64(total), hit, total)
	}
}

func TestAddCountMergesPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	genome := randomSeqStr(rng, 200)
	reads := shred(genome, 40, 1)
	// Reference: single-shot build.
	ref, _ := Build(reads, 21, 1)
	// Distributed: two graphs each counting half the reads, merged.
	half1, _ := Build(reads[:len(reads)/2], 21, 1)
	half2, _ := Build(reads[len(reads)/2:], 21, 1)
	merged, _ := New(21)
	for _, h := range []*Graph{half1, half2} {
		for km, c := range h.nodes {
			merged.AddCount(km, c)
		}
	}
	if merged.Len() != ref.Len() {
		t.Fatalf("merged %d nodes, reference %d", merged.Len(), ref.Len())
	}
	for km, c := range ref.nodes {
		if merged.nodes[km] != c {
			t.Fatal("coverage mismatch after merge")
		}
	}
}

func TestN50(t *testing.T) {
	mk := func(lens ...int) []seq.FastaRecord {
		out := make([]seq.FastaRecord, len(lens))
		for i, l := range lens {
			out[i] = seq.FastaRecord{ID: "c", Seq: make([]byte, l)}
		}
		return out
	}
	if n := N50(nil); n != 0 {
		t.Errorf("empty N50 %d", n)
	}
	if n := N50(mk(100)); n != 100 {
		t.Errorf("single N50 %d", n)
	}
	// Total 100+80+20=200; cumulative 100 ≥ 100 → N50 = 100.
	if n := N50(mk(20, 100, 80)); n != 100 {
		t.Errorf("N50 %d, want 100", n)
	}
	// Total 60+50+40+30=180; 60+50=110 ≥ 90 → 50.
	if n := N50(mk(30, 60, 50, 40)); n != 50 {
		t.Errorf("N50 %d, want 50", n)
	}
}

func TestCoverageAndDrop(t *testing.T) {
	g, _ := New(5)
	coder := g.Coder()
	km, _ := coder.Encode([]byte("ACGTA"))
	canon, _ := coder.Canonical(km)
	g.AddCount(canon, 3)
	if g.Coverage(canon) != 3 {
		t.Error("coverage lost")
	}
	g.DropBelow(4)
	if g.Len() != 0 {
		t.Error("DropBelow kept low-coverage node")
	}
}
