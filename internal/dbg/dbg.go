// Package dbg implements the De Bruijn graph core shared by every
// assembler in this reproduction (Table I: Ray, ABySS and Contrail are
// all DBG assemblers, as are Rnnotator's single-node options).
//
// The graph stores canonical k-mers with coverage counts; edges are
// implicit — a (k-1)-overlap neighbour exists iff its canonical form
// is present — which is the memory-lean representation that makes the
// per-node footprint of distributed assemblers proportional to their
// k-mer partition. Simplification follows the standard recipe: tip
// clipping, simple bubble popping, then maximal non-branching path
// (unitig) extraction.
package dbg

import (
	"fmt"
	"sort"

	"rnascale/internal/obs/perf"
	"rnascale/internal/seq"
)

// Graph is a canonical-k-mer De Bruijn graph.
type Graph struct {
	coder seq.KmerCoder
	nodes map[seq.Kmer]uint32 // canonical k-mer -> coverage
}

// New returns an empty graph for k-mer size k.
func New(k int) (*Graph, error) {
	coder, err := seq.NewKmerCoder(k)
	if err != nil {
		return nil, err
	}
	return &Graph{coder: coder, nodes: make(map[seq.Kmer]uint32)}, nil
}

// K reports the k-mer size.
func (g *Graph) K() int { return g.coder.K }

// Len reports the number of distinct canonical k-mers.
func (g *Graph) Len() int { return len(g.nodes) }

// Coder exposes the graph's k-mer codec.
func (g *Graph) Coder() seq.KmerCoder { return g.coder }

// AddRead counts every k-mer of the read (N-containing windows are
// skipped by the codec).
func (g *Graph) AddRead(read []byte) {
	g.coder.ForEach(read, func(_ int, km seq.Kmer) bool {
		canon, _ := g.coder.Canonical(km)
		g.nodes[canon]++
		return true
	})
}

// AddCount merges an externally-counted canonical k-mer (used by the
// distributed assemblers, whose ranks count partitions separately).
func (g *Graph) AddCount(canonical seq.Kmer, count uint32) {
	g.nodes[canonical] += count
}

// Coverage reports a canonical k-mer's count (0 if absent).
func (g *Graph) Coverage(canonical seq.Kmer) uint32 { return g.nodes[canonical] }

// Build constructs a graph from reads and drops k-mers below
// minCount (sequencing-error removal).
func Build(reads []seq.Read, k, minCount int) (*Graph, error) {
	defer perf.Region("dbg.build").End()
	g, err := New(k)
	if err != nil {
		return nil, err
	}
	for i := range reads {
		g.AddRead(reads[i].Seq)
	}
	g.DropBelow(uint32(minCount))
	return g, nil
}

// DropBelow removes k-mers with coverage below min.
func (g *Graph) DropBelow(min uint32) {
	for km, c := range g.nodes {
		if c < min {
			delete(g.nodes, km)
		}
	}
}

// has reports whether the canonical form of km is present.
func (g *Graph) has(km seq.Kmer) bool {
	canon, _ := g.coder.Canonical(km)
	_, ok := g.nodes[canon]
	return ok
}

// successors returns the forward extensions of the oriented k-mer fwd
// that exist in the graph, as oriented k-mers.
func (g *Graph) successors(fwd seq.Kmer) []seq.Kmer {
	var out []seq.Kmer
	for _, b := range [4]byte{'A', 'C', 'G', 'T'} {
		next, _ := g.coder.Next(fwd, b)
		if g.has(next) {
			out = append(out, next)
		}
	}
	return out
}

// predecessors returns the backward extensions of the oriented k-mer.
func (g *Graph) predecessors(fwd seq.Kmer) []seq.Kmer {
	var out []seq.Kmer
	for _, b := range [4]byte{'A', 'C', 'G', 'T'} {
		prev, _ := g.coder.Prev(fwd, b)
		if g.has(prev) {
			out = append(out, prev)
		}
	}
	return out
}

// Unitig is one maximal non-branching path.
type Unitig struct {
	Seq          []byte
	MeanCoverage float64
	Kmers        int
}

// Unitigs extracts every maximal non-branching path at least minLen
// bases long, in deterministic order.
func (g *Graph) Unitigs(minLen int) []Unitig {
	defer perf.Region("dbg.unitigs").End()
	visited := make(map[seq.Kmer]bool, len(g.nodes))
	// Deterministic iteration: sort the canonical k-mers.
	order := make([]seq.Kmer, 0, len(g.nodes))
	for km := range g.nodes {
		order = append(order, km)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].Less(order[b]) })

	var out []Unitig
	for _, start := range order {
		if visited[start] {
			continue
		}
		u := g.walk(start, visited)
		if len(u.Seq) >= minLen {
			out = append(out, u)
		}
	}
	return out
}

// walk extends from start (canonical) in both directions while the
// path is non-branching, marking visited canonical k-mers.
func (g *Graph) walk(start seq.Kmer, visited map[seq.Kmer]bool) Unitig {
	visited[start] = true
	chain := []seq.Kmer{start} // oriented k-mers along the walk
	var covSum float64 = float64(g.nodes[start])

	// Extend right from the start orientation.
	cur := start
	for {
		succ := g.successors(cur)
		if len(succ) != 1 {
			break
		}
		next := succ[0]
		canon, _ := g.coder.Canonical(next)
		if visited[canon] {
			break
		}
		if len(g.predecessors(next)) != 1 {
			break
		}
		visited[canon] = true
		covSum += float64(g.nodes[canon])
		chain = append(chain, next)
		cur = next
	}
	// Extend left from the start orientation.
	cur = start
	var left []seq.Kmer
	for {
		pred := g.predecessors(cur)
		if len(pred) != 1 {
			break
		}
		prev := pred[0]
		canon, _ := g.coder.Canonical(prev)
		if visited[canon] {
			break
		}
		if len(g.successors(prev)) != 1 {
			break
		}
		visited[canon] = true
		covSum += float64(g.nodes[canon])
		left = append(left, prev)
		cur = prev
	}
	// Assemble sequence: leftmost k-mer fully, then one 3' base per step.
	full := make([]seq.Kmer, 0, len(left)+len(chain))
	for i := len(left) - 1; i >= 0; i-- {
		full = append(full, left[i])
	}
	full = append(full, chain...)
	sq := g.coder.Decode(full[0])
	for _, km := range full[1:] {
		sq = append(sq, seq.BaseByte(g.coder.BaseAt(km, g.coder.K-1)))
	}
	return Unitig{Seq: sq, MeanCoverage: covSum / float64(len(full)), Kmers: len(full)}
}

// ClipTips removes dead-end chains of at most maxKmers k-mers that
// terminate at a branch — the classic error-tip clean-up. It returns
// the number of k-mers removed and iterates to a fixed point (bounded
// by rounds).
func (g *Graph) ClipTips(maxKmers, rounds int) int {
	defer perf.Region("dbg.cliptips").End()
	removedTotal := 0
	for r := 0; r < rounds; r++ {
		removed := g.clipOnce(maxKmers)
		removedTotal += removed
		if removed == 0 {
			break
		}
	}
	return removedTotal
}

func (g *Graph) clipOnce(maxKmers int) int {
	order := make([]seq.Kmer, 0, len(g.nodes))
	for km := range g.nodes {
		order = append(order, km)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].Less(order[b]) })
	var doomed []seq.Kmer
	for _, km := range order {
		if _, ok := g.nodes[km]; !ok {
			continue
		}
		// A tip starts at a k-mer with no predecessors (in some
		// orientation) and runs through a short unary chain.
		for _, fwd := range []seq.Kmer{km, g.coder.ReverseComplement(km)} {
			if len(g.predecessors(fwd)) != 0 {
				continue
			}
			chain := []seq.Kmer{fwd}
			cur := fwd
			isTip := false
			for len(chain) <= maxKmers {
				succ := g.successors(cur)
				if len(succ) == 0 {
					// Isolated short chain: drop it too.
					isTip = true
					break
				}
				if len(succ) > 1 {
					isTip = true
					break
				}
				next := succ[0]
				if len(g.predecessors(next)) > 1 {
					// The chain merges into a through-path: tip ends here.
					isTip = true
					break
				}
				chain = append(chain, next)
				cur = next
			}
			if isTip && len(chain) <= maxKmers {
				for _, c := range chain {
					canon, _ := g.coder.Canonical(c)
					doomed = append(doomed, canon)
				}
			}
			break // only consider each node once per round
		}
	}
	removed := 0
	for _, km := range doomed {
		if _, ok := g.nodes[km]; ok {
			delete(g.nodes, km)
			removed++
		}
	}
	return removed
}

// PopBubbles removes the lower-coverage arm of simple two-arm bubbles
// (divergence at one branch node, reconvergence within maxArm k-mers).
// It returns the number of k-mers removed.
func (g *Graph) PopBubbles(maxArm int) int {
	defer perf.Region("dbg.popbubbles").End()
	order := make([]seq.Kmer, 0, len(g.nodes))
	for km := range g.nodes {
		order = append(order, km)
	}
	sort.Slice(order, func(a, b int) bool { return order[a].Less(order[b]) })
	removed := 0
	for _, km := range order {
		if _, ok := g.nodes[km]; !ok {
			continue
		}
		for _, fwd := range []seq.Kmer{km, g.coder.ReverseComplement(km)} {
			succ := g.successors(fwd)
			if len(succ) != 2 {
				continue
			}
			pathA, endA, okA := g.unaryPath(succ[0], maxArm)
			pathB, endB, okB := g.unaryPath(succ[1], maxArm)
			if !okA || !okB {
				continue
			}
			ca, _ := g.coder.Canonical(endA)
			cb, _ := g.coder.Canonical(endB)
			if ca != cb {
				continue
			}
			// Same reconvergence point: drop the lower-coverage arm.
			drop := pathA
			if g.pathCoverage(pathB) < g.pathCoverage(pathA) {
				drop = pathB
			}
			for _, p := range drop {
				canon, _ := g.coder.Canonical(p)
				if _, ok := g.nodes[canon]; ok {
					delete(g.nodes, canon)
					removed++
				}
			}
		}
	}
	return removed
}

// unaryPath follows a strictly unary chain from fwd for at most max
// k-mers, returning the interior path and the node where it ends
// (first node with degree ≠ 1 in either direction).
func (g *Graph) unaryPath(fwd seq.Kmer, max int) (path []seq.Kmer, end seq.Kmer, ok bool) {
	cur := fwd
	for steps := 0; steps < max; steps++ {
		succ := g.successors(cur)
		preds := g.predecessors(cur)
		if len(succ) != 1 || len(preds) > 1 {
			return path, cur, true
		}
		path = append(path, cur)
		cur = succ[0]
	}
	return nil, cur, false
}

// pathCoverage sums coverage along a path.
func (g *Graph) pathCoverage(path []seq.Kmer) float64 {
	var s float64
	for _, p := range path {
		canon, _ := g.coder.Canonical(p)
		s += float64(g.nodes[canon])
	}
	return s
}

// Contigs runs the standard simplification pipeline and renders
// unitigs as FASTA records, longest first.
func (g *Graph) Contigs(prefix string, minLen int) []seq.FastaRecord {
	g.ClipTips(g.coder.K, 3)
	g.PopBubbles(2*g.coder.K + 10)
	return RecordsFromUnitigs(prefix, g.Unitigs(minLen))
}

// RecordsFromUnitigs renders unitigs as FASTA records, longest first,
// with the standard "<prefix>_contigNNNNN len=L cov=C" IDs.
func RecordsFromUnitigs(prefix string, unitigs []Unitig) []seq.FastaRecord {
	sort.SliceStable(unitigs, func(a, b int) bool { return len(unitigs[a].Seq) > len(unitigs[b].Seq) })
	out := make([]seq.FastaRecord, len(unitigs))
	for i, u := range unitigs {
		out[i] = seq.FastaRecord{
			ID:  fmt.Sprintf("%s_contig%05d len=%d cov=%.1f", prefix, i, len(u.Seq), u.MeanCoverage),
			Seq: u.Seq,
		}
	}
	return out
}

// N50 reports the standard assembly contiguity statistic over contig
// lengths: the length L such that contigs of length ≥ L cover half
// the total assembly.
func N50(contigs []seq.FastaRecord) int {
	if len(contigs) == 0 {
		return 0
	}
	lens := make([]int, len(contigs))
	total := 0
	for i, c := range contigs {
		lens[i] = len(c.Seq)
		total += len(c.Seq)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	acc := 0
	for _, l := range lens {
		acc += l
		if acc*2 >= total {
			return l
		}
	}
	return lens[len(lens)-1]
}
