package dbg

import (
	"math/rand"
	"testing"
)

func benchGraphInput(b *testing.B) []string {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	genomes := make([]string, 4)
	for i := range genomes {
		genomes[i] = randomSeqStr(rng, 2000)
	}
	return genomes
}

func BenchmarkBuildGraph(b *testing.B) {
	genomes := benchGraphInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := New(31)
		if err != nil {
			b.Fatal(err)
		}
		for _, gen := range genomes {
			for _, r := range shred(gen, 80, 3) {
				g.AddRead(r.Seq)
			}
		}
	}
}

func BenchmarkUnitigs(b *testing.B) {
	genomes := benchGraphInput(b)
	g, _ := New(31)
	for _, gen := range genomes {
		for _, r := range shred(gen, 80, 3) {
			g.AddRead(r.Seq)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Unitigs(100)) == 0 {
			b.Fatal("no unitigs")
		}
	}
}

func BenchmarkContigsFullPipeline(b *testing.B) {
	genomes := benchGraphInput(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := New(31)
		for _, gen := range genomes {
			for _, r := range shred(gen, 80, 3) {
				g.AddRead(r.Seq)
			}
		}
		if len(g.Contigs("bench", 100)) == 0 {
			b.Fatal("no contigs")
		}
	}
}
