package dbg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnascale/internal/seq"
)

// Property: unitig extraction partitions the graph — every graph
// k-mer appears in exactly one unitig (when no minimum length filters
// apply), and no unitig contains a k-mer absent from the graph.
func TestUnitigPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(lenRaw, stepRaw uint8) bool {
		n := 120 + int(lenRaw)
		step := int(stepRaw)%3 + 1
		genome := randomSeqStr(rng, n)
		g, err := Build(shred(genome, 40, step), 15, 1)
		if err != nil {
			return false
		}
		coder := g.Coder()
		want := g.Len()
		seen := map[seq.Kmer]int{}
		for _, u := range g.Unitigs(0) {
			coder.ForEach(u.Seq, func(_ int, km seq.Kmer) bool {
				canon, _ := coder.Canonical(km)
				seen[canon]++
				return true
			})
		}
		if len(seen) != want {
			return false
		}
		for km, cnt := range seen {
			if cnt != 1 {
				// Palindromic k-mers can legitimately appear twice in a
				// walk crossing them; tolerate only self-RC cases.
				rc := coder.ReverseComplement(km)
				if rc != km {
					return false
				}
			}
			if g.Coverage(km) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: simplification only removes k-mers, never adds.
func TestSimplificationShrinksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(lenRaw uint8) bool {
		genome := randomSeqStr(rng, 150+int(lenRaw))
		reads := shred(genome, 40, 1)
		// Random corrupt read to create tips/bubbles.
		if len(reads) > 0 {
			bad := append([]byte{}, reads[0].Seq...)
			bad[len(bad)/2] = "ACGT"[rng.Intn(4)]
			reads = append(reads, seq.Read{ID: "bad", Seq: bad})
		}
		g, err := Build(reads, 15, 1)
		if err != nil {
			return false
		}
		before := g.Len()
		g.ClipTips(15, 3)
		afterTips := g.Len()
		g.PopBubbles(40)
		afterBubbles := g.Len()
		return afterTips <= before && afterBubbles <= afterTips
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
