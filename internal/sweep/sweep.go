// Package sweep is the deterministic parallel executor behind the
// repository's own evaluation: the experiment grids (Tables III/V,
// Figs. 3–5), the chaos-soak seed matrix, benchtab's canonical
// snapshot runs and the gateway's batch-submit path.
//
// Every one of those workloads is a slice of fully isolated cells —
// each simulated run owns its own vclock.Clock, cloud provider and
// obs registry, and shares nothing mutable with its neighbours — so
// the engine's job is not synchronization of the work itself but the
// properties around it:
//
//   - ordered collection: results come back in submission order, so
//     rendered tables are byte-identical regardless of worker count;
//   - panic capture: a panicking cell becomes that cell's error
//     (with the stack attached) instead of tearing down the process
//     from a bare goroutine;
//   - shared progress: an optional serialized callback sees the
//     completion counter tick 1..n, deterministic in content even
//     though cell completion order is not;
//   - deterministic error selection: when cells fail, Map reports the
//     lowest-index failure, independent of scheduling.
//
// The engine deliberately runs every cell even when some fail —
// aborting on first error would make the set of executed cells
// scheduling-dependent, and cells are simulations whose partial
// results (Collect) are often the point.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Options tune one sweep execution. The zero value is ready to use.
type Options struct {
	// Workers is the goroutine count the cells are fanned across.
	// Values < 1 use runtime.GOMAXPROCS(0). The result of a sweep is
	// identical for every worker count, by construction.
	Workers int
	// OnProgress, when non-nil, is called after each cell completes
	// with the number of completed cells and the total. Calls are
	// serialized and the done counter ticks 1..total exactly once
	// each, so progress output is itself deterministic in content.
	OnProgress func(done, total int)
}

// ResolveWorkers reports the effective worker count for a Workers
// option value: values < 1 resolve to runtime.GOMAXPROCS(0), the
// documented default. Callers that record "how parallel was this
// pass" (benchtab's BENCH_results.json) must record this resolution,
// not the raw flag value. A sweep additionally never runs more
// workers than it has cells; that cap is per-call and intentionally
// not part of this resolution.
func ResolveWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

func (o Options) workers(n int) int {
	w := ResolveWorkers(o.Workers)
	if w > n {
		w = n
	}
	return w
}

// Outcome is one cell's result in Collect's per-cell reporting.
type Outcome[T any] struct {
	// Index is the cell's submission index.
	Index int
	// Value is fn's result; the zero value when Err is non-nil.
	Value T
	// Err is the cell's error. A panicking cell yields a *PanicError.
	Err error
}

// PanicError is a cell panic converted into that cell's error.
type PanicError struct {
	// Cell is the submission index of the panicking cell.
	Cell int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v", e.Cell, e.Value)
}

// Collect runs fn(0..n-1) across the configured workers and returns
// every cell's outcome in submission order. It never fails as a
// batch: per-cell errors (including captured panics) land in the
// corresponding Outcome, and every cell runs regardless of its
// neighbours' fates.
func Collect[T any](n int, fn func(i int) (T, error), opts Options) []Outcome[T] {
	out := make([]Outcome[T], n)
	if n <= 0 {
		return out
	}
	workers := opts.workers(n)

	var (
		progressMu sync.Mutex
		done       int
	)
	report := func() {
		if opts.OnProgress == nil {
			return
		}
		progressMu.Lock()
		done++
		opts.OnProgress(done, n)
		progressMu.Unlock()
	}

	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				out[i] = Outcome[T]{Index: i, Err: &PanicError{
					Cell: i, Value: r, Stack: string(debug.Stack()),
				}}
			}
			report()
		}()
		v, err := fn(i)
		out[i] = Outcome[T]{Index: i, Value: v, Err: err}
	}

	if workers == 1 {
		// Inline fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			runCell(i)
		}
		return out
	}

	cells := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range cells {
				runCell(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		cells <- i
	}
	close(cells)
	wg.Wait()
	return out
}

// Map runs fn(0..n-1) across the configured workers and returns the
// values in submission order. When cells fail, the error is the
// lowest-index cell's error — a deterministic choice independent of
// scheduling — and the returned slice still carries every successful
// cell's value.
func Map[T any](n int, fn func(i int) (T, error), opts Options) ([]T, error) {
	outcomes := Collect(n, fn, opts)
	values := make([]T, n)
	var firstErr error
	for _, o := range outcomes {
		values[o.Index] = o.Value
		if o.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %d: %w", o.Index, o.Err)
		}
	}
	return values, firstErr
}
