package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	_ "rnascale/internal/assembler/all" // the pipeline cells pick tools by name
	"rnascale/internal/core"
	"rnascale/internal/simdata"
)

// TestMapDeterminismAcrossWorkerCounts is the engine's core contract:
// the same cell list produces byte-identical marshalled results with
// 1, 2 and 8 workers. The cells are real pipeline runs (the smallest
// canonical benchtab configurations), so this is the determinism the
// experiment tables and BENCH_results.json lean on. Run under -race
// via `make check`.
func TestMapDeterminismAcrossWorkerCounts(t *testing.T) {
	type cell struct {
		Scheme  core.MatchingScheme
		Pattern core.WorkflowPattern
	}
	cells := []cell{
		{core.S1, core.Conventional},
		{core.S1, core.DistributedDynamic},
		{core.S2, core.DistributedDynamic},
		{core.S2, core.DistributedStatic},
	}
	run := func(workers int) string {
		type result struct {
			TTC         float64 `json:"ttc"`
			CostUSD     float64 `json:"cost"`
			Transcripts int     `json:"transcripts"`
		}
		results, err := Map(len(cells), func(i int) (result, error) {
			ds, err := simdata.GenerateCached(simdata.Tiny())
			if err != nil {
				return result{}, err
			}
			cfg := core.DefaultConfig()
			cfg.Scheme = cells[i].Scheme
			cfg.Pattern = cells[i].Pattern
			cfg.ContrailNodes = 2
			cfg.Assemblers = []string{"velvet"}
			rep, err := core.Run(ds, cfg)
			if err != nil {
				return result{}, err
			}
			return result{rep.TTC.Seconds(), rep.CostUSD, len(rep.Transcripts)}, nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	baseline := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); got != baseline {
			t.Errorf("workers=%d output differs from workers=1:\n%s\nvs\n%s", w, got, baseline)
		}
	}
	if len(baseline) < 10 {
		t.Fatalf("suspiciously small marshalled results: %q", baseline)
	}
}

// TestDatasetCacheSingleGeneration asserts the memoized dataset cache
// generates once per distinct profile under concurrent access, and
// that all callers observe the same shared pointer.
func TestDatasetCacheSingleGeneration(t *testing.T) {
	// A profile distinct from every other test's (its own seed), so
	// the process-wide generation counter attributes cleanly.
	prof := simdata.Tiny()
	prof.Seed = 914207

	before := simdata.CacheGenerations()
	const cells = 32
	ptrs, err := Map(cells, func(i int) (*simdata.Dataset, error) {
		return simdata.GenerateCached(prof)
	}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ptrs {
		if p == nil {
			t.Fatalf("cell %d: nil dataset", i)
		}
		if p != ptrs[0] {
			t.Errorf("cell %d: distinct dataset pointer — cache did not share", i)
		}
	}
	// Exactly one generation for this profile (other profiles may be
	// generated concurrently by parallel tests, so compare against a
	// second warm pass rather than an absolute count).
	grew := simdata.CacheGenerations() - before
	if grew < 1 {
		t.Fatalf("no generation recorded")
	}
	warm := simdata.CacheGenerations()
	if _, err := simdata.GenerateCached(prof); err != nil {
		t.Fatal(err)
	}
	if d := simdata.CacheGenerations() - warm; d != 0 {
		t.Errorf("warm hit regenerated (%d extra generations)", d)
	}
	// The cached dataset equals a fresh generation (memoization does
	// not change content).
	fresh, err := simdata.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Reads, ptrs[0].Reads) {
		t.Error("cached reads differ from fresh generation")
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(8, func(i int) (int, error) {
			if i == 6 || i == 3 {
				return 0, fmt.Errorf("cell-%d: %w", i, boom)
			}
			return i, nil
		}, Options{Workers: workers})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if want := "cell 3"; err.Error()[:len(want)] != want {
			t.Errorf("workers=%d: error %q does not name the lowest failing cell", workers, err)
		}
	}
}

func TestCollectCapturesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out := Collect(5, func(i int) (string, error) {
			if i == 2 {
				panic("cell exploded")
			}
			return fmt.Sprintf("ok-%d", i), nil
		}, Options{Workers: workers})
		for i, o := range out {
			if o.Index != i {
				t.Fatalf("workers=%d: outcome %d has index %d", workers, i, o.Index)
			}
			if i == 2 {
				var pe *PanicError
				if !errors.As(o.Err, &pe) {
					t.Fatalf("workers=%d: cell 2 err = %v, want PanicError", workers, o.Err)
				}
				if pe.Cell != 2 || pe.Value != "cell exploded" || len(pe.Stack) == 0 {
					t.Errorf("workers=%d: panic detail %+v", workers, pe)
				}
				continue
			}
			if o.Err != nil || o.Value != fmt.Sprintf("ok-%d", i) {
				t.Errorf("workers=%d: cell %d = %+v", workers, i, o)
			}
		}
	}
}

// TestProgressTicksExactlyOnce checks the progress counter is
// serialized and deterministic in content: done ticks 1..n once each,
// for any worker count.
func TestProgressTicksExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var calls []int
		_, err := Map(10, func(i int) (int, error) { return i * i, nil },
			Options{Workers: workers, OnProgress: func(done, total int) {
				if total != 10 {
					t.Fatalf("total = %d", total)
				}
				calls = append(calls, done)
			}})
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != 10 {
			t.Fatalf("workers=%d: %d progress calls", workers, len(calls))
		}
		for i, d := range calls {
			if d != i+1 {
				t.Fatalf("workers=%d: progress sequence %v", workers, calls)
			}
		}
	}
}

func TestMapEmptyAndOversizedWorkers(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return i, nil }, Options{Workers: 16})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: %v %v", out, err)
	}
	// More workers than cells must not deadlock or duplicate work.
	var ran atomic.Int64
	vals, err := Map(3, func(i int) (int, error) { ran.Add(1); return i, nil }, Options{Workers: 64})
	if err != nil || ran.Load() != 3 {
		t.Fatalf("oversized workers: ran %d cells, err %v", ran.Load(), err)
	}
	if vals[0] != 0 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("values %v", vals)
	}
}
