// Package obs is the observability substrate for rnascale: tracing
// and metrics keyed to *virtual time* (internal/vclock), the clock
// every simulated runtime in this repo advances.
//
// The paper's pipeline is "controlled and monitored via the back-end
// database system that updates run-time information on the fly"
// (RADICAL-Pilot's MongoDB state store); its entire evaluation is
// TTC/cost breakdowns per stage, per matching scheme and per instance
// type. This package turns those ad-hoc reconstructions into a
// first-class subsystem:
//
//   - Tracer produces hierarchical spans (run → stage → pilot → unit)
//     with attributes and point-in-time events, exportable as a human
//     tree view or as Chrome trace_event JSON (load the file in
//     chrome://tracing or https://ui.perfetto.dev).
//   - Registry holds counters, gauges and histograms under a stable
//     rnascale_* naming scheme, with a Prometheus-style text
//     exposition.
//   - RunSnapshot folds both into the per-stage TTC/cost tables of
//     the paper's figures, as a machine-readable record.
//
// Everything is stdlib-only, safe for concurrent use, and
// deterministic: exporters sort all map iteration, so two runs with
// identical configuration produce byte-identical exports.
package obs

// Obs bundles one run's tracer and metric registry. Components that
// accept an *Obs treat a nil receiver (or nil fields) as "observation
// disabled" and skip instrumentation.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns a fresh, empty observability bundle.
func New() *Obs {
	return &Obs{Tracer: NewTracer(), Metrics: NewRegistry()}
}
