package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"rnascale/internal/vclock"
)

// Span kinds used by the pipeline. The tracer itself treats kinds as
// opaque strings; these constants fix the vocabulary the pipeline
// emits so consumers (snapshots, dashboards) can rely on it.
const (
	KindRun   = "run"
	KindStage = "stage"
	KindPilot = "pilot"
	KindUnit  = "unit"
)

// SpanEvent is a point-in-time annotation within a span — a state
// transition, a milestone, a warning.
type SpanEvent struct {
	At   vclock.Time
	Name string
	Note string
}

// Span is one timed operation in virtual time. Spans form a tree;
// a span with a nil parent is a root. All methods are safe for
// concurrent use (they serialize on the owning tracer's lock).
type Span struct {
	id       int
	tracer   *Tracer
	parent   *Span
	children []*Span

	// Kind classifies the span (see the Kind* constants).
	Kind string
	// Name identifies the operation (stage name, pilot ID, ...).
	Name string
	// Start is when the operation began.
	Start vclock.Time

	end    vclock.Time
	ended  bool
	attrs  map[string]string
	events []SpanEvent
}

// SetAttr attaches (or overwrites) a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// SetAttrf attaches a formatted attribute.
func (s *Span) SetAttrf(key, format string, args ...any) {
	s.SetAttr(key, fmt.Sprintf(format, args...))
}

// Attr reads an attribute back.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	v, ok := s.attrs[key]
	return v, ok
}

// Event records a point-in-time annotation.
func (s *Span) Event(at vclock.Time, name, note string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	s.events = append(s.events, SpanEvent{At: at, Name: name, Note: note})
}

// End closes the span at the given virtual time. Ending an already
// ended span is a no-op (first end wins), so teardown paths may end
// defensively.
func (s *Span) End(at vclock.Time) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	if at < s.Start {
		at = s.Start
	}
	s.end = at
}

// Ended reports whether the span was closed.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.ended
}

// EndTime reports the span's end. For an unended span it reports the
// latest time observed within it (its own events and children), so
// exports of in-flight traces remain well-formed.
func (s *Span) EndTime() vclock.Time {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.endLocked()
}

func (s *Span) endLocked() vclock.Time {
	if s.ended {
		return s.end
	}
	latest := s.Start
	for _, e := range s.events {
		if e.At > latest {
			latest = e.At
		}
	}
	for _, c := range s.children {
		if t := c.endLocked(); t > latest {
			latest = t
		}
	}
	return latest
}

// Duration reports the span's virtual extent (see EndTime for the
// unended case).
func (s *Span) Duration() vclock.Duration { return s.EndTime().Sub(s.Start) }

// Children returns the span's direct children in creation order.
func (s *Span) Children() []*Span {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Events returns a copy of the span's point events.
func (s *Span) Events() []SpanEvent {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]SpanEvent(nil), s.events...)
}

// Attrs returns the attribute keys and values in sorted-key order.
func (s *Span) Attrs() []Attr {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return sortedAttrs(s.attrs)
}

// Attr is one key/value attribute pair.
type Attr struct{ Key, Value string }

func sortedAttrs(m map[string]string) []Attr {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Attr, len(keys))
	for i, k := range keys {
		out[i] = Attr{Key: k, Value: m[k]}
	}
	return out
}

// Tracer owns a forest of spans. The zero value is not usable; create
// tracers with NewTracer. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	spans  []*Span // creation order
	nextID int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// StartSpan opens a span under parent (nil for a root) beginning at
// the given virtual time.
func (t *Tracer) StartSpan(parent *Span, kind, name string, at vclock.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{id: t.nextID, tracer: t, parent: parent, Kind: kind, Name: name, Start: at}
	if parent != nil {
		parent.children = append(parent.children, s)
	}
	t.spans = append(t.spans, s)
	return s
}

// Roots returns the root spans in creation order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	for _, s := range t.spans {
		if s.parent == nil {
			out = append(out, s)
		}
	}
	return out
}

// Len reports the total number of spans started.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Find returns the first span (in creation order) with the given kind
// and name, or nil.
func (t *Tracer) Find(kind, name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.Kind == kind && s.Name == name {
			return s
		}
	}
	return nil
}

// WriteTree renders the span forest as an indented, human-readable
// tree. Output is deterministic: children in creation order,
// attributes in sorted-key order.
func (t *Tracer) WriteTree(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, s := range t.spans {
		if s.parent == nil {
			writeTreeNode(&b, s, 0)
		}
	}
	if b.Len() == 0 {
		b.WriteString("(no spans)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeTreeNode renders one span and its subtree; callers hold the
// tracer lock.
func writeTreeNode(b *strings.Builder, s *Span, depth int) {
	indent := strings.Repeat("  ", depth)
	end := s.endLocked()
	fmt.Fprintf(b, "%s%s %s %v..%v (%v)", indent, s.Kind, s.Name, s.Start, end, end.Sub(s.Start))
	if !s.ended {
		b.WriteString(" [open]")
	}
	for _, a := range sortedAttrs(s.attrs) {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, e := range s.events {
		fmt.Fprintf(b, "%s  @%v %s", indent, e.At, e.Name)
		if e.Note != "" {
			fmt.Fprintf(b, " (%s)", e.Note)
		}
		b.WriteByte('\n')
	}
	for _, c := range s.children {
		writeTreeNode(b, c, depth+1)
	}
}
