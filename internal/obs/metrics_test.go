package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help", Labels{"a": "1"})
	c.Inc()
	c.Add(2.5)
	if c.Value() != 3.5 {
		t.Errorf("counter: %v", c.Value())
	}
	// Same (name, labels) returns the same series.
	if r.Counter("x_total", "", Labels{"a": "1"}) != c {
		t.Error("counter identity lost")
	}
	// Different labels are a distinct series.
	if r.Counter("x_total", "", Labels{"a": "2"}) == c {
		t.Error("label sets collapsed")
	}
	g := r.Gauge("y", "", nil)
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge: %v", g.Value())
	}

	defer func() {
		if recover() == nil {
			t.Error("negative counter add did not panic")
		}
	}()
	c.Add(-1)
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("kind collision did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10, 100}, nil)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 555.5 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="100"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 555.5",
		"lat_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Non-ascending buckets are a programming error.
	defer func() {
		if recover() == nil {
			t.Error("bad buckets did not panic")
		}
	}()
	r.Histogram("bad", "", []float64{5, 5}, nil)
}

// TestHistogramZeroObservations: a registered-but-never-observed
// histogram still renders its full bucket ladder (all zero), so a
// scraper sees the series exist before the first event — the state
// the gateway's queue-wait histogram is in between boot and the
// first run.
func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("idle", "", []float64{1, 10}, nil)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("fresh histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`idle_bucket{le="1"} 0`,
		`idle_bucket{le="10"} 0`,
		`idle_bucket{le="+Inf"} 0`,
		"idle_sum 0",
		"idle_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-observation exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramNoBounds: nil bounds are legal (the TTC histogram uses
// them) and collapse to a single +Inf bucket that still satisfies the
// histogram contract: bucket == count, sum tracked.
func TestHistogramNoBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("free", "", nil, nil)
	h.Observe(3)
	h.Observe(4.5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`free_bucket{le="+Inf"} 2`,
		"free_sum 7.5",
		"free_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boundless exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBoundaryAndOverflow: a value exactly on a bound lands
// in that bucket (le is inclusive), and values above every bound land
// only in +Inf.
func TestHistogramBoundaryAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", "", []float64{1, 10}, nil)
	h.Observe(1)    // exactly on the first bound
	h.Observe(10)   // exactly on the last bound
	h.Observe(1e9)  // above every bound
	h.Observe(-0.5) // below every bound still lands in the first bucket
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`edge_bucket{le="1"} 2`,
		`edge_bucket{le="10"} 3`,
		`edge_bucket{le="+Inf"} 4`,
		"edge_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boundary exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramBadBounds: unsorted and duplicate bounds are
// programming errors, caught at registration rather than rendering
// garbage cumulative counts.
func TestHistogramBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		{10, 1},     // descending
		{1, 5, 3},   // out of order past the front
		{5, 5},       // duplicate
		{1, 2, 2, 3}, // duplicate mid-ladder
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewRegistry().Histogram("bad", "", bounds, nil)
		}()
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	// Register in scrambled order; exposition must sort.
	r.Gauge("zz", "last metric", nil).Set(1)
	r.Counter("aa_total", "first metric", Labels{"b": "2", "a": "1"}).Add(7)
	r.Counter("aa_total", "first metric", Labels{"a": "0"}).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total first metric
# TYPE aa_total counter
aa_total{a="0"} 1
aa_total{a="1",b="2"} 7
# HELP zz last metric
# TYPE zz gauge
zz 1
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramLabelsInBuckets(t *testing.T) {
	r := NewRegistry()
	r.Histogram("w", "", []float64{1}, Labels{"p": "x"}).Observe(0.5)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `w_bucket{p="x",le="1"} 1`) {
		t.Errorf("labelled bucket:\n%s", b.String())
	}
}

func TestPoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Labels{"k": "v"}).Add(3)
	r.Gauge("g", "", nil).Set(2)
	h := r.Histogram("h", "", []float64{1}, nil)
	h.Observe(0.5)
	h.Observe(4)
	pts := r.Points()
	got := map[string]float64{}
	for _, p := range pts {
		got[p.Name] = p.Value
		if p.Name == "c_total" && p.Labels["k"] != "v" {
			t.Errorf("labels lost: %+v", p)
		}
	}
	if got["c_total"] != 3 || got["g"] != 2 || got["h_sum"] != 4.5 || got["h_count"] != 2 {
		t.Errorf("points: %+v", pts)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c_total", "", nil).Inc()
				r.Gauge("g", "", nil).Set(float64(j))
				r.Histogram("h", "", nil, nil).Observe(float64(j))
				var b bytes.Buffer
				_ = r.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "", nil).Value(); got != 800 {
		t.Errorf("counter: %v", got)
	}
}
