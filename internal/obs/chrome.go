package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one record of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Virtual seconds map to trace microseconds, so a span of 60 virtual
// seconds renders as 60 "ms-scale" units in the viewer — the absolute
// scale is virtual anyway.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every span as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. Each span gets its own
// thread row (tid = span ID) named after the span, a complete ("X")
// event carrying its attributes, and an instant ("i") event per span
// event. Output is deterministic: spans in creation order, JSON map
// keys sorted by encoding/json.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]chromeEvent, 0, 2*len(t.spans))
	for _, s := range t.spans {
		label := s.Kind + " " + s.Name
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: s.id,
			Args: map[string]string{"name": label},
		})
		dur := float64(s.endLocked().Sub(s.Start)) * 1e6
		args := make(map[string]string, len(s.attrs)+1)
		for k, v := range s.attrs {
			args[k] = v
		}
		if !s.ended {
			args["open"] = "true"
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Kind, Phase: "X",
			TS: float64(s.Start) * 1e6, Dur: &dur, PID: 1, TID: s.id,
			Args: args,
		})
		for _, e := range s.events {
			var args map[string]string
			if e.Note != "" {
				args = map[string]string{"note": e.Note}
			}
			events = append(events, chromeEvent{
				Name: e.Name, Cat: s.Kind, Phase: "i",
				TS: float64(e.At) * 1e6, PID: 1, TID: s.id, Scope: "t",
				Args: args,
			})
		}
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
