package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// SnapshotSchema versions the RunSnapshot JSON layout.
const SnapshotSchema = "rnascale.run-snapshot/v1"

// Attribute keys the pipeline sets on spans; Snapshot folds them into
// typed fields.
const (
	AttrCostUSD      = "cost_usd"
	AttrInstanceType = "instance_type"
	AttrNodes        = "nodes"
)

// StageStat is one row of the per-stage TTC/cost table — the unit of
// the paper's Figs. 4 and 6–8.
type StageStat struct {
	Name         string            `json:"name"`
	StartSeconds float64           `json:"startSeconds"`
	EndSeconds   float64           `json:"endSeconds"`
	TTCSeconds   float64           `json:"ttcSeconds"`
	CostUSD      float64           `json:"costUSD,omitempty"`
	InstanceType string            `json:"instanceType,omitempty"`
	Nodes        int               `json:"nodes,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// RunSnapshot is the machine-readable record of one run: the span
// tree folded into per-stage rows plus every metric sample. It is the
// interchange format benchtab writes across PRs to track the perf
// trajectory.
type RunSnapshot struct {
	Schema string `json:"schema"`
	Run    string `json:"run,omitempty"`
	// Resumed marks a run continued from a write-ahead journal after a
	// driver crash. It is the only field allowed to differ between a
	// resumed run and its uninterrupted twin: everything else is
	// byte-identical by the journal replay contract.
	Resumed    bool              `json:"resumed,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	TTCSeconds float64           `json:"ttcSeconds"`
	CostUSD    float64           `json:"costUSD"`
	Stages     []StageStat       `json:"stages"`
	Metrics    []MetricPoint     `json:"metrics,omitempty"`
}

// Journal and resume metric names. MetricJournalRecords lives in the
// per-run registry and counts records replayed from a surviving
// journal prefix plus records appended live, so a resumed run and its
// uninterrupted twin report the same total. MetricRunsResumed is a
// service-level counter (gateway registry), deliberately kept out of
// per-run registries so run snapshots stay comparable byte-for-byte.
const (
	MetricJournalRecords = "rnascale_journal_records_total"
	MetricRunsResumed    = "rnascale_runs_resumed_total"
)

// Snapshot folds a tracer and registry into a RunSnapshot. The first
// root span of kind "run" provides the run identity and total TTC;
// its direct children of kind "stage" provide the stage rows. A nil
// tracer or registry contributes nothing.
func Snapshot(tr *Tracer, reg *Registry) RunSnapshot {
	snap := RunSnapshot{Schema: SnapshotSchema}
	if tr != nil {
		for _, root := range tr.Roots() {
			if root.Kind != KindRun {
				continue
			}
			snap.Run = root.Name
			snap.TTCSeconds = root.Duration().Seconds()
			snap.Attrs = attrMap(root.Attrs())
			for _, c := range root.Children() {
				if c.Kind != KindStage {
					continue
				}
				st := StageStat{
					Name:         c.Name,
					StartSeconds: float64(c.Start),
					EndSeconds:   float64(c.EndTime()),
					TTCSeconds:   c.Duration().Seconds(),
				}
				attrs := attrMap(c.Attrs())
				if v, ok := attrs[AttrCostUSD]; ok {
					st.CostUSD, _ = strconv.ParseFloat(v, 64)
					delete(attrs, AttrCostUSD)
				}
				if v, ok := attrs[AttrInstanceType]; ok {
					st.InstanceType = v
					delete(attrs, AttrInstanceType)
				}
				if v, ok := attrs[AttrNodes]; ok {
					st.Nodes, _ = strconv.Atoi(v)
					delete(attrs, AttrNodes)
				}
				if len(attrs) == 0 {
					attrs = nil
				}
				st.Attrs = attrs
				snap.CostUSD += st.CostUSD
				snap.Stages = append(snap.Stages, st)
			}
			break
		}
	}
	if reg != nil {
		snap.Metrics = reg.Points()
		for _, p := range snap.Metrics {
			if p.Name == "rnascale_run_cost_usd" && len(p.Labels) == 0 {
				snap.CostUSD = p.Value
			}
		}
	}
	return snap
}

// WriteJSON marshals the snapshot with stable key order and
// indentation (encoding/json sorts map keys, so output is
// byte-deterministic for identical inputs).
func (s RunSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
