package perf

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// withProbes runs fn with probes enabled against a clean registry,
// restoring the default-off state afterwards.
func withProbes(t *testing.T, fn func()) {
	t.Helper()
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	fn()
}

// TestDisabledRegionIsInert pins the default-off contract: Region
// returns the zero Span, End does nothing, and no stats accumulate.
func TestDisabledRegionIsInert(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("probes enabled by default")
	}
	s := Region("test.region")
	if s.p != nil {
		t.Error("disabled Region returned a live span")
	}
	s.End() // must not panic or record
	if stats := Snapshot(); len(stats) != 0 {
		t.Errorf("disabled probes accumulated stats: %+v", stats)
	}
}

// TestDisabledRegionAllocatesNothing pins the zero-overhead claim the
// kernels rely on: the defer Region().End() idiom costs no heap
// allocation while probes are off.
func TestDisabledRegionAllocatesNothing(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(100, func() {
		defer Region("test.off").End()
	})
	if allocs != 0 {
		t.Errorf("disabled probe allocated %.1f objects per region", allocs)
	}
}

// sink defeats dead-store elimination in allocation tests.
var sink []byte

func TestEnabledRegionRecords(t *testing.T) {
	withProbes(t, func() {
		for i := 0; i < 3; i++ {
			sp := Region("test.work")
			sink = make([]byte, 1024)
			sp.End()
		}
		stats := Snapshot()
		if len(stats) != 1 {
			t.Fatalf("stats: %+v", stats)
		}
		s := stats[0]
		if s.Name != "test.work" || s.Count != 3 {
			t.Errorf("stat: %+v", s)
		}
		if s.TotalNs <= 0 {
			t.Errorf("no elapsed time recorded: %+v", s)
		}
		if s.Bytes < 3*1024 {
			t.Errorf("allocation bytes not captured: %+v", s)
		}
		if s.NsPerOp() <= 0 {
			t.Errorf("NsPerOp: %v", s.NsPerOp())
		}
	})
}

// TestSnapshotSorted pins deterministic structure: regions come back
// sorted by name however they were first fired.
func TestSnapshotSorted(t *testing.T) {
	withProbes(t, func() {
		for _, name := range []string{"z.last", "a.first", "m.middle"} {
			Region(name).End()
		}
		stats := Snapshot()
		if len(stats) != 3 {
			t.Fatalf("stats: %+v", stats)
		}
		for i, want := range []string{"a.first", "m.middle", "z.last"} {
			if stats[i].Name != want {
				t.Errorf("stats[%d] = %q, want %q", i, stats[i].Name, want)
			}
		}
	})
}

func TestReset(t *testing.T) {
	withProbes(t, func() {
		Region("test.reset").End()
		Reset()
		if stats := Snapshot(); len(stats) != 0 {
			t.Errorf("reset left stats: %+v", stats)
		}
	})
}

func TestReport(t *testing.T) {
	withProbes(t, func() {
		Region("test.report").End()
		var b bytes.Buffer
		if err := Report(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{"region", "ns/op", "allocs/op", "test.report"} {
			if !strings.Contains(out, want) {
				t.Errorf("report missing %q:\n%s", want, out)
			}
		}
	})
	Reset()
	var b bytes.Buffer
	if err := Report(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no probes fired") {
		t.Errorf("empty report: %q", b.String())
	}
}

// TestConcurrentRegions exercises the registry under the race
// detector: many goroutines firing the same and different regions.
func TestConcurrentRegions(t *testing.T) {
	withProbes(t, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					Region("test.shared").End()
					if g%2 == 0 {
						Region("test.even").End()
					}
				}
			}(g)
		}
		wg.Wait()
		stats := Snapshot()
		var shared, even uint64
		for _, s := range stats {
			switch s.Name {
			case "test.shared":
				shared = s.Count
			case "test.even":
				even = s.Count
			}
		}
		if shared != 400 || even != 200 {
			t.Errorf("counts: shared=%d even=%d (%+v)", shared, even, stats)
		}
	})
}

func TestMeasure(t *testing.T) {
	m := Measure(10, func() {
		sink = make([]byte, 4096)
	})
	if m.Iters != 10 {
		t.Errorf("iters: %d", m.Iters)
	}
	if m.NsPerOp <= 0 {
		t.Errorf("nsPerOp: %v", m.NsPerOp)
	}
	// One 4 KiB slice per op: allocs ≈ 1, bytes ≥ 4096.
	if m.AllocsPerOp < 0.9 || m.AllocsPerOp > 2 {
		t.Errorf("allocsPerOp: %v", m.AllocsPerOp)
	}
	if m.BytesPerOp < 4096 {
		t.Errorf("bytesPerOp: %v", m.BytesPerOp)
	}

	defer func() {
		if recover() == nil {
			t.Error("Measure with 0 iters did not panic")
		}
	}()
	Measure(0, func() {})
}
