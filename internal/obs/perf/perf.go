// Package perf provides wall-clock performance probes for the hot
// simulation kernels: k-mer counting and DBG construction, FASTA/
// FASTQ parsing, the vclock slot scheduler, MPI collective rendezvous
// and journal appends.
//
// Probes are compiled in everywhere but DISABLED by default. The
// repository's determinism contract (see DESIGN.md "Static analysis &
// determinism lint") forbids wall-clock reads in simulation packages
// because reported TTC/cost must come from internal/vclock; this
// package is the one sanctioned home for real-time measurement, and
// it keeps the contract two ways:
//
//   - Disabled probes never read the clock. Region returns the zero
//     Span after a single atomic load, and End on a zero Span is a
//     nil-check — no timestamps, no allocation, no effect on any
//     golden render.
//   - Every wall-clock read in this file carries an auditable
//     //rnavet:allow wallclock directive, and the package opts itself
//     into rnavet's wallclock check with the //rnavet:simulation
//     directive so a future unannotated read is a lint failure, not a
//     silent hole.
//
// Alongside elapsed nanoseconds a Span records heap-allocation deltas
// (object count and bytes) from runtime.ReadMemStats. Deltas are
// process-global: attribute them to a region only when nothing else
// allocates concurrently (single-goroutine kernels, microbenchmarks).
//
// Usage, at a kernel entry point:
//
//	defer perf.Region("dbg.build").End()
//
// and, in a measurement harness (cmd/benchtab -kernels):
//
//	perf.Enable()
//	... run the kernel ...
//	perf.Report(os.Stdout)
package perf

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

//rnavet:simulation

// enabled gates every probe. Manipulate with Enable/Disable; the
// default is off so production pipeline runs pay one atomic load per
// region and nothing else.
var enabled atomic.Bool

// Enable turns probes on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns probes off process-wide. Regions begun while enabled
// still record on End.
func Disable() { enabled.Store(false) }

// Enabled reports whether probes are currently recording.
func Enabled() bool { return enabled.Load() }

// probe is the accumulator behind one region name.
type probe struct {
	name   string
	mu     sync.Mutex
	count  uint64
	ns     int64
	allocs uint64
	bytes  uint64
}

// registry maps region names to their accumulators. Lookups on the
// hot path take the read lock; the write lock is only held the first
// time a name is seen.
var registry struct {
	mu     sync.RWMutex
	probes map[string]*probe
}

func lookup(name string) *probe {
	registry.mu.RLock()
	p := registry.probes[name]
	registry.mu.RUnlock()
	if p != nil {
		return p
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.probes == nil {
		registry.probes = make(map[string]*probe)
	}
	if p = registry.probes[name]; p == nil {
		p = &probe{name: name}
		registry.probes[name] = p
	}
	return p
}

// readAllocs reads the cumulative heap-allocation counters via
// runtime.ReadMemStats. The runtime/metrics package would be cheaper
// (no stop-the-world) but its allocation counters aggregate per-P
// caches lazily and under-report small deltas; ReadMemStats flushes
// them, which is what makes allocsPerOp deterministic enough for the
// bench gate to hold to a tight tolerance. The MemStats value lives
// on the stack, so reading costs no heap allocation of its own.
func readAllocs() (objects, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// Span is one in-flight region measurement. The zero Span (returned
// by Region while probes are disabled) is inert: End on it does
// nothing. Span is a value type so the
//
//	defer perf.Region("name").End()
//
// idiom allocates nothing.
type Span struct {
	p       *probe
	start   time.Time
	objects uint64
	bytes   uint64
}

// Region begins a measurement of the named region. While probes are
// disabled it returns the zero Span after one atomic load.
func Region(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	p := lookup(name)
	objects, bytes := readAllocs()
	//rnavet:allow wallclock — probes measure real elapsed time by design; off by default, never feeds virtual time
	return Span{p: p, start: time.Now(), objects: objects, bytes: bytes}
}

// End finishes the measurement and folds it into the region's
// accumulator. End on a zero Span (disabled probes) is a no-op.
func (s Span) End() {
	if s.p == nil {
		return
	}
	//rnavet:allow wallclock — closing a probe span reads the same real clock Region opened it with
	elapsed := time.Since(s.start)
	objects, bytes := readAllocs()
	s.p.mu.Lock()
	s.p.count++
	s.p.ns += elapsed.Nanoseconds()
	s.p.allocs += objects - s.objects
	s.p.bytes += bytes - s.bytes
	s.p.mu.Unlock()
}

// Stat is one region's accumulated measurements.
type Stat struct {
	// Name is the region name passed to Region.
	Name string `json:"name"`
	// Count is the number of completed spans.
	Count uint64 `json:"count"`
	// TotalNs is the summed elapsed wall-clock nanoseconds.
	TotalNs int64 `json:"totalNs"`
	// Allocs is the summed heap-object allocation delta.
	Allocs uint64 `json:"allocs"`
	// Bytes is the summed heap-byte allocation delta.
	Bytes uint64 `json:"bytes"`
}

// NsPerOp is TotalNs averaged over Count (0 for an unused probe).
func (s Stat) NsPerOp() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.TotalNs) / float64(s.Count)
}

// Snapshot returns every region's accumulated stats, sorted by name
// so output built from it is deterministic in structure.
func Snapshot() []Stat {
	registry.mu.RLock()
	probes := make([]*probe, 0, len(registry.probes))
	for _, p := range registry.probes {
		probes = append(probes, p)
	}
	registry.mu.RUnlock()
	sort.Slice(probes, func(a, b int) bool { return probes[a].name < probes[b].name })
	out := make([]Stat, 0, len(probes))
	for _, p := range probes {
		p.mu.Lock()
		out = append(out, Stat{Name: p.name, Count: p.count, TotalNs: p.ns, Allocs: p.allocs, Bytes: p.bytes})
		p.mu.Unlock()
	}
	return out
}

// Reset discards every accumulated measurement (but keeps probes
// enabled or disabled as they were).
func Reset() {
	registry.mu.Lock()
	registry.probes = nil
	registry.mu.Unlock()
}

// Report renders the snapshot as an aligned table: one row per
// region, with per-op averages. Regions that never fired are listed
// with a zero count, so a report also documents which probes exist.
func Report(w io.Writer) error {
	stats := Snapshot()
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "perf: no probes fired")
		return err
	}
	_, err := fmt.Fprintf(w, "%-28s %10s %14s %14s %14s\n", "region", "count", "ns/op", "allocs/op", "bytes/op")
	if err != nil {
		return err
	}
	for _, s := range stats {
		var allocsPer, bytesPer float64
		if s.Count > 0 {
			allocsPer = float64(s.Allocs) / float64(s.Count)
			bytesPer = float64(s.Bytes) / float64(s.Count)
		}
		if _, err := fmt.Fprintf(w, "%-28s %10d %14.0f %14.1f %14.1f\n",
			s.Name, s.Count, s.NsPerOp(), allocsPer, bytesPer); err != nil {
			return err
		}
	}
	return nil
}

// Measurement is one microbenchmark result: per-operation averages
// over a fixed iteration count. Times are wall-clock; allocation
// counts are deterministic for a fixed-seed workload, which is what
// lets the bench gate hold them to a tight tolerance.
type Measurement struct {
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// Measure runs fn iters times (after one untimed warm-up call and a
// GC to settle the heap) and reports per-op wall time and allocation
// deltas. iters must be positive.
func Measure(iters int, fn func()) Measurement {
	if iters < 1 {
		panic(fmt.Sprintf("perf: measure with %d iters", iters))
	}
	fn()
	runtime.GC()
	objects0, bytes0 := readAllocs()
	//rnavet:allow wallclock — the microbenchmark harness exists to measure real elapsed time
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	//rnavet:allow wallclock — closing the measurement window opened above
	elapsed := time.Since(start)
	objects1, bytes1 := readAllocs()
	n := float64(iters)
	return Measurement{
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(objects1-objects0) / n,
		BytesPerOp:  float64(bytes1-bytes0) / n,
	}
}
