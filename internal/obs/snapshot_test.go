package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSnapshot(t *testing.T) {
	o := buildScenario()
	snap := Snapshot(o.Tracer, o.Metrics)
	if snap.Schema != SnapshotSchema || snap.Run != "run-00001" {
		t.Fatalf("header: %+v", snap)
	}
	if snap.TTCSeconds != 1100 {
		t.Errorf("ttc: %v", snap.TTCSeconds)
	}
	if len(snap.Stages) != 2 {
		t.Fatalf("stages: %+v", snap.Stages)
	}
	pa := snap.Stages[1]
	if pa.Name != "PA" || pa.TTCSeconds != 885 || pa.CostUSD != 0.12 ||
		pa.InstanceType != "c3.2xlarge" || pa.Nodes != 1 {
		t.Errorf("PA row: %+v", pa)
	}
	// The rnascale_run_cost_usd gauge overrides the attr-summed cost.
	if snap.CostUSD != 0.12 {
		t.Errorf("cost: %v", snap.CostUSD)
	}
	if len(snap.Metrics) == 0 {
		t.Error("metrics missing from snapshot")
	}
	if snap.Attrs["scheme"] != "S2" {
		t.Errorf("run attrs: %+v", snap.Attrs)
	}
}

func TestSnapshotNilInputs(t *testing.T) {
	snap := Snapshot(nil, nil)
	if snap.Schema != SnapshotSchema || len(snap.Stages) != 0 || len(snap.Metrics) != 0 {
		t.Errorf("nil snapshot: %+v", snap)
	}
}

// golden compares got against testdata/<name>, rewriting with
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/obs -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestExportsDeterministicAndGolden is the repo's byte-determinism
// contract: identical inputs produce byte-identical exports, pinned
// by golden files.
func TestExportsDeterministicAndGolden(t *testing.T) {
	render := func() (trace, prom, tree, snap []byte) {
		o := buildScenario()
		var a, b, c, d bytes.Buffer
		if err := o.Tracer.WriteChromeTrace(&a); err != nil {
			t.Fatal(err)
		}
		if err := o.Metrics.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if err := o.Tracer.WriteTree(&c); err != nil {
			t.Fatal(err)
		}
		if err := Snapshot(o.Tracer, o.Metrics).WriteJSON(&d); err != nil {
			t.Fatal(err)
		}
		return a.Bytes(), b.Bytes(), c.Bytes(), d.Bytes()
	}
	t1, p1, tr1, s1 := render()
	t2, p2, tr2, s2 := render()
	for _, pair := range []struct {
		name      string
		got, want []byte
	}{
		{"chrome trace", t1, t2}, {"prometheus", p1, p2}, {"tree", tr1, tr2}, {"snapshot", s1, s2},
	} {
		if !bytes.Equal(pair.got, pair.want) {
			t.Errorf("%s export not byte-identical across runs", pair.name)
		}
	}
	golden(t, "trace.golden.json", t1)
	golden(t, "metrics.golden.txt", p1)
	golden(t, "tree.golden.txt", tr1)
	golden(t, "snapshot.golden.json", s1)
}
