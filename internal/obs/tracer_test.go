package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"rnascale/internal/vclock"
)

// buildScenario constructs a fixed run→stage→pilot→unit span tree
// with metrics; used by the tree, chrome and golden tests.
func buildScenario() *Obs {
	o := New()
	tr := o.Tracer
	run := tr.StartSpan(nil, KindRun, "run-00001", 0)
	run.SetAttr("scheme", "S2")
	run.SetAttr("pattern", "distributed-dynamic")

	xfer := tr.StartSpan(run, KindStage, "transfer", 0)
	xfer.End(215)

	pa := tr.StartSpan(run, KindStage, "PA", 215)
	pa.SetAttr(AttrInstanceType, "c3.2xlarge")
	pa.SetAttr(AttrNodes, "1")
	pa.SetAttr(AttrCostUSD, "0.12")
	pilot := tr.StartSpan(pa, KindPilot, "pilot.0001(PA)", 215)
	pilot.Event(275, "PMGR_ACTIVE", "agent up")
	unit := tr.StartSpan(pilot, KindUnit, "unit.00001(preprocess)", 275)
	unit.Event(275, "AGENT_EXECUTING", "")
	unit.End(1100)
	pilot.End(1100)
	pa.End(1100)
	run.End(1100)

	reg := o.Metrics
	reg.Counter("rnascale_vm_boots_total", "VMs booted.", Labels{"type": "c3.2xlarge"}).Add(2)
	reg.Gauge("rnascale_run_cost_usd", "Total cloud bill.", nil).Set(0.12)
	h := reg.Histogram("rnascale_sge_queue_wait_seconds", "SGE queue wait.", nil, nil)
	h.Observe(0)
	h.Observe(42)
	h.Observe(90000)
	return o
}

func TestSpanHierarchy(t *testing.T) {
	o := buildScenario()
	roots := o.Tracer.Roots()
	if len(roots) != 1 || roots[0].Kind != KindRun {
		t.Fatalf("roots: %+v", roots)
	}
	run := roots[0]
	kids := run.Children()
	if len(kids) != 2 || kids[0].Name != "transfer" || kids[1].Name != "PA" {
		t.Fatalf("run children: %+v", kids)
	}
	pa := kids[1]
	if got := pa.Children(); len(got) != 1 || got[0].Kind != KindPilot {
		t.Fatalf("stage children: %+v", got)
	}
	unit := pa.Children()[0].Children()[0]
	if unit.Kind != KindUnit || unit.Duration() != 825 {
		t.Fatalf("unit: kind=%s dur=%v", unit.Kind, unit.Duration())
	}
	if v, ok := pa.Attr(AttrInstanceType); !ok || v != "c3.2xlarge" {
		t.Errorf("attr: %q %v", v, ok)
	}
	if o.Tracer.Find(KindStage, "PA") != pa {
		t.Error("Find missed the PA stage")
	}
	if o.Tracer.Find(KindStage, "nope") != nil {
		t.Error("Find invented a span")
	}
	if o.Tracer.Len() != 5 {
		t.Errorf("len: %d", o.Tracer.Len())
	}
}

func TestSpanEndSemantics(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan(nil, KindRun, "r", 100)
	if s.Ended() {
		t.Error("new span reported ended")
	}
	// Unended span end time floats with its contents.
	s.Event(250, "milestone", "")
	c := tr.StartSpan(s, KindStage, "st", 120)
	c.End(400)
	if got := s.EndTime(); got != 400 {
		t.Errorf("open end time: %v", got)
	}
	// End before start clamps.
	s.End(50)
	if got := s.EndTime(); got != 100 {
		t.Errorf("clamped end: %v", got)
	}
	// First end wins.
	s.End(999)
	if got := s.EndTime(); got != 100 {
		t.Errorf("double end: %v", got)
	}
	// Nil-span methods are no-ops.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.Event(0, "e", "")
	nilSpan.End(0)
	if nilSpan.Ended() {
		t.Error("nil span ended")
	}
	if _, ok := nilSpan.Attr("k"); ok {
		t.Error("nil span has attrs")
	}
}

func TestWriteTree(t *testing.T) {
	o := buildScenario()
	var b bytes.Buffer
	if err := o.Tracer.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"run run-00001 0s..18m20s (18m20s)",
		"pattern=distributed-dynamic scheme=S2",
		"  stage transfer",
		"    pilot pilot.0001(PA)",
		"    @4m35s PMGR_ACTIVE (agent up)",
		"      unit unit.00001(preprocess)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[open]") {
		t.Errorf("all spans ended but tree shows [open]:\n%s", out)
	}

	var empty bytes.Buffer
	NewTracer().WriteTree(&empty)
	if !strings.Contains(empty.String(), "no spans") {
		t.Errorf("empty tree: %q", empty.String())
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	o := buildScenario()
	// Leave one span open to exercise the in-flight path.
	o.Tracer.StartSpan(nil, KindRun, "run-00002", 2000).SetAttr("k", "v")
	var b bytes.Buffer
	if err := o.Tracer.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	var xEvents, metas, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			xEvents++
		case "M":
			metas++
		case "i":
			instants++
		}
	}
	// 6 spans -> 6 X + 6 thread_name metas; 2 span events -> 2 instants.
	if xEvents != 6 || metas != 6 || instants != 2 {
		t.Errorf("events: X=%d M=%d i=%d", xEvents, metas, instants)
	}
	if !strings.Contains(b.String(), `"open": "true"`) {
		t.Errorf("open span not flagged:\n%s", b.String())
	}
	// Virtual seconds scale to microseconds.
	if !strings.Contains(b.String(), `"ts": 215000000`) {
		t.Errorf("PA start not at 215s*1e6:\n%s", b.String())
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan(nil, KindRun, "r", 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := tr.StartSpan(root, KindUnit, "u", vclock.Time(j))
				s.SetAttr("i", "x")
				s.Event(vclock.Time(j), "e", "")
				s.End(vclock.Time(j + 1))
				var b bytes.Buffer
				_ = tr.WriteTree(&b)
			}
		}(i)
	}
	wg.Wait()
	if tr.Len() != 1+8*50 {
		t.Errorf("spans: %d", tr.Len())
	}
}
