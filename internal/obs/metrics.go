package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels name one time series within a metric family. Metrics with
// the same name but different label sets are distinct series.
type Labels map[string]string

// signature renders labels canonically ({a="1",b="2"}, sorted keys)
// for map keys and the Prometheus exposition.
func (l Labels) signature() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind distinguishes the three instrument types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// family is one metric name: its help, type, and series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]any // label signature -> *Counter/*Gauge/*Histogram
	order  []string       // signatures in first-seen order (exposition re-sorts)
}

// Registry is a set of named metrics. Safe for concurrent use; the
// zero value is not usable, create registries with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the series for (name, labels),
// enforcing that a name is used with a single instrument type.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	sig := labels.signature()
	s, ok := f.series[sig]
	if !ok {
		s = mk()
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the monotonically increasing counter for
// (name, labels), creating it at zero on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the settable gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for (name, labels). Buckets are
// upper bounds in ascending order; they are fixed by the first call
// for a family (later bucket arguments are ignored). Nil buckets use
// DefaultTimeBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefaultTimeBuckets()
	}
	return r.lookup(name, help, kindHistogram, labels, func() any { return newHistogram(buckets) }).(*Histogram)
}

// DefaultTimeBuckets suit virtual-time durations, which range from
// sub-second SGE waits to multi-hour stage TTCs.
func DefaultTimeBuckets() []float64 {
	return []float64{1, 5, 15, 60, 300, 900, 3600, 14400, 43200}
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas panic (counters are
// monotonic by definition).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: counter add %v < 0", delta))
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can move both ways.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // per-bound (non-cumulative) counts
	infOver uint64    // observations above the last bound
	sum     float64
	total   uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.infOver++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// formatValue renders a sample the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// mergeLabels renders a signature with an extra le bound appended
// (for histogram bucket series).
func mergeLE(sig string, le float64) string {
	pair := fmt.Sprintf("le=%q", formatValue(le))
	if sig == "" {
		return "{" + pair + "}"
	}
	return sig[:len(sig)-1] + "," + pair + "}"
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic:
// families sorted by name, series by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		for _, sig := range sigs {
			switch m := f.series[sig].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatValue(m.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatValue(m.Value()))
			case *Histogram:
				m.mu.Lock()
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLE(sig, bound), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, mergeLE(sig, math.Inf(1)), m.total)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, sig, formatValue(m.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, sig, m.total)
				m.mu.Unlock()
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricPoint is one flattened sample, for machine-readable
// snapshots. Histograms flatten to _sum and _count points.
type MetricPoint struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// parseSignature inverts Labels.signature (signatures are produced
// only by that method, so the format is fixed).
func parseSignature(sig string) Labels {
	if sig == "" {
		return nil
	}
	out := Labels{}
	body := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		key := body[:eq]
		rest := body[eq+1:]
		val, err := strconv.QuotedPrefix(rest)
		if err != nil {
			break
		}
		unq, _ := strconv.Unquote(val)
		out[key] = unq
		body = strings.TrimPrefix(rest[len(val):], ",")
	}
	return out
}

// Points flattens every series to (name, labels, value) samples,
// sorted by name then label signature.
func (r *Registry) Points() []MetricPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []MetricPoint
	for _, n := range names {
		f := r.families[n]
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		for _, sig := range sigs {
			labels := parseSignature(sig)
			switch m := f.series[sig].(type) {
			case *Counter:
				out = append(out, MetricPoint{Name: f.name, Labels: labels, Value: m.Value()})
			case *Gauge:
				out = append(out, MetricPoint{Name: f.name, Labels: labels, Value: m.Value()})
			case *Histogram:
				out = append(out,
					MetricPoint{Name: f.name + "_sum", Labels: labels, Value: m.Sum()},
					MetricPoint{Name: f.name + "_count", Labels: labels, Value: float64(m.Count())})
			}
		}
	}
	return out
}
