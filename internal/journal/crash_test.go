package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture writes a small complete journal and returns its path
// and records.
func writeFixture(t *testing.T, n int) (string, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	rec, err := w.Append(Record{Kind: KindHeader, Seed: 7, Digest: "cfg"})
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, rec)
	for i := 1; i < n; i++ {
		payload := []byte(fmt.Sprintf(`{"unit":%d}`, i))
		rec, err := w.Append(Record{Kind: KindUnit, Stage: "PA",
			Unit: fmt.Sprintf("u-%d", i), VTime: float64(i),
			Digest: Digest(payload), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

// TestContinueRepairsTornTail: a crash mid-batch leaves half a record
// at the tail. Continue truncates back to the last chain-verified
// record, reports the repair, and the journal accepts appends again.
func TestContinueRepairsTornTail(t *testing.T) {
	path, recs := writeFixture(t, 5)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastNL := bytes.LastIndexByte(b[:len(b)-1], '\n')
	torn := b[:lastNL+1+12] // 12 bytes of the final record: mid-JSON
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	lg, w, err := Continue(path)
	if err != nil {
		t.Fatalf("continue over torn tail: %v", err)
	}
	if len(lg.Records) != len(recs)-1 {
		t.Fatalf("continued with %d records, want %d (torn record dropped)", len(lg.Records), len(recs)-1)
	}
	if lg.Repair == nil || lg.Repair.TruncatedBytes != 12 {
		t.Fatalf("repair = %v, want 12 truncated bytes", lg.Repair)
	}
	if _, err := w.Append(Record{Kind: KindComplete, Note: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Open(path)
	if err != nil {
		t.Fatalf("repaired journal does not verify strictly: %v", err)
	}
	if got := len(final.Records); got != len(recs) {
		t.Fatalf("final journal has %d records, want %d", got, len(recs))
	}
	if vr, err := Verify(path); err != nil || !vr.Clean() {
		t.Fatalf("verify after repair: %v, %s", err, vr)
	}
}

// TestContinueRepairsMissingNewline is THE bug this issue exists for:
// a final record that lost only its trailing newline used to be
// accepted as-is, and the next O_APPEND write fused onto the same
// line ("...}{"seq":..."), wrecking the journal. Continue must
// restore the newline before appending.
func TestContinueRepairsMissingNewline(t *testing.T) {
	path, recs := writeFixture(t, 4)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}

	lg, w, err := Continue(path)
	if err != nil {
		t.Fatalf("continue over newline-less tail: %v", err)
	}
	if len(lg.Records) != len(recs) {
		t.Fatalf("continued with %d records, want %d (final record is intact)", len(lg.Records), len(recs))
	}
	if lg.Repair == nil || !lg.Repair.RepairedNewline {
		t.Fatalf("repair = %v, want repaired newline", lg.Repair)
	}
	if _, err := w.Append(Record{Kind: KindComplete, Note: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("}{")) {
		t.Fatal("records fused onto one line: the newline repair did not happen")
	}
	final, err := Open(path)
	if err != nil {
		t.Fatalf("repaired journal does not verify strictly: %v", err)
	}
	if got := len(final.Records); got != len(recs)+1 {
		t.Fatalf("final journal has %d records, want %d", got, len(recs)+1)
	}
}

// TestVerifyPinpointsTamperedRecord: flipping one byte inside a
// committed record makes Verify name exactly that record's seq, and
// Continue resumes at the verified prefix before it.
func TestVerifyPinpointsTamperedRecord(t *testing.T) {
	path, recs := writeFixture(t, 6)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper inside record 3: find its line and flip a payload byte.
	lines := bytes.SplitAfter(b, []byte("\n"))
	tampered := bytes.Replace(lines[3], []byte(`"unit":3`), []byte(`"unit":9`), 1)
	if bytes.Equal(tampered, lines[3]) {
		t.Fatal("fixture: tamper target not found")
	}
	lines[3] = tampered
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	vr, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Clean() || vr.BadSeq != 3 {
		t.Fatalf("verify = %s, want first bad seq 3", vr)
	}
	if vr.Records != 3 {
		t.Fatalf("verify reports %d verified records, want 3", vr.Records)
	}

	lg, w, err := Continue(path)
	if err != nil {
		t.Fatalf("continue over tampered tail: %v", err)
	}
	defer w.Close()
	if len(lg.Records) != 3 {
		t.Fatalf("continued with %d records, want the 3 before the tamper", len(lg.Records))
	}
	if lg.Repair == nil || lg.Repair.TruncatedBytes == 0 {
		t.Fatalf("repair = %v, want truncated tail", lg.Repair)
	}
	for i, rec := range lg.Records {
		if rec.Chain != recs[i].Chain {
			t.Fatalf("record %d chain drifted across repair", i)
		}
	}
}

// TestVerifyDetectsAnySingleByteFlip is the acceptance sweep: every
// single-byte flip anywhere in a committed journal must make Verify
// report damage.
func TestVerifyDetectsAnySingleByteFlip(t *testing.T) {
	path, _ := writeFixture(t, 4)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(t.TempDir(), "flipped.journal")
	for i := range orig {
		mut := append([]byte{}, orig...)
		mut[i] ^= 0x01
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		vr, err := Verify(flipped)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if vr.Clean() {
			t.Fatalf("flipping byte %d (%q) went undetected", i, orig[i])
		}
	}
}

// TestInspectDoesNotMutate: the tolerant read reports damage without
// touching the file; only Continue repairs.
func TestInspectDoesNotMutate(t *testing.T) {
	path, _ := writeFixture(t, 3)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Repair == nil || !lg.Repair.RepairedNewline {
		t.Fatalf("inspect repair = %v, want missing-newline report", lg.Repair)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("Inspect modified the journal")
	}
}

// TestContinueRefusesAllDamaged: a journal with no verifiable prefix
// at all is not silently reset.
func TestContinueRefusesAllDamaged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	if err := os.WriteFile(path, []byte("garbage, not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Continue(path); err == nil || !strings.Contains(err.Error(), "no verifiable records") {
		t.Fatalf("continue over garbage returned %v, want no-verifiable-records error", err)
	}
}
