package journal

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func eventRec(i int) Record {
	return Record{Kind: KindEvent, Note: fmt.Sprintf("run-%d", i%3),
		Payload: []byte(fmt.Sprintf(`{"i":%d}`, i))}
}

func openSeg(t *testing.T, dir string, rotate int) (*Segmented, []Record) {
	t.Helper()
	s, replay, err := OpenSegmented(dir, "events", SegmentedOptions{RotateEvery: rotate})
	if err != nil {
		t.Fatal(err)
	}
	return s, replay
}

// TestSegmentedRotationAndReplay: records rotate across chained
// segments and replay in order across a reopen.
func TestSegmentedRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, replay := openSeg(t, dir, 4)
	if len(replay) != 0 {
		t.Fatalf("fresh journal replays %d records", len(replay))
	}
	const n = 10
	for i := 0; i < n; i++ {
		rec := eventRec(i)
		rec.Digest = Digest(rec.Payload)
		if _, err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("10 records at rotate-4 produced %d segments, want ≥3", len(segs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, replay := openSeg(t, dir, 4)
	defer s2.Close()
	if len(replay) != n {
		t.Fatalf("replayed %d records, want %d", len(replay), n)
	}
	for i, rec := range replay {
		if string(rec.Payload) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("record %d replayed out of order: %s", i, rec.Payload)
		}
	}
	if _, err := s2.Append(eventRec(n)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestSegmentedDetectsMissingSegment: deleting a middle segment — the
// "truncated segment" crash shape — breaks the cross-segment chain.
func TestSegmentedDetectsMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSeg(t, dir, 3)
	for i := 0; i < 9; i++ {
		if _, err := s.Append(eventRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, have %d", len(segs))
	}
	s.Close()
	if err := os.Remove(s.segPath(segs[1])); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenSegmented(dir, "events", SegmentedOptions{RotateEvery: 3})
	if err == nil || !strings.Contains(err.Error(), "does not chain") {
		t.Fatalf("open over missing segment returned %v, want chain-break error", err)
	}
}

// TestSegmentedDetectsTruncatedMiddleSegment: damage inside a
// non-last segment is not crash-shaped and must refuse, not repair.
func TestSegmentedDetectsTruncatedMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSeg(t, dir, 3)
	for i := 0; i < 9; i++ {
		if _, err := s.Append(eventRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	mid := s.segPath(segs[1])
	st, err := os.Stat(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(mid, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenSegmented(dir, "events", SegmentedOptions{RotateEvery: 3})
	if err == nil || !strings.Contains(err.Error(), "segment") {
		t.Fatalf("open over truncated middle segment returned %v, want segment error", err)
	}
}

// TestSegmentedRepairsTornLastSegment: a torn tail on the last
// segment is crash-shaped and repaired like a pipeline journal's.
func TestSegmentedRepairsTornLastSegment(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSeg(t, dir, 100)
	for i := 0; i < 5; i++ {
		if _, err := s.Append(eventRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := s.segPath(0)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	s2, replay := openSeg(t, dir, 100)
	defer s2.Close()
	if len(replay) != 4 {
		t.Fatalf("replayed %d records after torn tail, want 4 (last record torn away)", len(replay))
	}
	if _, err := s2.Append(eventRec(9)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

// TestSegmentedCompact: compaction folds history into one snapshot
// segment, deletes the rest, and replay returns just the snapshot.
func TestSegmentedCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSeg(t, dir, 3)
	for i := 0; i < 9; i++ {
		if _, err := s.Append(eventRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := []Record{eventRec(100), eventRec(101)}
	if err := s.Compact(snapshot); err != nil {
		t.Fatal(err)
	}
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("after compaction %d segments remain, want 1", len(segs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, replay := openSeg(t, dir, 3)
	defer s2.Close()
	if len(replay) != len(snapshot) {
		t.Fatalf("replayed %d records after compaction, want %d", len(replay), len(snapshot))
	}
	for i, rec := range replay {
		if string(rec.Payload) != string(snapshot[i].Payload) {
			t.Fatalf("snapshot record %d did not round-trip", i)
		}
	}
}
