package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultRotateEvery is the per-segment record bound when the caller
// does not choose one.
const DefaultRotateEvery = 512

// SegmentedOptions tunes a segmented journal.
type SegmentedOptions struct {
	// RotateEvery caps the records per segment (header included)
	// before appends rotate to a fresh segment. <= 0 means
	// DefaultRotateEvery.
	RotateEvery int
	// Write is forwarded to each segment's Writer.
	Write Options
}

// Segmented is a journal for long-lived tables (the gateway's event
// log): records rotate across chained segment files
// <dir>/<prefix>-NNNNNN.journal, and Compact folds history into a
// snapshot segment so the directory does not grow without bound.
//
// Each segment is an ordinary journal — independently chain-verified
// from its own header — and segments link: a segment's header record
// carries the previous segment's chain head in its Digest field, so
// a missing or reordered segment breaks verification just like a
// tampered record does inside one.
//
// Appends are serialized (callers that need cross-record ordering,
// like last-wins replay, rely on that); the group-commit batching of
// the underlying Writer therefore pays off for concurrent pipeline
// journals, not here.
type Segmented struct {
	dir    string
	prefix string
	opts   SegmentedOptions

	mu    sync.Mutex
	w     *Writer
	index int // current segment index
	count int // records in the current segment, header included
}

func (s *Segmented) segPath(index int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%06d.journal", s.prefix, index))
}

// segmentIndices lists the existing segment indices under dir, sorted.
func segmentIndices(dir, prefix string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix+"-") || !strings.HasSuffix(name, ".journal") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix+"-"), ".journal"))
		if err != nil || n < 0 {
			continue
		}
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// OpenSegmented opens (creating dir if needed) the segmented journal
// <dir>/<prefix>-*.journal and returns it along with every surviving
// non-header record across segments, in append order, for replay.
//
// Segments before the last are read strictly — damage there is not
// crash-shaped and is an error — and each must chain to its
// predecessor's head. The last segment may carry a torn tail from a
// crashed writer; it is repaired the way Continue repairs a pipeline
// journal. A last segment with no verifiable records at all (a crash
// inside rotation, before its header was durable) is set aside as
// <segment>.damaged and replaced, unless it is the only segment — an
// event log reduced to nothing but damage needs an operator, not a
// silent reset.
func OpenSegmented(dir, prefix string, opts SegmentedOptions) (*Segmented, []Record, error) {
	if opts.RotateEvery <= 0 {
		opts.RotateEvery = DefaultRotateEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Segmented{dir: dir, prefix: prefix, opts: opts}
	idxs, err := segmentIndices(dir, prefix)
	if err != nil {
		return nil, nil, err
	}
	if len(idxs) == 0 {
		if err := s.newSegmentLocked(0, ""); err != nil {
			return nil, nil, err
		}
		return s, nil, nil
	}
	var replay []Record
	prevHead := ""
	for i, idx := range idxs[:len(idxs)-1] {
		lg, err := Open(s.segPath(idx))
		if err != nil {
			return nil, nil, fmt.Errorf("journal: segment %d: %w", idx, err)
		}
		if i > 0 && lg.Header().Digest != prevHead {
			return nil, nil, fmt.Errorf("journal: segment %d does not chain to segment %d (a segment is missing, truncated or reordered)",
				idx, idxs[i-1])
		}
		replay = append(replay, lg.Records[1:]...)
		prevHead = lg.ChainHead()
	}
	last := idxs[len(idxs)-1]
	lg, w, err := ContinueOptions(s.segPath(last), opts.Write)
	if err != nil {
		if len(idxs) == 1 {
			return nil, nil, fmt.Errorf("journal: segment %d: %w", last, err)
		}
		if rerr := os.Rename(s.segPath(last), s.segPath(last)+".damaged"); rerr != nil {
			return nil, nil, rerr
		}
		if err := s.newSegmentLocked(last, prevHead); err != nil {
			return nil, nil, err
		}
		return s, replay, nil
	}
	if len(idxs) > 1 && lg.Header().Digest != prevHead {
		w.Close() //rnavet:allow errdrop — error-path cleanup of a writer we never appended to; the chain-break error wins
		return nil, nil, fmt.Errorf("journal: segment %d does not chain to segment %d (a segment is missing, truncated or reordered)",
			last, idxs[len(idxs)-2])
	}
	replay = append(replay, lg.Records[1:]...)
	s.w, s.index, s.count = w, last, len(lg.Records)
	return s, replay, nil
}

// newSegmentLocked creates segment index and writes its header, whose
// Digest field records the previous segment's chain head (empty for a
// first segment). Caller holds s.mu or is initializing.
func (s *Segmented) newSegmentLocked(index int, prevHead string) error {
	w, err := CreateOptions(s.segPath(index), s.opts.Write)
	if err != nil {
		return err
	}
	if _, err := w.Append(Record{Kind: KindHeader, Note: fmt.Sprintf("segment %d", index), Digest: prevHead}); err != nil {
		w.Close() //rnavet:allow errdrop — error-path cleanup; the header append error wins and the segment is discarded
		return err
	}
	s.w, s.index, s.count = w, index, 1
	return nil
}

// Append appends one record, rotating to a fresh chained segment when
// the current one is full. Durable before it returns.
func (s *Segmented) Append(rec Record) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return rec, ErrClosed
	}
	if s.count >= s.opts.RotateEvery {
		if err := s.rotateLocked(); err != nil {
			return rec, err
		}
	}
	out, err := s.w.Append(rec) //rnavet:allow lockheld — appends are serialized under s.mu by design: rotation must not interleave with appends, and the inner writer's group commit bounds the hold
	if err == nil {
		s.count++
	}
	return out, err
}

func (s *Segmented) rotateLocked() error {
	head := s.w.ChainHead()
	if err := s.w.Close(); err != nil {
		return err
	}
	return s.newSegmentLocked(s.index+1, head)
}

// Compact folds the journal's history into a snapshot: the given
// records are written to a fresh segment chained after the current
// one, and once they are durable every older segment is deleted. A
// crash inside the deletion window leaves old segments alongside the
// snapshot; replay then sees some records twice, which last-wins
// callers tolerate, and the next Compact finishes the cleanup.
func (s *Segmented) Compact(snapshot []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ErrClosed
	}
	old, err := segmentIndices(s.dir, s.prefix)
	if err != nil {
		return err
	}
	if err := s.rotateLocked(); err != nil {
		return err
	}
	for _, rec := range snapshot {
		if _, err := s.w.Append(rec); err != nil { //rnavet:allow lockheld — the snapshot is written under s.mu by design so no concurrent append can land between rotation and cleanup
			return err
		}
		s.count++
	}
	for _, idx := range old {
		if idx < s.index {
			if err := os.Remove(s.segPath(idx)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ChainHead returns the chain head of the current segment.
func (s *Segmented) ChainHead() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return ""
	}
	return s.w.ChainHead()
}

// Segments returns the indices of the existing segment files, sorted.
func (s *Segmented) Segments() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return segmentIndices(s.dir, s.prefix)
}

// Close closes the current segment's writer. Safe to call more than
// once.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close() //rnavet:allow lockheld — Close must exclude concurrent Append on the same segment; the final flush is the only work under the lock
	s.w = nil
	return err
}
