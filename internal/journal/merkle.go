package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Merkle commitments over journal records, RFC 6962-shaped: leaves
// and interior nodes are domain-separated (0x00 / 0x01 prefixes) and
// an odd node at any level is promoted unpaired to the next. The
// linear hash chain (chain.go) proves ordering and detects torn
// tails; the Merkle tree is the complement for *auditing*: a root is
// a compact commitment to the whole record set, and an inclusion
// proof shows one record belongs to it in O(log n) hashes — what the
// gateway's GET /api/runs/{id}/proof serves so a user can pin a run's
// provenance without downloading the journal.

func leafHash(body []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(body)
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func nodeHash(left, right [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// emptyRoot commits to "no records" distinctly from any record set.
func emptyRoot() [sha256.Size]byte {
	return sha256.Sum256([]byte(Schema + "/empty-tree"))
}

// leaves computes the Merkle leaves of the log's records.
func (l *Log) leaves() ([][sha256.Size]byte, error) {
	out := make([][sha256.Size]byte, len(l.Records))
	for i, rec := range l.Records {
		body, err := chainBody(rec)
		if err != nil {
			return nil, fmt.Errorf("journal: record %d: re-marshal: %w", i, err)
		}
		out[i] = leafHash(body)
	}
	return out, nil
}

func merkleRoot(level [][sha256.Size]byte) [sha256.Size]byte {
	if len(level) == 0 {
		return emptyRoot()
	}
	for len(level) > 1 {
		var next [][sha256.Size]byte
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// Root returns the Merkle root over the log's records, hex-encoded.
func (l *Log) Root() string {
	leaves, err := l.leaves()
	if err != nil {
		// A record that unmarshalled cannot fail to re-marshal; keep
		// the accessor ergonomic and let Proof surface real errors.
		return ""
	}
	root := merkleRoot(leaves)
	return hex.EncodeToString(root[:])
}

// ProofStep is one audit-path element: the sibling hash and which
// side of the running hash it combines on.
type ProofStep struct {
	Hash string `json:"hash"`
	// Right is true when the sibling sits to the right of the running
	// hash (running hash is the left child).
	Right bool `json:"right"`
}

// Proof is a self-contained inclusion proof: folding Leaf through
// Audit must reproduce Root, and ChainHead lets the verifier tie the
// root to the chain head they pinned when the proof was issued.
type Proof struct {
	Seq       int         `json:"seq"`
	Records   int         `json:"records"`
	Leaf      string      `json:"leaf"`
	Audit     []ProofStep `json:"audit"`
	Root      string      `json:"root"`
	ChainHead string      `json:"chainHead"`
}

// Proof builds the inclusion proof for record seq.
func (l *Log) Proof(seq int) (Proof, error) {
	if seq < 0 || seq >= len(l.Records) {
		return Proof{}, fmt.Errorf("journal: proof: seq %d out of range [0,%d)", seq, len(l.Records))
	}
	leaves, err := l.leaves()
	if err != nil {
		return Proof{}, err
	}
	p := Proof{
		Seq:       seq,
		Records:   len(l.Records),
		Leaf:      hex.EncodeToString(leaves[seq][:]),
		ChainHead: l.ChainHead(),
	}
	level, i := leaves, seq
	for len(level) > 1 {
		var next [][sha256.Size]byte
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, nodeHash(level[j], level[j+1]))
			} else {
				next = append(next, level[j])
			}
		}
		sib := i ^ 1
		if sib < len(level) {
			p.Audit = append(p.Audit, ProofStep{
				Hash:  hex.EncodeToString(level[sib][:]),
				Right: sib > i,
			})
		}
		i /= 2
		level = next
	}
	p.Root = hex.EncodeToString(level[0][:])
	return p, nil
}

// RecordLeaf computes the Merkle leaf of a record an auditor holds,
// for comparison against Proof.Leaf.
func RecordLeaf(rec Record) (string, error) {
	body, err := chainBody(rec)
	if err != nil {
		return "", err
	}
	sum := leafHash(body)
	return hex.EncodeToString(sum[:]), nil
}

// VerifyInclusion checks that folding the proof's leaf through its
// audit path reproduces its root.
func VerifyInclusion(p Proof) error {
	cur, err := hex.DecodeString(p.Leaf)
	if err != nil || len(cur) != sha256.Size {
		return fmt.Errorf("journal: proof: bad leaf %q", p.Leaf)
	}
	var running [sha256.Size]byte
	copy(running[:], cur)
	for i, step := range p.Audit {
		sib, err := hex.DecodeString(step.Hash)
		if err != nil || len(sib) != sha256.Size {
			return fmt.Errorf("journal: proof: bad audit step %d", i)
		}
		var s [sha256.Size]byte
		copy(s[:], sib)
		if step.Right {
			running = nodeHash(running, s)
		} else {
			running = nodeHash(s, running)
		}
	}
	if got := hex.EncodeToString(running[:]); got != p.Root {
		return fmt.Errorf("journal: proof does not verify: audit path folds to %.12s…, root is %.12s…", got, p.Root)
	}
	return nil
}
