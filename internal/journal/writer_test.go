package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingSink counts syncs and models fsync latency with a sleep, so
// amortization shows up in both the sync count and the elapsed time
// without touching a real disk.
type countingSink struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	syncs atomic.Int64
	delay time.Duration
}

func (c *countingSink) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *countingSink) sync() error {
	c.syncs.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return nil
}

// appendStorm runs goroutines×perG concurrent appends and returns the
// sync count and elapsed time.
func appendStorm(t *testing.T, batch, goroutines, perG int) (int64, time.Duration, *countingSink) {
	t.Helper()
	sink := &countingSink{delay: time.Millisecond}
	w := NewSyncedWriter(sink, sink.sync, Options{BatchSize: batch})
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := w.Append(Record{Kind: KindUnit, Unit: fmt.Sprintf("g%d-%d", g, i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.syncs.Load(), elapsed, sink
}

// TestGroupCommitAmortizesSyncs is the throughput acceptance: at
// batch size 64 under concurrent appenders, appends-per-fsync (and
// with fsync latency modelled, throughput) beat the per-append-fsync
// baseline by ≥4×.
func TestGroupCommitAmortizesSyncs(t *testing.T) {
	// Concurrency on the order of the batch size, so a full batch can
	// actually form while the baseline's fsyncs serialize.
	const goroutines, perG = 64, 4
	const total = goroutines * perG

	baseSyncs, baseElapsed, baseSink := appendStorm(t, 1, goroutines, perG)
	batchSyncs, batchElapsed, batchSink := appendStorm(t, 64, goroutines, perG)

	if baseSyncs != total {
		t.Fatalf("batch-1 baseline issued %d syncs for %d appends", baseSyncs, total)
	}
	if batchSyncs*4 > baseSyncs {
		t.Errorf("batch-64 issued %d syncs vs baseline %d: amortization under 4×", batchSyncs, baseSyncs)
	}
	ratio := float64(baseElapsed) / float64(batchElapsed)
	t.Logf("syncs %d→%d, elapsed %v→%v (%.1f× throughput)", baseSyncs, batchSyncs, baseElapsed, batchElapsed, ratio)
	if ratio < 4 {
		t.Errorf("throughput ratio %.1f×, want ≥4×", ratio)
	}

	// Same record count durable either way.
	if n := bytes.Count(baseSink.buf.Bytes(), []byte("\n")); n != total {
		t.Errorf("batch-1 sink holds %d records, want %d", n, total)
	}
	if n := bytes.Count(batchSink.buf.Bytes(), []byte("\n")); n != total {
		t.Errorf("batch-64 sink holds %d records, want %d", n, total)
	}
}

// TestBatchSizeDoesNotChangeBytes: for a serial appender the journal
// bytes are identical at any batch size — batching changes when
// fsyncs happen, never what is written.
func TestBatchSizeDoesNotChangeBytes(t *testing.T) {
	write := func(batch int) []byte {
		path := filepath.Join(t.TempDir(), "run.journal")
		w, err := CreateOptions(path, Options{BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		for i, kind := range []string{KindHeader, KindStageStart, KindUnit, KindComplete} {
			if _, err := w.Append(Record{Kind: kind, VTime: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b8, b64 := write(1), write(8), write(64)
	if !bytes.Equal(b1, b8) || !bytes.Equal(b1, b64) {
		t.Fatal("journal bytes vary with batch size")
	}
}

// failingSink errors from the Nth write on.
type failingSink struct {
	writes int
	failAt int
}

func (f *failingSink) Write(p []byte) (int, error) {
	f.writes++
	if f.writes >= f.failAt {
		return 0, errors.New("disk on fire")
	}
	return len(p), nil
}

// TestWriterFailStop pins the poison contract: after the first append
// error the writer is dead, and later appends surface the original
// error instead of writing after possibly-partial bytes.
func TestWriterFailStop(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "sync"
		if batched {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			sink := &failingSink{failAt: 2}
			var w *Writer
			if batched {
				w = NewSyncedWriter(sink, func() error { return nil }, Options{BatchSize: 1})
			} else {
				w = NewWriter(sink)
			}
			defer w.Close()
			if _, err := w.Append(Record{Kind: KindHeader}); err != nil {
				t.Fatalf("first append: %v", err)
			}
			_, err := w.Append(Record{Kind: KindUnit})
			if err == nil || !strings.Contains(err.Error(), "disk on fire") {
				t.Fatalf("second append: %v, want the sink error", err)
			}
			first := err
			for i := 0; i < 3; i++ {
				_, err := w.Append(Record{Kind: KindUnit})
				if err == nil || !strings.Contains(err.Error(), "disk on fire") {
					t.Fatalf("append after poison: %v, want the original error", err)
				}
				if !strings.Contains(first.Error(), "disk on fire") {
					t.Fatalf("poisoned error drifted: %v vs %v", err, first)
				}
			}
			if w.Err() == nil {
				t.Fatal("Err() nil on a poisoned writer")
			}
			if sink.writes != 2 {
				t.Fatalf("sink saw %d writes after poison, want 2", sink.writes)
			}
		})
	}
}

// TestWriterFailStopOnSyncError: an fsync failure poisons just like a
// write failure — the bytes may or may not be durable, so the writer
// must not continue.
func TestWriterFailStopOnSyncError(t *testing.T) {
	var sunk int
	w := NewSyncedWriter(io.Discard, func() error {
		sunk++
		if sunk >= 2 {
			return errors.New("EIO")
		}
		return nil
	}, Options{BatchSize: 1})
	defer w.Close()
	if _, err := w.Append(Record{Kind: KindHeader}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if _, err := w.Append(Record{Kind: KindUnit}); err == nil || !strings.Contains(err.Error(), "EIO") {
		t.Fatalf("append across failing sync: %v, want EIO", err)
	}
	if _, err := w.Append(Record{Kind: KindUnit}); err == nil || !strings.Contains(err.Error(), "EIO") {
		t.Fatalf("append after poison: %v, want the original EIO", err)
	}
}

// TestAppendAfterClose returns ErrClosed.
func TestAppendAfterClose(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := w.Append(Record{Kind: KindHeader}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// TestLargePayloadRoundTrip: payloads beyond bufio.Scanner's default
// 64 KiB token cap — which used to fail the read with an opaque
// "token too long" — round-trip through the bufio.Reader line loop.
func TestLargePayloadRoundTrip(t *testing.T) {
	big := make([]byte, 0, 1<<20+64)
	big = append(big, `{"blob":"`...)
	for len(big) < 1<<20 {
		big = append(big, "0123456789abcdef"...)
	}
	big = append(big, `"}`...)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Append(Record{Kind: KindHeader}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Kind: KindUnit, Digest: Digest(big), Payload: big}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lg, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read 1 MiB payload: %v", err)
	}
	if !bytes.Equal(lg.Records[1].Payload, big) {
		t.Fatal("large payload did not round-trip")
	}
}

// TestMaxWaitFillsBatches: with a positive MaxWait the flusher
// lingers for stragglers; the test only pins that appends still
// complete and syncs stay below one-per-append.
func TestMaxWaitFillsBatches(t *testing.T) {
	sink := &countingSink{}
	w := NewSyncedWriter(sink, sink.sync, Options{BatchSize: 16, MaxWait: 2 * time.Millisecond})
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append(Record{Kind: KindUnit, Unit: fmt.Sprintf("u%d", i)}); err != nil {
				t.Errorf("append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(sink.buf.Bytes(), []byte("\n")); got != n {
		t.Fatalf("sink holds %d records, want %d", got, n)
	}
	if s := sink.syncs.Load(); s >= n {
		t.Errorf("%d syncs for %d appends: MaxWait window never batched", s, n)
	}
}
