// Package journal implements a deterministic, tamper-evident
// write-ahead run journal.
//
// A journal is a sequence of JSON lines, one Record per line. The
// pipeline appends a record at every stage boundary and at every unit
// completion, capturing the virtual clock, the accrued cost and a
// digest of the stage artifacts; each append is durable (flushed and,
// when file-backed, fsynced) before Append returns, so the prefix on
// disk is always a consistent cut of the run. Resuming replays that
// prefix — completed units return their journaled results instead of
// re-executing — and then continues appending, so the journal of a
// crashed-and-resumed run converges to the record sequence of an
// uninterrupted one.
//
// Two mechanisms make the journal production-shaped:
//
//   - Group commit. Concurrent Append calls coalesce into one
//     write+fsync (see Options.BatchSize / Options.MaxWait), so the
//     per-append durability contract is unchanged while the fsync
//     cost is amortized across appenders. A writer that hits a
//     write or sync error is poisoned: every later Append returns
//     the original error instead of appending after possibly-partial
//     bytes (fail-stop).
//
//   - A hash chain. Every record's chain digest (SHA-256) covers its
//     own content and the previous record's chain digest, so any
//     single-byte change to a committed record breaks verification
//     from that record onward. The chain makes torn-tail handling
//     principled: Continue truncates a torn or newline-less tail to
//     the last chain-verified record instead of refusing to resume
//     or silently fusing records, Verify pinpoints the first bad
//     sequence number, and per-log Merkle roots provide compact
//     inclusion proofs (Log.Proof) for auditable run provenance.
//
// Long-lived callers (the gateway's event log) use Segmented, which
// rotates records across chained segment files and compacts obsolete
// segments so the journal directory does not grow without bound.
//
// The package is deliberately free of pipeline knowledge: records
// carry opaque payloads, and the replay semantics live in the caller
// (internal/core for the pipeline, internal/gateway for the run
// table).
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// Schema identifies the journal line format.
const Schema = "rnascale.journal/v2"

// Record kinds, in the order they appear in a complete journal.
const (
	KindHeader     = "header"      // first record: config digest + fault seed
	KindStageStart = "stage-start" // a pipeline stage began
	KindUnit       = "unit"        // a compute unit completed (payload = its outputs)
	KindStageEnd   = "stage-end"   // a pipeline stage ended (digest = stage artifacts)
	KindComplete   = "complete"    // the run returned (note records the outcome)
	// KindCancelled marks a run cut off at its virtual-time deadline or
	// cancellation point (note records the outcome class); it precedes
	// the complete record in a cancelled run's journal.
	KindCancelled = "cancelled"
	// KindEvent is a generic state-transition record for journals that
	// log a table rather than a pipeline (the gateway's event log).
	KindEvent = "event"
)

// Record is one journal line. VTime and CostUSD snapshot the virtual
// clock and the accrued bill at the moment the record was written;
// for unit records VTime is the unit's virtual completion time.
// Chain is stamped by the Writer (callers leave it empty): the
// SHA-256 hash chain digest covering this record's content and the
// previous record's chain digest. It must be the last field so the
// Writer can splice it into the marshalled body.
type Record struct {
	Seq             int             `json:"seq"`
	Kind            string          `json:"kind"`
	Stage           string          `json:"stage,omitempty"`
	Unit            string          `json:"unit,omitempty"`
	VTime           float64         `json:"vtime"`
	CostUSD         float64         `json:"costUSD"`
	DurationSeconds float64         `json:"durationSeconds,omitempty"`
	PeakMemoryGB    float64         `json:"peakMemoryGB,omitempty"`
	Seed            uint64          `json:"seed,omitempty"`
	Digest          string          `json:"digest,omitempty"`
	Note            string          `json:"note,omitempty"`
	Payload         json.RawMessage `json:"payload,omitempty"`
	Chain           string          `json:"chain,omitempty"`
}

// Digest returns the content digest used for journal payloads and
// stage artifacts: 64-bit FNV-1a in hex. The tamper-evidence story
// does not rest on it — that is the SHA-256 chain — it is the cheap
// per-payload checksum core's replay verification compares.
func Digest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Log is a journal read back from storage.
type Log struct {
	Records []Record
	// Repair is non-nil when a tolerant open (Inspect, Continue) found
	// tail damage: it describes what was dropped or fixed. Strict
	// reads (Open, Read) never set it — they error instead.
	Repair *Repair
}

// Repair describes the damage a tolerant open found at a journal's
// tail and, for Continue, repaired in place.
type Repair struct {
	// TruncatedBytes counts unverifiable trailing bytes beyond the
	// last chain-verified record (a torn write, or a tampered suffix).
	TruncatedBytes int `json:"truncatedBytes,omitempty"`
	// RepairedNewline is set when the final record was intact but had
	// lost its trailing newline (a crash between the payload write and
	// the newline reaching disk would otherwise fuse the next append
	// onto the same line).
	RepairedNewline bool `json:"repairedNewline,omitempty"`
	// Reason is the verification failure that ended the verified
	// prefix, empty when only the newline was missing.
	Reason string `json:"reason,omitempty"`
}

func (r *Repair) String() string {
	if r == nil {
		return "clean"
	}
	if r.RepairedNewline {
		return "restored missing final newline"
	}
	return fmt.Sprintf("truncated %d unverifiable tail bytes (%s)", r.TruncatedBytes, r.Reason)
}

// Open reads the journal at path strictly: any damage — a torn tail,
// a missing newline, a broken chain — is an error. Use Inspect for a
// tolerant read or Continue to repair and resume.
func Open(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a journal from r, verifying sequence numbers, payload
// digests and the hash chain of every record. The line loop reads
// through a bufio.Reader, not a Scanner, so records are not subject
// to any token-size cap; read and verification errors name the
// record index they occurred at.
func Read(r io.Reader) (*Log, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var recs []Record
	prev := ChainSeed()
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("journal: record %d: read: %w", len(recs), err)
		}
		line = bytes.TrimSuffix(line, []byte("\n"))
		if len(line) == 0 {
			if atEOF {
				break
			}
			return nil, fmt.Errorf("journal: record %d: blank line", len(recs))
		}
		rec, err := verifyLine(line, len(recs), prev)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		prev = rec.Chain
		if atEOF {
			break
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal: empty")
	}
	if recs[0].Kind != KindHeader {
		return nil, fmt.Errorf("journal: first record is %q, want %q", recs[0].Kind, KindHeader)
	}
	return &Log{Records: recs}, nil
}

// Inspect reads the journal at path tolerantly: the chain-verified
// prefix is returned and any damaged tail is reported in Log.Repair
// instead of failing the read. The file is not modified (Continue is
// the mutating variant). Inspect fails only when no verifiable
// record prefix exists at all.
func Inspect(path string) (*Log, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := scan(b)
	return res.log(path)
}

// scanResult is the outcome of a tolerant scan over journal bytes.
type scanResult struct {
	recs []Record
	// goodEnd is the byte offset just past the last chain-verified
	// record (past its newline when it had one).
	goodEnd int
	// missingNewline is set when the final verified record reached
	// goodEnd without a trailing newline.
	missingNewline bool
	// reason is the verification failure that ended the prefix, empty
	// when the whole input verified.
	reason string
	total  int
}

// scan walks journal bytes, verifying records until the first
// failure. Everything after the last verified record is the
// (possibly empty) damaged tail.
func scan(b []byte) scanResult {
	res := scanResult{total: len(b)}
	prev := ChainSeed()
	off := 0
	for off < len(b) {
		nl := bytes.IndexByte(b[off:], '\n')
		var line []byte
		complete := nl >= 0
		if complete {
			line = b[off : off+nl]
		} else {
			line = b[off:]
		}
		if len(line) == 0 {
			res.reason = fmt.Sprintf("record %d: blank line", len(res.recs))
			return res
		}
		rec, err := verifyLine(line, len(res.recs), prev)
		if err != nil {
			res.reason = err.Error()
			return res
		}
		res.recs = append(res.recs, rec)
		prev = rec.Chain
		if complete {
			off += nl + 1
		} else {
			off = len(b)
			res.missingNewline = true
		}
		res.goodEnd = off
	}
	return res
}

// log folds a scan into a Log, failing when nothing verified.
func (res scanResult) log(path string) (*Log, error) {
	if len(res.recs) == 0 {
		if res.reason != "" {
			return nil, fmt.Errorf("journal: %s: no verifiable records (%s)", path, res.reason)
		}
		return nil, fmt.Errorf("journal: empty")
	}
	if res.recs[0].Kind != KindHeader {
		return nil, fmt.Errorf("journal: first record is %q, want %q", res.recs[0].Kind, KindHeader)
	}
	lg := &Log{Records: res.recs}
	if res.goodEnd < res.total || res.missingNewline {
		lg.Repair = &Repair{
			TruncatedBytes:  res.total - res.goodEnd,
			RepairedNewline: res.missingNewline,
			Reason:          res.reason,
		}
	}
	return lg, nil
}

// Header returns the journal's header record.
func (l *Log) Header() Record { return l.Records[0] }

// Complete reports whether the journal records a finished run (the
// run returned, successfully or not, and wrote its final record).
// A journal that is not complete belongs to an interrupted run and
// is resumable.
func (l *Log) Complete() bool {
	return l.Records[len(l.Records)-1].Kind == KindComplete
}

// ChainHead returns the chain digest of the journal's last record —
// the value an auditor pins to detect any later rewrite of history.
func (l *Log) ChainHead() string {
	if len(l.Records) == 0 {
		return ChainSeed()
	}
	return l.Records[len(l.Records)-1].Chain
}

// LastVTime returns the largest virtual time recorded in the journal.
// Records are appended in non-decreasing virtual-time order, but the
// maximum is taken defensively.
func (l *Log) LastVTime() float64 {
	var max float64
	for _, r := range l.Records {
		if r.VTime > max {
			max = r.VTime
		}
	}
	return max
}

// Units returns the number of unit-completion records in the journal.
func (l *Log) Units() int {
	n := 0
	for _, r := range l.Records {
		if r.Kind == KindUnit {
			n++
		}
	}
	return n
}
