// Package journal implements a deterministic write-ahead run journal.
//
// A journal is a sequence of JSON lines, one Record per line. The
// pipeline appends a record at every stage boundary and at every unit
// completion, capturing the virtual clock, the accrued cost and a
// digest of the stage artifacts; each append is flushed (and synced
// when file-backed) before the run proceeds, so the prefix on disk is
// always a consistent cut of the run. Resuming replays that prefix —
// completed units return their journaled results instead of
// re-executing — and then continues appending, so the journal of a
// crashed-and-resumed run converges to the record sequence of an
// uninterrupted one.
//
// The package is deliberately free of pipeline knowledge: records
// carry opaque payloads, and the replay semantics live in the caller
// (internal/core for the pipeline, internal/gateway for the run
// table).
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"

	"rnascale/internal/obs/perf"
)

// Schema identifies the journal line format.
const Schema = "rnascale.journal/v1"

// Record kinds, in the order they appear in a complete journal.
const (
	KindHeader     = "header"      // first record: config digest + fault seed
	KindStageStart = "stage-start" // a pipeline stage began
	KindUnit       = "unit"        // a compute unit completed (payload = its outputs)
	KindStageEnd   = "stage-end"   // a pipeline stage ended (digest = stage artifacts)
	KindComplete   = "complete"    // the run returned (note records the outcome)
)

// Record is one journal line. VTime and CostUSD snapshot the virtual
// clock and the accrued bill at the moment the record was written;
// for unit records VTime is the unit's virtual completion time.
type Record struct {
	Seq             int             `json:"seq"`
	Kind            string          `json:"kind"`
	Stage           string          `json:"stage,omitempty"`
	Unit            string          `json:"unit,omitempty"`
	VTime           float64         `json:"vtime"`
	CostUSD         float64         `json:"costUSD"`
	DurationSeconds float64         `json:"durationSeconds,omitempty"`
	PeakMemoryGB    float64         `json:"peakMemoryGB,omitempty"`
	Seed            uint64          `json:"seed,omitempty"`
	Digest          string          `json:"digest,omitempty"`
	Note            string          `json:"note,omitempty"`
	Payload         json.RawMessage `json:"payload,omitempty"`
}

// Digest returns the content digest used for journal payloads and
// stage artifacts: 64-bit FNV-1a in hex.
func Digest(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Writer appends records to a journal. Appends are serialized and,
// when the journal is file-backed, synced to disk before returning:
// a record handed to Append survives a crash of the writer's process.
type Writer struct {
	mu   sync.Mutex
	w    io.Writer
	file *os.File // non-nil when file-backed; synced per append
	seq  int
}

// NewWriter returns a Writer over an arbitrary sink (no durability
// beyond the sink itself). Used by tests and in-memory callers.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Create creates (truncating) a file-backed journal at path.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{w: f, file: f}, nil
}

// Continue opens an existing journal for resumption: it reads the
// surviving prefix and returns it alongside a Writer that appends
// after it, numbering records where the prefix left off.
func Continue(path string) (*Log, *Writer, error) {
	lg, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return lg, &Writer{w: f, file: f, seq: len(lg.Records)}, nil
}

// Append stamps the record's sequence number, writes it as one JSON
// line and flushes it. The stamped record is returned.
func (w *Writer) Append(rec Record) (Record, error) {
	defer perf.Region("journal.append").End()
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.Seq = w.seq
	line, err := json.Marshal(rec)
	if err != nil {
		return rec, fmt.Errorf("journal: marshal record %d: %w", rec.Seq, err)
	}
	line = append(line, '\n')
	if _, err := w.w.Write(line); err != nil {
		return rec, fmt.Errorf("journal: append record %d: %w", rec.Seq, err)
	}
	if w.file != nil {
		if err := w.file.Sync(); err != nil {
			return rec, fmt.Errorf("journal: sync record %d: %w", rec.Seq, err)
		}
	}
	w.seq++
	return rec, nil
}

// Seq returns the sequence number the next Append will stamp.
func (w *Writer) Seq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close closes the underlying file, if any.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file != nil {
		return w.file.Close()
	}
	return nil
}

// Log is a journal read back from storage.
type Log struct {
	Records []Record
}

// Open reads the journal at path.
func Open(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a journal from r, verifying sequence numbers and the
// payload digest of every payload-bearing record.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var recs []Record
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("journal: record %d: %w", len(recs), err)
		}
		if rec.Seq != len(recs) {
			return nil, fmt.Errorf("journal: record %d carries seq %d", len(recs), rec.Seq)
		}
		if len(rec.Payload) > 0 {
			if got := Digest(rec.Payload); got != rec.Digest {
				return nil, fmt.Errorf("journal: record %d payload digest %s does not match stored %s",
					rec.Seq, got, rec.Digest)
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal: empty")
	}
	if recs[0].Kind != KindHeader {
		return nil, fmt.Errorf("journal: first record is %q, want %q", recs[0].Kind, KindHeader)
	}
	return &Log{Records: recs}, nil
}

// Header returns the journal's header record.
func (l *Log) Header() Record { return l.Records[0] }

// Complete reports whether the journal records a finished run (the
// run returned, successfully or not, and wrote its final record).
// A journal that is not complete belongs to an interrupted run and
// is resumable.
func (l *Log) Complete() bool {
	return l.Records[len(l.Records)-1].Kind == KindComplete
}

// LastVTime returns the largest virtual time recorded in the journal.
// Records are appended in non-decreasing virtual-time order, but the
// maximum is taken defensively.
func (l *Log) LastVTime() float64 {
	var max float64
	for _, r := range l.Records {
		if r.VTime > max {
			max = r.VTime
		}
	}
	return max
}

// Units returns the number of unit-completion records in the journal.
func (l *Log) Units() int {
	n := 0
	for _, r := range l.Records {
		if r.Kind == KindUnit {
			n++
		}
	}
	return n
}
