package journal

import (
	"strings"
	"testing"
)

// buildLog writes n records through a writer and reads them back.
func buildLog(t *testing.T, n int) *Log {
	t.Helper()
	path, _ := writeFixture(t, n)
	lg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestProofRoundTrip: for every record of logs of varied sizes
// (covering odd promotions), the inclusion proof verifies and its
// leaf matches the record's recomputed leaf.
func TestProofRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 9} {
		lg := buildLog(t, n)
		root := lg.Root()
		for seq := range lg.Records {
			p, err := lg.Proof(seq)
			if err != nil {
				t.Fatalf("n=%d seq=%d: %v", n, seq, err)
			}
			if p.Root != root {
				t.Fatalf("n=%d seq=%d: proof root %s, log root %s", n, seq, p.Root, root)
			}
			if err := VerifyInclusion(p); err != nil {
				t.Fatalf("n=%d seq=%d: %v", n, seq, err)
			}
			leaf, err := RecordLeaf(lg.Records[seq])
			if err != nil {
				t.Fatal(err)
			}
			if leaf != p.Leaf {
				t.Fatalf("n=%d seq=%d: RecordLeaf %s, proof leaf %s", n, seq, leaf, p.Leaf)
			}
		}
	}
}

// TestProofRejectsWrongRecord: a proof for record A does not verify a
// different record, and a mangled audit path fails.
func TestProofRejectsWrongRecord(t *testing.T) {
	lg := buildLog(t, 6)
	p, err := lg.Proof(2)
	if err != nil {
		t.Fatal(err)
	}
	otherLeaf, err := RecordLeaf(lg.Records[3])
	if err != nil {
		t.Fatal(err)
	}
	forged := p
	forged.Leaf = otherLeaf
	if err := VerifyInclusion(forged); err == nil {
		t.Fatal("proof verified a different record's leaf")
	}
	mangled := p
	mangled.Audit = append([]ProofStep(nil), p.Audit...)
	mangled.Audit[0].Right = !mangled.Audit[0].Right
	if err := VerifyInclusion(mangled); err == nil {
		t.Fatal("proof verified with a flipped audit step")
	}
}

// TestProofOutOfRange names the valid range.
func TestProofOutOfRange(t *testing.T) {
	lg := buildLog(t, 3)
	if _, err := lg.Proof(3); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("proof(3) over 3 records: %v", err)
	}
	if _, err := lg.Proof(-1); err == nil {
		t.Fatal("proof(-1) succeeded")
	}
}

// TestRootChangesWithAnyRecord: the root commits to every record.
func TestRootChangesWithAnyRecord(t *testing.T) {
	lg := buildLog(t, 5)
	root := lg.Root()
	for i := range lg.Records {
		mut := &Log{Records: append([]Record(nil), lg.Records...)}
		mut.Records[i].Note = "x"
		if mut.Root() == root {
			t.Fatalf("mutating record %d left the root unchanged", i)
		}
	}
	if (&Log{}).Root() == root {
		t.Fatal("empty log shares a root with a populated one")
	}
}

// TestVerifyReportsRootAndHead: Verify of an intact journal reports
// the same chain head and root as the parsed log.
func TestVerifyReportsRootAndHead(t *testing.T) {
	path, _ := writeFixture(t, 4)
	lg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !vr.Clean() {
		t.Fatalf("verify of intact journal: %s", vr)
	}
	if vr.ChainHead != lg.ChainHead() || vr.Root != lg.Root() {
		t.Fatalf("verify head/root (%s, %s) != log (%s, %s)", vr.ChainHead, vr.Root, lg.ChainHead(), lg.Root())
	}
}
