package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"shard":0}`)
	recs := []Record{
		{Kind: KindHeader, Seed: 42, Digest: "cfg", Note: "tiny"},
		{Kind: KindStageStart, Stage: "PA", VTime: 30},
		{Kind: KindUnit, Stage: "PA", Unit: "preprocess-0", VTime: 120.5, CostUSD: 0.25,
			DurationSeconds: 90.5, Digest: Digest(payload), Payload: payload},
		{Kind: KindStageEnd, Stage: "PA", VTime: 121, CostUSD: 0.25, Digest: "abc"},
		{Kind: KindComplete, VTime: 200, CostUSD: 0.5, Note: "ok"},
	}
	for i, rec := range recs {
		stamped, err := w.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if stamped.Seq != i {
			t.Fatalf("record %d stamped seq %d", i, stamped.Seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	lg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Records) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(lg.Records), len(recs))
	}
	if !lg.Complete() {
		t.Error("journal with complete record reports Complete()=false")
	}
	if got := lg.LastVTime(); got != 200 {
		t.Errorf("LastVTime = %v, want 200", got)
	}
	if got := lg.Units(); got != 1 {
		t.Errorf("Units = %d, want 1", got)
	}
	u := lg.Records[2]
	if string(u.Payload) != string(payload) || u.DurationSeconds != 90.5 {
		t.Errorf("unit record did not round-trip: %+v", u)
	}
	if h := lg.Header(); h.Seed != 42 || h.Digest != "cfg" {
		t.Errorf("header did not round-trip: %+v", h)
	}
}

func TestContinueAppendsAfterPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Kind: KindHeader}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Kind: KindStageStart, Stage: "PA"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	lg, w2, err := Continue(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Records) != 2 {
		t.Fatalf("prefix has %d records, want 2", len(lg.Records))
	}
	if lg.Complete() {
		t.Error("interrupted journal reports Complete()=true")
	}
	stamped, err := w2.Append(Record{Kind: KindComplete, Note: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if stamped.Seq != 2 {
		t.Errorf("continued append stamped seq %d, want 2", stamped.Seq)
	}
	w2.Close()

	full, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != 3 || !full.Complete() {
		t.Fatalf("continued journal has %d records complete=%v", len(full.Records), full.Complete())
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"empty", "", "empty"},
		{"garbage", "not json\n", "record 0"},
		{"no-header", `{"seq":0,"kind":"unit","vtime":0,"costUSD":0}` + "\n", "first record"},
		{"bad-seq", `{"seq":0,"kind":"header","vtime":0,"costUSD":0}` + "\n" +
			`{"seq":5,"kind":"stage-start","vtime":0,"costUSD":0}` + "\n", "carries seq 5"},
		{"bad-digest", `{"seq":0,"kind":"header","vtime":0,"costUSD":0}` + "\n" +
			`{"seq":1,"kind":"unit","vtime":0,"costUSD":0,"digest":"0000000000000000","payload":{"a":1}}` + "\n",
			"digest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader([]byte(tc.body)))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestTornTrailingLineIsAnError(t *testing.T) {
	// A crash between write and sync can leave a torn final line; Read
	// refuses it rather than silently resuming from ambiguous state.
	path := filepath.Join(t.TempDir(), "run.journal")
	body := `{"seq":0,"kind":"header","vtime":0,"costUSD":0}` + "\n" + `{"seq":1,"kind":"stage`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("torn journal opened without error")
	}
}

func TestDigestStable(t *testing.T) {
	if Digest([]byte("abc")) != Digest([]byte("abc")) {
		t.Error("digest not deterministic")
	}
	if Digest([]byte("abc")) == Digest([]byte("abd")) {
		t.Error("digest does not separate inputs")
	}
	if len(Digest(nil)) != 16 {
		t.Errorf("digest %q not 16 hex chars", Digest(nil))
	}
}
