package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"shard":0}`)
	recs := []Record{
		{Kind: KindHeader, Seed: 42, Digest: "cfg", Note: "tiny"},
		{Kind: KindStageStart, Stage: "PA", VTime: 30},
		{Kind: KindUnit, Stage: "PA", Unit: "preprocess-0", VTime: 120.5, CostUSD: 0.25,
			DurationSeconds: 90.5, Digest: Digest(payload), Payload: payload},
		{Kind: KindStageEnd, Stage: "PA", VTime: 121, CostUSD: 0.25, Digest: "abc"},
		{Kind: KindComplete, VTime: 200, CostUSD: 0.5, Note: "ok"},
	}
	for i, rec := range recs {
		stamped, err := w.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if stamped.Seq != i {
			t.Fatalf("record %d stamped seq %d", i, stamped.Seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	lg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Records) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(lg.Records), len(recs))
	}
	if !lg.Complete() {
		t.Error("journal with complete record reports Complete()=false")
	}
	if got := lg.LastVTime(); got != 200 {
		t.Errorf("LastVTime = %v, want 200", got)
	}
	if got := lg.Units(); got != 1 {
		t.Errorf("Units = %d, want 1", got)
	}
	u := lg.Records[2]
	if string(u.Payload) != string(payload) || u.DurationSeconds != 90.5 {
		t.Errorf("unit record did not round-trip: %+v", u)
	}
	if h := lg.Header(); h.Seed != 42 || h.Digest != "cfg" {
		t.Errorf("header did not round-trip: %+v", h)
	}
}

func TestContinueAppendsAfterPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Kind: KindHeader}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Record{Kind: KindStageStart, Stage: "PA"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	lg, w2, err := Continue(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Records) != 2 {
		t.Fatalf("prefix has %d records, want 2", len(lg.Records))
	}
	if lg.Complete() {
		t.Error("interrupted journal reports Complete()=true")
	}
	stamped, err := w2.Append(Record{Kind: KindComplete, Note: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if stamped.Seq != 2 {
		t.Errorf("continued append stamped seq %d, want 2", stamped.Seq)
	}
	w2.Close()

	full, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != 3 || !full.Complete() {
		t.Fatalf("continued journal has %d records complete=%v", len(full.Records), full.Complete())
	}
}

// chainedLine builds one stored journal line whose chain digest is
// valid for the record's (possibly deliberately wrong) content, so a
// test can reach the seq/digest checks without tripping the chain
// check first. It returns the line (newline included) and the
// record's chain digest for chaining the next line.
func chainedLine(t *testing.T, rec Record, prev string) ([]byte, string) {
	t.Helper()
	body, err := chainBody(rec)
	if err != nil {
		t.Fatal(err)
	}
	chain := chainNext(prev, body)
	return spliceChain(body, chain), chain
}

func TestReadRejectsCorruption(t *testing.T) {
	header, headChain := chainedLine(t, Record{Kind: KindHeader}, ChainSeed())
	noHeader, _ := chainedLine(t, Record{Kind: KindUnit}, ChainSeed())
	badSeq, _ := chainedLine(t, Record{Seq: 5, Kind: KindStageStart}, headChain)
	badDigest, _ := chainedLine(t, Record{Seq: 1, Kind: KindUnit,
		Digest: "0000000000000000", Payload: []byte(`{"a":1}`)}, headChain)
	// A record rewritten after commit keeps a stale chain digest.
	tampered, _ := chainedLine(t, Record{Seq: 1, Kind: KindStageStart, Stage: "PA"}, headChain)
	tampered = bytes.Replace(tampered, []byte(`"PA"`), []byte(`"PB"`), 1)

	cases := []struct {
		name, want string
		body       []byte
	}{
		{"empty", "empty", nil},
		{"garbage", "record 0", []byte("not json\n")},
		{"no-header", "first record", noHeader},
		{"bad-seq", "carries seq 5", append(append([]byte{}, header...), badSeq...)},
		{"bad-digest", "digest", append(append([]byte{}, header...), badDigest...)},
		{"tampered", "chain digest does not verify", append(append([]byte{}, header...), tampered...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestTornTrailingLineIsAnError(t *testing.T) {
	// A crash between write and sync can leave a torn final line; the
	// strict Open refuses it (Continue is the repairing path).
	path := filepath.Join(t.TempDir(), "run.journal")
	header, _ := chainedLine(t, Record{Kind: KindHeader}, ChainSeed())
	body := append(header, `{"seq":1,"kind":"stage`...)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("torn journal opened without error")
	}
}

func TestDigestStable(t *testing.T) {
	if Digest([]byte("abc")) != Digest([]byte("abc")) {
		t.Error("digest not deterministic")
	}
	if Digest([]byte("abc")) == Digest([]byte("abd")) {
		t.Error("digest does not separate inputs")
	}
	if len(Digest(nil)) != 16 {
		t.Errorf("digest %q not 16 hex chars", Digest(nil))
	}
}
