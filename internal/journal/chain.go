package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// The hash chain: record i's chain digest is
//
//	chain_i = SHA-256(chain_{i-1} || '\n' || body_i)
//
// where body_i is the record marshalled with its Chain field empty
// and chain_{-1} is ChainSeed(). Any single-byte change to a
// committed record changes its body, so its stored chain digest no
// longer verifies; recomputing it instead changes the input to every
// later record's digest, so the first unmodified successor fails.
// Tampering is therefore always localizable to a first bad sequence
// number (Verify), and rewriting the whole suffix moves the chain
// head, which an auditor pins externally (Log.ChainHead, the
// gateway's proof endpoint).

// ChainSeed returns the chain digest conceptually preceding record 0:
// the SHA-256 of the schema-qualified seed label, so journals of
// different schema versions can never splice.
func ChainSeed() string {
	sum := sha256.Sum256([]byte(Schema + "/chain-seed"))
	return hex.EncodeToString(sum[:])
}

// chainNext folds one record body into the chain.
func chainNext(prev string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(prev))
	h.Write([]byte{'\n'})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// chainBody marshals the record as the chain and Merkle leaves see
// it: with the Chain field empty. Because Chain is the struct's last
// field, the writer's spliced line is exactly this body with the
// chain appended, and an unmarshal/marshal round trip reproduces it
// byte-for-byte (encoding/json emits canonical shortest floats and
// preserves RawMessage payloads verbatim).
func chainBody(rec Record) ([]byte, error) {
	rec.Chain = ""
	return json.Marshal(rec)
}

// spliceChain turns a chainless marshalled body into the stored line
// by inserting the chain as the final JSON field. Equivalent to
// re-marshalling the record with Chain set, without the second pass.
func spliceChain(body []byte, chain string) []byte {
	line := make([]byte, 0, len(body)+len(chain)+12)
	line = append(line, body[:len(body)-1]...)
	line = append(line, `,"chain":"`...)
	line = append(line, chain...)
	line = append(line, '"', '}', '\n')
	return line
}

// splitChain undoes spliceChain on a stored line: it returns the raw
// chainless body and the chain digest. ok is false when the line does
// not end in a chain field.
func splitChain(line []byte) (body []byte, chain string, ok bool) {
	const suffixLen = len(`,"chain":""}`) + sha256.Size*2
	if len(line) < suffixLen {
		return nil, "", false
	}
	tail := line[len(line)-suffixLen:]
	if !bytes.HasPrefix(tail, []byte(`,"chain":"`)) || !bytes.HasSuffix(tail, []byte(`"}`)) {
		return nil, "", false
	}
	chain = string(tail[len(`,"chain":"`) : len(tail)-len(`"}`)])
	body = append(make([]byte, 0, len(line)-suffixLen+1), line[:len(line)-suffixLen]...)
	return append(body, '}'), chain, true
}

// verifyLine parses and verifies one journal line as record idx with
// the given predecessor chain digest. The chain is checked over the
// line's raw body bytes, not a re-marshalled record, so any raw
// single-byte change is detected — including ones json.Unmarshal
// would normalize away (a mangled field name parses as an ignored
// unknown field and would re-marshal back to the original body).
func verifyLine(line []byte, idx int, prev string) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, fmt.Errorf("journal: record %d: %w", idx, err)
	}
	if rec.Seq != idx {
		return rec, fmt.Errorf("journal: record %d carries seq %d", idx, rec.Seq)
	}
	if len(rec.Payload) > 0 {
		if got := Digest(rec.Payload); got != rec.Digest {
			return rec, fmt.Errorf("journal: record %d payload digest %s does not match stored %s",
				idx, got, rec.Digest)
		}
	}
	body, chain, ok := splitChain(line)
	if !ok {
		return rec, fmt.Errorf("journal: record %d has no chain digest", idx)
	}
	if want := chainNext(prev, body); chain != want {
		return rec, fmt.Errorf("journal: record %d chain digest does not verify (stored %.12s…, computed %.12s…): record tampered, reordered or torn",
			idx, chain, want)
	}
	return rec, nil
}

// VerifyResult is the forensic report of a chain verification pass.
type VerifyResult struct {
	// Records counts chain-verified records from the start.
	Records int `json:"records"`
	// BadSeq is the sequence number of the first record that failed
	// verification, -1 when the whole journal verifies. A torn
	// half-line counts as the record it would have been.
	BadSeq int `json:"badSeq"`
	// Reason is the first verification failure, empty when clean.
	Reason string `json:"reason,omitempty"`
	// TrailingBytes counts unverifiable bytes beyond the verified
	// prefix (0 when clean).
	TrailingBytes int `json:"trailingBytes,omitempty"`
	// MissingNewline notes a verified final record lacking its
	// newline — repairable damage, not corruption.
	MissingNewline bool `json:"missingNewline,omitempty"`
	// ChainHead is the chain digest of the last verified record.
	ChainHead string `json:"chainHead"`
	// Root is the Merkle root over the verified records' leaves —
	// the compact commitment inclusion proofs verify against.
	Root string `json:"root"`
}

// Clean reports whether every byte of the journal verified.
func (r VerifyResult) Clean() bool { return r.BadSeq < 0 && r.TrailingBytes == 0 && !r.MissingNewline }

func (r VerifyResult) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: %d records, chain head %.12s…, root %.12s…", r.Records, r.ChainHead, r.Root)
	}
	if r.BadSeq < 0 {
		return fmt.Sprintf("repairable: %d records verified, final newline missing", r.Records)
	}
	return fmt.Sprintf("damaged at seq %d: %s (%d verified records, %d unverifiable tail bytes)",
		r.BadSeq, r.Reason, r.Records, r.TrailingBytes)
}

// Verify checks the journal at path against its hash chain without
// modifying it, pinpointing the first bad sequence number when the
// chain breaks. The returned error covers I/O only; corruption is
// reported in the result.
func Verify(path string) (VerifyResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return VerifyResult{}, err
	}
	res := scan(b)
	vr := VerifyResult{
		Records:       len(res.recs),
		BadSeq:        -1,
		TrailingBytes: res.total - res.goodEnd,
		ChainHead:     ChainSeed(),
	}
	if res.goodEnd < res.total {
		vr.BadSeq = len(res.recs)
		vr.Reason = res.reason
	}
	vr.MissingNewline = res.missingNewline
	if len(res.recs) > 0 {
		vr.ChainHead = res.recs[len(res.recs)-1].Chain
	}
	vr.Root = (&Log{Records: res.recs}).Root()
	return vr, nil
}
