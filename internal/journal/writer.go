package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"rnascale/internal/obs/perf"
)

// DefaultBatchSize is the group-commit batch bound when the caller
// does not choose one: up to this many concurrent appends share one
// write+fsync.
const DefaultBatchSize = 64

// ErrClosed is returned by Append on a closed writer.
var ErrClosed = errors.New("journal: writer closed")

// Options tunes the group-commit window of a durable Writer.
type Options struct {
	// BatchSize caps the records coalesced into one write+fsync.
	// <= 0 means DefaultBatchSize; 1 degenerates to the classic
	// fsync-per-append writer.
	BatchSize int
	// MaxWait is how long a flush lingers to fill its batch after the
	// first record arrives. Zero (the default) flushes whatever has
	// queued the moment the flusher is free — batching then emerges
	// naturally under contention (appends arriving during an fsync
	// ride the next one) and a lone appender never waits. Positive
	// values trade per-append latency for fuller batches.
	MaxWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	return o
}

// pendingAppend is one enqueued record awaiting durability.
type pendingAppend struct {
	line []byte
	done chan error
}

// Writer appends records to a journal, stamping each with its
// sequence number and hash-chain digest. Appends are durable before
// they return: when the journal is synced (file-backed), the record
// has been written and fsynced — possibly sharing the fsync with a
// batch of concurrent appenders (group commit) — so a record handed
// to Append survives a crash of the writer's process.
//
// The writer is fail-stop: the first write or sync error poisons it,
// and every subsequent Append returns that original error. A failed
// write may have left partial bytes at the tail; appending after
// them would fuse records, so the only safe continuation is a fresh
// Continue, which truncates the tail to the last chain-verified
// record.
type Writer struct {
	opts Options

	mu      sync.Mutex
	w       io.Writer
	file    *os.File     // non-nil when file-backed
	syncFn  func() error // nil = no durability beyond the sink
	seq     int
	chain   string
	err     error // sticky fail-stop error
	closed  bool
	pending []pendingAppend

	// Group-commit machinery, nil for unsynced (sink-only) writers —
	// with no fsync to amortize they write synchronously instead.
	wake        chan struct{}
	flusherDone chan struct{}
	buf         []byte // flusher's reusable coalescing buffer
}

// NewWriter returns a Writer over an arbitrary sink (no durability
// beyond the sink itself). With no fsync to amortize, appends write
// through synchronously. Used by tests and in-memory callers.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, chain: ChainSeed(), opts: Options{}.withDefaults()}
}

// NewSyncedWriter returns a group-committing Writer over a sink with
// an explicit sync hook — the seam benchmarks and tests use to count
// or simulate fsyncs.
func NewSyncedWriter(w io.Writer, sync func() error, opts Options) *Writer {
	wr := &Writer{w: w, syncFn: sync, chain: ChainSeed(), opts: opts.withDefaults()}
	wr.startFlusher()
	return wr
}

// Create creates (truncating) a file-backed journal at path with
// default group-commit options.
func Create(path string) (*Writer, error) { return CreateOptions(path, Options{}) }

// CreateOptions creates (truncating) a file-backed journal at path.
func CreateOptions(path string, opts Options) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{w: f, file: f, syncFn: f.Sync, chain: ChainSeed(), opts: opts.withDefaults()}
	w.startFlusher()
	return w, nil
}

func (w *Writer) startFlusher() {
	w.wake = make(chan struct{}, 1)
	w.flusherDone = make(chan struct{})
	go w.flusher()
}

// Continue opens an existing journal for resumption: it reads the
// surviving prefix and returns it alongside a Writer that appends
// after it, numbering and chaining records where the prefix left
// off. A damaged tail is repaired in place before the writer is
// armed — a torn or unverifiable suffix is truncated back to the
// last chain-verified record, and a final record that lost only its
// trailing newline gets the newline restored (without it, the
// O_APPEND write of the next record would fuse onto the same line
// and corrupt the journal). Log.Repair describes what was done.
func Continue(path string) (*Log, *Writer, error) { return ContinueOptions(path, Options{}) }

// ContinueOptions is Continue with explicit group-commit options.
func ContinueOptions(path string, opts Options) (*Log, *Writer, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	res := scan(b)
	lg, err := res.log(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if res.goodEnd < res.total {
		// Unverifiable tail: cut back to the chain-verified prefix.
		// (ftruncate addresses an absolute offset; O_APPEND only
		// affects where subsequent writes land.)
		if err := f.Truncate(int64(res.goodEnd)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate damaged tail: %w", err)
		}
	}
	if res.missingNewline {
		if _, err := f.Write([]byte("\n")); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: restore final newline: %w", err)
		}
	}
	if lg.Repair != nil {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: sync repair: %w", err)
		}
	}
	w := &Writer{
		w: f, file: f, syncFn: f.Sync,
		seq:   len(lg.Records),
		chain: lg.ChainHead(),
		opts:  opts.withDefaults(),
	}
	w.startFlusher()
	return lg, w, nil
}

// Append stamps the record's sequence number and chain digest,
// writes it as one JSON line and makes it durable before returning.
// Concurrent appends may share a single write+fsync (group commit);
// each still only returns once its own record is down. The stamped
// record is returned.
func (w *Writer) Append(rec Record) (Record, error) {
	defer perf.Region("journal.append").End()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return rec, err
	}
	if w.closed {
		w.mu.Unlock()
		return rec, ErrClosed
	}
	rec.Seq = w.seq
	rec.Chain = ""
	if rec.Digest == "" && len(rec.Payload) > 0 {
		// Readers verify the payload digest on every record that
		// carries a payload; stamp it for callers that did not.
		rec.Digest = Digest(rec.Payload)
	}
	body, err := json.Marshal(rec)
	if err != nil {
		// Nothing reached the sink: the writer stays usable and the
		// sequence number is not consumed.
		w.mu.Unlock()
		return rec, fmt.Errorf("journal: marshal record %d: %w", rec.Seq, err)
	}
	rec.Chain = chainNext(w.chain, body)
	line := spliceChain(body, rec.Chain)
	w.seq++
	w.chain = rec.Chain

	if w.wake == nil {
		// Unsynced sink: write through synchronously.
		err := w.writeLocked(line)
		w.mu.Unlock()
		return rec, err
	}
	done := make(chan error, 1)
	w.pending = append(w.pending, pendingAppend{line: line, done: done})
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return rec, <-done
}

// writeLocked is the synchronous path for unsynced writers; the
// caller holds w.mu. A write error poisons the writer: partial bytes
// may have reached the sink.
func (w *Writer) writeLocked(line []byte) error {
	if _, err := w.w.Write(line); err != nil {
		w.err = fmt.Errorf("journal: append record %d: %w", w.seq-1, err)
		return w.err
	}
	return nil
}

// flusher drains pending appends in batches: one write+fsync per
// batch, every batch member notified with the outcome.
func (w *Writer) flusher() {
	defer close(w.flusherDone)
	for {
		<-w.wake
		for w.flushOnce() {
		}
		w.mu.Lock()
		exit := w.closed && len(w.pending) == 0
		w.mu.Unlock()
		if exit {
			return
		}
	}
}

// flushOnce commits one batch. It reports whether anything was
// pending (false stops the drain loop).
func (w *Writer) flushOnce() bool {
	w.mu.Lock()
	if len(w.pending) == 0 {
		w.mu.Unlock()
		return false
	}
	if w.err != nil {
		// Poisoned: fail everything queued with the original error.
		batch := w.pending
		w.pending = nil
		err := w.err
		w.mu.Unlock()
		for _, p := range batch {
			p.done <- err
		}
		return true
	}
	max := w.opts.BatchSize
	if w.opts.MaxWait > 0 && len(w.pending) < max && !w.closed {
		w.mu.Unlock()
		w.fillWindow(max)
		w.mu.Lock()
	}
	n := len(w.pending)
	if n > max {
		n = max
	}
	batch := w.pending[:n:n]
	w.pending = w.pending[n:]
	w.mu.Unlock()

	buf := w.buf[:0]
	for _, p := range batch {
		buf = append(buf, p.line...)
	}
	w.buf = buf
	_, werr := w.w.Write(buf)
	if werr == nil && w.syncFn != nil {
		werr = w.syncFn()
	}
	if werr != nil {
		werr = fmt.Errorf("journal: append batch of %d: %w", n, werr)
		w.mu.Lock()
		if w.err == nil {
			w.err = werr
		} else {
			werr = w.err
		}
		w.mu.Unlock()
	}
	for _, p := range batch {
		p.done <- werr
	}
	return true
}

// fillWindow lingers up to MaxWait for the batch to fill. Wake
// signals consumed here are not lost: the caller re-examines pending
// under the lock, and the drain loop runs until pending is empty.
func (w *Writer) fillWindow(max int) {
	deadline := time.NewTimer(w.opts.MaxWait)
	defer deadline.Stop()
	for {
		w.mu.Lock()
		full := len(w.pending) >= max || w.closed
		w.mu.Unlock()
		if full {
			return
		}
		select {
		case <-w.wake:
		case <-deadline.C:
			return
		}
	}
}

// Seq returns the sequence number the next Append will stamp.
func (w *Writer) Seq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ChainHead returns the chain digest of the last stamped record (the
// value Verify reports for an intact journal).
func (w *Writer) ChainHead() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chain
}

// Err returns the writer's sticky append error, nil while healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close drains pending appends, stops the flusher and closes the
// underlying file, if any. Safe to call more than once.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	hasFlusher := w.wake != nil
	w.mu.Unlock()
	if hasFlusher {
		select {
		case w.wake <- struct{}{}:
		default:
		}
		<-w.flusherDone
	}
	if w.file != nil {
		return w.file.Close()
	}
	return nil
}
