package faults

// RNG is a splittable deterministic pseudo-random stream built on the
// splitmix64 generator. Unlike math/rand's global source, every stream
// is derived purely from a seed and a key path, so a simulation that
// consults the same streams with the same keys replays byte-identically
// regardless of call order across independent streams.
type RNG struct {
	seed  uint64 // stream identity, fixed at creation
	state uint64 // stream position
}

// NewRNG returns the root stream for a seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed}
}

// Split derives an independent child stream from this stream's
// identity and a key path. Splitting does not advance the parent, and
// the same (seed, keys) always yields the same child — the property
// the fault injector relies on to make per-VM and per-unit decisions
// order-independent.
func (r *RNG) Split(keys ...string) *RNG {
	const prime = 1099511628211 // FNV-1a
	h := r.seed
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime
		}
		// Key separator, so ("ab","c") and ("a","bc") diverge.
		h ^= 0xff
		h *= prime
	}
	h = mix64(h)
	return &RNG{seed: h, state: h}
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns the next value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
