// Package faults provides deterministic, seed-driven fault injection
// for the simulated cloud pipeline. A Plan describes what can go wrong
// (VM crashes at a virtual time, spot-style reclamations, boot
// capacity errors, transient unit failures, degraded transfer rates);
// an Injector makes the concrete decisions by consulting a splittable
// seeded PRNG keyed off stable entity IDs and the virtual clock. No
// global random state is involved, so two runs with the same plan and
// seed inject exactly the same faults at exactly the same virtual
// times — the property the chaos test harness asserts byte-for-byte
// on run snapshots.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// Class names a fault category.
type Class string

// The fault classes a plan can inject.
const (
	// ClassCrash terminates a running VM abruptly at a virtual time.
	ClassCrash Class = "crash"
	// ClassReclaim is a spot-style reclamation: like a crash, but the
	// provider issues an advance notice (Rule.Notice before impact).
	ClassReclaim Class = "reclaim"
	// ClassBootFail makes RunInstances fail with a capacity error.
	ClassBootFail Class = "bootfail"
	// ClassUnitFlake fails a unit attempt with a transient error.
	ClassUnitFlake Class = "unitflake"
	// ClassSlowXfer degrades ingress transfer rates by a factor.
	ClassSlowXfer Class = "slowxfer"
	// ClassDriverCrash kills the driver process itself at a virtual
	// time: the run aborts at its next journal checkpoint at or after
	// At, leaving the write-ahead journal prefix behind for resume.
	ClassDriverCrash Class = "drivercrash"
)

// DefaultReclaimNotice is the advance warning a reclamation carries
// when the rule does not set one (EC2 spot gives two minutes).
const DefaultReclaimNotice = 120 * vclock.Second

// Rule is one fault directive. Which fields are meaningful depends on
// the class; ParseSpec documents the accepted spec syntax.
type Rule struct {
	Class Class
	// P is the per-decision probability for probabilistic rules.
	P float64
	// At pins a crash/reclaim to an absolute virtual time (0 = unused).
	At vclock.Time
	// VM restricts an absolute-time crash/reclaim to the VM with this
	// 1-based launch ordinal (0 = the first VM whose lifetime covers At).
	VM int
	// After delays a probabilistic crash/reclaim past the VM's running
	// time; Window adds a uniform random slack on top.
	After  vclock.Duration
	Window vclock.Duration
	// N is an exact ordinal: for bootfail, the RunInstances call to
	// fail; for unitflake, the number of leading attempts eligible to
	// flake (guaranteeing eventual progress). 0 = unused.
	N int
	// Factor multiplies the effective transfer bandwidth for slowxfer
	// (0 < Factor < 1 slows transfers down).
	Factor float64
	// Notice is the reclamation's advance warning lead.
	Notice vclock.Duration
}

// Plan is a parsed set of fault rules.
type Plan struct {
	Rules []Rule
}

// ParseSpec parses a fault plan from its compact textual form:
// semicolon-separated rules, each "class:key=val,key=val". Examples:
//
//	crash:at=900,vm=2          crash VM #2 at t=900s
//	reclaim:p=0.1,after=300,window=600
//	bootfail:p=0.05            each boot fails with probability 0.05
//	bootfail:n=2               exactly the 2nd RunInstances call fails
//	unitflake:p=0.3,n=1        first attempt of a unit may flake
//	slowxfer:x=0.5             ingress at half bandwidth
//	drivercrash:at=900         kill the driver at the first journal
//	                           checkpoint at or after t=900s
//
// Rules compose: "crash:at=900;unitflake:p=0.2,n=1".
func ParseSpec(spec string) (*Plan, error) {
	plan := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, params, _ := strings.Cut(part, ":")
		r := Rule{Class: Class(strings.TrimSpace(head))}
		switch r.Class {
		case ClassCrash, ClassReclaim, ClassBootFail, ClassUnitFlake, ClassSlowXfer, ClassDriverCrash:
		default:
			return nil, fmt.Errorf("faults: unknown fault class %q in %q", head, part)
		}
		if r.Class == ClassReclaim {
			r.Notice = DefaultReclaimNotice
		}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faults: bad parameter %q in %q", kv, part)
				}
				f, ferr := strconv.ParseFloat(val, 64)
				if ferr != nil {
					return nil, fmt.Errorf("faults: bad value %q for %s in %q", val, key, part)
				}
				switch key {
				case "p":
					r.P = f
				case "at":
					r.At = vclock.Time(f)
				case "vm":
					r.VM = int(f)
				case "after":
					r.After = vclock.Duration(f)
				case "window":
					r.Window = vclock.Duration(f)
				case "n":
					r.N = int(f)
				case "x":
					r.Factor = f
				case "notice":
					r.Notice = vclock.Duration(f)
				default:
					return nil, fmt.Errorf("faults: unknown parameter %q in %q", key, part)
				}
			}
		}
		if err := r.validate(); err != nil {
			return nil, err
		}
		plan.Rules = append(plan.Rules, r)
	}
	if len(plan.Rules) == 0 {
		return nil, fmt.Errorf("faults: empty fault spec %q", spec)
	}
	return plan, nil
}

// validate applies per-class sanity checks.
func (r Rule) validate() error {
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("faults: %s probability %v out of [0,1]", r.Class, r.P)
	}
	switch r.Class {
	case ClassCrash, ClassReclaim:
		if r.At <= 0 && r.P <= 0 {
			return fmt.Errorf("faults: %s rule needs at=T or p>0", r.Class)
		}
	case ClassBootFail:
		if r.N <= 0 && r.P <= 0 {
			return fmt.Errorf("faults: bootfail rule needs n=K or p>0")
		}
	case ClassUnitFlake:
		if r.P <= 0 {
			return fmt.Errorf("faults: unitflake rule needs p>0")
		}
	case ClassSlowXfer:
		if r.Factor <= 0 || r.Factor > 1 {
			return fmt.Errorf("faults: slowxfer factor %v out of (0,1]", r.Factor)
		}
	case ClassDriverCrash:
		if r.At < 0 {
			return fmt.Errorf("faults: drivercrash rule needs at=T with T >= 0")
		}
	}
	return nil
}

// String renders the plan back in ParseSpec's syntax.
func (p *Plan) String() string {
	var parts []string
	for _, r := range p.Rules {
		var kv []string
		add := func(k string, v float64) {
			if v != 0 {
				kv = append(kv, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		add("p", r.P)
		add("at", float64(r.At))
		add("vm", float64(r.VM))
		add("after", float64(r.After))
		add("window", float64(r.Window))
		add("n", float64(r.N))
		add("x", r.Factor)
		if r.Class == ClassReclaim && r.Notice != DefaultReclaimNotice {
			add("notice", float64(r.Notice))
		} else if r.Class != ClassReclaim {
			add("notice", float64(r.Notice))
		}
		s := string(r.Class)
		if len(kv) > 0 {
			s += ":" + strings.Join(kv, ",")
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// Classes lists the plan's distinct fault classes, sorted.
func (p *Plan) Classes() []Class {
	seen := map[Class]bool{}
	for _, r := range p.Rules {
		seen[r.Class] = true
	}
	out := make([]Class, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// MetricFaultsInjected counts faults at the moment they take effect,
// labelled by class.
const MetricFaultsInjected = "rnascale_faults_injected_total"

// Injector makes the concrete fault decisions for one run. It is
// consulted by the cloud provider (boots, interruptions, transfers)
// and the pilot agent (unit attempts); every decision is a pure
// function of (seed, entity ID, virtual time), so replays are exact.
type Injector struct {
	plan    Plan
	seed    uint64
	rng     *RNG
	clock   *vclock.Clock
	metrics *obs.Registry
}

// NewInjector builds an injector for a plan, seed and simulation
// clock. A nil plan yields a nil injector, whose consumers treat it as
// "no faults".
func NewInjector(plan *Plan, seed uint64, clock *vclock.Clock) *Injector {
	if plan == nil || len(plan.Rules) == 0 {
		return nil
	}
	return &Injector{plan: *plan, seed: seed, rng: NewRNG(seed), clock: clock}
}

// SetMetrics attaches a registry for the faults_injected counter; nil
// detaches it.
func (in *Injector) SetMetrics(reg *obs.Registry) {
	if in != nil {
		in.metrics = reg
	}
}

// Seed reports the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// Plan reports the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// CountInjected records one applied fault of the given class. The
// provider calls this when a scheduled interruption actually strikes;
// the injector's own decision methods call it internally.
func (in *Injector) CountInjected(class Class) {
	if in == nil || in.metrics == nil {
		return
	}
	in.metrics.Counter(MetricFaultsInjected, "Faults injected by the fault plan, by class.",
		obs.Labels{"class": string(class)}).Inc()
}

// timeKey renders a virtual time as a stable split key.
func timeKey(t vclock.Time) string {
	return strconv.FormatFloat(float64(t), 'g', -1, 64)
}

// VMInterruption decides, at VM launch, whether and when the VM will
// be interrupted (crash or reclamation). ordinal is the VM's 1-based
// launch ordinal; runningAt its boot-complete time. The interruption
// is scheduled, not yet applied — counting happens when it strikes.
func (in *Injector) VMInterruption(vmID string, ordinal int, runningAt vclock.Time) (at vclock.Time, class Class, notice vclock.Duration, ok bool) {
	if in == nil {
		return 0, "", 0, false
	}
	for _, r := range in.plan.Rules {
		if r.Class != ClassCrash && r.Class != ClassReclaim {
			continue
		}
		if r.At > 0 {
			if r.VM != 0 && r.VM != ordinal {
				continue
			}
			// A VM still booting when the fault time arrives dies the
			// moment it comes up.
			return vclock.Max(r.At, runningAt), r.Class, r.Notice, true
		}
		rng := in.rng.Split("vm", string(r.Class), vmID, timeKey(runningAt))
		if rng.Float64() < r.P {
			delay := r.After + vclock.Duration(rng.Float64()*float64(r.Window))
			return runningAt.Add(delay), r.Class, r.Notice, true
		}
	}
	return 0, "", 0, false
}

// BootFails decides whether RunInstances call #ordinal fails with an
// injected capacity error. Applied (and counted) immediately.
func (in *Injector) BootFails(ordinal int, typeName string, now vclock.Time) bool {
	if in == nil {
		return false
	}
	for _, r := range in.plan.Rules {
		if r.Class != ClassBootFail {
			continue
		}
		if r.N > 0 {
			if ordinal == r.N {
				in.CountInjected(ClassBootFail)
				return true
			}
			continue
		}
		rng := in.rng.Split("boot", strconv.Itoa(ordinal), typeName, timeKey(now))
		if rng.Float64() < r.P {
			in.CountInjected(ClassBootFail)
			return true
		}
	}
	return false
}

// UnitAttemptFails decides whether a unit's attempt (1-based) fails
// with an injected transient error. Rules with n=K only flake the
// first K attempts, so a retrying unit always makes progress.
func (in *Injector) UnitAttemptFails(unitID string, attempt int, now vclock.Time) bool {
	if in == nil {
		return false
	}
	for _, r := range in.plan.Rules {
		if r.Class != ClassUnitFlake {
			continue
		}
		if r.N > 0 && attempt > r.N {
			continue
		}
		rng := in.rng.Split("unit", unitID, strconv.Itoa(attempt), timeKey(now))
		if rng.Float64() < r.P {
			in.CountInjected(ClassUnitFlake)
			return true
		}
	}
	return false
}

// DriverCrashTimes returns the virtual times at which drivercrash
// rules kill the driver, sorted ascending. The pipeline arms these
// against its journal checkpoints; the decision is fully static, so
// resumption can disarm the rules the surviving journal already
// covers.
func (in *Injector) DriverCrashTimes() []vclock.Time {
	if in == nil {
		return nil
	}
	var out []vclock.Time
	for _, r := range in.plan.Rules {
		if r.Class == ClassDriverCrash {
			out = append(out, r.At)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// DegradeTransfer stretches a transfer duration according to any
// slowxfer rules (duration / factor), counting each application.
func (in *Injector) DegradeTransfer(d vclock.Duration) vclock.Duration {
	if in == nil {
		return d
	}
	for _, r := range in.plan.Rules {
		if r.Class != ClassSlowXfer || r.Factor >= 1 {
			continue
		}
		d = vclock.Duration(float64(d) / r.Factor)
		in.CountInjected(ClassSlowXfer)
	}
	return d
}
