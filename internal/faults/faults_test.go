package faults

import (
	"testing"

	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d vs %d", i, av, bv)
		}
	}
	if NewRNG(42).Uint64() == NewRNG(43).Uint64() {
		t.Fatal("different seeds produced the same first value")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	// Splitting must not advance the parent.
	before := *root
	_ = root.Split("a")
	if *root != before {
		t.Fatal("Split advanced the parent stream")
	}
	// Same key path ⇒ same child, regardless of draw order elsewhere.
	c1 := root.Split("vm", "i-000001")
	root.Uint64()
	c2 := root.Split("vm", "i-000001")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("same key path produced different children")
	}
	// Key boundaries matter.
	if NewRNG(7).Split("ab", "c").Uint64() == NewRNG(7).Split("a", "bc").Uint64() {
		t.Fatal(`Split("ab","c") collided with Split("a","bc")`)
	}
	if NewRNG(7).Split("x").Uint64() == NewRNG(7).Split("y").Uint64() {
		t.Fatal("distinct keys produced identical children")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"crash:at=900,vm=2",
		"reclaim:p=0.1,after=300,window=600",
		"bootfail:p=0.05",
		"bootfail:n=2",
		"unitflake:p=0.3,n=1",
		"slowxfer:x=0.5",
		"crash:at=900;unitflake:p=0.2,n=1;slowxfer:x=0.25",
	}
	for _, spec := range cases {
		plan, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		again, err := ParseSpec(plan.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", plan.String(), spec, err)
		}
		if plan.String() != again.String() {
			t.Fatalf("round trip unstable: %q -> %q -> %q", spec, plan.String(), again.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"explode:p=0.1",
		"crash",           // needs at or p
		"crash:at=nine",   // bad number
		"crash:when=900",  // unknown key
		"unitflake:n=2",   // needs p
		"slowxfer:x=0",    // factor out of range
		"slowxfer:x=2",    // factor out of range
		"bootfail:p=1.5",  // probability out of range
		"crash:at=900,vm", // malformed kv
		"bootfail",        // needs n or p
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
	}
}

func TestVMInterruptionAbsoluteTime(t *testing.T) {
	plan, _ := ParseSpec("crash:at=900,vm=2")
	in := NewInjector(plan, 1, vclock.NewClock(0))
	if _, _, _, ok := in.VMInterruption("i-000001", 1, 60); ok {
		t.Fatal("vm=2 rule matched ordinal 1")
	}
	at, class, _, ok := in.VMInterruption("i-000002", 2, 60)
	if !ok || class != ClassCrash || at != 900 {
		t.Fatalf("got (%v,%v,%v), want crash at 900", at, class, ok)
	}
	// A VM that boots after the fault time dies on arrival.
	at, _, _, ok = in.VMInterruption("i-000002", 2, 1000)
	if !ok || at != 1000 {
		t.Fatalf("late boot: got at=%v, want clamp to runningAt=1000", at)
	}
}

func TestVMInterruptionProbabilisticDeterminism(t *testing.T) {
	plan, _ := ParseSpec("reclaim:p=0.5,after=300,window=600")
	a := NewInjector(plan, 99, vclock.NewClock(0))
	b := NewInjector(plan, 99, vclock.NewClock(0))
	hits := 0
	for i := 1; i <= 50; i++ {
		id := "i-" + timeKey(vclock.Time(i))
		at1, c1, n1, ok1 := a.VMInterruption(id, i, 60)
		at2, c2, n2, ok2 := b.VMInterruption(id, i, 60)
		if at1 != at2 || c1 != c2 || n1 != n2 || ok1 != ok2 {
			t.Fatalf("vm %d: same seed diverged", i)
		}
		if ok1 {
			hits++
			if at1 < 60+300 || at1 > 60+300+600 {
				t.Fatalf("vm %d: interruption at %v outside [360,960]", i, at1)
			}
			if n1 != DefaultReclaimNotice {
				t.Fatalf("vm %d: notice %v, want default %v", i, n1, DefaultReclaimNotice)
			}
		}
	}
	if hits == 0 || hits == 50 {
		t.Fatalf("p=0.5 over 50 VMs hit %d times; generator looks broken", hits)
	}
}

func TestBootFailsExactOrdinalCountsOnce(t *testing.T) {
	plan, _ := ParseSpec("bootfail:n=2")
	in := NewInjector(plan, 1, vclock.NewClock(0))
	reg := obs.NewRegistry()
	in.SetMetrics(reg)
	if in.BootFails(1, "c3.2xlarge", 0) {
		t.Fatal("boot #1 failed under n=2")
	}
	if !in.BootFails(2, "c3.2xlarge", 0) {
		t.Fatal("boot #2 did not fail under n=2")
	}
	if in.BootFails(3, "c3.2xlarge", 0) {
		t.Fatal("boot #3 failed under n=2")
	}
	got := counterValue(t, reg, MetricFaultsInjected, "class", string(ClassBootFail))
	if got != 1 {
		t.Fatalf("faults_injected{class=bootfail} = %v, want 1", got)
	}
}

func TestUnitAttemptFailsProgressGuarantee(t *testing.T) {
	plan, _ := ParseSpec("unitflake:p=1,n=2")
	in := NewInjector(plan, 5, vclock.NewClock(0))
	if !in.UnitAttemptFails("unit.00001(x)", 1, 10) {
		t.Fatal("attempt 1 did not flake at p=1")
	}
	if !in.UnitAttemptFails("unit.00001(x)", 2, 20) {
		t.Fatal("attempt 2 did not flake at p=1")
	}
	if in.UnitAttemptFails("unit.00001(x)", 3, 30) {
		t.Fatal("attempt 3 flaked despite n=2 progress bound")
	}
}

func TestDegradeTransfer(t *testing.T) {
	plan, _ := ParseSpec("slowxfer:x=0.5")
	in := NewInjector(plan, 1, vclock.NewClock(0))
	if got := in.DegradeTransfer(100); got != 200 {
		t.Fatalf("DegradeTransfer(100) = %v, want 200", got)
	}
	var nilIn *Injector
	if got := nilIn.DegradeTransfer(100); got != 100 {
		t.Fatalf("nil injector changed the duration: %v", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.BootFails(1, "t", 0) {
		t.Fatal("nil injector failed a boot")
	}
	if in.UnitAttemptFails("u", 1, 0) {
		t.Fatal("nil injector flaked a unit")
	}
	if _, _, _, ok := in.VMInterruption("v", 1, 0); ok {
		t.Fatal("nil injector interrupted a VM")
	}
	in.CountInjected(ClassCrash) // must not panic
	in.SetMetrics(nil)
	if NewInjector(nil, 0, nil) != nil {
		t.Fatal("NewInjector(nil plan) != nil")
	}
}

func TestPlanClasses(t *testing.T) {
	plan, _ := ParseSpec("slowxfer:x=0.5;crash:at=9;crash:at=10")
	got := plan.Classes()
	if len(got) != 2 || got[0] != ClassCrash || got[1] != ClassSlowXfer {
		t.Fatalf("Classes() = %v", got)
	}
}

// counterValue reads one labelled counter from a registry.
func counterValue(t *testing.T, reg *obs.Registry, name, labelKey, labelVal string) float64 {
	t.Helper()
	for _, pt := range reg.Points() {
		if pt.Name == name && pt.Labels[labelKey] == labelVal {
			return pt.Value
		}
	}
	return 0
}
