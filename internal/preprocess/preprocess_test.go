package preprocess

import (
	"strings"
	"testing"

	"rnascale/internal/seq"
	"rnascale/internal/simdata"
)

func read(id, bases string, quals ...int) seq.Read {
	r := seq.Read{ID: id, Seq: []byte(bases)}
	if len(quals) > 0 {
		r.Qual = make([]byte, len(quals))
		for i, q := range quals {
			r.Qual[i] = seq.PhredToByte(q)
		}
	}
	return r
}

func TestTrimQuality(t *testing.T) {
	rs := seq.ReadSet{Reads: []seq.Read{
		read("r1", "ACGTACGT", 30, 30, 30, 30, 30, 30, 5, 5),
	}}
	opts := DefaultOptions()
	opts.MinLength = 4
	out, st := Run(rs, opts)
	if len(out.Reads) != 1 {
		t.Fatalf("reads out: %d", len(out.Reads))
	}
	if got := string(out.Reads[0].Seq); got != "ACGTAC" {
		t.Errorf("trimmed to %q", got)
	}
	if st.TrimmedBases != 2 {
		t.Errorf("trimmed %d bases", st.TrimmedBases)
	}
	if len(out.Reads[0].Qual) != 6 {
		t.Error("qualities not trimmed with bases")
	}
}

func TestDropShort(t *testing.T) {
	rs := seq.ReadSet{Reads: []seq.Read{
		read("short", "ACG", 30, 30, 30),
		read("long", strings.Repeat("ACGT", 10)),
	}}
	out, st := Run(rs, DefaultOptions())
	if len(out.Reads) != 1 || out.Reads[0].ID != "long" {
		t.Errorf("kept %v", out.Reads)
	}
	if st.DroppedShort != 1 {
		t.Errorf("dropped short %d", st.DroppedShort)
	}
}

func TestDropNRich(t *testing.T) {
	rs := seq.ReadSet{Reads: []seq.Read{
		read("nrich", strings.Repeat("N", 20)+strings.Repeat("A", 20)),
		read("clean", strings.Repeat("ACGT", 10)),
	}}
	out, st := Run(rs, DefaultOptions())
	if len(out.Reads) != 1 || out.Reads[0].ID != "clean" {
		t.Errorf("kept %v", out.Reads)
	}
	if st.DroppedNRich != 1 {
		t.Errorf("dropped N-rich %d", st.DroppedNRich)
	}
}

func TestDedup(t *testing.T) {
	dup := strings.Repeat("ACGT", 10)
	rs := seq.ReadSet{Reads: []seq.Read{
		read("a", dup), read("b", dup), read("c", strings.Repeat("TTTT", 10)),
	}}
	out, st := Run(rs, DefaultOptions())
	if len(out.Reads) != 2 {
		t.Errorf("kept %d reads", len(out.Reads))
	}
	if st.DroppedDup != 1 {
		t.Errorf("dup drops %d", st.DroppedDup)
	}
	opts := DefaultOptions()
	opts.Dedup = false
	out, _ = Run(rs, opts)
	if len(out.Reads) != 3 {
		t.Error("dedup off still dropped")
	}
}

func TestPairedDropsWholeFragment(t *testing.T) {
	long := strings.Repeat("ACGT", 15)
	rs := seq.ReadSet{Paired: true, Reads: []seq.Read{
		read("f1/1", long), read("f1/2", "ACG", 30, 30, 30), // mate 2 too short
		read("f2/1", long), read("f2/2", long),
	}}
	out, st := Run(rs, DefaultOptions())
	if len(out.Reads) != 2 {
		t.Fatalf("kept %d reads, want the one intact pair", len(out.Reads))
	}
	if !out.Paired {
		t.Error("pairing flag lost")
	}
	if st.DroppedShort != 2 {
		t.Errorf("dropped short %d, want 2 (whole fragment)", st.DroppedShort)
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPairedDedupFragmentLevel(t *testing.T) {
	a := strings.Repeat("ACGT", 12)
	b := strings.Repeat("GGCC", 12)
	rs := seq.ReadSet{Paired: true, Reads: []seq.Read{
		read("f1/1", a), read("f1/2", b),
		read("f2/1", a), read("f2/2", b), // exact duplicate fragment
		read("f3/1", b), read("f3/2", a), // different order → kept
	}}
	out, st := Run(rs, DefaultOptions())
	if len(out.Reads) != 4 {
		t.Errorf("kept %d reads", len(out.Reads))
	}
	if st.DroppedDup != 2 {
		t.Errorf("dup drops %d", st.DroppedDup)
	}
}

func TestStatsString(t *testing.T) {
	rs := seq.ReadSet{Reads: []seq.Read{read("a", strings.Repeat("ACGT", 10))}}
	_, st := Run(rs, DefaultOptions())
	s := st.String()
	if !strings.Contains(s, "1 -> 1 reads") {
		t.Errorf("stats string %q", s)
	}
}

func TestRunOnSyntheticDataset(t *testing.T) {
	ds, err := simdata.Generate(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	out, st := Run(ds.Reads, DefaultOptions())
	if st.OutputReads == 0 {
		t.Fatal("all reads filtered")
	}
	keep := float64(st.OutputReads) / float64(st.InputReads)
	if keep < 0.5 {
		t.Errorf("kept only %.0f%% of healthy synthetic reads", 100*keep)
	}
	if st.OutputBases > st.InputBases {
		t.Error("bases grew")
	}
	if err := out.Validate(); err != nil {
		t.Error(err)
	}
}

func TestKmerPlan(t *testing.T) {
	ks := KmerPlan(50, 50)
	if len(ks) < 3 {
		t.Errorf("plan for 50 bp: %v", ks)
	}
	for i, k := range ks {
		if k%2 == 0 {
			t.Errorf("even k %d", k)
		}
		if i > 0 && ks[i] <= ks[i-1] {
			t.Errorf("non-increasing plan %v", ks)
		}
		if k >= 50 {
			t.Errorf("k %d >= read length", k)
		}
	}
	// Degenerate input still yields one usable k.
	ks = KmerPlan(8, 36)
	if len(ks) != 1 || ks[0] < 15 {
		t.Errorf("degenerate plan %v", ks)
	}
	// k never exceeds the codec's MaxK.
	for _, k := range KmerPlan(200, 200) {
		if k > seq.MaxK {
			t.Errorf("k %d beyond MaxK", k)
		}
	}
}

func TestCostModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	// Sample run: 4.4 GB paired on 8 cores ≈ 44 min.
	fs := simdata.BGlumaePaired().FullScale
	d := m.Duration(fs, 8)
	if d < 35*60 || d > 55*60 {
		t.Errorf("4.4GB/8-core duration %v, want ≈44m", d)
	}
	// Table IV memory: B. Glumae fits 16 GB, P. Crispa does not.
	if got := m.MemoryGB(simdata.BGlumae().FullScale); got > 16 {
		t.Errorf("B. Glumae preprocess memory %.1f GB must fit c3.2xlarge", got)
	}
	if got := m.MemoryGB(simdata.PCrispa().FullScale); got <= 16 {
		t.Errorf("P. Crispa preprocess memory %.1f GB must exceed c3.2xlarge", got)
	}
	if got := m.MemoryGB(simdata.PCrispa().FullScale); got > 61 {
		t.Errorf("P. Crispa preprocess memory %.1f GB must fit r3.2xlarge", got)
	}
	// More cores, faster.
	if m.Duration(fs, 16) >= m.Duration(fs, 8) {
		t.Error("duration not decreasing in cores")
	}
	if m.Duration(fs, 0) <= 0 {
		t.Error("zero cores must fall back to one")
	}
}
