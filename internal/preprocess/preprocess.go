// Package preprocess implements the read pre-processing stage of the
// Rnnotator workflow (Fig. 1, step 1): 3' quality trimming, ambiguous-
// base filtering, length filtering and exact-duplicate removal, plus
// the stage's virtual-time and memory cost models.
//
// Its output — the filtered read set and the list of k-mer sizes the
// multiple-k-mer assembly will need — is exactly the information the
// paper says "is not known until the end of the pre-processing step",
// making the downstream assembly stage the natural point for dynamic
// workflow decisions.
package preprocess

import (
	"fmt"
	"strings"

	"rnascale/internal/seq"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// Options configure the filters.
type Options struct {
	// TrimQuality trims 3' bases while their Phred score is below this.
	TrimQuality int
	// MinLength drops reads shorter than this after trimming.
	MinLength int
	// MaxNFraction drops reads with more than this fraction of Ns.
	MaxNFraction float64
	// Dedup removes exact duplicate reads (fragment-level for pairs).
	Dedup bool
}

// DefaultOptions match Rnnotator's stock pre-processing.
func DefaultOptions() Options {
	return Options{TrimQuality: 15, MinLength: 30, MaxNFraction: 0.05, Dedup: true}
}

// Stats summarizes a pre-processing run.
type Stats struct {
	InputReads    int
	OutputReads   int
	InputBases    int64
	OutputBases   int64
	TrimmedBases  int64
	DroppedNRich  int
	DroppedShort  int
	DroppedDup    int
	MeanReadLen   float64
	DistinctAfter int
}

// String renders a compact report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "preprocess: %d -> %d reads (%.1f%% kept), ", s.InputReads, s.OutputReads,
		100*float64(s.OutputReads)/float64(max(1, s.InputReads)))
	fmt.Fprintf(&b, "%d bases trimmed, %d N-rich, %d short, %d duplicates dropped",
		s.TrimmedBases, s.DroppedNRich, s.DroppedShort, s.DroppedDup)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run applies the filters and returns the cleaned read set.
func Run(rs seq.ReadSet, opts Options) (seq.ReadSet, Stats) {
	st := Stats{InputReads: len(rs.Reads), InputBases: rs.TotalBases()}
	out := seq.ReadSet{Paired: rs.Paired}
	seen := map[string]bool{}

	stride := 1
	if rs.Paired {
		stride = 2
	}
	for i := 0; i+stride <= len(rs.Reads); i += stride {
		group := rs.Reads[i : i+stride]
		trimmed := make([]seq.Read, stride)
		ok := true
		for j, r := range group {
			tr := trimRead(r, opts.TrimQuality)
			st.TrimmedBases += int64(len(r.Seq) - len(tr.Seq))
			if len(tr.Seq) < opts.MinLength {
				st.DroppedShort += stride
				ok = false
				break
			}
			if frac := float64(seq.CountN(tr.Seq)) / float64(len(tr.Seq)); frac > opts.MaxNFraction {
				st.DroppedNRich += stride
				ok = false
				break
			}
			trimmed[j] = tr
		}
		if !ok {
			continue
		}
		if opts.Dedup {
			var key strings.Builder
			for _, r := range trimmed {
				key.Write(r.Seq)
				key.WriteByte('|')
			}
			k := key.String()
			if seen[k] {
				st.DroppedDup += stride
				continue
			}
			seen[k] = true
		}
		out.Reads = append(out.Reads, trimmed...)
	}
	st.OutputReads = len(out.Reads)
	st.OutputBases = out.TotalBases()
	if st.OutputReads > 0 {
		st.MeanReadLen = float64(st.OutputBases) / float64(st.OutputReads)
	}
	return out, st
}

// trimRead cuts low-quality 3' bases.
func trimRead(r seq.Read, minQ int) seq.Read {
	end := len(r.Seq)
	if r.Qual != nil {
		for end > 0 && seq.ByteToPhred(r.Qual[end-1]) < minQ {
			end--
		}
	}
	out := seq.Read{ID: r.ID, Seq: r.Seq[:end]}
	if r.Qual != nil {
		out.Qual = r.Qual[:end]
	}
	return out
}

// KmerPlan derives the multiple-k-mer schedule from the cleaned reads:
// k steps from roughly half the read length up to about 95% of it, in
// odd increments — the policy that yields the paper's 7 k-mers for
// 50 bp B. Glumae reads and 4 for 100 bp P. Crispa reads when applied
// at full scale. The plan is data-dependent, which is why the paper
// needs a dynamic workflow: "the number of k-mer calculations required
// is not known until the end of the pre-processing step".
func KmerPlan(meanReadLen float64, readLen int) []int {
	// Full-scale plans from the paper take precedence at the pipeline
	// level; this function provides the generic policy.
	lo := int(meanReadLen*0.68) | 1 // force odd
	if lo < 15 {
		lo = 15
	}
	if lo > seq.MaxK {
		lo = seq.MaxK
	}
	hi := int(meanReadLen * 0.95)
	if hi > seq.MaxK {
		hi = seq.MaxK
	}
	step := 2
	if hi-lo > 12 {
		step = 4
	}
	var ks []int
	for k := lo; k <= hi; k += step {
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		k := readLen/2 | 1
		if k < 15 {
			k = 15
		}
		if k > seq.MaxK {
			k = seq.MaxK
		}
		ks = []int{k}
	}
	return ks
}

// CostModel converts full-scale dataset statistics into the virtual
// runtime and memory footprint of the pre-processing stage.
type CostModel struct {
	// BytesPerCoreSecond is the per-core cleaning throughput.
	BytesPerCoreSecond float64
	// MemBaseGB + MemPerInputGB model the resident footprint.
	MemBaseGB    float64
	MemPerInput  float64 // GB of RSS per GB of input
	MemPerOutput float64 // reserved for future use; kept for clarity
}

// DefaultCostModel is calibrated to the paper: the sample run cleaned
// a 4.4 GB paired set in 44 min on one 8-core c3.2xlarge, and Table II
// reports ≤15 GB (B. Glumae) and ≈40 GB (P. Crispa) footprints.
func DefaultCostModel() CostModel {
	return CostModel{
		BytesPerCoreSecond: 2.1e5,
		MemBaseGB:          2.0,
		MemPerInput:        1.45,
	}
}

// Duration reports the stage's virtual runtime on `cores` cores.
func (m CostModel) Duration(fs simdata.FullScaleStats, cores int) vclock.Duration {
	if cores <= 0 {
		cores = 1
	}
	return vclock.Duration(float64(fs.SeqDataBytes) / (m.BytesPerCoreSecond * float64(cores)))
}

// MemoryGB reports the stage's resident footprint.
func (m CostModel) MemoryGB(fs simdata.FullScaleStats) float64 {
	return m.MemBaseGB + m.MemPerInput*float64(fs.SeqDataBytes)/1e9
}
