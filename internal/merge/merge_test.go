package merge

import (
	"math/rand"
	"strings"
	"testing"

	"rnascale/internal/seq"
)

func rec(s string) seq.FastaRecord { return seq.FastaRecord{ID: "c", Seq: []byte(s)} }

func randSeq(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	bases := "ACGT"
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

func TestContainmentRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	long := randSeq(rng, 300)
	inner := long[50:200]
	innerRC := string(seq.ReverseComplement([]byte(inner)))
	out, st := Merge([][]seq.FastaRecord{
		{rec(long)},
		{rec(inner), rec(innerRC), rec(long)},
	}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("%d contigs out, want 1", len(out))
	}
	if string(out[0].Seq) != long {
		t.Error("survivor is not the long contig")
	}
	if st.Contained != 3 {
		t.Errorf("contained = %d, want 3 (duplicate + two substrings)", st.Contained)
	}
}

func TestOverlapJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := randSeq(rng, 400)
	left := genome[:250]
	right := genome[200:] // 50 bp overlap
	out, st := Merge([][]seq.FastaRecord{{rec(left)}, {rec(right)}}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("%d contigs, want 1 joined", len(out))
	}
	if got := string(out[0].Seq); got != genome {
		t.Errorf("join produced %d bases, want the %d-base genome", len(got), len(genome))
	}
	if st.Joined != 1 {
		t.Errorf("joins = %d", st.Joined)
	}
}

func TestOverlapJoinReverseStrand(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := randSeq(rng, 400)
	left := genome[:250]
	rightRC := string(seq.ReverseComplement([]byte(genome[200:])))
	out, _ := Merge([][]seq.FastaRecord{{rec(left)}, {rec(rightRC)}}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("%d contigs, want 1 (reverse-strand join)", len(out))
	}
	got := string(out[0].Seq)
	gotRC := string(seq.ReverseComplement(out[0].Seq))
	if got != genome && gotRC != genome {
		t.Error("reverse-strand join does not reconstruct the genome")
	}
}

func TestAmbiguousOverlapNotJoined(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	anchor := randSeq(rng, 40)
	a := randSeq(rng, 100) + anchor
	b := anchor + randSeq(rng, 100)
	c := anchor + randSeq(rng, 100)
	out, st := Merge([][]seq.FastaRecord{{rec(a), rec(b), rec(c)}}, DefaultOptions())
	if st.Joined != 0 {
		t.Errorf("ambiguous overlap joined (%d joins)", st.Joined)
	}
	if len(out) != 3 {
		t.Errorf("%d contigs out", len(out))
	}
}

func TestMultiKSetsCollapse(t *testing.T) {
	// Simulates multi-k output: the same transcript assembled at two k
	// values with different truncation.
	rng := rand.New(rand.NewSource(5))
	tx := randSeq(rng, 500)
	k21 := tx[:480]
	k25 := tx[10:]
	out, _ := Merge([][]seq.FastaRecord{{rec(k21)}, {rec(k25)}}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("%d contigs from overlapping multi-k output", len(out))
	}
	if !strings.Contains(string(out[0].Seq), tx[100:400]) {
		t.Error("merged contig lost the transcript core")
	}
}

func TestMergeDeterministicAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var set []seq.FastaRecord
	for i := 0; i < 20; i++ {
		set = append(set, rec(randSeq(rng, 60+rng.Intn(200))))
	}
	out1, _ := Merge([][]seq.FastaRecord{set}, DefaultOptions())
	out2, _ := Merge([][]seq.FastaRecord{set}, DefaultOptions())
	if len(out1) != len(out2) {
		t.Fatal("nondeterministic count")
	}
	for i := range out1 {
		if string(out1[i].Seq) != string(out2[i].Seq) {
			t.Fatal("nondeterministic order")
		}
		if i > 0 && len(out1[i].Seq) > len(out1[i-1].Seq) {
			t.Fatal("not length-sorted")
		}
	}
}

func TestEmptyAndShortInputs(t *testing.T) {
	out, st := Merge(nil, DefaultOptions())
	if len(out) != 0 || st.Input != 0 {
		t.Error("empty merge")
	}
	// Contigs shorter than MinOverlap pass through.
	out, _ = Merge([][]seq.FastaRecord{{rec("ACGTACGT")}}, DefaultOptions())
	if len(out) != 1 {
		t.Error("short contig lost")
	}
	// Zero options fall back to defaults.
	out, _ = Merge([][]seq.FastaRecord{{rec("ACGTACGT")}}, Options{})
	if len(out) != 1 {
		t.Error("zero options broke merge")
	}
}

func TestStatsString(t *testing.T) {
	_, st := Merge([][]seq.FastaRecord{{rec("ACGTACGTACGT")}}, DefaultOptions())
	if !strings.Contains(st.String(), "1 -> 1 contigs") {
		t.Errorf("stats: %s", st.String())
	}
}
