package merge

import (
	"fmt"
	"sort"

	"rnascale/internal/seq"
)

// This file implements the ensemble/consensus merging direction the
// paper leaves as future work: "there seems to be higher opportunities
// to show better performing MAMP-based methods in the future with
// novel ideas for validating transcripts and properly merging them."
//
// ConsensusMerge validates each contig by cross-assembler k-mer
// support before the ordinary merge: a contig region is *supported*
// when its k-mers occur in the output of at least MinSupport of the
// contributing assemblers. Contigs whose supported fraction falls
// below MinSupportedFrac are dropped — the ensemble-voting idea of
// iMetAMOS-style consensus assembly, which trades a little recall for
// precision on single-tool artifacts.

// ConsensusOptions tune the validation pass.
type ConsensusOptions struct {
	// Merge carries the ordinary merging options.
	Merge Options
	// K is the support-voting k-mer size.
	K int
	// MinSupport is the number of assemblers that must contain a
	// k-mer for it to count as supported.
	MinSupport int
	// MinSupportedFrac drops contigs whose supported k-mer fraction
	// is below this.
	MinSupportedFrac float64
}

// DefaultConsensusOptions require 2-of-N support over 70% of a
// contig.
func DefaultConsensusOptions() ConsensusOptions {
	return ConsensusOptions{
		Merge:            DefaultOptions(),
		K:                25,
		MinSupport:       2,
		MinSupportedFrac: 0.7,
	}
}

// ConsensusStats extends the merge stats with validation counts.
type ConsensusStats struct {
	Stats
	// Validated and Rejected count contigs passing/failing the vote.
	Validated, Rejected int
}

// ConsensusMerge merges one contig set per assembler with
// cross-assembler validation. With fewer than two sets it degrades to
// the plain merge (no vote is possible).
func ConsensusMerge(perAssembler [][]seq.FastaRecord, opts ConsensusOptions) ([]seq.FastaRecord, ConsensusStats, error) {
	if opts.K < 1 || opts.K > seq.MaxK {
		return nil, ConsensusStats{}, fmt.Errorf("merge: consensus k=%d", opts.K)
	}
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	if len(perAssembler) < 2 || opts.MinSupport < 2 {
		out, st := Merge(perAssembler, opts.Merge)
		return out, ConsensusStats{Stats: st, Validated: st.Output}, nil
	}
	coder, err := seq.NewKmerCoder(opts.K)
	if err != nil {
		return nil, ConsensusStats{}, err
	}
	// Support index: canonical k-mer -> number of assemblers
	// containing it.
	support := map[seq.Kmer]uint8{}
	for _, set := range perAssembler {
		seen := map[seq.Kmer]bool{}
		for _, c := range set {
			coder.ForEach(c.Seq, func(_ int, km seq.Kmer) bool {
				canon, _ := coder.Canonical(km)
				if !seen[canon] {
					seen[canon] = true
					support[canon]++
				}
				return true
			})
		}
	}
	var cs ConsensusStats
	validated := make([][]seq.FastaRecord, len(perAssembler))
	for si, set := range perAssembler {
		for _, c := range set {
			var total, supported int
			coder.ForEach(c.Seq, func(_ int, km seq.Kmer) bool {
				canon, _ := coder.Canonical(km)
				total++
				if int(support[canon]) >= opts.MinSupport {
					supported++
				}
				return true
			})
			if total == 0 {
				cs.Rejected++
				continue
			}
			if float64(supported)/float64(total) >= opts.MinSupportedFrac {
				validated[si] = append(validated[si], c)
				cs.Validated++
			} else {
				cs.Rejected++
			}
		}
	}
	out, st := Merge(validated, opts.Merge)
	cs.Stats = st
	sort.SliceStable(out, func(a, b int) bool { return len(out[a].Seq) > len(out[b].Seq) })
	return out, cs, nil
}
