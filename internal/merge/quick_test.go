package merge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnascale/internal/seq"
)

// Property: merging is idempotent — running Merge on its own output
// changes nothing.
func TestMergeIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRaw, lenRaw uint8) bool {
		n := int(nRaw)%12 + 1
		var set []seq.FastaRecord
		for i := 0; i < n; i++ {
			set = append(set, rec(randSeq(rng, 45+int(lenRaw)%150)))
		}
		once, _ := Merge([][]seq.FastaRecord{set}, DefaultOptions())
		twice, _ := Merge([][]seq.FastaRecord{once}, DefaultOptions())
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if string(once[i].Seq) != string(twice[i].Seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: merging never invents sequence — every output k-mer
// occurs in some input contig (strand-insensitively).
func TestMergeConservativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const k = 15
	coder := seq.MustKmerCoder(k)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		var set []seq.FastaRecord
		inKmers := map[seq.Kmer]bool{}
		for i := 0; i < n; i++ {
			s := randSeq(rng, 60+rng.Intn(120))
			set = append(set, rec(s))
			coder.ForEach([]byte(s), func(_ int, km seq.Kmer) bool {
				c, _ := coder.Canonical(km)
				inKmers[c] = true
				return true
			})
		}
		out, _ := Merge([][]seq.FastaRecord{set}, DefaultOptions())
		for _, c := range out {
			bad := false
			coder.ForEach(c.Seq, func(_ int, km seq.Kmer) bool {
				canon, _ := coder.Canonical(km)
				if !inKmers[canon] {
					bad = true
					return false
				}
				return true
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: output bases never exceed input bases (containment and
// overlap both shrink or preserve the pool; joins dedup the overlap).
func TestMergeVolumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		var set []seq.FastaRecord
		for i := 0; i < n; i++ {
			set = append(set, rec(randSeq(rng, 50+rng.Intn(200))))
		}
		out, st := Merge([][]seq.FastaRecord{set}, DefaultOptions())
		_ = out
		return st.OutputBases <= st.InputBases
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
