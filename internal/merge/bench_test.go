package merge

import (
	"math/rand"
	"testing"

	"rnascale/internal/seq"
)

func benchSets(b *testing.B) [][]seq.FastaRecord {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tx := make([]string, 30)
	for i := range tx {
		tx[i] = randSeq(rng, 400+rng.Intn(400))
	}
	// Three "assemblies": truncated/offset views of the transcripts.
	sets := make([][]seq.FastaRecord, 3)
	for s := range sets {
		for _, t := range tx {
			a := rng.Intn(40)
			z := len(t) - rng.Intn(40)
			sets[s] = append(sets[s], rec(t[a:z]))
		}
	}
	return sets
}

func BenchmarkMergeMultiAssembler(b *testing.B) {
	sets := benchSets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := Merge(sets, DefaultOptions())
		if len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkConsensusMerge(b *testing.B) {
	sets := benchSets(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := ConsensusMerge(sets, DefaultConsensusOptions())
		if err != nil || len(out) == 0 {
			b.Fatalf("%v %d", err, len(out))
		}
	}
}
