package merge

import (
	"math/rand"
	"testing"

	"rnascale/internal/seq"
)

func TestConsensusDropsSingleToolArtifacts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shared := randSeq(rng, 400) // found by all three tools
	artifact := randSeq(rng, 300)
	setA := []seq.FastaRecord{rec(shared), rec(artifact)} // tool A hallucinates
	setB := []seq.FastaRecord{rec(shared)}
	setC := []seq.FastaRecord{rec(shared)}
	out, st, err := ConsensusMerge([][]seq.FastaRecord{setA, setB, setC}, DefaultConsensusOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0].Seq) != shared {
		t.Fatalf("consensus kept %d contigs", len(out))
	}
	if st.Rejected != 1 {
		t.Errorf("rejected %d, want the artifact", st.Rejected)
	}
	if st.Validated != 3 {
		t.Errorf("validated %d", st.Validated)
	}
}

func TestConsensusKeepsTwoToolAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pairwise := randSeq(rng, 350)
	setA := []seq.FastaRecord{rec(pairwise)}
	setB := []seq.FastaRecord{rec(pairwise)}
	setC := []seq.FastaRecord{}
	out, _, err := ConsensusMerge([][]seq.FastaRecord{setA, setB, setC}, DefaultConsensusOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("2-of-3 agreement dropped: %d contigs", len(out))
	}
}

func TestConsensusStrandAware(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tx := randSeq(rng, 300)
	rc := string(seq.ReverseComplement([]byte(tx)))
	// Tools agree but report opposite strands.
	out, st, err := ConsensusMerge([][]seq.FastaRecord{{rec(tx)}, {rec(rc)}}, DefaultConsensusOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 0 {
		t.Errorf("strand flip broke support voting: %d rejected", st.Rejected)
	}
	if len(out) != 1 {
		t.Errorf("%d contigs", len(out))
	}
}

func TestConsensusDegradesToPlainMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	only := []seq.FastaRecord{rec(randSeq(rng, 200))}
	out, st, err := ConsensusMerge([][]seq.FastaRecord{only}, DefaultConsensusOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || st.Validated != 1 || st.Rejected != 0 {
		t.Errorf("single-set degradation: %d contigs, %+v", len(out), st)
	}
}

func TestConsensusValidation(t *testing.T) {
	if _, _, err := ConsensusMerge(nil, ConsensusOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	// MinSupport 0 backfills to 1 (plain merge path).
	opts := DefaultConsensusOptions()
	opts.MinSupport = 0
	if _, _, err := ConsensusMerge(nil, opts); err != nil {
		t.Error(err)
	}
}

func TestConsensusPartialSupportThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shared := randSeq(rng, 300)
	// A chimera: half shared sequence, half tool-private.
	chimera := shared[:150] + randSeq(rng, 150)
	setA := []seq.FastaRecord{rec(chimera)}
	setB := []seq.FastaRecord{rec(shared)}
	setC := []seq.FastaRecord{rec(shared)}
	opts := DefaultConsensusOptions()
	opts.MinSupportedFrac = 0.7
	out, st, err := ConsensusMerge([][]seq.FastaRecord{setA, setB, setC}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 {
		t.Errorf("chimera not rejected (rejected=%d, out=%d)", st.Rejected, len(out))
	}
}
