// Package merge combines contig sets from multiple k-mer assemblies
// (and, for the MAMP option, multiple assemblers) into one
// non-redundant transcript set — the role VMATCH and Minimus2 play in
// Rnnotator's post-processing ("assembled contigs from different
// k-mer assemblies are then processed for identifying overlaps and
// merged").
//
// Two passes run to a fixed point:
//
//   - containment removal: a contig equal to, or wholly contained in,
//     another contig (either strand) is dropped (the VMATCH role);
//   - overlap joining: contigs sharing a unique, exact suffix–prefix
//     overlap of at least MinOverlap bases are spliced together (the
//     Minimus2 role).
package merge

import (
	"fmt"
	"sort"
	"strings"

	"rnascale/internal/seq"
)

// Options tune the merger.
type Options struct {
	// MinOverlap is the minimum exact suffix–prefix overlap to join
	// two contigs.
	MinOverlap int
	// MaxRounds bounds the join iterations.
	MaxRounds int
}

// DefaultOptions mirror Minimus2-style defaults (40 bp overlap).
func DefaultOptions() Options {
	return Options{MinOverlap: 40, MaxRounds: 8}
}

// Stats reports what the merger did.
type Stats struct {
	Input       int
	Contained   int
	Joined      int
	Output      int
	InputBases  int64
	OutputBases int64
}

// String renders a compact report.
func (s Stats) String() string {
	return fmt.Sprintf("merge: %d -> %d contigs (%d contained, %d joins, %d -> %d bases)",
		s.Input, s.Output, s.Contained, s.Joined, s.InputBases, s.OutputBases)
}

// Merge combines the contig sets.
func Merge(sets [][]seq.FastaRecord, opts Options) ([]seq.FastaRecord, Stats) {
	if opts.MinOverlap <= 0 {
		opts.MinOverlap = DefaultOptions().MinOverlap
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultOptions().MaxRounds
	}
	var pool []string
	var st Stats
	for _, set := range sets {
		for _, c := range set {
			pool = append(pool, string(c.Seq))
			st.InputBases += int64(len(c.Seq))
		}
	}
	st.Input = len(pool)

	pool = dropContained(pool, &st)
	for round := 0; round < opts.MaxRounds; round++ {
		joined, n := joinOverlaps(pool, opts.MinOverlap)
		st.Joined += n
		pool = joined
		if n == 0 {
			break
		}
		pool = dropContained(pool, &st)
	}

	// Deterministic output: longest first, ties lexicographic.
	sort.Slice(pool, func(a, b int) bool {
		if len(pool[a]) != len(pool[b]) {
			return len(pool[a]) > len(pool[b])
		}
		return pool[a] < pool[b]
	})
	out := make([]seq.FastaRecord, len(pool))
	for i, s := range pool {
		out[i] = seq.FastaRecord{
			ID:  fmt.Sprintf("transcript%05d len=%d", i, len(s)),
			Seq: []byte(s),
		}
		st.OutputBases += int64(len(s))
	}
	st.Output = len(out)
	return out, st
}

// dropContained removes contigs contained in a longer (or equal,
// later-sorted) contig on either strand.
func dropContained(pool []string, st *Stats) []string {
	// Sort longest first so containment checks only look at longer
	// predecessors.
	sort.Slice(pool, func(a, b int) bool {
		if len(pool[a]) != len(pool[b]) {
			return len(pool[a]) > len(pool[b])
		}
		return pool[a] < pool[b]
	})
	var kept []string
	for _, c := range pool {
		rc := string(seq.ReverseComplement([]byte(c)))
		contained := false
		for _, k := range kept {
			if len(k) < len(c) {
				break // kept is sorted; nothing shorter can contain c
			}
			if strings.Contains(k, c) || strings.Contains(k, rc) {
				contained = true
				break
			}
		}
		if contained {
			st.Contained++
			continue
		}
		kept = append(kept, c)
		// Keep kept sorted by length descending (insertion point is
		// always the end because pool is sorted).
	}
	return kept
}

// joinOverlaps splices contig pairs sharing a unique exact
// suffix–prefix overlap of at least minOv bases, considering both
// orientations of the partner. The longest overlap wins; ambiguous
// overlaps (two possible partners at the same length) leave the
// contig untouched, as Minimus2 does at repeat boundaries. Returns
// the new pool and the number of joins performed.
func joinOverlaps(pool []string, minOv int) ([]string, int) {
	type anchor struct {
		idx int
		rc  bool
	}
	// Index every contig's first minOv bases, forward and RC.
	prefix := map[string][]anchor{}
	rcs := make([]string, len(pool))
	for i, c := range pool {
		if len(c) < minOv {
			continue
		}
		rcs[i] = string(seq.ReverseComplement([]byte(c)))
		prefix[c[:minOv]] = append(prefix[c[:minOv]], anchor{i, false})
		prefix[rcs[i][:minOv]] = append(prefix[rcs[i][:minOv]], anchor{i, true})
	}
	used := make([]bool, len(pool))
	var out []string
	joins := 0
	for i, c := range pool {
		if used[i] || len(c) < minOv {
			continue
		}
		// Scan overlap start positions from longest overlap to the
		// minimum; the anchor is the first minOv bases of the overlap.
		var partner int = -1
		var partnerSeq string
		ambiguous := false
		for p := 0; p+minOv <= len(c) && partner < 0 && !ambiguous; p++ {
			ov := len(c) - p
			for _, a := range prefix[c[p:p+minOv]] {
				if a.idx == i || used[a.idx] {
					continue
				}
				d := pool[a.idx]
				if a.rc {
					d = rcs[a.idx]
				}
				// Full overlap check: c's suffix from p must equal d's
				// prefix, and d must extend past the overlap.
				if len(d) <= ov || c[p:] != d[:ov] {
					continue
				}
				if partner >= 0 {
					ambiguous = true
					break
				}
				partner = a.idx
				partnerSeq = d
			}
		}
		if partner < 0 || ambiguous {
			continue
		}
		ov := 0
		// Recompute the overlap length for the chosen partner (the
		// scan guarantees c's suffix equals partnerSeq's prefix).
		for p := 0; p+minOv <= len(c); p++ {
			l := len(c) - p
			if l < len(partnerSeq) && c[p:] == partnerSeq[:l] {
				ov = l
				break
			}
		}
		if ov == 0 {
			continue
		}
		merged := c + partnerSeq[ov:]
		used[i] = true
		used[partner] = true
		out = append(out, merged)
		joins++
	}
	for i, c := range pool {
		if !used[i] {
			out = append(out, c)
		}
	}
	return out, joins
}
