// Package quant implements the transcript-quantification step of the
// Rnnotator workflow (Fig. 1, step "transcript quantification"):
// reads are pseudo-aligned to the assembled transcripts by shared
// k-mer voting and summarized as counts and TPM, the inputs of the
// optional differential-expression step.
package quant

import (
	"fmt"
	"sort"

	"rnascale/internal/seq"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// Options configure the quantifier.
type Options struct {
	// K is the pseudo-alignment k-mer size.
	K int
	// MinVotes is the minimum k-mer votes for an assignment; reads
	// below it are unassigned.
	MinVotes int
}

// DefaultOptions are tuned for 50–100 bp reads.
func DefaultOptions() Options { return Options{K: 21, MinVotes: 3} }

// Abundance is one transcript's quantification.
type Abundance struct {
	ID     string
	Length int
	Count  int64
	TPM    float64
}

// Result is a quantification run.
type Result struct {
	Abundances []Abundance
	// AssignedReads and TotalReads report mapping yield.
	AssignedReads, TotalReads int64
}

// MappingRate reports the fraction of reads assigned.
func (r *Result) MappingRate() float64 {
	if r.TotalReads == 0 {
		return 0
	}
	return float64(r.AssignedReads) / float64(r.TotalReads)
}

// Quantify pseudo-aligns reads against transcripts.
func Quantify(transcripts []seq.FastaRecord, reads []seq.Read, opts Options) (*Result, error) {
	if opts.K < 1 || opts.K > seq.MaxK {
		return nil, fmt.Errorf("quant: k=%d", opts.K)
	}
	if len(transcripts) == 0 {
		return nil, fmt.Errorf("quant: no transcripts")
	}
	if opts.MinVotes < 1 {
		opts.MinVotes = 1
	}
	coder := seq.MustKmerCoder(opts.K)

	// Index: canonical k-mer -> transcript indices (small lists).
	index := map[seq.Kmer][]int32{}
	for ti, tx := range transcripts {
		coder.ForEach(tx.Seq, func(_ int, km seq.Kmer) bool {
			canon, _ := coder.Canonical(km)
			lst := index[canon]
			if len(lst) == 0 || lst[len(lst)-1] != int32(ti) {
				index[canon] = append(lst, int32(ti))
			}
			return true
		})
	}

	counts := make([]int64, len(transcripts))
	var assigned int64
	votes := map[int32]int{}
	for i := range reads {
		for k := range votes {
			delete(votes, k)
		}
		coder.ForEach(reads[i].Seq, func(_ int, km seq.Kmer) bool {
			canon, _ := coder.Canonical(km)
			for _, ti := range index[canon] {
				votes[ti]++
			}
			return true
		})
		// Winner: most votes; deterministic tie-break by index.
		best, bestVotes := int32(-1), 0
		for ti, v := range votes {
			if v > bestVotes || (v == bestVotes && best >= 0 && ti < best) {
				best, bestVotes = ti, v
			}
		}
		if best >= 0 && bestVotes >= opts.MinVotes {
			counts[best]++
			assigned++
		}
	}

	// TPM: rate = count / length; TPM = rate / Σrate × 1e6.
	var rateSum float64
	rates := make([]float64, len(transcripts))
	for i, tx := range transcripts {
		if len(tx.Seq) > 0 {
			rates[i] = float64(counts[i]) / float64(len(tx.Seq))
		}
		rateSum += rates[i]
	}
	res := &Result{TotalReads: int64(len(reads)), AssignedReads: assigned}
	for i, tx := range transcripts {
		tpm := 0.0
		if rateSum > 0 {
			tpm = rates[i] / rateSum * 1e6
		}
		res.Abundances = append(res.Abundances, Abundance{
			ID: tx.ID, Length: len(tx.Seq), Count: counts[i], TPM: tpm,
		})
	}
	sort.SliceStable(res.Abundances, func(a, b int) bool {
		return res.Abundances[a].Count > res.Abundances[b].Count
	})
	return res, nil
}

// CostModel gives the stage's virtual runtime and footprint; the
// post-processing inputs are far smaller than raw data, so a single
// VM suffices (paper: "the data size for these steps is a lot less
// than the original sequencing read data").
type CostModel struct {
	BytesPerCoreSecond float64
	MemBaseGB          float64
	MemPerPostGB       float64 // GB of RSS per GB of post-preprocessing data
}

// DefaultCostModel is calibrated to the sample run's 41-minute
// post-processing stage on one c3.2xlarge.
func DefaultCostModel() CostModel {
	return CostModel{BytesPerCoreSecond: 8.9e3, MemBaseGB: 2.0, MemPerPostGB: 0.3}
}

// Duration reports the post-processing virtual runtime on `cores`.
func (m CostModel) Duration(fs simdata.FullScaleStats, cores int) vclock.Duration {
	if cores <= 0 {
		cores = 1
	}
	return vclock.Duration(float64(fs.PostPreprocessBytes) / (m.BytesPerCoreSecond * float64(cores)))
}

// MemoryGB reports the post-processing footprint — small enough to
// fit any instance type in the catalogue (Table IV's all-O row).
func (m CostModel) MemoryGB(fs simdata.FullScaleStats) float64 {
	return m.MemBaseGB + m.MemPerPostGB*float64(fs.PostPreprocessBytes)/1e9
}
