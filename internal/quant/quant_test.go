package quant

import (
	"testing"

	"rnascale/internal/seq"
	"rnascale/internal/simdata"
)

func TestQuantifyAssignsReadsToSource(t *testing.T) {
	ds, err := simdata.Generate(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Quantify(ds.Transcripts, ds.Reads.Reads, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MappingRate() < 0.9 {
		t.Errorf("mapping rate %.2f; error-free-ish synthetic reads should map", res.MappingRate())
	}
	// TPM sums to ~1e6.
	var tpm float64
	for _, a := range res.Abundances {
		tpm += a.TPM
	}
	if tpm < 0.99e6 || tpm > 1.01e6 {
		t.Errorf("TPM sum %.0f", tpm)
	}
	// Sorted by count descending.
	for i := 1; i < len(res.Abundances); i++ {
		if res.Abundances[i].Count > res.Abundances[i-1].Count {
			t.Fatal("abundances not sorted")
		}
	}
}

func TestQuantCorrelatesWithTrueExpression(t *testing.T) {
	ds, err := simdata.Generate(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Quantify(ds.Transcripts, ds.Reads.Reads, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Spearman-ish check: the transcript with the highest expected
	// sampling weight (expr × length) should be among the top half by
	// count.
	byID := map[string]int64{}
	for _, a := range res.Abundances {
		byID[a.ID] = a.Count
	}
	bestIdx, bestW := 0, 0.0
	for i, tx := range ds.Transcripts {
		w := ds.Expression[i] * float64(len(tx.Seq))
		if w > bestW {
			bestIdx, bestW = i, w
		}
	}
	rank := 0
	bestCount := byID[ds.Transcripts[bestIdx].ID]
	for _, c := range byID {
		if c > bestCount {
			rank++
		}
	}
	if rank > len(ds.Transcripts)/2 {
		t.Errorf("most-expressed transcript ranked %d of %d by counts", rank, len(ds.Transcripts))
	}
}

func TestQuantifyUnmappableReads(t *testing.T) {
	tx := []seq.FastaRecord{{ID: "t", Seq: []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")}}
	junk := []seq.Read{{ID: "r", Seq: []byte("GGGGGGGGGGGGGGGGGGGGGGGGGG")}}
	res, err := Quantify(tx, junk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AssignedReads != 0 {
		t.Error("junk read assigned")
	}
	if res.MappingRate() != 0 {
		t.Error("mapping rate nonzero")
	}
}

func TestQuantifyValidation(t *testing.T) {
	if _, err := Quantify(nil, nil, DefaultOptions()); err == nil {
		t.Error("no transcripts accepted")
	}
	tx := []seq.FastaRecord{{ID: "t", Seq: []byte("ACGT")}}
	if _, err := Quantify(tx, nil, Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestQuantifyEmptyReads(t *testing.T) {
	tx := []seq.FastaRecord{{ID: "t", Seq: []byte("ACGTACGTACGTACGTACGTACG")}}
	res, err := Quantify(tx, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReads != 0 || res.MappingRate() != 0 {
		t.Errorf("empty reads: %+v", res)
	}
}

func TestCostModelSampleRunCalibration(t *testing.T) {
	m := DefaultCostModel()
	// Sample run: post-processing took 41 min on one 8-core VM.
	fs := simdata.BGlumaePaired().FullScale
	d := m.Duration(fs, 8)
	if d < 30*60 || d > 55*60 {
		t.Errorf("post-processing duration %v, want ≈41m", d)
	}
	// Table IV: post-processing fits c3.2xlarge for both datasets.
	if got := m.MemoryGB(simdata.PCrispa().FullScale); got > 16 {
		t.Errorf("P. Crispa post-processing %.1f GB should fit c3.2xlarge", got)
	}
	if m.Duration(fs, 0) <= 0 {
		t.Error("zero-core fallback broken")
	}
}
