package quant

import (
	"testing"

	"rnascale/internal/simdata"
)

func BenchmarkQuantify(b *testing.B) {
	ds, err := simdata.Generate(simdata.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Quantify(ds.Transcripts, ds.Reads.Reads, DefaultOptions())
		if err != nil || res.TotalReads == 0 {
			b.Fatalf("%v", err)
		}
	}
}
