package detonate

import (
	"math/rand"
	"strings"
	"testing"

	"rnascale/internal/seq"
)

func randSeq(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	bases := "ACGT"
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return b
}

func refs(seqs ...[]byte) []seq.FastaRecord {
	out := make([]seq.FastaRecord, len(seqs))
	for i, s := range seqs {
		out[i] = seq.FastaRecord{ID: "tx", Seq: s}
	}
	return out
}

func TestPerfectAssemblyScoresOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tx := randSeq(rng, 400)
	m, err := Evaluate(refs(tx), refs(tx), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 || m.WeightedKmerRecall != 1 {
		t.Errorf("perfect assembly: %+v", m)
	}
	if m.KCScore != 1 { // no read-bases penalty configured
		t.Errorf("kc %v", m.KCScore)
	}
}

func TestReverseStrandAssemblyStillPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tx := randSeq(rng, 400)
	m, err := Evaluate(refs(seq.ReverseComplement(tx)), refs(tx), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision < 0.999 || m.Recall < 0.999 {
		t.Errorf("strand flip hurt scores: %+v", m)
	}
}

func TestHalfAssemblyRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tx := randSeq(rng, 400)
	m, err := Evaluate(refs(tx[:200]), refs(tx), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision < 0.999 {
		t.Errorf("half assembly precision %v", m.Precision)
	}
	if m.Recall < 0.45 || m.Recall > 0.55 {
		t.Errorf("half assembly recall %v, want ≈0.5", m.Recall)
	}
	if m.F1 <= m.Recall || m.F1 >= m.Precision {
		t.Errorf("F1 %v outside (recall, precision)", m.F1)
	}
}

func TestGarbageContigsHurtPrecisionOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tx := randSeq(rng, 300)
	junk := randSeq(rng, 300)
	m, err := Evaluate(refs(tx, junk), refs(tx), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Recall < 0.999 {
		t.Errorf("recall %v", m.Recall)
	}
	if m.Precision > 0.6 {
		t.Errorf("precision %v with half-junk assembly", m.Precision)
	}
}

func TestWeightedRecallFavorsAbundantTranscripts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	strong := randSeq(rng, 300)
	weak := randSeq(rng, 300)
	// Assembly recovers only the strong transcript.
	expr := []float64{10, 0.1}
	m, err := Evaluate(refs(strong), refs(strong, weak), expr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.WeightedKmerRecall < 0.95 {
		t.Errorf("weighted recall %v should be near 1 when the abundant transcript is recovered", m.WeightedKmerRecall)
	}
	if m.Recall > 0.6 {
		t.Errorf("unweighted recall %v should be near 0.5", m.Recall)
	}
	// Conversely, recovering only the weak transcript scores poorly.
	m2, _ := Evaluate(refs(weak), refs(strong, weak), expr, DefaultOptions())
	if m2.WeightedKmerRecall > 0.1 {
		t.Errorf("weighted recall %v should be near 0 when only the rare transcript is recovered", m2.WeightedKmerRecall)
	}
}

func TestKCPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tx := randSeq(rng, 400)
	opts := DefaultOptions()
	opts.ReadBases = 10_000
	m, err := Evaluate(refs(tx), refs(tx), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.KCScore >= m.WeightedKmerRecall {
		t.Errorf("kc %v not below weighted recall %v", m.KCScore, m.WeightedKmerRecall)
	}
	// A bloated assembly (same content duplicated with junk) pays a
	// larger penalty.
	bloat, err := Evaluate(refs(tx, randSeq(rng, 2000)), refs(tx), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bloat.KCScore >= m.KCScore {
		t.Errorf("bloated kc %v not below compact kc %v", bloat.KCScore, m.KCScore)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tx := randSeq(rng, 100)
	if _, err := Evaluate(refs(tx), nil, nil, DefaultOptions()); err == nil {
		t.Error("no references accepted")
	}
	if _, err := Evaluate(refs(tx), refs(tx), []float64{1, 2}, DefaultOptions()); err == nil {
		t.Error("mismatched expression accepted")
	}
	if _, err := Evaluate(refs(tx), refs(tx), nil, Options{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEmptyAssembly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tx := randSeq(rng, 100)
	m, err := Evaluate(nil, refs(tx), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty assembly: %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Precision: 0.84, Recall: 0.26, F1: 0.40, WeightedKmerRecall: 0.86, KCScore: 0.86}
	s := m.String()
	if !strings.Contains(s, "P=0.84") || !strings.Contains(s, "kc=0.86") {
		t.Errorf("string %q", s)
	}
}
