// Package detonate reimplements the reference-based evaluation
// metrics of DETONATE (Li et al., Genome Biology 2014) that the
// paper's Table V reports: nucleotide-level precision, recall and F1,
// the abundance-weighted k-mer recall, and the k-mer compression (kc)
// score.
//
// Alignment is approximated by shared-k-mer coverage: a contig
// position counts as correct when some k-mer window covering it also
// occurs in the reference (either strand), and a reference position
// counts as recovered when some window covering it occurs in the
// assembly. For the de Bruijn graph assemblies evaluated here this
// tracks alignment-based scoring closely while staying exact and
// deterministic.
package detonate

import (
	"fmt"

	"rnascale/internal/seq"
)

// Options configure the evaluator.
type Options struct {
	// K is the evaluation k-mer size (DETONATE's default is 25).
	K int
	// ReadBases is the total sequenced base count; it sets the kc
	// score's compression penalty denominator (2N in the DETONATE
	// definition). Zero disables the penalty.
	ReadBases int64
}

// DefaultOptions match DETONATE v1.10 defaults.
func DefaultOptions() Options { return Options{K: 25} }

// Metrics is one evaluation row of Table V.
type Metrics struct {
	// Nucleotide-level scores.
	Precision float64
	Recall    float64
	F1        float64
	// WeightedKmerRecall weights reference k-mer recovery by
	// transcript abundance.
	WeightedKmerRecall float64
	// KCScore is the weighted k-mer recall minus the assembly
	// compression penalty.
	KCScore float64
	// AssemblyBases and AssemblyContigs describe the evaluated set.
	AssemblyBases   int64
	AssemblyContigs int
}

// String renders the metrics as a Table V row fragment.
func (m Metrics) String() string {
	return fmt.Sprintf("nt(P=%.2f R=%.2f F1=%.2f) weighted(KR=%.2f kc=%.2f)",
		m.Precision, m.Recall, m.F1, m.WeightedKmerRecall, m.KCScore)
}

// Evaluate scores an assembly against reference transcripts with the
// given per-transcript expression weights (uniform if nil).
func Evaluate(contigs []seq.FastaRecord, refs []seq.FastaRecord, expr []float64, opts Options) (Metrics, error) {
	if opts.K < 1 || opts.K > seq.MaxK {
		return Metrics{}, fmt.Errorf("detonate: k=%d", opts.K)
	}
	if len(refs) == 0 {
		return Metrics{}, fmt.Errorf("detonate: no reference transcripts")
	}
	if expr != nil && len(expr) != len(refs) {
		return Metrics{}, fmt.Errorf("detonate: %d expressions for %d references", len(expr), len(refs))
	}
	coder := seq.MustKmerCoder(opts.K)

	// Index reference k-mers (canonical).
	refSet := map[seq.Kmer]struct{}{}
	for _, r := range refs {
		coder.ForEach(r.Seq, func(_ int, km seq.Kmer) bool {
			c, _ := coder.Canonical(km)
			refSet[c] = struct{}{}
			return true
		})
	}
	// Index assembly k-mers (canonical).
	asmSet := map[seq.Kmer]struct{}{}
	var m Metrics
	for _, c := range contigs {
		m.AssemblyBases += int64(len(c.Seq))
		coder.ForEach(c.Seq, func(_ int, km seq.Kmer) bool {
			canon, _ := coder.Canonical(km)
			asmSet[canon] = struct{}{}
			return true
		})
	}
	m.AssemblyContigs = len(contigs)

	// Precision: fraction of contig bases covered by a reference-
	// supported window.
	var asmCovered, asmTotal int64
	for _, c := range contigs {
		covered := coverMask(coder, c.Seq, refSet)
		for _, ok := range covered {
			if ok {
				asmCovered++
			}
		}
		asmTotal += int64(len(c.Seq))
	}
	if asmTotal > 0 {
		m.Precision = float64(asmCovered) / float64(asmTotal)
	}

	// Recall: fraction of reference bases covered by assembly-
	// supported windows; weighted variant uses expression weights on
	// whole-transcript k-mer recall.
	var refCovered, refTotal int64
	var wNum, wDen float64
	for i, r := range refs {
		covered := coverMask(coder, r.Seq, asmSet)
		for _, ok := range covered {
			if ok {
				refCovered++
			}
		}
		refTotal += int64(len(r.Seq))

		// k-mer recall of this transcript.
		var hit, tot float64
		coder.ForEach(r.Seq, func(_ int, km seq.Kmer) bool {
			canon, _ := coder.Canonical(km)
			tot++
			if _, ok := asmSet[canon]; ok {
				hit++
			}
			return true
		})
		w := 1.0
		if expr != nil {
			w = expr[i]
		}
		if tot > 0 {
			wNum += w * (hit / tot)
			wDen += w
		}
	}
	if refTotal > 0 {
		m.Recall = float64(refCovered) / float64(refTotal)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	if wDen > 0 {
		m.WeightedKmerRecall = wNum / wDen
	}
	m.KCScore = m.WeightedKmerRecall
	if opts.ReadBases > 0 {
		m.KCScore -= float64(len(asmSet)) / (2 * float64(opts.ReadBases))
	}
	return m, nil
}

// coverMask marks the positions of s covered by at least one k-mer
// window present in set.
func coverMask(coder seq.KmerCoder, s []byte, set map[seq.Kmer]struct{}) []bool {
	covered := make([]bool, len(s))
	coder.ForEach(s, func(pos int, km seq.Kmer) bool {
		canon, _ := coder.Canonical(km)
		if _, ok := set[canon]; ok {
			for i := pos; i < pos+coder.K; i++ {
				covered[i] = true
			}
		}
		return true
	})
	return covered
}
