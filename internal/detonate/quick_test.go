package detonate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnascale/internal/seq"
)

// Property: every metric stays in [0,1] (kc may go below 0 only when
// a penalty is configured; without ReadBases it equals weighted
// recall) and F1 lies between min and max of precision/recall.
func TestMetricBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(nRefRaw, nAsmRaw uint8) bool {
		nRef := int(nRefRaw)%4 + 1
		nAsm := int(nAsmRaw) % 4
		var refSet, asmSet []seq.FastaRecord
		for i := 0; i < nRef; i++ {
			refSet = append(refSet, seq.FastaRecord{ID: "r", Seq: randSeq(rng, 80+rng.Intn(200))})
		}
		for i := 0; i < nAsm; i++ {
			// Half the contigs are real fragments, half junk.
			if i%2 == 0 {
				src := refSet[rng.Intn(nRef)].Seq
				a := rng.Intn(len(src) / 2)
				asmSet = append(asmSet, seq.FastaRecord{ID: "c", Seq: src[a : a+len(src)/2]})
			} else {
				asmSet = append(asmSet, seq.FastaRecord{ID: "c", Seq: randSeq(rng, 100)})
			}
		}
		m, err := Evaluate(asmSet, refSet, nil, DefaultOptions())
		if err != nil {
			return false
		}
		in01 := func(x float64) bool { return x >= 0 && x <= 1.0000001 }
		if !in01(m.Precision) || !in01(m.Recall) || !in01(m.F1) || !in01(m.WeightedKmerRecall) {
			return false
		}
		lo, hi := m.Recall, m.Precision
		if lo > hi {
			lo, hi = hi, lo
		}
		if m.F1 > 0 && (m.F1 < lo-1e-9 || m.F1 > hi+1e-9) {
			return false
		}
		return m.KCScore <= m.WeightedKmerRecall+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: adding contigs never decreases recall.
func TestRecallMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed uint8) bool {
		ref := []seq.FastaRecord{
			{ID: "a", Seq: randSeq(rng, 300)},
			{ID: "b", Seq: randSeq(rng, 300)},
		}
		c1 := seq.FastaRecord{ID: "c1", Seq: ref[0].Seq[:150]}
		c2 := seq.FastaRecord{ID: "c2", Seq: ref[1].Seq[50:250]}
		m1, err := Evaluate([]seq.FastaRecord{c1}, ref, nil, DefaultOptions())
		if err != nil {
			return false
		}
		m2, err := Evaluate([]seq.FastaRecord{c1, c2}, ref, nil, DefaultOptions())
		if err != nil {
			return false
		}
		return m2.Recall >= m1.Recall-1e-12 && m2.WeightedKmerRecall >= m1.WeightedKmerRecall-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
