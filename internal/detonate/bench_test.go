package detonate

import (
	"math/rand"
	"testing"

	"rnascale/internal/seq"
)

func BenchmarkEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var refSet, asm []seq.FastaRecord
	for i := 0; i < 40; i++ {
		tx := randSeq(rng, 600)
		refSet = append(refSet, seq.FastaRecord{ID: "tx", Seq: tx})
		asm = append(asm, seq.FastaRecord{ID: "c", Seq: tx[20:580]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(asm, refSet, nil, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
