package pilot

import (
	"fmt"
	"strings"
	"testing"

	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/sge"
	"rnascale/internal/vclock"
)

func newRig() (*cloud.Provider, *Manager) {
	p := cloud.NewProvider(vclock.NewClock(0), cloud.DefaultOptions())
	m := NewManager(p, NewStateStore(), cluster.DefaultOptions())
	return p, m
}

func TestPilotStateMachine(t *testing.T) {
	legal := [][2]PilotState{
		{PilotNew, PilotLaunching},
		{PilotLaunching, PilotActive},
		{PilotActive, PilotDone},
		{PilotActive, PilotFailed},
		{PilotLaunching, PilotCanceled},
	}
	for _, e := range legal {
		if !e[0].CanTransition(e[1]) {
			t.Errorf("%s -> %s should be legal", e[0], e[1])
		}
	}
	illegal := [][2]PilotState{
		{PilotNew, PilotActive},
		{PilotDone, PilotActive},
		{PilotActive, PilotNew},
		{PilotCanceled, PilotDone},
	}
	for _, e := range illegal {
		if e[0].CanTransition(e[1]) {
			t.Errorf("%s -> %s should be illegal", e[0], e[1])
		}
	}
	if !PilotDone.Final() || PilotActive.Final() {
		t.Error("finality wrong")
	}
}

func TestUnitStateMachine(t *testing.T) {
	if !UnitNew.CanTransition(UnitScheduling) ||
		!UnitScheduling.CanTransition(UnitScheduled) ||
		!UnitScheduled.CanTransition(UnitExecuting) ||
		!UnitExecuting.CanTransition(UnitDone) {
		t.Error("happy path broken")
	}
	if UnitNew.CanTransition(UnitDone) || UnitDone.CanTransition(UnitExecuting) {
		t.Error("shortcut transitions allowed")
	}
	for _, s := range []UnitState{UnitNew, UnitScheduling, UnitScheduled, UnitExecuting} {
		if s != UnitNew && !s.CanTransition(UnitFailed) {
			t.Errorf("%s cannot fail", s)
		}
		if s.Final() {
			t.Errorf("%s reported final", s)
		}
	}
}

func TestStateStoreEnforcesLegality(t *testing.T) {
	s := NewStateStore()
	if err := s.Register(KindPilot, "p1", string(PilotNew), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(KindPilot, "p1", string(PilotNew), 0); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := s.Transition("p1", string(PilotActive), 1, ""); err == nil {
		t.Error("NEW -> ACTIVE accepted")
	}
	if err := s.Transition("p1", string(PilotLaunching), 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Transition("ghost", string(PilotActive), 1, ""); err == nil {
		t.Error("unknown entity accepted")
	}
	st, ok := s.State("p1")
	if !ok || st != string(PilotLaunching) {
		t.Errorf("state %q %v", st, ok)
	}
	h := s.History()
	if len(h) != 2 || h[1].To != string(PilotLaunching) {
		t.Errorf("history %v", h)
	}
	if !strings.Contains(h[1].String(), "p1") {
		t.Error("event String missing ID")
	}
}

func TestStateStoreWatch(t *testing.T) {
	s := NewStateStore()
	ch := s.Watch()
	s.Register(KindUnit, "u1", string(UnitNew), 5)
	s.Transition("u1", string(UnitScheduling), 6, "go")
	e1, e2 := <-ch, <-ch
	if e1.To != string(UnitNew) || e2.To != string(UnitScheduling) || e2.At != 6 {
		t.Errorf("events %v %v", e1, e2)
	}
}

func TestSubmitPilotS1BuildsAndCancelTerminates(t *testing.T) {
	prov, m := newRig()
	p, err := m.SubmitPilot(PilotDescription{Name: "PB", InstanceType: "c3.2xlarge", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.State() != PilotActive {
		t.Fatalf("state %s", p.State())
	}
	if !p.OwnsVMs {
		t.Error("S1 pilot must own its VMs")
	}
	if got := len(prov.Running()); got != 4 {
		t.Fatalf("running VMs %d", got)
	}
	if err := m.CancelPilot(p); err != nil {
		t.Fatal(err)
	}
	if got := len(prov.Running()); got != 0 {
		t.Errorf("VMs after cancel: %d", got)
	}
	if p.State() != PilotCanceled {
		t.Errorf("state %s", p.State())
	}
	if err := m.CancelPilot(p); err != nil {
		t.Errorf("double cancel: %v", err)
	}
}

func TestSubmitPilotS2ReusesVMs(t *testing.T) {
	prov, m := newRig()
	vms, err := prov.RunInstances("r3.2xlarge", 2)
	if err != nil {
		t.Fatal(err)
	}
	prov.WaitRunning(vms)
	p, err := m.SubmitPilot(PilotDescription{Name: "PA", ReuseVMs: vms})
	if err != nil {
		t.Fatal(err)
	}
	if p.OwnsVMs {
		t.Error("S2 pilot must not own VMs")
	}
	if err := m.CompletePilot(p); err != nil {
		t.Fatal(err)
	}
	if got := len(prov.Running()); got != 2 {
		t.Errorf("S2 completion terminated VMs: %d running", got)
	}
	// Node-count mismatch is rejected.
	if _, err := m.SubmitPilot(PilotDescription{ReuseVMs: vms, Nodes: 5}); err == nil {
		t.Error("mismatched reuse accepted")
	}
}

func TestSubmitPilotFailure(t *testing.T) {
	_, m := newRig()
	_, err := m.SubmitPilot(PilotDescription{InstanceType: "no-such", Nodes: 1})
	if err == nil {
		t.Fatal("bogus type accepted")
	}
	// The failed pilot is recorded in the store.
	found := false
	for _, e := range m.Store().History() {
		if e.Kind == KindPilot && e.To == string(PilotFailed) {
			found = true
		}
	}
	if !found {
		t.Error("no FAILED event recorded")
	}
}

func activePilot(t *testing.T, m *Manager, nodes int) *Pilot {
	t.Helper()
	p, err := m.SubmitPilot(PilotDescription{InstanceType: "c3.2xlarge", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnitLifecycleHappyPath(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 2)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	if err := um.AddPilots(p); err != nil {
		t.Fatal(err)
	}
	ran := false
	units, err := um.Submit([]UnitDescription{{
		Name: "asm-k35", Slots: 8, Rule: sge.SingleNode,
		Work: func(env *ExecEnv) (WorkResult, error) {
			ran = true
			if env.InstanceType.Name != "c3.2xlarge" || env.Slots != 8 {
				t.Errorf("env %+v", env)
			}
			return WorkResult{Duration: 500, PeakMemoryGB: 10, Output: 42}, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	start := prov.Clock().Now()
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if !ran || u.State() != UnitDone {
		t.Fatalf("state %s ran=%v", u.State(), ran)
	}
	if u.Result.Output.(int) != 42 {
		t.Error("output lost")
	}
	if u.End != start.Add(500) {
		t.Errorf("end %v, want %v", u.End, start.Add(500))
	}
	if prov.Clock().Now() != u.End {
		t.Errorf("clock %v not advanced to %v", prov.Clock().Now(), u.End)
	}
	if u.Pilot != p {
		t.Error("unit bound to wrong pilot")
	}
}

func TestUnitOOMFails(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1) // c3.2xlarge: 16 GB
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	units, err := um.Submit([]UnitDescription{{
		Name: "preproc-pcrispa", Slots: 8, Rule: sge.SingleNode,
		Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: 100, PeakMemoryGB: 40}, nil // P. Crispa needs ~40 GB
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if u.State() != UnitFailed {
		t.Fatalf("state %s, want FAILED", u.State())
	}
	if u.Err == nil || !strings.Contains(u.Err.Error(), "out of memory") {
		t.Errorf("err %v", u.Err)
	}
	if len(um.Failed()) != 1 {
		t.Error("Failed() misses the unit")
	}
}

func TestUnitInfeasibleSlotRequestFails(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	units, _ := um.Submit([]UnitDescription{{
		Name: "too-wide", Slots: 64, Rule: sge.FillUp,
		Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: 1}, nil
		},
	}})
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	if units[0].State() != UnitFailed {
		t.Errorf("state %s", units[0].State())
	}
}

func TestUnitValidation(t *testing.T) {
	prov, m := newRig()
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	if _, err := um.Submit([]UnitDescription{{Name: "x", Slots: 1}}); err == nil {
		t.Error("no pilots: submit accepted")
	}
	p := activePilot(t, m, 1)
	um.AddPilots(p)
	if _, err := um.Submit([]UnitDescription{{Name: "x", Slots: 1}}); err == nil {
		t.Error("nil work accepted")
	}
	work := func(env *ExecEnv) (WorkResult, error) { return WorkResult{}, nil }
	if _, err := um.Submit([]UnitDescription{{Name: "x", Slots: 0, Work: work}}); err == nil {
		t.Error("zero slots accepted")
	}
	m.CancelPilot(p)
	if err := um.AddPilots(p); err == nil {
		t.Error("canceled pilot added")
	}
}

func TestUnitCancelBeforeRun(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	ran := false
	units, _ := um.Submit([]UnitDescription{{
		Name: "doomed", Slots: 1,
		Work: func(env *ExecEnv) (WorkResult, error) {
			ran = true
			return WorkResult{Duration: 1}, nil
		},
	}})
	if err := um.Cancel(units[0]); err != nil {
		t.Fatal(err)
	}
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("canceled unit executed")
	}
	if units[0].State() != UnitCanceled {
		t.Errorf("state %s", units[0].State())
	}
	if err := um.Cancel(units[0]); err != nil {
		t.Errorf("cancel of final unit: %v", err)
	}
}

func TestRoundRobinDistributesAcrossPilots(t *testing.T) {
	prov, m := newRig()
	p1 := activePilot(t, m, 1)
	p2 := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p1, p2)
	work := func(env *ExecEnv) (WorkResult, error) { return WorkResult{Duration: 10}, nil }
	descs := make([]UnitDescription, 4)
	for i := range descs {
		descs[i] = UnitDescription{Name: "u", Slots: 1, Work: work}
	}
	units, err := um.Submit(descs)
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Pilot != p1 || units[1].Pilot != p2 || units[2].Pilot != p1 || units[3].Pilot != p2 {
		t.Error("round-robin binding broken")
	}
}

func TestLeastLoadedPrefersIdlePilot(t *testing.T) {
	prov, m := newRig()
	p1 := activePilot(t, m, 1)
	p2 := activePilot(t, m, 1)
	// Load p1's queue directly.
	p1.Cluster.Scheduler().Submit(sge.JobSpec{Name: "hog", Slots: 8, Rule: sge.SingleNode, Duration: 10000}, prov.Clock().Now())
	um := NewUnitManager(m.Store(), prov.Clock(), LeastLoaded)
	um.AddPilots(p1, p2)
	units, err := um.Submit([]UnitDescription{{
		Name: "u", Slots: 8, Rule: sge.SingleNode,
		Work: func(env *ExecEnv) (WorkResult, error) { return WorkResult{Duration: 1}, nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Pilot != p2 {
		t.Error("least-loaded picked the busy pilot")
	}
}

func TestParallelUnitsOverlapInVirtualTime(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 2) // 2 nodes × 8 slots
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	work := func(env *ExecEnv) (WorkResult, error) { return WorkResult{Duration: 100}, nil }
	units, _ := um.Submit([]UnitDescription{
		{Name: "k35", Slots: 8, Rule: sge.SingleNode, Work: work},
		{Name: "k37", Slots: 8, Rule: sge.SingleNode, Work: work},
	})
	start := prov.Clock().Now()
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	// Both fit simultaneously: makespan 100, not 200.
	if got := prov.Clock().Now().Sub(start); got != 100 {
		t.Errorf("two-node makespan %v, want 100", got)
	}
	for _, u := range units {
		if u.Start != start {
			t.Errorf("unit %s start %v", u.ID, u.Start)
		}
	}
}

func TestUnitRetryRecoversTransientFailure(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	calls := 0
	units, _ := um.Submit([]UnitDescription{{
		Name: "flaky", Slots: 1, MaxRetries: 3,
		Work: func(env *ExecEnv) (WorkResult, error) {
			calls++
			if calls < 3 {
				return WorkResult{}, fmt.Errorf("transient node failure")
			}
			return WorkResult{Duration: 10}, nil
		},
	}})
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if u.State() != UnitDone {
		t.Fatalf("state %s (%v)", u.State(), u.Err)
	}
	if u.Attempts != 3 || calls != 3 {
		t.Errorf("attempts %d, calls %d", u.Attempts, calls)
	}
}

func TestUnitRetryExhaustion(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	calls := 0
	units, _ := um.Submit([]UnitDescription{{
		Name: "doomed", Slots: 1, MaxRetries: 2,
		Work: func(env *ExecEnv) (WorkResult, error) {
			calls++
			return WorkResult{}, fmt.Errorf("hard failure")
		},
	}})
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if u.State() != UnitFailed {
		t.Fatalf("state %s", u.State())
	}
	if calls != 3 { // initial + 2 retries
		t.Errorf("calls %d", calls)
	}
	if !strings.Contains(u.Err.Error(), "after 3 attempts") {
		t.Errorf("err %v", u.Err)
	}
}

func TestPilotBootFailureInjection(t *testing.T) {
	opts := cloud.DefaultOptions()
	opts.FailBoot = func(n int) bool { return n == 1 }
	prov := cloud.NewProvider(vclock.NewClock(0), opts)
	m := NewManager(prov, NewStateStore(), cluster.DefaultOptions())
	// First boot fails → pilot FAILED.
	if _, err := m.SubmitPilot(PilotDescription{InstanceType: "c3.2xlarge", Nodes: 2}); err == nil {
		t.Fatal("boot failure not surfaced")
	}
	// Second attempt succeeds (capacity recovered).
	p, err := m.SubmitPilot(PilotDescription{InstanceType: "c3.2xlarge", Nodes: 2})
	if err != nil {
		t.Fatalf("retry after capacity failure: %v", err)
	}
	if p.State() != PilotActive {
		t.Errorf("state %s", p.State())
	}
}

// Property: every history the framework produces obeys the state
// machines — replay all events and check edge legality.
func TestHistoryLegalityInvariant(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 2)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	um.Submit([]UnitDescription{
		{Name: "ok", Slots: 4, Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: 5}, nil
		}},
		{Name: "oom", Slots: 4, Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: 5, PeakMemoryGB: 1e9}, nil
		}},
	})
	um.Run()
	m.CompletePilot(p)
	cur := map[string]string{}
	for _, e := range m.Store().History() {
		if prev, ok := cur[e.ID]; ok {
			legal := false
			switch e.Kind {
			case KindPilot:
				legal = PilotState(prev).CanTransition(PilotState(e.To))
			case KindUnit:
				legal = UnitState(prev).CanTransition(UnitState(e.To))
			}
			if !legal {
				t.Errorf("illegal recorded transition %s: %s -> %s", e.ID, prev, e.To)
			}
		}
		cur[e.ID] = e.To
	}
	// Timestamps are non-decreasing.
	var last vclock.Time
	for _, e := range m.Store().History() {
		if e.At < last {
			t.Errorf("event time went backwards: %v", e)
		}
		last = e.At
	}
}
