package pilot

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/sge"
	"rnascale/internal/vclock"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRetryAndDegradedStateMachineEdges(t *testing.T) {
	legalUnit := [][2]UnitState{
		{UnitExecuting, UnitRetrying},
		{UnitRetrying, UnitExecuting},
		{UnitRetrying, UnitFailed},
		{UnitRetrying, UnitCanceled}, // cancel-during-retry
	}
	for _, e := range legalUnit {
		if !e[0].CanTransition(e[1]) {
			t.Errorf("%s -> %s should be legal", e[0], e[1])
		}
	}
	illegalUnit := [][2]UnitState{
		{UnitScheduled, UnitRetrying},
		{UnitNew, UnitRetrying},
		{UnitRetrying, UnitDone}, // must re-execute to finish
		{UnitDone, UnitRetrying},
	}
	for _, e := range illegalUnit {
		if e[0].CanTransition(e[1]) {
			t.Errorf("%s -> %s should be illegal", e[0], e[1])
		}
	}
	legalPilot := [][2]PilotState{
		{PilotActive, PilotDegraded},
		{PilotDegraded, PilotActive}, // replacement joined
		{PilotDegraded, PilotDone},
		{PilotDegraded, PilotFailed},
		{PilotDegraded, PilotCanceled},
	}
	for _, e := range legalPilot {
		if !e[0].CanTransition(e[1]) {
			t.Errorf("%s -> %s should be legal", e[0], e[1])
		}
	}
	illegalPilot := [][2]PilotState{
		{PilotNew, PilotDegraded},
		{PilotLaunching, PilotDegraded},
		{PilotDegraded, PilotLaunching},
		{PilotDone, PilotDegraded},
	}
	for _, e := range illegalPilot {
		if e[0].CanTransition(e[1]) {
			t.Errorf("%s -> %s should be illegal", e[0], e[1])
		}
	}
	if UnitRetrying.Final() || PilotDegraded.Final() {
		t.Error("retry/degraded states must not be final")
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	def := DefaultRetryPolicy()
	cases := []struct {
		pol   RetryPolicy
		retry int
		want  vclock.Duration
	}{
		{def, 1, 30 * vclock.Second},
		{def, 2, 60 * vclock.Second},
		{def, 3, 120 * vclock.Second},
		{def, 6, 10 * vclock.Minute},                                 // 960 s capped to 600 s
		{RetryPolicy{MaxRetries: 3}, 1, 0},                           // legacy: no backoff
		{RetryPolicy{Backoff: 10, Factor: 3}, 3, 90},                 // uncapped growth
		{RetryPolicy{Backoff: 10, Factor: 3, MaxBackoff: 50}, 3, 50}, // cap
		{RetryPolicy{Backoff: 10}, 2, 20},                            // factor defaults to 2
		{RetryPolicy{Backoff: 10}, 0, 0},                             // retry < 1
	}
	for i, c := range cases {
		if got := c.pol.BackoffFor(c.retry); got != c.want {
			t.Errorf("case %d: BackoffFor(%d) = %v, want %v", i, c.retry, got, c.want)
		}
	}
}

func TestRetryBackoffDelaysResubmission(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	calls := 0
	units, _ := um.Submit([]UnitDescription{{
		Name: "flaky", Slots: 1,
		Retry: RetryPolicy{MaxRetries: 2, Backoff: 50, Factor: 3},
		Work: func(env *ExecEnv) (WorkResult, error) {
			calls++
			if calls < 3 {
				return WorkResult{}, fmt.Errorf("transient")
			}
			return WorkResult{Duration: 100}, nil
		},
	}})
	start := prov.Clock().Now()
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if u.State() != UnitDone || u.Attempts != 3 {
		t.Fatalf("state %s attempts %d", u.State(), u.Attempts)
	}
	// Fail at start, wait 50; fail at start+50, wait 150; run 100.
	if want := start.Add(50 + 150 + 100); u.End != want {
		t.Errorf("end %v, want %v", u.End, want)
	}
	// The backoff windows are on the record: two AGENT_RETRYING events
	// at the failure times, re-executions after the backoff.
	var retryAt, execAt []vclock.Time
	for _, e := range m.Store().History() {
		if e.ID != u.ID {
			continue
		}
		switch UnitState(e.To) {
		case UnitRetrying:
			retryAt = append(retryAt, e.At)
		case UnitExecuting:
			execAt = append(execAt, e.At)
		}
	}
	if len(retryAt) != 2 || retryAt[0] != start || retryAt[1] != start.Add(50) {
		t.Errorf("retry events at %v", retryAt)
	}
	if len(execAt) != 3 || execAt[1] != start.Add(50) || execAt[2] != start.Add(200) {
		t.Errorf("exec events at %v", execAt)
	}
}

func TestCancelDuringRetryBackoff(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	ran := false
	units, _ := um.Submit([]UnitDescription{{
		Name: "parked", Slots: 1,
		Work: func(env *ExecEnv) (WorkResult, error) {
			ran = true
			return WorkResult{Duration: 1}, nil
		},
	}})
	u := units[0]
	now := prov.Clock().Now()
	// Drive the unit into the retry-backoff window by hand.
	if err := m.Store().Transition(u.ID, string(UnitExecuting), now, "agent exec"); err != nil {
		t.Fatal(err)
	}
	if err := m.Store().Transition(u.ID, string(UnitRetrying), now, "attempt 1 failed"); err != nil {
		t.Fatal(err)
	}
	// A unit parked in backoff is cancelable (unlike one mid-execution).
	if err := um.Cancel(u); err != nil {
		t.Fatalf("cancel during retry backoff: %v", err)
	}
	if u.State() != UnitCanceled {
		t.Fatalf("state %s, want CANCELED", u.State())
	}
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("canceled unit re-executed")
	}

	// Contrast: an actively executing unit is not cancelable.
	units2, _ := um.Submit([]UnitDescription{{
		Name: "busy", Slots: 1,
		Work: func(env *ExecEnv) (WorkResult, error) { return WorkResult{Duration: 1}, nil },
	}})
	u2 := units2[0]
	if err := m.Store().Transition(u2.ID, string(UnitExecuting), prov.Clock().Now(), "agent exec"); err != nil {
		t.Fatal(err)
	}
	if err := um.Cancel(u2); err == nil {
		t.Error("cancel of executing unit accepted")
	}
}

// counterValue reads one counter sample out of a registry, summing
// across label sets that match all given labels.
func counterValue(o *obs.Obs, name string, labels map[string]string) float64 {
	var v float64
	for _, pt := range o.Metrics.Points() {
		if pt.Name != name {
			continue
		}
		match := true
		for k, want := range labels {
			if pt.Labels[k] != want {
				match = false
				break
			}
		}
		if match {
			v += pt.Value
		}
	}
	return v
}

// TestNodeLossResubmission scripts the full recovery path: a VM
// hosting a running unit crashes; the pilot degrades, a replacement
// boots, the unit is resubmitted and completes.
func TestNodeLossResubmission(t *testing.T) {
	clock := vclock.NewClock(0)
	o := obs.New()
	plan, err := faults.ParseSpec("crash:at=500,vm=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan, 7, clock)
	inj.SetMetrics(o.Metrics)
	opts := cloud.DefaultOptions()
	opts.Faults = inj
	prov := cloud.NewProvider(clock, opts)
	m := NewManager(prov, NewStateStore(), cluster.DefaultOptions())
	p := activePilot(t, m, 2) // VMs i-000001, i-000002
	um := NewUnitManager(m.Store(), clock, RoundRobin)
	um.SetObs(o)
	um.AddPilots(p)
	units, _ := um.Submit([]UnitDescription{{
		Name: "asm", Slots: 8, Rule: sge.SingleNode,
		Retry: RetryPolicy{MaxRetries: 2, Backoff: 50},
		Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: 1000}, nil
		},
	}})
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if u.State() != UnitDone {
		t.Fatalf("state %s (%v)", u.State(), u.Err)
	}
	if u.Attempts != 2 {
		t.Errorf("attempts %d, want 2", u.Attempts)
	}
	// The crashed VM stopped billing at the crash and carries the
	// reason.
	dead, err := prov.Describe("i-000001")
	if err != nil {
		t.Fatal(err)
	}
	if dead.TerminatedAt != 500 || dead.InterruptReason != string(faults.ClassCrash) {
		t.Errorf("dead VM terminated %v reason %q", dead.TerminatedAt, dead.InterruptReason)
	}
	// A replacement exists and the pilot went Degraded and back.
	if _, err := prov.Describe("i-000003"); err != nil {
		t.Errorf("no replacement VM: %v", err)
	}
	var sawDegraded, sawReactivated bool
	for _, e := range m.Store().History() {
		if e.ID != p.ID {
			continue
		}
		if PilotState(e.To) == PilotDegraded {
			sawDegraded = true
			if e.At != 500 {
				t.Errorf("degraded at %v, want crash time 500", e.At)
			}
		}
		if sawDegraded && PilotState(e.To) == PilotActive {
			sawReactivated = true
		}
	}
	if !sawDegraded || !sawReactivated {
		t.Errorf("pilot recovery transitions missing: degraded=%v reactivated=%v", sawDegraded, sawReactivated)
	}
	// Recovery counters.
	if v := counterValue(o, MetricRetries, nil); v != 1 {
		t.Errorf("retries counter %v, want 1", v)
	}
	if v := counterValue(o, MetricUnitsRecovered, nil); v != 1 {
		t.Errorf("units recovered counter %v, want 1", v)
	}
	if v := counterValue(o, faults.MetricFaultsInjected, map[string]string{"class": string(faults.ClassCrash)}); v != 1 {
		t.Errorf("faults injected counter %v, want 1", v)
	}
	// The retry landed on the surviving node right after the backoff:
	// loss at 500, backoff 50, 1000 s of work.
	if want := vclock.Time(500 + 50 + 1000); u.End != want {
		t.Errorf("end %v, want %v", u.End, want)
	}
}

// TestRetriedUnitSpanTreeGolden pins the observable shape of a
// retried unit: the span tree with the AGENT_RETRYING excursion and
// the recovery annotations.
func TestRetriedUnitSpanTreeGolden(t *testing.T) {
	o := obs.New()
	store := NewStateStore()
	NewSpanBridge(store, o)
	prov := cloud.NewProvider(vclock.NewClock(0), cloud.DefaultOptions())
	m := NewManager(prov, store, cluster.DefaultOptions())
	p := activePilot(t, m, 1)
	um := NewUnitManager(store, prov.Clock(), RoundRobin)
	um.SetObs(o)
	um.AddPilots(p)
	calls := 0
	units, _ := um.Submit([]UnitDescription{{
		Name: "asm-k35", Slots: 8, Rule: sge.SingleNode,
		Retry: RetryPolicy{MaxRetries: 1, Backoff: 30},
		Work: func(env *ExecEnv) (WorkResult, error) {
			calls++
			if calls == 1 {
				return WorkResult{}, fmt.Errorf("transient node failure")
			}
			return WorkResult{Duration: 120}, nil
		},
	}})
	if err := um.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.CompletePilot(p); err != nil {
		t.Fatal(err)
	}
	if units[0].State() != UnitDone || units[0].Attempts != 2 {
		t.Fatalf("state %s attempts %d", units[0].State(), units[0].Attempts)
	}
	var buf bytes.Buffer
	if err := o.Tracer.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), string(UnitRetrying)) {
		t.Fatalf("tree lacks %s:\n%s", UnitRetrying, buf.String())
	}
	path := filepath.Join("testdata", "retried_unit_tree.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/pilot -update`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span tree drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
