package pilot

import (
	"testing"

	"rnascale/internal/vclock"
)

func TestRetryBudgetNilUnlimited(t *testing.T) {
	var b *RetryBudget
	for i := 0; i < 100; i++ {
		if !b.Allow(vclock.Time(i)) {
			t.Fatalf("nil budget denied retry %d", i)
		}
	}
	if b.Remaining() != -1 {
		t.Fatalf("nil budget Remaining = %d, want -1 sentinel", b.Remaining())
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	b := NewRetryBudget(3, 0)
	for i := 0; i < 3; i++ {
		if !b.Allow(vclock.Time(i)) {
			t.Fatalf("retry %d denied with tokens left", i)
		}
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d after spending the capacity, want 0", b.Remaining())
	}
	// No refill configured: the bucket stays dry forever after.
	if b.Allow(vclock.Time(1e9)) {
		t.Fatal("empty bucket with no refill allowed a retry")
	}
}

func TestRetryBudgetNegativeCapacityClamped(t *testing.T) {
	b := NewRetryBudget(-5, 0)
	if b.Allow(0) {
		t.Fatal("negative-capacity budget allowed a retry")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
}

func TestRetryBudgetRefillsOverVirtualTime(t *testing.T) {
	b := NewRetryBudget(2, vclock.Minute)
	if !b.Allow(0) || !b.Allow(0) {
		t.Fatal("full bucket denied")
	}
	if b.Allow(0) {
		t.Fatal("empty bucket allowed with no time elapsed")
	}
	// Half a refill period accrues half a token: still not enough.
	if b.Allow(30) {
		t.Fatal("allowed on a fractional token")
	}
	// A full minute past the last observation accrues the rest.
	if !b.Allow(90) {
		t.Fatal("refilled token denied after a full refill period")
	}
	// Refill never exceeds capacity: after a long idle stretch only
	// `capacity` retries are available, not one per elapsed period.
	long := vclock.Time(100 * vclock.Hour)
	if !b.Allow(long) || !b.Allow(long) {
		t.Fatal("capacity tokens denied after long idle")
	}
	if b.Allow(long) {
		t.Fatal("refill overflowed the bucket capacity")
	}
}
