package pilot

import (
	"fmt"
	"sort"
	"strings"

	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/obs"
	"rnascale/internal/sge"
	"rnascale/internal/vclock"
)

// ExecEnv is what a unit's work function sees: the resources its
// pilot granted.
type ExecEnv struct {
	// Store is the pilot cluster's shared filesystem.
	Store *cluster.SharedStore
	// SlotsByNode is the SGE placement (node name → slots).
	SlotsByNode map[string]int
	// Slots is the total slot count granted.
	Slots int
	// Nodes is the number of distinct nodes granted.
	Nodes int
	// InstanceType describes the hardware of each node.
	InstanceType cloud.InstanceType
}

// WorkResult is what a unit's work function reports back.
type WorkResult struct {
	// Duration is the unit's virtual runtime on this allocation, from
	// the component's cost model.
	Duration vclock.Duration
	// PeakMemoryGB is the resident high-water mark per node; exceeding
	// the node's memory fails the unit (the paper's Table IV "X"
	// entries are exactly this failure).
	PeakMemoryGB float64
	// Output is an arbitrary result payload.
	Output any
}

// WorkFunc performs a unit's real computation.
type WorkFunc func(env *ExecEnv) (WorkResult, error)

// RetryPolicy governs how the pilot agent restarts a failing unit:
// up to MaxRetries restarts, each preceded by a capped exponential
// backoff in virtual time (Backoff, Backoff·Factor, … ≤ MaxBackoff).
type RetryPolicy struct {
	// MaxRetries is the number of restarts after the first attempt.
	MaxRetries int
	// Backoff precedes the first retry; 0 retries immediately.
	Backoff vclock.Duration
	// Factor multiplies the backoff per retry (≤0 defaults to 2).
	Factor float64
	// MaxBackoff caps the grown backoff (0 = uncapped).
	MaxBackoff vclock.Duration
}

// DefaultRetryPolicy is the stage policy a fault-injected run falls
// back to: three restarts at 30 s, 60 s, 120 s (capped at 10 min).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 30 * vclock.Second, Factor: 2, MaxBackoff: 10 * vclock.Minute}
}

// BackoffFor reports the backoff preceding retry number `retry`
// (1-based).
func (p RetryPolicy) BackoffFor(retry int) vclock.Duration {
	if p.Backoff <= 0 || retry < 1 {
		return 0
	}
	f := p.Factor
	if f <= 0 {
		f = 2
	}
	d := float64(p.Backoff)
	for i := 1; i < retry; i++ {
		d *= f
		if p.MaxBackoff > 0 && d >= float64(p.MaxBackoff) {
			break
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	return vclock.Duration(d)
}

// UnitDescription describes one compute unit.
type UnitDescription struct {
	Name string
	// Slots is the SGE slot request.
	Slots int
	// Rule is the SGE parallel-environment allocation rule.
	Rule sge.AllocationRule
	// MemoryGBPerSlot is the declared per-slot memory demand used for
	// placement feasibility (0 = unconstrained).
	MemoryGBPerSlot float64
	// MaxRetries is how many times the agent restarts a failing unit
	// before declaring it FAILED — the pilot's "starting, monitoring,
	// and restarting" responsibility. 0 means no retries. Superseded
	// by Retry when that is set.
	MaxRetries int
	// Retry, when non-zero, is the full restart policy (count plus
	// virtual-time backoff); the zero value falls back to MaxRetries
	// with no backoff.
	Retry RetryPolicy
	// Work is the unit body.
	Work WorkFunc
}

// retryPolicy resolves the effective restart policy.
func (d UnitDescription) retryPolicy() RetryPolicy {
	if d.Retry != (RetryPolicy{}) {
		return d.Retry
	}
	return RetryPolicy{MaxRetries: d.MaxRetries}
}

// Unit is a submitted compute unit.
type Unit struct {
	ID    string
	Desc  UnitDescription
	Pilot *Pilot
	store *StateStore

	// Start and End bracket the unit's execution in virtual time.
	Start, End vclock.Time
	// Attempts counts work executions (1 for a clean run; >1 when the
	// agent restarted the unit).
	Attempts int
	// Result holds the work function's report when the unit is DONE.
	Result WorkResult
	// Err holds the failure cause when the unit is FAILED.
	Err error
}

// State reports the unit's current state.
func (u *Unit) State() UnitState {
	s, _ := u.store.State(u.ID)
	return UnitState(s)
}

// SchedulingPolicy selects a pilot for each unit.
type SchedulingPolicy int

const (
	// RoundRobin cycles through pilots in submission order.
	RoundRobin SchedulingPolicy = iota
	// LeastLoaded binds each unit to the pilot whose SGE queue frees
	// the requested slots earliest.
	LeastLoaded
)

// String implements fmt.Stringer.
func (p SchedulingPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("SchedulingPolicy(%d)", int(p))
	}
}

// UnitManager binds compute units to pilots and executes them — the
// UnitManager of RADICAL-Pilot.
type UnitManager struct {
	store  *StateStore
	clock  *vclock.Clock
	policy SchedulingPolicy
	pilots []*Pilot
	units  []*Unit
	nextID int
	rrNext int
	// boundSlots counts slots of units bound to each pilot but not
	// yet executed — the pending-load signal for LeastLoaded.
	boundSlots map[*Pilot]int
	obs        *obs.Obs
	onUnitDone func(u *Unit, at vclock.Time)
	// budget, when set, bounds restarts across every unit this manager
	// runs (shared run-wide by the pipeline); nil = unlimited.
	budget *RetryBudget
	// cutoff, when non-zero, is the virtual time past which no new
	// attempt may start: units whose submission or retry would begin at
	// or after it are canceled instead of executed.
	cutoff vclock.Time
}

// NewUnitManager returns a unit manager over the shared store.
func NewUnitManager(store *StateStore, clock *vclock.Clock, policy SchedulingPolicy) *UnitManager {
	return &UnitManager{store: store, clock: clock, policy: policy, boundSlots: map[*Pilot]int{}}
}

// SetObs attaches an observability bundle for the retry/recovery
// counters; nil detaches it.
func (um *UnitManager) SetObs(o *obs.Obs) { um.obs = o }

// SetOnUnitDone registers a callback invoked once per unit that
// reaches AGENT_DONE, in virtual-time order, with the unit's terminal
// time. The core pipeline hooks its run journal here: the callback
// fires after the Done transition, so the journaled unit is already
// durable in the state store when the record is written.
func (um *UnitManager) SetOnUnitDone(f func(u *Unit, at vclock.Time)) { um.onUnitDone = f }

// SetRetryBudget attaches a run-wide retry budget consulted before
// every restart; nil (the default) leaves retries bounded only by the
// per-unit policy.
func (um *UnitManager) SetRetryBudget(b *RetryBudget) { um.budget = b }

// SetCutoff sets the virtual time past which no new unit attempt may
// start — the run deadline (or operator cancellation point) pushed
// down from the pipeline. Zero disables it.
func (um *UnitManager) SetCutoff(t vclock.Time) { um.cutoff = t }

// count increments an unlabelled unit-manager counter.
func (um *UnitManager) count(name, help string) {
	if um.obs == nil || um.obs.Metrics == nil {
		return
	}
	um.obs.Metrics.Counter(name, help, nil).Inc()
}

// AddPilots registers pilots as scheduling targets.
func (um *UnitManager) AddPilots(ps ...*Pilot) error {
	for _, p := range ps {
		if p.State() != PilotActive {
			return fmt.Errorf("pilot: cannot add %s in state %s", p.ID, p.State())
		}
		um.pilots = append(um.pilots, p)
	}
	return nil
}

// Submit registers units and binds each to a pilot according to the
// scheduling policy, leaving them in AGENT_SCHEDULING. Execution
// happens in Run.
func (um *UnitManager) Submit(descs []UnitDescription) ([]*Unit, error) {
	if len(um.pilots) == 0 {
		return nil, fmt.Errorf("pilot: no pilots attached to unit manager")
	}
	now := um.clock.Now()
	units := make([]*Unit, 0, len(descs))
	for _, d := range descs {
		if d.Work == nil {
			return nil, fmt.Errorf("pilot: unit %q has no work function", d.Name)
		}
		if d.Slots <= 0 {
			return nil, fmt.Errorf("pilot: unit %q requests %d slots", d.Name, d.Slots)
		}
		um.nextID++
		u := &Unit{ID: fmt.Sprintf("unit.%05d(%s)", um.nextID, d.Name), Desc: d, store: um.store}
		if err := um.store.Register(KindUnit, u.ID, string(UnitNew), now); err != nil {
			return nil, err
		}
		if err := um.store.Transition(u.ID, string(UnitScheduling), now, "submitted"); err != nil {
			return nil, err
		}
		u.Pilot = um.pick(u)
		um.boundSlots[u.Pilot] += d.Slots
		if err := um.store.Transition(u.ID, string(UnitScheduled), now,
			"bound to "+u.Pilot.ID+" by "+um.policy.String()); err != nil {
			return nil, err
		}
		units = append(units, u)
		um.units = append(um.units, u)
	}
	return units, nil
}

// pick applies the scheduling policy.
func (um *UnitManager) pick(u *Unit) *Pilot {
	switch um.policy {
	case LeastLoaded:
		best := um.pilots[0]
		bestR, bestM := um.load(best, u.Desc.Slots)
		for _, p := range um.pilots[1:] {
			r, m := um.load(p, u.Desc.Slots)
			if r < bestR || (r == bestR && m < bestM) {
				best, bestR, bestM = p, r, m
			}
		}
		return best
	default: // RoundRobin
		p := um.pilots[um.rrNext%len(um.pilots)]
		um.rrNext++
		return p
	}
}

// load scores a pilot for LeastLoaded: primary key is the pending
// bound-but-unexecuted load relative to the pilot's slot capacity,
// secondary key is the SGE queue's current makespan. Pilots too small
// for the request score +inf.
func (um *UnitManager) load(p *Pilot, slots int) (float64, vclock.Time) {
	sched := p.Cluster.Scheduler()
	total := sched.TotalSlots()
	if total < slots {
		return 1e300, vclock.Time(1e300)
	}
	return float64(um.boundSlots[p]) / float64(total), vclock.Max(um.clock.Now(), sched.Makespan())
}

// Cancel cancels a unit that is not actively executing: pending units
// and units parked in the retry-backoff window (AGENT_RETRYING) are
// cancelable; a unit mid-execution is not.
func (um *UnitManager) Cancel(u *Unit) error {
	st := u.State()
	if st.Final() {
		return nil
	}
	if st == UnitExecuting {
		return fmt.Errorf("pilot: unit %s already executing", u.ID)
	}
	return um.store.Transition(u.ID, string(UnitCanceled), um.clock.Now(), "canceled")
}

// Run executes every scheduled unit on its bound pilot: the work
// function runs for real, its reported duration is scheduled on the
// pilot's SGE queue, and memory is checked against the node size.
// Run returns when all units are terminal, with the clock advanced to
// the latest unit end ("waiting for completion").
func (um *UnitManager) Run() error {
	now := um.clock.Now()
	type outcome struct {
		u   *Unit
		at  vclock.Time
		err error
	}
	var outs []outcome
	var latest vclock.Time
	for _, u := range um.units {
		if u.State() != UnitScheduled {
			continue
		}
		if um.cutoff > 0 && now >= um.cutoff {
			// The run's deadline already passed: cancel cleanly instead
			// of starting work that cannot count.
			if err := um.store.Transition(u.ID, string(UnitCanceled), now, "run cutoff reached"); err != nil {
				return err
			}
			continue
		}
		if err := um.store.Transition(u.ID, string(UnitExecuting), now, "agent exec"); err != nil {
			return err
		}
		end, err := um.execute(u, now)
		if err != nil {
			u.Err = err
			outs = append(outs, outcome{u: u, at: vclock.Max(end, now), err: err})
			continue
		}
		outs = append(outs, outcome{u: u, at: end})
		if end > latest {
			latest = end
		}
	}
	// Terminal events are recorded in virtual-time order so the global
	// event log stays chronological.
	sort.SliceStable(outs, func(a, b int) bool { return outs[a].at < outs[b].at })
	for _, o := range outs {
		if o.u.State().Final() {
			// Already terminal (e.g. canceled during a retry backoff).
			continue
		}
		if o.err != nil {
			if err := um.store.Transition(o.u.ID, string(UnitFailed), o.at, o.err.Error()); err != nil {
				return err
			}
			continue
		}
		if err := um.store.Transition(o.u.ID, string(UnitDone), o.at, "exit 0"); err != nil {
			return err
		}
		if um.onUnitDone != nil {
			um.onUnitDone(o.u, o.at)
		}
	}
	um.clock.AdvanceTo(latest)
	// Executed units are no longer pending load.
	um.boundSlots = map[*Pilot]int{}
	return nil
}

// execute runs one unit under its retry policy — restarting it after
// a capped exponential virtual-time backoff, as the pilot agent's
// "starting, monitoring, and restarting" responsibility demands — and
// returns its virtual end time (the failure time when the error is
// non-nil).
func (um *UnitManager) execute(u *Unit, at vclock.Time) (vclock.Time, error) {
	pol := u.Desc.retryPolicy()
	submitAt := at
	for u.Attempts = 1; ; u.Attempts++ {
		end, failAt, err := um.tryOnce(u, submitAt)
		if err == nil {
			if um.cutoff > 0 && end > um.cutoff {
				// The attempt would outlive the run's deadline: the expired
				// deadline preempts it at the cutoff rather than letting
				// the run overrun.
				if terr := um.store.Transition(u.ID, string(UnitCanceled), um.cutoff, "run cutoff preempted execution"); terr != nil {
					return um.cutoff, terr
				}
				return um.cutoff, fmt.Errorf("canceled at run cutoff: execution would end at %v", end)
			}
			if u.Attempts > 1 {
				um.count(MetricUnitsRecovered, "Units that reached DONE after at least one retry.")
			}
			return end, nil
		}
		if u.Attempts > pol.MaxRetries {
			if u.Attempts > 1 {
				return failAt, fmt.Errorf("%w (after %d attempts)", err, u.Attempts)
			}
			return failAt, err
		}
		if !um.budget.Allow(failAt) {
			// The run-wide retry budget is spent: fail instead of
			// resubmitting, so correlated failure waves stay bounded.
			um.count(MetricRetryBudgetExhausted, "Retries denied by an exhausted run retry budget.")
			return failAt, fmt.Errorf("retry budget exhausted: %w", err)
		}
		backoff := pol.BackoffFor(u.Attempts)
		if terr := um.store.Transition(u.ID, string(UnitRetrying), failAt,
			fmt.Sprintf("attempt %d failed: %v; retry in %v", u.Attempts, err, backoff)); terr != nil {
			return failAt, terr
		}
		um.count(MetricRetries, "Unit attempt restarts by the pilot agent.")
		if u.State() == UnitCanceled {
			// Canceled during the backoff window: no resubmission, and
			// the terminal state is already recorded.
			return failAt, fmt.Errorf("canceled during retry backoff: %w", err)
		}
		submitAt = failAt.Add(backoff)
		if um.cutoff > 0 && submitAt >= um.cutoff {
			// The backoff window crosses the run's deadline: the retry
			// would start past the cutoff, so cancel instead.
			if terr := um.store.Transition(u.ID, string(UnitCanceled), failAt, "run cutoff reached during retry backoff"); terr != nil {
				return failAt, terr
			}
			return failAt, fmt.Errorf("canceled at run cutoff: %w", err)
		}
		if terr := um.store.Transition(u.ID, string(UnitExecuting), submitAt,
			fmt.Sprintf("retry %d", u.Attempts+1)); terr != nil {
			return submitAt, terr
		}
	}
}

// tryOnce makes one attempt at a unit, submitted at `at`. On success
// it returns the job end; on failure the virtual failure time and the
// cause. Node losses that surface during the attempt are recovered
// (replacement VM) before returning, so the retry lands on a healthy
// queue.
func (um *UnitManager) tryOnce(u *Unit, at vclock.Time) (end, failAt vclock.Time, err error) {
	p := u.Pilot
	prov := p.Cluster.Provider()
	// Interruptions that already struck this pilot's nodes are
	// recovered first, so placement only sees live nodes.
	um.recoverLostNodes(p, at)
	it := p.Cluster.InstanceType()
	if prov.Faults().UnitAttemptFails(u.ID, u.Attempts, at) {
		return 0, at, fmt.Errorf("injected transient failure (attempt %d)", u.Attempts)
	}
	env := &ExecEnv{
		Store:        p.Cluster.Store(),
		InstanceType: it,
		Slots:        u.Desc.Slots,
	}
	// SGE reserves on submit, so the work runs first (yielding the
	// true duration), then the job is scheduled.
	res, err := um.attempt(u, env, it)
	if err != nil {
		return 0, at, err
	}
	job, err := p.Cluster.Scheduler().Submit(sge.JobSpec{
		Name:            u.ID,
		Slots:           u.Desc.Slots,
		Rule:            u.Desc.Rule,
		Duration:        res.Duration,
		MemoryGBPerSlot: u.Desc.MemoryGBPerSlot,
	}, at)
	if err != nil {
		return 0, at, fmt.Errorf("sge: %w", err)
	}
	if iv := um.interruptionDuring(p, job); iv != nil {
		lossAt := vclock.Max(iv.At, job.Start)
		um.recoverNode(p, iv)
		return 0, lossAt, fmt.Errorf("node %s lost (%s)", iv.VM.ID, iv.Class)
	}
	env.SlotsByNode = job.SlotsByNode
	env.Nodes = len(job.SlotsByNode)
	u.Start, u.End = job.Start, job.End
	u.Result = res
	return job.End, 0, nil
}

// interruptionDuring reports the earliest scheduled interruption that
// kills one of the job's nodes before the job would finish, or nil.
func (um *UnitManager) interruptionDuring(p *Pilot, job *sge.Job) *cloud.Interruption {
	prov := p.Cluster.Provider()
	var hit *cloud.Interruption
	for node := range job.SlotsByNode {
		// Queue node names embed the backing VM ID ("node001:i-000002").
		_, vmID, ok := strings.Cut(node, ":")
		if !ok {
			continue
		}
		if iv, ok := prov.InterruptionFor(vmID); ok && !iv.Applied && iv.At < job.End {
			if hit == nil || iv.At < hit.At {
				hit = iv
			}
		}
	}
	return hit
}

// recoverLostNodes applies and recovers every interruption that has
// already struck this pilot's cluster as of `until`.
func (um *UnitManager) recoverLostNodes(p *Pilot, until vclock.Time) {
	for _, iv := range p.Cluster.Provider().PendingInterruptions(until) {
		if p.Cluster.HasVM(iv.VM.ID) {
			um.recoverNode(p, iv)
		}
	}
}

// recoverNode handles one node loss: the interruption is applied (the
// VM terminates and bills to the loss time), the pilot degrades, a
// replacement VM boots and joins the queue, and the pilot reactivates
// — the pilot-level resubmission path that keeps a stage alive across
// involuntary node loss.
func (um *UnitManager) recoverNode(p *Pilot, iv *cloud.Interruption) {
	prov := p.Cluster.Provider()
	if !prov.ApplyInterruption(iv) {
		return
	}
	dead := iv.VM
	if p.State() == PilotActive {
		_ = um.store.Transition(p.ID, string(PilotDegraded), dead.TerminatedAt,
			fmt.Sprintf("node %s lost (%s)", dead.ID, iv.Class))
	}
	repl, err := p.Cluster.ReplaceVM(dead)
	if err != nil {
		// No replacement available: the pilot limps along on its
		// surviving nodes and stays degraded.
		return
	}
	if p.State() == PilotDegraded {
		_ = um.store.Transition(p.ID, string(PilotActive), prov.Clock().Now(),
			fmt.Sprintf("replacement %s joined for %s", repl.ID, dead.ID))
	}
}

// attempt runs the work function once and applies the result checks.
func (um *UnitManager) attempt(u *Unit, env *ExecEnv, it cloud.InstanceType) (WorkResult, error) {
	res, err := u.Desc.Work(env)
	if err != nil {
		return WorkResult{}, fmt.Errorf("work: %w", err)
	}
	if res.Duration < 0 {
		return WorkResult{}, fmt.Errorf("work reported negative duration %v", res.Duration)
	}
	if res.PeakMemoryGB > it.MemoryGB {
		return WorkResult{}, fmt.Errorf("out of memory: peak %.1f GB exceeds %s's %.1f GB",
			res.PeakMemoryGB, it.Name, it.MemoryGB)
	}
	return res, nil
}

// Units lists every unit submitted through this manager.
func (um *UnitManager) Units() []*Unit { return append([]*Unit(nil), um.units...) }

// Failed lists units in FAILED state.
func (um *UnitManager) Failed() []*Unit {
	var out []*Unit
	for _, u := range um.units {
		if u.State() == UnitFailed {
			out = append(out, u)
		}
	}
	return out
}
