package pilot

import (
	"fmt"
	"sort"

	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/sge"
	"rnascale/internal/vclock"
)

// ExecEnv is what a unit's work function sees: the resources its
// pilot granted.
type ExecEnv struct {
	// Store is the pilot cluster's shared filesystem.
	Store *cluster.SharedStore
	// SlotsByNode is the SGE placement (node name → slots).
	SlotsByNode map[string]int
	// Slots is the total slot count granted.
	Slots int
	// Nodes is the number of distinct nodes granted.
	Nodes int
	// InstanceType describes the hardware of each node.
	InstanceType cloud.InstanceType
}

// WorkResult is what a unit's work function reports back.
type WorkResult struct {
	// Duration is the unit's virtual runtime on this allocation, from
	// the component's cost model.
	Duration vclock.Duration
	// PeakMemoryGB is the resident high-water mark per node; exceeding
	// the node's memory fails the unit (the paper's Table IV "X"
	// entries are exactly this failure).
	PeakMemoryGB float64
	// Output is an arbitrary result payload.
	Output any
}

// WorkFunc performs a unit's real computation.
type WorkFunc func(env *ExecEnv) (WorkResult, error)

// UnitDescription describes one compute unit.
type UnitDescription struct {
	Name string
	// Slots is the SGE slot request.
	Slots int
	// Rule is the SGE parallel-environment allocation rule.
	Rule sge.AllocationRule
	// MemoryGBPerSlot is the declared per-slot memory demand used for
	// placement feasibility (0 = unconstrained).
	MemoryGBPerSlot float64
	// MaxRetries is how many times the agent restarts a failing unit
	// before declaring it FAILED — the pilot's "starting, monitoring,
	// and restarting" responsibility. 0 means no retries.
	MaxRetries int
	// Work is the unit body.
	Work WorkFunc
}

// Unit is a submitted compute unit.
type Unit struct {
	ID    string
	Desc  UnitDescription
	Pilot *Pilot
	store *StateStore

	// Start and End bracket the unit's execution in virtual time.
	Start, End vclock.Time
	// Attempts counts work executions (1 for a clean run; >1 when the
	// agent restarted the unit).
	Attempts int
	// Result holds the work function's report when the unit is DONE.
	Result WorkResult
	// Err holds the failure cause when the unit is FAILED.
	Err error
}

// State reports the unit's current state.
func (u *Unit) State() UnitState {
	s, _ := u.store.State(u.ID)
	return UnitState(s)
}

// SchedulingPolicy selects a pilot for each unit.
type SchedulingPolicy int

const (
	// RoundRobin cycles through pilots in submission order.
	RoundRobin SchedulingPolicy = iota
	// LeastLoaded binds each unit to the pilot whose SGE queue frees
	// the requested slots earliest.
	LeastLoaded
)

// String implements fmt.Stringer.
func (p SchedulingPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("SchedulingPolicy(%d)", int(p))
	}
}

// UnitManager binds compute units to pilots and executes them — the
// UnitManager of RADICAL-Pilot.
type UnitManager struct {
	store  *StateStore
	clock  *vclock.Clock
	policy SchedulingPolicy
	pilots []*Pilot
	units  []*Unit
	nextID int
	rrNext int
	// boundSlots counts slots of units bound to each pilot but not
	// yet executed — the pending-load signal for LeastLoaded.
	boundSlots map[*Pilot]int
}

// NewUnitManager returns a unit manager over the shared store.
func NewUnitManager(store *StateStore, clock *vclock.Clock, policy SchedulingPolicy) *UnitManager {
	return &UnitManager{store: store, clock: clock, policy: policy, boundSlots: map[*Pilot]int{}}
}

// AddPilots registers pilots as scheduling targets.
func (um *UnitManager) AddPilots(ps ...*Pilot) error {
	for _, p := range ps {
		if p.State() != PilotActive {
			return fmt.Errorf("pilot: cannot add %s in state %s", p.ID, p.State())
		}
		um.pilots = append(um.pilots, p)
	}
	return nil
}

// Submit registers units and binds each to a pilot according to the
// scheduling policy, leaving them in AGENT_SCHEDULING. Execution
// happens in Run.
func (um *UnitManager) Submit(descs []UnitDescription) ([]*Unit, error) {
	if len(um.pilots) == 0 {
		return nil, fmt.Errorf("pilot: no pilots attached to unit manager")
	}
	now := um.clock.Now()
	units := make([]*Unit, 0, len(descs))
	for _, d := range descs {
		if d.Work == nil {
			return nil, fmt.Errorf("pilot: unit %q has no work function", d.Name)
		}
		if d.Slots <= 0 {
			return nil, fmt.Errorf("pilot: unit %q requests %d slots", d.Name, d.Slots)
		}
		um.nextID++
		u := &Unit{ID: fmt.Sprintf("unit.%05d(%s)", um.nextID, d.Name), Desc: d, store: um.store}
		if err := um.store.Register(KindUnit, u.ID, string(UnitNew), now); err != nil {
			return nil, err
		}
		if err := um.store.Transition(u.ID, string(UnitScheduling), now, "submitted"); err != nil {
			return nil, err
		}
		u.Pilot = um.pick(u)
		um.boundSlots[u.Pilot] += d.Slots
		if err := um.store.Transition(u.ID, string(UnitScheduled), now,
			"bound to "+u.Pilot.ID+" by "+um.policy.String()); err != nil {
			return nil, err
		}
		units = append(units, u)
		um.units = append(um.units, u)
	}
	return units, nil
}

// pick applies the scheduling policy.
func (um *UnitManager) pick(u *Unit) *Pilot {
	switch um.policy {
	case LeastLoaded:
		best := um.pilots[0]
		bestR, bestM := um.load(best, u.Desc.Slots)
		for _, p := range um.pilots[1:] {
			r, m := um.load(p, u.Desc.Slots)
			if r < bestR || (r == bestR && m < bestM) {
				best, bestR, bestM = p, r, m
			}
		}
		return best
	default: // RoundRobin
		p := um.pilots[um.rrNext%len(um.pilots)]
		um.rrNext++
		return p
	}
}

// load scores a pilot for LeastLoaded: primary key is the pending
// bound-but-unexecuted load relative to the pilot's slot capacity,
// secondary key is the SGE queue's current makespan. Pilots too small
// for the request score +inf.
func (um *UnitManager) load(p *Pilot, slots int) (float64, vclock.Time) {
	sched := p.Cluster.Scheduler()
	total := sched.TotalSlots()
	if total < slots {
		return 1e300, vclock.Time(1e300)
	}
	return float64(um.boundSlots[p]) / float64(total), vclock.Max(um.clock.Now(), sched.Makespan())
}

// Cancel cancels a unit that has not started executing.
func (um *UnitManager) Cancel(u *Unit) error {
	st := u.State()
	if st.Final() {
		return nil
	}
	if st == UnitExecuting {
		return fmt.Errorf("pilot: unit %s already executing", u.ID)
	}
	return um.store.Transition(u.ID, string(UnitCanceled), um.clock.Now(), "canceled")
}

// Run executes every scheduled unit on its bound pilot: the work
// function runs for real, its reported duration is scheduled on the
// pilot's SGE queue, and memory is checked against the node size.
// Run returns when all units are terminal, with the clock advanced to
// the latest unit end ("waiting for completion").
func (um *UnitManager) Run() error {
	now := um.clock.Now()
	type outcome struct {
		u   *Unit
		at  vclock.Time
		err error
	}
	var outs []outcome
	var latest vclock.Time
	for _, u := range um.units {
		if u.State() != UnitScheduled {
			continue
		}
		if err := um.store.Transition(u.ID, string(UnitExecuting), now, "agent exec"); err != nil {
			return err
		}
		end, err := um.execute(u, now)
		if err != nil {
			u.Err = err
			outs = append(outs, outcome{u: u, at: now, err: err})
			continue
		}
		outs = append(outs, outcome{u: u, at: end})
		if end > latest {
			latest = end
		}
	}
	// Terminal events are recorded in virtual-time order so the global
	// event log stays chronological.
	sort.SliceStable(outs, func(a, b int) bool { return outs[a].at < outs[b].at })
	for _, o := range outs {
		if o.err != nil {
			if err := um.store.Transition(o.u.ID, string(UnitFailed), o.at, o.err.Error()); err != nil {
				return err
			}
			continue
		}
		if err := um.store.Transition(o.u.ID, string(UnitDone), o.at, "exit 0"); err != nil {
			return err
		}
	}
	um.clock.AdvanceTo(latest)
	// Executed units are no longer pending load.
	um.boundSlots = map[*Pilot]int{}
	return nil
}

// execute runs one unit — restarting it up to MaxRetries times on
// failure, as the pilot agent does — and returns its virtual end
// time.
func (um *UnitManager) execute(u *Unit, at vclock.Time) (vclock.Time, error) {
	p := u.Pilot
	it := p.Cluster.InstanceType()
	env := &ExecEnv{
		Store:        p.Cluster.Store(),
		InstanceType: it,
		Slots:        u.Desc.Slots,
	}
	// SGE reserves on submit, so the work runs first (yielding the
	// true duration), then the job is scheduled.
	var res WorkResult
	var err error
	for u.Attempts = 1; ; u.Attempts++ {
		res, err = um.attempt(u, env, it)
		if err == nil {
			break
		}
		if u.Attempts > u.Desc.MaxRetries {
			if u.Desc.MaxRetries > 0 {
				return 0, fmt.Errorf("%w (after %d attempts)", err, u.Attempts)
			}
			return 0, err
		}
	}
	job, err := p.Cluster.Scheduler().Submit(sge.JobSpec{
		Name:            u.ID,
		Slots:           u.Desc.Slots,
		Rule:            u.Desc.Rule,
		Duration:        res.Duration,
		MemoryGBPerSlot: u.Desc.MemoryGBPerSlot,
	}, at)
	if err != nil {
		return 0, fmt.Errorf("sge: %w", err)
	}
	env.SlotsByNode = job.SlotsByNode
	env.Nodes = len(job.SlotsByNode)
	u.Start, u.End = job.Start, job.End
	u.Result = res
	return job.End, nil
}

// attempt runs the work function once and applies the result checks.
func (um *UnitManager) attempt(u *Unit, env *ExecEnv, it cloud.InstanceType) (WorkResult, error) {
	res, err := u.Desc.Work(env)
	if err != nil {
		return WorkResult{}, fmt.Errorf("work: %w", err)
	}
	if res.Duration < 0 {
		return WorkResult{}, fmt.Errorf("work reported negative duration %v", res.Duration)
	}
	if res.PeakMemoryGB > it.MemoryGB {
		return WorkResult{}, fmt.Errorf("out of memory: peak %.1f GB exceeds %s's %.1f GB",
			res.PeakMemoryGB, it.Name, it.MemoryGB)
	}
	return res, nil
}

// Units lists every unit submitted through this manager.
func (um *UnitManager) Units() []*Unit { return append([]*Unit(nil), um.units...) }

// Failed lists units in FAILED state.
func (um *UnitManager) Failed() []*Unit {
	var out []*Unit
	for _, u := range um.units {
		if u.State() == UnitFailed {
			out = append(out, u)
		}
	}
	return out
}
