package pilot

import (
	"fmt"
	"sort"
	"strings"

	"rnascale/internal/vclock"
)

// RenderTimeline draws the state-store event history as a text Gantt
// chart: one swimlane per entity, scaled to the given width. Pilots
// print before units; both keep first-seen order. It is the
// observability view the paper gets from RADICAL-Pilot's database
// ("all pilot jobs are controlled and monitored via the back-end
// database system that updates run-time information on the fly").
func RenderTimeline(events []Event, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 20
	}
	type lane struct {
		id          string
		kind        EntityKind
		first, last vclock.Time
		final       string
	}
	byID := map[string]*lane{}
	var order []string
	var tmax vclock.Time
	for _, e := range events {
		l, ok := byID[e.ID]
		if !ok {
			l = &lane{id: e.ID, kind: e.Kind, first: e.At}
			byID[e.ID] = l
			order = append(order, e.ID)
		}
		if e.At > l.last {
			l.last = e.At
		}
		l.final = e.To
		if e.At > tmax {
			tmax = e.At
		}
	}
	// Pilots first, then units, preserving first-seen order.
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := byID[order[a]].kind, byID[order[b]].kind
		if ka != kb {
			return ka == KindPilot
		}
		return false
	})
	span := float64(tmax)
	if span <= 0 {
		span = 1
	}
	pos := func(t vclock.Time) int {
		p := int(float64(t) / span * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %v (one column ≈ %v)\n",
		vclock.Duration(tmax), vclock.Duration(span/float64(width-1)))
	for _, id := range order {
		l := byID[id]
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		s, e := pos(l.first), pos(l.last)
		if s == e {
			// A single-instant lane needs two cells, or the closing
			// bracket overwrites the opening one.
			if e < width-1 {
				e++
			} else {
				s--
			}
		}
		for i := s; i <= e; i++ {
			bar[i] = '='
		}
		bar[s] = '['
		bar[e] = ']'
		name := l.id
		if len(name) > 30 {
			name = name[:30]
		}
		fmt.Fprintf(&b, "%-30s |%s| %s\n", name, bar, l.final)
	}
	return b.String()
}
