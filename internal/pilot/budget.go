package pilot

import (
	"math"

	"rnascale/internal/vclock"
)

// MetricRetryBudgetExhausted counts retries that were denied because
// the run's retry budget was empty — each one fails its unit (and so
// its stage) instead of resubmitting.
const MetricRetryBudgetExhausted = "rnascale_retry_budget_exhausted_total"

// RetryBudget is a virtual-time token bucket bounding how many unit
// restarts a whole run may spend. Every retry — across all stages and
// runners sharing the budget — consumes one token; an empty bucket
// fails the unit instead of resubmitting, converting a correlated
// failure wave (reclaim storm, cold-start storm) into a bounded
// number of attempts rather than an amplifying retry storm.
//
// Tokens refill at one per RefillPer of virtual time (0 = no refill).
// A nil *RetryBudget means "unlimited": every method is nil-safe, so
// callers never branch.
type RetryBudget struct {
	capacity float64
	tokens   float64
	refill   vclock.Duration // virtual time per replenished token
	last     vclock.Time     // last virtual time the bucket was observed
}

// NewRetryBudget returns a full bucket of `capacity` retry tokens that
// regains one token per refillPer of virtual time (0 disables refill).
func NewRetryBudget(capacity int, refillPer vclock.Duration) *RetryBudget {
	if capacity < 0 {
		capacity = 0
	}
	return &RetryBudget{
		capacity: float64(capacity),
		tokens:   float64(capacity),
		refill:   refillPer,
	}
}

// Allow spends one token at virtual time `at` and reports whether the
// retry may proceed. A nil budget always allows.
func (b *RetryBudget) Allow(at vclock.Time) bool {
	if b == nil {
		return true
	}
	if b.refill > 0 && at > b.last {
		b.tokens = math.Min(b.capacity, b.tokens+float64(at-b.last)/float64(b.refill))
	}
	if at > b.last {
		b.last = at
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Remaining reports the whole tokens left (without refilling). A nil
// budget reports a sentinel -1, meaning unlimited.
func (b *RetryBudget) Remaining() int {
	if b == nil {
		return -1
	}
	return int(b.tokens)
}
