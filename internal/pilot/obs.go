package pilot

import (
	"strings"
	"sync"

	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// MetricTransitions counts every pilot/unit state change, labelled by
// entity kind and target state.
const MetricTransitions = "rnascale_state_transitions_total"

// MetricSGEQueueWait is the histogram of SGE queue-wait (submit →
// start) per job, in virtual seconds, across every pilot's batch
// queue.
const MetricSGEQueueWait = "rnascale_sge_queue_wait_seconds"

// MetricRetries counts unit attempt restarts (each Executing →
// Retrying → Executing cycle).
const MetricRetries = "rnascale_retries_total"

// MetricUnitsRecovered counts units that reached DONE after at least
// one retry — the faults the retry policy actually absorbed.
const MetricUnitsRecovered = "rnascale_units_recovered_total"

// SpanBridge mirrors the state store's event stream into obs spans —
// the run-time monitoring the paper gets from RADICAL-Pilot's MongoDB
// backend, driven from the *existing* event path rather than a
// parallel one. Every pilot becomes a span under the current parent
// (set per stage by the pipeline), every unit a span under its bound
// pilot, and every state transition a span event.
type SpanBridge struct {
	mu     sync.Mutex
	o      *obs.Obs
	parent *obs.Span
	spans  map[string]*obs.Span
	queued map[string]*pendingEntity
}

// pendingEntity buffers a unit's events until its pilot binding is
// known (units register before scheduling decides their pilot).
type pendingEntity struct {
	start  vclock.Time
	events []Event
}

// NewSpanBridge subscribes a bridge to the store. Pass the obs bundle
// whose tracer should receive the spans; a nil bundle (or tracer)
// returns a nil bridge, whose methods are no-ops.
func NewSpanBridge(store *StateStore, o *obs.Obs) *SpanBridge {
	if o == nil || o.Tracer == nil {
		return nil
	}
	b := &SpanBridge{o: o, spans: map[string]*obs.Span{}, queued: map[string]*pendingEntity{}}
	store.Subscribe(b.onEvent)
	return b
}

// SetParent fixes the span under which subsequently registered pilots
// hang — the pipeline points it at the current stage span.
func (b *SpanBridge) SetParent(s *obs.Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.parent = s
	b.mu.Unlock()
}

// SpanFor returns the span mirrored for an entity ID, or nil.
func (b *SpanBridge) SpanFor(id string) *obs.Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spans[id]
}

// onEvent handles one state-store event. It runs under the store's
// lock, so it only touches the bridge and the tracer.
func (b *SpanBridge) onEvent(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.o.Metrics != nil && e.From != "" {
		b.o.Metrics.Counter(MetricTransitions, "Pilot framework state transitions, by kind and target state.",
			obs.Labels{"kind": string(e.Kind), "to": e.To}).Inc() //rnavet:allow metriccard — e.To is a PilotState/UnitState machine state name, a finite set fixed at compile time
	}
	switch e.Kind {
	case KindPilot:
		if e.From == "" {
			b.spans[e.ID] = b.o.Tracer.StartSpan(b.parent, obs.KindPilot, e.ID, e.At)
			return
		}
		b.record(b.spans[e.ID], e, PilotState(e.To).Final())
	case KindUnit:
		if e.From == "" {
			b.queued[e.ID] = &pendingEntity{start: e.At}
			return
		}
		if span, ok := b.spans[e.ID]; ok {
			b.record(span, e, UnitState(e.To).Final())
			return
		}
		p := b.queued[e.ID]
		if p == nil {
			p = &pendingEntity{start: e.At}
			b.queued[e.ID] = p
		}
		p.events = append(p.events, e)
		// The scheduling decision names the pilot ("bound to <pilot>
		// by <policy>"): that is the moment the unit's place in the
		// hierarchy is known, so materialize its span there.
		if pilotID, ok := boundPilot(e.Note); ok {
			parent := b.spans[pilotID]
			if parent == nil {
				parent = b.parent
			}
			span := b.o.Tracer.StartSpan(parent, obs.KindUnit, e.ID, p.start)
			if pilotID != "" {
				span.SetAttr("pilot", pilotID)
			}
			for _, buffered := range p.events {
				b.record(span, buffered, UnitState(buffered.To).Final())
			}
			b.spans[e.ID] = span
			delete(b.queued, e.ID)
		}
	}
}

// record appends a transition to a span, ending it on terminal
// states.
func (b *SpanBridge) record(span *obs.Span, e Event, final bool) {
	if span == nil {
		return
	}
	span.Event(e.At, e.To, e.Note)
	if final {
		span.SetAttr("final_state", e.To)
		span.End(e.At)
	}
}

// boundPilot extracts the pilot ID from a scheduling note of the form
// "bound to <pilot> by <policy>".
func boundPilot(note string) (string, bool) {
	rest, ok := strings.CutPrefix(note, "bound to ")
	if !ok {
		return "", false
	}
	id, _, _ := strings.Cut(rest, " by ")
	return id, true
}
