package pilot

import (
	"strings"
	"testing"

	"rnascale/internal/cloud"
	"rnascale/internal/faults"
	"rnascale/internal/vclock"
)

func newFaasRig() (*cloud.Provider, *StateStore) {
	opts := cloud.DefaultOptions()
	opts.Serverless = &cloud.ServerlessOptions{}
	p := cloud.NewProvider(vclock.NewClock(0), opts)
	return p, NewStateStore()
}

func TestFunctionRunnerRequiresBackend(t *testing.T) {
	p := cloud.NewProvider(vclock.NewClock(0), cloud.DefaultOptions())
	if _, err := NewFunctionRunner(p, NewStateStore(), "pa"); err == nil {
		t.Fatal("runner built without a serverless backend")
	}
}

func TestFunctionRunnerHappyPath(t *testing.T) {
	p, store := newFaasRig()
	fr, err := NewFunctionRunner(p, store, "pa")
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID() != "faas(pa)" {
		t.Errorf("runner id %q", fr.ID())
	}
	// The pseudo-pilot is active immediately — no boot, no config.
	if s, _ := store.State(fr.ID()); PilotState(s) != PilotActive {
		t.Errorf("runner state %s, want active", s)
	}
	if p.Clock().Now() != 0 {
		t.Errorf("runner construction advanced the clock to %v", p.Clock().Now())
	}
	work := func(env *ExecEnv) (WorkResult, error) {
		if env.Store != fr.Store() {
			t.Error("work did not see the runner's object store")
		}
		if env.Nodes != 1 || env.InstanceType.Name != "serverless" {
			t.Errorf("env %+v", env)
		}
		return WorkResult{Duration: 2 * vclock.Minute, PeakMemoryGB: 3}, nil
	}
	units, err := fr.Submit([]UnitDescription{
		{Name: "shard0", Slots: 1, Work: work},
		{Name: "shard1", Slots: 1, Work: work},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doneOrder []string
	fr.SetOnUnitDone(func(u *Unit, at vclock.Time) { doneOrder = append(doneOrder, u.ID) })
	if err := fr.Run(); err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if u.State() != UnitDone {
			t.Fatalf("%s state %s: %v", u.ID, u.State(), u.Err)
		}
	}
	if len(doneOrder) != 2 {
		t.Fatalf("onUnitDone fired %d times", len(doneOrder))
	}
	// Both units burst at t=0, both cold (no warm env available), so
	// the stage's wall time is coldStart + duration.
	opts := p.Serverless().Options()
	want := vclock.Time(0).Add(opts.ColdStart + 2*vclock.Minute)
	if got := p.Clock().Now(); got != want {
		t.Errorf("stage ended at %v, want %v", got, want)
	}
	total, cold, warm := p.Serverless().Invocations()
	if total != 2 || cold != 2 || warm != 0 {
		t.Errorf("invocations %d/%d/%d, want 2 cold", total, cold, warm)
	}
	if err := fr.Complete(); err != nil {
		t.Fatal(err)
	}
	if s, _ := store.State(fr.ID()); PilotState(s) != PilotDone {
		t.Errorf("runner state %s after Complete", s)
	}
	if err := fr.Complete(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestFunctionRunnerSplitsLongUnits(t *testing.T) {
	p, store := newFaasRig()
	fr, err := NewFunctionRunner(p, store, "pb")
	if err != nil {
		t.Fatal(err)
	}
	// 40 min at a 15 min cap → 3 parallel pieces of 13m20s.
	units, err := fr.Submit([]UnitDescription{{
		Name:  "asm",
		Slots: 1,
		Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: 40 * vclock.Minute, PeakMemoryGB: 8}, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Run(); err != nil {
		t.Fatal(err)
	}
	if units[0].State() != UnitDone {
		t.Fatalf("unit %s: %v", units[0].State(), units[0].Err)
	}
	total, cold, _ := p.Serverless().Invocations()
	if total != 3 || cold != 3 {
		t.Errorf("invocations %d (%d cold), want 3 parallel cold pieces", total, cold)
	}
	opts := p.Serverless().Options()
	want := vclock.Time(0).Add(opts.ColdStart + 40*vclock.Minute/3)
	if got := units[0].End; got != want {
		t.Errorf("unit end %v, want %v (slowest piece)", got, want)
	}
}

func TestFunctionRunnerMemoryOverflowFails(t *testing.T) {
	p, store := newFaasRig()
	fr, err := NewFunctionRunner(p, store, "pb")
	if err != nil {
		t.Fatal(err)
	}
	units, err := fr.Submit([]UnitDescription{{
		Name:  "big",
		Slots: 1,
		Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: vclock.Minute, PeakMemoryGB: 61}, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Run(); err != nil {
		t.Fatal(err)
	}
	if units[0].State() != UnitFailed {
		t.Fatalf("unit state %s, want failed", units[0].State())
	}
	if !strings.Contains(units[0].Err.Error(), "function tier") {
		t.Errorf("failure cause: %v", units[0].Err)
	}
	// Failed attempts bill nothing.
	if usd := p.Serverless().TotalUSD(); usd != 0 {
		t.Errorf("failed unit billed %v", usd)
	}
}

func TestFunctionRunnerRetriesFlakes(t *testing.T) {
	plan, err := faults.ParseSpec("unitflake:p=1,n=1")
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewClock(0)
	opts := cloud.DefaultOptions()
	opts.Serverless = &cloud.ServerlessOptions{}
	opts.Faults = faults.NewInjector(plan, 42, clk)
	p := cloud.NewProvider(clk, opts)
	store := NewStateStore()
	fr, err := NewFunctionRunner(p, store, "pc")
	if err != nil {
		t.Fatal(err)
	}
	units, err := fr.Submit([]UnitDescription{{
		Name:  "merge",
		Slots: 1,
		Retry: RetryPolicy{MaxRetries: 2, Backoff: 30 * vclock.Second},
		Work: func(env *ExecEnv) (WorkResult, error) {
			return WorkResult{Duration: vclock.Minute, PeakMemoryGB: 1}, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Run(); err != nil {
		t.Fatal(err)
	}
	u := units[0]
	if u.State() != UnitDone {
		t.Fatalf("unit %s: %v", u.State(), u.Err)
	}
	if u.Attempts < 2 {
		t.Errorf("attempts = %d, want a retry", u.Attempts)
	}
	// The retried attempt starts after the backoff window.
	if u.Start < vclock.Time(30) {
		t.Errorf("retry started at %v, before backoff elapsed", u.Start)
	}
}

func TestFunctionRunnerDeterministicReplay(t *testing.T) {
	run := func() (vclock.Time, float64) {
		p, store := newFaasRig()
		fr, err := NewFunctionRunner(p, store, "pa")
		if err != nil {
			t.Fatal(err)
		}
		var descs []UnitDescription
		for i := 0; i < 8; i++ {
			d := vclock.Duration(i+1) * 5 * vclock.Minute
			descs = append(descs, UnitDescription{
				Name:  "shard",
				Slots: 1,
				Work: func(env *ExecEnv) (WorkResult, error) {
					return WorkResult{Duration: d, PeakMemoryGB: float64(i%3 + 1)}, nil
				},
			})
		}
		if _, err := fr.Submit(descs); err != nil {
			t.Fatal(err)
		}
		if err := fr.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Clock().Now(), p.TotalCost()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Errorf("replay diverged: (%v, %v) vs (%v, %v)", t1, c1, t2, c2)
	}
}
