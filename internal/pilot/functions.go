package pilot

import (
	"fmt"
	"math"
	"sort"

	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// FunctionRunner executes compute units as serverless function
// invocations instead of SGE jobs on a pilot's cluster — the
// function-per-unit backend. It registers a pseudo-pilot in the state
// store (so spans, transitions and the journal see the same event
// shapes a VM-backed stage produces) and mirrors the UnitManager
// contract the pipeline drives: Submit, Run, SetObs, SetOnUnitDone,
// Units, Failed.
//
// A unit whose reported runtime exceeds the per-invocation duration
// cap is split into ceil(duration/cap) parallel piece invocations;
// the unit's wall time is the slowest piece's start latency plus its
// share of the compute.
type FunctionRunner struct {
	store *StateStore
	clock *vclock.Clock
	prov  *cloud.Provider
	// fs is the object store the functions share (S3-style), standing
	// in for the cluster's NFS store.
	fs         *cluster.SharedStore
	name       string
	id         string
	units      []*Unit
	nextID     int
	obs        *obs.Obs
	onUnitDone func(u *Unit, at vclock.Time)
	budget     *RetryBudget
	cutoff     vclock.Time
}

// functionPolicy is the scheduling-note policy name, parsed by the
// span bridge the same way UnitManager's policy names are.
const functionPolicy = "function-per-unit"

// NewFunctionRunner registers a serverless stage runner named for its
// stage. The provider must have the serverless backend configured.
func NewFunctionRunner(prov *cloud.Provider, store *StateStore, name string) (*FunctionRunner, error) {
	if prov.Serverless() == nil {
		return nil, fmt.Errorf("pilot: serverless backend requested but Options.Serverless is not configured")
	}
	fr := &FunctionRunner{
		store: store,
		clock: prov.Clock(),
		prov:  prov,
		fs:    cluster.NewSharedStore(),
		name:  name,
		id:    fmt.Sprintf("faas(%s)", name),
	}
	now := fr.clock.Now()
	if err := store.Register(KindPilot, fr.id, string(PilotNew), now); err != nil {
		return nil, err
	}
	if err := store.Transition(fr.id, string(PilotLaunching), now, "provisioning function"); err != nil {
		return nil, err
	}
	// Functions need no boot or cluster configuration: the runner is
	// active immediately; provisioning latency shows up per-invocation
	// as cold starts instead.
	if err := store.Transition(fr.id, string(PilotActive), now, "function deployed"); err != nil {
		return nil, err
	}
	return fr, nil
}

// ID reports the pseudo-pilot's state-store ID.
func (fr *FunctionRunner) ID() string { return fr.id }

// Store exposes the runner's shared object store.
func (fr *FunctionRunner) Store() *cluster.SharedStore { return fr.fs }

// SetObs attaches an observability bundle for the retry/recovery
// counters; nil detaches it.
func (fr *FunctionRunner) SetObs(o *obs.Obs) { fr.obs = o }

// SetOnUnitDone registers the per-unit completion callback (see
// UnitManager.SetOnUnitDone).
func (fr *FunctionRunner) SetOnUnitDone(f func(u *Unit, at vclock.Time)) { fr.onUnitDone = f }

// SetRetryBudget attaches a run-wide retry budget (see
// UnitManager.SetRetryBudget); nil = unlimited.
func (fr *FunctionRunner) SetRetryBudget(b *RetryBudget) { fr.budget = b }

// SetCutoff sets the virtual time past which no new attempt may start
// (see UnitManager.SetCutoff). Zero disables it.
func (fr *FunctionRunner) SetCutoff(t vclock.Time) { fr.cutoff = t }

func (fr *FunctionRunner) count(name, help string) {
	if fr.obs == nil || fr.obs.Metrics == nil {
		return
	}
	fr.obs.Metrics.Counter(name, help, nil).Inc()
}

// Submit registers units and binds each to the function backend,
// leaving them in AGENT_SCHEDULING. Execution happens in Run.
func (fr *FunctionRunner) Submit(descs []UnitDescription) ([]*Unit, error) {
	now := fr.clock.Now()
	units := make([]*Unit, 0, len(descs))
	for _, d := range descs {
		if d.Work == nil {
			return nil, fmt.Errorf("pilot: unit %q has no work function", d.Name)
		}
		if d.Slots <= 0 {
			return nil, fmt.Errorf("pilot: unit %q requests %d slots", d.Name, d.Slots)
		}
		fr.nextID++
		u := &Unit{ID: fmt.Sprintf("unit.%05d(%s)", fr.nextID, d.Name), Desc: d, store: fr.store}
		if err := fr.store.Register(KindUnit, u.ID, string(UnitNew), now); err != nil {
			return nil, err
		}
		if err := fr.store.Transition(u.ID, string(UnitScheduling), now, "submitted"); err != nil {
			return nil, err
		}
		if err := fr.store.Transition(u.ID, string(UnitScheduled), now,
			"bound to "+fr.id+" by "+functionPolicy); err != nil {
			return nil, err
		}
		units = append(units, u)
		fr.units = append(fr.units, u)
	}
	return units, nil
}

// Run invokes every scheduled unit: all units burst concurrently at
// the current time (functions have no queue), each under its retry
// policy. Run returns when all units are terminal, with the clock
// advanced to the latest unit end.
func (fr *FunctionRunner) Run() error {
	now := fr.clock.Now()
	type outcome struct {
		u   *Unit
		at  vclock.Time
		err error
	}
	var outs []outcome
	var latest vclock.Time
	for _, u := range fr.units {
		if u.State() != UnitScheduled {
			continue
		}
		if fr.cutoff > 0 && now >= fr.cutoff {
			if err := fr.store.Transition(u.ID, string(UnitCanceled), now, "run cutoff reached"); err != nil {
				return err
			}
			continue
		}
		if err := fr.store.Transition(u.ID, string(UnitExecuting), now, "function exec"); err != nil {
			return err
		}
		end, err := fr.execute(u, now)
		if err != nil {
			u.Err = err
			outs = append(outs, outcome{u: u, at: vclock.Max(end, now), err: err})
			continue
		}
		outs = append(outs, outcome{u: u, at: end})
		if end > latest {
			latest = end
		}
	}
	sort.SliceStable(outs, func(a, b int) bool { return outs[a].at < outs[b].at })
	for _, o := range outs {
		if o.u.State().Final() {
			continue
		}
		if o.err != nil {
			if err := fr.store.Transition(o.u.ID, string(UnitFailed), o.at, o.err.Error()); err != nil {
				return err
			}
			continue
		}
		if err := fr.store.Transition(o.u.ID, string(UnitDone), o.at, "exit 0"); err != nil {
			return err
		}
		if fr.onUnitDone != nil {
			fr.onUnitDone(o.u, o.at)
		}
	}
	fr.clock.AdvanceTo(latest)
	return nil
}

// execute runs one unit under its retry policy, mirroring
// UnitManager.execute.
func (fr *FunctionRunner) execute(u *Unit, at vclock.Time) (vclock.Time, error) {
	pol := u.Desc.retryPolicy()
	submitAt := at
	for u.Attempts = 1; ; u.Attempts++ {
		end, failAt, err := fr.tryOnce(u, submitAt)
		if err == nil {
			if fr.cutoff > 0 && end > fr.cutoff {
				// Preempt an invocation that would outlive the run's
				// deadline (see UnitManager.execute).
				if terr := fr.store.Transition(u.ID, string(UnitCanceled), fr.cutoff, "run cutoff preempted execution"); terr != nil {
					return fr.cutoff, terr
				}
				return fr.cutoff, fmt.Errorf("canceled at run cutoff: execution would end at %v", end)
			}
			fr.prov.Breaker().RecordSuccess(cloud.Serverless)
			if u.Attempts > 1 {
				fr.count(MetricUnitsRecovered, "Units that reached DONE after at least one retry.")
			}
			return end, nil
		}
		fr.prov.Breaker().RecordFailure(cloud.Serverless)
		if u.Attempts > pol.MaxRetries {
			if u.Attempts > 1 {
				return failAt, fmt.Errorf("%w (after %d attempts)", err, u.Attempts)
			}
			return failAt, err
		}
		if !fr.budget.Allow(failAt) {
			fr.count(MetricRetryBudgetExhausted, "Retries denied by an exhausted run retry budget.")
			return failAt, fmt.Errorf("retry budget exhausted: %w", err)
		}
		backoff := pol.BackoffFor(u.Attempts)
		if terr := fr.store.Transition(u.ID, string(UnitRetrying), failAt,
			fmt.Sprintf("attempt %d failed: %v; retry in %v", u.Attempts, err, backoff)); terr != nil {
			return failAt, terr
		}
		fr.count(MetricRetries, "Unit attempt restarts by the pilot agent.")
		if u.State() == UnitCanceled {
			return failAt, fmt.Errorf("canceled during retry backoff: %w", err)
		}
		submitAt = failAt.Add(backoff)
		if fr.cutoff > 0 && submitAt >= fr.cutoff {
			if terr := fr.store.Transition(u.ID, string(UnitCanceled), failAt, "run cutoff reached during retry backoff"); terr != nil {
				return failAt, terr
			}
			return failAt, fmt.Errorf("canceled at run cutoff: %w", err)
		}
		if terr := fr.store.Transition(u.ID, string(UnitExecuting), submitAt,
			fmt.Sprintf("retry %d", u.Attempts+1)); terr != nil {
			return submitAt, terr
		}
	}
}

// tryOnce makes one attempt at a unit, submitted at `at`: the work
// function runs (yielding the true duration and memory), the runtime
// is split into as many pieces as the duration cap demands, and each
// piece invokes the stage's function in parallel.
func (fr *FunctionRunner) tryOnce(u *Unit, at vclock.Time) (end, failAt vclock.Time, err error) {
	if fr.prov.Faults().UnitAttemptFails(u.ID, u.Attempts, at) {
		return 0, at, fmt.Errorf("injected transient failure (attempt %d)", u.Attempts)
	}
	opts := fr.prov.Serverless().Options()
	env := &ExecEnv{
		Store: fr.fs,
		Slots: u.Desc.Slots,
		Nodes: 1,
		// Functions are single-node allocations shaped by the largest
		// memory tier; per-unit memory is checked against the tier table
		// below, not here.
		InstanceType: cloud.InstanceType{Name: "serverless", Cores: u.Desc.Slots, MemoryGB: opts.MaxTierGB()},
	}
	res, werr := u.Desc.Work(env)
	if werr != nil {
		return 0, at, fmt.Errorf("work: %w", werr)
	}
	if res.Duration < 0 {
		return 0, at, fmt.Errorf("work reported negative duration %v", res.Duration)
	}
	if _, ok := opts.TierFor(res.PeakMemoryGB); !ok {
		return 0, at, fmt.Errorf("out of memory: peak %.1f GB exceeds the largest %.0f GB function tier",
			res.PeakMemoryGB, opts.MaxTierGB())
	}
	pieces := 1
	if res.Duration > opts.MaxDuration {
		pieces = int(math.Ceil(float64(res.Duration) / float64(opts.MaxDuration)))
	}
	pieceDur := res.Duration / vclock.Duration(pieces)
	var wall vclock.Duration
	for i := 0; i < pieces; i++ {
		inv, ierr := fr.prov.Invoke(fr.name, res.PeakMemoryGB, pieceDur)
		if ierr != nil {
			return 0, at, ierr
		}
		if d := inv.Latency + pieceDur; d > wall {
			wall = d
		}
	}
	u.Start, u.End = at, at.Add(wall)
	u.Result = res
	return u.End, 0, nil
}

// Complete drives the pseudo-pilot to DONE once its stage finishes.
func (fr *FunctionRunner) Complete() error {
	s, _ := fr.store.State(fr.id)
	if PilotState(s).Final() {
		return nil
	}
	return fr.store.Transition(fr.id, string(PilotDone), fr.clock.Now(), "workload complete")
}

// Units lists every unit submitted through this runner.
func (fr *FunctionRunner) Units() []*Unit { return append([]*Unit(nil), fr.units...) }

// Failed lists units in FAILED state.
func (fr *FunctionRunner) Failed() []*Unit {
	var out []*Unit
	for _, u := range fr.units {
		if u.State() == UnitFailed {
			out = append(out, u)
		}
	}
	return out
}
