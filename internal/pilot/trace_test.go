package pilot

import (
	"strings"
	"testing"
)

func TestRenderTimeline(t *testing.T) {
	events := []Event{
		{Kind: KindPilot, ID: "pilot.0001(PA)", From: "", To: string(PilotNew), At: 0},
		{Kind: KindPilot, ID: "pilot.0001(PA)", From: string(PilotNew), To: string(PilotActive), At: 100},
		{Kind: KindUnit, ID: "unit.00001(pre)", From: "", To: string(UnitNew), At: 100},
		{Kind: KindUnit, ID: "unit.00001(pre)", From: string(UnitNew), To: string(UnitDone), At: 900},
		{Kind: KindPilot, ID: "pilot.0001(PA)", From: string(PilotActive), To: string(PilotDone), At: 1000},
	}
	out := RenderTimeline(events, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %q", out)
	}
	// Pilot lane before unit lane.
	if !strings.Contains(lines[1], "pilot.0001") || !strings.Contains(lines[2], "unit.00001") {
		t.Errorf("lane order:\n%s", out)
	}
	if !strings.Contains(lines[1], "DONE") || !strings.Contains(lines[2], "DONE") {
		t.Errorf("final states missing:\n%s", out)
	}
	// The pilot bar spans the full width; the unit starts later.
	pilotStart := strings.IndexByte(lines[1], '[')
	unitStart := strings.IndexByte(lines[2], '[')
	if unitStart <= pilotStart {
		t.Errorf("unit bar does not start after pilot bar:\n%s", out)
	}
}

func TestRenderTimelineDegenerate(t *testing.T) {
	if out := RenderTimeline(nil, 40); !strings.Contains(out, "no events") {
		t.Errorf("empty: %q", out)
	}
	if out := RenderTimeline([]Event{}, 40); !strings.Contains(out, "no events") {
		t.Errorf("empty slice: %q", out)
	}

	// Width below the minimum clamps to 20 columns.
	out := RenderTimeline([]Event{
		{Kind: KindUnit, ID: "u", To: "NEW", At: 0},
		{Kind: KindUnit, ID: "u", From: "NEW", To: "DONE", At: 100},
	}, 1)
	lane := laneFor(t, out, "u")
	if got := strings.LastIndexByte(lane, '|') - strings.IndexByte(lane, '|') - 1; got != 20 {
		t.Errorf("clamped bar width %d, want 20:\n%s", got, out)
	}

	// A single instantaneous event (span <= 0) still renders a lane
	// with both brackets, not just a closing one.
	out = RenderTimeline([]Event{{Kind: KindUnit, ID: "u", To: "NEW", At: 0}}, 40)
	lane = laneFor(t, out, "u")
	if !strings.Contains(lane, "[") || !strings.Contains(lane, "]") {
		t.Errorf("instant lane lost a bracket: %q", lane)
	}
	if strings.Index(lane, "[") >= strings.Index(lane, "]") {
		t.Errorf("brackets out of order: %q", lane)
	}

	// Two lanes ending at the same last column keep both brackets too.
	out = RenderTimeline([]Event{
		{Kind: KindPilot, ID: "p", To: "NEW", At: 0},
		{Kind: KindPilot, ID: "p", From: "NEW", To: "DONE", At: 1000},
		{Kind: KindUnit, ID: "u", To: "NEW", At: 999},
		{Kind: KindUnit, ID: "u", From: "NEW", To: "DONE", At: 1000},
	}, 40)
	lane = laneFor(t, out, "u")
	if !strings.Contains(lane, "[") || !strings.Contains(lane, "]") {
		t.Errorf("end-of-chart lane lost a bracket: %q", lane)
	}
}

// laneFor extracts the rendered swimlane for an entity ID.
func laneFor(t *testing.T, out, id string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, id+" ") {
			return line
		}
	}
	t.Fatalf("no lane for %q in:\n%s", id, out)
	return ""
}

func TestRenderTimelineFromRealRun(t *testing.T) {
	prov, m := newRig()
	p := activePilot(t, m, 1)
	um := NewUnitManager(m.Store(), prov.Clock(), RoundRobin)
	um.AddPilots(p)
	um.Submit([]UnitDescription{{
		Name: "job", Slots: 4,
		Work: func(env *ExecEnv) (WorkResult, error) { return WorkResult{Duration: 60}, nil },
	}})
	um.Run()
	m.CompletePilot(p)
	out := RenderTimeline(m.Store().History(), 60)
	if !strings.Contains(out, "pilot.0001") || !strings.Contains(out, "unit.00001(job)") {
		t.Errorf("timeline:\n%s", out)
	}
}
