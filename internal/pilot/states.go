// Package pilot reimplements the pilot-job abstraction of
// RADICAL-Pilot, the framework the paper layers its RNA-seq pipeline
// on. A *pilot* is a container job that acquires a block of resources
// (here: a StarCluster-style cluster of cloud VMs); *compute units*
// are the application's tasks, late-bound onto pilots by a unit
// scheduler and executed through the pilot's local batch queue (SGE).
//
// The package mirrors RADICAL-Pilot's architecture: pilot and unit
// managers coordinate through a shared state store (the role MongoDB
// plays in the real system), every entity advances through an explicit
// state machine, and state changes are observable through watches.
package pilot

import (
	"fmt"
	"sync"

	"rnascale/internal/vclock"
)

// PilotState is the lifecycle of a pilot.
type PilotState string

// Pilot states, following RADICAL-Pilot's model (condensed).
const (
	PilotNew       PilotState = "NEW"
	PilotLaunching PilotState = "PMGR_LAUNCHING"
	PilotActive    PilotState = "PMGR_ACTIVE"
	// PilotDegraded marks a pilot that lost a node to an interruption
	// and is recovering (replacement VM booting); it returns to ACTIVE
	// once recovered.
	PilotDegraded PilotState = "PMGR_DEGRADED"
	PilotDone     PilotState = "DONE"
	PilotCanceled PilotState = "CANCELED"
	PilotFailed   PilotState = "FAILED"
)

// pilotTransitions lists the legal pilot state machine edges.
var pilotTransitions = map[PilotState][]PilotState{
	PilotNew:       {PilotLaunching, PilotCanceled},
	PilotLaunching: {PilotActive, PilotFailed, PilotCanceled},
	PilotActive:    {PilotDegraded, PilotDone, PilotFailed, PilotCanceled},
	PilotDegraded:  {PilotActive, PilotDone, PilotFailed, PilotCanceled},
}

// Final reports whether the state is terminal.
func (s PilotState) Final() bool {
	return s == PilotDone || s == PilotCanceled || s == PilotFailed
}

// CanTransition reports whether s → next is a legal edge.
func (s PilotState) CanTransition(next PilotState) bool {
	for _, t := range pilotTransitions[s] {
		if t == next {
			return true
		}
	}
	return false
}

// UnitState is the lifecycle of a compute unit.
type UnitState string

// Unit states, following RADICAL-Pilot's model (condensed).
const (
	UnitNew        UnitState = "NEW"
	UnitScheduling UnitState = "UMGR_SCHEDULING"
	UnitScheduled  UnitState = "AGENT_SCHEDULING"
	UnitExecuting  UnitState = "AGENT_EXECUTING"
	// UnitRetrying marks a unit whose attempt failed and whose agent
	// is waiting out the retry backoff before resubmitting it.
	UnitRetrying UnitState = "AGENT_RETRYING"
	UnitDone     UnitState = "DONE"
	UnitCanceled UnitState = "CANCELED"
	UnitFailed   UnitState = "FAILED"
)

// unitTransitions lists the legal unit state machine edges.
var unitTransitions = map[UnitState][]UnitState{
	UnitNew:        {UnitScheduling, UnitCanceled},
	UnitScheduling: {UnitScheduled, UnitFailed, UnitCanceled},
	UnitScheduled:  {UnitExecuting, UnitFailed, UnitCanceled},
	UnitExecuting:  {UnitRetrying, UnitDone, UnitFailed, UnitCanceled},
	UnitRetrying:   {UnitExecuting, UnitFailed, UnitCanceled},
}

// Final reports whether the state is terminal.
func (s UnitState) Final() bool {
	return s == UnitDone || s == UnitCanceled || s == UnitFailed
}

// CanTransition reports whether s → next is a legal edge.
func (s UnitState) CanTransition(next UnitState) bool {
	for _, t := range unitTransitions[s] {
		if t == next {
			return true
		}
	}
	return false
}

// EntityKind distinguishes pilots from units in the state store.
type EntityKind string

// Entity kinds.
const (
	KindPilot EntityKind = "pilot"
	KindUnit  EntityKind = "unit"
)

// Event is one recorded state change.
type Event struct {
	Kind EntityKind
	ID   string
	From string
	To   string
	At   vclock.Time
	Note string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("[%v] %s %s: %s -> %s %s", e.At, e.Kind, e.ID, e.From, e.To, e.Note)
}

// StateStore is the shared coordination database — the role the
// MongoDB backend plays for RADICAL-Pilot ("all pilot jobs are
// controlled and monitored via the back-end database system that
// updates run-time information on the fly"). It records every state
// transition, enforces state-machine legality, and fans events out to
// watchers.
type StateStore struct {
	mu        sync.Mutex
	states    map[string]string // entity ID -> current state
	kinds     map[string]EntityKind
	history   []Event
	watchers  []chan Event
	observers []func(Event)
}

// NewStateStore returns an empty store.
func NewStateStore() *StateStore {
	return &StateStore{
		states: make(map[string]string),
		kinds:  make(map[string]EntityKind),
	}
}

// Register introduces an entity in its initial state.
func (s *StateStore) Register(kind EntityKind, id string, initial string, at vclock.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.states[id]; ok {
		return fmt.Errorf("pilot: entity %q already registered", id)
	}
	s.states[id] = initial
	s.kinds[id] = kind
	s.emit(Event{Kind: kind, ID: id, From: "", To: initial, At: at})
	return nil
}

// Transition moves an entity to a new state, enforcing the state
// machine for its kind.
func (s *StateStore) Transition(id string, to string, at vclock.Time, note string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.states[id]
	if !ok {
		return fmt.Errorf("pilot: unknown entity %q", id)
	}
	legal := false
	switch s.kinds[id] {
	case KindPilot:
		legal = PilotState(cur).CanTransition(PilotState(to))
	case KindUnit:
		legal = UnitState(cur).CanTransition(UnitState(to))
	}
	if !legal {
		return fmt.Errorf("pilot: illegal transition %s: %s -> %s", id, cur, to)
	}
	s.states[id] = to
	s.emit(Event{Kind: s.kinds[id], ID: id, From: cur, To: to, At: at, Note: note})
	return nil
}

// emit records and fans out; callers hold s.mu.
func (s *StateStore) emit(e Event) {
	s.history = append(s.history, e)
	for _, fn := range s.observers {
		fn(e)
	}
	for _, w := range s.watchers {
		select {
		case w <- e:
		default: // slow watcher: drop rather than deadlock the store
		}
	}
}

// State reports an entity's current state.
func (s *StateStore) State(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	return st, ok
}

// History returns a copy of all recorded events in order.
func (s *StateStore) History() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.history...)
}

// Subscribe registers a synchronous observer invoked with every
// future event, in order and without loss — unlike Watch, which may
// drop under backpressure. The callback runs with the store's lock
// held, so it must not call back into the store.
func (s *StateStore) Subscribe(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observers = append(s.observers, fn)
}

// Watch returns a channel receiving future events (buffered; events
// overflowing the buffer are dropped for that watcher).
func (s *StateStore) Watch() <-chan Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan Event, 1024)
	s.watchers = append(s.watchers, ch)
	return ch
}
