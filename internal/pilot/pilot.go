package pilot

import (
	"fmt"

	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/obs"
	"rnascale/internal/sge"
	"rnascale/internal/vclock"
)

// PilotDescription requests a block of cloud resources.
type PilotDescription struct {
	Name string
	// InstanceType is the cloud flavour for every node.
	InstanceType string
	// Nodes is the cluster size to build.
	Nodes int
	// ReuseVMs, when non-empty, adopts already-running VMs instead of
	// booting new ones — the paper's matching scheme S2, which
	// decouples pilot lifetime from VM lifetime. When empty, the pilot
	// boots (and on cancellation terminates) its own VMs — scheme S1.
	ReuseVMs []*cloud.VM
	// RetainVMs decouples a freshly-booting pilot from its VMs'
	// lifetime: completion/cancellation leaves the VMs running for a
	// later pilot to adopt. This is how the first pilot of an S2
	// workflow behaves (it boots VMs, but the scheme owns them).
	RetainVMs bool
	// Backend is the purchasing model freshly-booted nodes use
	// (on-demand or spot); ignored when adopting ReuseVMs, which keep
	// the backend they were booted on.
	Backend cloud.Backend
}

// Pilot is an acquired resource block: a cluster plus lifecycle
// metadata.
type Pilot struct {
	ID      string
	Desc    PilotDescription
	Cluster *cluster.Cluster
	// OwnsVMs reports whether cancellation should terminate the VMs
	// (scheme S1) or leave them running for reuse (scheme S2).
	OwnsVMs bool

	store      *StateStore
	LaunchedAt vclock.Time
	ActiveAt   vclock.Time
}

// State reports the pilot's current state from the store.
func (p *Pilot) State() PilotState {
	s, _ := p.store.State(p.ID)
	return PilotState(s)
}

// Manager launches and cancels pilots — the PilotManager of
// RADICAL-Pilot, with the cloud provider as its (only) resource.
type Manager struct {
	provider *cloud.Provider
	store    *StateStore
	copts    cluster.Options
	pilots   []*Pilot
	nextID   int
	obs      *obs.Obs
}

// NewManager returns a pilot manager over the given provider and
// shared state store.
func NewManager(p *cloud.Provider, store *StateStore, copts cluster.Options) *Manager {
	return &Manager{provider: p, store: store, copts: copts}
}

// Store exposes the shared state store.
func (m *Manager) Store() *StateStore { return m.store }

// SetObs attaches an observability bundle: every pilot submitted
// afterwards gets its SGE queue instrumented with the
// MetricSGEQueueWait histogram.
func (m *Manager) SetObs(o *obs.Obs) { m.obs = o }

// instrumentScheduler hooks a freshly built cluster's batch queue
// into the queue-wait histogram.
func (m *Manager) instrumentScheduler(c *cluster.Cluster) {
	if m.obs == nil || m.obs.Metrics == nil || c == nil {
		return
	}
	h := m.obs.Metrics.Histogram(MetricSGEQueueWait,
		"SGE job queue wait (submit to start), virtual seconds.", nil, nil)
	c.Scheduler().SetObserver(func(j *sge.Job) { h.Observe(j.QueueWait().Seconds()) })
}

// Provider exposes the cloud provider.
func (m *Manager) Provider() *cloud.Provider { return m.provider }

// SubmitPilot launches a pilot: it boots or adopts VMs, builds the
// cluster and drives the pilot to PMGR_ACTIVE. The virtual clock
// advances past boot and configuration for freshly-booted pilots.
func (m *Manager) SubmitPilot(desc PilotDescription) (*Pilot, error) {
	m.nextID++
	id := fmt.Sprintf("pilot.%04d", m.nextID)
	if desc.Name != "" {
		id = fmt.Sprintf("%s(%s)", id, desc.Name)
	}
	now := m.provider.Clock().Now()
	if err := m.store.Register(KindPilot, id, string(PilotNew), now); err != nil {
		return nil, err
	}
	p := &Pilot{ID: id, Desc: desc, store: m.store, LaunchedAt: now}
	if err := m.store.Transition(id, string(PilotLaunching), now, "acquiring resources"); err != nil {
		return nil, err
	}
	var c *cluster.Cluster
	var err error
	if len(desc.ReuseVMs) > 0 {
		if desc.Nodes != 0 && desc.Nodes != len(desc.ReuseVMs) {
			err = fmt.Errorf("pilot: %d nodes requested but %d VMs offered for reuse", desc.Nodes, len(desc.ReuseVMs))
		} else {
			c, err = cluster.Adopt(m.provider, desc.ReuseVMs, m.copts)
		}
		p.OwnsVMs = false
	} else {
		c, err = cluster.BuildOn(m.provider, desc.InstanceType, desc.Nodes, desc.Backend, m.copts)
		p.OwnsVMs = !desc.RetainVMs
	}
	if err != nil {
		ferr := m.store.Transition(id, string(PilotFailed), m.provider.Clock().Now(), err.Error())
		if ferr != nil {
			return nil, fmt.Errorf("pilot: %v (state store: %v)", err, ferr)
		}
		return nil, fmt.Errorf("pilot: launching %s: %w", id, err)
	}
	p.Cluster = c
	m.instrumentScheduler(c)
	p.ActiveAt = m.provider.Clock().Now()
	if err := m.store.Transition(id, string(PilotActive), p.ActiveAt, "agent up"); err != nil {
		return nil, err
	}
	m.pilots = append(m.pilots, p)
	return p, nil
}

// CancelPilot drives a pilot to CANCELED. Under scheme S1 the pilot's
// VMs are terminated; under S2 they stay running for the next pilot.
func (m *Manager) CancelPilot(p *Pilot) error {
	if p.State().Final() {
		return nil
	}
	now := m.provider.Clock().Now()
	if err := m.store.Transition(p.ID, string(PilotCanceled), now, "canceled by manager"); err != nil {
		return err
	}
	if p.OwnsVMs && p.Cluster != nil {
		p.Cluster.Terminate()
	}
	return nil
}

// CompletePilot drives a pilot to DONE (its workload finished). VM
// handling matches CancelPilot.
func (m *Manager) CompletePilot(p *Pilot) error {
	if p.State().Final() {
		return nil
	}
	now := m.provider.Clock().Now()
	if err := m.store.Transition(p.ID, string(PilotDone), now, "workload complete"); err != nil {
		return err
	}
	if p.OwnsVMs && p.Cluster != nil {
		p.Cluster.Terminate()
	}
	return nil
}

// Pilots lists every pilot submitted through this manager.
func (m *Manager) Pilots() []*Pilot { return append([]*Pilot(nil), m.pilots...) }
