package core

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/simdata"
	"rnascale/internal/sweep"
	"rnascale/internal/vclock"
)

// chaosConfig is the fastest full-pipeline configuration: one
// assembler, no truth evaluation, S1 static so PB boots fresh VMs
// with predictable ordinals.
func chaosConfig() Config {
	cfg := DefaultConfig()
	cfg.Assemblers = []string{"ray"}
	cfg.Scheme = S1
	cfg.Pattern = DistributedStatic
	return cfg
}

// runChaos executes one pipeline run and captures the snapshot bytes
// (empty when the run failed before the report was finalized). It may
// run on a sweep worker goroutine, so it reports snapshot-write
// failures with Errorf (goroutine-safe) rather than Fatal.
func runChaos(t *testing.T, cfg Config) (*Report, *Pipeline, string, error) {
	t.Helper()
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		// Captured by the sweep engine as the cell's error when this
		// runs on a worker goroutine (t.Fatal is not legal there).
		panic(err)
	}
	pl := New(cfg)
	rep, err := pl.Run(ds)
	var buf bytes.Buffer
	if rep != nil && rep.Snapshot != nil {
		if werr := rep.Snapshot.WriteJSON(&buf); werr != nil {
			t.Errorf("snapshot write: %v", werr)
		}
	}
	return rep, pl, buf.String(), err
}

// TestChaosSoak drives the full pipeline under every fault class (and
// a mixed storm) across ten seeds each, run twice per seed. Every run
// must either complete or fail cleanly per policy, and the same seed
// must replay byte-identically.
func TestChaosSoak(t *testing.T) {
	scenarios := []struct {
		name string
		spec string
	}{
		{"crash", "crash:p=0.4,after=60,window=1800"},
		{"reclaim", "reclaim:p=0.4,after=120,window=1800"},
		{"bootfail", "bootfail:p=0.2"},
		{"unitflake", "unitflake:p=0.6,n=2"},
		{"slowxfer", "slowxfer:x=0.5"},
		{"mixed", "crash:p=0.25,after=60,window=1200;unitflake:p=0.4,n=1;slowxfer:x=0.75"},
	}
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			plan, err := faults.ParseSpec(sc.spec)
			if err != nil {
				t.Fatalf("spec %q: %v", sc.spec, err)
			}
			// Each seed is an isolated simulation pair; fan the seed
			// matrix across the sweep engine and assert on the ordered
			// results back on the test goroutine.
			type seedResult struct {
				rep1, rep2   *Report
				pl1          *Pipeline
				snap1, snap2 string
				err1, err2   error
			}
			results, mapErr := sweep.Map(seeds, func(i int) (seedResult, error) {
				cfg := chaosConfig()
				cfg.FaultPlan = plan
				cfg.FaultSeed = uint64(i + 1)
				var r seedResult
				r.rep1, r.pl1, r.snap1, r.err1 = runChaos(t, cfg)
				r.rep2, _, r.snap2, r.err2 = runChaos(t, cfg)
				return r, nil
			}, sweep.Options{Workers: runtime.GOMAXPROCS(0)})
			if mapErr != nil {
				t.Fatal(mapErr)
			}
			var completed, failed int
			for i, r := range results {
				seed := uint64(i + 1)
				rep1, pl1, snap1, err1 := r.rep1, r.pl1, r.snap1, r.err1
				rep2, snap2, err2 := r.rep2, r.snap2, r.err2

				// Same seed ⇒ identical outcome, byte-identical snapshot.
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d: outcomes diverge: %v vs %v", seed, err1, err2)
				}
				if err1 != nil && err1.Error() != err2.Error() {
					t.Fatalf("seed %d: errors diverge:\n  %v\n  %v", seed, err1, err2)
				}
				if snap1 != snap2 {
					t.Fatalf("seed %d: snapshots differ (%d vs %d bytes)", seed, len(snap1), len(snap2))
				}

				if err1 == nil {
					completed++
					if len(rep1.Transcripts) == 0 {
						t.Errorf("seed %d: completed without transcripts", seed)
					}
					if rep1.Recovery.UnitsRecovered > rep1.Recovery.Retries {
						t.Errorf("seed %d: recovered %d units with only %d retries",
							seed, rep1.Recovery.UnitsRecovered, rep1.Recovery.Retries)
					}
				} else {
					failed++
					if rep1 == nil {
						t.Fatalf("seed %d: failed run returned nil report: %v", seed, err1)
					}
				}
				// Clean teardown: once the report is finalized no VM may
				// still be running (crashed VMs were applied, survivors
				// terminated).
				if rep1 != nil && rep1.Snapshot != nil {
					if n := len(pl1.Provider().Running()); n != 0 {
						t.Errorf("seed %d: %d VMs still running after run (err=%v)", seed, n, err1)
					}
				}
				if rep2 != nil && rep1 != nil && err1 == nil {
					if rep1.Recovery.String() != rep2.Recovery.String() {
						t.Errorf("seed %d: recovery reports diverge: %s vs %s",
							seed, rep1.Recovery, rep2.Recovery)
					}
				}
			}
			t.Logf("%s: %d completed, %d failed cleanly over %d seeds", sc.name, completed, failed, seeds)
		})
	}
}

// TestMidPBCrashRecoveryDemo is the acceptance scenario from the
// issue: a VM hosting an assembly job crashes mid-PB; the pilot goes
// degraded, a replacement boots, the unit retries and the run
// completes — recovery visible in counters, span tree and the bill.
func TestMidPBCrashRecoveryDemo(t *testing.T) {
	cfg := chaosConfig()

	// Calibrate: run clean once and read the PB unit window off the
	// span tree so the crash lands mid-assembly.
	clean, plClean, _, err := runChaos(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pbSpan := plClean.Obs().Tracer.Find(obs.KindStage, "PB")
	if pbSpan == nil {
		t.Fatal("no PB stage span in clean run")
	}
	var unit *obs.Span
	for _, p := range pbSpan.Children() {
		for _, u := range p.Children() {
			if unit == nil || u.Start < unit.Start {
				unit = u
			}
		}
	}
	if unit == nil {
		t.Fatal("no unit spans under PB stage")
	}
	crashAt := unit.Start.Add(unit.Duration() / 2)

	// VM ordinals: PA boots #1 (one shard ⇒ one VM); under S1 the PB
	// cluster boots fresh, so its head node is ordinal 2.
	spec := fmt.Sprintf("crash:at=%.0f,vm=2", float64(crashAt))
	plan, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = plan
	cfg.FaultSeed = 42

	rep, pl, snap, err := runChaos(t, cfg)
	if err != nil {
		t.Fatalf("run with %q did not recover: %v", spec, err)
	}
	if len(rep.Transcripts) != len(clean.Transcripts) {
		t.Errorf("faulted run produced %d transcripts, clean %d",
			len(rep.Transcripts), len(clean.Transcripts))
	}
	rr := rep.Recovery
	if rr.UnitsRecovered < 1 {
		t.Errorf("units recovered = %d, want >= 1 (%s)", rr.UnitsRecovered, rr)
	}
	if rr.Retries < 1 || rr.VMsLost < 1 {
		t.Errorf("retries=%d vmsLost=%d, want both >= 1", rr.Retries, rr.VMsLost)
	}
	if got := rr.FaultsInjected[string(faults.ClassCrash)]; got < 1 {
		t.Errorf("faults injected for crash = %d, want >= 1", got)
	}

	// The retry and the node loss are visible in the span tree.
	var tree bytes.Buffer
	if err := pl.Obs().Tracer.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.String(), "AGENT_RETRYING") {
		t.Error("span tree lacks AGENT_RETRYING event")
	}
	if !strings.Contains(tree.String(), "lost") {
		t.Error("span tree lacks node-loss note")
	}

	// The replacement VM's hours land in the bill: one more instance
	// than the clean run, and at least as many billed hours.
	cleanHours := plClean.Provider().TotalInstanceHours()
	faultHours := pl.Provider().TotalInstanceHours()
	if faultHours < cleanHours {
		t.Errorf("faulted run billed %.2f instance-hours < clean %.2f", faultHours, cleanHours)
	}
	if rep.CostUSD < clean.CostUSD {
		t.Errorf("faulted run cost $%.4f < clean $%.4f", rep.CostUSD, clean.CostUSD)
	}

	// Same seed replays byte-identically.
	_, _, snapAgain, errAgain := runChaos(t, cfg)
	if errAgain != nil {
		t.Fatal(errAgain)
	}
	if snap != snapAgain {
		t.Error("same seed produced different snapshot bytes")
	}
	if crashAt <= vclock.Time(0) {
		t.Fatalf("bogus crash time %v", crashAt)
	}
}
