package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/cloud"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/obs"
	"rnascale/internal/pilot"
	"rnascale/internal/simdata"
	"rnascale/internal/sweep"
	"rnascale/internal/vclock"
)

// overloadWorkers reads the sweep worker count from OVERLOAD_WORKERS,
// so `make overload-determinism` can run the soak across worker
// counts: the same seed must produce the same bytes no matter how the
// runs are interleaved across goroutines.
func overloadWorkers() int {
	if s := os.Getenv("OVERLOAD_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// cleanChaosTTC runs the chaos configuration once without faults and
// reports its TTC, anchoring deadline fractions for the scenarios.
func cleanChaosTTC(t *testing.T) vclock.Duration {
	t.Helper()
	rep, _, _, err := runChaos(t, chaosConfig())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if rep.Outcome != OutcomeComplete {
		t.Fatalf("clean run outcome %q, want %q", rep.Outcome, OutcomeComplete)
	}
	return rep.TTC
}

// TestChaosOverloadSoak drives the pipeline under every overload
// protection — virtual-time deadlines, hard cancellation, retry
// budgets and backend circuit breakers — combined with fault storms,
// across seeds, each run twice. Every run must end in a classified
// outcome (complete, deadline_exceeded, cancelled, or a clean stage
// failure), and the same seed must replay byte-identically: the
// protections are part of the simulation, not wall-clock behavior.
func TestChaosOverloadSoak(t *testing.T) {
	cleanTTC := cleanChaosTTC(t)
	scenarios := []struct {
		name string
		spec string // fault plan, "" for none
		// mutate arms the overload knobs given the clean-run TTC.
		mutate func(cfg *Config)
		// outcome is the only CutoffError outcome the scenario may
		// produce ("" = no cutoff expected).
		outcome Outcome
	}{
		{
			// The deadline lands mid-run on every seed: remaining work is
			// cancelled deterministically.
			name:    "deadline-always",
			spec:    "",
			mutate:  func(cfg *Config) { cfg.Deadline = cleanTTC * 6 / 10 },
			outcome: OutcomeDeadlineExceeded,
		},
		{
			// The deadline clears a clean run but flaky units push some
			// seeds past it: mixed complete/deadline_exceeded outcomes.
			name:    "deadline-contended",
			spec:    "unitflake:p=0.6,n=2",
			mutate:  func(cfg *Config) { cfg.Deadline = cleanTTC * 12 / 10 },
			outcome: OutcomeDeadlineExceeded,
		},
		{
			name:    "cancel-at",
			spec:    "",
			mutate:  func(cfg *Config) { cfg.CancelAt = cleanTTC / 2 },
			outcome: OutcomeCancelled,
		},
		{
			// Three flakes per struck unit need three retries; a budget of
			// one fails the stage on the second.
			name: "retry-budget",
			spec: "unitflake:p=0.6,n=3",
			mutate: func(cfg *Config) {
				cfg.RetryBudget = 1
			},
		},
		{
			// A reclaim storm on spot capacity trips the breaker; later
			// stages fall back to on-demand instead of re-entering the
			// storm.
			name: "breaker-reclaim",
			spec: "reclaim:p=0.8,after=60,window=600",
			mutate: func(cfg *Config) {
				cfg.Backends = StageBackends{PA: cloud.Spot, PB: cloud.Spot}
				cfg.Breaker = &cloud.BreakerOptions{Threshold: 1}
			},
		},
		{
			// Serverless flake wave with a budget and breaker: exercises
			// the function runner's budget/cutoff/breaker paths.
			name: "serverless-budget",
			spec: "unitflake:p=0.5,n=2",
			mutate: func(cfg *Config) {
				cfg.Backends = StageBackends{PA: cloud.Serverless}
				cfg.RetryBudget = 2
				cfg.Breaker = &cloud.BreakerOptions{Threshold: 2}
			},
		},
		{
			name: "mixed",
			spec: "reclaim:p=0.4,after=60,window=600;unitflake:p=0.4,n=1",
			mutate: func(cfg *Config) {
				cfg.Deadline = cleanTTC * 14 / 10
				cfg.RetryBudget = 4
				cfg.Backends = StageBackends{PB: cloud.Spot}
				cfg.Breaker = &cloud.BreakerOptions{Threshold: 2}
			},
			outcome: OutcomeDeadlineExceeded,
		},
	}
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			var plan *faults.Plan
			if sc.spec != "" {
				p, err := faults.ParseSpec(sc.spec)
				if err != nil {
					t.Fatalf("spec %q: %v", sc.spec, err)
				}
				plan = p
			}
			type seedResult struct {
				rep1, rep2   *Report
				pl1          *Pipeline
				snap1, snap2 string
				err1, err2   error
			}
			results, mapErr := sweep.Map(seeds, func(i int) (seedResult, error) {
				cfg := chaosConfig()
				cfg.FaultPlan = plan
				cfg.FaultSeed = uint64(i + 1)
				sc.mutate(&cfg)
				var r seedResult
				r.rep1, r.pl1, r.snap1, r.err1 = runChaos(t, cfg)
				r.rep2, _, r.snap2, r.err2 = runChaos(t, cfg)
				return r, nil
			}, sweep.Options{Workers: overloadWorkers()})
			if mapErr != nil {
				t.Fatal(mapErr)
			}
			var completed, cutOff, failed int
			for i, r := range results {
				seed := uint64(i + 1)
				if (r.err1 == nil) != (r.err2 == nil) {
					t.Fatalf("seed %d: outcomes diverge: %v vs %v", seed, r.err1, r.err2)
				}
				if r.err1 != nil && r.err1.Error() != r.err2.Error() {
					t.Fatalf("seed %d: errors diverge:\n  %v\n  %v", seed, r.err1, r.err2)
				}
				if r.snap1 != r.snap2 {
					t.Fatalf("seed %d: snapshots differ (%d vs %d bytes)", seed, len(r.snap1), len(r.snap2))
				}
				if r.rep1 == nil {
					t.Fatalf("seed %d: nil report (%v)", seed, r.err1)
				}
				var ce *CutoffError
				switch {
				case r.err1 == nil:
					completed++
					if r.rep1.Outcome != OutcomeComplete {
						t.Errorf("seed %d: completed with outcome %q", seed, r.rep1.Outcome)
					}
				case errors.As(r.err1, &ce):
					cutOff++
					if sc.outcome == "" {
						t.Errorf("seed %d: unexpected cutoff %v", seed, r.err1)
					} else if ce.Outcome != sc.outcome {
						t.Errorf("seed %d: cutoff outcome %q, want %q", seed, ce.Outcome, sc.outcome)
					}
					if r.rep1.Outcome != ce.Outcome {
						t.Errorf("seed %d: report outcome %q != error outcome %q",
							seed, r.rep1.Outcome, ce.Outcome)
					}
					if ce.At < ce.Cutoff {
						t.Errorf("seed %d: cut off at %v before cutoff %v", seed, ce.At, ce.Cutoff)
					}
				default:
					failed++
					if r.rep1.Outcome != "" {
						t.Errorf("seed %d: plain failure carries outcome %q", seed, r.rep1.Outcome)
					}
					if sc.name == "retry-budget" && !strings.Contains(r.err1.Error(), "retry budget exhausted") {
						t.Errorf("seed %d: budget scenario failed without budget error: %v", seed, r.err1)
					}
				}
				// Teardown is unconditional: cut-off and failed runs may
				// not leak VMs any more than completed ones.
				if n := len(r.pl1.Provider().Running()); n != 0 {
					t.Errorf("seed %d: %d VMs still running after run (err=%v)", seed, n, r.err1)
				}
			}
			if sc.name == "deadline-always" && cutOff != seeds {
				t.Errorf("deadline below clean TTC cut off %d/%d runs", cutOff, seeds)
			}
			if sc.name == "cancel-at" && cutOff != seeds {
				t.Errorf("cancel-at cut off %d/%d runs", cutOff, seeds)
			}
			t.Logf("%s: %d completed, %d cut off, %d failed over %d seeds",
				sc.name, completed, cutOff, failed, seeds)
		})
	}
}

// TestBreakerConvertsReclaimStorm pins the breaker's point: under a
// total spot reclaim storm, a tripped breaker reroutes later stages
// to on-demand, the run completes, total unit attempts stay bounded
// by units + the retry budget, and the on-demand fallback is visible
// in the stage notes and the bill.
func TestBreakerConvertsReclaimStorm(t *testing.T) {
	cfg := chaosConfig()
	// Seed 2 is a calibrated storm: reclaims strike PB's spot capacity
	// (tripping the breaker mid-PB), and PC — which also asks for spot
	// — launches after the trip, so the breaker reroutes it.
	plan, err := faults.ParseSpec("reclaim:p=0.5,after=30,window=600")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = plan
	cfg.FaultSeed = 2
	cfg.Backends = StageBackends{PB: cloud.Spot, PC: cloud.Spot}
	cfg.Breaker = &cloud.BreakerOptions{Threshold: 1, Cooldown: 4 * vclock.Hour}
	budget := 6
	cfg.RetryBudget = budget

	rep, pl, _, err := runChaos(t, cfg)
	if err != nil {
		t.Fatalf("storm run did not complete: %v", err)
	}
	if pl.Provider().Breaker().State(cloud.Spot) != cloud.BreakerOpen {
		t.Errorf("spot breaker state %v after total reclaim storm, want open",
			pl.Provider().Breaker().State(cloud.Spot))
	}
	var fallbacks int
	for _, st := range rep.Stages {
		if strings.Contains(st.Note, "breaker open, on-demand fallback") {
			fallbacks++
		}
	}
	if fallbacks == 0 {
		t.Error("no stage reports an on-demand breaker fallback")
	}
	// Attempt bound: every unit gets its first attempt for free, so
	// total attempts ≤ units + retries; the budget caps run-wide
	// retries, making the whole storm's attempt count bounded.
	retries := int(pl.Obs().Metrics.Counter(pilot.MetricRetries, "", nil).Value())
	if retries > budget {
		t.Errorf("run spent %d retries, budget %d", retries, budget)
	}
	// The fallback bought on-demand capacity: the bill must show
	// on-demand instance hours (empty Backend) even though both
	// stages asked for spot.
	var onDemandHours float64
	for _, line := range rep.Bill {
		if line.Backend == "" {
			onDemandHours += line.InstanceHours
		}
	}
	if onDemandHours == 0 {
		t.Errorf("bill shows no on-demand hours after fallback: %+v", rep.Bill)
	}
}

// TestDeadlineCancelResumeByteIdentical is the cancelled-run resume
// contract: a run cut off at its deadline journals the cancellation,
// and resuming the cancelled journal is a no-op that reproduces the
// same truncated report byte-for-byte without appending any records.
func TestDeadlineCancelResumeByteIdentical(t *testing.T) {
	cleanTTC := cleanChaosTTC(t)
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		mutate  func(cfg *Config)
		outcome Outcome
	}{
		{"deadline", func(cfg *Config) { cfg.Deadline = cleanTTC * 6 / 10 }, OutcomeDeadlineExceeded},
		{"cancel-at", func(cfg *Config) { cfg.CancelAt = cleanTTC / 2 }, OutcomeCancelled},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "cutoff.journal")
			cfg := chaosConfig()
			tc.mutate(&cfg)

			rep, pl, runErr := journalRun(t, ds, cfg, path)
			var ce *CutoffError
			if !errors.As(runErr, &ce) {
				t.Fatalf("run returned %v, want CutoffError", runErr)
			}
			if ce.Outcome != tc.outcome || rep.Outcome != tc.outcome {
				t.Fatalf("outcomes %q/%q, want %q", ce.Outcome, rep.Outcome, tc.outcome)
			}
			want := capture(t, rep, pl)
			wantBody := journalBody(t, path)

			// The journal records the cancellation and still completes:
			// the truncated run is a finished, classified artifact.
			lg, err := journal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if !lg.Complete() {
				t.Fatal("cancelled run's journal lacks the complete record")
			}
			var cancelledRecs int
			for _, rec := range lg.Records {
				if rec.Kind == journal.KindCancelled {
					cancelledRecs++
					if rec.Note != string(tc.outcome) {
						t.Errorf("cancelled record notes %q, want %q", rec.Note, tc.outcome)
					}
				}
			}
			if cancelledRecs != 1 {
				t.Fatalf("journal holds %d cancelled records, want 1", cancelledRecs)
			}

			cfg.Obs = obs.New()
			rrep, rpl, rerr := ResumePipeline(ds, cfg, path)
			if !errors.As(rerr, &ce) {
				t.Fatalf("resume returned %v, want the same CutoffError", rerr)
			}
			if rerr.Error() != runErr.Error() {
				t.Fatalf("resume error %q != original %q", rerr, runErr)
			}
			// A unit preempted mid-execution leaves no journal record,
			// so resume may re-simulate it (and re-preempt it at the
			// same cutoff) — but it must never append anything new.
			st := rrep.Journal
			if st == nil || !st.Resumed || st.RecordsAppended != 0 {
				t.Fatalf("resume of a cancelled run appended records: %+v", st)
			}
			got := capture(t, rrep, rpl)
			if got.trace != want.trace || got.metrics != want.metrics ||
				got.summary != want.summary || got.timeline != want.timeline {
				t.Error("resumed artifacts differ from the original truncated run")
			}
			if !rrep.Snapshot.Resumed {
				t.Error("resumed run's snapshot lacks the resumed marker")
			}
			rrep.Snapshot.Resumed = false
			var buf bytes.Buffer
			if err := rrep.Snapshot.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.String() != want.snapshot {
				t.Errorf("snapshot differs beyond the resumed marker:\n--- resumed\n%s\n--- original\n%s",
					buf.String(), want.snapshot)
			}
			if body := journalBody(t, path); body != wantBody {
				t.Error("resume appended to a cancelled run's journal")
			}
		})
	}
}
