package core

import (
	"fmt"

	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/pilot"
	"rnascale/internal/vclock"
)

// Metric names the pipeline emits on top of the provider's and pilot
// framework's own (see README's Observability section).
const (
	MetricReadsProcessed     = "rnascale_reads_processed_total"
	MetricBasesProcessed     = "rnascale_bases_processed_total"
	MetricAssemblerMessages  = "rnascale_assembler_messages_total"
	MetricAssemblerBytesSent = "rnascale_assembler_bytes_sent_total"
	MetricRunTTC             = "rnascale_run_ttc_seconds"
	MetricRunCost            = "rnascale_run_cost_usd"
	MetricRunInstanceHours   = "rnascale_run_instance_hours"
)

// stageScope brackets one pipeline stage: a span under the run span,
// the parent for pilots registered during the stage, and the cloud
// bill delta attributed to it.
type stageScope struct {
	pl         *Pipeline
	span       *obs.Span
	costBefore float64
	done       bool
	note       string
}

// beginStage opens a stage span at the current virtual time and
// points newly registered pilots at it. The stage boundary is also a
// journal checkpoint.
func (pl *Pipeline) beginStage(name string) *stageScope {
	sc := &stageScope{pl: pl, costBefore: pl.provider.TotalCost()}
	sc.span = pl.o.Tracer.StartSpan(pl.runSpan, obs.KindStage, name, pl.clock.Now())
	pl.bridge.SetParent(sc.span)
	pl.jr.stageStart(name)
	return sc
}

// attr annotates the stage span.
func (sc *stageScope) attr(key, value string) { sc.span.SetAttr(key, value) }

// end closes the stage at the current virtual time, attributing the
// bill growth since beginStage to it, and checkpoints the boundary in
// the run journal. Idempotent, so failure paths can end defensively.
func (sc *stageScope) end() {
	if sc.done {
		return
	}
	sc.done = true
	sc.span.SetAttr(obs.AttrCostUSD, fmt.Sprintf("%.4f", sc.pl.provider.TotalCost()-sc.costBefore))
	sc.span.End(sc.pl.clock.Now())
	sc.pl.jr.stageEnd(sc.span.Name, sc.note)
}

// fail marks and closes the stage after a stage-level failure.
func (sc *stageScope) fail(err error) {
	sc.span.SetAttr("error", err.Error())
	sc.note = err.Error()
	sc.end()
}

// counter is shorthand for a pipeline-level counter.
func (pl *Pipeline) counter(name, help string, labels obs.Labels) *obs.Counter {
	return pl.o.Metrics.Counter(name, help, labels)
}

// finishObs stamps the run-level gauges, closes the run span and
// folds everything into the report's snapshot. Called exactly once
// per run from Report.finish.
func (pl *Pipeline) finishObs(rep *Report) {
	now := pl.clock.Now()
	pl.runSpan.SetAttrf("transcripts", "%d", len(rep.Transcripts))
	pl.runSpan.End(now)
	m := pl.o.Metrics
	m.Gauge(MetricRunTTC, "End-to-end run TTC, virtual seconds.", nil).Set(vclock.Duration(now).Seconds())
	m.Gauge(MetricRunCost, "Total cloud bill for the run, USD.", nil).Set(pl.provider.TotalCost())
	m.Gauge(MetricRunInstanceHours, "Total billed instance-hours for the run.", nil).Set(pl.provider.TotalInstanceHours())
	rep.Recovery = pl.recoveryReport()
	snap := obs.Snapshot(pl.o.Tracer, m)
	if pl.jr.recording() {
		// The snapshot's Resumed marker is the one sanctioned delta
		// between a resumed run and its uninterrupted twin; the trace,
		// metrics and stage rows stay byte-identical.
		snap.Resumed = pl.jr.isResumed()
		st := pl.JournalStats()
		rep.Journal = &st
	}
	rep.Snapshot = &snap
}

// recoveryReport folds the fault/retry counters and the provider's
// interruption ledger into the report's recovery summary.
func (pl *Pipeline) recoveryReport() RecoveryReport {
	var rr RecoveryReport
	for _, pt := range pl.o.Metrics.Points() {
		switch pt.Name {
		case faults.MetricFaultsInjected:
			if rr.FaultsInjected == nil {
				rr.FaultsInjected = map[string]int{}
			}
			rr.FaultsInjected[pt.Labels["class"]] += int(pt.Value)
		case pilot.MetricRetries:
			rr.Retries += int(pt.Value)
		case pilot.MetricUnitsRecovered:
			rr.UnitsRecovered += int(pt.Value)
		}
	}
	for _, iv := range pl.provider.Interruptions() {
		if iv.Applied {
			rr.VMsLost++
		}
	}
	return rr
}
