package core

import (
	"fmt"

	"rnascale/internal/assembler"
	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/pilot"
	"rnascale/internal/sge"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// MultiKResult reports one multiple-k-mer assembly-step experiment
// (paper Fig. 4, lower panel): the task-level parallelization of the
// per-k jobs over a small cluster.
type MultiKResult struct {
	Nodes    int
	Kmers    []int
	Makespan vclock.Duration
	// PerJob lists each k's individual TTC in k order.
	PerJob []vclock.Duration
}

// MultiKMakespan runs one assembler's multiple-k-mer jobs (each on
// NodesPerJob nodes) over a cluster of the given size through the
// pilot + SGE machinery, and reports the stage makespan. This is the
// second kind of parallelism the paper identifies in the assembly
// step: task-level parallelism across k values, on top of each job's
// internal scale-out.
func MultiKMakespan(ds *simdata.Dataset, asmName string, kmers []int, nodes, nodesPerJob int, itype string) (MultiKResult, error) {
	if len(kmers) == 0 {
		return MultiKResult{}, fmt.Errorf("core: no k values")
	}
	if nodesPerJob <= 0 {
		nodesPerJob = 1
	}
	a, err := assembler.Get(asmName)
	if err != nil {
		return MultiKResult{}, err
	}
	clock := vclock.NewClock(0)
	provider := cloud.NewProvider(clock, cloud.DefaultOptions())
	pm := pilot.NewManager(provider, pilot.NewStateStore(), cluster.DefaultOptions())
	p, err := pm.SubmitPilot(pilot.PilotDescription{Name: "fig4b", InstanceType: itype, Nodes: nodes})
	if err != nil {
		return MultiKResult{}, err
	}
	cores := p.Cluster.InstanceType().Cores
	um := pilot.NewUnitManager(pm.Store(), clock, pilot.RoundRobin)
	if err := um.AddPilots(p); err != nil {
		return MultiKResult{}, err
	}
	start := clock.Now()
	res := MultiKResult{Nodes: nodes, Kmers: kmers, PerJob: make([]vclock.Duration, len(kmers))}
	var descs []pilot.UnitDescription
	for i, k := range kmers {
		i, k := i, k
		rule := sge.SingleNode
		if nodesPerJob > 1 {
			rule = sge.FillUp
		}
		descs = append(descs, pilot.UnitDescription{
			Name:  fmt.Sprintf("%s-k%d", asmName, k),
			Slots: nodesPerJob * cores,
			Rule:  rule,
			Work: func(env *pilot.ExecEnv) (pilot.WorkResult, error) {
				ar, err := a.Assemble(assembler.Request{
					Reads:        ds.Reads.Reads,
					Params:       assembler.Params{K: k, MinCoverage: 2},
					Nodes:        nodesPerJob,
					CoresPerNode: cores,
					FullScale:    ds.Profile.FullScale,
				})
				if err != nil {
					return pilot.WorkResult{}, err
				}
				res.PerJob[i] = ar.TTC
				return pilot.WorkResult{Duration: ar.TTC, PeakMemoryGB: ar.PeakMemoryGBPerNode}, nil
			},
		})
	}
	units, err := um.Submit(descs)
	if err != nil {
		return MultiKResult{}, err
	}
	if err := um.Run(); err != nil {
		return MultiKResult{}, err
	}
	for _, u := range units {
		if u.State() != pilot.UnitDone {
			return MultiKResult{}, fmt.Errorf("core: %s failed: %v", u.ID, u.Err)
		}
	}
	res.Makespan = clock.Now().Sub(start)
	pm.CompletePilot(p)
	return res, nil
}
