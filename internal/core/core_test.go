package core

import (
	"fmt"
	"strings"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/cloud"
	"rnascale/internal/seq"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// tinyConfig keeps the virtual cluster small and the real computation
// fast for unit tests.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Assemblers = []string{"ray", "abyss", "contrail"}
	cfg.ContrailNodes = 2
	cfg.EvaluateAgainstTruth = true
	return cfg
}

func tinyDS(t *testing.T) *simdata.Dataset {
	t.Helper()
	ds, err := simdata.Generate(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEndToEndS2Dynamic(t *testing.T) {
	ds := tinyDS(t)
	rep, err := Run(ds, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All four stages present and ordered.
	names := []string{"transfer", "PA", "PB", "PC"}
	var last vclock.Time
	for _, n := range names {
		s, ok := rep.Stage(n)
		if !ok {
			t.Fatalf("missing stage %s", n)
		}
		if s.Start < last {
			t.Errorf("stage %s starts before previous ends", n)
		}
		if s.End < s.Start {
			t.Errorf("stage %s negative span", n)
		}
		last = s.End
	}
	if rep.TTC <= 0 || rep.CostUSD <= 0 {
		t.Errorf("TTC %v cost %v", rep.TTC, rep.CostUSD)
	}
	if len(rep.Transcripts) == 0 {
		t.Fatal("no transcripts")
	}
	if len(rep.Assemblies) != 3*len(rep.KmersUsed) {
		t.Errorf("%d assembly reports for %d k-mers", len(rep.Assemblies), len(rep.KmersUsed))
	}
	if rep.Quant == nil || rep.Quant.MappingRate() < 0.5 {
		t.Errorf("quantification missing or poor: %+v", rep.Quant)
	}
	if rep.Metrics == nil {
		t.Fatal("metrics requested but absent")
	}
	if rep.Metrics.F1 < 0.5 {
		t.Errorf("pipeline F1 %.2f suspiciously low", rep.Metrics.F1)
	}
	// Tiny profile: 2 ks × (2 MPI × 1 node + 1 contrail × 2 nodes) = 8 nodes.
	if rep.AssemblyNodes != 8 {
		t.Errorf("PB nodes %d, want 8", rep.AssemblyNodes)
	}
	if !strings.Contains(rep.Summary(), "TTC") {
		t.Error("summary malformed")
	}
	// Per-assembler merged sets exist.
	for _, name := range []string{"ray", "abyss", "contrail"} {
		if len(rep.PerAssembler[name]) == 0 {
			t.Errorf("no merged contigs for %s", name)
		}
	}
}

func TestS1PaysTransferS2DoesNot(t *testing.T) {
	ds := tinyDS(t)
	cfgS2 := tinyConfig()
	cfgS2.Scheme = S2
	repS2, err := Run(ds, cfgS2)
	if err != nil {
		t.Fatal(err)
	}
	cfgS1 := tinyConfig()
	cfgS1.Scheme = S1
	repS1, err := Run(ds, cfgS1)
	if err != nil {
		t.Fatal(err)
	}
	pbS1, _ := repS1.Stage("PB")
	pbS2, _ := repS2.Stage("PB")
	if !strings.Contains(pbS1.Note, "transfer") {
		t.Errorf("S1 PB note lacks transfer: %q", pbS1.Note)
	}
	if strings.Contains(pbS2.Note, "transfer") {
		t.Errorf("S2 PB note mentions transfer: %q", pbS2.Note)
	}
	// Both produce the same biology.
	if len(repS1.Transcripts) != len(repS2.Transcripts) {
		t.Errorf("S1 %d vs S2 %d transcripts", len(repS1.Transcripts), len(repS2.Transcripts))
	}
}

func TestConventionalPatternSinglePilot(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Pattern = Conventional
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := rep.Stage("PA")
	pb, _ := rep.Stage("PB")
	pc, _ := rep.Stage("PC")
	if pa.Pilot != pb.Pilot || pb.Pilot != pc.Pilot {
		t.Errorf("conventional pattern used pilots %s %s %s", pa.Pilot, pb.Pilot, pc.Pilot)
	}
}

func TestDistributedPatternsUseSeparatePilots(t *testing.T) {
	ds := tinyDS(t)
	rep, err := Run(ds, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := rep.Stage("PA")
	pb, _ := rep.Stage("PB")
	if pa.Pilot == pb.Pilot {
		t.Error("distributed pattern reused one pilot")
	}
}

// Table IV behaviour: a static c3.2xlarge run on a P. Crispa-sized
// dataset fails in pre-processing (40 GB > 16 GB), while the dynamic
// pattern picks r3.2xlarge and proceeds.
func TestStaticUndersizedFailsDynamicAdapts(t *testing.T) {
	prof := simdata.Tiny()
	prof.FullScale = simdata.PCrispa().FullScale
	prof.FullScale.AssemblyKmers = simdata.Tiny().FullScale.AssemblyKmers // keep scaled-k plan
	ds, err := simdata.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	static := tinyConfig()
	static.Pattern = DistributedStatic
	static.InstanceType = "c3.2xlarge"
	rep, err := Run(ds, static)
	if err == nil {
		t.Fatal("undersized static run succeeded")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("failure is not an OOM: %v", err)
	}
	if rep == nil || rep.CostUSD <= 0 {
		t.Error("failed run should still have a bill (the paper's failure cost motivation)")
	}

	dynamic := tinyConfig()
	dynamic.Pattern = DistributedDynamic
	rep, err = Run(ds, dynamic)
	if err != nil {
		t.Fatalf("dynamic run failed: %v", err)
	}
	// The dynamic pattern must have chosen the memory-heavy type for PA.
	bill := rep.Bill
	foundR3 := false
	for _, line := range bill {
		if line.Type == "r3.2xlarge" {
			foundR3 = true
		}
	}
	if !foundR3 {
		t.Errorf("dynamic run never used r3.2xlarge: %+v", bill)
	}
}

func TestUnknownAssemblerRejected(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Assemblers = []string{"nope"}
	if _, err := Run(ds, cfg); err == nil {
		t.Fatal("unknown assembler accepted")
	}
}

func TestSingleAssemblerOption(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Assemblers = []string{"velvet"}
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transcripts) == 0 {
		t.Fatal("velvet-only run empty")
	}
	// Velvet jobs are single node: 2 ks × 1 node = 2 nodes.
	if rep.AssemblyNodes != 2 {
		t.Errorf("nodes %d", rep.AssemblyNodes)
	}
}

func TestDeterministicRuns(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	r1, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TTC != r2.TTC || r1.CostUSD != r2.CostUSD {
		t.Errorf("nondeterministic: %v/$%.2f vs %v/$%.2f", r1.TTC, r1.CostUSD, r2.TTC, r2.CostUSD)
	}
	if len(r1.Transcripts) != len(r2.Transcripts) {
		t.Error("nondeterministic transcripts")
	}
}

func TestParallelPreprocessingSpeedsPA(t *testing.T) {
	ds := tinyDS(t)
	paDur := func(shards int) vclock.Duration {
		cfg := tinyConfig()
		cfg.ParallelPreprocessShards = shards
		rep, err := Run(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Transcripts) == 0 {
			t.Fatal("no transcripts")
		}
		pa, _ := rep.Stage("PA")
		return pa.Duration()
	}
	one, four := paDur(1), paDur(4)
	ratio := float64(one) / float64(four)
	if ratio < 3 || ratio > 5 {
		t.Errorf("4-shard PA speedup %.2f, want ≈4", ratio)
	}
}

// Data-parallel pre-processing also divides the per-node footprint:
// the P. Crispa-sized workload that fails on a single c3.2xlarge
// becomes feasible when sharded — the motivation behind the paper's
// future-work item on pilot-powered pre-processing.
func TestParallelPreprocessingAvoidsOOM(t *testing.T) {
	prof := simdata.Tiny()
	prof.FullScale = simdata.PCrispa().FullScale
	prof.FullScale.AssemblyKmers = simdata.Tiny().FullScale.AssemblyKmers
	ds, err := simdata.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Pattern = DistributedStatic
	cfg.InstanceType = "r3.2xlarge" // assembly still needs the big nodes
	cfg.ParallelPreprocessShards = 1
	if _, err := Run(ds, cfg); err != nil {
		t.Fatalf("r3 baseline failed: %v", err)
	}
	cfg.InstanceType = "c3.2xlarge"
	if _, err := Run(ds, cfg); err == nil {
		t.Fatal("single-shard c3 run should OOM")
	}
	// Sharding pre-processing 4× fits each shard in 16 GB; assembly
	// jobs at 2 nodes each also fit (24.7/2 per the Table IV model is
	// for the 2-node baseline; here contrail spans 2 nodes and MPI
	// jobs 1, so keep r3 for assembly via dynamic pattern instead).
	cfg.Pattern = DistributedDynamic
	cfg.ParallelPreprocessShards = 4
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatalf("sharded run failed: %v", err)
	}
	if len(rep.Transcripts) == 0 {
		t.Fatal("no transcripts")
	}
}

func TestConsensusMergeOption(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.ConsensusMerge = true
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transcripts) == 0 {
		t.Fatal("consensus merge produced nothing")
	}
	// Precision is capped by the annotation CDS fraction (the
	// assembly legitimately contains UTR sequence absent from the
	// gene annotations, as in the paper).
	if rep.Metrics.Precision < 0.75 {
		t.Errorf("consensus precision %.2f", rep.Metrics.Precision)
	}
	plain := tinyConfig()
	plainRep, err := Run(ds, plain)
	if err != nil {
		t.Fatal(err)
	}
	// Consensus validation must never add unsupported sequence.
	if rep.Metrics.Precision+1e-9 < plainRep.Metrics.Precision {
		t.Errorf("consensus precision %.3f below plain %.3f",
			rep.Metrics.Precision, plainRep.Metrics.Precision)
	}
}

func TestTwoConditionDifferentialExpression(t *testing.T) {
	ds := tinyDS(t)
	// Perturb the most-expressed gene for condition B.
	exprB := append([]float64(nil), ds.Expression...)
	best := 0
	for i, e := range exprB {
		if e > exprB[best] {
			best = i
		}
	}
	exprB[best] *= 10
	condB, err := ds.Resample(exprB, ds.Profile.Seed+7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Assemblers = []string{"velvet"}
	cfg.ConditionB = &condB
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuantB == nil || len(rep.DiffExpr) == 0 {
		t.Fatal("differential-expression outputs missing")
	}
	sig := 0
	for _, r := range rep.DiffExpr {
		if r.Significant {
			sig++
		}
	}
	if sig == 0 {
		t.Error("10× perturbation not detected")
	}
	// The second quantification is billed: PC takes roughly twice the
	// single-condition PC.
	single := tinyConfig()
	single.Assemblers = []string{"velvet"}
	repSingle, err := Run(ds, single)
	if err != nil {
		t.Fatal(err)
	}
	pcB, _ := rep.Stage("PC")
	pcS, _ := repSingle.Stage("PC")
	ratio := float64(pcB.Duration()) / float64(pcS.Duration())
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("two-condition PC %.2f× single-condition PC, want ≈2", ratio)
	}
}

func TestTimelineRendering(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Assemblers = []string{"velvet"}
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) == 0 {
		t.Fatal("no events captured")
	}
	tl := rep.Timeline(60)
	for _, want := range []string{"PA", "PB", "PC", "velvet-k21", "postprocess"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestShardReadSet(t *testing.T) {
	rs := seq.ReadSet{Paired: true}
	for f := 0; f < 10; f++ {
		rs.Reads = append(rs.Reads,
			seq.Read{ID: fmt.Sprintf("f%d/1", f), Seq: []byte("ACGT")},
			seq.Read{ID: fmt.Sprintf("f%d/2", f), Seq: []byte("ACGT")},
		)
	}
	shards := shardReadSet(rs, 3)
	total := 0
	for _, s := range shards {
		if !s.Paired || len(s.Reads)%2 != 0 {
			t.Fatal("shard broke pairing")
		}
		for i := 0; i < len(s.Reads); i += 2 {
			id1, id2 := s.Reads[i].ID, s.Reads[i+1].ID
			if id1[:len(id1)-2] != id2[:len(id2)-2] {
				t.Fatalf("mates separated: %s / %s", id1, id2)
			}
		}
		total += len(s.Reads)
	}
	if total != len(rs.Reads) {
		t.Fatalf("shards lost reads: %d of %d", total, len(rs.Reads))
	}
}

func TestChooseInstanceType(t *testing.T) {
	p := cloud.NewProvider(vclock.NewClock(0), cloud.DefaultOptions())
	it, err := ChooseInstanceType(p, 40, 8)
	if err != nil || it.Name != "r3.2xlarge" {
		t.Errorf("40GB/8c -> %v %v, want r3.2xlarge", it, err)
	}
	it, err = ChooseInstanceType(p, 8, 8)
	if err != nil || it.Name != "c3.2xlarge" {
		t.Errorf("8GB/8c -> %v %v, want c3.2xlarge (cheapest 8-core)", it, err)
	}
	if _, err := ChooseInstanceType(p, 10_000, 1); err == nil {
		t.Error("impossible demand satisfied")
	}
}

func TestAssemblyNodesFor(t *testing.T) {
	// The sample run: 2 ks, ray+abyss+contrail, 1 node per MPI job,
	// 16 per Contrail job → 36 nodes.
	if n := AssemblyNodesFor([]int{41, 47}, []string{"ray", "abyss", "contrail"}, 1, 16); n != 36 {
		t.Errorf("sample-run sizing %d, want 36", n)
	}
	if n := AssemblyNodesFor(nil, nil, 1, 16); n != 1 {
		t.Errorf("degenerate sizing %d", n)
	}
}

func TestTableIVMatrix(t *testing.T) {
	bg := simdata.BGlumae().FullScale
	pc := simdata.PCrispa().FullScale
	c3, _ := ChooseInstanceType(cloud.NewProvider(vclock.NewClock(0), cloud.DefaultOptions()), 10, 8)
	_ = c3
	type cell struct {
		task Task
		fs   simdata.FullScaleStats
		it   cloud.InstanceType
		want bool
	}
	cells := []cell{
		// The paper's Table IV, row by row.
		{TaskPreprocess, bg, cloud.C32XLarge, true},
		{TaskPreprocess, pc, cloud.C32XLarge, false},
		{TaskPreprocess, bg, cloud.R32XLarge, true},
		{TaskPreprocess, pc, cloud.R32XLarge, true},
		{TaskAssemblyRay, bg, cloud.C32XLarge, true},
		{TaskAssemblyRay, pc, cloud.C32XLarge, false},
		{TaskAssemblyRay, pc, cloud.R32XLarge, true},
		{TaskAssemblyABySS, pc, cloud.C32XLarge, false},
		{TaskAssemblyABySS, pc, cloud.R32XLarge, true},
		{TaskAssemblyContrail, bg, cloud.C32XLarge, true},
		{TaskAssemblyContrail, pc, cloud.C32XLarge, false},
		{TaskAssemblyContrail, pc, cloud.R32XLarge, true},
		{TaskPostprocess, bg, cloud.C32XLarge, true},
		{TaskPostprocess, pc, cloud.C32XLarge, true}, // the one P. Crispa "O" on c3
		{TaskPostprocess, pc, cloud.R32XLarge, true},
	}
	for _, c := range cells {
		if got := Feasible(c.task, c.fs, c.it); got != c.want {
			t.Errorf("%v / %s on %s: got %v want %v (%.1f GB)",
				c.task, orgName(c.fs, bg), c.it.Name, got, c.want, TaskMemoryGB(c.task, c.fs))
		}
	}
}

func orgName(fs, bg simdata.FullScaleStats) string {
	if fs.GenomeSizeBp == bg.GenomeSizeBp {
		return "B. Glumae"
	}
	return "P. Crispa"
}

func TestMultiKMakespanTaskParallelism(t *testing.T) {
	ds := tinyDS(t)
	ks := []int{19, 21, 23, 25}
	m1, err := MultiKMakespan(ds, "ray", ks, 1, 1, "c3.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MultiKMakespan(ds, "ray", ks, 2, 1, "c3.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	m3, err := MultiKMakespan(ds, "ray", ks, 3, 1, "c3.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	m4, err := MultiKMakespan(ds, "ray", ks, 4, 1, "c3.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if !(m2.Makespan < m1.Makespan) {
		t.Errorf("2 nodes (%v) not faster than 1 (%v)", m2.Makespan, m1.Makespan)
	}
	// The paper's finding: 3 nodes still slightly better than 2.
	if !(m3.Makespan < m2.Makespan) {
		t.Errorf("3 nodes (%v) not better than 2 (%v)", m3.Makespan, m2.Makespan)
	}
	if !(m4.Makespan <= m3.Makespan) {
		t.Errorf("4 nodes (%v) worse than 3 (%v)", m4.Makespan, m3.Makespan)
	}
	// 1-node makespan ≈ sum of jobs; 4-node ≈ max job.
	var sum, max vclock.Duration
	for _, d := range m1.PerJob {
		sum += d
		if d > max {
			max = d
		}
	}
	if m1.Makespan < sum-1 {
		t.Errorf("1-node makespan %v below job sum %v", m1.Makespan, sum)
	}
	if m4.Makespan > max+1 {
		t.Errorf("4-node makespan %v above max job %v", m4.Makespan, max)
	}
	if _, err := MultiKMakespan(ds, "ray", nil, 1, 1, "c3.2xlarge"); err == nil {
		t.Error("empty k list accepted")
	}
}
