package core

import (
	"fmt"
	"sort"

	"rnascale/internal/assembler"
	"rnascale/internal/cloud"
	"rnascale/internal/preprocess"
	"rnascale/internal/quant"
	"rnascale/internal/simdata"
)

// Task enumerates the pipeline tasks of the paper's Table IV
// instance-capacity matrix.
type Task int

const (
	// TaskPreprocess is Rnnotator's read pre-processing.
	TaskPreprocess Task = iota
	// TaskAssemblyRay is transcript assembly with Ray.
	TaskAssemblyRay
	// TaskAssemblyABySS is transcript assembly with ABySS.
	TaskAssemblyABySS
	// TaskAssemblyContrail is transcript assembly with Contrail.
	TaskAssemblyContrail
	// TaskPostprocess is contig merging + quantification.
	TaskPostprocess
)

// Tasks lists the Table IV rows in paper order.
func Tasks() []Task {
	return []Task{TaskPreprocess, TaskAssemblyRay, TaskAssemblyABySS, TaskAssemblyContrail, TaskPostprocess}
}

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskPreprocess:
		return "Pre-Processing"
	case TaskAssemblyRay:
		return "Transcript Assembly with Ray"
	case TaskAssemblyABySS:
		return "Transcript Assembly with ABySS"
	case TaskAssemblyContrail:
		return "Transcript Assembly with Contrail"
	case TaskPostprocess:
		return "Post-Processing"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// TableIVClusterNodes is the cluster size underlying the capacity
// matrix — the same two-node baseline as Table III.
const TableIVClusterNodes = 2

// TaskMemoryGB reports a task's per-node resident footprint for a
// dataset at full scale, under the Table IV baseline configuration
// (pre/post on one node, assembly on the two-node cluster, raw input
// for assembly as in Fig. 3).
func TaskMemoryGB(task Task, fs simdata.FullScaleStats) float64 {
	switch task {
	case TaskPreprocess:
		return preprocess.DefaultCostModel().MemoryGB(fs)
	case TaskAssemblyRay, TaskAssemblyABySS, TaskAssemblyContrail:
		return assembler.GraphMemoryGB(fs, TableIVClusterNodes)
	case TaskPostprocess:
		return quant.DefaultCostModel().MemoryGB(fs)
	default:
		return 0
	}
}

// Feasible reports whether a task fits the instance type's memory —
// an "O" cell of Table IV; false is an "X".
func Feasible(task Task, fs simdata.FullScaleStats, it cloud.InstanceType) bool {
	return TaskMemoryGB(task, fs) <= it.MemoryGB
}

// ChooseInstanceType picks the cheapest catalogue type with at least
// the given memory and cores — the dynamic workflow's per-stage
// resource decision.
func ChooseInstanceType(p *cloud.Provider, minMemGB float64, minCores int) (cloud.InstanceType, error) {
	cands := cloud.DefaultCatalog()
	sort.Slice(cands, func(a, b int) bool { return cands[a].PricePerHour < cands[b].PricePerHour })
	for _, it := range cands {
		if it.MemoryGB >= minMemGB && it.Cores >= minCores {
			return it, nil
		}
	}
	return cloud.InstanceType{}, fmt.Errorf(
		"core: no instance type offers %.1f GB with %d cores", minMemGB, minCores)
}

// AssemblyNodesFor computes the PB cluster size from the k-mer plan —
// the dynamic-sizing rule behind the sample run's 36-node cluster
// (4 single-node MPI jobs + 2 sixteen-node Contrail jobs).
func AssemblyNodesFor(kmers []int, assemblers []string, nodesPerMPIJob, contrailNodes int) int {
	nodes := 0
	for _, a := range assemblers {
		if a == "contrail" {
			nodes += len(kmers) * contrailNodes
			continue
		}
		nodes += len(kmers) * nodesPerMPIJob
	}
	if nodes < 1 {
		nodes = 1
	}
	return nodes
}
