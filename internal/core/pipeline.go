package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"rnascale/internal/assembler"
	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/detonate"
	"rnascale/internal/diffexpr"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/merge"
	"rnascale/internal/obs"
	"rnascale/internal/pilot"
	"rnascale/internal/preprocess"
	"rnascale/internal/quant"
	"rnascale/internal/seq"
	"rnascale/internal/sge"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// Pipeline is one configured run environment.
type Pipeline struct {
	cfg      Config
	clock    *vclock.Clock
	provider *cloud.Provider
	pm       *pilot.Manager

	// o is the run's observability bundle (never nil: New creates one
	// when the config does not supply it); bridge mirrors the pilot
	// state store into spans; runSpan is the root of the span tree.
	o       *obs.Obs
	bridge  *pilot.SpanBridge
	runSpan *obs.Span

	// jr drives the write-ahead run journal and the drivercrash fault
	// checkpoints; nil when the run is neither journaled nor resumed
	// and no drivercrash rule is armed.
	jr *runJournal

	// budget is the run-wide retry token bucket (nil = unlimited);
	// cutoff is the virtual time past which no new attempt may start
	// (0 = none), and cutoffOutcome says which config knob set it.
	budget        *pilot.RetryBudget
	cutoff        vclock.Time
	cutoffOutcome Outcome
}

// New builds a pipeline with a fresh simulated cloud.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	clock := vclock.NewClock(0)
	copts := cloud.DefaultOptions()
	if cfg.Cloud != nil {
		copts = *cfg.Cloud
	}
	// Stage backends may need markets the caller didn't configure:
	// default them. The spot market is seeded from FaultSeed so a run
	// is a pure function of its config.
	if cfg.Backends.AnySpot() && copts.Spot == nil {
		copts.Spot = &cloud.SpotOptions{Seed: cfg.FaultSeed}
	}
	if cfg.Backends.AnyServerless() && copts.Serverless == nil {
		copts.Serverless = &cloud.ServerlessOptions{}
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	var inj *faults.Injector
	if cfg.FaultPlan != nil {
		inj = faults.NewInjector(cfg.FaultPlan, cfg.FaultSeed, clock)
		inj.SetMetrics(o.Metrics)
		copts.Faults = inj
	}
	provider := cloud.NewProvider(clock, copts)
	provider.SetMetrics(o.Metrics)
	store := pilot.NewStateStore()
	pm := pilot.NewManager(provider, store, cluster.DefaultOptions())
	pm.SetObs(o)
	pl := &Pipeline{
		cfg:      cfg,
		clock:    clock,
		provider: provider,
		pm:       pm,
		o:        o,
		bridge:   pilot.NewSpanBridge(store, o),
	}
	if cfg.Journal != nil || cfg.Resume != nil || len(inj.DriverCrashTimes()) > 0 {
		pl.jr = newRunJournal(pl, cfg, inj)
	}
	if cfg.RetryBudget > 0 {
		pl.budget = pilot.NewRetryBudget(cfg.RetryBudget, cfg.RetryBudgetRefill)
	}
	// The run clock starts at 0, so durations from the config are
	// absolute cutoff times; when both are set the earlier wins.
	if cfg.Deadline > 0 {
		pl.cutoff = vclock.Time(cfg.Deadline)
		pl.cutoffOutcome = OutcomeDeadlineExceeded
	}
	if cfg.CancelAt > 0 && (pl.cutoff == 0 || vclock.Time(cfg.CancelAt) < pl.cutoff) {
		pl.cutoff = vclock.Time(cfg.CancelAt)
		pl.cutoffOutcome = OutcomeCancelled
	}
	if cfg.Breaker != nil {
		cb := cloud.NewCircuitBreaker(clock, *cfg.Breaker)
		cb.SetMetrics(o.Metrics)
		provider.SetBreaker(cb)
	}
	return pl
}

// Provider exposes the simulated cloud (for inspection in tests and
// benches).
func (pl *Pipeline) Provider() *cloud.Provider { return pl.provider }

// Obs exposes the pipeline's observability bundle (tracer + metric
// registry).
func (pl *Pipeline) Obs() *obs.Obs { return pl.o }

// Run executes the full workflow over a dataset and returns the
// report. On stage failure the partial report is returned along with
// the error, so callers can inspect how far the run got (Table IV's
// X cells are exactly such failures).
func Run(ds *simdata.Dataset, cfg Config) (*Report, error) {
	return New(cfg).Run(ds)
}

// Run executes the pipeline.
func (pl *Pipeline) Run(ds *simdata.Dataset) (rep *Report, err error) {
	// The journal epilogue: an injected drivercrash unwinds out of an
	// arbitrary checkpoint and surfaces as DriverCrashError WITHOUT
	// teardown or a final journal record (the driver is gone — VMs
	// stay up, the journal prefix stays on disk). Every other exit
	// writes the journal's complete record.
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case driverCrashPanic:
				err = &DriverCrashError{At: v.at}
			case journalDriftPanic:
				err = fmt.Errorf("core: journal: %s", v.msg)
			default:
				panic(r)
			}
			return
		}
		if cerr := pl.jr.complete(pl.clock.Now(), pl.provider.TotalCost(), err); cerr != nil && err == nil {
			err = cerr
		}
	}()

	cfg := pl.cfg
	fs := ds.Profile.FullScale
	rep = &Report{Config: cfg, PerAssembler: map[string][]seq.FastaRecord{}}
	for _, name := range cfg.Assemblers {
		if _, err := assembler.Get(name); err != nil {
			return rep, err
		}
	}
	if cfg.Pattern == Conventional && cfg.Backends.AnyServerless() {
		return rep, fmt.Errorf("core: the conventional pattern shares one cluster across stages and cannot host serverless stages (%s)", cfg.Backends)
	}

	pl.runSpan = pl.o.Tracer.StartSpan(nil, obs.KindRun, "run", pl.clock.Now())
	pl.runSpan.SetAttr("scheme", cfg.Scheme.String())
	pl.runSpan.SetAttr("pattern", cfg.Pattern.String())
	pl.runSpan.SetAttr("assemblers", strings.Join(cfg.Assemblers, ","))
	pl.runSpan.SetAttr("profile", ds.Profile.Name)
	pl.jr.header(configDigest(cfg, ds), cfg.FaultSeed, ds.Profile.Name)

	// --- Stage 0: upload the raw data from the local server ---
	t0 := pl.clock.Now()
	xferScope := pl.beginStage("transfer")
	xferScope.attr("bytes", fmt.Sprintf("%d", fs.SeqDataBytes))
	pl.provider.UploadFromLocal(fs.SeqDataBytes)
	xferScope.end()
	rep.Stages = append(rep.Stages, StageReport{
		Name: "transfer", Start: t0, End: pl.clock.Now(),
		Note: fmt.Sprintf("%.1f GB to cloud", float64(fs.SeqDataBytes)/1e9),
	})

	// --- PA: pre-processing ---
	preModel := preprocess.DefaultCostModel()
	paBackend, paFallback := pl.routeBackend(cfg.Backends.PA)
	paType := cfg.InstanceType
	if paBackend == cloud.Serverless {
		paType = "serverless"
	} else if cfg.Pattern == DistributedDynamic {
		it, err := ChooseInstanceType(pl.provider, preModel.MemoryGB(fs), 8)
		if err != nil {
			return rep, err
		}
		paType = it.Name
	}
	shards := cfg.ParallelPreprocessShards
	if shards < 1 {
		shards = 1
	}
	paNodes := shards
	if cfg.Pattern == Conventional {
		// One pilot hosts everything: size it for the whole workflow
		// up front (the pattern's defining inflexibility).
		kmers := pl.kmerPlan(ds, nil)
		if n := pl.assemblyNodes(kmers); n > paNodes {
			paNodes = n
		}
	}
	paScope := pl.beginStage("PA")
	paScope.attr(obs.AttrInstanceType, paType)
	paScope.attr(obs.AttrNodes, fmt.Sprintf("%d", paNodes))
	if pl.cutoffReached() {
		return pl.cutoffCancel(rep, paScope, "PA", "", pl.clock.Now())
	}
	pa, err := pl.firstStage("PA", paType, paNodes, paBackend)
	if err != nil {
		err = fmt.Errorf("core: launching PA: %w", err)
		paScope.fail(err)
		pl.teardown()
		rep.finish(pl)
		return rep, err
	}

	// Shard the raw reads (fragment-preserving) for data-parallel
	// pre-processing; a single shard is the paper's stock single-VM PA.
	shardReads := shardReadSet(ds.Reads, shards)
	shardClean := make([]seq.ReadSet, shards)
	shardStats := make([]preprocess.Stats, shards)
	fsShard := fs
	fsShard.SeqDataBytes = fs.SeqDataBytes / int64(shards)

	paUM, err := pl.newRunner(pa, "PA")
	if err != nil {
		return rep, err
	}
	paStart := pl.clock.Now()
	var paDescs []pilot.UnitDescription
	for s := 0; s < shards; s++ {
		s := s
		paDescs = append(paDescs, pilot.UnitDescription{
			Name:  fmt.Sprintf("preprocess-%d", s),
			Slots: min(pa.cores(), 8),
			Rule:  sge.SingleNode,
			Retry: cfg.Retry.PA,
			Work: pl.jr.unit("PA", fmt.Sprintf("preprocess-%d", s),
				func(env *pilot.ExecEnv) (pilot.WorkResult, error) {
					shardClean[s], shardStats[s] = preprocess.Run(shardReads[s], cfg.Preprocess)
					return pilot.WorkResult{
						Duration:     preModel.Duration(fsShard, env.Slots),
						PeakMemoryGB: preModel.MemoryGB(fsShard),
					}, nil
				},
				unitCodec{
					encode: func(pilot.WorkResult) (json.RawMessage, error) {
						return json.Marshal(paPayload{
							Shard: s, Reads: shardClean[s].Reads,
							Paired: shardClean[s].Paired, Stats: shardStats[s],
						})
					},
					replay: func(rec journal.Record, _ *pilot.ExecEnv) (pilot.WorkResult, error) {
						var p paPayload
						if err := json.Unmarshal(rec.Payload, &p); err != nil {
							return pilot.WorkResult{}, err
						}
						shardClean[s] = seq.ReadSet{Reads: p.Reads, Paired: p.Paired}
						shardStats[s] = p.Stats
						return pilot.WorkResult{}, nil
					},
				}),
		})
	}
	paUnits, err := paUM.Submit(paDescs)
	if err != nil {
		return rep, err
	}
	if err := paUM.Run(); err != nil {
		return rep, err
	}
	for _, u := range paUnits {
		if pl.canceledAtCutoff(u) {
			return pl.cutoffCancel(rep, paScope, "PA", pa.id(), paStart, pa)
		}
		if u.State() != pilot.UnitDone {
			rep.Stages = append(rep.Stages, StageReport{Name: "PA", Pilot: pa.id(), Start: paStart, End: pl.clock.Now(), Note: "FAILED"})
			err := fmt.Errorf("core: PA pre-processing failed on %s: %w", paType, u.Err)
			paScope.fail(err)
			pl.teardown(pa)
			rep.finish(pl)
			return rep, err
		}
	}
	cleaned := seq.ReadSet{Paired: ds.Reads.Paired}
	var preStats preprocess.Stats
	for s := 0; s < shards; s++ {
		cleaned.Reads = append(cleaned.Reads, shardClean[s].Reads...)
		preStats = combineStats(preStats, shardStats[s])
	}
	if preStats.OutputReads == 0 {
		err := fmt.Errorf("core: pre-processing removed every read")
		paScope.fail(err)
		pl.teardown(pa)
		rep.finish(pl)
		return rep, err
	}
	pl.counter(MetricReadsProcessed, "Reads surviving pre-processing.", nil).
		Add(float64(preStats.OutputReads))
	pl.counter(MetricBasesProcessed, "Bases surviving pre-processing.", nil).
		Add(float64(preStats.OutputBases))
	var fq bytes.Buffer
	if err := seq.WriteFastq(&fq, cleaned.Reads); err != nil {
		return rep, err
	}
	if err := pa.store().Put("data/clean.fastq", fq.Bytes()); err != nil {
		return rep, err
	}
	rep.PreStats = preStats
	paScope.end()
	rep.Stages = append(rep.Stages, StageReport{
		Name: "PA", Pilot: pa.id(), Start: paStart, End: pl.clock.Now(),
		Note: preStats.String() + paFallback,
	})

	// The k-mer plan is now known — the information the dynamic
	// workflow waits for.
	kmers := pl.kmerPlan(ds, &preStats)
	rep.KmersUsed = kmers
	asmFS := fs
	asmFS.SeqDataBytes = fs.PostPreprocessBytes

	// --- PB: multiple-k-mer, multi-assembler transcript assembly ---
	pbBackend, pbFallback := pl.routeBackend(cfg.Backends.PB)
	nodes := pl.assemblyNodes(kmers)
	if pbBackend == cloud.Serverless {
		// Functions are single one-core allocations: there is no
		// assembly cluster to size.
		nodes = 0
	}
	rep.AssemblyNodes = nodes
	pbScope := pl.beginStage("PB")
	pbScope.attr("kmers", fmt.Sprint(kmers))
	pbScope.attr(obs.AttrNodes, fmt.Sprintf("%d", nodes))
	if pl.cutoffReached() {
		return pl.cutoffCancel(rep, pbScope, "PB", "", pl.clock.Now(), pa)
	}
	pb, transferNote, err := pl.nextStage("PB", pa, nodes, pbBackend, func() (string, error) {
		// Instance choice for a fresh (S1) PB pilot.
		if cfg.Pattern != DistributedDynamic {
			return cfg.InstanceType, nil
		}
		need := assembler.GraphMemoryGB(asmFS, cfg.NodesPerMPIJob)
		it, err := ChooseInstanceType(pl.provider, need, 8)
		if err != nil {
			return "", err
		}
		return it.Name, nil
	}, fs.PostPreprocessBytes)
	if err != nil {
		err = fmt.Errorf("core: launching PB: %w", err)
		pbScope.fail(err)
		pl.teardown(pa)
		rep.finish(pl)
		return rep, err
	}
	pbScope.attr(obs.AttrInstanceType, pb.instanceName())

	pbStart := pl.clock.Now()
	pbUM, err := pl.newRunner(pb, "PB")
	if err != nil {
		return rep, err
	}
	cores := pb.cores()
	type asmKey struct {
		name string
		k    int
	}
	outputs := map[asmKey][]seq.FastaRecord{}
	var descs []pilot.UnitDescription
	for _, name := range cfg.Assemblers {
		name := name
		a, _ := assembler.Get(name)
		jobNodes := cfg.NodesPerMPIJob
		rule := sge.SingleNode
		if name == "contrail" {
			jobNodes = cfg.ContrailNodes
			rule = sge.FillUp
		} else if !a.Info().MultiNode() {
			jobNodes = 1
		}
		if jobNodes > 1 {
			rule = sge.FillUp
		}
		if pbBackend == cloud.Serverless {
			// A function invocation is one single-core allocation;
			// multi-node MPI shapes don't exist on this backend, so the
			// assembler runs sequentially and long jobs split into
			// parallel pieces at the duration cap instead.
			jobNodes = 1
			rule = sge.SingleNode
		}
		for _, k := range kmers {
			k := k
			jobNodes := jobNodes
			work := func(env *pilot.ExecEnv) (pilot.WorkResult, error) {
				extra := vclock.Duration(0)
				jobReads := cleaned.Reads
				if name == "contrail" {
					// Contrail cannot handle N bases (the paper
					// pre-processes P. Crispa for exactly this
					// reason): feed it the N-free subset, via the
					// SFA conversion the paper charges 1 min for.
					jobReads = dropNReads(jobReads)
					var buf bytes.Buffer
					if err := seq.WriteSFA(&buf, jobReads); err != nil {
						return pilot.WorkResult{}, err
					}
					if err := env.Store.Put(fmt.Sprintf("data/clean.k%d.sfa", k), buf.Bytes()); err != nil {
						return pilot.WorkResult{}, err
					}
					extra = 60 * vclock.Second
				}
				res, err := a.Assemble(assembler.Request{
					Reads:        jobReads,
					Params:       assembler.Params{K: k, MinCoverage: cfg.MinCoverage},
					Nodes:        jobNodes,
					CoresPerNode: cores,
					FullScale:    asmFS,
				})
				if err != nil {
					return pilot.WorkResult{}, err
				}
				outputs[asmKey{name, k}] = res.Contigs
				var buf bytes.Buffer
				if err := seq.WriteFasta(&buf, res.Contigs, 80); err != nil {
					return pilot.WorkResult{}, err
				}
				if err := env.Store.Put(fmt.Sprintf("asm/%s/k%d.contigs.fa", name, k), buf.Bytes()); err != nil {
					return pilot.WorkResult{}, err
				}
				return pilot.WorkResult{
					Duration:     res.TTC + extra,
					PeakMemoryGB: res.PeakMemoryGBPerNode,
					Output:       asmOutput{name: name, k: k, res: res},
				}, nil
			}
			codec := unitCodec{
				encode: func(res pilot.WorkResult) (json.RawMessage, error) {
					out := res.Output.(asmOutput)
					return json.Marshal(pbPayload{
						Assembler: out.name, K: out.k, Contigs: out.res.Contigs,
						TTCSeconds:          float64(out.res.TTC),
						PeakMemoryGBPerNode: out.res.PeakMemoryGBPerNode,
						Messages:            out.res.Messages,
						BytesSent:           out.res.BytesSent,
						N50:                 out.res.N50,
					})
				},
				replay: func(rec journal.Record, env *pilot.ExecEnv) (pilot.WorkResult, error) {
					var p pbPayload
					if err := json.Unmarshal(rec.Payload, &p); err != nil {
						return pilot.WorkResult{}, err
					}
					if p.Assembler == "contrail" {
						// Re-derive the SFA conversion the original unit
						// staged, so the shared store's contents match.
						var buf bytes.Buffer
						if err := seq.WriteSFA(&buf, dropNReads(cleaned.Reads)); err != nil {
							return pilot.WorkResult{}, err
						}
						if err := env.Store.Put(fmt.Sprintf("data/clean.k%d.sfa", p.K), buf.Bytes()); err != nil {
							return pilot.WorkResult{}, err
						}
					}
					outputs[asmKey{p.Assembler, p.K}] = p.Contigs
					var buf bytes.Buffer
					if err := seq.WriteFasta(&buf, p.Contigs, 80); err != nil {
						return pilot.WorkResult{}, err
					}
					if err := env.Store.Put(fmt.Sprintf("asm/%s/k%d.contigs.fa", p.Assembler, p.K), buf.Bytes()); err != nil {
						return pilot.WorkResult{}, err
					}
					res := assembler.Result{
						Contigs:             p.Contigs,
						TTC:                 vclock.Duration(p.TTCSeconds),
						PeakMemoryGBPerNode: p.PeakMemoryGBPerNode,
						Messages:            p.Messages,
						BytesSent:           p.BytesSent,
						N50:                 p.N50,
					}
					return pilot.WorkResult{Output: asmOutput{name: p.Assembler, k: p.K, res: res}}, nil
				},
			}
			descs = append(descs, pilot.UnitDescription{
				Name:  fmt.Sprintf("%s-k%d", name, k),
				Slots: jobNodes * cores,
				Rule:  rule,
				Retry: cfg.Retry.PB,
				Work:  pl.jr.unit("PB", fmt.Sprintf("%s-k%d", name, k), work, codec),
			})
		}
	}
	pbUnits, err := pbUM.Submit(descs)
	if err != nil {
		return rep, err
	}
	if err := pbUM.Run(); err != nil {
		return rep, err
	}
	for _, u := range pbUnits {
		if pl.canceledAtCutoff(u) {
			return pl.cutoffCancel(rep, pbScope, "PB", pb.id(), pbStart, pa, pb)
		}
		if u.State() != pilot.UnitDone {
			rep.Stages = append(rep.Stages, StageReport{Name: "PB", Pilot: pb.id(), Start: pbStart, End: pl.clock.Now(), Note: "FAILED"})
			err := fmt.Errorf("core: PB unit %s failed: %w", u.ID, u.Err)
			pbScope.fail(err)
			pl.teardown(pa, pb)
			rep.finish(pl)
			return rep, err
		}
		out := u.Result.Output.(asmOutput)
		rep.Assemblies = append(rep.Assemblies, AssemblyReport{
			Assembler: out.name, K: out.k,
			Contigs: len(out.res.Contigs), N50: out.res.N50,
			TTC: out.res.TTC, MemoryGB: out.res.PeakMemoryGBPerNode,
		})
		if out.res.Messages > 0 || out.res.BytesSent > 0 {
			labels := obs.Labels{"assembler": out.name} //rnavet:allow metriccard — out.name is one of the registered assembler names (Assemblers()), a closed set
			pl.counter(MetricAssemblerMessages, "MPI/MapReduce messages sent by distributed assemblers.", labels).
				Add(float64(out.res.Messages))
			pl.counter(MetricAssemblerBytesSent, "MPI/MapReduce bytes sent by distributed assemblers.", labels).
				Add(float64(out.res.BytesSent))
		}
	}
	pbScope.end()
	pbNote := fmt.Sprintf("%d assembly jobs on %d nodes%s%s", len(pbUnits), nodes, transferNote, pbFallback)
	if pb.faas != nil {
		pbNote = fmt.Sprintf("%d assembly jobs as functions%s", len(pbUnits), transferNote)
	}
	rep.Stages = append(rep.Stages, StageReport{
		Name: "PB", Pilot: pb.id(), Start: pbStart, End: pl.clock.Now(),
		Note: pbNote,
	})

	// --- PC: post-processing, quantification ---
	postModel := quant.DefaultCostModel()
	var pbOutBytes int64
	for _, set := range outputs {
		for _, c := range set {
			pbOutBytes += int64(len(c.Seq)) + int64(len(c.ID)) + 2
		}
	}
	pcBackend, pcFallback := pl.routeBackend(cfg.Backends.PC)
	pcScope := pl.beginStage("PC")
	pcScope.attr(obs.AttrNodes, "1")
	if pl.cutoffReached() {
		return pl.cutoffCancel(rep, pcScope, "PC", "", pl.clock.Now(), pa, pb)
	}
	pc, pcTransferNote, err := pl.nextStage("PC", pb, 1, pcBackend, func() (string, error) {
		if cfg.Pattern != DistributedDynamic {
			return cfg.InstanceType, nil
		}
		it, err := ChooseInstanceType(pl.provider, postModel.MemoryGB(fs), 8)
		if err != nil {
			return "", err
		}
		return it.Name, nil
	}, pbOutBytes)
	if err != nil {
		err = fmt.Errorf("core: launching PC: %w", err)
		pcScope.fail(err)
		pl.teardown(pa, pb)
		rep.finish(pl)
		return rep, err
	}
	pcScope.attr(obs.AttrInstanceType, pc.instanceName())
	pcStart := pl.clock.Now()
	pcUM, err := pl.newRunner(pc, "PC")
	if err != nil {
		return rep, err
	}
	pcWork := func(env *pilot.ExecEnv) (pilot.WorkResult, error) {
		// Merge each assembler's multi-k sets, then the MAMP union
		// (optionally with cross-assembler consensus validation).
		var all [][]seq.FastaRecord
		for _, name := range cfg.Assemblers {
			var sets [][]seq.FastaRecord
			for _, k := range kmers {
				sets = append(sets, outputs[asmKey{name, k}])
			}
			perTool, _ := merge.Merge(sets, merge.DefaultOptions())
			rep.PerAssembler[name] = perTool
			all = append(all, perTool)
		}
		var final []seq.FastaRecord
		if cfg.ConsensusMerge && len(all) >= 2 {
			f, cs, err := merge.ConsensusMerge(all, merge.DefaultConsensusOptions())
			if err != nil {
				return pilot.WorkResult{}, err
			}
			final = f
			rep.MergeStats = cs.Stats
		} else {
			f, mstats := merge.Merge(all, merge.DefaultOptions())
			final = f
			rep.MergeStats = mstats
		}
		rep.Transcripts = final
		var buf bytes.Buffer
		if err := seq.WriteFasta(&buf, final, 80); err != nil {
			return pilot.WorkResult{}, err
		}
		if err := env.Store.Put("post/transcripts.fa", buf.Bytes()); err != nil {
			return pilot.WorkResult{}, err
		}
		q, err := quant.Quantify(final, cleaned.Reads, quant.DefaultOptions())
		if err != nil {
			return pilot.WorkResult{}, err
		}
		rep.Quant = q
		dur := postModel.Duration(fs, env.Slots)
		if cfg.ConditionB != nil {
			// Optional differential-expression step: clean and
			// quantify the second condition, then test — charged as
			// a second quantification pass.
			cleanB, _ := preprocess.Run(*cfg.ConditionB, cfg.Preprocess)
			qb, err := quant.Quantify(final, cleanB.Reads, quant.DefaultOptions())
			if err != nil {
				return pilot.WorkResult{}, err
			}
			rep.QuantB = qb
			ids := make([]string, len(final))
			ca := make([]int64, len(final))
			cb := make([]int64, len(final))
			idx := map[string]int{}
			for i, tx := range final {
				ids[i] = tx.ID
				idx[tx.ID] = i
			}
			for _, a := range q.Abundances {
				ca[idx[a.ID]] = a.Count
			}
			for _, a := range qb.Abundances {
				cb[idx[a.ID]] = a.Count
			}
			rows, err := diffexpr.Test(ids, ca, cb, diffexpr.DefaultOptions())
			if err != nil {
				return pilot.WorkResult{}, fmt.Errorf("differential expression: %w", err)
			}
			rep.DiffExpr = rows
			dur += postModel.Duration(fs, env.Slots)
		}
		return pilot.WorkResult{
			Duration:     dur,
			PeakMemoryGB: postModel.MemoryGB(fs),
		}, nil
	}
	pcCodec := unitCodec{
		encode: func(pilot.WorkResult) (json.RawMessage, error) {
			return json.Marshal(pcPayload{
				PerAssembler: rep.PerAssembler,
				Transcripts:  rep.Transcripts,
				MergeStats:   rep.MergeStats,
				Quant:        rep.Quant,
				QuantB:       rep.QuantB,
				DiffExpr:     rep.DiffExpr,
			})
		},
		replay: func(rec journal.Record, env *pilot.ExecEnv) (pilot.WorkResult, error) {
			var p pcPayload
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return pilot.WorkResult{}, err
			}
			rep.PerAssembler = p.PerAssembler
			rep.Transcripts = p.Transcripts
			rep.MergeStats = p.MergeStats
			rep.Quant = p.Quant
			rep.QuantB = p.QuantB
			rep.DiffExpr = p.DiffExpr
			var buf bytes.Buffer
			if err := seq.WriteFasta(&buf, p.Transcripts, 80); err != nil {
				return pilot.WorkResult{}, err
			}
			if err := env.Store.Put("post/transcripts.fa", buf.Bytes()); err != nil {
				return pilot.WorkResult{}, err
			}
			return pilot.WorkResult{}, nil
		},
	}
	pcUnits, err := pcUM.Submit([]pilot.UnitDescription{{
		Name:  "postprocess",
		Slots: min(pc.cores(), 8),
		Rule:  sge.SingleNode,
		Retry: cfg.Retry.PC,
		Work:  pl.jr.unit("PC", "postprocess", pcWork, pcCodec),
	}})
	if err != nil {
		return rep, err
	}
	if err := pcUM.Run(); err != nil {
		return rep, err
	}
	if pl.canceledAtCutoff(pcUnits[0]) {
		return pl.cutoffCancel(rep, pcScope, "PC", pc.id(), pcStart, pa, pb, pc)
	}
	if st := pcUnits[0].State(); st != pilot.UnitDone {
		rep.Stages = append(rep.Stages, StageReport{Name: "PC", Pilot: pc.id(), Start: pcStart, End: pl.clock.Now(), Note: "FAILED"})
		err := fmt.Errorf("core: PC post-processing failed: %w", pcUnits[0].Err)
		pcScope.fail(err)
		pl.teardown(pa, pb, pc)
		rep.finish(pl)
		return rep, err
	}
	pcScope.end()
	rep.Stages = append(rep.Stages, StageReport{
		Name: "PC", Pilot: pc.id(), Start: pcStart, End: pl.clock.Now(),
		Note: rep.MergeStats.String() + pcTransferNote + pcFallback,
	})

	// --- Wrap up: terminate everything, bill, evaluate ---
	pl.teardown(pa, pb, pc)
	rep.Outcome = OutcomeComplete
	rep.finish(pl)

	if cfg.EvaluateAgainstTruth {
		opts := detonate.DefaultOptions()
		opts.ReadBases = cleaned.TotalBases()
		// Score against the gene-annotation track when present — the
		// paper evaluates against predicted protein gene sequences,
		// not full mRNAs.
		truth := ds.Annotations
		if len(truth) == 0 {
			truth = ds.Transcripts
		}
		m, err := detonate.Evaluate(rep.Transcripts, truth, ds.Expression, opts)
		if err != nil {
			return rep, err
		}
		rep.Metrics = &m
	}
	return rep, nil
}

// kmerPlan resolves the multiple-k-mer plan.
func (pl *Pipeline) kmerPlan(ds *simdata.Dataset, st *preprocess.Stats) []int {
	if len(pl.cfg.Kmers) > 0 {
		return pl.cfg.Kmers
	}
	if len(ds.Profile.FullScale.AssemblyKmers) > 0 {
		return ds.Profile.FullScale.AssemblyKmers
	}
	mean := float64(ds.Profile.ReadLen)
	if st != nil && st.MeanReadLen > 0 {
		mean = st.MeanReadLen
	}
	return preprocess.KmerPlan(mean, ds.Profile.ReadLen)
}

// assemblyNodes resolves the PB cluster size.
func (pl *Pipeline) assemblyNodes(kmers []int) int {
	if pl.cfg.AssemblyNodesOverride > 0 {
		return pl.cfg.AssemblyNodesOverride
	}
	return AssemblyNodesFor(kmers, pl.cfg.Assemblers, pl.cfg.NodesPerMPIJob, pl.cfg.ContrailNodes)
}

// stageExec is the execution vehicle for one pipeline stage: a
// VM-backed pilot (on-demand or spot), or a serverless function
// runner.
type stageExec struct {
	pilot *pilot.Pilot
	faas  *pilot.FunctionRunner
}

// id reports the vehicle's state-store ID for stage reports.
func (sx *stageExec) id() string {
	if sx.faas != nil {
		return sx.faas.ID()
	}
	return sx.pilot.ID
}

// store exposes the vehicle's shared filesystem (NFS on a cluster, an
// object store for functions).
func (sx *stageExec) store() *cluster.SharedStore {
	if sx.faas != nil {
		return sx.faas.Store()
	}
	return sx.pilot.Cluster.Store()
}

// cores reports the per-allocation core count units size their slot
// requests by: the node flavour's cores on a pilot, one for functions.
func (sx *stageExec) cores() int {
	if sx.faas != nil {
		return 1
	}
	return sx.pilot.Cluster.InstanceType().Cores
}

func (sx *stageExec) instanceName() string {
	if sx.faas != nil {
		return "serverless"
	}
	return sx.pilot.Cluster.InstanceType().Name
}

// unitRunner is the slice of the unit-execution contract the pipeline
// drives, satisfied by both *pilot.UnitManager and
// *pilot.FunctionRunner.
type unitRunner interface {
	SetObs(*obs.Obs)
	SetOnUnitDone(func(*pilot.Unit, vclock.Time))
	SetRetryBudget(*pilot.RetryBudget)
	SetCutoff(vclock.Time)
	Submit([]pilot.UnitDescription) ([]*pilot.Unit, error)
	Run() error
}

// newRunner builds the unit runner for a stage vehicle, wired into the
// run's observability, journal, retry-budget and cutoff hooks.
func (pl *Pipeline) newRunner(sx *stageExec, stage string) (unitRunner, error) {
	var r unitRunner
	if sx.faas != nil {
		r = sx.faas
	} else {
		um := pilot.NewUnitManager(pl.pm.Store(), pl.clock, pilot.RoundRobin)
		if err := um.AddPilots(sx.pilot); err != nil {
			return nil, err
		}
		r = um
	}
	r.SetObs(pl.o)
	r.SetOnUnitDone(pl.jr.onUnitDone(stage))
	r.SetRetryBudget(pl.budget)
	r.SetCutoff(pl.cutoff)
	return r, nil
}

// cutoffReached reports whether the virtual clock crossed the run's
// cutoff (deadline or cancellation point).
func (pl *Pipeline) cutoffReached() bool {
	return pl.cutoff > 0 && pl.clock.Now() >= pl.cutoff
}

// canceledAtCutoff reports whether a unit terminated via the cutoff
// path: the runners transition units to CANCELED (never FAILED) when
// an attempt would start past the cutoff, and nothing else cancels
// units inside a pipeline run.
func (pl *Pipeline) canceledAtCutoff(u *pilot.Unit) bool {
	return pl.cutoff > 0 && u.State() == pilot.UnitCanceled
}

// cutoffCancel ends a run at its cutoff: the stage is closed with the
// outcome, a cancelled record is journaled (so a resume replays the
// same truncation byte-for-byte), every vehicle tears down, and the
// truncated report is stamped and returned with a *CutoffError.
func (pl *Pipeline) cutoffCancel(rep *Report, sc *stageScope, stage, pilotID string,
	start vclock.Time, sxs ...*stageExec) (*Report, error) {

	// A preempted unit leaves the clock where its attempt started;
	// the run still waited until the cutoff expired before giving up.
	if pl.clock.Now() < pl.cutoff {
		pl.clock.AdvanceTo(pl.cutoff)
	}
	now := pl.clock.Now()
	err := &CutoffError{Outcome: pl.cutoffOutcome, At: now, Cutoff: pl.cutoff}
	rep.Stages = append(rep.Stages, StageReport{
		Name: stage, Pilot: pilotID, Start: start, End: now, Note: string(pl.cutoffOutcome),
	})
	sc.fail(err)
	pl.jr.cancelled(string(pl.cutoffOutcome))
	pl.teardown(sxs...)
	rep.Outcome = pl.cutoffOutcome
	rep.finish(pl)
	return rep, err
}

// routeBackend applies the circuit breaker to a stage's requested
// backend: a tripped spot or serverless circuit routes the stage to
// the on-demand fallback. It returns the effective backend and a
// human-readable note suffix when a fallback happened.
func (pl *Pipeline) routeBackend(backend cloud.Backend) (cloud.Backend, string) {
	cb := pl.provider.Breaker()
	if cb == nil || backend == cloud.OnDemand || cb.Allow(backend) {
		return backend, ""
	}
	return cloud.OnDemand, fmt.Sprintf("; %s breaker open, on-demand fallback", backend)
}

// firstStage provisions the workflow's first execution vehicle: a
// pilot on the requested purchasing backend, or a function runner when
// the stage is serverless.
func (pl *Pipeline) firstStage(name, itype string, nodes int, backend cloud.Backend) (*stageExec, error) {
	if backend == cloud.Serverless {
		fr, err := pilot.NewFunctionRunner(pl.provider, pl.pm.Store(), name)
		if err != nil {
			return nil, err
		}
		return &stageExec{faas: fr}, nil
	}
	p, err := pl.pm.SubmitPilot(pilot.PilotDescription{
		Name: name, InstanceType: itype, Nodes: nodes, Backend: backend,
		// Under S2, VM lifetime belongs to the scheme, not the pilot.
		RetainVMs: pl.cfg.Scheme == S2 && pl.cfg.Pattern != Conventional,
	})
	if err != nil {
		return nil, err
	}
	return &stageExec{pilot: p}, nil
}

// release completes a finished stage's execution vehicle. When
// terminateVMs is set, VMs it retained under S2 are shut down too —
// the boundary into a serverless stage, where nothing will adopt them.
func (pl *Pipeline) release(sx *stageExec, terminateVMs bool) error {
	if sx.faas != nil {
		return sx.faas.Complete()
	}
	vms := sx.pilot.Cluster.VMs()
	if err := pl.pm.CompletePilot(sx.pilot); err != nil {
		return err
	}
	if terminateVMs {
		pl.provider.Terminate(vms...)
	}
	return nil
}

// nextStage provisions the execution vehicle for the next stage
// according to the matching scheme, workflow pattern and requested
// backend, migrating `stageBytes` of data from the previous stage's
// store. It returns the vehicle and a human-readable note about any
// data transfer performed.
func (pl *Pipeline) nextStage(name string, prev *stageExec, nodes int, backend cloud.Backend,
	chooseType func() (string, error), stageBytes int64) (*stageExec, string, error) {

	if pl.cfg.Pattern == Conventional {
		// Single-pilot workflow: reuse the original pilot untouched.
		return prev, "", nil
	}
	prevStore := prev.store()
	if backend == cloud.Serverless {
		// The stage runs as functions: its data moves to the object
		// store, and any VMs the previous stage retained have no
		// successor to adopt them, so they terminate now.
		fr, err := pilot.NewFunctionRunner(pl.provider, pl.pm.Store(), name)
		if err != nil {
			return nil, "", err
		}
		d := pl.provider.InterNodeTransfer(stageBytes)
		pl.clock.Advance(d)
		copyStore(prevStore, fr.Store())
		if err := pl.release(prev, true); err != nil {
			return nil, "", err
		}
		return &stageExec{faas: fr}, fmt.Sprintf("; %v transfer to object store", d), nil
	}
	if pl.cfg.Scheme == S2 && prev.pilot != nil {
		// Reuse the previous pilot's VMs; grow or shrink to size.
		if err := pl.pm.CompletePilot(prev.pilot); err != nil {
			return nil, "", err
		}
		vms := prev.pilot.Cluster.VMs()
		if len(vms) > nodes {
			// Terminate the excess (sample run: "other 35 VMs, which
			// are not necessary for PC, are terminated").
			pl.provider.Terminate(vms[nodes:]...)
			vms = vms[:nodes]
		} else if len(vms) < nodes {
			// Growth buys on the stage's requested backend; the adopted
			// nodes keep whichever market they were booted on.
			extra, err := pl.provider.RunInstancesOn(prev.pilot.Cluster.InstanceType().Name, nodes-len(vms), backend)
			if err != nil {
				return nil, "", err
			}
			pl.provider.WaitRunning(extra)
			pl.clock.Advance(cluster.DefaultOptions().ConfigPerNode)
			vms = append(vms, extra...)
		}
		p, err := pl.pm.SubmitPilot(pilot.PilotDescription{Name: name, ReuseVMs: vms})
		if err != nil {
			return nil, "", err
		}
		// Shared filesystem persists across pilots under S2: no
		// transfer, just carry the files over.
		copyStore(prevStore, p.Cluster.Store())
		return &stageExec{pilot: p}, "", nil
	}
	// S1 — or the previous stage ran serverless, leaving no VMs to
	// reuse: boot fresh nodes on the requested backend.
	itype, err := chooseType()
	if err != nil {
		return nil, "", err
	}
	p, err := pl.pm.SubmitPilot(pilot.PilotDescription{
		Name: name, InstanceType: itype, Nodes: nodes, Backend: backend,
		RetainVMs: pl.cfg.Scheme == S2,
	})
	if err != nil {
		return nil, "", err
	}
	// Migrate data between the old and new stages' filesystems, then
	// release the previous stage's resources.
	d := pl.provider.InterNodeTransfer(stageBytes)
	pl.clock.Advance(d)
	copyStore(prevStore, p.Cluster.Store())
	if err := pl.release(prev, false); err != nil {
		return nil, "", err
	}
	return &stageExec{pilot: p}, fmt.Sprintf("; %v inter-pilot data transfer", d), nil
}

// teardown completes every stage vehicle and terminates all VMs.
func (pl *Pipeline) teardown(sxs ...*stageExec) {
	for _, sx := range sxs {
		if sx == nil {
			continue
		}
		if sx.faas != nil {
			_ = sx.faas.Complete()
		} else if sx.pilot != nil {
			_ = pl.pm.CompletePilot(sx.pilot)
		}
	}
	pl.provider.TerminateAll()
}

// finish stamps the report's totals and folds the observability state
// into the snapshot.
func (r *Report) finish(pl *Pipeline) {
	r.TTC = vclock.Duration(pl.clock.Now())
	r.CostUSD = pl.provider.TotalCost()
	r.Bill = pl.provider.Bill()
	r.Events = pl.pm.Store().History()
	pl.finishObs(r)
}

// copyStore copies every file between shared stores.
func copyStore(src, dst *cluster.SharedStore) {
	if src == dst || src == nil || dst == nil {
		return
	}
	for _, path := range src.List("") {
		_, _ = src.CopyTo(dst, path)
	}
}

// asmOutput threads an assembly unit's identity and result through
// the pilot framework's opaque output slot.
type asmOutput struct {
	name string
	k    int
	res  assembler.Result
}

// shardReadSet splits reads into n fragment-preserving shards by
// round-robin over fragments.
func shardReadSet(rs seq.ReadSet, n int) []seq.ReadSet {
	out := make([]seq.ReadSet, n)
	for i := range out {
		out[i].Paired = rs.Paired
	}
	stride := 1
	if rs.Paired {
		stride = 2
	}
	for f := 0; f*stride < len(rs.Reads); f++ {
		s := f % n
		out[s].Reads = append(out[s].Reads, rs.Reads[f*stride:min((f+1)*stride, len(rs.Reads))]...)
	}
	return out
}

// combineStats folds per-shard pre-processing statistics.
func combineStats(a, b preprocess.Stats) preprocess.Stats {
	a.InputReads += b.InputReads
	a.OutputReads += b.OutputReads
	a.InputBases += b.InputBases
	a.OutputBases += b.OutputBases
	a.TrimmedBases += b.TrimmedBases
	a.DroppedNRich += b.DroppedNRich
	a.DroppedShort += b.DroppedShort
	a.DroppedDup += b.DroppedDup
	if a.OutputReads > 0 {
		a.MeanReadLen = float64(a.OutputBases) / float64(a.OutputReads)
	}
	return a
}

// dropNReads filters reads containing ambiguous bases.
func dropNReads(reads []seq.Read) []seq.Read {
	out := make([]seq.Read, 0, len(reads))
	for _, r := range reads {
		if seq.CountN(r.Seq) == 0 {
			out = append(out, r)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
