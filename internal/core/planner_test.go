package core

import (
	"math"
	"strings"
	"testing"

	"rnascale/internal/simdata"
)

// The planner's reason for existing: its predictions must track the
// simulation closely enough to base scheduling decisions on.
func TestPredictTracksRun(t *testing.T) {
	ds := tinyDS(t)
	for _, cfg := range []Config{
		tinyConfig(),
		func() Config { c := tinyConfig(); c.Scheme = S1; return c }(),
		func() Config { c := tinyConfig(); c.Assemblers = []string{"velvet"}; return c }(),
	} {
		cfg.EvaluateAgainstTruth = false
		plan, err := Predict(ds, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Assemblers, err)
		}
		rep, err := Run(ds, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Assemblers, err)
		}
		ttcRatio := plan.TTC.Seconds() / rep.TTC.Seconds()
		if ttcRatio < 0.75 || ttcRatio > 1.35 {
			t.Errorf("%v %v: predicted TTC %v vs actual %v (ratio %.2f)",
				cfg.Assemblers, cfg.Scheme, plan.TTC, rep.TTC, ttcRatio)
		}
		costRatio := plan.CostUSD / rep.CostUSD
		if costRatio < 0.6 || costRatio > 1.6 {
			t.Errorf("%v %v: predicted cost $%.2f vs actual $%.2f (ratio %.2f)",
				cfg.Assemblers, cfg.Scheme, plan.CostUSD, rep.CostUSD, costRatio)
		}
		if plan.AssemblyNodes != rep.AssemblyNodes {
			t.Errorf("predicted %d PB nodes, actual %d", plan.AssemblyNodes, rep.AssemblyNodes)
		}
		if !strings.Contains(plan.String(), "TTC") {
			t.Error("plan string malformed")
		}
	}
}

// Prediction-time feasibility: the planner rejects the Table IV "X"
// configurations without running anything.
func TestPredictRejectsInfeasible(t *testing.T) {
	prof := simdata.Tiny()
	prof.FullScale = simdata.PCrispa().FullScale
	prof.FullScale.AssemblyKmers = simdata.Tiny().FullScale.AssemblyKmers
	ds, err := simdata.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Pattern = DistributedStatic
	cfg.InstanceType = "c3.2xlarge"
	if _, err := Predict(ds, cfg); err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Errorf("undersized plan accepted: %v", err)
	}
	// Sharded pre-processing restores PA feasibility, but the MPI
	// assembly jobs still exceed 16 GB — the plan stays infeasible.
	cfg.ParallelPreprocessShards = 4
	if _, err := Predict(ds, cfg); err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Errorf("assembly-infeasible plan accepted: %v", err)
	}
	// On r3.2xlarge everything fits.
	cfg.InstanceType = "r3.2xlarge"
	if _, err := Predict(ds, cfg); err != nil {
		t.Errorf("feasible plan rejected: %v", err)
	}
}

func TestOptimizeObjectives(t *testing.T) {
	ds := tinyDS(t)
	var candidates []Config
	for _, scheme := range []MatchingScheme{S1, S2} {
		for _, contrailNodes := range []int{2, 4, 8} {
			cfg := tinyConfig()
			cfg.EvaluateAgainstTruth = false
			cfg.Scheme = scheme
			cfg.ContrailNodes = contrailNodes
			candidates = append(candidates, cfg)
		}
	}
	fast, err := Optimize(ds, candidates, MinimizeTTC)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := Optimize(ds, candidates, MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TTC > cheap.TTC {
		t.Errorf("TTC-optimal plan (%v) slower than cost-optimal (%v)", fast.TTC, cheap.TTC)
	}
	if cheap.CostUSD > fast.CostUSD {
		t.Errorf("cost-optimal plan ($%.2f) pricier than TTC-optimal ($%.2f)", cheap.CostUSD, fast.CostUSD)
	}
	// The optimizer's choice must beat the worst candidate on its
	// objective.
	var worstTTC float64
	for _, cfg := range candidates {
		p, err := Predict(ds, cfg)
		if err != nil {
			continue
		}
		worstTTC = math.Max(worstTTC, p.TTC.Seconds())
	}
	if fast.TTC.Seconds() >= worstTTC {
		t.Error("optimizer returned the worst TTC candidate")
	}
}

func TestFrontierParetoInvariants(t *testing.T) {
	ds := tinyDS(t)
	var candidates []Config
	for _, scheme := range []MatchingScheme{S1, S2} {
		for _, cn := range []int{2, 4, 8, 16} {
			cfg := tinyConfig()
			cfg.EvaluateAgainstTruth = false
			cfg.Scheme = scheme
			cfg.ContrailNodes = cn
			candidates = append(candidates, cfg)
		}
	}
	frontier, err := Frontier(ds, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 || len(frontier) > len(candidates) {
		t.Fatalf("frontier size %d", len(frontier))
	}
	// Sorted by TTC ascending, and cost must be non-increasing along
	// the frontier (otherwise a point would be dominated).
	for i := 1; i < len(frontier); i++ {
		if frontier[i].TTC < frontier[i-1].TTC {
			t.Fatal("frontier not TTC-sorted")
		}
		if frontier[i].CostUSD > frontier[i-1].CostUSD {
			t.Errorf("frontier point %d dominated: TTC %v/$%.2f after TTC %v/$%.2f",
				i, frontier[i].TTC, frontier[i].CostUSD, frontier[i-1].TTC, frontier[i-1].CostUSD)
		}
	}
	// No frontier point is dominated by any candidate plan.
	for _, cfg := range candidates {
		p, err := Predict(ds, cfg)
		if err != nil {
			continue
		}
		for _, f := range frontier {
			if p.TTC < f.TTC && p.CostUSD < f.CostUSD {
				t.Errorf("frontier point (%v, $%.2f) dominated by (%v, $%.2f)",
					f.TTC, f.CostUSD, p.TTC, p.CostUSD)
			}
		}
	}
	// The optimizer endpoints coincide with the frontier's extremes.
	fast, _ := Optimize(ds, candidates, MinimizeTTC)
	cheap, _ := Optimize(ds, candidates, MinimizeCost)
	if fast.TTC != frontier[0].TTC {
		t.Errorf("fastest frontier point %v != optimizer %v", frontier[0].TTC, fast.TTC)
	}
	if cheap.CostUSD != frontier[len(frontier)-1].CostUSD {
		t.Errorf("cheapest frontier point $%.2f != optimizer $%.2f",
			frontier[len(frontier)-1].CostUSD, cheap.CostUSD)
	}
	if _, err := Frontier(ds, nil); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestOptimizeErrors(t *testing.T) {
	ds := tinyDS(t)
	if _, err := Optimize(ds, nil, MinimizeTTC); err == nil {
		t.Error("empty candidates accepted")
	}
	bad := tinyConfig()
	bad.Assemblers = []string{"nope"}
	if _, err := Optimize(ds, []Config{bad}, MinimizeTTC); err == nil {
		t.Error("all-infeasible candidates accepted")
	}
	if MinimizeTTC.String() != "TTC" || MinimizeCost.String() != "cost" {
		t.Error("objective strings")
	}
}
