package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/cloud"
	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/simdata"
	"rnascale/internal/sweep"
)

// stormSpot is a hot, volatile spot market: the walk starts near the
// on-demand price with the reclaim knee pulled down, so price-coupled
// reclaims fire throughout the run instead of almost never.
func stormSpot(seed uint64) *cloud.SpotOptions {
	return &cloud.SpotOptions{
		Seed:              seed,
		InitialFrac:       0.95,
		Volatility:        0.15,
		ReclaimKnee:       0.35,
		MaxReclaimPerStep: 0.5,
	}
}

var allSpot = StageBackends{PA: cloud.Spot, PB: cloud.Spot, PC: cloud.Spot}
var allFaas = StageBackends{PA: cloud.Serverless, PB: cloud.Serverless, PC: cloud.Serverless}

// backendScenario is one spot/serverless chaos cell: a worker-fault
// spec (possibly empty — market reclaims need no fault plan) plus a
// config mutator applied per seed. The same table drives the soak and
// the kill/resume test, so every scenario is exercised both ways.
type backendScenario struct {
	name string
	spec string
	// resumeSeed is a seed whose run completes with recovery activity —
	// the kill/resume test needs a completing crash-free twin.
	resumeSeed uint64
	configure  func(cfg *Config, seed uint64)
}

func backendScenarios() []backendScenario {
	return []backendScenario{
		{
			// Market-driven reclaim storm: every stage on spot under a
			// hot market; reclaims strike all through the run and the
			// spot-implied retry policy replaces the lost nodes.
			name:       "spot-reclaim-storm",
			resumeSeed: 4,
			configure: func(cfg *Config, seed uint64) {
				cfg.Backends = allSpot
				cfg.Cloud = &cloud.Options{Spot: stormSpot(seed)}
			},
		},
		{
			// Fault-plan reclaims with a shortened advance notice firing
			// mid-unit on spot capacity (the default market stays calm,
			// so the plan's reclaims are the ones that strike).
			name:       "spot-reclaim-notice",
			spec:       "reclaim:p=0.5,after=120,window=2400,notice=60",
			resumeSeed: 5,
			configure: func(cfg *Config, seed uint64) {
				cfg.Backends = allSpot
			},
		},
		{
			// Cold-start burst: every stage as function invocations, with
			// unit flakes forcing retries through the warm pool.
			name:       "serverless-cold-burst",
			spec:       "unitflake:p=0.5,n=2",
			resumeSeed: 4,
			configure: func(cfg *Config, seed uint64) {
				cfg.Backends = allFaas
			},
		},
	}
}

// TestChaosBackendSoak extends the chaos matrix to the spot and
// serverless backends: each scenario runs across seeds, twice per
// seed, and the same seed must replay byte-identically — market
// reclaims, reclaim notices and cold-start sequences included.
func TestChaosBackendSoak(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for _, sc := range backendScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			var plan *faults.Plan
			if sc.spec != "" {
				var err error
				plan, err = faults.ParseSpec(sc.spec)
				if err != nil {
					t.Fatalf("spec %q: %v", sc.spec, err)
				}
			}
			type seedResult struct {
				rep1, rep2   *Report
				pl1          *Pipeline
				snap1, snap2 string
				err1, err2   error
			}
			results, mapErr := sweep.Map(seeds, func(i int) (seedResult, error) {
				cfg := chaosConfig()
				cfg.FaultPlan = plan
				cfg.FaultSeed = uint64(i + 1)
				sc.configure(&cfg, uint64(i+1))
				var r seedResult
				r.rep1, r.pl1, r.snap1, r.err1 = runChaos(t, cfg)
				r.rep2, _, r.snap2, r.err2 = runChaos(t, cfg)
				return r, nil
			}, sweep.Options{Workers: runtime.GOMAXPROCS(0)})
			if mapErr != nil {
				t.Fatal(mapErr)
			}
			var completed, failed, vmsLost, cold int
			for i, r := range results {
				seed := uint64(i + 1)
				if (r.err1 == nil) != (r.err2 == nil) {
					t.Fatalf("seed %d: outcomes diverge: %v vs %v", seed, r.err1, r.err2)
				}
				if r.err1 != nil && r.err1.Error() != r.err2.Error() {
					t.Fatalf("seed %d: errors diverge:\n  %v\n  %v", seed, r.err1, r.err2)
				}
				if r.snap1 != r.snap2 {
					t.Fatalf("seed %d: snapshots differ (%d vs %d bytes)", seed, len(r.snap1), len(r.snap2))
				}
				if r.err1 == nil {
					completed++
					if len(r.rep1.Transcripts) == 0 {
						t.Errorf("seed %d: completed without transcripts", seed)
					}
					if r.rep2 != nil && r.rep1.Recovery.String() != r.rep2.Recovery.String() {
						t.Errorf("seed %d: recovery reports diverge: %s vs %s",
							seed, r.rep1.Recovery, r.rep2.Recovery)
					}
				} else {
					failed++
					if r.rep1 == nil {
						t.Fatalf("seed %d: failed run returned nil report: %v", seed, r.err1)
					}
				}
				if r.rep1 != nil && r.rep1.Snapshot != nil {
					if n := len(r.pl1.Provider().Running()); n != 0 {
						t.Errorf("seed %d: %d VMs still running after run (err=%v)", seed, n, r.err1)
					}
					vmsLost += r.rep1.Recovery.VMsLost
				}
				if faas := r.pl1.Provider().Serverless(); faas != nil {
					_, c, _ := faas.Invocations()
					cold += c
				}
			}
			// The scenario must actually bite somewhere in the matrix.
			switch sc.name {
			case "spot-reclaim-storm", "spot-reclaim-notice":
				if vmsLost == 0 {
					t.Errorf("no VM was reclaimed across %d seeds", seeds)
				}
			case "serverless-cold-burst":
				if cold == 0 {
					t.Errorf("no cold start across %d seeds", seeds)
				}
				if completed == 0 {
					t.Errorf("no serverless run completed across %d seeds", seeds)
				}
			}
			if completed == 0 && failed == 0 {
				t.Fatal("no cells ran")
			}
			t.Logf("%s: %d completed, %d failed cleanly, %d VMs lost, %d cold starts over %d seeds",
				sc.name, completed, failed, vmsLost, cold, seeds)
		})
	}
}

// TestChaosBackendKillResume is the journal acceptance for the backend
// scenarios: each cell runs once cleanly under a journal, is killed by
// a drivercrash calibrated to mid-PB, resumed from the surviving
// journal, and must converge on the crash-free twin's bytes — spot
// reclaim schedules and serverless cold/warm sequences included.
func TestChaosBackendKillResume(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, sc := range backendScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			// One fixed seed per scenario: deterministic, and chosen so
			// the twin completes (the soak above covers failing seeds).
			seed := sc.resumeSeed
			twin := chaosConfig()
			twin.FaultSeed = seed
			sc.configure(&twin, seed)
			if sc.spec != "" {
				plan, err := faults.ParseSpec(sc.spec)
				if err != nil {
					t.Fatal(err)
				}
				twin.FaultPlan = plan
			}
			twinPath := filepath.Join(dir, sc.name+"-twin.journal")
			clean, plClean, err := journalRun(t, ds, twin, twinPath)
			if err != nil {
				t.Fatalf("twin run: %v", err)
			}
			want := capture(t, clean, plClean)
			wantBody := journalBody(t, twinPath)
			// The chosen seed must actually exercise the scenario: spot
			// twins lose VMs to reclaims, the serverless twin retries
			// flaked function units.
			if strings.HasPrefix(sc.name, "spot") && clean.Recovery.VMsLost == 0 {
				t.Errorf("%s twin lost no VMs: %s", sc.name, clean.Recovery)
			}
			if sc.name == "serverless-cold-burst" && clean.Recovery.Retries == 0 {
				t.Errorf("%s twin retried nothing: %s", sc.name, clean.Recovery)
			}

			// Kill mid-PB, where reclaim/retry state is in flight.
			pbSpan := plClean.Obs().Tracer.Find(obs.KindStage, "PB")
			if pbSpan == nil {
				t.Fatal("no PB stage span in twin run")
			}
			crashAt := float64(pbSpan.Start.Add(pbSpan.Duration() / 2))
			spec := fmt.Sprintf("drivercrash:at=%g", crashAt)
			if sc.spec != "" {
				spec = sc.spec + ";" + spec
			}
			plan, err := faults.ParseSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg := twin
			cfg.FaultPlan = plan
			path := filepath.Join(dir, sc.name+"-crash.journal")
			_, _, err = journalRun(t, ds, cfg, path)
			var dce *DriverCrashError
			if !errors.As(err, &dce) {
				t.Fatalf("run with %q returned %v, want DriverCrashError", spec, err)
			}

			cfg.Obs = obs.New()
			rep, pl, err := ResumePipeline(ds, cfg, path)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			st := rep.Journal
			if st == nil || !st.Resumed || st.RecordsReplayed == 0 {
				t.Fatalf("resume replayed nothing: %+v", st)
			}

			got := capture(t, rep, pl)
			if got.trace != want.trace {
				t.Errorf("Chrome trace differs from twin (%d vs %d bytes)", len(got.trace), len(want.trace))
			}
			if got.metrics != want.metrics {
				t.Errorf("metrics differ from twin")
			}
			if got.summary != want.summary {
				t.Errorf("summary differs from twin")
			}
			if !rep.Snapshot.Resumed {
				t.Error("resumed snapshot lacks the resumed marker")
			}
			rep.Snapshot.Resumed = false
			var buf bytes.Buffer
			if err := rep.Snapshot.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.String() != want.snapshot {
				t.Errorf("snapshot differs from twin beyond the resumed marker")
			}
			if body := journalBody(t, path); body != wantBody {
				t.Errorf("final journal body differs from twin's")
			}
		})
	}
}
