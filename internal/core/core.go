// Package core implements the paper's primary contribution: the
// pilot-based, scalable RNA-seq pipeline for on-demand computing
// clouds. It re-architects the Rnnotator workflow (pre-processing →
// multiple-k-mer de novo transcript assembly → post-processing →
// quantification, Fig. 1) on top of the pilot framework
// (internal/pilot), a simulated EC2 (internal/cloud) and
// StarCluster+SGE clusters (internal/cluster, internal/sge).
//
// The package realizes the paper's design space:
//
//   - the two pilot↔VM matching schemes of Fig. 5 — S1 couples VM
//     lifetime to a pilot (free choice of instance type per stage,
//     but boot and data-transfer overheads), S2 reuses running VMs
//     across pilots (no transfer, but the stage inherits whatever
//     instance type the previous stage needed);
//   - the three workflow patterns of Fig. 2 — Conventional (one pilot
//     runs everything), DistributedStatic (per-stage pilots with
//     pre-defined sizes) and DistributedDynamic (stage sizing and
//     instance selection decided from information produced by the
//     previous stage, e.g. the k-mer plan known only after
//     pre-processing);
//   - the multi-assembler option (MAMP): any subset of the Table I
//     assemblers runs concurrently, their multi-k outputs merged into
//     one transcript set.
package core

import (
	"fmt"
	"strings"

	"rnascale/internal/cloud"
	"rnascale/internal/detonate"
	"rnascale/internal/diffexpr"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/merge"
	"rnascale/internal/obs"
	"rnascale/internal/pilot"
	"rnascale/internal/preprocess"
	"rnascale/internal/quant"
	"rnascale/internal/seq"
	"rnascale/internal/vclock"
)

// MatchingScheme selects how pilots map to VMs (paper Fig. 5).
type MatchingScheme int

const (
	// S1 couples a pilot with the lifetime of its VMs: every pilot
	// boots fresh instances and terminates them when it finishes.
	S1 MatchingScheme = iota
	// S2 decouples pilots from VM lifetime: a new pilot adopts the
	// previous pilot's running VMs.
	S2
)

// String implements fmt.Stringer.
func (s MatchingScheme) String() string {
	switch s {
	case S1:
		return "S1"
	case S2:
		return "S2"
	default:
		return fmt.Sprintf("MatchingScheme(%d)", int(s))
	}
}

// WorkflowPattern selects the pilot workflow pattern (paper Fig. 2).
type WorkflowPattern int

const (
	// Conventional runs every stage on a single pilot's resources.
	Conventional WorkflowPattern = iota
	// DistributedStatic uses per-stage pilots whose sizes and types
	// are fixed before the run starts.
	DistributedStatic
	// DistributedDynamic decides each stage's resources just before
	// the stage starts, using information from the previous stage
	// (instance type from the memory model, node count from the k-mer
	// plan).
	DistributedDynamic
)

// String implements fmt.Stringer.
func (p WorkflowPattern) String() string {
	switch p {
	case Conventional:
		return "conventional"
	case DistributedStatic:
		return "distributed-static"
	case DistributedDynamic:
		return "distributed-dynamic"
	default:
		return fmt.Sprintf("WorkflowPattern(%d)", int(p))
	}
}

// Config parameterizes a pipeline run.
type Config struct {
	// Scheme is the pilot↔VM matching scheme.
	Scheme MatchingScheme
	// Pattern is the workflow pattern.
	Pattern WorkflowPattern
	// Assemblers names the Table I tools to run (default:
	// ["ray"]). Multiple entries enable the MAMP option.
	Assemblers []string
	// InstanceType fixes the VM flavour for static patterns; the
	// dynamic pattern picks per stage (and ignores this unless the
	// scheme is S2, which inherits the pre-processing choice).
	InstanceType string
	// AssemblyNodesOverride fixes the PB cluster size (static
	// pattern); 0 lets the dynamic sizing rule decide.
	AssemblyNodesOverride int
	// NodesPerMPIJob is the node count per MPI assembly job (paper
	// default: 1, from the finding that MPI jobs gain little from
	// spanning nodes).
	NodesPerMPIJob int
	// ContrailNodes is the node count per Contrail job (paper
	// default: 16, "at least 16 nodes are needed to match TTCs of the
	// MPI assemblers").
	ContrailNodes int
	// Kmers overrides the multiple-k-mer plan (default: the dataset
	// profile's plan, known after pre-processing).
	Kmers []int
	// MinCoverage overrides each assembler's coverage cutoff (0 =
	// tool defaults).
	MinCoverage int
	// Preprocess are the read-cleaning options.
	Preprocess preprocess.Options
	// ConsensusMerge validates contigs by cross-assembler k-mer
	// support before merging (the ensemble direction the paper leaves
	// as future work). It only takes effect with ≥2 assemblers.
	ConsensusMerge bool
	// ParallelPreprocessShards splits pre-processing across this many
	// concurrent units on a PA cluster of the same size — the paper's
	// future-work "data and task-level parallelization" for the
	// pre-processing stage. 0 or 1 keeps the paper's single-VM PA.
	ParallelPreprocessShards int
	// Backends selects a purchasing backend per stage (on-demand, spot
	// or serverless). The zero value runs everything on-demand, exactly
	// as before the backend dimension existed. Serverless stages are
	// incompatible with the Conventional pattern (there is no single
	// cluster to share). When a stage uses spot and Cloud carries no
	// SpotOptions, a default market seeded from FaultSeed is created;
	// likewise for serverless and ServerlessOptions.
	Backends StageBackends
	// ConditionB, when non-nil, provides a second sample condition:
	// the PC stage additionally quantifies it against the assembled
	// transcripts and runs the differential-expression test (the
	// optional Rnnotator step "for cases when multiple sample
	// conditions are provided"). Results land in Report.DiffExpr.
	ConditionB *seq.ReadSet
	// EvaluateAgainstTruth computes DETONATE metrics against the
	// dataset's ground-truth transcriptome (not billed: evaluation is
	// offline analysis, not a pipeline stage).
	EvaluateAgainstTruth bool
	// Cloud overrides the provider options (zero value = defaults).
	Cloud *cloud.Options
	// Obs, when non-nil, receives the run's spans and metrics; nil
	// gets a private bundle, reachable afterwards via Pipeline.Obs or
	// Report.Snapshot.
	Obs *obs.Obs
	// FaultPlan, when non-nil, injects deterministic failures into the
	// run — VM crashes, spot reclamations, boot capacity errors,
	// transient unit failures, degraded transfers (see internal/faults
	// for the spec syntax). Identical plans and seeds replay
	// byte-identically.
	FaultPlan *faults.Plan
	// FaultSeed seeds the fault injector's splittable PRNG.
	FaultSeed uint64
	// Retry sets per-stage unit retry policies. Zero policies default
	// to pilot.DefaultRetryPolicy when a fault plan is present or any
	// stage buys spot capacity (so injected faults and market reclaims
	// are survivable by default) and to no retries otherwise.
	Retry StageRetryPolicies
	// Journal, when non-nil, receives a write-ahead record of the run:
	// one record per stage boundary and per unit completion, each
	// flushed before the run proceeds. Create with journal.Create (a
	// durable file) or journal.NewWriter (any sink). The journal of an
	// interrupted run can be continued with Resume.
	Journal *journal.Writer
	// Resume, when non-nil, replays the surviving journal prefix of an
	// interrupted run: completed stages and units are reconstructed
	// from their records instead of re-executing, and the run
	// continues from the interruption point. Usually set together with
	// Journal via Resume/ResumePipeline, which also verify the journal
	// belongs to this config.
	Resume *journal.Log
	// Deadline, when >0, is the run's virtual-time deadline, measured
	// from the run start. Once the virtual clock reaches it no new unit
	// attempt starts: remaining units cancel cleanly, the journal gets
	// a cancelled record, and Run returns a *CutoffError with
	// Report.Outcome = OutcomeDeadlineExceeded. 0 = no deadline.
	Deadline vclock.Duration
	// CancelAt, when >0, is an operator cancellation point in virtual
	// time — the same cutoff machinery as Deadline, surfacing as
	// Report.Outcome = OutcomeCancelled. When both are set the earlier
	// one wins. 0 = never.
	CancelAt vclock.Duration
	// RetryBudget, when >0, caps unit restarts across the whole run: a
	// shared virtual-time token bucket is consulted before every retry,
	// and an over-budget retry fails its stage instead of resubmitting
	// (bounding retry storms under correlated failure waves). 0 keeps
	// the pre-budget behaviour: retries limited only by per-unit
	// policies.
	RetryBudget int
	// RetryBudgetRefill is the virtual time per replenished budget
	// token (0 = the budget never refills).
	RetryBudgetRefill vclock.Duration
	// Breaker, when non-nil, enables the per-backend circuit breaker:
	// a wave of spot reclaims or serverless failures trips that backend
	// open and subsequent stages fall back to on-demand until a
	// half-open probe (after the virtual-time cooldown) succeeds. Nil
	// disables the breaker entirely.
	Breaker *cloud.BreakerOptions
}

// StageRetryPolicies carries one unit retry policy per pipeline
// stage.
type StageRetryPolicies struct {
	PA, PB, PC pilot.RetryPolicy
}

// StageBackends carries one execution backend per pipeline stage.
type StageBackends struct {
	PA, PB, PC cloud.Backend
}

// AnySpot reports whether any stage buys spot capacity.
func (b StageBackends) AnySpot() bool {
	return b.PA == cloud.Spot || b.PB == cloud.Spot || b.PC == cloud.Spot
}

// AnyServerless reports whether any stage runs as functions.
func (b StageBackends) AnyServerless() bool {
	return b.PA == cloud.Serverless || b.PB == cloud.Serverless || b.PC == cloud.Serverless
}

// For resolves a stage name (PA/PB/PC) to its backend.
func (b StageBackends) For(stage string) cloud.Backend {
	switch stage {
	case "PB":
		return b.PB
	case "PC":
		return b.PC
	default:
		return b.PA
	}
}

// String renders the per-stage assignment ("PA=spot,PB=serverless,PC=on-demand").
func (b StageBackends) String() string {
	return fmt.Sprintf("PA=%s,PB=%s,PC=%s", b.PA, b.PB, b.PC)
}

// ParseStageBackends parses a "PA=spot,PB=serverless,PC=od" list;
// omitted stages stay on-demand, and a bare backend name applies to
// every stage ("spot" ≡ "PA=spot,PB=spot,PC=spot").
func ParseStageBackends(s string) (StageBackends, error) {
	var b StageBackends
	s = strings.TrimSpace(s)
	if s == "" {
		return b, nil
	}
	if !strings.Contains(s, "=") {
		be, err := cloud.ParseBackend(s)
		if err != nil {
			return b, err
		}
		b.PA, b.PB, b.PC = be, be, be
		return b, nil
	}
	for _, part := range strings.Split(s, ",") {
		stage, val, ok := strings.Cut(part, "=")
		if !ok {
			return b, fmt.Errorf("core: backend assignment %q is not stage=backend", part)
		}
		be, err := cloud.ParseBackend(val)
		if err != nil {
			return b, err
		}
		switch strings.ToUpper(strings.TrimSpace(stage)) {
		case "PA":
			b.PA = be
		case "PB":
			b.PB = be
		case "PC":
			b.PC = be
		default:
			return b, fmt.Errorf("core: unknown stage %q in backend assignment", stage)
		}
	}
	return b, nil
}

// DefaultConfig reproduces the paper's sample-run setup: scheme S2,
// dynamic workflow, all three distributed assemblers, c3.2xlarge.
func DefaultConfig() Config {
	return Config{
		Scheme:         S2,
		Pattern:        DistributedDynamic,
		Assemblers:     []string{"ray", "abyss", "contrail"},
		InstanceType:   "c3.2xlarge",
		NodesPerMPIJob: 1,
		ContrailNodes:  16,
		Preprocess:     preprocess.DefaultOptions(),
	}
}

// withDefaults normalizes a config.
func (c Config) withDefaults() Config {
	if len(c.Assemblers) == 0 {
		c.Assemblers = []string{"ray"}
	}
	if c.InstanceType == "" {
		c.InstanceType = "c3.2xlarge"
	}
	if c.NodesPerMPIJob <= 0 {
		c.NodesPerMPIJob = 1
	}
	if c.ContrailNodes <= 0 {
		c.ContrailNodes = 16
	}
	if c.Preprocess == (preprocess.Options{}) {
		c.Preprocess = preprocess.DefaultOptions()
	}
	// Spot stages carry reclaim risk even without a fault plan, so they
	// get the same survivable-by-default retry treatment.
	if c.FaultPlan != nil || c.Backends.AnySpot() {
		def := pilot.DefaultRetryPolicy()
		if c.Retry.PA == (pilot.RetryPolicy{}) {
			c.Retry.PA = def
		}
		if c.Retry.PB == (pilot.RetryPolicy{}) {
			c.Retry.PB = def
		}
		if c.Retry.PC == (pilot.RetryPolicy{}) {
			c.Retry.PC = def
		}
	}
	return c
}

// Outcome classifies how a run ended, beyond error/no-error: overload
// protection distinguishes work that was *refused* or *cut off* from
// work that *failed*.
type Outcome string

const (
	// OutcomeComplete is a run that finished every stage.
	OutcomeComplete Outcome = "complete"
	// OutcomeDeadlineExceeded is a run cut off by Config.Deadline.
	OutcomeDeadlineExceeded Outcome = "deadline_exceeded"
	// OutcomeShed is work refused or dropped by admission control
	// before (or instead of) running — used by the gateway's brownout
	// and by preflight cost rejection; the pipeline itself never
	// produces it.
	OutcomeShed Outcome = "shed"
	// OutcomeCancelled is a run cut off by Config.CancelAt.
	OutcomeCancelled Outcome = "cancelled"
)

// CutoffError is returned by Run when the run crossed its virtual-time
// cutoff (deadline or cancellation point): remaining units were
// canceled cleanly and the truncated report is valid as far as it
// goes.
type CutoffError struct {
	// Outcome is OutcomeDeadlineExceeded or OutcomeCancelled.
	Outcome Outcome
	// At is the virtual time the cutoff was detected; Cutoff is the
	// configured cutoff it crossed.
	At, Cutoff vclock.Time
}

func (e *CutoffError) Error() string {
	return fmt.Sprintf("core: run %s: virtual time %v crossed cutoff %v", e.Outcome, e.At, e.Cutoff)
}

// StageReport is the accounting for one pipeline stage.
type StageReport struct {
	// Name is PA, PB or PC (plus synthetic stages like "transfer").
	Name string
	// Pilot is the pilot ID that executed the stage.
	Pilot string
	// Start and End bracket the stage in virtual time.
	Start, End vclock.Time
	// Note carries stage-specific detail.
	Note string
}

// Duration is the stage's virtual span.
func (s StageReport) Duration() vclock.Duration { return s.End.Sub(s.Start) }

// AssemblyReport is one assembler×k unit's outcome.
type AssemblyReport struct {
	Assembler string
	K         int
	Contigs   int
	N50       int
	TTC       vclock.Duration
	MemoryGB  float64
}

// Report is the full outcome of a pipeline run.
type Report struct {
	Config     Config
	Stages     []StageReport
	Assemblies []AssemblyReport
	// PreStats summarizes the pre-processing stage.
	PreStats preprocess.Stats
	// MergeStats summarizes post-processing contig merging.
	MergeStats merge.Stats
	// PerAssembler holds each assembler's merged multi-k contig set
	// (keyed by tool name); Transcripts is the final (possibly MAMP)
	// merged set.
	PerAssembler map[string][]seq.FastaRecord
	Transcripts  []seq.FastaRecord
	// Quant is the expression quantification over the final set.
	Quant *quant.Result
	// QuantB and DiffExpr are present when Config.ConditionB was
	// provided: the second condition's quantification and the
	// differential-expression table.
	QuantB   *quant.Result
	DiffExpr []diffexpr.Row
	// Metrics holds DETONATE scores when evaluation was requested.
	Metrics *detonate.Metrics
	// TTC is the end-to-end virtual time (including data upload).
	TTC vclock.Duration
	// CostUSD is the cloud bill.
	CostUSD float64
	// Bill is the per-type cost breakdown.
	Bill []cloud.BillLine
	// KmersUsed is the executed multiple-k-mer plan.
	KmersUsed []int
	// AssemblyNodes is the PB cluster size that was used.
	AssemblyNodes int
	// Events is the pilot framework's full state-change history
	// (render with Timeline).
	Events []pilot.Event
	// Snapshot folds the run's spans and metrics into per-stage
	// TTC/cost tables (see internal/obs).
	Snapshot *obs.RunSnapshot
	// Recovery summarizes fault injection and recovery (all zero when
	// no fault plan was configured).
	Recovery RecoveryReport
	// Journal summarizes the run's write-ahead journal activity (nil
	// when the run was not journaled).
	Journal *JournalStats
	// Outcome classifies the ending: OutcomeComplete on success,
	// OutcomeDeadlineExceeded/OutcomeCancelled when the run crossed its
	// cutoff, and empty for a plain stage failure.
	Outcome Outcome
}

// RecoveryReport aggregates what the fault plan did to a run and what
// the retry machinery absorbed.
type RecoveryReport struct {
	// FaultsInjected counts applied faults by class.
	FaultsInjected map[string]int
	// Retries is the number of unit attempt restarts.
	Retries int
	// UnitsRecovered counts units that completed after ≥1 retry.
	UnitsRecovered int
	// VMsLost counts VMs lost to applied interruptions; each lost VM's
	// replacement bills extra hours into CostUSD.
	VMsLost int
}

// Total sums injected faults across classes.
func (r RecoveryReport) Total() int {
	n := 0
	for _, v := range r.FaultsInjected {
		n += v
	}
	return n
}

// String renders a one-line summary.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("%d faults injected, %d retries, %d units recovered, %d VMs lost",
		r.Total(), r.Retries, r.UnitsRecovered, r.VMsLost)
}

// Timeline renders the run's pilot/unit event history as a text
// Gantt chart.
func (r *Report) Timeline(width int) string {
	return pilot.RenderTimeline(r.Events, width)
}

// Stage returns the named stage report, if present.
func (r *Report) Stage(name string) (StageReport, bool) {
	for _, s := range r.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageReport{}, false
}

// Summary renders the sample-run style narrative.
func (r *Report) Summary() string {
	out := fmt.Sprintf("scheme=%s pattern=%s assemblers=%v k=%v nodes=%d\n",
		r.Config.Scheme, r.Config.Pattern, r.Config.Assemblers, r.KmersUsed, r.AssemblyNodes)
	for _, s := range r.Stages {
		out += fmt.Sprintf("  %-10s %8v  (%s)\n", s.Name, s.Duration(), s.Note)
	}
	out += fmt.Sprintf("  TTC %v, cost $%.2f, %d transcripts\n", r.TTC, r.CostUSD, len(r.Transcripts))
	return out
}
