package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"rnascale/internal/diffexpr"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/merge"
	"rnascale/internal/obs"
	"rnascale/internal/pilot"
	"rnascale/internal/preprocess"
	"rnascale/internal/quant"
	"rnascale/internal/seq"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// DriverCrashError is returned by Run when an injected drivercrash
// fault kills the driver process. The run's teardown does NOT happen
// — VMs are left "running" and the report is unfinished — faithfully
// modelling a SIGKILL of the real driver. When the run was journaled,
// the surviving prefix on disk can be continued with Resume.
type DriverCrashError struct {
	// At is the drivercrash rule's virtual time; the crash strikes at
	// the first journal checkpoint at or after it.
	At vclock.Time
}

func (e *DriverCrashError) Error() string {
	return fmt.Sprintf("core: driver crashed at checkpoint >= t=%v (injected drivercrash); resume from the run journal", e.At)
}

// driverCrashPanic unwinds the pipeline out of an arbitrary
// checkpoint; Run recovers it into a DriverCrashError.
type driverCrashPanic struct{ at vclock.Time }

// journalDriftPanic aborts a resume whose replayed execution diverges
// from the journal (corrupted file, or a config that does not match
// the original run). Run recovers it into a plain error.
type journalDriftPanic struct{ msg string }

// JournalStats summarizes a run's write-ahead journal activity.
type JournalStats struct {
	// Resumed is true when the run was continued from a journal prefix.
	Resumed bool
	// RecordsAppended counts records written live by this process;
	// RecordsReplayed counts prefix records consumed during resume.
	// Their sum equals the uninterrupted run's record count.
	RecordsAppended int
	RecordsReplayed int
	// UnitsExecuted counts real work-function executions (one per
	// attempt); UnitsReplayed counts unit completions served from the
	// journal without re-executing any work.
	UnitsExecuted int
	UnitsReplayed int
	// TailRepaired is true when the resume found crash damage at the
	// journal's tail — a torn record or a missing final newline — and
	// repaired it before continuing; TailTruncatedBytes counts the
	// unverifiable bytes dropped (0 when only the newline was
	// restored). The truncated records' work simply re-executes.
	TailRepaired       bool
	TailTruncatedBytes int
}

// unitCodec serializes one unit's outputs into a journal payload and
// replays them back into run state without re-executing the work.
type unitCodec struct {
	encode func(res pilot.WorkResult) (json.RawMessage, error)
	replay func(rec journal.Record, env *pilot.ExecEnv) (pilot.WorkResult, error)
}

// Journal payload schemas, one per stage. These are JSON encodings of
// the stage outputs themselves (reads, contigs, stats tables), not of
// the FASTA/FASTQ renderings, so replay cannot drift through a text
// round-trip.
type paPayload struct {
	Shard  int              `json:"shard"`
	Reads  []seq.Read       `json:"reads"`
	Paired bool             `json:"paired"`
	Stats  preprocess.Stats `json:"stats"`
}

type pbPayload struct {
	Assembler           string            `json:"assembler"`
	K                   int               `json:"k"`
	Contigs             []seq.FastaRecord `json:"contigs"`
	TTCSeconds          float64           `json:"ttcSeconds"`
	PeakMemoryGBPerNode float64           `json:"peakMemoryGBPerNode"`
	Messages            int64             `json:"messages,omitempty"`
	BytesSent           int64             `json:"bytesSent,omitempty"`
	N50                 int               `json:"n50,omitempty"`
}

type pcPayload struct {
	PerAssembler map[string][]seq.FastaRecord `json:"perAssembler"`
	Transcripts  []seq.FastaRecord            `json:"transcripts"`
	MergeStats   merge.Stats                  `json:"mergeStats"`
	Quant        *quant.Result                `json:"quant"`
	QuantB       *quant.Result                `json:"quantB,omitempty"`
	DiffExpr     []diffexpr.Row               `json:"diffExpr,omitempty"`
}

// configDigest fingerprints everything a resumed run must share with
// the run that wrote the journal. It is stored in the header record
// and re-verified on resume, so resuming under a drifted config fails
// fast instead of producing a silently different run.
func configDigest(cfg Config, ds *simdata.Dataset) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%v|%s|%d|%d|%d|%v|%d|%t|%d|%+v|%t|%d",
		ds.Profile.Name, cfg.Scheme, cfg.Pattern, cfg.Assemblers,
		cfg.InstanceType, cfg.AssemblyNodesOverride, cfg.NodesPerMPIJob,
		cfg.ContrailNodes, cfg.Kmers, cfg.MinCoverage, cfg.ConsensusMerge,
		cfg.ParallelPreprocessShards, cfg.Preprocess,
		cfg.EvaluateAgainstTruth, cfg.FaultSeed)
	if cfg.FaultPlan != nil {
		io.WriteString(h, "|"+cfg.FaultPlan.String())
	}
	if cfg.Backends != (StageBackends{}) {
		// Folded in only when set, so digests of pre-backend configs
		// (and their journals) stay valid.
		io.WriteString(h, "|backends:"+cfg.Backends.String())
	}
	if cfg.Deadline > 0 || cfg.CancelAt > 0 || cfg.RetryBudget > 0 || cfg.Breaker != nil {
		// Folded in only when any overload knob is set, so digests of
		// pre-overload configs (and their journals) stay valid.
		fmt.Fprintf(h, "|overload:%v:%v:%d:%v", cfg.Deadline, cfg.CancelAt,
			cfg.RetryBudget, cfg.RetryBudgetRefill)
		if cfg.Breaker != nil {
			fmt.Fprintf(h, ":breaker=%d,%v", cfg.Breaker.Threshold, cfg.Breaker.Cooldown)
		}
	}
	if cfg.ConditionB != nil {
		fmt.Fprintf(h, "|condB:%d:%t:", len(cfg.ConditionB.Reads), cfg.ConditionB.Paired)
		for _, r := range cfg.ConditionB.Reads {
			io.WriteString(h, r.ID)
			h.Write(r.Seq)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runJournal drives the pipeline's write-ahead journal: in a live run
// it appends a record at every checkpoint (stage boundary or unit
// completion); in a resumed run it first consumes the surviving
// prefix — verifying the replayed execution reproduces each record's
// virtual time, accrued cost and artifact digest exactly — and then
// switches to appending, so the finished journal is the same record
// sequence an uninterrupted run would have written. It also arms the
// drivercrash fault class against the checkpoints. All methods are
// nil-receiver safe; a nil *runJournal is "not journaling".
type runJournal struct {
	pl       *Pipeline
	w        *journal.Writer
	injector *faults.Injector
	resumed  bool

	// Replay state, built from the resume prefix. Unit records are
	// keyed by stage+unit; stage and lifecycle records by kind+stage.
	pendingUnits     map[string][]journal.Record
	pendingStage     map[string]journal.Record
	pendingHeader    *journal.Record
	pendingComplete  *journal.Record
	pendingCancelled *journal.Record
	pendingCount     int

	codecs       map[string]unitCodec
	stageDigests map[string][]string
	// armed holds drivercrash times not yet covered by the journal,
	// ascending; the head fires at the first checkpoint at/after it.
	armed []vclock.Time

	stats JournalStats
}

func unitKey(stage, unit string) string { return stage + "\x00" + unit }

func newRunJournal(pl *Pipeline, cfg Config, inj *faults.Injector) *runJournal {
	jr := &runJournal{
		pl:           pl,
		w:            cfg.Journal,
		injector:     inj,
		resumed:      cfg.Resume != nil,
		pendingUnits: map[string][]journal.Record{},
		pendingStage: map[string]journal.Record{},
		codecs:       map[string]unitCodec{},
		stageDigests: map[string][]string{},
	}
	armed := inj.DriverCrashTimes()
	if cfg.Resume != nil {
		if r := cfg.Resume.Repair; r != nil {
			jr.stats.TailRepaired = true
			jr.stats.TailTruncatedBytes = r.TruncatedBytes
		}
		for i := range cfg.Resume.Records {
			rec := cfg.Resume.Records[i]
			switch rec.Kind {
			case journal.KindHeader:
				jr.pendingHeader = &rec
			case journal.KindComplete:
				jr.pendingComplete = &rec
			case journal.KindCancelled:
				jr.pendingCancelled = &rec
			case journal.KindUnit:
				k := unitKey(rec.Stage, rec.Unit)
				jr.pendingUnits[k] = append(jr.pendingUnits[k], rec)
			default:
				jr.pendingStage[rec.Kind+"\x00"+rec.Stage] = rec
			}
			jr.pendingCount++
		}
		// Any drivercrash the surviving journal already covers fired in
		// a previous life of this run: disarm it, or resume would crash
		// at the same checkpoint forever.
		last := cfg.Resume.LastVTime()
		kept := make([]vclock.Time, 0, len(armed))
		for _, at := range armed {
			if float64(at) > last {
				kept = append(kept, at)
			}
		}
		armed = kept
	}
	jr.armed = armed
	return jr
}

// recording reports whether journal records flow (as opposed to a
// journal that exists only to arm drivercrash checkpoints).
func (jr *runJournal) recording() bool {
	return jr != nil && (jr.w != nil || jr.resumed)
}

func (jr *runJournal) isResumed() bool { return jr != nil && jr.resumed }

func (jr *runJournal) drift(format string, args ...any) {
	panic(journalDriftPanic{msg: fmt.Sprintf(format, args...)})
}

// countRecord feeds the journal_records counter; replayed and
// appended records both count, so a resumed run's total matches its
// uninterrupted twin's.
func (jr *runJournal) countRecord() {
	jr.pl.o.Metrics.Counter(obs.MetricJournalRecords,
		"Run journal records, replayed from a surviving prefix or appended live.", nil).Inc()
}

func (jr *runJournal) consumed() {
	jr.pendingCount--
	jr.stats.RecordsReplayed++
	jr.countRecord()
}

func (jr *runJournal) append(rec journal.Record) {
	if jr.w != nil {
		if _, err := jr.w.Append(rec); err != nil {
			jr.drift("append failed: %v", err)
		}
	}
	jr.stats.RecordsAppended++
	jr.countRecord()
}

// maybeCrash fires the armed drivercrash rule once the checkpoint's
// virtual time reaches it. The triggering record is already durable,
// so the resume sees everything up to and including this checkpoint.
func (jr *runJournal) maybeCrash(vt float64) {
	if jr == nil || len(jr.armed) == 0 {
		return
	}
	at := jr.armed[0]
	if vt >= float64(at) {
		jr.armed = jr.armed[1:]
		jr.injector.CountInjected(faults.ClassDriverCrash)
		panic(driverCrashPanic{at: at})
	}
}

// verify checks a replayed record against the re-executed run state;
// any mismatch means the journal and the current run are not the same
// simulation.
func (jr *runJournal) verify(rec journal.Record, vt, cost float64, digest string) {
	if rec.VTime != vt || rec.CostUSD != cost {
		jr.drift("record %d (%s %s/%s) was written at t=%v cost=%v but replay reached it at t=%v cost=%v",
			rec.Seq, rec.Kind, rec.Stage, rec.Unit, rec.VTime, rec.CostUSD, vt, cost)
	}
	if digest != "" && rec.Digest != digest {
		jr.drift("record %d (%s %s/%s) artifact digest %s does not match replayed %s",
			rec.Seq, rec.Kind, rec.Stage, rec.Unit, rec.Digest, digest)
	}
}

// header checkpoints the run start. On resume it verifies the journal
// was written by the same configuration and dataset.
func (jr *runJournal) header(digest string, seed uint64, profile string) {
	if jr == nil {
		return
	}
	if jr.recording() {
		if h := jr.pendingHeader; h != nil {
			if h.Digest != digest || h.Seed != seed {
				jr.drift("journal belongs to config %s seed %d, resume attempted with config %s seed %d",
					h.Digest, h.Seed, digest, seed)
			}
			jr.pendingHeader = nil
			jr.consumed()
		} else if jr.resumed {
			jr.drift("resume journal has no header record")
		} else {
			jr.append(journal.Record{Kind: journal.KindHeader, Seed: seed, Digest: digest, Note: profile})
		}
	}
	jr.maybeCrash(float64(jr.pl.clock.Now()))
}

func (jr *runJournal) stageStart(name string) {
	if jr == nil {
		return
	}
	vt, cost := float64(jr.pl.clock.Now()), jr.pl.provider.TotalCost()
	if jr.recording() {
		key := journal.KindStageStart + "\x00" + name
		if rec, ok := jr.pendingStage[key]; ok {
			jr.verify(rec, vt, cost, "")
			delete(jr.pendingStage, key)
			jr.consumed()
		} else {
			jr.append(journal.Record{Kind: journal.KindStageStart, Stage: name, VTime: vt, CostUSD: cost})
		}
	}
	jr.maybeCrash(vt)
}

// stageEnd checkpoints a stage boundary with the digest of the
// stage's unit artifacts (in completion order).
func (jr *runJournal) stageEnd(name, note string) {
	if jr == nil {
		return
	}
	vt, cost := float64(jr.pl.clock.Now()), jr.pl.provider.TotalCost()
	var combined string
	if ds := jr.stageDigests[name]; len(ds) > 0 {
		var b []byte
		for _, d := range ds {
			b = append(b, d...)
			b = append(b, '\n')
		}
		combined = journal.Digest(b)
	}
	if jr.recording() {
		key := journal.KindStageEnd + "\x00" + name
		if rec, ok := jr.pendingStage[key]; ok {
			jr.verify(rec, vt, cost, combined)
			delete(jr.pendingStage, key)
			jr.consumed()
		} else {
			jr.append(journal.Record{Kind: journal.KindStageEnd, Stage: name, VTime: vt, CostUSD: cost,
				Digest: combined, Note: note})
		}
	}
	jr.maybeCrash(vt)
}

// cancelled checkpoints a run cut off at its deadline or cancellation
// point. On resume the replayed truncation must land at the same
// virtual time, cost and outcome — the journal of a cancelled run
// resumes to the same truncated report byte-for-byte.
func (jr *runJournal) cancelled(outcome string) {
	if jr == nil {
		return
	}
	vt, cost := float64(jr.pl.clock.Now()), jr.pl.provider.TotalCost()
	if jr.recording() {
		if rec := jr.pendingCancelled; rec != nil {
			jr.pendingCancelled = nil
			jr.verify(*rec, vt, cost, "")
			if rec.Note != outcome {
				jr.drift("cancelled record outcome %q does not match replayed %q", rec.Note, outcome)
			}
			jr.consumed()
		} else {
			jr.append(journal.Record{Kind: journal.KindCancelled, VTime: vt, CostUSD: cost, Note: outcome})
		}
	}
	jr.maybeCrash(vt)
}

// complete records the run's final outcome. It runs in Run's deferred
// epilogue, so invariant violations are returned rather than panicked.
func (jr *runJournal) complete(now vclock.Time, cost float64, runErr error) error {
	if !jr.recording() {
		return nil
	}
	note := "ok"
	if runErr != nil {
		note = runErr.Error()
	}
	vt := float64(now)
	if rec := jr.pendingComplete; rec != nil {
		jr.pendingComplete = nil
		if rec.VTime != vt || rec.CostUSD != cost || rec.Note != note {
			return fmt.Errorf("core: journal: complete record diverged (journal t=%v cost=%v %q, replay t=%v cost=%v %q)",
				rec.VTime, rec.CostUSD, rec.Note, vt, cost, note)
		}
		jr.consumed()
	} else {
		jr.append(journal.Record{Kind: journal.KindComplete, VTime: vt, CostUSD: cost, Note: note})
	}
	if jr.pendingCount > 0 {
		return fmt.Errorf("core: journal: %d prefix records were never replayed (journal does not match this run)", jr.pendingCount)
	}
	return nil
}

// unit registers a unit's payload codec and wraps its work function:
// when the journal holds the unit's completion record, the recorded
// outputs are replayed instead of executing the work. The wrapper may
// be invoked once per attempt (retries re-enter it); the record is
// only consumed at the Done checkpoint in unitDone.
func (jr *runJournal) unit(stage, name string, work pilot.WorkFunc, c unitCodec) pilot.WorkFunc {
	if jr == nil {
		return work
	}
	key := unitKey(stage, name)
	jr.codecs[key] = c
	return func(env *pilot.ExecEnv) (pilot.WorkResult, error) {
		if recs := jr.pendingUnits[key]; len(recs) > 0 {
			rec := recs[0]
			res, err := c.replay(rec, env)
			if err != nil {
				return res, fmt.Errorf("core: journal replay of %s/%s: %w", stage, name, err)
			}
			res.Duration = vclock.Duration(rec.DurationSeconds)
			res.PeakMemoryGB = rec.PeakMemoryGB
			return res, nil
		}
		jr.stats.UnitsExecuted++
		return work(env)
	}
}

// onUnitDone returns the UnitManager callback that checkpoints unit
// completions for one stage (nil when not journaling).
func (jr *runJournal) onUnitDone(stage string) func(u *pilot.Unit, at vclock.Time) {
	if jr == nil {
		return nil
	}
	return func(u *pilot.Unit, at vclock.Time) { jr.unitDone(stage, u, at) }
}

func (jr *runJournal) unitDone(stage string, u *pilot.Unit, at vclock.Time) {
	vt, cost := float64(at), jr.pl.provider.TotalCost()
	key := unitKey(stage, u.Desc.Name)
	if jr.recording() {
		if recs := jr.pendingUnits[key]; len(recs) > 0 {
			rec := recs[0]
			jr.pendingUnits[key] = recs[1:]
			jr.verify(rec, vt, cost, "")
			jr.stageDigests[stage] = append(jr.stageDigests[stage], rec.Digest)
			jr.stats.UnitsReplayed++
			jr.consumed()
		} else {
			c, ok := jr.codecs[key]
			if !ok {
				jr.drift("unit %s/%s completed without a registered codec", stage, u.Desc.Name)
			}
			payload, err := c.encode(u.Result)
			if err != nil {
				jr.drift("encoding %s/%s outputs: %v", stage, u.Desc.Name, err)
			}
			digest := journal.Digest(payload)
			jr.stageDigests[stage] = append(jr.stageDigests[stage], digest)
			jr.append(journal.Record{
				Kind: journal.KindUnit, Stage: stage, Unit: u.Desc.Name,
				VTime: vt, CostUSD: cost,
				DurationSeconds: float64(u.Result.Duration),
				PeakMemoryGB:    u.Result.PeakMemoryGB,
				Digest:          digest, Payload: payload,
			})
		}
	}
	jr.maybeCrash(vt)
}

// Resume continues an interrupted run from its write-ahead journal.
// cfg and ds must be identical to the original run's (verified via
// the header's config digest); the journal file is continued in
// place, so after a successful resume it holds the same record
// sequence an uninterrupted run would have written. The returned
// report, metrics and Chrome trace are byte-identical to that run's,
// except for the snapshot's Resumed marker.
func Resume(ds *simdata.Dataset, cfg Config, path string) (*Report, error) {
	rep, _, err := ResumePipeline(ds, cfg, path)
	return rep, err
}

// ResumePipeline is Resume exposing the pipeline for trace/metric
// inspection.
func ResumePipeline(ds *simdata.Dataset, cfg Config, path string) (*Report, *Pipeline, error) {
	lg, w, err := journal.Continue(path)
	if err != nil {
		return nil, nil, err
	}
	cfg.Resume = lg
	cfg.Journal = w
	pl := New(cfg)
	rep, err := pl.Run(ds)
	if cerr := w.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return rep, pl, err
}

// JournalStats reports the pipeline's journal activity (zero value
// when the run was not journaled).
func (pl *Pipeline) JournalStats() JournalStats {
	if pl.jr == nil {
		return JournalStats{}
	}
	s := pl.jr.stats
	s.Resumed = pl.jr.resumed
	return s
}
