package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/cloud"
	"rnascale/internal/obs"
	"rnascale/internal/pilot"
	"rnascale/internal/vclock"
)

// observedRun executes the tiny pipeline with an explicit obs bundle
// and returns both.
func observedRun(t *testing.T) (*Report, *obs.Obs) {
	t.Helper()
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Obs = obs.New()
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, cfg.Obs
}

func TestRunProducesSpanTree(t *testing.T) {
	rep, o := observedRun(t)

	roots := o.Tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("%d root spans, want 1 run root", len(roots))
	}
	run := roots[0]
	if run.Kind != obs.KindRun {
		t.Fatalf("root kind %q", run.Kind)
	}
	if vclock.Duration(run.EndTime()) != rep.TTC {
		t.Errorf("run span ends at %v, report TTC %v", run.EndTime(), rep.TTC)
	}
	// Every pipeline stage appears as a direct child, in order.
	want := []string{"transfer", "PA", "PB", "PC"}
	var stages []*obs.Span
	for _, c := range run.Children() {
		if c.Kind == obs.KindStage {
			stages = append(stages, c)
		}
	}
	if len(stages) != len(want) {
		t.Fatalf("%d stage spans, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, want[i])
		}
		if s.EndTime() < s.Start {
			t.Errorf("stage %s negative span", s.Name)
		}
	}

	// Each compute stage hosts its pilot span, and pilots host units.
	pilots, units := 0, 0
	for _, s := range stages[1:] {
		for _, p := range s.Children() {
			if p.Kind != obs.KindPilot {
				continue
			}
			pilots++
			if _, ok := p.Attr("final_state"); !ok {
				t.Errorf("pilot span %s missing final_state", p.Name)
			}
			for _, u := range p.Children() {
				if u.Kind != obs.KindUnit {
					continue
				}
				units++
				if fs, _ := u.Attr("final_state"); fs != string(pilot.UnitDone) {
					t.Errorf("unit %s final_state %q", u.Name, fs)
				}
				if len(u.Events()) == 0 {
					t.Errorf("unit span %s has no transition events", u.Name)
				}
			}
		}
	}
	if pilots < 3 {
		t.Errorf("%d pilot spans, want one per compute stage", pilots)
	}
	// 1 preprocess + assemblers×k + 1 postprocess.
	wantUnits := 1 + len(rep.Assemblies) + 1
	if units != wantUnits {
		t.Errorf("%d unit spans, want %d", units, wantUnits)
	}
}

func TestRunEmitsMetrics(t *testing.T) {
	rep, o := observedRun(t)

	sum := func(name string) float64 {
		var v float64
		for _, p := range o.Metrics.Points() {
			if p.Name == name {
				v += p.Value
			}
		}
		return v
	}

	if got := sum(cloud.MetricVMBoots); got <= 0 {
		t.Errorf("%s = %v", cloud.MetricVMBoots, got)
	}
	if got := sum(pilot.MetricTransitions); got <= 0 {
		t.Errorf("%s = %v", pilot.MetricTransitions, got)
	}
	if got := sum(MetricReadsProcessed); got != float64(rep.PreStats.OutputReads) {
		t.Errorf("%s = %v, report says %d", MetricReadsProcessed, got, rep.PreStats.OutputReads)
	}
	if got := sum(MetricRunCost); math.Abs(got-rep.CostUSD) > 1e-9 {
		t.Errorf("%s = %v, report cost %v", MetricRunCost, got, rep.CostUSD)
	}
	if got := sum(MetricRunTTC); got != rep.TTC.Seconds() {
		t.Errorf("%s = %v, report TTC %v", MetricRunTTC, got, rep.TTC.Seconds())
	}
	if got := sum(pilot.MetricSGEQueueWait + "_count"); got <= 0 {
		t.Errorf("queue-wait histogram empty")
	}
}

func TestSnapshotMatchesReport(t *testing.T) {
	rep, _ := observedRun(t)

	snap := rep.Snapshot
	if snap == nil {
		t.Fatal("report has no snapshot")
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("schema %q", snap.Schema)
	}
	if snap.TTCSeconds != rep.TTC.Seconds() {
		t.Errorf("snapshot TTC %v, report %v", snap.TTCSeconds, rep.TTC.Seconds())
	}
	if math.Abs(snap.CostUSD-rep.CostUSD) > 1e-9 {
		t.Errorf("snapshot cost %v, report %v", snap.CostUSD, rep.CostUSD)
	}
	if len(snap.Stages) != 4 {
		t.Fatalf("%d snapshot stages", len(snap.Stages))
	}
	var stageCost float64
	for _, s := range snap.Stages {
		stageCost += s.CostUSD
	}
	// Stage cost deltas cover the bill except the final-teardown
	// rounding charged after PC ends; each stage attr rounds to
	// 4 decimals, so allow that much slack.
	if stageCost > snap.CostUSD+5e-4*float64(len(snap.Stages)) {
		t.Errorf("stage costs %v exceed run cost %v", stageCost, snap.CostUSD)
	}
}

// TestObservabilityDeterministic is the acceptance check that two
// identical runs export byte-identical traces and metric dumps.
func TestObservabilityDeterministic(t *testing.T) {
	render := func() (trace, metrics, tree []byte) {
		_, o := observedRun(t)
		var a, b, c bytes.Buffer
		if err := o.Tracer.WriteChromeTrace(&a); err != nil {
			t.Fatal(err)
		}
		o.Metrics.WritePrometheus(&b)
		o.Tracer.WriteTree(&c)
		return a.Bytes(), b.Bytes(), c.Bytes()
	}
	t1, m1, tr1 := render()
	t2, m2, tr2 := render()
	if !bytes.Equal(t1, t2) {
		t.Error("chrome traces differ across identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metric dumps differ across identical runs")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("tree renderings differ across identical runs")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(t1, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}
