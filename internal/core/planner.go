package core

import (
	"fmt"
	"math"

	"rnascale/internal/assembler"
	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/preprocess"
	"rnascale/internal/quant"
	"rnascale/internal/sge"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// This file implements the planning layer the paper identifies as the
// prerequisite for a fully dynamically adaptive workflow: "factors and
// conditions affecting the performance of a workflow should be known,
// along with a means for a rough estimate on TTCs of sub tasks a
// priori". Predict turns a configuration into per-stage TTC and cost
// estimates using only the cost models (no assembly is run); Optimize
// searches candidate configurations for the best predicted objective.

// Plan is a predicted execution of a configuration.
type Plan struct {
	Config Config
	// Per-stage predicted durations.
	Transfer, PA, PB, PC vclock.Duration
	// TTC is the predicted end-to-end virtual time.
	TTC vclock.Duration
	// CostUSD is the predicted cloud bill.
	CostUSD float64
	// AssemblyNodes is the PB cluster size the plan assumes.
	AssemblyNodes int
	// InstanceType is the flavour the plan assumes (the dynamic
	// pattern's choice, or the configured one).
	InstanceType string
}

// String renders the plan compactly.
func (p Plan) String() string {
	s := fmt.Sprintf("%v/%v on %d×%s: transfer %v, PA %v, PB %v, PC %v → TTC %v, $%.2f",
		p.Config.Scheme, p.Config.Pattern, p.AssemblyNodes, p.InstanceType,
		p.Transfer, p.PA, p.PB, p.PC, p.TTC, p.CostUSD)
	if p.Config.Backends != (StageBackends{}) {
		s += " [" + p.Config.Backends.String() + "]"
	}
	return s
}

// Objective selects what Optimize minimizes.
type Objective int

const (
	// MinimizeTTC optimizes for time-to-completion ("decreasing
	// time-to-completion (TTC) or cost" — the paper's twin goals).
	MinimizeTTC Objective = iota
	// MinimizeCost optimizes for the cloud bill.
	MinimizeCost
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == MinimizeCost {
		return "cost"
	}
	return "TTC"
}

// Predict estimates the stage durations and bill of running cfg on
// the dataset, using the same cost models the simulation uses but no
// computation. Accuracy against Run is validated in tests (the MPI
// estimates land within a few percent; Contrail within tens of
// percent).
func Predict(ds *simdata.Dataset, cfg Config) (Plan, error) {
	cfg = cfg.withDefaults()
	if cfg.Backends != (StageBackends{}) {
		// The per-stage backend dimension needs the general timeline
		// model; the default all-on-demand path keeps the original
		// closed-form estimate (validated against Run to a few percent).
		return predictBackends(ds, cfg)
	}
	fs := ds.Profile.FullScale
	copts := cloud.DefaultOptions()
	if cfg.Cloud != nil {
		copts = *cfg.Cloud
	}
	clopts := cluster.DefaultOptions()
	plan := Plan{Config: cfg}

	// Instance type (mirrors Run's dynamic choice for PA; S2 keeps it
	// for every stage).
	preModel := preprocess.DefaultCostModel()
	itName := cfg.InstanceType
	if cfg.Pattern == DistributedDynamic {
		it, err := ChooseInstanceType(cloud.NewProvider(vclock.NewClock(0), copts), preModel.MemoryGB(fs), 8)
		if err != nil {
			return plan, err
		}
		itName = it.Name
	}
	it, err := cloud.NewProvider(vclock.NewClock(0), copts).LookupType(itName)
	if err != nil {
		return plan, err
	}
	plan.InstanceType = it.Name
	cores := it.Cores

	// Memory feasibility (the prediction-time Table IV check).
	shards := cfg.ParallelPreprocessShards
	if shards < 1 {
		shards = 1
	}
	fsShard := fs
	fsShard.SeqDataBytes /= int64(shards)
	if preModel.MemoryGB(fsShard) > it.MemoryGB {
		return plan, fmt.Errorf("core: plan infeasible: pre-processing needs %.1f GB, %s offers %.1f GB",
			preModel.MemoryGB(fsShard), it.Name, it.MemoryGB)
	}

	// Stage 0: upload.
	plan.Transfer = copts.Ingress.Transfer(fs.SeqDataBytes)

	// PA: boot + configure + (sharded) cleaning.
	boot := copts.BootLatency + clopts.ConfigPerNode
	plan.PA = preModel.Duration(fsShard, min(cores, 8))

	// PB: predict each assembly job and list-schedule them on the PB
	// cluster exactly as SGE will.
	kmers := cfg.Kmers
	if len(kmers) == 0 {
		kmers = fs.AssemblyKmers
	}
	if len(kmers) == 0 {
		kmers = preprocess.KmerPlan(float64(ds.Profile.ReadLen), ds.Profile.ReadLen)
	}
	nodes := cfg.AssemblyNodesOverride
	if nodes <= 0 {
		nodes = AssemblyNodesFor(kmers, cfg.Assemblers, cfg.NodesPerMPIJob, cfg.ContrailNodes)
	}
	plan.AssemblyNodes = nodes
	asmFS := fs
	asmFS.SeqDataBytes = fs.PostPreprocessBytes

	specs := make([]sge.NodeSpec, nodes)
	for i := range specs {
		specs[i] = sge.NodeSpec{Name: fmt.Sprintf("n%03d", i), Slots: cores, MemoryGB: it.MemoryGB}
	}
	sched, err := sge.New(specs)
	if err != nil {
		return plan, err
	}
	for _, name := range cfg.Assemblers {
		a, err := assembler.Get(name)
		if err != nil {
			return plan, err
		}
		est, ok := a.(assembler.TTCEstimator)
		if !ok {
			return plan, fmt.Errorf("core: %s offers no TTC estimation", name)
		}
		jobNodes := cfg.NodesPerMPIJob
		rule := sge.SingleNode
		if name == "contrail" {
			jobNodes = cfg.ContrailNodes
		} else if !a.Info().MultiNode() {
			jobNodes = 1
		}
		if jobNodes > 1 {
			rule = sge.FillUp
		}
		for _, k := range kmers {
			d, err := est.EstimateTTC(assembler.Request{
				Params: assembler.Params{K: k, MinCoverage: cfg.MinCoverage},
				Nodes:  jobNodes, CoresPerNode: cores,
				FullScale: asmFS,
			})
			if err != nil {
				return plan, fmt.Errorf("core: estimating %s k=%d: %w", name, k, err)
			}
			// Memory feasibility per job.
			if mem := assembler.GraphMemoryGB(asmFS, jobNodes); mem > it.MemoryGB {
				return plan, fmt.Errorf("core: plan infeasible: %s needs %.1f GB/node on %d node(s), %s offers %.1f GB",
					name, mem, jobNodes, it.Name, it.MemoryGB)
			}
			if name == "contrail" {
				d += 60 * vclock.Second // SFA conversion
			}
			if _, err := sched.Submit(sge.JobSpec{
				Name: fmt.Sprintf("%s-k%d", name, k), Slots: jobNodes * cores,
				Rule: rule, Duration: d,
			}, 0); err != nil {
				return plan, err
			}
		}
	}
	plan.PB = vclock.Duration(sched.Makespan())

	// PC: merging + quantification (twice with a second condition).
	postModel := quant.DefaultCostModel()
	plan.PC = postModel.Duration(fs, min(cores, 8))
	if cfg.ConditionB != nil {
		plan.PC *= 2
	}

	// Assemble the timeline and the bill, scheme-dependent.
	growBoot := boot // booting the PB workers
	var interTransfer vclock.Duration
	if cfg.Scheme == S1 && cfg.Pattern != Conventional {
		interTransfer = copts.InterNode.Transfer(fs.PostPreprocessBytes)
	}
	plan.TTC = plan.Transfer + boot + plan.PA + growBoot + interTransfer + plan.PB + plan.PC

	// Bill: one node across the whole run plus (nodes-1) across the PB
	// window (plus its boot). This matches both schemes to first
	// order; S1's extra boots shift a few minutes between lines.
	price := it.PricePerHour
	fullWindow := plan.TTC - plan.Transfer
	pbWindow := vclock.Duration(growBoot) + plan.PB
	plan.CostUSD = price*fullWindow.Hours()*float64(max(1, shards)) +
		price*pbWindow.Hours()*float64(nodes-1)
	// Avoid double-counting the PA shards beyond the head node during
	// the non-PA window: refine to head (full) + extra shards (PA
	// window) + workers (PB window).
	if shards > 1 {
		plan.CostUSD = price*fullWindow.Hours() +
			price*(vclock.Duration(boot)+plan.PA).Hours()*float64(shards-1) +
			price*pbWindow.Hours()*float64(nodes-1)
	}
	return plan, nil
}

// predictBackends is the general timeline model behind Predict for
// configurations with a non-default per-stage backend assignment. It
// walks the workflow stage by stage in absolute virtual time (spot
// prices are time-dependent), pricing VM stages per window on their
// market and serverless stages per invocation, and inflates spot plans
// by the market's expected reclaim count (each reclaim costs one
// replacement boot). The estimate is RNG-free and deterministic: the
// spot walk it integrates over is the same memoized price walk the run
// will see.
func predictBackends(ds *simdata.Dataset, cfg Config) (Plan, error) {
	fs := ds.Profile.FullScale
	copts := cloud.DefaultOptions()
	if cfg.Cloud != nil {
		copts = *cfg.Cloud
	}
	clopts := cluster.DefaultOptions()
	b := cfg.Backends
	plan := Plan{Config: cfg}
	if cfg.Pattern == Conventional && b.AnyServerless() {
		return plan, fmt.Errorf("core: the conventional pattern shares one cluster across stages and cannot host serverless stages (%s)", b)
	}

	// Markets, defaulted exactly as New does.
	var market *cloud.SpotMarket
	if b.AnySpot() {
		sopts := cloud.SpotOptions{Seed: cfg.FaultSeed}
		if copts.Spot != nil {
			sopts = *copts.Spot
		}
		market = cloud.NewSpotMarket(sopts)
	}
	so := cloud.DefaultServerlessOptions()
	if copts.Serverless != nil {
		so = copts.Serverless.WithDefaults()
	}

	// Instance type (mirrors Run's dynamic choice for PA).
	preModel := preprocess.DefaultCostModel()
	itName := cfg.InstanceType
	if cfg.Pattern == DistributedDynamic && b.PA != cloud.Serverless {
		it, err := ChooseInstanceType(cloud.NewProvider(vclock.NewClock(0), copts), preModel.MemoryGB(fs), 8)
		if err != nil {
			return plan, err
		}
		itName = it.Name
	}
	it, err := cloud.NewProvider(vclock.NewClock(0), copts).LookupType(itName)
	if err != nil {
		return plan, err
	}
	plan.InstanceType = it.Name
	cores := it.Cores
	price := it.PricePerHour
	boot := copts.BootLatency + clopts.ConfigPerNode

	shards := cfg.ParallelPreprocessShards
	if shards < 1 {
		shards = 1
	}
	fsShard := fs
	fsShard.SeqDataBytes /= int64(shards)

	var (
		t        vclock.Time
		cost     float64
		reclaims float64 // expected spot reclaims across all stages
	)
	// vmWindow prices n nodes across [from, to) on a backend, and
	// accumulates the reclaim expectation for spot windows.
	vmWindow := func(be cloud.Backend, n int, from, to vclock.Time) float64 {
		hours := to.Sub(from).Hours()
		if be == cloud.Spot {
			az := market.CheapestAZ(from)
			reclaims += float64(n) * market.ExpectedReclaims(az, from, to)
			return price * market.AvgFrac(az, from, to) * hours * float64(n)
		}
		return price * hours * float64(n)
	}
	// fnStage prices one class of serverless units: each of n parallel
	// units runs `dur` of compute at `memGB`, split at the duration cap
	// into parallel pieces. Returns the stage wall time (every first
	// burst is cold).
	fnStage := func(stage string, n int, dur vclock.Duration, memGB float64) (vclock.Duration, error) {
		tier, ok := so.TierFor(memGB)
		if !ok {
			return 0, fmt.Errorf("core: plan infeasible: %s needs %.1f GB, largest function tier is %.0f GB",
				stage, memGB, so.MaxTierGB())
		}
		pieces := splitPieces(dur, so.MaxDuration)
		piece := dur / vclock.Duration(pieces)
		cost += float64(n*pieces) * so.InvocationUSD(tier, piece)
		return so.ColdStart + piece, nil
	}

	// Stage 0: upload.
	plan.Transfer = copts.Ingress.Transfer(fs.SeqDataBytes)
	t = t.Add(plan.Transfer)

	// K-mer plan and PB sizing, needed up front for Conventional.
	kmers := cfg.Kmers
	if len(kmers) == 0 {
		kmers = fs.AssemblyKmers
	}
	if len(kmers) == 0 {
		kmers = preprocess.KmerPlan(float64(ds.Profile.ReadLen), ds.Profile.ReadLen)
	}
	nodes := cfg.AssemblyNodesOverride
	if nodes <= 0 {
		nodes = AssemblyNodesFor(kmers, cfg.Assemblers, cfg.NodesPerMPIJob, cfg.ContrailNodes)
	}
	asmFS := fs
	asmFS.SeqDataBytes = fs.PostPreprocessBytes

	// PA.
	paMem := preModel.MemoryGB(fsShard)
	if b.PA == cloud.Serverless {
		wall, err := fnStage("pre-processing", shards, preModel.Duration(fsShard, 1), paMem)
		if err != nil {
			return plan, err
		}
		plan.PA = wall
		t = t.Add(wall)
	} else {
		if paMem > it.MemoryGB {
			return plan, fmt.Errorf("core: plan infeasible: pre-processing needs %.1f GB, %s offers %.1f GB",
				paMem, it.Name, it.MemoryGB)
		}
		paNodes := shards
		if cfg.Pattern == Conventional && nodes > paNodes {
			paNodes = nodes // one cluster sized for the whole workflow
		}
		start := t
		t = t.Add(boot)
		plan.PA = preModel.Duration(fsShard, min(cores, 8))
		t = t.Add(plan.PA)
		if cfg.Pattern != Conventional {
			cost += vmWindow(b.PA, paNodes, start, t)
		} else {
			_ = paNodes // Conventional bills the whole run in one window below.
		}
	}

	// PB: per-job estimates, then either an SGE schedule on the cluster
	// or an all-parallel function burst.
	type jobEst struct {
		name     string
		jobNodes int
		rule     sge.AllocationRule
		d        vclock.Duration
		memGB    float64
	}
	var jobs []jobEst
	for _, name := range cfg.Assemblers {
		a, err := assembler.Get(name)
		if err != nil {
			return plan, err
		}
		est, ok := a.(assembler.TTCEstimator)
		if !ok {
			return plan, fmt.Errorf("core: %s offers no TTC estimation", name)
		}
		jobNodes := cfg.NodesPerMPIJob
		rule := sge.SingleNode
		if name == "contrail" {
			jobNodes = cfg.ContrailNodes
		} else if !a.Info().MultiNode() {
			jobNodes = 1
		}
		if jobNodes > 1 {
			rule = sge.FillUp
		}
		jobCores := cores
		if b.PB == cloud.Serverless {
			jobNodes, jobCores, rule = 1, 1, sge.SingleNode
		}
		for _, k := range kmers {
			d, err := est.EstimateTTC(assembler.Request{
				Params: assembler.Params{K: k, MinCoverage: cfg.MinCoverage},
				Nodes:  jobNodes, CoresPerNode: jobCores,
				FullScale: asmFS,
			})
			if err != nil {
				return plan, fmt.Errorf("core: estimating %s k=%d: %w", name, k, err)
			}
			if name == "contrail" {
				d += 60 * vclock.Second // SFA conversion
			}
			jobs = append(jobs, jobEst{name: name, jobNodes: jobNodes, rule: rule, d: d,
				memGB: assembler.GraphMemoryGB(asmFS, jobNodes)})
		}
	}
	if b.PB == cloud.Serverless {
		nodes = 0
		plan.AssemblyNodes = 0
		var wall vclock.Duration
		for _, j := range jobs {
			w, err := fnStage(j.name+" assembly", 1, j.d, j.memGB)
			if err != nil {
				return plan, err
			}
			if w > wall {
				wall = w
			}
		}
		// The PB inputs migrate to the object store first.
		d := copts.InterNode.Transfer(fs.PostPreprocessBytes)
		plan.PB = wall
		t = t.Add(d).Add(wall)
	} else {
		plan.AssemblyNodes = nodes
		specs := make([]sge.NodeSpec, nodes)
		for i := range specs {
			specs[i] = sge.NodeSpec{Name: fmt.Sprintf("n%03d", i), Slots: cores, MemoryGB: it.MemoryGB}
		}
		sched, err := sge.New(specs)
		if err != nil {
			return plan, err
		}
		for _, j := range jobs {
			if j.memGB > it.MemoryGB {
				return plan, fmt.Errorf("core: plan infeasible: %s needs %.1f GB/node on %d node(s), %s offers %.1f GB",
					j.name, j.memGB, j.jobNodes, it.Name, it.MemoryGB)
			}
			if _, err := sched.Submit(sge.JobSpec{
				Name: j.name, Slots: j.jobNodes * cores, Rule: j.rule, Duration: j.d,
			}, 0); err != nil {
				return plan, err
			}
		}
		plan.PB = vclock.Duration(sched.Makespan())
		start := t
		if cfg.Pattern != Conventional {
			t = t.Add(boot) // boot/grow the PB workers
			if cfg.Scheme == S1 || b.PA == cloud.Serverless {
				t = t.Add(copts.InterNode.Transfer(fs.PostPreprocessBytes))
			}
		}
		t = t.Add(plan.PB)
		if cfg.Pattern != Conventional {
			cost += vmWindow(b.PB, nodes, start, t)
		}
	}

	// PC.
	postModel := quant.DefaultCostModel()
	pcMem := postModel.MemoryGB(fs)
	pcRuns := 1
	if cfg.ConditionB != nil {
		pcRuns = 2
	}
	if b.PC == cloud.Serverless {
		wall, err := fnStage("post-processing", 1, postModel.Duration(fs, 1)*vclock.Duration(pcRuns), pcMem)
		if err != nil {
			return plan, err
		}
		plan.PC = wall
		t = t.Add(wall)
	} else {
		if pcMem > it.MemoryGB {
			return plan, fmt.Errorf("core: plan infeasible: post-processing needs %.1f GB, %s offers %.1f GB",
				pcMem, it.Name, it.MemoryGB)
		}
		start := t
		if b.PB == cloud.Serverless && cfg.Pattern != Conventional {
			t = t.Add(boot) // nothing to adopt after a serverless PB
		}
		plan.PC = postModel.Duration(fs, min(cores, 8)) * vclock.Duration(pcRuns)
		t = t.Add(plan.PC)
		if cfg.Pattern != Conventional {
			cost += vmWindow(b.PC, 1, start, t)
		}
	}

	if cfg.Pattern == Conventional {
		// One cluster, sized for the whole workflow, from first boot to
		// the end of PC, on PA's backend (the only pilot there is).
		n := shards
		if nodes > n {
			n = nodes
		}
		cost += vmWindow(b.PA, n, vclock.Time(0).Add(plan.Transfer), t)
	}

	plan.TTC = vclock.Duration(t)
	if reclaims > 0 {
		// Each expected reclaim boots one replacement node and re-runs
		// the work it interrupted (roughly half a boot window of rework).
		over := vclock.Duration(reclaims * float64(boot))
		plan.TTC += over
		cost += price * over.Hours()
	}
	plan.CostUSD = cost
	return plan, nil
}

// splitPieces reports how many parallel invocations a unit of duration
// d needs under a per-invocation cap.
func splitPieces(d, cap vclock.Duration) int {
	if cap <= 0 || d <= cap {
		return 1
	}
	return int(math.Ceil(float64(d) / float64(cap)))
}

// ExpandBackends crosses base with every per-stage backend assignment
// drawn from the given set (all three backends when nil), skipping
// combinations the runtime rejects (serverless stages under the
// Conventional pattern). The base's own Backends field is overwritten.
func ExpandBackends(base Config, backends []cloud.Backend) []Config {
	if len(backends) == 0 {
		backends = []cloud.Backend{cloud.OnDemand, cloud.Spot, cloud.Serverless}
	}
	var out []Config
	for _, pa := range backends {
		for _, pb := range backends {
			for _, pc := range backends {
				bk := StageBackends{PA: pa, PB: pb, PC: pc}
				if base.Pattern == Conventional && bk.AnyServerless() {
					continue
				}
				c := base
				c.Backends = bk
				out = append(out, c)
			}
		}
	}
	return out
}

// Optimize predicts every candidate configuration and returns the
// feasible plan minimizing the objective. Infeasible candidates
// (memory, unknown tools) are skipped; an error is returned only when
// no candidate is feasible.
func Optimize(ds *simdata.Dataset, candidates []Config, obj Objective) (Plan, error) {
	if len(candidates) == 0 {
		return Plan{}, fmt.Errorf("core: no candidate configurations")
	}
	var best Plan
	bestScore := math.Inf(1)
	found := false
	var lastErr error
	for _, cfg := range candidates {
		plan, err := Predict(ds, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		score := plan.TTC.Seconds()
		if obj == MinimizeCost {
			score = plan.CostUSD
		}
		if score < bestScore {
			best, bestScore, found = plan, score, true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("core: no feasible candidate (last error: %v)", lastErr)
	}
	return best, nil
}

// Frontier predicts every candidate and returns the Pareto-optimal
// plans under (TTC, cost) — the "decreasing time-to-completion (TTC)
// or cost" trade-off the paper frames as the pipeline's twin goals.
// The result is sorted by ascending TTC; infeasible candidates are
// skipped.
func Frontier(ds *simdata.Dataset, candidates []Config) ([]Plan, error) {
	var plans []Plan
	for _, cfg := range candidates {
		p, err := Predict(ds, cfg)
		if err != nil {
			continue
		}
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: no feasible candidate among %d", len(candidates))
	}
	// A plan is dominated if another is at least as good on both axes
	// and strictly better on one.
	var frontier []Plan
	for i, p := range plans {
		dominated := false
		for j, q := range plans {
			if i == j {
				continue
			}
			if q.TTC <= p.TTC && q.CostUSD <= p.CostUSD &&
				(q.TTC < p.TTC || q.CostUSD < p.CostUSD) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sortPlansByTTC(frontier)
	return frontier, nil
}

// sortPlansByTTC orders plans fastest-first (ties by cost).
func sortPlansByTTC(plans []Plan) {
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0; j-- {
			a, b := plans[j-1], plans[j]
			if b.TTC < a.TTC || (b.TTC == a.TTC && b.CostUSD < a.CostUSD) {
				plans[j-1], plans[j] = b, a
				continue
			}
			break
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
