package core

import (
	"fmt"
	"math"

	"rnascale/internal/assembler"
	"rnascale/internal/cloud"
	"rnascale/internal/cluster"
	"rnascale/internal/preprocess"
	"rnascale/internal/quant"
	"rnascale/internal/sge"
	"rnascale/internal/simdata"
	"rnascale/internal/vclock"
)

// This file implements the planning layer the paper identifies as the
// prerequisite for a fully dynamically adaptive workflow: "factors and
// conditions affecting the performance of a workflow should be known,
// along with a means for a rough estimate on TTCs of sub tasks a
// priori". Predict turns a configuration into per-stage TTC and cost
// estimates using only the cost models (no assembly is run); Optimize
// searches candidate configurations for the best predicted objective.

// Plan is a predicted execution of a configuration.
type Plan struct {
	Config Config
	// Per-stage predicted durations.
	Transfer, PA, PB, PC vclock.Duration
	// TTC is the predicted end-to-end virtual time.
	TTC vclock.Duration
	// CostUSD is the predicted cloud bill.
	CostUSD float64
	// AssemblyNodes is the PB cluster size the plan assumes.
	AssemblyNodes int
	// InstanceType is the flavour the plan assumes (the dynamic
	// pattern's choice, or the configured one).
	InstanceType string
}

// String renders the plan compactly.
func (p Plan) String() string {
	return fmt.Sprintf("%v/%v on %d×%s: transfer %v, PA %v, PB %v, PC %v → TTC %v, $%.2f",
		p.Config.Scheme, p.Config.Pattern, p.AssemblyNodes, p.InstanceType,
		p.Transfer, p.PA, p.PB, p.PC, p.TTC, p.CostUSD)
}

// Objective selects what Optimize minimizes.
type Objective int

const (
	// MinimizeTTC optimizes for time-to-completion ("decreasing
	// time-to-completion (TTC) or cost" — the paper's twin goals).
	MinimizeTTC Objective = iota
	// MinimizeCost optimizes for the cloud bill.
	MinimizeCost
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == MinimizeCost {
		return "cost"
	}
	return "TTC"
}

// Predict estimates the stage durations and bill of running cfg on
// the dataset, using the same cost models the simulation uses but no
// computation. Accuracy against Run is validated in tests (the MPI
// estimates land within a few percent; Contrail within tens of
// percent).
func Predict(ds *simdata.Dataset, cfg Config) (Plan, error) {
	cfg = cfg.withDefaults()
	fs := ds.Profile.FullScale
	copts := cloud.DefaultOptions()
	if cfg.Cloud != nil {
		copts = *cfg.Cloud
	}
	clopts := cluster.DefaultOptions()
	plan := Plan{Config: cfg}

	// Instance type (mirrors Run's dynamic choice for PA; S2 keeps it
	// for every stage).
	preModel := preprocess.DefaultCostModel()
	itName := cfg.InstanceType
	if cfg.Pattern == DistributedDynamic {
		it, err := ChooseInstanceType(cloud.NewProvider(vclock.NewClock(0), copts), preModel.MemoryGB(fs), 8)
		if err != nil {
			return plan, err
		}
		itName = it.Name
	}
	it, err := cloud.NewProvider(vclock.NewClock(0), copts).LookupType(itName)
	if err != nil {
		return plan, err
	}
	plan.InstanceType = it.Name
	cores := it.Cores

	// Memory feasibility (the prediction-time Table IV check).
	shards := cfg.ParallelPreprocessShards
	if shards < 1 {
		shards = 1
	}
	fsShard := fs
	fsShard.SeqDataBytes /= int64(shards)
	if preModel.MemoryGB(fsShard) > it.MemoryGB {
		return plan, fmt.Errorf("core: plan infeasible: pre-processing needs %.1f GB, %s offers %.1f GB",
			preModel.MemoryGB(fsShard), it.Name, it.MemoryGB)
	}

	// Stage 0: upload.
	plan.Transfer = copts.Ingress.Transfer(fs.SeqDataBytes)

	// PA: boot + configure + (sharded) cleaning.
	boot := copts.BootLatency + clopts.ConfigPerNode
	plan.PA = preModel.Duration(fsShard, min(cores, 8))

	// PB: predict each assembly job and list-schedule them on the PB
	// cluster exactly as SGE will.
	kmers := cfg.Kmers
	if len(kmers) == 0 {
		kmers = fs.AssemblyKmers
	}
	if len(kmers) == 0 {
		kmers = preprocess.KmerPlan(float64(ds.Profile.ReadLen), ds.Profile.ReadLen)
	}
	nodes := cfg.AssemblyNodesOverride
	if nodes <= 0 {
		nodes = AssemblyNodesFor(kmers, cfg.Assemblers, cfg.NodesPerMPIJob, cfg.ContrailNodes)
	}
	plan.AssemblyNodes = nodes
	asmFS := fs
	asmFS.SeqDataBytes = fs.PostPreprocessBytes

	specs := make([]sge.NodeSpec, nodes)
	for i := range specs {
		specs[i] = sge.NodeSpec{Name: fmt.Sprintf("n%03d", i), Slots: cores, MemoryGB: it.MemoryGB}
	}
	sched, err := sge.New(specs)
	if err != nil {
		return plan, err
	}
	for _, name := range cfg.Assemblers {
		a, err := assembler.Get(name)
		if err != nil {
			return plan, err
		}
		est, ok := a.(assembler.TTCEstimator)
		if !ok {
			return plan, fmt.Errorf("core: %s offers no TTC estimation", name)
		}
		jobNodes := cfg.NodesPerMPIJob
		rule := sge.SingleNode
		if name == "contrail" {
			jobNodes = cfg.ContrailNodes
		} else if !a.Info().MultiNode() {
			jobNodes = 1
		}
		if jobNodes > 1 {
			rule = sge.FillUp
		}
		for _, k := range kmers {
			d, err := est.EstimateTTC(assembler.Request{
				Params: assembler.Params{K: k, MinCoverage: cfg.MinCoverage},
				Nodes:  jobNodes, CoresPerNode: cores,
				FullScale: asmFS,
			})
			if err != nil {
				return plan, fmt.Errorf("core: estimating %s k=%d: %w", name, k, err)
			}
			// Memory feasibility per job.
			if mem := assembler.GraphMemoryGB(asmFS, jobNodes); mem > it.MemoryGB {
				return plan, fmt.Errorf("core: plan infeasible: %s needs %.1f GB/node on %d node(s), %s offers %.1f GB",
					name, mem, jobNodes, it.Name, it.MemoryGB)
			}
			if name == "contrail" {
				d += 60 * vclock.Second // SFA conversion
			}
			if _, err := sched.Submit(sge.JobSpec{
				Name: fmt.Sprintf("%s-k%d", name, k), Slots: jobNodes * cores,
				Rule: rule, Duration: d,
			}, 0); err != nil {
				return plan, err
			}
		}
	}
	plan.PB = vclock.Duration(sched.Makespan())

	// PC: merging + quantification (twice with a second condition).
	postModel := quant.DefaultCostModel()
	plan.PC = postModel.Duration(fs, min(cores, 8))
	if cfg.ConditionB != nil {
		plan.PC *= 2
	}

	// Assemble the timeline and the bill, scheme-dependent.
	growBoot := boot // booting the PB workers
	var interTransfer vclock.Duration
	if cfg.Scheme == S1 && cfg.Pattern != Conventional {
		interTransfer = copts.InterNode.Transfer(fs.PostPreprocessBytes)
	}
	plan.TTC = plan.Transfer + boot + plan.PA + growBoot + interTransfer + plan.PB + plan.PC

	// Bill: one node across the whole run plus (nodes-1) across the PB
	// window (plus its boot). This matches both schemes to first
	// order; S1's extra boots shift a few minutes between lines.
	price := it.PricePerHour
	fullWindow := plan.TTC - plan.Transfer
	pbWindow := vclock.Duration(growBoot) + plan.PB
	plan.CostUSD = price*fullWindow.Hours()*float64(max(1, shards)) +
		price*pbWindow.Hours()*float64(nodes-1)
	// Avoid double-counting the PA shards beyond the head node during
	// the non-PA window: refine to head (full) + extra shards (PA
	// window) + workers (PB window).
	if shards > 1 {
		plan.CostUSD = price*fullWindow.Hours() +
			price*(vclock.Duration(boot)+plan.PA).Hours()*float64(shards-1) +
			price*pbWindow.Hours()*float64(nodes-1)
	}
	return plan, nil
}

// Optimize predicts every candidate configuration and returns the
// feasible plan minimizing the objective. Infeasible candidates
// (memory, unknown tools) are skipped; an error is returned only when
// no candidate is feasible.
func Optimize(ds *simdata.Dataset, candidates []Config, obj Objective) (Plan, error) {
	if len(candidates) == 0 {
		return Plan{}, fmt.Errorf("core: no candidate configurations")
	}
	var best Plan
	bestScore := math.Inf(1)
	found := false
	var lastErr error
	for _, cfg := range candidates {
		plan, err := Predict(ds, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		score := plan.TTC.Seconds()
		if obj == MinimizeCost {
			score = plan.CostUSD
		}
		if score < bestScore {
			best, bestScore, found = plan, score, true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("core: no feasible candidate (last error: %v)", lastErr)
	}
	return best, nil
}

// Frontier predicts every candidate and returns the Pareto-optimal
// plans under (TTC, cost) — the "decreasing time-to-completion (TTC)
// or cost" trade-off the paper frames as the pipeline's twin goals.
// The result is sorted by ascending TTC; infeasible candidates are
// skipped.
func Frontier(ds *simdata.Dataset, candidates []Config) ([]Plan, error) {
	var plans []Plan
	for _, cfg := range candidates {
		p, err := Predict(ds, cfg)
		if err != nil {
			continue
		}
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: no feasible candidate among %d", len(candidates))
	}
	// A plan is dominated if another is at least as good on both axes
	// and strictly better on one.
	var frontier []Plan
	for i, p := range plans {
		dominated := false
		for j, q := range plans {
			if i == j {
				continue
			}
			if q.TTC <= p.TTC && q.CostUSD <= p.CostUSD &&
				(q.TTC < p.TTC || q.CostUSD < p.CostUSD) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sortPlansByTTC(frontier)
	return frontier, nil
}

// sortPlansByTTC orders plans fastest-first (ties by cost).
func sortPlansByTTC(plans []Plan) {
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0; j-- {
			a, b := plans[j-1], plans[j]
			if b.TTC < a.TTC || (b.TTC == a.TTC && b.CostUSD < a.CostUSD) {
				plans[j-1], plans[j] = b, a
				continue
			}
			break
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
