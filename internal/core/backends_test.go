package core

import (
	"encoding/json"
	"strings"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/cloud"
)

func TestParseStageBackends(t *testing.T) {
	cases := []struct {
		in      string
		want    StageBackends
		wantErr bool
	}{
		{in: "", want: StageBackends{}},
		{in: "spot", want: StageBackends{PA: cloud.Spot, PB: cloud.Spot, PC: cloud.Spot}},
		{in: "PA=spot,PB=serverless", want: StageBackends{PA: cloud.Spot, PB: cloud.Serverless}},
		{in: "pb=faas, pc=od", want: StageBackends{PB: cloud.Serverless, PC: cloud.OnDemand}},
		{in: "PA=warp-drive", wantErr: true},
		{in: "PD=spot", wantErr: true},
		{in: "spot,serverless", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseStageBackends(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseStageBackends(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStageBackends(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStageBackends(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunAllServerless(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Backends = StageBackends{PA: cloud.Serverless, PB: cloud.Serverless, PC: cloud.Serverless}
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"PA", "PB", "PC"} {
		s, ok := rep.Stage(stage)
		if !ok {
			t.Fatalf("missing stage %s", stage)
		}
		if !strings.HasPrefix(s.Pilot, "faas(") {
			t.Errorf("%s ran on %q, want a function runner", stage, s.Pilot)
		}
	}
	if rep.AssemblyNodes != 0 {
		t.Errorf("serverless PB reports %d assembly nodes, want 0", rep.AssemblyNodes)
	}
	if len(rep.Transcripts) == 0 {
		t.Fatal("no transcripts")
	}
	// The bill is function invocations only — no VM lines beyond the
	// per-tier fn-* entries.
	var fnLines, vmLines int
	for _, l := range rep.Bill {
		if strings.HasPrefix(l.Type, "fn-") {
			fnLines++
		} else {
			vmLines++
		}
	}
	if fnLines == 0 || vmLines != 0 {
		t.Errorf("bill has %d fn lines and %d VM lines, want only fn: %+v", fnLines, vmLines, rep.Bill)
	}
	if rep.CostUSD <= 0 {
		t.Errorf("cost %v", rep.CostUSD)
	}
}

func TestRunMixedBackendBoundaries(t *testing.T) {
	// VM PA under S2 (retained VMs) → serverless PB (retained VMs must
	// terminate: nothing adopts them) → VM PC (fresh boot on spot).
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Scheme = S2
	cfg.Backends = StageBackends{PB: cloud.Serverless, PC: cloud.Spot}
	rep, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := rep.Stage("PB")
	if !strings.HasPrefix(pb.Pilot, "faas(") {
		t.Errorf("PB ran on %q", pb.Pilot)
	}
	if !strings.Contains(pb.Note, "object store") {
		t.Errorf("PB note lacks the object-store transfer: %q", pb.Note)
	}
	pc, _ := rep.Stage("PC")
	if !strings.HasPrefix(pc.Pilot, "pilot.") {
		t.Errorf("PC ran on %q, want a VM pilot", pc.Pilot)
	}
	var sawSpot bool
	for _, l := range rep.Bill {
		if l.Backend == "spot" {
			sawSpot = true
		}
	}
	if !sawSpot {
		t.Errorf("no spot bill line after a spot PC: %+v", rep.Bill)
	}
	if len(rep.Transcripts) == 0 {
		t.Fatal("no transcripts")
	}
}

func TestRunSpotCheaperThanOnDemand(t *testing.T) {
	ds := tinyDS(t)
	base := tinyConfig()
	repOD, err := Run(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Backends = StageBackends{PA: cloud.Spot, PB: cloud.Spot, PC: cloud.Spot}
	repSpot, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The default market walks well below the on-demand price and this
	// seed triggers no reclaims, so the spot run is a straight discount.
	if repSpot.CostUSD >= repOD.CostUSD {
		t.Errorf("spot $%.2f not cheaper than on-demand $%.2f", repSpot.CostUSD, repOD.CostUSD)
	}
	if len(repSpot.Transcripts) != len(repOD.Transcripts) {
		t.Errorf("spot run changed the biology: %d vs %d transcripts",
			len(repSpot.Transcripts), len(repOD.Transcripts))
	}
}

func TestRunConventionalServerlessRejected(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Pattern = Conventional
	cfg.Backends = StageBackends{PB: cloud.Serverless}
	if _, err := Run(ds, cfg); err == nil || !strings.Contains(err.Error(), "conventional") {
		t.Fatalf("conventional+serverless accepted (err=%v)", err)
	}
}

func TestRunBackendsDeterministic(t *testing.T) {
	ds := tinyDS(t)
	cfg := tinyConfig()
	cfg.Scheme = S2
	cfg.Backends = StageBackends{PA: cloud.Spot, PB: cloud.Serverless, PC: cloud.Spot}
	cfg.FaultSeed = 7
	snap := func() string {
		rep, err := Run(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := snap(), snap(); a != b {
		t.Error("same-seed backend runs diverged")
	}
}
