package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	_ "rnascale/internal/assembler/all"
	"rnascale/internal/faults"
	"rnascale/internal/journal"
	"rnascale/internal/obs"
	"rnascale/internal/simdata"
	"rnascale/internal/sweep"
)

// runArtifacts are the byte-comparable outputs of one run: everything
// the resume contract promises is identical between an interrupted-
// and-resumed run and its uninterrupted twin.
type runArtifacts struct {
	trace    string
	metrics  string
	snapshot string
	summary  string
	timeline string
}

// journalBatch reads the group-commit batch size from JOURNAL_BATCH,
// so `make journal-determinism` can run the kill/resume matrix across
// batch sizes (1 degenerates to fsync-per-append). Empty or invalid
// means the writer's default.
func journalBatch() journal.Options {
	if s := os.Getenv("JOURNAL_BATCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return journal.Options{BatchSize: n}
		}
	}
	return journal.Options{}
}

// journalRun executes one journaled pipeline run with a fresh
// observability stack and returns the report, pipeline and error.
func journalRun(t *testing.T, ds *simdata.Dataset, cfg Config, path string) (*Report, *Pipeline, error) {
	t.Helper()
	w, err := journal.CreateOptions(path, journalBatch())
	if err != nil {
		t.Fatalf("create journal: %v", err)
	}
	cfg.Obs = obs.New()
	cfg.Journal = w
	pl := New(cfg)
	rep, rerr := pl.Run(ds)
	if cerr := w.Close(); cerr != nil && rerr == nil {
		rerr = cerr
	}
	return rep, pl, rerr
}

// capture folds a finished run into its comparable artifact bytes.
func capture(t *testing.T, rep *Report, pl *Pipeline) runArtifacts {
	t.Helper()
	var a runArtifacts
	var buf bytes.Buffer
	if err := pl.Obs().Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	a.trace = buf.String()
	buf.Reset()
	if err := pl.Obs().Metrics.WritePrometheus(&buf); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	a.metrics = buf.String()
	buf.Reset()
	if rep.Snapshot == nil {
		t.Fatal("report has no snapshot")
	}
	if err := rep.Snapshot.WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	a.snapshot = buf.String()
	a.summary = rep.Summary()
	a.timeline = rep.Timeline(72)
	return a
}

// chainRE matches a record's hash-chain field for stripping in
// journal-body comparisons.
var chainRE = regexp.MustCompile(`,"chain":"[0-9a-f]{64}"`)

// journalBody returns a journal file's record lines after the header,
// with the chain digests stripped. The header is excluded because its
// config digest covers the fault plan string, which legitimately
// differs between a run armed with a drivercrash rule and its
// crash-free twin — and since every record's chain digest folds in
// the previous one, that single header delta cascades into every
// chain value, so the chains are stripped before comparison too.
func journalBody(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := strings.SplitN(string(b), "\n", 2)
	if len(lines) != 2 {
		t.Fatalf("journal %s has no records after the header", path)
	}
	return chainRE.ReplaceAllString(lines[1], "")
}

// TestKillAndResumeByteIdentical is the acceptance scenario: run once
// cleanly under a journal, then kill the driver at three injected
// virtual-time points (mid-PA, mid-PB, mid-PC), resume each from its
// surviving journal, and require the resumed run's report, metrics,
// Chrome trace, summary and timeline to be byte-identical to the
// uninterrupted twin's — with zero journaled units re-executed.
func TestKillAndResumeByteIdentical(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base := chaosConfig()

	clean, plClean, err := journalRun(t, ds, base, filepath.Join(dir, "clean.journal"))
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want := capture(t, clean, plClean)
	if clean.Snapshot.Resumed {
		t.Fatal("uninterrupted run marked resumed")
	}
	if clean.Journal == nil || clean.Journal.Resumed || clean.Journal.RecordsReplayed != 0 {
		t.Fatalf("uninterrupted run journal stats: %+v", clean.Journal)
	}
	totalRecords := clean.Journal.RecordsAppended
	totalUnits := clean.Journal.UnitsExecuted
	wantBody := journalBody(t, filepath.Join(dir, "clean.journal"))

	// Pick one kill point inside each stage off the clean span tree.
	var kills []struct {
		stage string
		at    float64
	}
	for _, stage := range []string{"PA", "PB", "PC"} {
		sp := plClean.Obs().Tracer.Find(obs.KindStage, stage)
		if sp == nil {
			t.Fatalf("no %s stage span in clean run", stage)
		}
		kills = append(kills, struct {
			stage string
			at    float64
		}{stage, float64(sp.Start.Add(sp.Duration() / 2))})
	}

	for _, kill := range kills {
		kill := kill
		t.Run("kill-"+kill.stage, func(t *testing.T) {
			path := filepath.Join(dir, "kill-"+kill.stage+".journal")
			cfg := base
			plan, err := faults.ParseSpec(fmt.Sprintf("drivercrash:at=%g", kill.at))
			if err != nil {
				t.Fatal(err)
			}
			cfg.FaultPlan = plan
			cfg.FaultSeed = 7

			_, _, err = journalRun(t, ds, cfg, path)
			var dce *DriverCrashError
			if !errors.As(err, &dce) {
				t.Fatalf("run with drivercrash at t=%g returned %v, want DriverCrashError", kill.at, err)
			}
			if float64(dce.At) != kill.at {
				t.Fatalf("crash fired at t=%v, armed for t=%g", dce.At, kill.at)
			}

			lg, err := journal.Open(path)
			if err != nil {
				t.Fatalf("open crashed journal: %v", err)
			}
			if lg.Complete() {
				t.Fatal("crashed journal claims completion")
			}
			survived := len(lg.Records)
			survivedUnits := lg.Units()
			if survived == 0 || survived >= totalRecords {
				t.Fatalf("crashed journal holds %d records, clean run wrote %d", survived, totalRecords)
			}

			cfg.Obs = obs.New()
			rep, pl, err := ResumePipeline(ds, cfg, path)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}

			// Zero re-execution: every journaled unit was replayed, only
			// the remainder ran for real, and the journal-records counter
			// (replayed + appended) matches the uninterrupted twin.
			st := rep.Journal
			if st == nil || !st.Resumed {
				t.Fatalf("resumed run journal stats: %+v", st)
			}
			if st.UnitsReplayed != survivedUnits {
				t.Errorf("replayed %d units, journal held %d", st.UnitsReplayed, survivedUnits)
			}
			if st.UnitsExecuted != totalUnits-survivedUnits {
				t.Errorf("re-executed %d units, want %d", st.UnitsExecuted, totalUnits-survivedUnits)
			}
			if st.RecordsReplayed != survived {
				t.Errorf("replayed %d records, journal held %d", st.RecordsReplayed, survived)
			}
			if st.RecordsReplayed+st.RecordsAppended != totalRecords {
				t.Errorf("replayed %d + appended %d records, clean run wrote %d",
					st.RecordsReplayed, st.RecordsAppended, totalRecords)
			}

			got := capture(t, rep, pl)
			if got.trace != want.trace {
				t.Errorf("Chrome trace differs from uninterrupted run (%d vs %d bytes)", len(got.trace), len(want.trace))
			}
			if got.metrics != want.metrics {
				t.Errorf("metrics differ from uninterrupted run:\n--- resumed\n%s\n--- clean\n%s", got.metrics, want.metrics)
			}
			if got.summary != want.summary {
				t.Errorf("summary differs from uninterrupted run")
			}
			if got.timeline != want.timeline {
				t.Errorf("timeline differs from uninterrupted run")
			}

			// The snapshot's Resumed marker is the one sanctioned delta;
			// with it cleared the snapshots must match byte-for-byte.
			if !rep.Snapshot.Resumed {
				t.Error("resumed run's snapshot lacks the resumed marker")
			}
			rep.Snapshot.Resumed = false
			var buf bytes.Buffer
			if err := rep.Snapshot.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.String() != want.snapshot {
				t.Errorf("snapshot differs from uninterrupted run beyond the resumed marker:\n--- resumed\n%s\n--- clean\n%s",
					buf.String(), want.snapshot)
			}

			// The continued journal ends up holding the same record
			// sequence the uninterrupted run wrote (header aside — its
			// digest covers the drivercrash rule).
			if body := journalBody(t, path); body != wantBody {
				t.Errorf("final journal body differs from uninterrupted run's")
			}
			final, err := journal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if !final.Complete() {
				t.Error("resumed journal lacks the complete record")
			}
		})
	}
}

// TestResumeAfterTornTail is the bugfix acceptance: a crashed run
// whose journal tail is damaged the way real crashes damage it — half
// a record torn off, or the final record's newline lost — must still
// resume to a byte-identical report. The newline-less shape used to
// corrupt the file outright: the old reader accepted the tail as
// valid, and the O_APPEND writer fused the next record onto the same
// line.
func TestResumeAfterTornTail(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base := chaosConfig()

	clean, plClean, err := journalRun(t, ds, base, filepath.Join(dir, "clean.journal"))
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want := capture(t, clean, plClean)
	wantBody := journalBody(t, filepath.Join(dir, "clean.journal"))

	sp := plClean.Obs().Tracer.Find(obs.KindStage, "PB")
	if sp == nil {
		t.Fatal("no PB stage span in clean run")
	}
	crashAt := float64(sp.Start.Add(sp.Duration() / 2))

	damage := []struct {
		name      string
		maim      func(t *testing.T, path string)
		truncated bool // expect truncated bytes (vs newline repair)
		recrash   bool // repair re-arms the drivercrash: needs a second resume
	}{
		// The group-commit crash shape: the batch write got its complete
		// lines down plus the start of one more record.
		{"torn-json-tail", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte(`{"seq":999,"kind":"unit","vti`)); err != nil {
				t.Fatal(err)
			}
		}, true, false},
		// The fsync raced the crash: the final record's newline never
		// reached disk. This is the shape that used to fuse records.
		{"newline-less-tail", func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-1); err != nil {
				t.Fatal(err)
			}
		}, false, false},
		// Half the final record itself is gone. Repair drops it, which
		// rewinds the journal behind the armed drivercrash time, so the
		// crash faithfully fires once more at the re-reached checkpoint
		// before a second resume completes.
		{"torn-last-record", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			lastNL := bytes.LastIndexByte(b[:len(b)-1], '\n')
			keep := lastNL + 1 + (len(b)-lastNL-1)/2
			if err := os.Truncate(path, int64(keep)); err != nil {
				t.Fatal(err)
			}
		}, true, true},
	}
	for _, d := range damage {
		d := d
		t.Run(d.name, func(t *testing.T) {
			path := filepath.Join(dir, d.name+".journal")
			cfg := base
			plan, err := faults.ParseSpec(fmt.Sprintf("drivercrash:at=%g", crashAt))
			if err != nil {
				t.Fatal(err)
			}
			cfg.FaultPlan = plan
			cfg.FaultSeed = 7
			_, _, err = journalRun(t, ds, cfg, path)
			var dce *DriverCrashError
			if !errors.As(err, &dce) {
				t.Fatalf("crash run returned %v, want DriverCrashError", err)
			}
			survived := len(mustInspect(t, path).Records)

			d.maim(t, path)

			cfg.Obs = obs.New()
			rep, pl, err := ResumePipeline(ds, cfg, path)
			if d.recrash {
				if !errors.As(err, &dce) {
					t.Fatalf("resume over %s returned %v, want the re-armed drivercrash", d.name, err)
				}
				cfg.Obs = obs.New()
				rep, pl, err = ResumePipeline(ds, cfg, path)
			}
			if err != nil {
				t.Fatalf("resume over %s: %v", d.name, err)
			}
			st := rep.Journal
			if st == nil || !st.Resumed {
				t.Fatalf("resumed stats: %+v", st)
			}
			if !d.recrash {
				// Single-resume shapes surface the repair in the stats
				// (the re-crash shapes report it on their first, crashed
				// attempt instead).
				if !st.TailRepaired {
					t.Fatalf("resumed stats do not report the tail repair: %+v", st)
				}
				if d.truncated {
					if st.TailTruncatedBytes == 0 {
						t.Errorf("torn tail reported 0 truncated bytes")
					}
					if st.RecordsReplayed != survived {
						t.Errorf("replayed %d records, want %d", st.RecordsReplayed, survived)
					}
				} else if st.TailTruncatedBytes != 0 {
					t.Errorf("newline repair truncated %d bytes", st.TailTruncatedBytes)
				}
			}

			got := capture(t, rep, pl)
			if got.trace != want.trace || got.summary != want.summary || got.timeline != want.timeline {
				t.Error("resumed artifacts differ from uninterrupted run's")
			}
			if got.metrics != want.metrics {
				t.Errorf("metrics differ:\n--- resumed\n%s\n--- clean\n%s", got.metrics, want.metrics)
			}
			if body := journalBody(t, path); body != wantBody {
				t.Error("final journal body differs from uninterrupted run's")
			}
			if vr, err := journal.Verify(path); err != nil || !vr.Clean() {
				t.Errorf("final journal does not verify: %v %s", err, vr)
			}
		})
	}
}

// mustInspect opens a journal tolerantly or fails the test.
func mustInspect(t *testing.T, path string) *journal.Log {
	t.Helper()
	lg, err := journal.Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestResumeOfCompleteJournal replays a finished journal end to end:
// nothing re-executes, nothing is appended, and the artifacts still
// match the original run.
func TestResumeOfCompleteJournal(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := chaosConfig()
	clean, plClean, err := journalRun(t, ds, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	want := capture(t, clean, plClean)

	cfg.Obs = obs.New()
	rep, pl, err := ResumePipeline(ds, cfg, path)
	if err != nil {
		t.Fatalf("resume of complete journal: %v", err)
	}
	st := rep.Journal
	if st == nil || st.UnitsExecuted != 0 || st.RecordsAppended != 0 {
		t.Fatalf("full replay ran real work: %+v", st)
	}
	if st.RecordsReplayed != clean.Journal.RecordsAppended {
		t.Fatalf("replayed %d records, original wrote %d", st.RecordsReplayed, clean.Journal.RecordsAppended)
	}
	got := capture(t, rep, pl)
	if got.trace != want.trace || got.summary != want.summary {
		t.Error("full replay diverged from original run")
	}
}

// TestResumeRejectsConfigDrift pins the fail-fast on resuming under a
// different configuration than the one that wrote the journal.
func TestResumeRejectsConfigDrift(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := chaosConfig()
	if _, _, err := journalRun(t, ds, cfg, path); err != nil {
		t.Fatal(err)
	}

	drifted := cfg
	drifted.Assemblers = []string{"velvet"}
	drifted.Obs = obs.New()
	_, _, err = ResumePipeline(ds, drifted, path)
	if err == nil || !strings.Contains(err.Error(), "journal belongs to config") {
		t.Fatalf("resume under drifted config returned %v, want config-digest mismatch", err)
	}
}

// TestDriverCrashWithoutJournal: the fault class works standalone —
// the run dies with a DriverCrashError even when nothing is journaled
// (there is just nothing to resume from).
func TestDriverCrashWithoutJournal(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig()
	plan, err := faults.ParseSpec("drivercrash:at=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = plan
	pl := New(cfg)
	_, err = pl.Run(ds)
	var dce *DriverCrashError
	if !errors.As(err, &dce) {
		t.Fatalf("got %v, want DriverCrashError", err)
	}
}

// TestChaosDriverCrashResumeSoak races driver loss against worker
// faults across seeds: each cell runs under unit flakes, is killed at
// a seed-dependent virtual time, resumed, and must converge on the
// same bytes as its crash-free twin.
func TestChaosDriverCrashResumeSoak(t *testing.T) {
	ds, err := simdata.GenerateCached(simdata.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	dir := t.TempDir()
	const workerFaults = "unitflake:p=0.6,n=2"
	type cell struct {
		wantTrace, gotTrace string
		crashed             bool
		stats               JournalStats
	}
	results, mapErr := sweep.Map(seeds, func(i int) (cell, error) {
		seed := uint64(i + 1)
		var c cell

		twin := chaosConfig()
		plan, err := faults.ParseSpec(workerFaults)
		if err != nil {
			return c, err
		}
		twin.FaultPlan = plan
		twin.FaultSeed = seed
		twinPath := filepath.Join(dir, fmt.Sprintf("twin-%d.journal", i))
		_, plTwin, err := journalRun(t, ds, twin, twinPath)
		if err != nil {
			return c, fmt.Errorf("seed %d twin: %w", seed, err)
		}
		var buf bytes.Buffer
		if err := plTwin.Obs().Tracer.WriteChromeTrace(&buf); err != nil {
			return c, err
		}
		c.wantTrace = buf.String()

		// Kill somewhere in the run; a seed-scaled time keeps the kill
		// point roaming across stages without consulting a real clock.
		crashAt := 400 * float64(i+1)
		cfg := twin
		plan, err = faults.ParseSpec(fmt.Sprintf("%s;drivercrash:at=%g", workerFaults, crashAt))
		if err != nil {
			return c, err
		}
		cfg.FaultPlan = plan
		path := filepath.Join(dir, fmt.Sprintf("crash-%d.journal", i))
		rep, pl, err := journalRun(t, ds, cfg, path)
		var dce *DriverCrashError
		switch {
		case errors.As(err, &dce):
			c.crashed = true
			cfg.Obs = obs.New()
			rep, pl, err = ResumePipeline(ds, cfg, path)
			if err != nil {
				return c, fmt.Errorf("seed %d resume: %w", seed, err)
			}
		case err != nil:
			return c, fmt.Errorf("seed %d crash run: %w", seed, err)
		}
		c.stats = *rep.Journal
		buf.Reset()
		if err := pl.Obs().Tracer.WriteChromeTrace(&buf); err != nil {
			return c, err
		}
		c.gotTrace = buf.String()
		return c, nil
	}, sweep.Options{Workers: runtime.GOMAXPROCS(0)})
	if mapErr != nil {
		t.Fatal(mapErr)
	}
	var crashed int
	for i, c := range results {
		if c.gotTrace != c.wantTrace {
			t.Errorf("seed %d: resumed trace differs from crash-free twin", i+1)
		}
		if c.crashed {
			crashed++
			if !c.stats.Resumed || c.stats.RecordsReplayed == 0 {
				t.Errorf("seed %d: resume replayed nothing: %+v", i+1, c.stats)
			}
		}
	}
	if crashed == 0 {
		t.Error("no cell actually exercised a driver crash")
	}
	t.Logf("%d/%d cells crashed and resumed", crashed, len(results))
}
