package core

import (
	"strings"
	"testing"

	"rnascale/internal/cloud"
)

// backendCandidates is the planner grid the frontier tests sweep: both
// matching schemes crossed with every per-stage backend assignment.
func backendCandidates() []Config {
	var out []Config
	for _, scheme := range []MatchingScheme{S1, S2} {
		base := tinyConfig()
		base.EvaluateAgainstTruth = false
		base.Scheme = scheme
		out = append(out, ExpandBackends(base, nil)...)
	}
	return out
}

func TestExpandBackends(t *testing.T) {
	base := tinyConfig()
	all := ExpandBackends(base, nil)
	if len(all) != 27 {
		t.Errorf("full cross = %d configs, want 27", len(all))
	}
	seen := map[StageBackends]bool{}
	for _, c := range all {
		if seen[c.Backends] {
			t.Errorf("duplicate assignment %v", c.Backends)
		}
		seen[c.Backends] = true
	}
	base.Pattern = Conventional
	conv := ExpandBackends(base, nil)
	if len(conv) != 8 {
		t.Errorf("conventional cross = %d configs, want 8 (serverless excluded)", len(conv))
	}
	for _, c := range conv {
		if c.Backends.AnyServerless() {
			t.Errorf("conventional cross includes serverless: %v", c.Backends)
		}
	}
	pair := ExpandBackends(tinyConfig(), []cloud.Backend{cloud.OnDemand, cloud.Spot})
	if len(pair) != 8 {
		t.Errorf("two-backend cross = %d configs, want 8", len(pair))
	}
}

// The satellite property test: no plan Frontier returns may be
// dominated by ANY candidate (not just by other frontier members), and
// the output order is deterministic.
func TestFrontierPropertyOverBackends(t *testing.T) {
	ds := tinyDS(t)
	candidates := backendCandidates()
	frontier, err := Frontier(ds, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// Non-domination against every feasible candidate, dominance taken
	// in the weak Pareto sense Frontier itself uses.
	var feasible []Plan
	for _, cfg := range candidates {
		p, err := Predict(ds, cfg)
		if err != nil {
			continue
		}
		feasible = append(feasible, p)
	}
	if len(feasible) < 10 {
		t.Fatalf("only %d/%d candidates feasible", len(feasible), len(candidates))
	}
	for _, f := range frontier {
		for _, p := range feasible {
			if p.TTC < f.TTC && p.CostUSD < f.CostUSD {
				t.Errorf("frontier point %v dominated by candidate %v", f, p)
			}
		}
	}
	// The backend dimension must actually matter: the frontier spans
	// more than one backend assignment.
	assignments := map[StageBackends]bool{}
	for _, f := range frontier {
		assignments[f.Config.Backends] = true
	}
	if len(assignments) < 2 {
		t.Errorf("frontier collapses to one backend assignment: %v", frontier)
	}
	// Deterministic output order: a second pass renders identically.
	again, err := Frontier(ds, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(frontier) {
		t.Fatalf("frontier size changed across calls: %d vs %d", len(frontier), len(again))
	}
	for i := range frontier {
		if frontier[i].String() != again[i].String() {
			t.Errorf("frontier order diverged at %d:\n%v\n%v", i, frontier[i], again[i])
		}
	}
}

func TestFrontierEdgeCases(t *testing.T) {
	ds := tinyDS(t)
	cases := []struct {
		name       string
		candidates []Config
		wantErr    bool
		wantLen    int
	}{
		{name: "empty", candidates: nil, wantErr: true},
		{name: "single", candidates: []Config{tinyConfig()}, wantLen: 1},
		{name: "all-infeasible", candidates: []Config{
			func() Config { c := tinyConfig(); c.Assemblers = []string{"nope"}; return c }(),
		}, wantErr: true},
	}
	for _, c := range cases {
		frontier, err := Frontier(ds, c.candidates)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: no error (got %d plans)", c.name, len(frontier))
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(frontier) != c.wantLen {
			t.Errorf("%s: %d plans, want %d", c.name, len(frontier), c.wantLen)
		}
	}
	// A single candidate comes back verbatim.
	single, err := Predict(ds, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := Frontier(ds, []Config{tinyConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if frontier[0].String() != single.String() {
		t.Errorf("single-candidate frontier %v != its prediction %v", frontier[0], single)
	}
}

// Backend-aware predictions must track the simulation the same way the
// on-demand path does (tolerances widened: the spot walk and cold-start
// bursts add variance the closed-form path doesn't have).
func TestPredictTracksRunBackends(t *testing.T) {
	ds := tinyDS(t)
	for _, tc := range []struct {
		name       string
		backends   StageBackends
		scheme     MatchingScheme
		assemblers []string
	}{
		{name: "all-spot", backends: StageBackends{PA: cloud.Spot, PB: cloud.Spot, PC: cloud.Spot}, scheme: S2},
		// Serverless PB runs each assembler on a 1-core allocation, where
		// contrail's TTC estimator is at its weakest (its constant-volume
		// compression model overshoots); validate the planner path with
		// the tightly estimated tools instead.
		{name: "all-serverless", backends: StageBackends{PA: cloud.Serverless, PB: cloud.Serverless, PC: cloud.Serverless},
			scheme: S2, assemblers: []string{"ray", "abyss"}},
		{name: "mixed", backends: StageBackends{PA: cloud.OnDemand, PB: cloud.Serverless, PC: cloud.Spot},
			scheme: S1, assemblers: []string{"ray", "abyss"}},
	} {
		cfg := tinyConfig()
		cfg.EvaluateAgainstTruth = false
		cfg.Scheme = tc.scheme
		cfg.Backends = tc.backends
		if tc.assemblers != nil {
			cfg.Assemblers = tc.assemblers
		}
		plan, err := Predict(ds, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rep, err := Run(ds, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ttcRatio := plan.TTC.Seconds() / rep.TTC.Seconds()
		if ttcRatio < 0.5 || ttcRatio > 2.0 {
			t.Errorf("%s: predicted TTC %v vs actual %v (ratio %.2f)", tc.name, plan.TTC, rep.TTC, ttcRatio)
		}
		costRatio := plan.CostUSD / rep.CostUSD
		if costRatio < 0.4 || costRatio > 2.5 {
			t.Errorf("%s: predicted cost $%.4f vs actual $%.4f (ratio %.2f)", tc.name, plan.CostUSD, rep.CostUSD, costRatio)
		}
		if plan.AssemblyNodes != rep.AssemblyNodes {
			t.Errorf("%s: predicted %d PB nodes, actual %d", tc.name, plan.AssemblyNodes, rep.AssemblyNodes)
		}
		if !strings.Contains(plan.String(), "PA=") {
			t.Errorf("%s: plan string lacks the backend assignment: %s", tc.name, plan)
		}
	}
}

func TestPredictSpotDiscountAndServerlessRejection(t *testing.T) {
	ds := tinyDS(t)
	od := tinyConfig()
	od.EvaluateAgainstTruth = false
	planOD, err := Predict(ds, od)
	if err != nil {
		t.Fatal(err)
	}
	spot := od
	spot.Backends = StageBackends{PA: cloud.Spot, PB: cloud.Spot, PC: cloud.Spot}
	planSpot, err := Predict(ds, spot)
	if err != nil {
		t.Fatal(err)
	}
	if planSpot.CostUSD >= planOD.CostUSD {
		t.Errorf("predicted spot $%.2f not cheaper than on-demand $%.2f", planSpot.CostUSD, planOD.CostUSD)
	}
	conv := od
	conv.Pattern = Conventional
	conv.Backends = StageBackends{PB: cloud.Serverless}
	if _, err := Predict(ds, conv); err == nil {
		t.Error("conventional+serverless plan accepted")
	}
}
