package cloud

import (
	"math"
	"strings"
	"testing"

	"rnascale/internal/vclock"
)

func newFaasProvider() (*Provider, *vclock.Clock) {
	clk := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.Serverless = &ServerlessOptions{}
	return NewProvider(clk, opts), clk
}

func TestServerlessTierSelection(t *testing.T) {
	o := DefaultServerlessOptions()
	cases := []struct {
		mem  float64
		want float64
		ok   bool
	}{
		{0, 1, true},
		{0.5, 1, true},
		{1, 1, true},
		{1.1, 2, true},
		{4, 4, true},
		{9, 16, true},
		{16, 16, true},
		{16.1, 0, false},
	}
	for _, c := range cases {
		got, ok := o.TierFor(c.mem)
		if got != c.want || ok != c.ok {
			t.Errorf("TierFor(%v) = %v, %v; want %v, %v", c.mem, got, ok, c.want, c.ok)
		}
	}
	if o.MaxTierGB() != 16 {
		t.Errorf("MaxTierGB = %v", o.MaxTierGB())
	}
}

func TestServerlessColdWarmSequence(t *testing.T) {
	p, clk := newFaasProvider()
	// First invocation is cold.
	inv1, err := p.Invoke("assemble", 3, 60*vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !inv1.Cold || inv1.Latency != p.Serverless().Options().ColdStart {
		t.Errorf("first invocation %+v, want cold", inv1)
	}
	if inv1.TierGB != 4 {
		t.Errorf("tier %v, want 4", inv1.TierGB)
	}
	// A second concurrent invocation (env still busy) is also cold.
	inv2, err := p.Invoke("assemble", 3, 60*vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !inv2.Cold {
		t.Error("concurrent invocation reused a busy environment")
	}
	// After both finish, a new invocation reuses a warm environment.
	clk.Advance(5 * vclock.Minute)
	inv3, err := p.Invoke("assemble", 3, 60*vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if inv3.Cold || inv3.Latency != p.Serverless().Options().WarmStart {
		t.Errorf("post-idle invocation %+v, want warm", inv3)
	}
	// Functions have separate pools.
	inv4, err := p.Invoke("preprocess", 1, vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !inv4.Cold {
		t.Error("different function reused another function's environment")
	}
	// After KeepWarm expires, environments go away again.
	clk.Advance(p.Serverless().Options().KeepWarm + 10*vclock.Minute)
	inv5, err := p.Invoke("assemble", 3, 60*vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !inv5.Cold {
		t.Error("expired environment still reusable")
	}
	total, cold, warm := p.Serverless().Invocations()
	if total != 5 || cold != 4 || warm != 1 {
		t.Errorf("invocations = %d/%d/%d, want 5/4/1", total, cold, warm)
	}
}

func TestServerlessDurationCapAndErrors(t *testing.T) {
	p, _ := newFaasProvider()
	cap := p.Serverless().Options().MaxDuration
	if _, err := p.Invoke("f", 1, cap+vclock.Second); err == nil || !strings.Contains(err.Error(), "split") {
		t.Errorf("over-cap invocation: %v", err)
	}
	if _, err := p.Invoke("f", 1, -vclock.Second); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := p.Invoke("f", 100, vclock.Second); err == nil || !strings.Contains(err.Error(), "tier") {
		t.Errorf("over-memory invocation: %v", err)
	}
	// Exactly at the cap is fine.
	if _, err := p.Invoke("f", 1, cap); err != nil {
		t.Errorf("at-cap invocation rejected: %v", err)
	}
	// Errors do not bill.
	if got := p.Serverless().TotalUSD(); got != p.Serverless().Options().InvocationUSD(1, cap) {
		t.Errorf("failed invocations billed: %v", got)
	}
	// No serverless backend configured.
	bare := newTestProvider()
	if _, err := bare.Invoke("f", 1, vclock.Second); err == nil || !strings.Contains(err.Error(), "Options.Serverless") {
		t.Errorf("invoke without backend: %v", err)
	}
}

func TestServerlessPerInvocationBilling(t *testing.T) {
	p, _ := newFaasProvider()
	o := p.Serverless().Options()
	// One 90 s invocation at the 2 GB tier.
	if _, err := p.Invoke("f", 1.5, 90*vclock.Second); err != nil {
		t.Fatal(err)
	}
	want := o.PricePerInvocation + 2*(90.0/3600.0)*o.PricePerGBHour
	if got := p.Serverless().TotalUSD(); math.Abs(got-want) > 1e-15 {
		t.Errorf("bill = %v, want %v", got, want)
	}
	// Zero-duration invocation still pays the flat request fee.
	if _, err := p.Invoke("f", 1.5, 0); err != nil {
		t.Fatal(err)
	}
	want += o.PricePerInvocation
	if got := p.Serverless().TotalUSD(); math.Abs(got-want) > 1e-15 {
		t.Errorf("bill after zero-duration = %v, want %v", got, want)
	}
	// The provider bill carries per-tier serverless lines and TotalCost
	// includes them.
	lines := p.Bill()
	if len(lines) != 1 {
		t.Fatalf("bill lines = %+v", lines)
	}
	l := lines[0]
	if l.Type != "fn-2gb" || l.Backend != "serverless" || l.Instances != 2 {
		t.Errorf("serverless line %+v", l)
	}
	if math.Abs(l.USD-want) > 1e-15 || math.Abs(p.TotalCost()-want) > 1e-15 {
		t.Errorf("line USD %v, total %v, want %v", l.USD, p.TotalCost(), want)
	}
	wantGBH := 2 * (90.0 / 3600.0)
	if math.Abs(l.InstanceHours-wantGBH) > 1e-15 {
		t.Errorf("GB-hours %v, want %v", l.InstanceHours, wantGBH)
	}
}

func TestServerlessMultiTierBillSorted(t *testing.T) {
	p, _ := newFaasProvider()
	for _, mem := range []float64{9, 0.5, 3, 0.5} {
		if _, err := p.Invoke("f", mem, vclock.Minute); err != nil {
			t.Fatal(err)
		}
	}
	lines := p.Bill()
	if len(lines) != 3 {
		t.Fatalf("bill lines = %+v", lines)
	}
	for i, want := range []string{"fn-1gb", "fn-4gb", "fn-16gb"} {
		if lines[i].Type != want {
			t.Errorf("line %d type %q, want %q (sorted by tier)", i, lines[i].Type, want)
		}
	}
	if lines[0].Instances != 2 {
		t.Errorf("1gb invocations = %d, want 2", lines[0].Instances)
	}
}
