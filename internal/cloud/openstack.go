package cloud

import "rnascale/internal/vclock"

// The paper's future-work list includes "the pipeline will be fully
// tested for OpenStack". OpenStack is the same IaaS abstraction with
// a different flavour catalogue and (typically) slower control-plane
// operations on private deployments; this file provides that second
// provider personality so the pipeline can be exercised against it.

// OpenStack-style flavours, shaped after the classic m1/r1 series of
// 2016-era private clouds. Prices model internal chargeback rates.
var (
	OSM1Large  = InstanceType{Name: "m1.large", Cores: 4, MemoryGB: 8, PricePerHour: 0.16}
	OSM1XLarge = InstanceType{Name: "m1.xlarge", Cores: 8, MemoryGB: 16, PricePerHour: 0.32}
	OSR1Large  = InstanceType{Name: "r1.large", Cores: 4, MemoryGB: 30, PricePerHour: 0.28}
	OSR1XLarge = InstanceType{Name: "r1.xlarge", Cores: 8, MemoryGB: 64, PricePerHour: 0.56}
	OSC1XLarge = InstanceType{Name: "c1.xlarge", Cores: 16, MemoryGB: 32, PricePerHour: 0.52}
)

// OpenStackCatalog lists the OpenStack flavours.
func OpenStackCatalog() []InstanceType {
	return []InstanceType{OSM1Large, OSM1XLarge, OSR1Large, OSR1XLarge, OSC1XLarge}
}

// OpenStackOptions model a private OpenStack deployment: slower boots
// (no pre-warmed hypervisors), a campus uplink for ingress, and a
// modest instance quota.
func OpenStackOptions() Options {
	return Options{
		BootLatency:  150 * vclock.Second,
		Ingress:      vclock.CommCost{Latency: 0.5, Bandwidth: 80e6},
		InterNode:    vclock.CommCost{Latency: 0.0004, Bandwidth: 200e6},
		MaxInstances: 64,
	}
}

// NewProviderWithCatalog builds a provider over an explicit
// catalogue, replacing the EC2 defaults — how the OpenStack
// personality is instantiated:
//
//	p := cloud.NewProviderWithCatalog(clock, cloud.OpenStackOptions(), cloud.OpenStackCatalog())
func NewProviderWithCatalog(clock *vclock.Clock, opts Options, catalog []InstanceType) *Provider {
	p := NewProvider(clock, opts)
	p.catalog = make(map[string]InstanceType, len(catalog))
	for _, it := range catalog {
		p.catalog[it.Name] = it
	}
	return p
}
