// Package cloud simulates an on-demand Infrastructure-as-a-Service
// provider in the style of Amazon EC2, the platform used by the paper.
//
// The simulation covers the aspects of IaaS the pipeline's behaviour
// depends on: an instance-type catalogue (cores, memory, price), the
// VM lifecycle (pending → running → terminated) with boot latency,
// ingress data transfer from the submitting "local server", and a
// billing ledger. Time is virtual (see internal/vclock); one Provider
// shares a clock with the rest of a simulation.
//
// Billing is fractional by instance-seconds, which is the model that
// reproduces the paper's sample-run arithmetic (48.3 instance-hours of
// c3.2xlarge × $0.42 ≈ $20.28); an optional per-hour-rounding mode is
// provided for studying the coarser 2016-era EC2 billing.
package cloud

import (
	"fmt"
	"math"
	"sort"

	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// InstanceType describes a purchasable VM flavour.
type InstanceType struct {
	Name         string
	Cores        int
	MemoryGB     float64
	PricePerHour float64 // USD
}

// The instance types used throughout the paper's experiments, plus a
// few smaller flavours for ablation studies. Prices and shapes follow
// the paper (Section III.B): both benchmark types have 8 cores;
// r3.2xlarge has 61 GB at $0.70/h, c3.2xlarge has 16 GB at $0.42/h.
var (
	C3XLarge  = InstanceType{Name: "c3.xlarge", Cores: 4, MemoryGB: 7.5, PricePerHour: 0.21}
	C32XLarge = InstanceType{Name: "c3.2xlarge", Cores: 8, MemoryGB: 16, PricePerHour: 0.42}
	R3XLarge  = InstanceType{Name: "r3.xlarge", Cores: 4, MemoryGB: 30.5, PricePerHour: 0.35}
	R32XLarge = InstanceType{Name: "r3.2xlarge", Cores: 8, MemoryGB: 61, PricePerHour: 0.70}
	M3Medium  = InstanceType{Name: "m3.medium", Cores: 1, MemoryGB: 3.75, PricePerHour: 0.067}
)

// DefaultCatalog lists every built-in instance type.
func DefaultCatalog() []InstanceType {
	return []InstanceType{M3Medium, C3XLarge, C32XLarge, R3XLarge, R32XLarge}
}

// VMState is the lifecycle state of a virtual machine.
type VMState int

const (
	// VMPending means the boot request was accepted but the VM is not
	// yet usable.
	VMPending VMState = iota
	// VMRunning means the VM is booted and billable work can run.
	VMRunning
	// VMTerminated means the VM was shut down; billing has stopped.
	VMTerminated
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case VMPending:
		return "pending"
	case VMRunning:
		return "running"
	case VMTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// VM is one simulated virtual machine.
type VM struct {
	ID   string
	Type InstanceType
	// Backend is the purchasing model (on-demand or spot); AZ is the
	// availability zone a spot VM was placed in (empty for on-demand).
	Backend      Backend
	AZ           string
	LaunchedAt   vclock.Time // when the boot request was made
	RunningAt    vclock.Time // LaunchedAt + boot latency
	TerminatedAt vclock.Time // meaningful only once terminated
	// InterruptedAt/InterruptReason record an injected interruption
	// (crash or reclamation) once it strikes; zero otherwise.
	InterruptedAt   vclock.Time
	InterruptReason string
	state           VMState
}

// State reports the lifecycle state of the VM as of time t.
func (vm *VM) State(t vclock.Time) VMState {
	if vm.state == VMTerminated && t >= vm.TerminatedAt {
		return VMTerminated
	}
	if t >= vm.RunningAt {
		return VMRunning
	}
	return VMPending
}

// BilledHours reports the fractional instance-hours billed for this VM
// as of time now.
func (vm *VM) BilledHours(now vclock.Time) float64 {
	end := now
	if vm.state == VMTerminated && vm.TerminatedAt < now {
		end = vm.TerminatedAt
	}
	if end < vm.LaunchedAt {
		return 0
	}
	return end.Sub(vm.LaunchedAt).Hours()
}

// Options configure a Provider.
type Options struct {
	// BootLatency is the pending→running delay for each VM.
	BootLatency vclock.Duration
	// Ingress models the link from the submitting local server into
	// the cloud (used for dataset upload).
	Ingress vclock.CommCost
	// InterNode models the link between two VMs in the same cluster
	// placement group.
	InterNode vclock.CommCost
	// HourlyRounding switches billing from fractional instance-seconds
	// to the coarse round-up-to-the-hour model.
	HourlyRounding bool
	// MaxInstances caps concurrently running+pending VMs; zero means
	// no cap. Exceeding the cap makes RunInstances fail, modelling an
	// EC2 account limit.
	MaxInstances int
	// FailBoot, when non-nil, is consulted with each boot's ordinal
	// (1-based across the provider's lifetime); returning true makes
	// that RunInstances call fail with a capacity error. Used for
	// fault-injection tests ("InsufficientInstanceCapacity" in EC2
	// terms).
	FailBoot func(bootOrdinal int) bool
	// Faults, when non-nil, drives seed-deterministic fault injection:
	// injected boot capacity errors, scheduled VM interruptions (crash
	// or spot reclamation) and degraded ingress transfers (see
	// internal/faults).
	Faults *faults.Injector
	// Spot, when non-nil, enables the spot-market backend: a
	// seed-deterministic per-AZ price walk with price-coupled
	// reclamation (see SpotOptions).
	Spot *SpotOptions
	// Serverless, when non-nil, enables the function backend (see
	// ServerlessOptions).
	Serverless *ServerlessOptions
}

// DefaultOptions reflect the environment calibrated from the paper's
// sample run: a 4.4 GB upload took 3 min 35 s (≈ 20.5 MB/s ingress),
// and EC2 instances of the era took about a minute to boot.
func DefaultOptions() Options {
	return Options{
		BootLatency: 60 * vclock.Second,
		Ingress:     vclock.CommCost{Latency: 2, Bandwidth: 20.5e6},
		InterNode:   vclock.CommCost{Latency: 0.0005, Bandwidth: 120e6},
	}
}

// Provider is the simulated IaaS endpoint. It is not safe for
// concurrent use; simulations drive it sequentially.
type Provider struct {
	clock   *vclock.Clock
	opts    Options
	catalog map[string]InstanceType
	vms     map[string]*VM
	order   []string // VM IDs in launch order, for deterministic reports
	nextID  int
	boots   int // RunInstances calls, for fault injection
	metrics *obs.Registry

	// interruptions holds fault-plan- and market-scheduled VM losses in
	// launch order; interruptByVM indexes them by VM ID.
	interruptions []*Interruption
	interruptByVM map[string]*Interruption

	// spot and faas back the non-on-demand purchasing models; nil when
	// the corresponding option is unset.
	spot *SpotMarket
	faas *Faas

	// breaker, when set, observes per-backend failures (spot reclaims,
	// serverless attempt failures) so callers can route around a
	// tripped backend; nil = no breaker.
	breaker *CircuitBreaker
}

// Interruption is a scheduled involuntary VM loss (an injected crash
// or a spot-style reclamation). It exists from the VM's launch; it
// takes effect — terminating the VM — only when applied, which is how
// the simulation discovers a failure "after the fact", as a pilot
// polling a dead node would.
type Interruption struct {
	VM *VM
	// At is the virtual time the VM dies.
	At vclock.Time
	// Class is the fault class (faults.ClassCrash or ClassReclaim).
	Class faults.Class
	// NoticeAt is when the advance warning becomes visible (reclaim
	// rules carry a notice lead; crashes give none, NoticeAt == At).
	NoticeAt vclock.Time
	// Applied reports whether the loss has been acted on.
	Applied bool
	// FromPlan distinguishes fault-plan interruptions from the spot
	// market's own reclaims: only the former count toward the
	// faults-injected metric (market reclaims are counted separately,
	// under MetricVMInterruptions).
	FromPlan bool
}

// NewProvider returns a provider over the given clock with the default
// catalogue.
func NewProvider(clock *vclock.Clock, opts Options) *Provider {
	p := &Provider{
		clock:         clock,
		opts:          opts,
		catalog:       make(map[string]InstanceType),
		vms:           make(map[string]*VM),
		interruptByVM: make(map[string]*Interruption),
	}
	for _, it := range DefaultCatalog() {
		p.catalog[it.Name] = it
	}
	if opts.Spot != nil {
		p.spot = NewSpotMarket(*opts.Spot)
	}
	if opts.Serverless != nil {
		p.faas = NewFaas(clock, *opts.Serverless)
	}
	return p
}

// SpotMarket exposes the provider's spot market (nil when the spot
// backend is not configured).
func (p *Provider) SpotMarket() *SpotMarket { return p.spot }

// Serverless exposes the provider's function backend (nil when not
// configured).
func (p *Provider) Serverless() *Faas { return p.faas }

// SetBreaker attaches a per-backend circuit breaker; the provider
// feeds it spot-reclaim failures and clean spot terminations. Nil
// detaches it.
func (p *Provider) SetBreaker(cb *CircuitBreaker) { p.breaker = cb }

// Breaker exposes the attached circuit breaker (nil when none).
func (p *Provider) Breaker() *CircuitBreaker { return p.breaker }

// Clock exposes the provider's virtual clock.
func (p *Provider) Clock() *vclock.Clock { return p.clock }

// Options exposes the provider configuration.
func (p *Provider) Options() Options { return p.opts }

// Faults exposes the provider's fault injector (nil when no fault
// plan is configured).
func (p *Provider) Faults() *faults.Injector { return p.opts.Faults }

// RegisterType adds or replaces a catalogue entry.
func (p *Provider) RegisterType(it InstanceType) error {
	if it.Name == "" || it.Cores <= 0 || it.MemoryGB <= 0 || it.PricePerHour < 0 {
		return fmt.Errorf("cloud: invalid instance type %+v", it)
	}
	p.catalog[it.Name] = it
	return nil
}

// LookupType resolves an instance-type name.
func (p *Provider) LookupType(name string) (InstanceType, error) {
	it, ok := p.catalog[name]
	if !ok {
		return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
	}
	return it, nil
}

// active counts VMs that are not terminated.
func (p *Provider) active() int {
	n := 0
	for _, vm := range p.vms {
		if vm.state != VMTerminated {
			n++
		}
	}
	return n
}

// RunInstances requests count on-demand VMs of the named type. The
// VMs are created in pending state and become running BootLatency
// later; the call itself does not advance the clock (the API returns
// immediately, as EC2's does).
func (p *Provider) RunInstances(typeName string, count int) ([]*VM, error) {
	return p.RunInstancesOn(typeName, count, OnDemand)
}

// RunInstancesOn is RunInstances with an explicit purchasing backend.
// Spot VMs are placed in the currently cheapest AZ, billed at the
// market's integrated price over their lifetime, and may be reclaimed
// by the market (scheduled through the same Interruption machinery a
// fault plan uses, with the standard advance notice, so pilot
// retry/recovery and the journal see market reclaims exactly like
// injected ones).
func (p *Provider) RunInstancesOn(typeName string, count int, backend Backend) ([]*VM, error) {
	it, err := p.LookupType(typeName)
	if err != nil {
		return nil, err
	}
	if count <= 0 {
		return nil, fmt.Errorf("cloud: RunInstances count %d", count)
	}
	switch backend {
	case OnDemand:
	case Spot:
		if p.spot == nil {
			return nil, fmt.Errorf("cloud: spot backend requested but Options.Spot is not configured")
		}
	default:
		return nil, fmt.Errorf("cloud: backend %v has no instances to run", backend)
	}
	if p.opts.MaxInstances > 0 && p.active()+count > p.opts.MaxInstances {
		p.countBootFailure(typeName, BootFailLimit)
		return nil, fmt.Errorf("cloud: instance limit exceeded: %d active + %d requested > %d",
			p.active(), count, p.opts.MaxInstances)
	}
	p.boots++
	if p.opts.FailBoot != nil && p.opts.FailBoot(p.boots) {
		p.countBootFailure(typeName, BootFailCapacity)
		return nil, fmt.Errorf("cloud: insufficient instance capacity for %s (boot #%d)", typeName, p.boots)
	}
	if p.opts.Faults.BootFails(p.boots, typeName, p.clock.Now()) {
		p.countBootFailure(typeName, BootFailInjected)
		return nil, fmt.Errorf("cloud: insufficient instance capacity for %s (injected, boot #%d)", typeName, p.boots)
	}
	now := p.clock.Now()
	var az string
	if backend == Spot {
		az = p.spot.CheapestAZ(now)
	}
	vms := make([]*VM, count)
	for i := range vms {
		p.nextID++
		vm := &VM{
			ID:         fmt.Sprintf("i-%06d", p.nextID),
			Type:       it,
			Backend:    backend,
			AZ:         az,
			LaunchedAt: now,
			RunningAt:  now.Add(p.opts.BootLatency),
			state:      VMRunning, // state field tracks terminal transitions; State(t) handles pending
		}
		p.vms[vm.ID] = vm
		p.order = append(p.order, vm.ID)
		vms[i] = vm
		// The fault plan's draw and (for spot VMs) the market's own
		// reclaim draw are independent streams; whichever strikes first
		// wins, so a spot run under a fault plan replays the plan's
		// decisions unchanged.
		var iv *Interruption
		if at, class, notice, ok := p.opts.Faults.VMInterruption(vm.ID, p.nextID, vm.RunningAt); ok {
			iv = &Interruption{VM: vm, At: at, Class: class, NoticeAt: at, FromPlan: true}
			if notice > 0 && at.Add(-notice) > vm.LaunchedAt {
				iv.NoticeAt = at.Add(-notice)
			}
		}
		if backend == Spot {
			if at, ok := p.spot.ReclaimAt(vm.ID, az, vm.RunningAt); ok && (iv == nil || at < iv.At) {
				at = vclock.Max(at, vm.RunningAt)
				iv = &Interruption{VM: vm, At: at, Class: faults.ClassReclaim, NoticeAt: at}
				if at.Add(-faults.DefaultReclaimNotice) > vm.LaunchedAt {
					iv.NoticeAt = at.Add(-faults.DefaultReclaimNotice)
				}
			}
		}
		if iv != nil {
			p.interruptions = append(p.interruptions, iv)
			p.interruptByVM[vm.ID] = iv
		}
	}
	p.countBoot(typeName, count)
	return vms, nil
}

// WaitRunning advances the clock until every given VM is running and
// returns the new time.
func (p *Provider) WaitRunning(vms []*VM) vclock.Time {
	for _, vm := range vms {
		p.clock.AdvanceTo(vm.RunningAt)
	}
	return p.clock.Now()
}

// Describe returns the VM with the given ID.
func (p *Provider) Describe(id string) (*VM, error) {
	vm, ok := p.vms[id]
	if !ok {
		return nil, fmt.Errorf("cloud: no such instance %q", id)
	}
	return vm, nil
}

// Terminate shuts down the given VMs at the current time. Terminating
// a terminated VM is a no-op, as with EC2. A VM whose scheduled
// interruption already struck dies at the interruption time instead —
// it must not bill past the moment it was lost.
func (p *Provider) Terminate(vms ...*VM) {
	now := p.clock.Now()
	for _, vm := range vms {
		if vm.state == VMTerminated {
			continue
		}
		if iv, ok := p.interruptByVM[vm.ID]; ok && !iv.Applied && iv.At < now {
			p.ApplyInterruption(iv)
			continue
		}
		vm.state = VMTerminated
		vm.TerminatedAt = vclock.Max(now, vm.RunningAt)
		p.countTermination(vm)
		if vm.Backend == Spot {
			// A spot VM that reached voluntary termination was never
			// reclaimed — evidence the market is healthy.
			p.breaker.RecordSuccess(Spot)
		}
	}
}

// PendingInterruptions lists scheduled-but-unapplied interruptions
// striking at or before `until`, in launch order. Callers that learn
// of a loss (a pilot finding a dead node) apply it.
func (p *Provider) PendingInterruptions(until vclock.Time) []*Interruption {
	var out []*Interruption
	for _, iv := range p.interruptions {
		if !iv.Applied && iv.At <= until && iv.VM.state != VMTerminated {
			out = append(out, iv)
		}
	}
	return out
}

// ApplyInterruption makes a scheduled interruption take effect: the
// VM terminates at the interruption time (clamped to its boot) and
// the loss is billed and counted. Returns false if the interruption
// was already applied or the VM already terminated.
func (p *Provider) ApplyInterruption(iv *Interruption) bool {
	if iv == nil || iv.Applied {
		return false
	}
	iv.Applied = true
	vm := iv.VM
	if vm.state == VMTerminated {
		return false
	}
	vm.state = VMTerminated
	vm.TerminatedAt = vclock.Max(iv.At, vm.RunningAt)
	vm.InterruptedAt = vm.TerminatedAt
	vm.InterruptReason = string(iv.Class)
	p.countTermination(vm)
	p.countInterruption(vm, iv.Class)
	if iv.FromPlan {
		p.opts.Faults.CountInjected(iv.Class)
	}
	if vm.Backend == Spot {
		p.breaker.RecordFailure(Spot)
	}
	return true
}

// Interruptions lists every scheduled interruption (applied or not)
// in launch order.
func (p *Provider) Interruptions() []*Interruption {
	return append([]*Interruption(nil), p.interruptions...)
}

// InterruptionFor reports the interruption scheduled for a VM, if any.
func (p *Provider) InterruptionFor(vmID string) (*Interruption, bool) {
	iv, ok := p.interruptByVM[vmID]
	return iv, ok
}

// ReclaimNotices lists unapplied interruptions whose advance warning
// is visible by `now` — the spot reclamation notices a scheduler could
// react to before the node actually disappears.
func (p *Provider) ReclaimNotices(now vclock.Time) []*Interruption {
	var out []*Interruption
	for _, iv := range p.interruptions {
		if !iv.Applied && iv.NoticeAt <= now && iv.At > now {
			out = append(out, iv)
		}
	}
	return out
}

// TerminateAll shuts down every non-terminated VM.
func (p *Provider) TerminateAll() {
	for _, id := range p.order {
		p.Terminate(p.vms[id])
	}
}

// Running lists currently running VMs in launch order.
func (p *Provider) Running() []*VM {
	now := p.clock.Now()
	var out []*VM
	for _, id := range p.order {
		if vm := p.vms[id]; vm.State(now) == VMRunning {
			out = append(out, vm)
		}
	}
	return out
}

// UploadFromLocal models moving n bytes from the submitting local
// server into the cloud and advances the clock by the transfer time.
// It returns the transfer duration.
func (p *Provider) UploadFromLocal(n int64) vclock.Duration {
	d := p.opts.Faults.DegradeTransfer(p.opts.Ingress.Transfer(n))
	p.clock.Advance(d)
	p.countIngress(n)
	return d
}

// InterNodeTransfer reports (without advancing the clock) the time to
// move n bytes between two VMs.
func (p *Provider) InterNodeTransfer(n int64) vclock.Duration {
	return p.opts.InterNode.Transfer(n)
}

// BillLine is one row of the billing report.
type BillLine struct {
	Type string
	// Backend distinguishes purchasing models; empty for on-demand so
	// existing reports render unchanged. Serverless lines carry
	// Instances = invocations and InstanceHours = GB-hours.
	Backend       string
	Instances     int
	InstanceHours float64
	USD           float64
}

// vmRate reports a VM's effective hourly rate as of now: the fixed
// catalogue price on-demand, or the market price integrated over the
// VM's billed lifetime for spot.
func (p *Provider) vmRate(vm *VM, now vclock.Time) float64 {
	rate := vm.Type.PricePerHour
	if vm.Backend == Spot && p.spot != nil {
		end := now
		if vm.state == VMTerminated && vm.TerminatedAt < now {
			end = vm.TerminatedAt
		}
		if end < vm.LaunchedAt {
			end = vm.LaunchedAt
		}
		rate *= p.spot.AvgFrac(vm.AZ, vm.LaunchedAt, end)
	}
	return rate
}

// Bill computes the cost ledger as of the current time, one line per
// (instance type, backend), with serverless invocations appended as
// per-tier lines.
func (p *Provider) Bill() []BillLine {
	now := p.clock.Now()
	agg := map[string]*BillLine{}
	keys := make([]string, 0, len(agg))
	for _, id := range p.order {
		vm := p.vms[id]
		hours := vm.BilledHours(now)
		if p.opts.HourlyRounding {
			hours = math.Ceil(hours)
		}
		backend := ""
		if vm.Backend != OnDemand {
			backend = vm.Backend.String()
		}
		key := vm.Type.Name + "\x00" + backend
		line, ok := agg[key]
		if !ok {
			line = &BillLine{Type: vm.Type.Name, Backend: backend}
			agg[key] = line
			keys = append(keys, key)
		}
		line.Instances++
		line.InstanceHours += hours
		line.USD += hours * p.vmRate(vm, now)
	}
	sort.Strings(keys)
	out := make([]BillLine, 0, len(keys))
	for _, k := range keys {
		out = append(out, *agg[k])
	}
	if p.faas != nil {
		out = append(out, p.faas.billLines()...)
	}
	return out
}

// Invoke runs one serverless function invocation (see
// Serverless.Invoke) and emits invocation metrics. It errors when the
// serverless backend is not configured.
func (p *Provider) Invoke(fn string, memGB float64, dur vclock.Duration) (Invocation, error) {
	if p.faas == nil {
		return Invocation{}, fmt.Errorf("cloud: serverless backend requested but Options.Serverless is not configured")
	}
	inv, err := p.faas.Invoke(fn, memGB, dur)
	if err != nil {
		return Invocation{}, err
	}
	p.countInvocation(inv)
	return inv, nil
}

// TotalCost sums the billing ledger in USD.
func (p *Provider) TotalCost() float64 {
	var usd float64
	for _, line := range p.Bill() {
		usd += line.USD
	}
	return usd
}

// TotalInstanceHours sums billed instance-hours across all types.
func (p *Provider) TotalInstanceHours() float64 {
	var h float64
	for _, line := range p.Bill() {
		h += line.InstanceHours
	}
	return h
}
