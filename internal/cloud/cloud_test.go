package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"rnascale/internal/vclock"
)

func newTestProvider() *Provider {
	return NewProvider(vclock.NewClock(0), DefaultOptions())
}

func TestCatalogShapes(t *testing.T) {
	// The two benchmark types from the paper.
	if C32XLarge.Cores != 8 || C32XLarge.MemoryGB != 16 || C32XLarge.PricePerHour != 0.42 {
		t.Errorf("c3.2xlarge = %+v", C32XLarge)
	}
	if R32XLarge.Cores != 8 || R32XLarge.MemoryGB != 61 || R32XLarge.PricePerHour != 0.70 {
		t.Errorf("r3.2xlarge = %+v", R32XLarge)
	}
}

func TestRunInstancesLifecycle(t *testing.T) {
	p := newTestProvider()
	vms, err := p.RunInstances("c3.2xlarge", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 3 {
		t.Fatalf("got %d VMs", len(vms))
	}
	now := p.Clock().Now()
	for _, vm := range vms {
		if vm.State(now) != VMPending {
			t.Errorf("%s state %v, want pending", vm.ID, vm.State(now))
		}
	}
	p.WaitRunning(vms)
	now = p.Clock().Now()
	if now != vclock.Time(60) {
		t.Fatalf("boot wait ended at %v", now)
	}
	for _, vm := range vms {
		if vm.State(now) != VMRunning {
			t.Errorf("%s not running after wait", vm.ID)
		}
	}
	p.Terminate(vms[0])
	if vms[0].State(p.Clock().Now()) != VMTerminated {
		t.Error("terminate did not stick")
	}
	p.Terminate(vms[0]) // idempotent
	if got := len(p.Running()); got != 2 {
		t.Errorf("running = %d, want 2", got)
	}
}

func TestRunInstancesErrors(t *testing.T) {
	p := newTestProvider()
	if _, err := p.RunInstances("nope", 1); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := p.RunInstances("c3.2xlarge", 0); err == nil {
		t.Error("zero count accepted")
	}
	opts := DefaultOptions()
	opts.MaxInstances = 2
	limited := NewProvider(vclock.NewClock(0), opts)
	if _, err := limited.RunInstances("c3.2xlarge", 3); err == nil {
		t.Error("instance cap not enforced")
	}
	vms, err := limited.RunInstances("c3.2xlarge", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := limited.RunInstances("c3.2xlarge", 1); err == nil {
		t.Error("cap allowed third instance")
	}
	limited.Terminate(vms[0])
	if _, err := limited.RunInstances("c3.2xlarge", 1); err != nil {
		t.Errorf("cap should free after terminate: %v", err)
	}
}

func TestRegisterType(t *testing.T) {
	p := newTestProvider()
	if err := p.RegisterType(InstanceType{Name: "x", Cores: 1, MemoryGB: 1, PricePerHour: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LookupType("x"); err != nil {
		t.Error(err)
	}
	if err := p.RegisterType(InstanceType{Name: "", Cores: 1, MemoryGB: 1}); err == nil {
		t.Error("invalid type accepted")
	}
}

func TestFractionalBillingMatchesPaperArithmetic(t *testing.T) {
	// Reconstruct the sample run's ledger shape: 1 VM for the whole
	// 2h47m plus 35 VMs for roughly the assembly window. The paper
	// reports $20.28 ≈ 48.28 c3.2xlarge hours.
	p := newTestProvider()
	head, err := p.RunInstances("c3.2xlarge", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.WaitRunning(head)
	p.Clock().Advance(47*vclock.Minute + 35*vclock.Second) // transfer + preprocess
	workers, err := p.RunInstances("c3.2xlarge", 35)
	if err != nil {
		t.Fatal(err)
	}
	p.WaitRunning(workers)
	p.Clock().Advance(78 * vclock.Minute) // assembly
	p.Terminate(workers...)
	p.Clock().Advance(41 * vclock.Minute) // post-processing on the head VM
	p.Terminate(head...)

	cost := p.TotalCost()
	if cost < 15 || cost > 25 {
		t.Errorf("sample-run cost = $%.2f, want ≈ $20", cost)
	}
	hours := p.TotalInstanceHours()
	if hours < 40 || hours > 55 {
		t.Errorf("instance-hours = %.2f, want ≈ 48", hours)
	}
}

func TestHourlyRoundingBillsMore(t *testing.T) {
	opts := DefaultOptions()
	opts.HourlyRounding = true
	p := NewProvider(vclock.NewClock(0), opts)
	vms, _ := p.RunInstances("r3.2xlarge", 2)
	p.WaitRunning(vms)
	p.Clock().Advance(10 * vclock.Minute)
	p.Terminate(vms...)
	// 11 minutes each → rounded to 1 hour each.
	if got := p.TotalCost(); math.Abs(got-2*0.70) > 1e-9 {
		t.Errorf("hourly cost = %v, want 1.40", got)
	}
}

func TestBillGroupsByType(t *testing.T) {
	p := newTestProvider()
	a, _ := p.RunInstances("c3.2xlarge", 2)
	b, _ := p.RunInstances("r3.2xlarge", 1)
	p.WaitRunning(append(append([]*VM{}, a...), b...))
	p.Clock().Advance(vclock.Hour)
	p.TerminateAll()
	bill := p.Bill()
	if len(bill) != 2 {
		t.Fatalf("bill lines = %d", len(bill))
	}
	if bill[0].Type != "c3.2xlarge" || bill[0].Instances != 2 {
		t.Errorf("line 0 = %+v", bill[0])
	}
	if bill[1].Type != "r3.2xlarge" || bill[1].Instances != 1 {
		t.Errorf("line 1 = %+v", bill[1])
	}
}

func TestUploadFromLocal(t *testing.T) {
	p := newTestProvider()
	// The paper's sample run: 4.4 GB in about 3 min 35 s.
	d := p.UploadFromLocal(4_400_000_000)
	if d < 3*vclock.Minute || d > 4*vclock.Minute {
		t.Errorf("4.4GB upload = %v, want ≈ 3m35s", d)
	}
	if p.Clock().Now() != vclock.Time(0).Add(d) {
		t.Error("upload did not advance clock")
	}
}

func TestDescribe(t *testing.T) {
	p := newTestProvider()
	vms, _ := p.RunInstances("m3.medium", 1)
	got, err := p.Describe(vms[0].ID)
	if err != nil || got != vms[0] {
		t.Errorf("Describe: %v %v", got, err)
	}
	if _, err := p.Describe("i-zzz"); err == nil {
		t.Error("bogus ID accepted")
	}
}

// Property: billing is monotone in time — advancing the clock never
// reduces the bill, and terminating VMs freezes their contribution.
func TestBillingMonotonicityProperty(t *testing.T) {
	f := func(extraMinutes uint8) bool {
		p := newTestProvider()
		vms, _ := p.RunInstances("c3.2xlarge", 2)
		p.WaitRunning(vms)
		p.Clock().Advance(vclock.Duration(extraMinutes) * vclock.Minute)
		before := p.TotalCost()
		p.Clock().Advance(5 * vclock.Minute)
		mid := p.TotalCost()
		p.TerminateAll()
		frozen := p.TotalCost()
		p.Clock().Advance(vclock.Hour)
		after := p.TotalCost()
		return before <= mid && mid <= frozen && math.Abs(frozen-after) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVMStatePendingWindow(t *testing.T) {
	p := newTestProvider()
	vms, _ := p.RunInstances("c3.2xlarge", 1)
	vm := vms[0]
	if vm.State(vm.LaunchedAt) != VMPending {
		t.Error("not pending at launch")
	}
	if vm.State(vm.RunningAt) != VMRunning {
		t.Error("not running at boot completion")
	}
	// Terminate before the boot completes: termination takes effect at
	// boot time at the earliest (billing still covers the boot).
	p.Terminate(vm)
	if vm.TerminatedAt < vm.RunningAt {
		t.Error("terminated before running")
	}
	if VMPending.String() != "pending" || VMRunning.String() != "running" || VMTerminated.String() != "terminated" {
		t.Error("state strings")
	}
}
