package cloud

import (
	"fmt"

	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// MetricBreakerState is the per-backend circuit-breaker state gauge:
// 0 = closed, 1 = half-open, 2 = open, labelled by backend. Both
// tracked backends are registered eagerly so the cardinality is
// constant whether or not the breaker ever trips.
const MetricBreakerState = "rnascale_breaker_state"

// BreakerState is a circuit breaker's position for one backend.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets a probe through after the cooldown; the
	// probe's outcome closes or re-opens the circuit.
	BreakerHalfOpen
	// BreakerOpen refuses the backend until the cooldown elapses.
	BreakerOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerOptions configure the per-backend circuit breaker.
type BreakerOptions struct {
	// Threshold is how many consecutive failures trip a backend open
	// (≤0 defaults to 3).
	Threshold int
	// Cooldown is the virtual time an open backend waits before a
	// half-open probe may go through (≤0 defaults to 30 min).
	Cooldown vclock.Duration
}

// withDefaults fills unset options.
func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * vclock.Minute
	}
	return o
}

// breakerBackends are the purchasing models the breaker tracks.
// On-demand is deliberately absent: it is the fallback the breaker
// routes work *to*, so it must never itself be refused.
var breakerBackends = []Backend{Spot, Serverless}

// backendBreaker is one backend's circuit state.
type backendBreaker struct {
	state    BreakerState
	failures int // consecutive failures while closed
	openedAt vclock.Time
}

// CircuitBreaker is a per-backend circuit breaker over virtual time:
// a wave of correlated failures (spot reclaim storm, serverless
// cold-start storm) trips the backend open, the pipeline routes
// affected stages to the on-demand fallback, and after a virtual-time
// cooldown a half-open probe decides whether the backend recovers.
// Everything is driven by the shared vclock, so breaker decisions
// replay deterministically with the run.
//
// Like the Provider it attaches to, a CircuitBreaker is not safe for
// concurrent use. A nil *CircuitBreaker is "disabled": Allow always
// passes and records are no-ops.
type CircuitBreaker struct {
	clock    *vclock.Clock
	opts     BreakerOptions
	backends map[Backend]*backendBreaker
	metrics  *obs.Registry
}

// NewCircuitBreaker returns a closed breaker over the clock.
func NewCircuitBreaker(clock *vclock.Clock, opts BreakerOptions) *CircuitBreaker {
	cb := &CircuitBreaker{clock: clock, opts: opts.withDefaults(), backends: map[Backend]*backendBreaker{}}
	for _, b := range breakerBackends {
		cb.backends[b] = &backendBreaker{}
	}
	return cb
}

// SetMetrics attaches a registry and eagerly registers the state
// gauge for every tracked backend (constant cardinality); nil
// detaches instrumentation.
func (cb *CircuitBreaker) SetMetrics(reg *obs.Registry) {
	if cb == nil {
		return
	}
	cb.metrics = reg
	for _, b := range breakerBackends {
		cb.gauge(b)
	}
}

// gauge publishes one backend's current state.
func (cb *CircuitBreaker) gauge(b Backend) {
	if cb.metrics == nil {
		return
	}
	cb.metrics.Gauge(MetricBreakerState, "Circuit-breaker state per backend: 0 closed, 1 half-open, 2 open.",
		obs.Labels{"backend": b.String()}).Set(float64(cb.backends[b].state))
}

// tracked resolves a backend's circuit, or nil for untracked backends
// (on-demand) and a nil breaker.
func (cb *CircuitBreaker) tracked(b Backend) *backendBreaker {
	if cb == nil {
		return nil
	}
	return cb.backends[b]
}

// Allow reports whether the backend may take new work now. An open
// circuit whose cooldown has elapsed moves to half-open and lets this
// call through as the probe.
func (cb *CircuitBreaker) Allow(b Backend) bool {
	s := cb.tracked(b)
	if s == nil {
		return true
	}
	if s.state == BreakerOpen {
		if cb.clock.Now() < s.openedAt.Add(cb.opts.Cooldown) {
			return false
		}
		s.state = BreakerHalfOpen
		cb.gauge(b)
	}
	return true
}

// RecordFailure counts one backend failure: Threshold consecutive
// failures trip the circuit open, and a half-open probe failure
// re-opens it immediately.
func (cb *CircuitBreaker) RecordFailure(b Backend) {
	s := cb.tracked(b)
	if s == nil {
		return
	}
	switch s.state {
	case BreakerClosed:
		s.failures++
		if s.failures < cb.opts.Threshold {
			return
		}
	case BreakerOpen:
		return
	}
	s.state = BreakerOpen
	s.failures = 0
	s.openedAt = cb.clock.Now()
	cb.gauge(b)
}

// RecordSuccess resets the failure streak; a half-open probe success
// closes the circuit.
func (cb *CircuitBreaker) RecordSuccess(b Backend) {
	s := cb.tracked(b)
	if s == nil {
		return
	}
	s.failures = 0
	if s.state == BreakerHalfOpen {
		s.state = BreakerClosed
		cb.gauge(b)
	}
}

// State reports a backend's circuit position (closed for untracked
// backends and a nil breaker). It does not advance open→half-open;
// only Allow does.
func (cb *CircuitBreaker) State(b Backend) BreakerState {
	if s := cb.tracked(b); s != nil {
		return s.state
	}
	return BreakerClosed
}
