package cloud

import (
	"fmt"
	"math"

	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// Metric names the provider emits (see the Observability section of
// README.md for the full rnascale_* naming scheme).
const (
	MetricVMBoots         = "rnascale_vm_boots_total"
	MetricVMTerminated    = "rnascale_vm_terminations_total"
	MetricVMHours         = "rnascale_vm_hours_billed_total"
	MetricCostUSD         = "rnascale_cost_usd_total"
	MetricIngressBytes    = "rnascale_ingress_bytes_total"
	MetricBootFailures    = "rnascale_vm_boot_failures_total"
	MetricVMInterruptions = "rnascale_vm_interruptions_total"
	MetricFnInvocations   = "rnascale_fn_invocations_total"
	MetricFnCostUSD       = "rnascale_fn_cost_usd_total"
)

// Boot-failure reasons, the "reason" label on MetricBootFailures. The
// three RunInstances rejection paths are distinct so a fault plan's
// injected failures can never be confused with (or double-counted
// against) account-limit or capacity rejections.
const (
	// BootFailLimit is the account instance-limit rejection
	// (Options.MaxInstances exceeded).
	BootFailLimit = "limit"
	// BootFailCapacity is the FailBoot-hook capacity error.
	BootFailCapacity = "capacity"
	// BootFailInjected is a fault-plan-injected capacity error.
	BootFailInjected = "injected"
)

// SetMetrics attaches a metric registry; the provider then emits
// lifecycle and billing counters on every API call. A nil registry
// detaches instrumentation.
func (p *Provider) SetMetrics(reg *obs.Registry) { p.metrics = reg }

// countBoot records a successful RunInstances call.
func (p *Provider) countBoot(typeName string, count int) {
	if p.metrics == nil {
		return
	}
	p.metrics.Counter(MetricVMBoots, "VMs booted, by instance type.",
		obs.Labels{"type": typeName}).Add(float64(count)) //rnavet:allow metriccard — typeName is drawn from the fixed instance-type catalogue (DefaultTypes), bounded by construction
}

// countBootFailure records a rejected RunInstances call, labelled with
// the rejection path.
func (p *Provider) countBootFailure(typeName, reason string) {
	if p.metrics == nil {
		return
	}
	p.metrics.Counter(MetricBootFailures, "RunInstances calls rejected, by instance type and reason.",
		obs.Labels{"type": typeName, "reason": reason}).Inc() //rnavet:allow metriccard — typeName is from the fixed instance catalogue and every caller passes a literal reason ("quota", "bootfail", "stockout")
}

// countInterruption records an applied VM interruption.
func (p *Provider) countInterruption(vm *VM, class faults.Class) {
	if p.metrics == nil {
		return
	}
	p.metrics.Counter(MetricVMInterruptions, "VMs lost to injected interruptions, by type and fault class.",
		obs.Labels{"type": vm.Type.Name, "class": string(class)}).Inc() //rnavet:allow metriccard — Type.Name is from the fixed instance catalogue; class is the faults.Class enum
}

// countTermination records a VM's final bill when it terminates. The
// hours follow the provider's billing mode (fractional or rounded),
// matching Bill.
func (p *Provider) countTermination(vm *VM) {
	if p.metrics == nil {
		return
	}
	// TerminatedAt can sit past the current clock (a VM killed while
	// still pending bills through its boot); evaluate at whichever is
	// later so the counter matches the final Bill.
	at := vclock.Max(p.clock.Now(), vm.TerminatedAt)
	hours := vm.BilledHours(at)
	if p.opts.HourlyRounding {
		hours = math.Ceil(hours)
	}
	labels := obs.Labels{"type": vm.Type.Name} //rnavet:allow metriccard — Type.Name is drawn from the fixed instance-type catalogue, bounded by construction
	p.metrics.Counter(MetricVMTerminated, "VMs terminated, by instance type.", labels).Inc()
	p.metrics.Counter(MetricVMHours, "Instance-hours billed for terminated VMs.", labels).Add(hours)
	p.metrics.Counter(MetricCostUSD, "USD billed for terminated VMs.", labels).Add(hours * p.vmRate(vm, at))
}

// countInvocation records one serverless function invocation.
func (p *Provider) countInvocation(inv Invocation) {
	if p.metrics == nil {
		return
	}
	start := "warm"
	if inv.Cold {
		start = "cold"
	}
	labels := obs.Labels{"tier": fmt.Sprintf("%ggb", inv.TierGB), "start": start} //rnavet:allow metriccard — TierGB is one of the fixed serverless memory tiers (FnMemoryTiers), so the formatted label set is closed
	p.metrics.Counter(MetricFnInvocations, "Serverless invocations, by memory tier and start kind.", labels).Inc()
	p.metrics.Counter(MetricFnCostUSD, "USD billed for serverless invocations, by memory tier and start kind.", labels).Add(inv.USD)
}

// countIngress records bytes uploaded from the local server.
func (p *Provider) countIngress(n int64) {
	if p.metrics == nil || n <= 0 {
		return
	}
	p.metrics.Counter(MetricIngressBytes, "Bytes uploaded from the local server into the cloud.",
		nil).Add(float64(n))
}
