package cloud

import (
	"testing"

	"rnascale/internal/faults"
	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

// bootFailures reads the boot-failure counter for one reason label.
func bootFailures(reg *obs.Registry, reason string) float64 {
	var total float64
	for _, pt := range reg.Points() {
		if pt.Name == MetricBootFailures && pt.Labels["reason"] == reason {
			total += pt.Value
		}
	}
	return total
}

// TestBootFailureAccountingByReason is the RunInstances audit: the
// three rejection paths (account limit, FailBoot capacity hook,
// injected fault) must land on distinct reason labels, exactly one
// increment per rejection — so a fault plan can never double-count
// against the pre-existing paths.
func TestBootFailureAccountingByReason(t *testing.T) {
	plan, err := faults.ParseSpec("bootfail:n=2")
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.MaxInstances = 3
	opts.FailBoot = func(n int) bool { return n == 3 }
	opts.Faults = faults.NewInjector(plan, 1, clock)
	p := NewProvider(clock, opts)
	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	opts.Faults.SetMetrics(reg)

	// Boot #1 succeeds.
	if _, err := p.RunInstances("c3.2xlarge", 1); err != nil {
		t.Fatalf("boot #1: %v", err)
	}
	// Boot #2 hits the injected bootfail:n=2 rule.
	if _, err := p.RunInstances("c3.2xlarge", 1); err == nil {
		t.Fatal("boot #2 succeeded despite bootfail:n=2")
	}
	// Boot #3 hits the FailBoot capacity hook.
	if _, err := p.RunInstances("c3.2xlarge", 1); err == nil {
		t.Fatal("boot #3 succeeded despite FailBoot")
	}
	// A 4-VM request exceeds MaxInstances=3 (1 active + 4 > 3). The
	// cap check runs before the boot ordinal advances, so this is the
	// limit path, not a FailBoot/injected consultation.
	if _, err := p.RunInstances("c3.2xlarge", 4); err == nil {
		t.Fatal("cap-exceeded request succeeded")
	}

	for reason, want := range map[string]float64{
		BootFailLimit:    1,
		BootFailCapacity: 1,
		BootFailInjected: 1,
	} {
		if got := bootFailures(reg, reason); got != want {
			t.Errorf("boot_failures{reason=%q} = %v, want %v", reason, got, want)
		}
	}
	// The injected failure must also be the only fault counted.
	var injected float64
	for _, pt := range reg.Points() {
		if pt.Name == faults.MetricFaultsInjected {
			injected += pt.Value
		}
	}
	if injected != 1 {
		t.Errorf("faults_injected_total = %v, want 1", injected)
	}
}

// TestCapExceededDoesNotConsumeBootOrdinal pins the audited behaviour:
// a cap-exceeded rejection happens before p.boots advances, so it must
// not shift which later boot an ordinal-keyed fault rule hits.
func TestCapExceededDoesNotConsumeBootOrdinal(t *testing.T) {
	plan, _ := faults.ParseSpec("bootfail:n=2")
	clock := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.MaxInstances = 2
	opts.Faults = faults.NewInjector(plan, 1, clock)
	p := NewProvider(clock, opts)

	if _, err := p.RunInstances("c3.2xlarge", 1); err != nil { // boot #1
		t.Fatal(err)
	}
	if _, err := p.RunInstances("c3.2xlarge", 5); err == nil { // cap: no ordinal
		t.Fatal("cap-exceeded request succeeded")
	}
	// This is still boot #2 and must hit the n=2 rule.
	if _, err := p.RunInstances("c3.2xlarge", 1); err == nil {
		t.Fatal("boot #2 dodged bootfail:n=2 after a cap rejection")
	}
}

// TestInterruptionTerminatesAndBillsToCrashTime checks that a crashed
// VM stops billing at the interruption time even when the clock has
// moved past it before anyone notices the loss, and that a later
// Terminate of the same VM is clamped to the crash.
func TestInterruptionTerminatesAndBillsToCrashTime(t *testing.T) {
	plan, _ := faults.ParseSpec("crash:at=3600,vm=1")
	clock := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.BootLatency = 0
	opts.Faults = faults.NewInjector(plan, 1, clock)
	p := NewProvider(clock, opts)

	vms, err := p.RunInstances("c3.2xlarge", 1)
	if err != nil {
		t.Fatal(err)
	}
	vm := vms[0]
	iv, ok := p.InterruptionFor(vm.ID)
	if !ok || iv.At != 3600 || iv.Class != faults.ClassCrash {
		t.Fatalf("InterruptionFor = %+v, %v; want crash at 3600", iv, ok)
	}

	// The run discovers the loss two hours in.
	clock.AdvanceTo(7200)
	pend := p.PendingInterruptions(clock.Now())
	if len(pend) != 1 || pend[0] != iv {
		t.Fatalf("PendingInterruptions = %v", pend)
	}
	if !p.ApplyInterruption(iv) {
		t.Fatal("ApplyInterruption returned false")
	}
	if vm.State(clock.Now()) != VMTerminated {
		t.Fatalf("VM state %v after interruption", vm.State(clock.Now()))
	}
	if vm.InterruptReason != string(faults.ClassCrash) || vm.InterruptedAt != 3600 {
		t.Fatalf("interrupt record: reason=%q at=%v", vm.InterruptReason, vm.InterruptedAt)
	}
	if got := vm.BilledHours(clock.Now()); got != 1 {
		t.Fatalf("crashed VM billed %v hours, want 1 (launch to crash)", got)
	}
	// Re-applying is a no-op; so is a plain Terminate afterwards.
	if p.ApplyInterruption(iv) {
		t.Fatal("second ApplyInterruption returned true")
	}
	p.Terminate(vm)
	if vm.TerminatedAt != 3600 {
		t.Fatalf("Terminate moved TerminatedAt to %v", vm.TerminatedAt)
	}
}

// TestTerminateClampsToStruckInterruption: cluster teardown calling
// plain Terminate on a VM whose interruption already struck must bill
// to the interruption time, not teardown time.
func TestTerminateClampsToStruckInterruption(t *testing.T) {
	plan, _ := faults.ParseSpec("crash:at=1800,vm=1")
	clock := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.BootLatency = 0
	opts.Faults = faults.NewInjector(plan, 1, clock)
	p := NewProvider(clock, opts)
	vms, err := p.RunInstances("c3.2xlarge", 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.AdvanceTo(7200)
	p.Terminate(vms[0]) // nobody applied the interruption first
	if vms[0].TerminatedAt != 1800 {
		t.Fatalf("TerminatedAt = %v, want clamp to crash at 1800", vms[0].TerminatedAt)
	}
	if vms[0].InterruptReason != string(faults.ClassCrash) {
		t.Fatalf("InterruptReason = %q", vms[0].InterruptReason)
	}
	if got := p.TotalInstanceHours(); got != 0.5 {
		t.Fatalf("TotalInstanceHours = %v, want 0.5", got)
	}
}

// TestReclaimNotices checks the advance-warning window of a
// reclamation: invisible before NoticeAt, visible between notice and
// impact, gone once applied.
func TestReclaimNotices(t *testing.T) {
	plan, _ := faults.ParseSpec("reclaim:at=1000,vm=1")
	clock := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.BootLatency = 0
	opts.Faults = faults.NewInjector(plan, 1, clock)
	p := NewProvider(clock, opts)
	if _, err := p.RunInstances("c3.2xlarge", 1); err != nil {
		t.Fatal(err)
	}
	iv := p.Interruptions()[0]
	if iv.NoticeAt != 1000-vclock.Time(faults.DefaultReclaimNotice) {
		t.Fatalf("NoticeAt = %v, want %v", iv.NoticeAt, 1000-vclock.Time(faults.DefaultReclaimNotice))
	}
	if n := p.ReclaimNotices(800); len(n) != 0 {
		t.Fatalf("notice visible at t=800: %v", n)
	}
	if n := p.ReclaimNotices(900); len(n) != 1 {
		t.Fatalf("no notice at t=900")
	}
	clock.AdvanceTo(1200)
	p.ApplyInterruption(iv)
	if n := p.ReclaimNotices(950); len(n) != 0 {
		t.Fatalf("applied interruption still listed as notice")
	}
}

// TestDegradedTransfer checks slowxfer stretches the upload clock.
func TestDegradedTransfer(t *testing.T) {
	plan, _ := faults.ParseSpec("slowxfer:x=0.5")
	clock := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.Faults = faults.NewInjector(plan, 1, clock)
	p := NewProvider(clock, opts)

	base := opts.Ingress.Transfer(1e9)
	got := p.UploadFromLocal(1e9)
	if got != 2*base {
		t.Fatalf("degraded upload took %v, want %v (2x)", got, 2*base)
	}
	if clock.Now() != vclock.Time(got) {
		t.Fatalf("clock at %v after upload of %v", clock.Now(), got)
	}
}
