package cloud

import (
	"strings"
	"testing"

	"rnascale/internal/obs"
	"rnascale/internal/vclock"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := vclock.NewClock(0)
	cb := NewCircuitBreaker(clk, BreakerOptions{Threshold: 3, Cooldown: 10 * vclock.Minute})

	for i := 0; i < 2; i++ {
		cb.RecordFailure(Spot)
		if !cb.Allow(Spot) || cb.State(Spot) != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed and allowed", i+1, cb.State(Spot))
		}
	}
	cb.RecordFailure(Spot)
	if cb.State(Spot) != BreakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", cb.State(Spot))
	}
	if cb.Allow(Spot) {
		t.Fatal("open breaker allowed traffic before cooldown")
	}
	// Failures while open are absorbed without resetting openedAt.
	cb.RecordFailure(Spot)
	if cb.State(Spot) != BreakerOpen {
		t.Fatalf("failure while open: state %v, want open", cb.State(Spot))
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := vclock.NewClock(0)
	cb := NewCircuitBreaker(clk, BreakerOptions{Threshold: 2})
	cb.RecordFailure(Spot)
	cb.RecordSuccess(Spot)
	cb.RecordFailure(Spot)
	if cb.State(Spot) != BreakerClosed {
		t.Fatalf("interleaved success did not reset the streak: state %v", cb.State(Spot))
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	cool := 10 * vclock.Minute
	for _, tc := range []struct {
		name        string
		probePasses bool
		want        BreakerState
	}{
		{"probe-success-closes", true, BreakerClosed},
		{"probe-failure-reopens", false, BreakerOpen},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := vclock.NewClock(0)
			cb := NewCircuitBreaker(clk, BreakerOptions{Threshold: 1, Cooldown: cool})
			cb.RecordFailure(Spot)
			if cb.State(Spot) != BreakerOpen {
				t.Fatal("threshold 1 did not trip on first failure")
			}
			// Mid-cooldown the circuit stays shut.
			clk.Advance(cool / 2)
			if cb.Allow(Spot) {
				t.Fatal("allowed mid-cooldown")
			}
			clk.Advance(cool)
			if !cb.Allow(Spot) {
				t.Fatal("cooldown elapsed but probe refused")
			}
			if cb.State(Spot) != BreakerHalfOpen {
				t.Fatalf("state %v after probe admission, want half-open", cb.State(Spot))
			}
			if tc.probePasses {
				cb.RecordSuccess(Spot)
			} else {
				cb.RecordFailure(Spot)
			}
			if cb.State(Spot) != tc.want {
				t.Fatalf("after probe: state %v, want %v", cb.State(Spot), tc.want)
			}
		})
	}
}

func TestBreakerBackendsIndependent(t *testing.T) {
	clk := vclock.NewClock(0)
	cb := NewCircuitBreaker(clk, BreakerOptions{Threshold: 1})
	cb.RecordFailure(Spot)
	if cb.State(Spot) != BreakerOpen {
		t.Fatal("spot did not trip")
	}
	if cb.State(Serverless) != BreakerClosed || !cb.Allow(Serverless) {
		t.Fatal("spot trip leaked into serverless")
	}
}

// On-demand is the fallback the breaker routes to; it must never be
// refused, no matter how many failures are recorded against it.
func TestBreakerOnDemandUntracked(t *testing.T) {
	clk := vclock.NewClock(0)
	cb := NewCircuitBreaker(clk, BreakerOptions{Threshold: 1})
	cb.RecordFailure(OnDemand)
	cb.RecordFailure(OnDemand)
	if !cb.Allow(OnDemand) || cb.State(OnDemand) != BreakerClosed {
		t.Fatal("on-demand became refusable")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var cb *CircuitBreaker
	if !cb.Allow(Spot) {
		t.Fatal("nil breaker refused traffic")
	}
	cb.RecordFailure(Spot)
	cb.RecordSuccess(Spot)
	cb.SetMetrics(obs.NewRegistry())
	if cb.State(Spot) != BreakerClosed {
		t.Fatal("nil breaker reported a non-closed state")
	}
}

// The state gauge is registered eagerly for both tracked backends and
// follows transitions with values 0/1/2; its cardinality never moves.
func TestBreakerStateGauge(t *testing.T) {
	clk := vclock.NewClock(0)
	cb := NewCircuitBreaker(clk, BreakerOptions{Threshold: 1, Cooldown: vclock.Minute})
	reg := obs.NewRegistry()
	cb.SetMetrics(reg)

	series := func() map[string]float64 {
		out := map[string]float64{}
		for _, p := range reg.Points() {
			if p.Name == MetricBreakerState {
				out[p.Labels["backend"]] = p.Value
			}
		}
		return out
	}

	got := series()
	if len(got) != 2 || got["spot"] != 0 || got["serverless"] != 0 {
		t.Fatalf("initial gauge series %v, want spot=0 serverless=0", got)
	}
	cb.RecordFailure(Spot)
	if got = series(); got["spot"] != 2 {
		t.Fatalf("open gauge %v, want spot=2", got)
	}
	clk.Advance(2 * vclock.Minute)
	cb.Allow(Spot)
	if got = series(); got["spot"] != 1 {
		t.Fatalf("half-open gauge %v, want spot=1", got)
	}
	cb.RecordSuccess(Spot)
	if got = series(); got["spot"] != 0 {
		t.Fatalf("closed gauge %v, want spot=0", got)
	}
	if len(got) != 2 {
		t.Fatalf("gauge cardinality moved to %d series", len(got))
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(9): "BreakerState(9)",
	} {
		if got := s.String(); !strings.Contains(got, want) {
			t.Errorf("state %d: %q, want %q", int(s), got, want)
		}
	}
}
