package cloud

import (
	"fmt"
	"sort"

	"rnascale/internal/vclock"
)

// ServerlessOptions parameterize the function-as-a-service backend.
type ServerlessOptions struct {
	// MemoryTiersGB are the purchasable function sizes, ascending; an
	// invocation bills at the smallest tier holding its peak memory.
	// Empty defaults to {1, 2, 4, 8, 16}.
	MemoryTiersGB []float64
	// PricePerGBHour is the compute rate (default $0.06/GB-hour, the
	// Lambda-era $0.0000166667 per GB-second).
	PricePerGBHour float64
	// PricePerInvocation is the flat per-request fee (default $2e-7).
	PricePerInvocation float64
	// ColdStart/WarmStart are the invocation latencies without and with
	// a warm execution environment (defaults 20 s and 0.2 s — the
	// "resource-intensive aligner in FaaS" papers measure cold starts
	// in the tens of seconds for large packages).
	ColdStart, WarmStart vclock.Duration
	// KeepWarm is how long a freed environment stays reusable
	// (default 15 min).
	KeepWarm vclock.Duration
	// MaxDuration is the hard per-invocation duration cap (default
	// 15 min); work predicted to run longer must be split.
	MaxDuration vclock.Duration
}

// DefaultServerlessOptions returns the calibrated FaaS defaults.
func DefaultServerlessOptions() ServerlessOptions {
	return ServerlessOptions{
		MemoryTiersGB:      []float64{1, 2, 4, 8, 16},
		PricePerGBHour:     0.06,
		PricePerInvocation: 2e-7,
		ColdStart:          20 * vclock.Second,
		WarmStart:          vclock.Duration(0.2),
		KeepWarm:           15 * vclock.Minute,
		MaxDuration:        15 * vclock.Minute,
	}
}

// WithDefaults returns the options with zero fields normalized to the
// calibrated defaults — exactly what NewFaas applies internally, so
// planners can price invocations without building a backend.
func (o ServerlessOptions) WithDefaults() ServerlessOptions { return o.withDefaults() }

// withDefaults normalizes zero fields.
func (o ServerlessOptions) withDefaults() ServerlessOptions {
	d := DefaultServerlessOptions()
	if len(o.MemoryTiersGB) == 0 {
		o.MemoryTiersGB = d.MemoryTiersGB
	}
	if o.PricePerGBHour <= 0 {
		o.PricePerGBHour = d.PricePerGBHour
	}
	if o.PricePerInvocation <= 0 {
		o.PricePerInvocation = d.PricePerInvocation
	}
	if o.ColdStart <= 0 {
		o.ColdStart = d.ColdStart
	}
	if o.WarmStart <= 0 {
		o.WarmStart = d.WarmStart
	}
	if o.KeepWarm <= 0 {
		o.KeepWarm = d.KeepWarm
	}
	if o.MaxDuration <= 0 {
		o.MaxDuration = d.MaxDuration
	}
	sort.Float64s(o.MemoryTiersGB)
	return o
}

// MaxTierGB reports the largest purchasable function size.
func (o ServerlessOptions) MaxTierGB() float64 {
	o = o.withDefaults()
	return o.MemoryTiersGB[len(o.MemoryTiersGB)-1]
}

// TierFor reports the smallest tier holding memGB, or false when the
// demand exceeds the largest tier.
func (o ServerlessOptions) TierFor(memGB float64) (float64, bool) {
	o = o.withDefaults()
	for _, t := range o.MemoryTiersGB {
		if memGB <= t {
			return t, true
		}
	}
	return 0, false
}

// InvocationUSD prices one invocation of dur at a tier.
func (o ServerlessOptions) InvocationUSD(tierGB float64, dur vclock.Duration) float64 {
	o = o.withDefaults()
	return o.PricePerInvocation + tierGB*dur.Hours()*o.PricePerGBHour
}

// Invocation is the outcome of one function invocation.
type Invocation struct {
	// Cold reports whether a new execution environment was provisioned.
	Cold bool
	// Latency is the start overhead (cold or warm) preceding Duration.
	Latency vclock.Duration
	// TierGB is the billed memory tier.
	TierGB float64
	// USD is the invocation's bill (flat fee plus GB-hours).
	USD float64
}

// Faas is the function backend's execution-environment pool and
// billing ledger. Environment reuse is deterministic: an invocation
// reuses the most recently freed eligible environment of its function,
// so the cold/warm sequence is a pure function of the invocation
// sequence.
type Faas struct {
	clock *vclock.Clock
	opts  ServerlessOptions
	// pools maps function name → environment free-at times.
	pools map[string][]vclock.Time
	// ledger aggregates billing per tier.
	ledger map[float64]*serverlessLedger
	cold   int
	warm   int
}

type serverlessLedger struct {
	invocations int
	gbHours     float64
	usd         float64
}

// NewFaas builds the backend over a clock.
func NewFaas(clock *vclock.Clock, opts ServerlessOptions) *Faas {
	return &Faas{
		clock:  clock,
		opts:   opts.withDefaults(),
		pools:  map[string][]vclock.Time{},
		ledger: map[float64]*serverlessLedger{},
	}
}

// Options reports the normalized options.
func (s *Faas) Options() ServerlessOptions { return s.opts }

// Invoke runs one function invocation of `dur` virtual compute with
// `memGB` peak memory, starting now. The clock is NOT advanced (the
// caller owns concurrency and wall-time accounting); the invocation's
// latency, tier and cost are returned. Durations above MaxDuration
// are rejected — callers split the work instead.
func (s *Faas) Invoke(fn string, memGB float64, dur vclock.Duration) (Invocation, error) {
	if dur < 0 {
		return Invocation{}, fmt.Errorf("cloud: serverless invocation with negative duration %v", dur)
	}
	if dur > s.opts.MaxDuration {
		return Invocation{}, fmt.Errorf("cloud: serverless invocation of %v exceeds the %v duration cap (split the unit)",
			dur, s.opts.MaxDuration)
	}
	tier, ok := s.opts.TierFor(memGB)
	if !ok {
		return Invocation{}, fmt.Errorf("cloud: serverless peak memory %.1f GB exceeds the largest %.0f GB tier",
			memGB, s.opts.MaxTierGB())
	}
	now := s.clock.Now()
	inv := Invocation{TierGB: tier}

	// Reuse the most recently freed eligible environment (ties by
	// lowest index); expired environments are dropped.
	pool := s.pools[fn][:0]
	reuse := -1
	for _, freeAt := range s.pools[fn] {
		if freeAt.Add(s.opts.KeepWarm) < now {
			continue // expired
		}
		pool = append(pool, freeAt)
		if freeAt <= now && (reuse < 0 || freeAt > pool[reuse]) {
			reuse = len(pool) - 1
		}
	}
	if reuse >= 0 {
		inv.Latency = s.opts.WarmStart
		s.warm++
	} else {
		inv.Cold = true
		inv.Latency = s.opts.ColdStart
		pool = append(pool, 0)
		reuse = len(pool) - 1
		s.cold++
	}
	pool[reuse] = now.Add(inv.Latency + dur)
	s.pools[fn] = pool

	inv.USD = s.opts.InvocationUSD(tier, dur)
	led := s.ledger[tier]
	if led == nil {
		led = &serverlessLedger{}
		s.ledger[tier] = led
	}
	led.invocations++
	led.gbHours += tier * dur.Hours()
	led.usd += inv.USD
	return inv, nil
}

// Invocations reports total, cold and warm invocation counts.
func (s *Faas) Invocations() (total, cold, warm int) {
	return s.cold + s.warm, s.cold, s.warm
}

// TotalUSD sums the ledger.
func (s *Faas) TotalUSD() float64 {
	var usd float64
	for _, led := range s.ledger {
		usd += led.usd
	}
	return usd
}

// billLines renders the ledger as billing rows, one per tier (sorted),
// with Instances = invocation count and InstanceHours = GB-hours.
func (s *Faas) billLines() []BillLine {
	tiers := make([]float64, 0, len(s.ledger))
	for t := range s.ledger {
		tiers = append(tiers, t)
	}
	sort.Float64s(tiers)
	out := make([]BillLine, 0, len(tiers))
	for _, t := range tiers {
		led := s.ledger[t]
		out = append(out, BillLine{
			Type:          fmt.Sprintf("fn-%ggb", t),
			Backend:       Serverless.String(),
			Instances:     led.invocations,
			InstanceHours: led.gbHours,
			USD:           led.usd,
		})
	}
	return out
}
