package cloud

import (
	"math"
	"testing"

	"rnascale/internal/vclock"
)

func TestBilledHoursEdges(t *testing.T) {
	clk := vclock.NewClock(0)
	p := NewProvider(clk, DefaultOptions())
	clk.Advance(100 * vclock.Second)
	vms, err := p.RunInstances("c3.2xlarge", 1)
	if err != nil {
		t.Fatal(err)
	}
	vm := vms[0]
	// Before launch: zero, not negative.
	if got := vm.BilledHours(0); got != 0 {
		t.Errorf("pre-launch hours = %v", got)
	}
	// At launch: zero.
	if got := vm.BilledHours(vm.LaunchedAt); got != 0 {
		t.Errorf("at-launch hours = %v", got)
	}
	// Billing runs from launch (not boot): 30 min after launch = 0.5 h
	// even though the first 60 s were pending.
	if got := vm.BilledHours(vm.LaunchedAt.Add(30 * vclock.Minute)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mid-life hours = %v, want 0.5", got)
	}
	// Partial hours stay fractional in the default billing mode.
	if got := vm.BilledHours(vm.LaunchedAt.Add(90 * vclock.Minute)); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("90 min = %v hours, want 1.5", got)
	}
	// After termination the meter stops.
	clk.AdvanceTo(vm.LaunchedAt.Add(vclock.Hour))
	p.Terminate(vm)
	if got := vm.BilledHours(vm.TerminatedAt.Add(24 * vclock.Hour)); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-termination hours = %v, want 1", got)
	}
}

func TestHourlyRoundingBilling(t *testing.T) {
	clk := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.HourlyRounding = true
	p := NewProvider(clk, opts)
	vms, err := p.RunInstances("c3.2xlarge", 1)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(61 * vclock.Minute) // 1 h 1 min → rounds to 2 h
	p.Terminate(vms[0])
	lines := p.Bill()
	if len(lines) != 1 || lines[0].InstanceHours != 2 {
		t.Fatalf("rounded bill = %+v, want 2 instance-hours", lines)
	}
	if math.Abs(lines[0].USD-2*0.42) > 1e-12 {
		t.Errorf("rounded USD = %v", lines[0].USD)
	}
}

func TestSpotBillingTracksMarketPrice(t *testing.T) {
	// A constant-price market bills exactly price × frac × hours.
	clk := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.Spot = &SpotOptions{Seed: 6, InitialFrac: 0.4, FloorFrac: 0.399, CeilFrac: 0.401, Volatility: 1e-9}
	p := NewProvider(clk, opts)
	vms, err := p.RunInstancesOn("c3.2xlarge", 1, Spot)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * vclock.Hour)
	p.Terminate(vms[0])
	lines := p.Bill()
	if len(lines) != 1 {
		t.Fatalf("bill = %+v", lines)
	}
	l := lines[0]
	if l.Type != "c3.2xlarge" || l.Backend != "spot" {
		t.Errorf("line %+v", l)
	}
	want := 2 * 0.42 * 0.4
	if math.Abs(l.USD-want)/want > 2e-3 { // walk wiggles within ±0.001/0.4
		t.Errorf("spot bill %v, want ≈%v", l.USD, want)
	}
	if od := 2 * 0.42; l.USD >= od {
		t.Errorf("spot bill %v not cheaper than on-demand %v", l.USD, od)
	}
}

func TestSpotBillingIntegratesPriceChanges(t *testing.T) {
	// The effective rate must equal the market's own AvgFrac over the
	// VM's lifetime — i.e. mid-lifetime price changes are integrated,
	// not sampled at termination.
	clk := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.Spot = &SpotOptions{Seed: 17, Volatility: 0.25, InitialFrac: 0.5}
	p := NewProvider(clk, opts)
	vms, err := p.RunInstancesOn("c3.2xlarge", 1, Spot)
	if err != nil {
		t.Fatal(err)
	}
	vm := vms[0]
	clk.Advance(3 * vclock.Hour)
	p.Terminate(vm)
	m := p.SpotMarket()
	frac := m.AvgFrac(vm.AZ, vm.LaunchedAt, vm.TerminatedAt)
	want := vm.BilledHours(clk.Now()) * 0.42 * frac
	var total float64
	for _, l := range p.Bill() {
		total += l.USD
	}
	if math.Abs(total-want) > 1e-12 {
		t.Errorf("integrated spot bill %v, want %v", total, want)
	}
	// With 25% per-step volatility the start and end prices differ, so
	// the test really exercises a changing price.
	if a, b := m.PriceFrac(vm.AZ, vm.LaunchedAt), m.PriceFrac(vm.AZ, vm.TerminatedAt); a == b {
		t.Errorf("price did not move over 3 h (%v)", a)
	}
}

func TestMixedBackendBillLines(t *testing.T) {
	clk := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.Spot = &SpotOptions{Seed: 6}
	opts.Serverless = &ServerlessOptions{}
	p := NewProvider(clk, opts)
	if _, err := p.RunInstances("c3.2xlarge", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunInstancesOn("c3.2xlarge", 1, Spot); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("f", 1, vclock.Minute); err != nil {
		t.Fatal(err)
	}
	clk.Advance(vclock.Hour)
	lines := p.Bill()
	if len(lines) != 3 {
		t.Fatalf("bill = %+v, want on-demand + spot + fn lines", lines)
	}
	// On-demand first (empty backend sorts before "spot"), then spot,
	// then the serverless tier lines.
	if lines[0].Backend != "" || lines[0].Instances != 2 {
		t.Errorf("line 0 = %+v, want on-demand pair", lines[0])
	}
	if lines[1].Backend != "spot" || lines[1].Instances != 1 {
		t.Errorf("line 1 = %+v, want spot single", lines[1])
	}
	if lines[2].Type != "fn-1gb" || lines[2].Backend != "serverless" {
		t.Errorf("line 2 = %+v, want fn tier", lines[2])
	}
	var sum float64
	for _, l := range lines {
		sum += l.USD
	}
	if math.Abs(sum-p.TotalCost()) > 1e-12 {
		t.Errorf("TotalCost %v != line sum %v", p.TotalCost(), sum)
	}
}
