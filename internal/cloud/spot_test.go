package cloud

import (
	"math"
	"strings"
	"testing"

	"rnascale/internal/faults"
	"rnascale/internal/vclock"
)

func newSpotProvider(seed uint64) *Provider {
	opts := DefaultOptions()
	opts.Spot = &SpotOptions{Seed: seed}
	return NewProvider(vclock.NewClock(0), opts)
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		err  bool
	}{
		{"", OnDemand, false},
		{"on-demand", OnDemand, false},
		{"OnDemand", OnDemand, false},
		{"od", OnDemand, false},
		{" spot ", Spot, false},
		{"serverless", Serverless, false},
		{"fn", Serverless, false},
		{"faas", Serverless, false},
		{"preemptible", OnDemand, true},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, b := range []Backend{OnDemand, Spot, Serverless} {
		rt, err := ParseBackend(b.String())
		if err != nil || rt != b {
			t.Errorf("round-trip %v → %v, %v", b, rt, err)
		}
	}
	if s := Backend(42).String(); s != "Backend(42)" {
		t.Errorf("unknown backend string %q", s)
	}
}

func TestSpotMarketDeterminism(t *testing.T) {
	// Same seed → identical walks, regardless of query order.
	m1 := NewSpotMarket(SpotOptions{Seed: 7})
	m2 := NewSpotMarket(SpotOptions{Seed: 7})
	// Query m1 forward, m2 backward, interleaving AZs.
	for i := 0; i < 200; i++ {
		_ = m1.PriceFrac("a", vclock.Time(float64(i)*300))
	}
	for i := 199; i >= 0; i-- {
		_ = m2.PriceFrac("b", vclock.Time(float64(i)*300))
	}
	for i := 0; i < 200; i++ {
		at := vclock.Time(float64(i) * 300)
		for _, az := range m1.AZs() {
			if a, b := m1.PriceFrac(az, at), m2.PriceFrac(az, at); a != b {
				t.Fatalf("walk diverged at az=%s step=%d: %v vs %v", az, i, a, b)
			}
		}
	}
	// A different seed produces a different walk somewhere.
	m3 := NewSpotMarket(SpotOptions{Seed: 8})
	same := true
	for i := 0; i < 50; i++ {
		if m3.PriceFrac("a", vclock.Time(float64(i)*300)) != m1.PriceFrac("a", vclock.Time(float64(i)*300)) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical walks")
	}
}

func TestSpotWalkStaysClamped(t *testing.T) {
	m := NewSpotMarket(SpotOptions{Seed: 3})
	o := m.Options()
	for _, az := range m.AZs() {
		for i := 0; i < 2000; i++ {
			f := m.fracAt(az, i)
			if f < o.FloorFrac || f > o.CeilFrac {
				t.Fatalf("az=%s step=%d frac %v outside [%v, %v]", az, i, f, o.FloorFrac, o.CeilFrac)
			}
		}
	}
}

func TestSpotAvgFrac(t *testing.T) {
	m := NewSpotMarket(SpotOptions{Seed: 11})
	step := m.Options().Step
	// Window within one step bills at that step's price.
	if got, want := m.AvgFrac("a", 10, 20), m.PriceFrac("a", 10); got != want {
		t.Errorf("sub-step AvgFrac = %v, want %v", got, want)
	}
	// Degenerate window.
	if got, want := m.AvgFrac("a", 50, 50), m.PriceFrac("a", 50); got != want {
		t.Errorf("empty-window AvgFrac = %v, want %v", got, want)
	}
	// A window spanning steps equals the duration-weighted mean.
	from := vclock.Time(float64(step) * 0.5)
	to := vclock.Time(float64(step) * 3.25)
	want := (m.fracAt("a", 0)*0.5 + m.fracAt("a", 1) + m.fracAt("a", 2) + m.fracAt("a", 3)*0.25) / 2.75
	if got := m.AvgFrac("a", from, to); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgFrac = %v, want %v", got, want)
	}
	// The average sits inside the walk's clamp.
	o := m.Options()
	if avg := m.AvgFrac("b", 0, vclock.Time(float64(step)*100)); avg < o.FloorFrac || avg > o.CeilFrac {
		t.Errorf("long-window average %v outside clamp", avg)
	}
}

func TestSpotCheapestAZDeterministic(t *testing.T) {
	m1 := NewSpotMarket(SpotOptions{Seed: 5})
	m2 := NewSpotMarket(SpotOptions{Seed: 5})
	for i := 0; i < 100; i++ {
		at := vclock.Time(float64(i) * 700)
		a, b := m1.CheapestAZ(at), m2.CheapestAZ(at)
		if a != b {
			t.Fatalf("CheapestAZ diverged at %v: %s vs %s", at, a, b)
		}
		// It really is the minimum.
		for _, az := range m1.AZs() {
			if m1.PriceFrac(az, at) < m1.PriceFrac(a, at) {
				t.Fatalf("az %s cheaper than chosen %s at %v", az, a, at)
			}
		}
	}
}

func TestSpotReclaimCoupledToPrice(t *testing.T) {
	// With the walk pinned to the floor (below the knee), reclaims never
	// fire; pinned to the ceiling, they fire quickly.
	calm := NewSpotMarket(SpotOptions{Seed: 1, InitialFrac: 0.2, CeilFrac: 0.201, FloorFrac: 0.199, ReclaimKnee: 0.5})
	if _, ok := calm.ReclaimAt("i-000001", "a", 0); ok {
		t.Error("reclaim fired with price below the knee")
	}
	hot := NewSpotMarket(SpotOptions{Seed: 1, InitialFrac: 1.0, FloorFrac: 0.99, CeilFrac: 1.01, ReclaimKnee: 0.5, MaxReclaimPerStep: 0.9})
	at, ok := hot.ReclaimAt("i-000001", "a", 0)
	if !ok {
		t.Fatal("no reclaim with price pinned at ceiling and p=0.9/step")
	}
	if at <= 0 || at > vclock.Time(0).Add(hot.Options().Horizon).Add(hot.Options().Step) {
		t.Errorf("reclaim at %v outside (0, horizon]", at)
	}
	// Deterministic per (seed, vmID): same market state gives same draw.
	hot2 := NewSpotMarket(SpotOptions{Seed: 1, InitialFrac: 1.0, FloorFrac: 0.99, CeilFrac: 1.01, ReclaimKnee: 0.5, MaxReclaimPerStep: 0.9})
	if at2, ok2 := hot2.ReclaimAt("i-000001", "a", 0); !ok2 || at2 != at {
		t.Errorf("replayed reclaim %v,%v; want %v,true", at2, ok2, at)
	}
	// Different VM IDs draw independently.
	if at3, _ := hot.ReclaimAt("i-000002", "a", 0); at3 == at {
		// Not impossible, but with p=0.9/step both firing on the same
		// step is the common case; check a weaker property instead:
		// the draws come from distinct streams.
		r1 := hot.rng.Split("reclaim", "i-000001", "1").Uint64()
		r2 := hot.rng.Split("reclaim", "i-000002", "1").Uint64()
		if r1 == r2 {
			t.Error("reclaim streams not split by VM ID")
		}
	}
}

func TestSpotExpectedReclaims(t *testing.T) {
	m := NewSpotMarket(SpotOptions{Seed: 2, InitialFrac: 1.0, FloorFrac: 0.99, CeilFrac: 1.01, ReclaimKnee: 0.5, MaxReclaimPerStep: 0.1})
	if got := m.ExpectedReclaims("a", 100, 100); got != 0 {
		t.Errorf("empty window expectation = %v", got)
	}
	step := m.Options().Step
	// Ten full steps above the knee ≈ 10 × ~0.1 (walk hovers at ~1.0,
	// near the top of the knee→ceiling ramp).
	e := m.ExpectedReclaims("a", 0, vclock.Time(float64(step)*10))
	if e < 0.5 || e > 1.1 {
		t.Errorf("expectation over 10 hot steps = %v, want ≈1", e)
	}
	// RNG-free: computing it twice (and on a fresh same-seed market)
	// gives the same value, and it does not disturb reclaim draws.
	m2 := NewSpotMarket(SpotOptions{Seed: 2, InitialFrac: 1.0, FloorFrac: 0.99, CeilFrac: 1.01, ReclaimKnee: 0.5, MaxReclaimPerStep: 0.1})
	at1, ok1 := m.ReclaimAt("i-000009", "a", 0)
	at2, ok2 := m2.ReclaimAt("i-000009", "a", 0)
	if ok1 != ok2 || at1 != at2 {
		t.Error("ExpectedReclaims perturbed reclaim draws")
	}
	if e2 := m2.ExpectedReclaims("a", 0, vclock.Time(float64(step)*10)); e2 != e {
		t.Errorf("expectation not reproducible: %v vs %v", e2, e)
	}
}

func TestRunInstancesOnSpot(t *testing.T) {
	p := newSpotProvider(21)
	vms, err := p.RunInstancesOn("c3.2xlarge", 2, Spot)
	if err != nil {
		t.Fatal(err)
	}
	want := p.SpotMarket().CheapestAZ(0)
	for _, vm := range vms {
		if vm.Backend != Spot {
			t.Errorf("%s backend %v", vm.ID, vm.Backend)
		}
		if vm.AZ != want {
			t.Errorf("%s placed in %q, want cheapest %q", vm.ID, vm.AZ, want)
		}
	}
	// On-demand VMs from the same provider stay unmarked.
	od, err := p.RunInstances("c3.2xlarge", 1)
	if err != nil {
		t.Fatal(err)
	}
	if od[0].Backend != OnDemand || od[0].AZ != "" {
		t.Errorf("on-demand VM got backend %v az %q", od[0].Backend, od[0].AZ)
	}
}

func TestRunInstancesOnErrors(t *testing.T) {
	p := newTestProvider() // no spot market configured
	if _, err := p.RunInstancesOn("c3.2xlarge", 1, Spot); err == nil || !strings.Contains(err.Error(), "Options.Spot") {
		t.Errorf("spot without market: %v", err)
	}
	if _, err := p.RunInstancesOn("c3.2xlarge", 1, Serverless); err == nil {
		t.Error("serverless backend accepted for RunInstances")
	}
}

func TestSpotMarketReclaimSchedulesInterruption(t *testing.T) {
	// A hot market with aggressive reclaim probability must schedule a
	// ClassReclaim interruption with the standard notice lead.
	opts := DefaultOptions()
	opts.Spot = &SpotOptions{Seed: 4, InitialFrac: 1.0, FloorFrac: 0.99, CeilFrac: 1.01, ReclaimKnee: 0.5, MaxReclaimPerStep: 0.9}
	p := NewProvider(vclock.NewClock(0), opts)
	vms, err := p.RunInstancesOn("c3.2xlarge", 1, Spot)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := p.InterruptionFor(vms[0].ID)
	if !ok {
		t.Fatal("hot market scheduled no reclaim")
	}
	if iv.Class != faults.ClassReclaim {
		t.Errorf("class %v, want reclaim", iv.Class)
	}
	if iv.At <= vms[0].LaunchedAt {
		t.Errorf("reclaim at %v before launch", iv.At)
	}
	if iv.NoticeAt >= iv.At {
		t.Errorf("no advance notice: notice %v, strike %v", iv.NoticeAt, iv.At)
	}
	if lead := iv.At.Sub(iv.NoticeAt); lead > faults.DefaultReclaimNotice {
		t.Errorf("notice lead %v exceeds standard %v", lead, faults.DefaultReclaimNotice)
	}
	// Calm market schedules nothing.
	calm := DefaultOptions()
	calm.Spot = &SpotOptions{Seed: 4, InitialFrac: 0.2, FloorFrac: 0.199, CeilFrac: 0.201, ReclaimKnee: 0.5}
	pc := NewProvider(vclock.NewClock(0), calm)
	cv, err := pc.RunInstancesOn("c3.2xlarge", 1, Spot)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pc.InterruptionFor(cv[0].ID); ok {
		t.Error("calm market scheduled a reclaim")
	}
}

func TestSpotFaultPlanTakesEarlierInterruption(t *testing.T) {
	// A fault-plan crash scheduled before the market reclaim must win,
	// and the plan's decisions must be identical with and without spot.
	plan, err := faults.ParseSpec("crash:at=120,vm=1")
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewClock(0)
	opts := DefaultOptions()
	opts.Faults = faults.NewInjector(plan, 99, clk)
	opts.Spot = &SpotOptions{Seed: 4, InitialFrac: 1.0, FloorFrac: 0.99, CeilFrac: 1.01, ReclaimKnee: 0.5, MaxReclaimPerStep: 0.9}
	p := NewProvider(clk, opts)
	vms, err := p.RunInstancesOn("c3.2xlarge", 1, Spot)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := p.InterruptionFor(vms[0].ID)
	if !ok {
		t.Fatal("no interruption scheduled")
	}
	if iv.Class != faults.ClassCrash || iv.At != 120 {
		t.Errorf("interruption %v@%v, want crash@120 (fault plan strikes first)", iv.Class, iv.At)
	}
}
