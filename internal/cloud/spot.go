package cloud

import (
	"fmt"
	"strconv"
	"strings"

	"rnascale/internal/faults"
	"rnascale/internal/vclock"
)

// Backend selects the purchasing model a VM (or function invocation)
// runs under. The zero value is the fixed-price on-demand market the
// paper's experiments use, so existing configurations are unchanged.
type Backend int

const (
	// OnDemand is the paper's fixed-price EC2 model.
	OnDemand Backend = iota
	// Spot buys reclaimable capacity at the current market price of a
	// seed-deterministic per-AZ price walk; reclamation probability
	// rises with the price level.
	Spot
	// Serverless runs work as function invocations: no VMs, cold/warm
	// start latency, memory-tier pricing and a hard per-invocation
	// duration cap.
	Serverless
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case OnDemand:
		return "on-demand"
	case Spot:
		return "spot"
	case Serverless:
		return "serverless"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend resolves a backend name ("on-demand"/"od", "spot",
// "serverless"/"fn").
func ParseBackend(s string) (Backend, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "on-demand", "ondemand", "od":
		return OnDemand, nil
	case "spot":
		return Spot, nil
	case "serverless", "fn", "faas":
		return Serverless, nil
	default:
		return OnDemand, fmt.Errorf("cloud: unknown backend %q", s)
	}
}

// SpotOptions parameterize the spot market simulation.
type SpotOptions struct {
	// Seed drives the market's own splittable PRNG (independent of the
	// fault injector's streams, so adding a spot market never perturbs
	// an existing fault plan's draws).
	Seed uint64
	// AZs are the availability zones with independent price walks.
	// Empty defaults to three zones.
	AZs []string
	// Step is the price-walk step interval (default 5 min).
	Step vclock.Duration
	// InitialFrac is the starting price as a fraction of the on-demand
	// price (default 0.35).
	InitialFrac float64
	// FloorFrac/CeilFrac clamp the walk (defaults 0.2 and 1.1 — spot
	// can briefly exceed on-demand, as the real market did).
	FloorFrac, CeilFrac float64
	// Volatility is the per-step multiplicative swing half-width
	// (default 0.08: each step multiplies by 1 ± U(0,0.08)).
	Volatility float64
	// ReclaimKnee is the price fraction above which reclaim pressure
	// starts (default 0.5); MaxReclaimPerStep is the per-step reclaim
	// probability when the walk pins the ceiling (default 0.12).
	ReclaimKnee       float64
	MaxReclaimPerStep float64
	// Horizon bounds how far ahead of a VM's boot reclaim draws are
	// evaluated (default 12 h) — a VM that survives its horizon keeps
	// running.
	Horizon vclock.Duration
}

// DefaultSpotOptions returns the calibrated market defaults.
func DefaultSpotOptions() SpotOptions {
	return SpotOptions{
		AZs:               []string{"a", "b", "c"},
		Step:              5 * vclock.Minute,
		InitialFrac:       0.35,
		FloorFrac:         0.2,
		CeilFrac:          1.1,
		Volatility:        0.08,
		ReclaimKnee:       0.5,
		MaxReclaimPerStep: 0.12,
		Horizon:           12 * vclock.Hour,
	}
}

// withDefaults normalizes zero fields.
func (o SpotOptions) withDefaults() SpotOptions {
	d := DefaultSpotOptions()
	if len(o.AZs) == 0 {
		o.AZs = d.AZs
	}
	if o.Step <= 0 {
		o.Step = d.Step
	}
	if o.InitialFrac <= 0 {
		o.InitialFrac = d.InitialFrac
	}
	if o.FloorFrac <= 0 {
		o.FloorFrac = d.FloorFrac
	}
	if o.CeilFrac <= 0 {
		o.CeilFrac = d.CeilFrac
	}
	if o.Volatility <= 0 {
		o.Volatility = d.Volatility
	}
	if o.ReclaimKnee <= 0 {
		o.ReclaimKnee = d.ReclaimKnee
	}
	if o.MaxReclaimPerStep <= 0 {
		o.MaxReclaimPerStep = d.MaxReclaimPerStep
	}
	if o.Horizon <= 0 {
		o.Horizon = d.Horizon
	}
	return o
}

// SpotMarket is a seed-deterministic per-AZ price walk. Every price is
// a pure function of (seed, az, step index): step i multiplies step
// i-1 by a factor drawn from the market's own splittable PRNG stream,
// so consulting the market never advances any fault-injection stream
// and replays are byte-identical in any query order.
type SpotMarket struct {
	opts SpotOptions
	rng  *faults.RNG
	// walk memoizes the per-AZ price fractions by step index.
	walk map[string][]float64
}

// NewSpotMarket builds a market.
func NewSpotMarket(opts SpotOptions) *SpotMarket {
	opts = opts.withDefaults()
	return &SpotMarket{
		opts: opts,
		rng:  faults.NewRNG(opts.Seed),
		walk: map[string][]float64{},
	}
}

// Options reports the market's (normalized) options.
func (m *SpotMarket) Options() SpotOptions { return m.opts }

// AZs lists the market's availability zones.
func (m *SpotMarket) AZs() []string { return append([]string(nil), m.opts.AZs...) }

// step maps a virtual time to its walk step index.
func (m *SpotMarket) step(t vclock.Time) int {
	if t <= 0 {
		return 0
	}
	return int(float64(t) / float64(m.opts.Step))
}

// fracAt extends the memoized walk for an AZ through step i and
// returns its price fraction. Step k's factor is drawn from the stream
// Split("price", az, k), so the value is independent of the order (and
// number) of queries.
func (m *SpotMarket) fracAt(az string, i int) float64 {
	w := m.walk[az]
	if len(w) == 0 {
		w = append(w, m.opts.InitialFrac)
	}
	for k := len(w); k <= i; k++ {
		r := m.rng.Split("price", az, strconv.Itoa(k))
		// Symmetric multiplicative swing in [1-v, 1+v).
		f := w[k-1] * (1 + m.opts.Volatility*(2*r.Float64()-1))
		if f < m.opts.FloorFrac {
			f = m.opts.FloorFrac
		}
		if f > m.opts.CeilFrac {
			f = m.opts.CeilFrac
		}
		w = append(w, f)
	}
	m.walk[az] = w
	return w[i]
}

// PriceFrac reports the AZ's price at time t as a fraction of the
// on-demand price.
func (m *SpotMarket) PriceFrac(az string, t vclock.Time) float64 {
	return m.fracAt(az, m.step(t))
}

// Price reports the AZ's absolute price for an instance type at t.
func (m *SpotMarket) Price(it InstanceType, az string, t vclock.Time) float64 {
	return it.PricePerHour * m.PriceFrac(az, t)
}

// AvgFrac integrates the price fraction over [from, to] — the
// effective billing rate of a VM alive across that window. A window
// shorter than one step bills at the step's price.
func (m *SpotMarket) AvgFrac(az string, from, to vclock.Time) float64 {
	if to <= from {
		return m.PriceFrac(az, from)
	}
	step := float64(m.opts.Step)
	i0, i1 := m.step(from), m.step(to)
	if i0 == i1 {
		return m.fracAt(az, i0)
	}
	var weighted float64
	// Partial first step, whole middle steps, partial last step.
	weighted += m.fracAt(az, i0) * (float64(i0+1)*step - float64(from))
	for i := i0 + 1; i < i1; i++ {
		weighted += m.fracAt(az, i) * step
	}
	weighted += m.fracAt(az, i1) * (float64(to) - float64(i1)*step)
	return weighted / float64(to.Sub(from))
}

// CheapestAZ reports the AZ with the lowest price at t (ties broken
// lexicographically, so the choice is deterministic).
func (m *SpotMarket) CheapestAZ(t vclock.Time) string {
	best := m.opts.AZs[0]
	bestFrac := m.PriceFrac(best, t)
	for _, az := range m.opts.AZs[1:] {
		f := m.PriceFrac(az, t)
		if f < bestFrac || (f == bestFrac && az < best) {
			best, bestFrac = az, f
		}
	}
	return best
}

// reclaimP reports the per-step reclaim probability at a price
// fraction: zero below the knee, ramping linearly to
// MaxReclaimPerStep at the ceiling.
func (m *SpotMarket) reclaimP(frac float64) float64 {
	if frac <= m.opts.ReclaimKnee {
		return 0
	}
	span := m.opts.CeilFrac - m.opts.ReclaimKnee
	if span <= 0 {
		return m.opts.MaxReclaimPerStep
	}
	p := (frac - m.opts.ReclaimKnee) / span * m.opts.MaxReclaimPerStep
	if p > m.opts.MaxReclaimPerStep {
		p = m.opts.MaxReclaimPerStep
	}
	return p
}

// ReclaimAt decides, at VM launch, whether and when the market
// reclaims a spot VM booted in az at time from. Each walk step within
// the market horizon draws against the price-coupled reclaim
// probability on the VM's own stream Split("reclaim", vmID, step), so
// the decision depends only on (seed, az, vmID) — never on other VMs
// or on fault-plan draws.
func (m *SpotMarket) ReclaimAt(vmID, az string, from vclock.Time) (vclock.Time, bool) {
	first := m.step(from) + 1 // never reclaim within the boot step
	last := m.step(from.Add(m.opts.Horizon))
	for i := first; i <= last; i++ {
		p := m.reclaimP(m.fracAt(az, i))
		if p <= 0 {
			continue
		}
		r := m.rng.Split("reclaim", vmID, strconv.Itoa(i))
		if r.Float64() < p {
			return vclock.Time(float64(i) * float64(m.opts.Step)), true
		}
	}
	return 0, false
}

// ExpectedReclaims sums the per-step reclaim probabilities over a
// window — the RNG-free reclaim-pressure estimate the planner uses to
// inflate spot TTC/cost predictions without consuming any stream.
func (m *SpotMarket) ExpectedReclaims(az string, from, to vclock.Time) float64 {
	if to <= from {
		return 0
	}
	var sum float64
	for i := m.step(from) + 1; i <= m.step(to); i++ {
		sum += m.reclaimP(m.fracAt(az, i))
	}
	return sum
}
