package seq

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchReads(n, l int) []Read {
	rng := rand.New(rand.NewSource(1))
	reads := make([]Read, n)
	for i := range reads {
		q := make([]byte, l)
		for j := range q {
			q[j] = PhredToByte(30 + rng.Intn(10))
		}
		reads[i] = Read{ID: "r", Seq: randomSeq(rng, l), Qual: q}
	}
	return reads
}

func BenchmarkKmerForEach(b *testing.B) {
	c := MustKmerCoder(31)
	reads := benchReads(100, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		for j := range reads {
			c.ForEach(reads[j].Seq, func(_ int, km Kmer) bool {
				n++
				return true
			})
		}
	}
}

func BenchmarkKmerCanonical(b *testing.B) {
	c := MustKmerCoder(47)
	rng := rand.New(rand.NewSource(2))
	km, _ := c.Encode(randomSeq(rng, 47))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km, _ = c.Canonical(km)
	}
	_ = km
}

func BenchmarkFastqWriteParse(b *testing.B) {
	reads := benchReads(200, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteFastq(&buf, reads); err != nil {
			b.Fatal(err)
		}
		if _, err := ParseFastq(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeStats(b *testing.B) {
	rs := ReadSet{Reads: benchReads(500, 100)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats(rs)
	}
}
