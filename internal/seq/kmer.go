package seq

import (
	"fmt"

	"rnascale/internal/obs/perf"
)

// MaxK is the largest supported k-mer size. Two uint64 words hold 2
// bits per base, so 64 bases would fit, but we cap at 63 so that the
// paper's largest k (63) is covered while keeping a spare bit pattern
// for sentinel use.
const MaxK = 63

// Kmer is a 2-bit packed k-mer of up to MaxK bases. The base at
// position 0 (5' end) occupies the most significant bits, so that
// integer comparison of equal-length k-mers matches lexicographic
// comparison of their strings.
//
// Kmer is a value type and is usable as a map key.
type Kmer struct {
	Hi, Lo uint64
}

// KmerCoder packs and unpacks k-mers of one fixed size k.
type KmerCoder struct {
	K int
}

// NewKmerCoder returns a coder for size k, or an error for k outside
// [1, MaxK].
func NewKmerCoder(k int) (KmerCoder, error) {
	if k < 1 || k > MaxK {
		return KmerCoder{}, fmt.Errorf("seq: k-mer size %d outside [1,%d]", k, MaxK)
	}
	return KmerCoder{K: k}, nil
}

// MustKmerCoder is NewKmerCoder for statically known sizes.
func MustKmerCoder(k int) KmerCoder {
	c, err := NewKmerCoder(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Encode packs the first K bases of s. It returns ok=false when s is
// shorter than K or contains an ambiguous base within the window.
func (c KmerCoder) Encode(s []byte) (Kmer, bool) {
	if len(s) < c.K {
		return Kmer{}, false
	}
	var km Kmer
	for i := 0; i < c.K; i++ {
		code, ok := Code(s[i])
		if !ok {
			return Kmer{}, false
		}
		km = c.shiftAppend(km, code)
	}
	return km, true
}

// shiftAppend shifts the k-mer left by one base and appends code at
// the 3' end, dropping the 5' base if the k-mer is full. The caller
// maintains the "full" invariant; within Encode the partial k-mer
// never exceeds K bases.
func (c KmerCoder) shiftAppend(km Kmer, code byte) Kmer {
	km.Hi = km.Hi<<2 | km.Lo>>62
	km.Lo = km.Lo<<2 | uint64(code)
	return c.mask(km)
}

// mask clears bits above 2K.
func (c KmerCoder) mask(km Kmer) Kmer {
	bits := 2 * c.K
	if bits <= 64 {
		km.Hi = 0
		if bits < 64 {
			km.Lo &= 1<<uint(bits) - 1
		}
		return km
	}
	hiBits := bits - 64
	km.Hi &= 1<<uint(hiBits) - 1
	return km
}

// Next slides the k-mer window one base: it drops the 5' base and
// appends b. It returns ok=false when b is ambiguous.
func (c KmerCoder) Next(km Kmer, b byte) (Kmer, bool) {
	code, ok := Code(b)
	if !ok {
		return Kmer{}, false
	}
	return c.shiftAppend(km, code), true
}

// Prev slides the k-mer window one base left: it drops the 3' base
// and prepends b at the 5' end. It returns ok=false when b is
// ambiguous.
func (c KmerCoder) Prev(km Kmer, b byte) (Kmer, bool) {
	code, ok := Code(b)
	if !ok {
		return Kmer{}, false
	}
	km.Lo = km.Lo>>2 | km.Hi<<62
	km.Hi >>= 2
	shift := 2 * (c.K - 1)
	if shift >= 64 {
		km.Hi |= uint64(code) << uint(shift-64)
	} else {
		km.Lo |= uint64(code) << uint(shift)
	}
	return km, true
}

// BaseAt returns the 2-bit code of base i (0 = 5' end) of the k-mer.
func (c KmerCoder) BaseAt(km Kmer, i int) byte {
	if i < 0 || i >= c.K {
		panic(fmt.Sprintf("seq: base index %d out of k=%d", i, c.K))
	}
	shift := 2 * (c.K - 1 - i)
	if shift >= 64 {
		return byte(km.Hi >> uint(shift-64) & 3)
	}
	return byte(km.Lo >> uint(shift) & 3)
}

// Decode unpacks the k-mer into ASCII bases.
func (c KmerCoder) Decode(km Kmer) []byte {
	out := make([]byte, c.K)
	for i := 0; i < c.K; i++ {
		out[i] = BaseByte(c.BaseAt(km, i))
	}
	return out
}

// String renders a k-mer under this coder.
func (c KmerCoder) String(km Kmer) string { return string(c.Decode(km)) }

// ReverseComplement returns the reverse complement of the k-mer: the
// 3' base of the input, complemented, becomes the 5' base of the
// result.
func (c KmerCoder) ReverseComplement(km Kmer) Kmer {
	var rc Kmer
	for i := c.K - 1; i >= 0; i-- {
		code := c.BaseAt(km, i)
		rc = c.shiftAppend(rc, 3-code) // complement of 2-bit code is 3-code
	}
	return rc
}

// Less reports whether a sorts before b as a 128-bit integer, which
// for equal-length k-mers equals lexicographic order of the decoded
// strings.
func (km Kmer) Less(other Kmer) bool {
	if km.Hi != other.Hi {
		return km.Hi < other.Hi
	}
	return km.Lo < other.Lo
}

// Canonical returns the smaller of the k-mer and its reverse
// complement, plus whether the input was already canonical. De Bruijn
// assemblers store canonical k-mers so both strands collapse.
func (c KmerCoder) Canonical(km Kmer) (Kmer, bool) {
	rc := c.ReverseComplement(km)
	if rc.Less(km) {
		return rc, false
	}
	return km, true
}

// Hash mixes the k-mer into a 64-bit hash (splitmix64-style finalizer
// over both words). Used to partition k-mers across MPI ranks and
// MapReduce reducers.
func (km Kmer) Hash() uint64 {
	x := km.Lo ^ (km.Hi * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ForEach iterates every k-mer window of s, skipping windows that
// contain ambiguous bases, and calls fn with the window's start index
// and packed k-mer. Iteration stops early if fn returns false.
func (c KmerCoder) ForEach(s []byte, fn func(pos int, km Kmer) bool) {
	if len(s) < c.K {
		return
	}
	var km Kmer
	valid := 0 // number of consecutive unambiguous bases ending at i
	for i := 0; i < len(s); i++ {
		code, ok := Code(s[i])
		if !ok {
			valid = 0
			km = Kmer{}
			continue
		}
		km = c.shiftAppend(km, code)
		valid++
		if valid >= c.K {
			if !fn(i-c.K+1, km) {
				return
			}
		}
	}
}

// CountDistinct returns the number of distinct canonical k-mers across
// the reads. It is the driver of the memory-footprint model used for
// Table IV.
func (c KmerCoder) CountDistinct(reads []Read) int {
	defer perf.Region("seq.count_distinct").End()
	set := make(map[Kmer]struct{})
	for i := range reads {
		c.ForEach(reads[i].Seq, func(_ int, km Kmer) bool {
			canon, _ := c.Canonical(km)
			set[canon] = struct{}{}
			return true
		})
	}
	return len(set)
}
